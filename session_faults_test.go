package stripe

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// wireLossySessions is wireSessions with per-channel loss and separate
// collectors, so each end's counters can be inspected independently.
func wireLossySessions(t *testing.T, nch int, loss float64, mk func(col *Collector) SessionConfig) (a, b *Session, cleanup func()) {
	t.Helper()
	mkChans := func(seedBase int64) ([]*LocalChannel, []ChannelSender) {
		chans := make([]*LocalChannel, nch)
		senders := make([]ChannelSender, nch)
		for i := range chans {
			chans[i] = NewLocalChannel(LocalChannelConfig{
				Delay: 200 * time.Microsecond,
				Loss:  loss,
				Seed:  seedBase + int64(i),
			})
			senders[i] = chans[i]
		}
		return chans, senders
	}
	abChans, abSenders := mkChans(100)
	baChans, baSenders := mkChans(200)

	a, err := NewSession(abSenders, mk(NewCollector(nch)))
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewSession(baSenders, mk(NewCollector(nch)))
	if err != nil {
		t.Fatal(err)
	}
	var pumps sync.WaitGroup
	pump := func(chans []*LocalChannel, dst *Session) {
		for i, ch := range chans {
			pumps.Add(1)
			go func(i int, ch *LocalChannel) {
				defer pumps.Done()
				for p := range ch.Out() {
					dst.Arrive(i, p)
				}
			}(i, ch)
		}
	}
	pump(abChans, b)
	pump(baChans, a)
	cleanup = func() {
		a.Close()
		b.Close()
		for _, ch := range abChans {
			ch.Close()
		}
		for _, ch := range baChans {
			ch.Close()
		}
		pumps.Wait()
	}
	return a, b, cleanup
}

// TestSessionLossyDuplexNoCreditStall is the session-level regression
// for the credit-leak pathology: over a duplex connection losing 15% of
// packets per channel, each side sends far more than the credit window,
// so before grant reconciliation the cumulative loss wedged the sender
// permanently. With marker-carried positions the stall must clear
// within a marker period, so the whole transfer completes.
func TestSessionLossyDuplexNoCreditStall(t *testing.T) {
	const nch = 2
	const window = 8 * 1024
	const n = 120 // 120 x 1KB per direction: ~15x the window
	mk := func(col *Collector) SessionConfig {
		return SessionConfig{
			Config: Config{
				Quanta:      UniformQuanta(nch, 1500),
				Collector:   col,
				MaxBuffered: 512,
			},
			CreditWindow:   window,
			MarkerInterval: 2 * time.Millisecond,
		}
	}
	a, b, cleanup := wireLossySessions(t, nch, 0.15, mk)
	defer cleanup()

	var wg sync.WaitGroup
	send := func(s *Session) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := s.SendBytes(make([]byte, 1024)); err != nil {
				t.Error(err)
				return
			}
		}
	}
	// Consumers drain whatever survives the loss so delivered-byte
	// grants keep moving too; lost bytes can only be re-granted by
	// reconciliation.
	drain := func(s *Session) {
		for s.Recv() != nil {
		}
	}
	wg.Add(2)
	go send(a)
	go send(b)
	go drain(a)
	go drain(b)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("send stalled permanently: a credits %+v, b credits %+v",
			remaining(a, nch), remaining(b, nch))
	}
	// Loss must actually have been written off on at least one side, or
	// this test is not exercising reconciliation.
	if lost(a) == 0 && lost(b) == 0 {
		t.Fatal("no loss was reconciled despite 15% channel loss")
	}
}

func remaining(s *Session, nch int) []int64 {
	out := make([]int64, nch)
	for c := range out {
		out[c] = s.CreditRemaining(c)
	}
	return out
}

func lost(s *Session) int64 {
	var t int64
	for _, ch := range s.Snapshot().Channels {
		t += ch.LostReconciled
	}
	return t
}

// TestSessionIdleMarkersBounded is the idle-direction regression: a
// session that sends no data but keeps cutting marker batches (as the
// timer does) must not accumulate markers in the peer's resequencer.
// 600 batches stand in for a 30-second idle session at the default
// 50ms marker interval; the buffered high-water must stay O(channels)
// even though the idle peer never calls Recv.
func TestSessionIdleMarkersBounded(t *testing.T) {
	const nch = 3
	const batches = 600
	mk := func(col *Collector) SessionConfig {
		return SessionConfig{
			Config: Config{
				Quanta:    UniformQuanta(nch, 1500),
				Collector: col,
			},
			CreditWindow:   4 * 1024,
			MarkerInterval: -1, // no timer: batches are driven explicitly below
		}
	}
	a, b, cleanup := wireLossySessions(t, nch, 0, mk)
	defer cleanup()
	_ = a

	for i := 0; i < batches; i++ {
		a.EmitMarkers()
	}
	// Wait for every marker to arrive and be consumed at the idle peer.
	deadline := time.Now().Add(10 * time.Second)
	var snap Snapshot
	for {
		snap = b.Snapshot()
		var consumed int64
		for _, ch := range snap.Channels {
			consumed += ch.MarkersConsumed
		}
		if consumed >= int64(batches*nch) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d markers consumed", consumed, batches*nch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if snap.BufferedHighWater > int64(nch) {
		t.Fatalf("idle-but-markered high-water %d is not O(channels) (%d channels)",
			snap.BufferedHighWater, nch)
	}
	var drained int64
	for _, ch := range snap.Channels {
		drained += ch.MarkersDrained
	}
	if drained == 0 {
		t.Fatal("no markers were drained eagerly")
	}
}

// flakySender is a ChannelSender whose failure mode can be toggled from
// the test while the session drives it concurrently.
type flakySender struct {
	mu   sync.Mutex
	fail bool
	sent int
}

func (f *flakySender) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *flakySender) Send(p *Packet) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errTransportDown
	}
	f.sent++
	return nil
}

var errTransportDown = errors.New("transport down")

// TestSessionSendFailsOnLastActiveChannel covers the eviction-retry
// loop's terminal case: a transport failure on the last active channel
// has no survivor to absorb it, so Send must surface the
// ChannelSendError instead of retrying (or evicting) forever.
func TestSessionSendFailsOnLastActiveChannel(t *testing.T) {
	const nch = 2
	f := []*flakySender{{fail: true}, {}}
	s, err := NewSession([]ChannelSender{f[0], f[1]}, SessionConfig{
		Config:         Config{Quanta: UniformQuanta(nch, 1500), Collector: NewCollector(nch)},
		MarkerInterval: -1,
		Health:         HealthConfig{EvictAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Channel 0 is down: the retry loop must grow its error streak to
	// the eviction threshold, evict it, and land the packet on channel 1
	// — all within one Send call.
	if err := s.SendBytes(make([]byte, 100)); err != nil {
		t.Fatalf("send with a survivor available: %v", err)
	}
	if got := s.ActiveChannels(); got != 1 {
		t.Fatalf("active channels after eviction = %d, want 1", got)
	}
	if f[1].sent == 0 {
		t.Fatal("packet did not land on the surviving channel")
	}

	// Now the survivor dies too. Eviction cannot absorb a failure on the
	// last active channel, so the error must come back to the caller.
	f[1].setFail(true)
	err = s.SendBytes(make([]byte, 100))
	var cse *ChannelSendError
	if !errors.As(err, &cse) {
		t.Fatalf("send on last failing channel returned %v, want ChannelSendError", err)
	}
	if cse.Channel != 1 {
		t.Fatalf("failure reported on channel %d, want 1", cse.Channel)
	}
	if got := s.ActiveChannels(); got != 1 {
		t.Fatalf("last channel must never be evicted; active = %d", got)
	}
}

// TestSessionCloseRacesCreditStalledSend is the lost-wakeup regression:
// Close used to broadcast the cond vars without holding the session
// lock, so the broadcast could fire in the window between a
// credit-stalled sender's closed-channel check and its txCond.Wait —
// waking nobody and parking the sender forever (no credits arrive after
// Close). Close now serializes with that critical section by taking the
// lock, so every stalled Send must return ErrSessionClosed promptly.
// Run with -race.
func TestSessionCloseRacesCreditStalledSend(t *testing.T) {
	for i := 0; i < 100; i++ {
		f := &flakySender{}
		s, err := NewSession([]ChannelSender{f}, SessionConfig{
			Config:         Config{Quanta: UniformQuanta(1, 1500), Collector: NewCollector(1)},
			CreditWindow:   64, // smaller than the payload: gated immediately, forever
			MarkerInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- s.SendBytes(make([]byte, 128)) }()
		// Vary the interleaving: sometimes Close beats the closed-check,
		// sometimes it lands while the sender holds the lock, sometimes
		// after it waits.
		if i%3 == 1 {
			runtime.Gosched()
		} else if i%3 == 2 {
			time.Sleep(50 * time.Microsecond)
		}
		s.Close()
		select {
		case err := <-done:
			if err != ErrSessionClosed {
				t.Fatalf("stalled send returned %v, want ErrSessionClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("credit-stalled Send never woke after Close (lost wakeup)")
		}
	}
}
