package stripe_test

import (
	"fmt"
	"sync"

	"stripe"
)

// Example stripes a short message stream over three in-process
// channels and reads it back in FIFO order.
func Example() {
	const nch = 3
	cfg := stripe.Config{Quanta: stripe.UniformQuanta(nch, 1500)}

	chans := make([]*stripe.LocalChannel, nch)
	senders := make([]stripe.ChannelSender, nch)
	for i := range chans {
		chans[i] = stripe.NewLocalChannel(stripe.LocalChannelConfig{})
		senders[i] = chans[i]
	}
	tx, _ := stripe.NewSender(senders, cfg)
	rx, _ := stripe.NewReceiver(nch, cfg)

	var pumps sync.WaitGroup
	for i, ch := range chans {
		pumps.Add(1)
		go func(i int, ch *stripe.LocalChannel) {
			defer pumps.Done()
			for p := range ch.Out() {
				rx.Arrive(i, p)
			}
		}(i, ch)
	}

	for i := 0; i < 5; i++ {
		payload := make([]byte, 800)
		copy(payload, fmt.Sprintf("msg-%d", i))
		tx.SendBytes(payload)
	}
	for i := 0; i < 5; i++ {
		p := rx.Recv()
		fmt.Printf("%s\n", p.Payload[:5])
	}
	for _, ch := range chans {
		ch.Close()
	}
	pumps.Wait()
	// Output:
	// msg-0
	// msg-1
	// msg-2
	// msg-3
	// msg-4
}

// ExampleQuantaForRates shows quanta for a 10 Mb/s Ethernet plus a
// 45 Mb/s DS3, the dissimilar-link case the paper motivates.
func ExampleQuantaForRates() {
	quanta, _ := stripe.QuantaForRates([]float64{10e6, 45e6}, 1500)
	fmt.Println(quanta)
	// Output:
	// [1500 6750]
}
