package stripe

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stripe/internal/netchan"
)

// TestDefaultMaxBuffered pins the FCVC-derived resequencer cap formula:
// 8 · n · ⌈window / min(quanta)⌉ with a 64-packet floor, and 0
// (unbounded) whenever the flow-control inputs are absent.
func TestDefaultMaxBuffered(t *testing.T) {
	cases := []struct {
		n      int
		window int64
		quanta []int64
		want   int
	}{
		{4, 65536, []int64{1500, 1500, 1500, 1500}, 8 * 4 * 44},
		{2, 4096, []int64{1500, 1500}, 64},         // 8*2*3 = 48 -> floor
		{2, 4096, []int64{1500, 500}, 8 * 2 * 9},   // min quantum rules
		{1, 100, []int64{1500}, 64},                // tiny window -> floor
		{0, 65536, []int64{1500}, 0},               // no channels
		{4, 0, []int64{1500, 1500, 1500, 1500}, 0}, // flow control off
		{4, 65536, nil, 0},                         // no quanta
		{4, 65536, []int64{0, -5, 0, 0}, 0},        // no positive quantum
	}
	for _, c := range cases {
		if got := DefaultMaxBuffered(c.n, c.window, c.quanta); got != c.want {
			t.Errorf("DefaultMaxBuffered(%d, %d, %v) = %d, want %d",
				c.n, c.window, c.quanta, got, c.want)
		}
	}
}

// TestSessionLifecycleTracing runs a duplex session pair with one
// shared lifecycle tracer, an invariant checker, and a flight recorder:
// the healthy run must produce latency histograms with monotone
// quantiles and zero invariant findings; a seeded credit-ledger
// corruption must then trip the checker and dump the flight recorder.
func TestSessionLifecycleTracing(t *testing.T) {
	const nch = 2
	const window = 4096
	colA := NewNamedCollector("lta", nch)
	colB := NewNamedCollector("ltb", nch)

	// One tracer across both ends: transmit stages stamp through colA,
	// receive stages through colB, same side table.
	tracer := NewTracer(TracerConfig{Sample: 1})
	colA.SetTracer(tracer)
	colB.SetTracer(tracer)
	checker := NewChecker()
	var findings []Violation
	checker.OnViolation = func(v Violation) { findings = append(findings, v) }
	colA.SetChecker(checker)
	fr := NewFlightRecorder(colA, FlightRecorderConfig{Cooldown: time.Nanosecond})
	colA.AddSink(fr)

	mkChans := func() ([]*LocalChannel, []ChannelSender) {
		chans := make([]*LocalChannel, nch)
		senders := make([]ChannelSender, nch)
		for i := range chans {
			chans[i] = NewLocalChannel(LocalChannelConfig{Seed: int64(i)})
			senders[i] = chans[i]
		}
		return chans, senders
	}
	abChans, abSenders := mkChans()
	baChans, baSenders := mkChans()

	cfg := SessionConfig{
		Config: Config{
			Quanta:    UniformQuanta(nch, 1500),
			Markers:   MarkerPolicy{Every: 2, Position: 0},
			Collector: colA,
		},
		CreditWindow:   window,
		MarkerInterval: time.Millisecond,
	}
	bcfg := cfg
	bcfg.Collector = colB

	a, err := NewSession(abSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(baSenders, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		a.Close()
		b.Close()
		for _, ch := range append(abChans, baChans...) {
			ch.Close()
		}
	}()
	pump := func(chans []*LocalChannel, dst *Session) {
		for i, ch := range chans {
			go func(i int, ch *LocalChannel) {
				for p := range ch.Out() {
					dst.Arrive(i, p)
				}
			}(i, ch)
		}
	}
	pump(abChans, b)
	pump(baChans, a)

	const n = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.SendBytes(make([]byte, 500)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := 0
	for got < n {
		p := b.Recv()
		if p == nil {
			t.Fatal("session closed early")
		}
		if p.Kind == KindData {
			got++
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Green: the healthy run satisfied every invariant (Snapshot flushes
	// and runs the checks one final time).
	snap := a.Snapshot()
	if len(findings) != 0 {
		t.Fatalf("healthy run produced findings: %+v", findings)
	}
	if snap.InvariantViolations != 0 {
		t.Fatalf("healthy run counted %d violations", snap.InvariantViolations)
	}
	if snap.Lifecycle == nil {
		t.Fatal("snapshot missing lifecycle aggregates")
	}

	ts := tracer.Snapshot()
	if ts.Tracked == 0 || ts.EndToEnd.Count == 0 || ts.ReseqDelay.Count == 0 {
		t.Fatalf("tracer saw nothing: %+v", ts)
	}
	p50, p90, p99 := ts.EndToEnd.Quantile(0.50), ts.EndToEnd.Quantile(0.90), ts.EndToEnd.Quantile(0.99)
	if p50 <= 0 || p50 > p90 || p90 > p99 {
		t.Fatalf("end-to-end quantiles not monotone: %d / %d / %d", p50, p90, p99)
	}
	// The traffic (100 KB) exceeded the per-channel window several times
	// over, so some traced packet must have stalled on credit.
	if ts.SendStall.Count == 0 {
		t.Fatal("no send-stall observations despite a small credit window")
	}
	if recent := tracer.Recent(); len(recent) == 0 {
		t.Fatal("no retained lifecycles")
	}

	// Red: corrupt the credit ledger the checker reads and flush. The
	// checker must fire and the flight recorder must dump.
	colA.SetCreditSource(func() []CreditAccount {
		return []CreditAccount{{Channel: 0, Granted: 10 * window, Consumed: 0, Window: window}}
	})
	snap = a.Snapshot()
	if len(findings) != 1 || findings[0].Check != "credit" {
		t.Fatalf("seeded ledger corruption not caught: %+v", findings)
	}
	if snap.InvariantViolations != 1 || len(snap.Violations) != 1 {
		t.Fatalf("violations missing from snapshot: %+v", snap.Violations)
	}
	d, ok := fr.LastDump()
	if !ok || d.Reason != "invariant violation" {
		t.Fatalf("flight recorder did not dump: ok=%v %+v", ok, d.Reason)
	}
	if !strings.Contains(d.Trigger.Kind.String(), "invariant") {
		t.Fatalf("dump trigger: %+v", d.Trigger)
	}
}

// TestTracedRemotePairDefaultsAddSeq pins the tracing ergonomics rule:
// configuring a lifecycle tracer implies AddSeq. A tracer keys packets
// by their sequence identity, and without AddSeq that identity is
// in-process only — it never survives an encoded channel, so every
// remote lifecycle would be torn. Here the pair crosses a real
// netchan encode/decode boundary (only wire-visible fields survive the
// hop) and cfg.AddSeq is never set; completed lifecycles prove the
// sequence identity made the trip.
func TestTracedRemotePairDefaultsAddSeq(t *testing.T) {
	const nch = 2
	colA := NewNamedCollector("rma", nch)
	colB := NewNamedCollector("rmb", nch)
	tracer := NewTracer(TracerConfig{Sample: 1})
	colA.SetTracer(tracer)
	colB.SetTracer(tracer)

	mkChans := func() ([]*LocalChannel, []ChannelSender) {
		chans := make([]*LocalChannel, nch)
		senders := make([]ChannelSender, nch)
		for i := range chans {
			chans[i] = NewLocalChannel(LocalChannelConfig{Seed: int64(i)})
			senders[i] = chans[i]
		}
		return chans, senders
	}
	abChans, abSenders := mkChans()
	baChans, baSenders := mkChans()

	cfg := SessionConfig{
		Config: Config{
			Quanta:    UniformQuanta(nch, 1500),
			Markers:   MarkerPolicy{Every: 2, Position: 0},
			Collector: colA,
			// AddSeq deliberately left false: the tracer must turn it on.
		},
		CreditWindow:   4096,
		MarkerInterval: time.Millisecond,
	}
	bcfg := cfg
	bcfg.Collector = colB

	a, err := NewSession(abSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(baSenders, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		a.Close()
		b.Close()
		for _, ch := range append(abChans, baChans...) {
			ch.Close()
		}
	}()

	// The pump is the wire: every packet is flattened to its channel
	// framing and re-parsed, so nothing in-process (pointer identity,
	// unexported striper state) crosses to the peer.
	var seqFrames atomic.Int64
	pump := func(chans []*LocalChannel, dst *Session) {
		for i, ch := range chans {
			go func(i int, ch *LocalChannel) {
				for p := range ch.Out() {
					q, err := netchan.DecodeFrame(netchan.EncodeFrame(nil, p))
					if err != nil {
						t.Errorf("frame did not survive the wire: %v", err)
						continue
					}
					if q.HasSeq {
						seqFrames.Add(1)
					}
					dst.Arrive(i, q)
				}
			}(i, ch)
		}
	}
	pump(abChans, b)
	pump(baChans, a)

	const n = 100
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.SendBytes(make([]byte, 400)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := 0
	for got < n {
		p := b.Recv()
		if p == nil {
			t.Fatal("session closed early")
		}
		if p.Kind == KindData {
			got++
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if seqFrames.Load() == 0 {
		t.Fatal("no frame carried an explicit sequence number: tracer did not imply AddSeq")
	}
	ts := tracer.Snapshot()
	if ts.Tracked == 0 {
		t.Fatalf("no completed remote lifecycles: %+v", ts)
	}
	if ts.EndToEnd.Count == 0 {
		t.Fatalf("no end-to-end latency observations: %+v", ts)
	}
}
