package stripe

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestScoreEvictionCatchesSilentLoss is the end-to-end check for
// evidence-based eviction: a channel dropping 90% of its traffic —
// silently, so the error-streak rule (disabled here anyway) never sees
// a transport error — must be evicted by the windowed health score,
// and the session must keep delivering on the survivor.
func TestScoreEvictionCatchesSilentLoss(t *testing.T) {
	const nch = 2
	colA := NewNamedCollector("score-evict-a", nch)
	colB := NewNamedCollector("score-evict-b", nch)
	NewWindows(colA, WindowConfig{
		Tick:  10 * time.Millisecond,
		Spans: []time.Duration{200 * time.Millisecond},
	})

	// Forward channels report losses to alice's collector; channel 1 is
	// the silently dying link.
	mk := func(col *Collector, lossOn1 float64) ([]*LocalChannel, []ChannelSender) {
		chans := make([]*LocalChannel, nch)
		senders := make([]ChannelSender, nch)
		for i := range chans {
			loss := 0.0
			if i == 1 {
				loss = lossOn1
			}
			chans[i] = NewLocalChannel(LocalChannelConfig{
				Loss:      loss,
				Seed:      int64(i + 1),
				Collector: col,
				Index:     i,
			})
			senders[i] = chans[i]
		}
		return chans, senders
	}
	abChans, abSenders := mk(colA, 0.9)
	baChans, baSenders := mk(nil, 0)

	cfg := SessionConfig{
		Config: Config{
			Quanta:    UniformQuanta(nch, 1500),
			Markers:   MarkerPolicy{Every: 2, Position: 0},
			Collector: colA,
		},
		CreditWindow:   64 * 1024,
		MarkerInterval: 2 * time.Millisecond,
		Health: HealthConfig{
			EvictAfter:      -1, // error-streak eviction off: the score must act alone
			ReinstateAfter:  -1,
			ScoreEvictBelow: 60,
			ScoreStreak:     2,
		},
	}
	bcfg := cfg
	bcfg.Collector = colB
	bcfg.Health = HealthConfig{}

	a, err := NewSession(abSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(baSenders, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		a.Close()
		b.Close()
		for _, ch := range append(abChans, baChans...) {
			ch.Close()
		}
	}()
	pump := func(chans []*LocalChannel, dst *Session) {
		for i, ch := range chans {
			go func(i int, ch *LocalChannel) {
				for p := range ch.Out() {
					dst.Arrive(i, p)
				}
			}(i, ch)
		}
	}
	pump(abChans, b)
	pump(baChans, a)

	var stop atomic.Bool
	go func() {
		for !stop.Load() {
			if a.SendBytes(make([]byte, 600)) != nil {
				return
			}
		}
	}()
	go func() {
		for b.Recv() != nil {
		}
	}()
	go func() {
		for a.Recv() != nil {
		}
	}()
	defer stop.Store(true)

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := a.Snapshot()
		if snap.Channels[1].MemberEvictions >= 1 {
			if snap.Channels[1].MemberActive {
				t.Fatalf("channel 1 evicted but still active: %+v", snap.Channels[1])
			}
			if !snap.Channels[0].MemberActive || snap.Channels[0].MemberEvictions != 0 {
				t.Fatalf("healthy channel 0 was disturbed: %+v", snap.Channels[0])
			}
			// The eviction came from windowed evidence: the score the
			// rollup assigned channel 1 is below the configured bar.
			if h := snap.Windows.Score(1); h.Score >= 60 || len(h.Reasons) == 0 {
				t.Fatalf("eviction without score evidence: %+v", h)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("score eviction never fired; windows=%+v channels=%+v",
				snap.Windows, snap.Channels)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
