// Live observability: a duplex striped session under the Figure 15
// workload (random bimodal mixture of 200 B and 1000 B packets) with
// the runtime metrics endpoint serving throughout.
//
//	go run ./examples/metrics            # serve on a random port for 3s
//	go run ./examples/metrics -addr :9090 -d 30s
//
// While it runs:
//
//	curl localhost:PORT/metrics          # Prometheus text format
//	curl localhost:PORT/debug/vars       # expvar JSON
//	go tool pprof localhost:PORT/debug/pprof/profile?seconds=5
//
// The interesting metric is the live fairness gauge: the paper's
// Theorem 3.2 guarantees |K*Quantum_i - bytes_i| <= Max + 2*Quantum on
// every prefix, and the endpoint exposes both sides of the inequality
// (stripe_fairness_discrepancy_bytes vs stripe_fairness_bound_bytes),
// so a violation would be visible on a dashboard, not just in a test.
// At exit the example scrapes its own endpoint and verifies the bound.
//
// The lossy channels also make the credit machinery visible: every
// marker carries the sender's byte position, so bob writes dropped
// bytes off as lost and grants them back, and alice's
// stripe_credit_remaining_bytes saw-tooths instead of draining to zero
// (stripe_credit_lost_bytes_total counts what reconciliation
// reclaimed). Before grants were reconciled this example stalled for
// good a couple of seconds in — the pathology the endpoint was built
// to make visible, now the fix it demonstrates.
//
// A lifecycle tracer shared by both ends adds sampled latency
// histograms (stripe_latency_* under /metrics, chrome://tracing JSON
// under /debug/stripe/trace), an invariant checker asserts the
// theorems on every flush, and a flight recorder stands by to dump the
// event history if an anomaly trips; the exit report prints the
// latency quantiles and both verdicts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"stripe"
)

func sumBlocked(s stripe.Snapshot) (n int64) {
	for _, c := range s.Channels {
		n += c.BlockedSends
	}
	return n
}

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:0", "metrics listen address")
		dur  = flag.Duration("d", 3*time.Second, "how long to run the workload")
		loss = flag.Float64("loss", 0.05, "channel loss probability (drives resync metrics)")
	)
	flag.Parse()

	// One collector per session end: alice's carries the transmit-side
	// fairness gauge for the lossy direction, bob's the receive-side
	// resync/skip/buffer metrics for the same traffic.
	const nch = 2
	colA := stripe.NewNamedCollector("alice", nch)
	colB := stripe.NewNamedCollector("bob", nch)
	events := stripe.NewRingSink(32)
	colB.AddSink(events)

	// One lifecycle tracer shared by both ends (default 1-in-16
	// sampling): alice's striper stamps the transmit stages, bob's
	// resequencer the receive stages, and the latency histograms show
	// up under /metrics and /debug/stripe/trace.
	tracer := stripe.NewTracer(stripe.TracerConfig{})
	colA.SetTracer(tracer)
	colB.SetTracer(tracer)
	// The invariant checker asserts Theorem 3.2 and credit conservation
	// on every flush; the flight recorder dumps the event history when
	// an anomaly (or a checker finding) trips.
	checker := stripe.NewChecker()
	colA.SetChecker(checker)
	recorder := stripe.NewFlightRecorder(colA, stripe.FlightRecorderConfig{})
	colA.AddSink(recorder)
	// Windowed rollups on both ends: counter deltas fold into short
	// windows on the engine flush, giving per-channel rates, loss
	// fractions, and 0-100 health scores at /debug/stripe/health and as
	// stripe_channel_health / stripe_*_rate gauges under /metrics.
	wcfg := stripe.WindowConfig{
		Tick:  250 * time.Millisecond,
		Spans: []time.Duration{time.Second, 10 * time.Second},
	}
	stripe.NewWindows(colA, wcfg)
	stripe.NewWindows(colB, wcfg)

	cfg := stripe.SessionConfig{
		Config: stripe.Config{
			Quanta:    stripe.UniformQuanta(nch, 1500),
			Markers:   stripe.MarkerPolicy{Every: 2, Position: 0},
			Collector: colA,
		},
		CreditWindow:   32 * 1024,
		MarkerInterval: 5 * time.Millisecond,
	}
	backCfg := cfg
	backCfg.Collector = colB

	srv, err := stripe.Serve(*addr, colA, colB)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving http://%s/metrics, /debug/vars, /debug/pprof/ for %v\n", srv.Addr(), *dur)

	// Two directions of lossy in-process channels. Only the forward
	// direction (alice -> bob) is instrumented.
	mkDirection := func(c *stripe.Collector, lossP float64) ([]stripe.ChannelSender, []*stripe.LocalChannel) {
		send := make([]stripe.ChannelSender, nch)
		recv := make([]*stripe.LocalChannel, nch)
		for i := 0; i < nch; i++ {
			ch := stripe.NewLocalChannel(stripe.LocalChannelConfig{
				Loss:      lossP,
				Seed:      int64(i + 1),
				Collector: c,
				Index:     i,
			})
			send[i], recv[i] = ch, ch
		}
		return send, recv
	}
	abSend, abRecv := mkDirection(colA, *loss)
	baSend, baRecv := mkDirection(nil, 0)

	alice, err := stripe.NewSession(abSend, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := stripe.NewSession(baSend, backCfg)
	if err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	var pumps sync.WaitGroup
	pump := func(recv []*stripe.LocalChannel, dst *stripe.Session) {
		for i, rc := range recv {
			pumps.Add(1)
			go func(i int, rc *stripe.LocalChannel) {
				defer pumps.Done()
				for {
					select {
					case <-stop:
						return
					case p, ok := <-rc.Out():
						if !ok {
							return
						}
						dst.Arrive(i, p)
					}
				}
			}(i, rc)
		}
	}
	pump(abRecv, bob)
	pump(baRecv, alice)

	// Figure 15 workload: equiprobable 200 B / 1000 B packets.
	rng := rand.New(rand.NewSource(1))
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			size := 200
			if rng.Intn(2) == 1 {
				size = 1000
			}
			if err := alice.SendBytes(make([]byte, size)); err != nil {
				return
			}
		}
	}()
	go func() { // bob drains
		for {
			if bob.Recv() == nil {
				return
			}
		}
	}()
	go func() { // alice drains the (marker-only) reverse direction
		for {
			if alice.Recv() == nil {
				return
			}
		}
	}()

	time.Sleep(*dur)
	close(stop)
	alice.Close()
	bob.Close()
	pumps.Wait()

	// Self-scrape: fetch the endpoint like any monitoring agent would
	// and check the fairness invariant from the exposition alone.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	vals := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	fmt.Println("\nkey samples from /metrics:")
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "stripe_") {
			continue
		}
		for _, want := range []string{
			"stripe_channel_bytes_total", "stripe_markers_total",
			"stripe_resync_events_total", "stripe_fairness_",
			"stripe_reseq_buffered_high_water", "stripe_channel_lost_packets_total",
			"stripe_channel_health", "stripe_channel_loss_rate",
		} {
			if strings.HasPrefix(line, want) {
				fmt.Println("  " + line)
			}
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			if v, err := strconv.ParseInt(line[i+1:], 10, 64); err == nil {
				vals[line[:i]] = v
			}
		}
	}
	disc := vals[`stripe_fairness_discrepancy_bytes{session="alice"}`]
	bound := vals[`stripe_fairness_bound_bytes{session="alice"}`]
	fmt.Printf("\nfairness: |K*Quantum - bytes| = %d <= bound %d (Theorem 3.2): %v\n",
		disc, bound, disc <= bound)

	// The windowed health view, fetched the way stripetop does.
	hresp, err := http.Get("http://" + srv.Addr() + "/debug/stripe/health")
	if err != nil {
		log.Fatal(err)
	}
	var health struct{ Sessions []stripe.HealthReport }
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	hresp.Body.Close()
	fmt.Println("windowed health (/debug/stripe/health):")
	for _, s := range health.Sessions {
		if s.Windows == nil {
			continue
		}
		for _, h := range s.Windows.Health {
			reasons := ""
			if len(h.Reasons) > 0 {
				reasons = "  (" + strings.Join(h.Reasons, ",") + ")"
			}
			fmt.Printf("  %s ch%d: score %d/100%s\n", s.Session, h.Channel, h.Score, reasons)
		}
	}

	snap := bob.Snapshot()
	fmt.Printf("bob: resequencer high-water %d pkts, events %v\n",
		snap.BufferedHighWater, snap.Events)
	fmt.Printf("alice: credit stall %v, blocked sends %d\n",
		alice.Snapshot().CreditStall, sumBlocked(alice.Snapshot()))

	// Lifecycle latency quantiles from the shared tracer (1-in-16
	// sampled): end-to-end includes the credit stalls the small window
	// causes; resequencing delay is what loss recovery costs bob.
	ts := tracer.Snapshot()
	q := func(h stripe.HistogramSnapshot) string {
		return fmt.Sprintf("p50 %v  p90 %v  p99 %v",
			time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.90)), time.Duration(h.Quantile(0.99)))
	}
	fmt.Printf("latency (%d lifecycles traced, 1 in %d sampled):\n", ts.Tracked, ts.SampleEvery)
	fmt.Printf("  end-to-end   %s\n", q(ts.EndToEnd))
	fmt.Printf("  reseq delay  %s\n", q(ts.ReseqDelay))
	fmt.Printf("  send stall   %s\n", q(ts.SendStall))
	fmt.Printf("invariant checker: %d violation(s)\n", checker.ViolationCount())
	if d, ok := recorder.LastDump(); ok {
		fmt.Printf("flight recorder: %d dump(s), last trigger %q with %d events of history\n",
			recorder.Dumps(), d.Reason, len(d.Events))
	}
	if evs := events.Events(); len(evs) > 0 {
		fmt.Printf("last protocol events (%d):\n", len(evs))
		for i, e := range evs {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(evs)-5)
				break
			}
			fmt.Printf("  %s\n", e)
		}
	}
}
