// Loss recovery: reproduce the Section 5 walkthrough (Figures 8-13)
// interactively. Two equal channels carry a numbered stream; one packet
// is deliberately dropped, the receiver drifts out of order, and the
// next marker batch snaps it back into synchronization.
//
//	go run ./examples/lossrecovery
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"stripe"
)

// dropOne is a channel wrapper that drops exactly one chosen data
// packet (by count of data packets seen on this channel).
type dropOne struct {
	inner stripe.ChannelSender
	at    int
	seen  int
}

func (d *dropOne) Send(p *stripe.Packet) error {
	if p.Kind == stripe.KindData {
		d.seen++
		if d.seen == d.at {
			fmt.Printf("  !! channel drops its data packet #%d (payload %q)\n", d.at, p.Payload[:9])
			return nil
		}
	}
	return d.inner.Send(p)
}

func main() {
	const nch = 2
	cfg := stripe.Config{
		Quanta:  stripe.UniformQuanta(nch, 100), // quantum == packet size: SRR reduces to RR
		Markers: stripe.MarkerPolicy{Every: 6, Position: 0},
	}

	chans := make([]*stripe.LocalChannel, nch)
	senders := make([]stripe.ChannelSender, nch)
	for i := range chans {
		chans[i] = stripe.NewLocalChannel(stripe.LocalChannelConfig{Delay: time.Millisecond})
		senders[i] = chans[i]
	}
	// The paper's Figure 10: packet 7 (1-based) is lost; with two
	// channels that is channel 0's 4th data packet.
	senders[0] = &dropOne{inner: senders[0], at: 4}

	tx, err := stripe.NewSender(senders, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := stripe.NewReceiver(nch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var pumps sync.WaitGroup
	for i, ch := range chans {
		pumps.Add(1)
		go func(i int, ch *stripe.LocalChannel) {
			defer pumps.Done()
			for p := range ch.Out() {
				rx.Arrive(i, p)
			}
		}(i, ch)
	}

	const n = 18 // the walkthrough's packets 1..18
	fmt.Printf("sending packets 1..%d over 2 channels; marker batch before round 7\n\n", n)
	go func() {
		for i := 1; i <= n; i++ {
			payload := make([]byte, 100)
			copy(payload, fmt.Sprintf("packet-%02d", i))
			if err := tx.SendBytes(payload); err != nil {
				log.Fatal(err)
			}
		}
	}()

	last := 0
	for got := 0; got < n-1; got++ { // one packet was dropped
		p := rx.Recv()
		var id int
		fmt.Sscanf(string(p.Payload), "packet-%d", &id)
		note := ""
		if id < last {
			note = "   <-- out of order (desynchronized)"
		} else if id != last+1 && last != 0 {
			note = "   <-- gap (the lost packet, or skipped ahead)"
		}
		fmt.Printf("  delivered %q%s\n", p.Payload[:9], note)
		if id > last {
			last = id
		}
	}
	for _, ch := range chans {
		ch.Close()
	}
	pumps.Wait()

	st := rx.Stats()
	fmt.Printf("\nmarkers consumed: %d, resynchronizations: %d, channel skips: %d\n",
		st.Markers, st.Resyncs, st.Skips)
	fmt.Println("after the marker, delivery is FIFO again (Theorem 5.1: recovery within")
	fmt.Println("one marker period plus a one-way delay after losses stop)")
}
