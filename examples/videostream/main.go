// Video stream: stripe a synthetic NV-style video conference trace over
// four lossy UDP channels with quasi-FIFO delivery, and measure frame
// usability — the Section 6.3 experiment, live on real sockets.
//
//	go run ./examples/videostream            # 5% loss
//	go run ./examples/videostream -loss 0.4  # the paper's perceptibility threshold
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"stripe"
	"stripe/internal/trace"
)

// lossy drops data packets with probability p before a UDP channel.
type lossy struct {
	inner stripe.ChannelSender
	p     float64
	rng   *rand.Rand
}

func (l *lossy) Send(pkt *stripe.Packet) error {
	if pkt.Kind == stripe.KindData && l.rng.Float64() < l.p {
		return nil
	}
	return l.inner.Send(pkt)
}

func main() {
	var (
		loss   = flag.Float64("loss", 0.05, "per-packet loss probability")
		frames = flag.Int("frames", 300, "frames to stream")
	)
	flag.Parse()

	vt, err := trace.SynthesizeVideo(trace.VideoConfig{
		Frames: *frames,
		GOP:    8,
		IMean:  8000,
		PMean:  1500,
		MTU:    1024,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	const nch = 4
	cfg := stripe.Config{
		Quanta:  stripe.UniformQuanta(nch, 1024),
		Markers: stripe.MarkerPolicy{Every: 2, Position: 0},
	}
	sendEnds := make([]stripe.ChannelSender, nch)
	recvEnds := make([]*stripe.UDPChannel, nch)
	for i := 0; i < nch; i++ {
		s, r, err := stripe.NewUDPChannelPair()
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		defer r.Close()
		sendEnds[i] = &lossy{inner: s, p: *loss, rng: rand.New(rand.NewSource(int64(i)))}
		recvEnds[i] = r
	}
	tx, err := stripe.NewSender(sendEnds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := stripe.NewReceiver(nch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	stop := make(chan struct{})
	var pumps sync.WaitGroup
	for i, rc := range recvEnds {
		pumps.Add(1)
		go func(i int, rc *stripe.UDPChannel) {
			defer pumps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := rc.ReadPacket(50 * time.Millisecond)
				if err != nil || p == nil {
					continue
				}
				rx.Arrive(i, p)
			}
		}(i, rc)
	}

	// Stream the packetized trace; the frame index rides in the first
	// payload bytes so the receiver can score frames.
	fmt.Printf("streaming %d frames (%d packets) over %d UDP channels at %.0f%% loss\n",
		*frames, len(vt.Packets), nch, *loss*100)
	go func() {
		for _, vp := range vt.Packets {
			payload := make([]byte, vp.Size)
			if vp.Size >= 8 {
				payload[0] = byte(vp.Frame >> 16)
				payload[1] = byte(vp.Frame >> 8)
				payload[2] = byte(vp.Frame)
				if vp.LastOfFrame {
					payload[3] = 1
				}
			}
			if err := tx.SendBytes(payload); err != nil {
				log.Print(err)
				return
			}
			if vp.LastOfFrame {
				// Frame pacing (a fast-forwarded NV at ~200 fps): keeps
				// the UDP socket buffers from overflowing, as the real
				// application's frame rate would.
				time.Sleep(5 * time.Millisecond)
			}
		}
		for i := 0; i < 30; i++ { // keep markers flowing for the tail
			time.Sleep(10 * time.Millisecond)
			tx.EmitMarkers()
		}
	}()

	// Playout: a frame is usable if all its packets arrive before the
	// first packet of frame f+3 (a two-frame jitter buffer).
	ppf := vt.PacketsPerFrame()
	seen := make([]int, *frames)
	usable := make([]bool, *frames)
	for f := range usable {
		usable[f] = true
	}
	received := 0
	deadline := time.After(10 * time.Second)
collect:
	for received < len(vt.Packets) {
		done := make(chan *stripe.Packet, 1)
		go func() { done <- rx.Recv() }()
		select {
		case p := <-done:
			if p == nil || p.Len() < 8 {
				continue
			}
			f := int(p.Payload[0])<<16 | int(p.Payload[1])<<8 | int(p.Payload[2])
			if f >= *frames {
				continue
			}
			seen[f]++
			// Anything older than the playout window is now unusable if
			// incomplete.
			for g := 0; g < f-2; g++ {
				if seen[g] < ppf[g] {
					usable[g] = false
				}
			}
			received++
		case <-deadline:
			break collect
		}
	}
	close(stop)
	pumps.Wait()
	for f := range usable {
		if seen[f] < ppf[f] {
			usable[f] = false
		}
	}
	good := 0
	for _, u := range usable {
		if u {
			good++
		}
	}
	st := rx.Stats()
	fmt.Printf("received %d/%d packets; %d/%d frames usable (%.1f%%)\n",
		received, len(vt.Packets), good, *frames, float64(good)/float64(*frames)*100)
	fmt.Printf("markers: %d, resyncs: %d — quasi-FIFO kept reordering inside loss windows\n",
		st.Markers, st.Resyncs)
}
