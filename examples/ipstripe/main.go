// IP striping: the Section 6.1 architecture end to end. Two hosts get
// two parallel links, a virtual strIPe interface on each, and host
// routes that divert traffic for the peer's addresses into it — IP and
// the application never know striping is happening. One link then
// starts dropping packets; the marker protocol keeps the stream
// flowing and restores FIFO delivery.
//
//	go run ./examples/ipstripe
package main

import (
	"fmt"
	"log"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/stripenet"
)

func main() {
	a := stripenet.NewHost("alice")
	b := stripenet.NewHost("bob")

	// Two point-to-point links; link 1 is lossy from the start.
	for i := 0; i < 2; i++ {
		an, err := a.AddNIC(fmt.Sprintf("link%d", i), stripenet.MustAddr(fmt.Sprintf("10.%d.0.1", i)), 1500)
		if err != nil {
			log.Fatal(err)
		}
		bn, err := b.AddNIC(fmt.Sprintf("link%d", i), stripenet.MustAddr(fmt.Sprintf("10.%d.0.2", i)), 1500)
		if err != nil {
			log.Fatal(err)
		}
		imp := channel.Impairments{Seed: int64(i)}
		if i == 1 {
			imp.Loss = 0.1
		}
		stripenet.Connect(an, bn, imp)
	}

	// The virtual interface: SRR over both members, markers every 2
	// rounds.
	cfg := stripenet.StripeConfig{
		Members: []string{"link0", "link1"},
		Quanta:  []int64{1500, 1500},
		Markers: core.MarkerPolicy{Every: 2, Position: 0},
	}
	if _, err := a.AddStripeIface("stripe0", cfg); err != nil {
		log.Fatal(err)
	}
	sb, err := b.AddStripeIface("stripe0", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Host routes override network routes: traffic for bob's addresses
	// dives into the stripe (the paper's routing-table trick).
	for i := 0; i < 2; i++ {
		if err := a.AddRoute(stripenet.MustAddr(fmt.Sprintf("10.%d.0.2", i)), 32, "stripe0"); err != nil {
			log.Fatal(err)
		}
		if err := b.AddRoute(stripenet.MustAddr(fmt.Sprintf("10.%d.0.1", i)), 32, "stripe0"); err != nil {
			log.Fatal(err)
		}
	}

	var delivered, late int
	last := -1
	b.OnReceive(func(hdr stripenet.Header, payload []byte) {
		var id int
		fmt.Sscanf(string(payload), "datagram-%d", &id)
		delivered++
		if id < last {
			late++
		} else {
			last = id
		}
	})

	const n = 1000
	src, dst := stripenet.MustAddr("10.0.0.1"), stripenet.MustAddr("10.0.0.2")
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("datagram-%d-%s", i, make([]byte, (i*37)%1100)))
		if err := a.SendIP(src, dst, 17, payload); err != nil {
			log.Fatal(err)
		}
		stripenet.Poll(a, b)
	}

	st := sb.Stats()
	fmt.Printf("sent %d IP datagrams through the strIPe interface (link1 at 10%% loss)\n", n)
	fmt.Printf("delivered %d (%.1f%%), %d out of order (quasi-FIFO)\n",
		delivered, float64(delivered)/n*100, late)
	fmt.Printf("markers consumed %d, resynchronizations %d, channel skips %d\n",
		st.Markers, st.Resyncs, st.Skips)
	for _, name := range []string{"link0", "link1"} {
		fmt.Printf("%s carried %d bytes\n", name, bytesSent(a, name))
	}
	fmt.Println("IP and the application never saw the striping: same addresses, same API")
}

func bytesSent(h *stripenet.Host, nic string) int64 {
	// Exposed via the NIC accessor; the host map is internal, so walk
	// through MTUOf's sibling accessor pattern: re-resolve by name.
	n := h.NIC(nic)
	if n == nil {
		return 0
	}
	return n.BytesSent()
}
