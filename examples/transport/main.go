// Transport striping: carry a bulk transfer across three real TCP
// connections (the paper's "channel as a transport connection" case —
// one connection per intelligent adaptor) and verify the reassembled
// stream byte-for-byte.
//
//	go run ./examples/transport
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"stripe"
)

func main() {
	const (
		nch       = 3
		chunk     = 16 * 1024
		totalMiB  = 32
		numChunks = totalMiB * 1024 * 1024 / chunk
	)
	cfg := stripe.Config{Quanta: stripe.UniformQuanta(nch, chunk)}

	sendEnds := make([]stripe.ChannelSender, nch)
	recvEnds := make([]*stripe.TCPChannel, nch)
	for i := 0; i < nch; i++ {
		s, r, err := stripe.NewTCPChannelPair()
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		defer r.Close()
		sendEnds[i] = s
		recvEnds[i] = r
	}
	tx, err := stripe.NewSender(sendEnds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := stripe.NewReceiver(nch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var pumps sync.WaitGroup
	for i, rc := range recvEnds {
		pumps.Add(1)
		go func(i int, rc *stripe.TCPChannel) {
			defer pumps.Done()
			for {
				p, err := rc.ReadPacket(2 * time.Second)
				if err != nil || p == nil {
					return
				}
				rx.Arrive(i, p)
			}
		}(i, rc)
	}

	rng := rand.New(rand.NewSource(1))
	sendSum := sha256.New()
	start := time.Now()
	go func() {
		buf := make([]byte, chunk)
		for i := 0; i < numChunks; i++ {
			rng.Read(buf)
			sendSum.Write(buf)
			if err := tx.SendBytes(append([]byte(nil), buf...)); err != nil {
				log.Print(err)
				return
			}
		}
	}()

	recvSum := sha256.New()
	var got int64
	for i := 0; i < numChunks; i++ {
		p := rx.Recv()
		if p == nil {
			log.Fatal("receiver closed early")
		}
		recvSum.Write(p.Payload)
		got += int64(p.Len())
	}
	elapsed := time.Since(start)
	pumpsDone := make(chan struct{})
	go func() { pumps.Wait(); close(pumpsDone) }()

	if !bytes.Equal(sendSum.Sum(nil), recvSum.Sum(nil)) {
		log.Fatal("checksum mismatch: stream corrupted or reordered")
	}
	fmt.Printf("transferred %d MiB across %d TCP connections in %v (%.0f Mb/s)\n",
		totalMiB, nch, elapsed.Round(time.Millisecond),
		float64(got)*8/elapsed.Seconds()/1e6)
	fmt.Println("SHA-256 of sent and received streams match: exact FIFO reassembly")
	select {
	case <-pumpsDone:
	case <-time.After(3 * time.Second):
	}
}
