// Duplex session: a bidirectional striped connection over two UDP
// channel pairs per direction, with credit-based flow control
// piggybacked on the periodic markers (Section 6.3). A fast producer is
// throttled to the consumer's pace with zero packet loss, despite UDP
// providing no flow control of its own.
//
//	go run ./examples/duplex
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"stripe"
)

func main() {
	const nch = 2
	cfg := stripe.SessionConfig{
		Config: stripe.Config{
			Quanta:  stripe.UniformQuanta(nch, 1500),
			Markers: stripe.MarkerPolicy{Every: 2, Position: 0},
		},
		CreditWindow:   16 * 1024,
		MarkerInterval: 5 * time.Millisecond,
	}

	// Two directions x two channels of loopback UDP.
	mkDirection := func() ([]stripe.ChannelSender, []*stripe.UDPChannel) {
		send := make([]stripe.ChannelSender, nch)
		recv := make([]*stripe.UDPChannel, nch)
		for i := 0; i < nch; i++ {
			s, r, err := stripe.NewUDPChannelPair()
			if err != nil {
				log.Fatal(err)
			}
			send[i], recv[i] = s, r
		}
		return send, recv
	}
	abSend, abRecv := mkDirection()
	baSend, baRecv := mkDirection()

	alice, err := stripe.NewSession(abSend, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := stripe.NewSession(baSend, cfg)
	if err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	var pumps sync.WaitGroup
	pump := func(recv []*stripe.UDPChannel, dst *stripe.Session) {
		for i, rc := range recv {
			pumps.Add(1)
			go func(i int, rc *stripe.UDPChannel) {
				defer pumps.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					p, err := rc.ReadPacket(50 * time.Millisecond)
					if err != nil || p == nil {
						continue
					}
					dst.Arrive(i, p)
				}
			}(i, rc)
		}
	}
	pump(abRecv, bob)   // alice -> bob
	pump(baRecv, alice) // bob -> alice

	const n = 400
	start := time.Now()

	// Alice floods requests; Bob consumes slowly and answers each one.
	go func() {
		for i := 0; i < n; i++ {
			req := make([]byte, 900)
			copy(req, fmt.Sprintf("req-%04d", i))
			if err := alice.SendBytes(req); err != nil {
				log.Print(err)
				return
			}
		}
	}()
	go func() {
		for i := 0; i < n; i++ {
			req := bob.Recv()
			if req == nil {
				return
			}
			time.Sleep(500 * time.Microsecond) // slow consumer
			resp := make([]byte, 200)
			copy(resp, fmt.Sprintf("ack-%04d", i))
			if err := bob.SendBytes(resp); err != nil {
				log.Print(err)
				return
			}
		}
	}()

	for i := 0; i < n; i++ {
		resp := alice.Recv()
		want := fmt.Sprintf("ack-%04d", i)
		if string(resp.Payload[:len(want)]) != want {
			log.Fatalf("response %d = %q, want %q", i, resp.Payload[:8], want)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	pumps.Wait()
	alice.Close()
	bob.Close()

	fmt.Printf("%d request/response pairs over %d striped UDP channels in %v\n", n, nch, elapsed.Round(time.Millisecond))
	fmt.Printf("bob consumed at ~2000 req/s; alice was credit-gated to match, losing nothing\n")
	fmt.Printf("alice recv stats: %+v\n", alice.Stats())
	fmt.Printf("bob   recv stats: %+v\n", bob.Stats())
}
