// Failover: stripe a transfer across three TCP connections, kill one
// cold mid-transfer, and plug in a replacement connection — the dynamic
// membership machinery (health-monitor eviction, announced joins at the
// next round boundary) keeps delivery FIFO and lossless on the
// survivors throughout.
//
//	go run ./examples/failover
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"stripe"
)

const (
	nch    = 3
	killCh = 1
	total  = 6000
)

func main() {
	colA := stripe.NewNamedCollector("failover-a", nch)
	colB := stripe.NewNamedCollector("failover-b", nch)
	colA.SetChecker(stripe.NewChecker())
	colB.SetChecker(stripe.NewChecker())

	cfg := func(col *stripe.Collector) stripe.SessionConfig {
		return stripe.SessionConfig{
			Config:         stripe.Config{Quanta: stripe.UniformQuanta(nch, 1500), Mode: stripe.ModeLogical, Collector: col},
			CreditWindow:   32 * 1024,
			MarkerInterval: 2 * time.Millisecond,
			Health:         stripe.HealthConfig{EvictAfter: 3},
		}
	}

	// One TCP connection per channel per direction. The reverse path
	// carries the markers that piggyback credits and membership
	// announcements back to A.
	var stop atomic.Bool
	var pumps sync.WaitGroup
	pump := func(rc *stripe.TCPChannel, deliver func(*stripe.Packet)) {
		defer pumps.Done()
		for !stop.Load() {
			p, err := rc.ReadPacket(50 * time.Millisecond)
			if err != nil {
				return // the killed connection, or teardown
			}
			if p != nil {
				deliver(p)
			}
		}
	}

	txAB := make([]stripe.ChannelSender, nch)
	rxAB := make([]*stripe.TCPChannel, nch)
	txBA := make([]stripe.ChannelSender, nch)
	for i := 0; i < nch; i++ {
		s, r, err := stripe.NewTCPChannelPair()
		if err != nil {
			log.Fatal(err)
		}
		txAB[i], rxAB[i] = s, r
	}

	a, err := stripe.NewSession(txAB, cfg(colA))
	if err != nil {
		log.Fatal(err)
	}
	// B's transmit direction, pumped back into A.
	for i := 0; i < nch; i++ {
		s, r, err := stripe.NewTCPChannelPair()
		if err != nil {
			log.Fatal(err)
		}
		txBA[i] = s
		pumps.Add(1)
		i := i
		go pump(r, func(p *stripe.Packet) { a.Arrive(i, p) })
	}
	b, err := stripe.NewSession(txBA, cfg(colB))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nch; i++ {
		pumps.Add(1)
		i := i
		go pump(rxAB[i], func(p *stripe.Packet) { b.Arrive(i, p) })
	}

	var delivered, fifoBreaks atomic.Int64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		last := int64(-1)
		for {
			p := b.Recv()
			if p == nil {
				return
			}
			idx := int64(binary.BigEndian.Uint64(p.Payload[:8]))
			if idx <= last {
				fifoBreaks.Add(1)
			}
			last = idx
			delivered.Add(1)
		}
	}()

	state := func() string {
		tx, _ := a.ChannelState(killCh)
		return tx.String()
	}
	waitRemoved := func() {
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			if tx, _ := a.ChannelState(killCh); tx == stripe.MemberRemoved {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	fmt.Printf("striping %d packets across %d TCP connections\n", total, nch)
	for i := 0; i < total; i++ {
		switch i {
		case total / 3:
			// Kill connection 1 cold: writes start failing at A, the
			// error streak trips, and the health monitor evicts the
			// channel. The receiver retires its slot and the survivors
			// carry the stream.
			txAB[killCh].(*stripe.TCPChannel).Close()
			rxAB[killCh].Close()
			fmt.Printf("[%2d%%] connection %d killed (state: %s)\n", 100*i/total, killCh, state())
		case total / 2:
			waitRemoved()
			fmt.Printf("[%2d%%] channel %d evicted by the health monitor (state: %s)\n", 100*i/total, killCh, state())
			// Plug in a replacement connection and rejoin the channel.
			// The join is announced for the next round boundary, so the
			// receiver arms its skip rule before the newcomer's first
			// service — FIFO holds across the grown set.
			s, r, err := stripe.NewTCPChannelPair()
			if err != nil {
				log.Fatal(err)
			}
			pumps.Add(1)
			go pump(r, func(p *stripe.Packet) { b.Arrive(killCh, p) })
			if err := a.AddChannel(killCh, s); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%2d%%] channel %d rejoined on a fresh connection (state: %s)\n", 100*i/total, killCh, state())
		}
		payload := make([]byte, 200)
		binary.BigEndian.PutUint64(payload, uint64(i))
		if err := a.SendBytes(payload); err != nil {
			log.Fatal(err)
		}
	}

	// Drain: the tail rides the post-rejoin three-channel set.
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		bs := b.Stats()
		if delivered.Load()+bs.MemberLost+bs.MemberDrops >= total {
			break
		}
		time.Sleep(time.Millisecond)
	}

	snapA, snapB := a.Snapshot(), b.Snapshot()
	bs := b.Stats()
	stop.Store(true)
	a.Close()
	b.Close()
	pumps.Wait()
	<-consumerDone

	var evictions, reinstates int64
	for _, cs := range snapA.Channels {
		evictions += cs.MemberEvictions
		reinstates += cs.MemberReinstates
	}
	fmt.Printf("\ndelivered %d/%d packets (%d destroyed with the dead connection, declared lost: %d)\n",
		delivered.Load(), total, int64(total)-delivered.Load()-bs.MemberLost-bs.MemberDrops, bs.MemberLost+bs.MemberDrops)
	fmt.Printf("FIFO violations: %d, invariant violations: %d, evictions: %d\n",
		fifoBreaks.Load(), snapA.InvariantViolations+snapB.InvariantViolations, evictions)
	if fifoBreaks.Load() == 0 {
		fmt.Println("delivery stayed strictly FIFO through the kill, eviction, and rejoin")
	}
}
