// Dissimilar links: stripe over a 4 Mb/s and a 10 Mb/s channel (think
// Ethernet + ATM PVC, scaled down for a quick run) and show that SRR
// with bandwidth-proportional quanta aggregates both links, while plain
// round robin is pinned near twice the slower link — the Section 6.2
// comparison, live.
//
//	go run ./examples/dissimilar
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"stripe"
)

const (
	slowRate = 4e6
	fastRate = 10e6
	seconds  = 3
)

// run stripes a backlogged stream of 1000/200-byte alternating packets
// (the adversarial mix) for a fixed duration and returns goodput.
func run(label string, cfg stripe.Config) float64 {
	const nch = 2

	chans := make([]*stripe.LocalChannel, nch)
	senders := make([]stripe.ChannelSender, nch)
	for i, rate := range []float64{slowRate, fastRate} {
		chans[i] = stripe.NewLocalChannel(stripe.LocalChannelConfig{
			RateBps: rate,
			Delay:   2 * time.Millisecond,
			Seed:    int64(i),
		})
		senders[i] = chans[i]
	}
	tx, err := stripe.NewSender(senders, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := stripe.NewReceiver(nch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var pumps sync.WaitGroup
	for i, ch := range chans {
		pumps.Add(1)
		go func(i int, ch *stripe.LocalChannel) {
			defer pumps.Done()
			for p := range ch.Out() {
				rx.Arrive(i, p)
			}
		}(i, ch)
	}

	stop := time.After(seconds * time.Second)
	done := make(chan struct{})
	var bytes int64
	go func() {
		defer close(done)
		for {
			p := rx.Recv()
			if p == nil {
				return
			}
			bytes += int64(p.Len())
		}
	}()

	// Backlogged sender: LocalChannel.Send applies backpressure when a
	// link's transmit queue is full, so the striper paces itself.
	i := 0
sendLoop:
	for {
		select {
		case <-stop:
			break sendLoop
		default:
		}
		size := 1000
		if i%2 == 1 {
			size = 200
		}
		if err := tx.SendBytes(make([]byte, size)); err != nil {
			break
		}
		i++
	}
	for _, ch := range chans {
		ch.Close()
	}
	pumps.Wait()
	rx.Close()
	<-done

	mbps := float64(bytes) * 8 / seconds / 1e6
	fmt.Printf("%-28s %6.2f Mb/s\n", label, mbps)
	return mbps
}

func main() {
	fmt.Printf("two links: %.0f + %.0f Mb/s; alternating 1000/200-byte packets, %ds each run\n\n",
		slowRate/1e6, fastRate/1e6, seconds)

	quanta, err := stripe.QuantaForRates([]float64{slowRate, fastRate}, 1500)
	if err != nil {
		log.Fatal(err)
	}
	srr := run("SRR (weighted quanta)", stripe.Config{Quanta: quanta})
	rr := run("RR (one packet per link)", stripe.Config{Scheme: stripe.SchemeRR, Quanta: stripe.UniformQuanta(2, 1)})

	fmt.Printf("\naggregate capacity %.0f Mb/s; SRR achieves %.0f%%, RR only %.0f%%\n",
		(slowRate+fastRate)/1e6, srr/((slowRate+fastRate)/1e6)*100, rr/((slowRate+fastRate)/1e6)*100)
	fmt.Println("RR ignores packet sizes, so the alternating workload lands every large")
	fmt.Println("packet on one link — the Section 6.2 pathology SRR's byte accounting avoids.")
}
