// Quickstart: stripe a message stream across four in-process channels
// with different latencies, and read it back in exact FIFO order.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"stripe"
)

func main() {
	const nch = 4

	// One config shared by both ends: equal 1500-byte quanta (use
	// stripe.QuantaForRates for dissimilar links).
	cfg := stripe.Config{Quanta: stripe.UniformQuanta(nch, 1500)}

	// Four channels with very different skews: packets will arrive
	// wildly out of order across channels, and logical reception will
	// still deliver FIFO.
	chans := make([]*stripe.LocalChannel, nch)
	senders := make([]stripe.ChannelSender, nch)
	for i := range chans {
		chans[i] = stripe.NewLocalChannel(stripe.LocalChannelConfig{
			Delay:  time.Duration(i*i) * 3 * time.Millisecond,
			Jitter: 2 * time.Millisecond,
			Seed:   int64(i),
		})
		senders[i] = chans[i]
	}

	tx, err := stripe.NewSender(senders, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := stripe.NewReceiver(nch, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Receive pumps: one goroutine per channel feeding the resequencer.
	var pumps sync.WaitGroup
	for i, ch := range chans {
		pumps.Add(1)
		go func(i int, ch *stripe.LocalChannel) {
			defer pumps.Done()
			for p := range ch.Out() {
				rx.Arrive(i, p)
			}
		}(i, ch)
	}

	const n = 48
	go func() {
		for i := 0; i < n; i++ {
			msg := make([]byte, 600+(i*113)%800) // variable-length packets
			copy(msg, fmt.Sprintf("message %02d", i))
			if err := tx.SendBytes(msg); err != nil {
				log.Fatal(err)
			}
		}
	}()

	for i := 0; i < n; i++ {
		p := rx.Recv()
		fmt.Printf("delivered in order: %s (%d bytes)\n", p.Payload[:10], p.Len())
	}

	for _, ch := range chans {
		ch.Close()
	}
	pumps.Wait()

	st := tx.Stats()
	fmt.Printf("\nsent %d packets (%d bytes) + %d markers over %d channels; all FIFO\n",
		st.DataPackets, st.DataBytes, st.Markers, nch)
}
