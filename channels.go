package stripe

import (
	"net"
	"time"

	"stripe/internal/channel"
	"stripe/internal/netchan"
)

// LocalChannelConfig configures an in-process channel with realistic
// impairments, useful for demos and tests.
type LocalChannelConfig struct {
	// RateBps limits throughput (bits per second); zero is unlimited.
	RateBps float64
	// Delay is the propagation delay.
	Delay time.Duration
	// Jitter adds uniform random extra delay in [0, Jitter); FIFO order
	// is preserved regardless.
	Jitter time.Duration
	// Loss is the probability a packet is silently dropped.
	Loss float64
	// Seed makes the loss process reproducible.
	Seed int64
	// Collector, when non-nil, receives this channel's loss count and
	// transmit queue depth under channel index Index.
	Collector *Collector
	// Index is the channel's index within the stripe, for labeling the
	// Collector's per-channel metrics.
	Index int
}

// LocalChannel is a goroutine-driven in-process FIFO channel. The same
// value is used on both ends: Send on the transmit side, Out (or Recv)
// on the receive side.
type LocalChannel struct {
	live *channel.Live
}

// NewLocalChannel starts an in-process channel.
func NewLocalChannel(cfg LocalChannelConfig) *LocalChannel {
	return &LocalChannel{live: channel.NewLive(channel.LiveConfig{
		RateBps: cfg.RateBps,
		Delay:   cfg.Delay,
		Jitter:  cfg.Jitter,
		Impairments: channel.Impairments{
			Loss: cfg.Loss,
			Seed: cfg.Seed,
		},
		Obs:   cfg.Collector,
		Index: cfg.Index,
	})}
}

// Send implements ChannelSender.
func (l *LocalChannel) Send(p *Packet) error { return l.live.Send(p) }

// Recv implements ChannelReceiver without blocking.
func (l *LocalChannel) Recv() (*Packet, bool) { return l.live.Recv() }

// Out exposes the delivery stream for blocking consumption; it closes
// when the channel is closed.
func (l *LocalChannel) Out() <-chan *Packet { return l.live.Out() }

// Close stops the channel.
func (l *LocalChannel) Close() { l.live.Close() }

// UDPChannel is one striped channel over a loopback UDP socket pair —
// a channel with neither reliability nor flow control, the Section 6.3
// configuration.
type UDPChannel = netchan.UDPChannel

// NewUDPChannelPair returns connected send and receive ends over
// loopback UDP.
func NewUDPChannelPair() (send, recv *UDPChannel, err error) { return netchan.UDPPair() }

// TCPChannel is one striped channel over a TCP connection (reliable,
// flow controlled, FIFO) with length-prefixed framing — the "channel as
// a transport connection" case.
type TCPChannel = netchan.TCPChannel

// NewTCPChannel wraps an established connection as a striped channel.
func NewTCPChannel(conn net.Conn) *TCPChannel { return netchan.NewTCPChannel(conn) }

// NewTCPChannelPair returns both ends of a loopback TCP channel.
func NewTCPChannelPair() (*TCPChannel, *TCPChannel, error) { return netchan.TCPPair() }
