package stripe

import (
	"errors"
	"sync"
	"time"

	"stripe/internal/core"
	"stripe/internal/flowcontrol"
	"stripe/internal/obs"
	"stripe/internal/packet"
)

// SessionConfig configures one end of a bidirectional striped
// connection.
type SessionConfig struct {
	// Config is the striping configuration, identical on both ends.
	Config
	// CreditWindow, when positive, enables credit-based flow control
	// with the given per-channel window in bytes: this end grants the
	// peer credits against its own receive buffers, piggybacked on this
	// end's periodic markers, exactly as Section 6.3 suggests. Sends
	// block while the peer's grant is exhausted.
	CreditWindow int64
	// MarkerInterval, when positive, cuts marker batches from a timer in
	// addition to the round-based policy, so markers (and piggybacked
	// credits) keep flowing when the data stream idles. Default 50ms;
	// negative disables the timer.
	MarkerInterval time.Duration
}

// Session is one end of a duplex striped connection: a Sender for this
// end's data and a Receiver for the peer's, with markers carrying
// credits between them. Both directions must use the same number of
// channels. Safe for concurrent use.
type Session struct {
	// One mutex guards both directions: marker processing on the
	// receive path applies credits to the transmit gate, and marker
	// emission on the transmit path reads grants from the receive
	// counters, so split locks would deadlock.
	mu     sync.Mutex
	txCond *sync.Cond
	rxCond *sync.Cond
	st     *core.Striper
	gate   *flowcontrol.Gate
	rs     *core.Resequencer
	mgr    *flowcontrol.Manager
	col    *Collector

	closed chan struct{}
	once   sync.Once
}

// NewSession builds one end over this end's transmit channels. Feed
// packets received from the peer (on all kinds) to Arrive.
func NewSession(channels []ChannelSender, cfg SessionConfig) (*Session, error) {
	n := len(channels)
	if len(cfg.Quanta) != n {
		return nil, errors.New("stripe: Quanta must have one entry per channel")
	}
	s := &Session{closed: make(chan struct{}), col: cfg.Collector}
	s.txCond = sync.NewCond(&s.mu)
	s.rxCond = sync.NewCond(&s.mu)

	// Receive side first: the credit manager reads its drain counters.
	maxBuf := cfg.MaxBuffered
	switch {
	case maxBuf < 0: // explicitly unbounded
		maxBuf = 0
	case maxBuf == 0 && cfg.CreditWindow > 0:
		// Flow control bounds legitimate occupancy, so default to the
		// cap it implies instead of unbounded memory.
		maxBuf = DefaultMaxBuffered(n, cfg.CreditWindow, cfg.Quanta)
	}
	rcfg := core.ResequencerConfig{
		Mode:        cfg.Mode,
		N:           n,
		Obs:         cfg.Collector,
		MaxBuffered: maxBuf,
		// Invoked from the receive path with s.mu already held.
		OnMarker: func(c int, m packet.MarkerBlock) {
			if m.Credits == 0 || s.gate == nil {
				return
			}
			if s.gate.ApplyGrant(c, int64(m.Credits)) != nil {
				s.col.OnCreditRejected(c)
				return
			}
			s.txCond.Broadcast()
		},
	}
	if cfg.Mode == ModeLogical {
		sc, err := cfg.sched()
		if err != nil {
			return nil, err
		}
		rcfg.Sched = sc
	}
	rs, err := core.NewResequencer(rcfg)
	if err != nil {
		return nil, err
	}
	s.rs = rs

	// A lifecycle tracer keys packets by the sequence identity they
	// carry; without AddSeq that identity is in-process only and never
	// survives an encoded channel, so every remote lifecycle would be
	// torn. Configuring a tracer therefore implies explicit sequence
	// numbers.
	addSeq := cfg.AddSeq
	if !addSeq && cfg.Collector.Tracer() != nil {
		addSeq = true
	}
	scfg := core.StriperConfig{
		Channels: channels,
		Markers:  cfg.markers(),
		AddSeq:   addSeq,
		Obs:      cfg.Collector,
	}
	scfg.Sched, err = cfg.sched()
	if err != nil {
		return nil, err
	}
	if cfg.CreditWindow > 0 {
		gate, err := flowcontrol.NewGate(n, cfg.CreditWindow)
		if err != nil {
			return nil, err
		}
		// Invoked from the transmit path with s.mu already held.
		mgr, err := flowcontrol.NewManager(n, cfg.CreditWindow, func(c int) int64 {
			return rs.DeliveredBytesOn(c)
		})
		if err != nil {
			return nil, err
		}
		gate.SetObs(cfg.Collector)
		mgr.SetObs(cfg.Collector)
		s.gate = gate
		s.mgr = mgr
		scfg.Gate = gate
		scfg.MarkerCredits = func(c int) uint64 { return uint64(mgr.GrantFor(c)) }
		// Feed the invariant checker the gate's live credit ledgers. The
		// checker runs from flush paths that already hold s.mu, which is
		// also what guards the gate, so the reads are consistent.
		window := cfg.CreditWindow
		cfg.Collector.SetCreditSource(func() []obs.CreditAccount {
			accts := make([]obs.CreditAccount, n)
			for c := 0; c < n; c++ {
				sent := gate.Sent(c)
				accts[c] = obs.CreditAccount{
					Channel:  c,
					Granted:  sent + gate.Remaining(c),
					Consumed: sent,
					Window:   window,
				}
			}
			return accts
		})
	}
	st, err := core.NewStriper(scfg)
	if err != nil {
		return nil, err
	}
	s.st = st

	interval := cfg.MarkerInterval
	if interval == 0 {
		interval = 50 * time.Millisecond
	}
	if interval > 0 {
		go s.markerTimer(interval)
	}
	return s, nil
}

func (s *Session) markerTimer(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			s.st.EmitMarkers()
			s.mu.Unlock()
		}
	}
}

// ErrSessionClosed is returned by Send after Close.
var ErrSessionClosed = errors.New("stripe: session closed")

// Send stripes one packet toward the peer, blocking while flow control
// holds the selected channel (credits arrive on the peer's markers).
func (s *Session) Send(p *Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var stalled time.Time
	for {
		select {
		case <-s.closed:
			s.noteStall(stalled)
			return ErrSessionClosed
		default:
		}
		err := s.st.Send(p)
		if err != core.ErrGated {
			s.noteStall(stalled)
			return err
		}
		if s.col != nil && stalled.IsZero() {
			stalled = time.Now()
		}
		s.txCond.Wait()
	}
}

// noteStall charges the time since the first gated attempt of a Send
// to the collector's credit-stall clock.
func (s *Session) noteStall(since time.Time) {
	if s.col == nil || since.IsZero() {
		return
	}
	s.col.AddCreditStall(time.Since(since))
}

// SendBytes stripes a payload.
func (s *Session) SendBytes(payload []byte) error { return s.Send(Data(payload)) }

// Arrive hands the session a packet received from the peer on channel
// c (any kind: data, markers with credits, resets).
func (s *Session) Arrive(c int, p *Packet) {
	s.mu.Lock()
	// Process piggybacked credit state immediately rather than when the
	// marker is consumed in scan order: grants and reconciled positions
	// are monotone, so reading them early is safe, and it keeps the
	// transmit side live even when the application is slow to Recv.
	if p.Kind == KindMarker {
		if m, err := packet.MarkerOf(p); err == nil && int(m.Channel) == c {
			// Reconcile before the resequencer sees the marker: right now
			// the per-channel FIFO guarantees every data byte the peer
			// sent before cutting this marker has either arrived or is
			// lost, so Sent − arrived is the channel's exact cumulative
			// loss and the peer's window can be re-granted past it.
			if s.mgr != nil {
				s.mgr.Reconcile(c, int64(m.Sent),
					s.rs.ArrivedBytesOn(c), s.rs.BufferedBytesOn(c))
			}
			if s.gate != nil && m.Credits > 0 {
				if s.gate.ApplyGrant(c, int64(m.Credits)) != nil {
					s.col.OnCreditRejected(c)
				} else {
					s.txCond.Broadcast()
				}
			}
		}
	}
	s.rs.Arrive(c, p)
	s.mu.Unlock()
	s.rxCond.Broadcast()
}

// TryRecv returns the next in-order packet without blocking.
func (s *Session) TryRecv() (*Packet, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rs.Next()
}

// Recv blocks for the next in-order packet, or returns nil when the
// session is closed.
func (s *Session) Recv() *Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if p, ok := s.rs.Next(); ok {
			return p
		}
		select {
		case <-s.closed:
			return nil
		default:
		}
		s.rxCond.Wait()
	}
}

// EmitMarkers cuts a marker batch (with piggybacked credits) now.
func (s *Session) EmitMarkers() {
	s.mu.Lock()
	s.st.EmitMarkers()
	s.mu.Unlock()
}

// Close stops the marker timer and unblocks Send and Recv.
func (s *Session) Close() {
	s.once.Do(func() { close(s.closed) })
	s.txCond.Broadcast()
	s.rxCond.Broadcast()
}

// Stats returns this end's receive counters.
func (s *Session) Stats() ReceiverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rs.Stats()
}

// SendStats returns this end's transmit counters, including the
// per-channel data load.
func (s *Session) SendStats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Stats()
}

// Snapshot returns the attached Collector's metrics (the zero Snapshot
// when no Collector was configured). It briefly takes the session lock
// to flush the batched transmit counters first, so the snapshot is
// exact as of this call.
func (s *Session) Snapshot() Snapshot {
	if s.col == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	s.st.SyncObs()
	s.mu.Unlock()
	return s.col.Snapshot()
}

// CreditRemaining reports the unused grant for channel c (0 when flow
// control is disabled).
func (s *Session) CreditRemaining(c int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gate == nil {
		return 0
	}
	return s.gate.Remaining(c)
}
