package stripe

import (
	"errors"
	"sync"
	"time"

	"stripe/internal/core"
	"stripe/internal/flowcontrol"
	"stripe/internal/obs"
	"stripe/internal/packet"
)

// SessionConfig configures one end of a bidirectional striped
// connection.
type SessionConfig struct {
	// Config is the striping configuration, identical on both ends.
	Config
	// CreditWindow, when positive, enables credit-based flow control
	// with the given per-channel window in bytes: this end grants the
	// peer credits against its own receive buffers, piggybacked on this
	// end's periodic markers, exactly as Section 6.3 suggests. Sends
	// block while the peer's grant is exhausted.
	CreditWindow int64
	// MarkerInterval, when positive, cuts marker batches from a timer in
	// addition to the round-based policy, so markers (and piggybacked
	// credits) keep flowing when the data stream idles. Default 50ms;
	// negative disables the timer (which also disables the health
	// monitor's periodic checks).
	MarkerInterval time.Duration
	// Health tunes the channel health monitor; the zero value enables
	// send-error eviction with defaults. See HealthConfig.
	Health HealthConfig
}

// HealthConfig tunes the session's channel health monitor, which evicts
// channels that are observably dead and reinstates them on recovery.
// Eviction is a forced membership removal: the scheduler stops
// selecting the channel, its outstanding credit is returned, the
// receive side drains what arrived and declares the missing tail lost,
// and the survivors carry the stream on. The zero value enables
// send-error eviction with the defaults below.
type HealthConfig struct {
	// Disable turns the health monitor off entirely.
	Disable bool
	// EvictAfter is the consecutive transport-error streak on a channel
	// (data, marker, or announcement sends) that triggers eviction.
	// Default 8; negative disables error-based eviction.
	EvictAfter int64
	// MarkerSilence, when positive, evicts a channel that has been
	// marker-silent for this long after having delivered at least one
	// marker. Markers flow at a steady cadence on healthy channels, so
	// prolonged silence means the receive direction is dead even when
	// sends still succeed. Zero disables silence-based eviction.
	MarkerSilence time.Duration
	// ReinstateAfter is the consecutive successful probes (one per
	// marker-timer tick) after which an evicted channel is re-admitted.
	// Default 3; negative disables automatic reinstatement.
	ReinstateAfter int
	// ScoreEvictBelow, when positive, adds evidence-based eviction from
	// the windowed health score: an active channel whose HealthScore
	// stays below this threshold (0-100) for ScoreStreak consecutive
	// rollup windows is evicted. It catches channels that are degrading
	// — heavy loss, resync storms, runaway latency — long before the
	// error-streak rule, which only sees hard transport errors, would
	// fire. Requires a Windows rollup attached to the session's
	// Collector (stripe.NewWindows); without one this setting is inert.
	// Zero disables score-based eviction.
	ScoreEvictBelow int
	// ScoreStreak is the number of consecutive below-threshold rollup
	// windows required before a score eviction. Default 2; values below
	// 1 select the default. Shared by the peer-score rule, where it
	// counts consecutive below-threshold peer reports instead.
	ScoreStreak int
	// PeerScoreEvictBelow, when positive, adds eviction on the peer's
	// evidence: an active channel whose peer-reported score (loss as the
	// *receiver* measured it, plus resync rate) stays below this
	// threshold (0-100) for ScoreStreak consecutive telemetry reports is
	// evicted. This is the rule that catches silent loss — a transport
	// that accepts every send but delivers nothing keeps the local error
	// streak at zero forever; only the peer can report the bytes never
	// arrived. Zero disables peer-score eviction.
	PeerScoreEvictBelow int
}

// Session is one end of a duplex striped connection: a Sender for this
// end's data and a Receiver for the peer's, with markers carrying
// credits between them. Both directions must use the same number of
// channels. Safe for concurrent use.
type Session struct {
	// One mutex guards both directions: marker processing on the
	// receive path applies credits to the transmit gate, and marker
	// emission on the transmit path reads grants from the receive
	// counters, so split locks would deadlock.
	mu     sync.Mutex
	txCond *sync.Cond
	rxCond *sync.Cond
	st     *core.Striper
	gate   *flowcontrol.Gate
	rs     *core.Resequencer
	mgr    *flowcontrol.Manager
	col    *Collector

	// Membership and health state (guarded by mu).
	n          int
	window     int64
	quanta     []int64
	autoMaxBuf bool // MaxBuffered was derived; recompute it on membership changes
	health     HealthConfig
	evicted    []bool      // health-evicted, candidates for automatic reinstatement
	probeOK    []int       // consecutive successful probes per evicted channel
	lastMarker []time.Time // last marker arrival per channel, for silence detection
	lowScore   []int       // consecutive below-threshold health-score windows
	lastFoldAt int64       // AtNs of the newest rollup the score check consumed

	// Peer telemetry plane (guarded by mu where noted; the PeerView has
	// its own internal synchronization).
	peer        *obs.PeerView
	peerLow     []int  // consecutive below-threshold peer reports (mu)
	lastPeerSeq uint64 // Seq of the newest peer report the check consumed (mu)

	// one is Send's batch of one (guarded by mu), so the single-packet
	// path rides sendBatchLocked without allocating a slice per call.
	one [1]*packet.Packet

	closed chan struct{}
	once   sync.Once
}

// NewSession builds one end over this end's transmit channels. Feed
// packets received from the peer (on all kinds) to Arrive.
func NewSession(channels []ChannelSender, cfg SessionConfig) (*Session, error) {
	n := len(channels)
	if len(cfg.Quanta) != n {
		return nil, errors.New("stripe: Quanta must have one entry per channel")
	}
	s := &Session{closed: make(chan struct{}), col: cfg.Collector}
	s.txCond = sync.NewCond(&s.mu)
	s.rxCond = sync.NewCond(&s.mu)
	s.n = n
	s.window = cfg.CreditWindow
	s.quanta = append([]int64(nil), cfg.Quanta...)
	s.health = cfg.Health
	s.evicted = make([]bool, n)
	s.probeOK = make([]int, n)
	s.lastMarker = make([]time.Time, n)
	s.lowScore = make([]int, n)
	s.peerLow = make([]int, n)
	s.peer = obs.NewPeerView(n)
	s.autoMaxBuf = cfg.MaxBuffered == 0 && cfg.CreditWindow > 0

	// Receive side first: the credit manager reads its drain counters.
	maxBuf := cfg.MaxBuffered
	switch {
	case maxBuf < 0: // explicitly unbounded
		maxBuf = 0
	case maxBuf == 0 && cfg.CreditWindow > 0:
		// Flow control bounds legitimate occupancy, so default to the
		// cap it implies instead of unbounded memory.
		maxBuf = DefaultMaxBuffered(n, cfg.CreditWindow, cfg.Quanta)
	}
	rcfg := core.ResequencerConfig{
		Mode:        cfg.Mode,
		N:           n,
		Obs:         cfg.Collector,
		MaxBuffered: maxBuf,
		// Invoked from the receive path with s.mu already held.
		OnMarker: func(c int, m packet.MarkerBlock) {
			if m.Credits == 0 || s.gate == nil {
				return
			}
			if s.gate.ApplyGrant(c, int64(m.Credits)) != nil {
				s.col.OnCreditRejected(c)
				return
			}
			s.txCond.Broadcast()
		},
		// Invoked from the receive path with s.mu already held: mirror the
		// peer's announced membership onto this end's transmit side, so
		// either end removing a channel retires the full duplex link.
		OnMembership: func(c int, joined bool) { s.onPeerMembership(c, joined) },
		// Invoked from the receive path with s.mu already held: fold the
		// peer's reported view of this end's transmit channels.
		OnTelemetry: func(t packet.TelemetryBlock) {
			s.peer.Apply(t, time.Now().UnixNano())
		},
	}
	if cfg.Mode == ModeLogical {
		sc, err := cfg.sched()
		if err != nil {
			return nil, err
		}
		rcfg.Sched = sc
	}
	rs, err := core.NewResequencer(rcfg)
	if err != nil {
		return nil, err
	}
	s.rs = rs

	// A lifecycle tracer keys packets by the sequence identity they
	// carry; without AddSeq that identity is in-process only and never
	// survives an encoded channel, so every remote lifecycle would be
	// torn. Configuring a tracer therefore implies explicit sequence
	// numbers.
	addSeq := cfg.AddSeq
	if !addSeq && cfg.Collector.Tracer() != nil {
		addSeq = true
	}
	scfg := core.StriperConfig{
		Channels: channels,
		Markers:  cfg.markers(),
		AddSeq:   addSeq,
		Obs:      cfg.Collector,
	}
	scfg.Sched, err = cfg.sched()
	if err != nil {
		return nil, err
	}
	if cfg.CreditWindow > 0 {
		gate, err := flowcontrol.NewGate(n, cfg.CreditWindow)
		if err != nil {
			return nil, err
		}
		// Invoked from the transmit path with s.mu already held.
		mgr, err := flowcontrol.NewManager(n, cfg.CreditWindow, func(c int) int64 {
			return rs.DeliveredBytesOn(c)
		})
		if err != nil {
			return nil, err
		}
		gate.SetObs(cfg.Collector)
		mgr.SetObs(cfg.Collector)
		s.gate = gate
		s.mgr = mgr
		scfg.Gate = gate
		scfg.MarkerCredits = func(c int) uint64 { return uint64(mgr.GrantFor(c)) }
		// Feed the invariant checker the gate's live credit ledgers. The
		// checker runs from flush paths that already hold s.mu, which is
		// also what guards the gate, so the reads are consistent.
		window := cfg.CreditWindow
		cfg.Collector.SetCreditSource(func() []obs.CreditAccount {
			accts := make([]obs.CreditAccount, n)
			for c := 0; c < n; c++ {
				sent := gate.Sent(c)
				accts[c] = obs.CreditAccount{
					Channel:  c,
					Granted:  sent + gate.Remaining(c),
					Consumed: sent,
					Window:   window,
					Retired:  gate.Retired(c),
				}
			}
			return accts
		})
	}
	st, err := core.NewStriper(scfg)
	if err != nil {
		return nil, err
	}
	s.st = st
	// Expose the peer view on the collector, so Snapshot, the health
	// endpoint, and the Prometheus export all carry the peer section.
	cfg.Collector.SetPeerView(s.peer)

	interval := cfg.MarkerInterval
	if interval == 0 {
		interval = 50 * time.Millisecond
	}
	if interval > 0 {
		go s.markerTimer(interval)
	}
	return s, nil
}

func (s *Session) markerTimer(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			s.st.EmitMarkers()
			// Report this end's receive-side view back to the peer on the
			// same cadence the markers flow at. A send error feeds the
			// chosen channel's error streak, which the health tick below
			// already consumes; beyond that a lost report is harmless —
			// telemetry is cumulative and the next tick supersedes it.
			_ = s.st.SendTelemetry(s.rs.TelemetryBlock())
			s.healthTick()
			s.mu.Unlock()
		}
	}
}

// ErrSessionClosed is returned by Send after Close.
var ErrSessionClosed = errors.New("stripe: session closed")

// Send stripes one packet toward the peer, blocking while flow control
// holds the selected channel (credits arrive on the peer's markers).
// Transport failures on one channel are retried: the failing channel's
// error streak grows until the health monitor's threshold evicts it,
// after which the packet goes out on a survivor. Send only returns a
// transport error once no eviction can absorb it (health monitoring
// disabled, or down to the last channel).
func (s *Session) Send(p *Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.one[0] = p
	_, err := s.sendBatchLocked(s.one[:1])
	s.one[0] = nil
	return err
}

// SendBatch stripes pkts in FIFO order toward the peer, taking the
// session lock once for the whole batch and flushing maximal
// same-channel runs in single channel writes. It blocks exactly as Send
// does — while flow control holds the selected channel, and across
// transport-failure retries the health monitor can absorb — and returns
// the number of packets sent. n < len(pkts) only alongside a non-nil
// error (session closed, or a transport error no eviction can absorb);
// pkts[n:] were not sent.
//
// Arrivals (and the credits they carry) are processed by Arrive on
// other goroutines, so a batch blocked on credit makes progress exactly
// as single-packet Sends would; the batch only amortizes lock and
// flush overhead, it never holds the lock while waiting.
func (s *Session) SendBatch(pkts []*Packet) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sendBatchLocked(pkts)
}

// sendBatchLocked is the session transmit loop: Send's historical
// gated-wait and eviction-retry behavior, applied to a batch. Caller
// holds s.mu.
func (s *Session) sendBatchLocked(pkts []*packet.Packet) (int, error) {
	var stalled time.Time
	done := 0
	for done < len(pkts) {
		select {
		case <-s.closed:
			s.noteStall(stalled)
			return done, ErrSessionClosed
		default:
		}
		n, err := s.st.SendBatch(pkts[done:])
		done += n
		if err == core.ErrGated {
			if s.col != nil && stalled.IsZero() {
				stalled = time.Now()
			}
			s.txCond.Wait()
			continue
		}
		var cse *core.ChannelSendError
		if errors.As(err, &cse) && s.evictThreshold() > 0 && s.st.ActiveN() > 1 {
			// The failed send was not accounted to the scheduler, so the
			// retry targets the same channel until its streak trips the
			// eviction threshold; after eviction it goes to a survivor.
			if s.st.ErrStreak(cse.Channel) >= s.evictThreshold() {
				s.evictLocked(cse.Channel, s.st.ErrStreak(cse.Channel))
			}
			continue
		}
		if err != nil {
			s.noteStall(stalled)
			return done, err
		}
	}
	s.noteStall(stalled)
	return done, nil
}

// noteStall charges the time since the first gated attempt of a Send
// to the collector's credit-stall clock.
func (s *Session) noteStall(since time.Time) {
	if s.col == nil || since.IsZero() {
		return
	}
	s.col.AddCreditStall(time.Since(since))
}

// SendBytes stripes a payload.
func (s *Session) SendBytes(payload []byte) error { return s.Send(Data(payload)) }

// Arrive hands the session a packet received from the peer on channel
// c (any kind: data, markers with credits, resets).
func (s *Session) Arrive(c int, p *Packet) {
	s.mu.Lock()
	// Process piggybacked credit state immediately rather than when the
	// marker is consumed in scan order: grants and reconciled positions
	// are monotone, so reading them early is safe, and it keeps the
	// transmit side live even when the application is slow to Recv.
	if p.Kind == KindMarker {
		if m, err := packet.MarkerOf(p); err == nil && int(m.Channel) == c && c >= 0 && c < s.n {
			s.lastMarker[c] = time.Now()
			// Reconcile before the resequencer sees the marker: right now
			// the per-channel FIFO guarantees every data byte the peer
			// sent before cutting this marker has either arrived or is
			// lost, so Sent − arrived is the channel's exact cumulative
			// loss and the peer's window can be re-granted past it.
			if s.mgr != nil {
				s.mgr.Reconcile(c, int64(m.Sent),
					s.rs.ArrivedBytesOn(c), s.rs.BufferedBytesOn(c))
			}
			if s.gate != nil && m.Credits > 0 {
				if s.gate.ApplyGrant(c, int64(m.Credits)) != nil {
					s.col.OnCreditRejected(c)
				} else {
					s.txCond.Broadcast()
				}
			}
		}
	}
	s.rs.Arrive(c, p)
	s.mu.Unlock()
	s.rxCond.Broadcast()
}

// TryRecv returns the next in-order packet without blocking.
func (s *Session) TryRecv() (*Packet, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rs.Next()
}

// Recv blocks for the next in-order packet, or returns nil when the
// session is closed.
func (s *Session) Recv() *Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if p, ok := s.rs.Next(); ok {
			return p
		}
		select {
		case <-s.closed:
			return nil
		default:
		}
		s.rxCond.Wait()
	}
}

// RecvBatch fills dst with as many consecutive in-order packets as are
// deliverable right now, blocking (like Recv) until at least one is
// available, and returns the number filled. Zero means the session was
// closed. The lock is taken once per batch, not once per packet.
//
// Received packets are owned by the caller; pooled ones (the netchan
// receive path draws from the packet pool) may be handed back with
// Packet.Release once their payloads are consumed, which is what keeps
// the steady-state receive path allocation-free.
func (s *Session) RecvBatch(dst []*Packet) int {
	if len(dst) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if n := s.rs.NextBatch(dst); n > 0 {
			return n
		}
		select {
		case <-s.closed:
			return 0
		default:
		}
		s.rxCond.Wait()
	}
}

// EmitMarkers cuts a marker batch (with piggybacked credits) now.
func (s *Session) EmitMarkers() {
	s.mu.Lock()
	s.st.EmitMarkers()
	s.mu.Unlock()
}

// Close stops the marker timer and unblocks Send and Recv.
func (s *Session) Close() {
	s.once.Do(func() { close(s.closed) })
	// Broadcast under the session lock. A credit-stalled sender holds
	// s.mu continuously from its closed-channel check to txCond.Wait;
	// an unlocked broadcast could fire in that window and wake nobody,
	// leaving the sender parked forever (no credits are coming after
	// Close). Taking the lock serializes with that critical section:
	// either the sender sees the closed channel, or it is already
	// waiting when the broadcast fires.
	s.mu.Lock()
	s.txCond.Broadcast()
	s.rxCond.Broadcast()
	s.mu.Unlock()
}

// Stats returns this end's receive counters.
func (s *Session) Stats() ReceiverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rs.Stats()
}

// SendStats returns this end's transmit counters, including the
// per-channel data load.
func (s *Session) SendStats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Stats()
}

// Snapshot returns the attached Collector's metrics (the zero Snapshot
// when no Collector was configured). It briefly takes the session lock
// to flush the batched transmit counters first, so the snapshot is
// exact as of this call.
func (s *Session) Snapshot() Snapshot {
	if s.col == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	s.st.SyncObs()
	s.mu.Unlock()
	return s.col.Snapshot()
}

// PeerView returns the session's peer telemetry view: the remote
// resequencer's reported loss, occupancy, and marker timestamp pairs,
// folded into per-channel scores and one-way delay estimates. The view
// is live (it updates as reports arrive) and safe for concurrent use;
// before the first report Latest returns nil.
func (s *Session) PeerView() *obs.PeerView { return s.peer }

// CreditRemaining reports the unused grant for channel c (0 when flow
// control is disabled).
func (s *Session) CreditRemaining(c int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gate == nil {
		return 0
	}
	return s.gate.Remaining(c)
}

// --- Dynamic membership -------------------------------------------------

// ActiveChannels returns the number of channels currently in this end's
// transmit live set.
func (s *Session) ActiveChannels() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.ActiveN()
}

// ChannelState reports channel c's lifecycle state on this end's
// transmit side and receive side. The two can differ transiently while
// a membership change propagates (for example tx removed, rx still
// draining the peer's in-flight tail).
func (s *Session) ChannelState(c int) (tx, rx MemberState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Member(c), s.rs.MemberState(c)
}

// RemoveChannel gracefully retires channel c from this end's transmit
// set: a final marker batch fixes the channel's position, the departure
// is announced to the peer (which mirrors it onto its own transmit
// side), outstanding credit is returned, and the survivors carry the
// stream on with the fairness band re-formed over them. The receive
// side of c keeps draining the peer's in-flight tail in order and
// retires once the peer's mirrored removal completes. The last active
// channel cannot be removed.
func (s *Session) RemoveChannel(c int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.removeTxLocked(c)
	if err == nil && c >= 0 && c < s.n {
		// Manual removals are not reinstatement candidates.
		s.evicted[c] = false
	}
	return err
}

// AddChannel (re)admits channel c into this end's transmit set,
// optionally replacing its transport with tx (nil reuses the existing
// one). The join is announced to the peer, which re-admits its receive
// side at the announced join round and mirrors the join onto its own
// transmit side, restoring the full duplex link; FIFO delivery over the
// grown set resumes within one marker period.
func (s *Session) AddChannel(c int, tx ChannelSender) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitTxLocked(c, tx)
}

// removeTxLocked retires c from the transmit set and tears down its
// flow-control account. Caller holds s.mu.
func (s *Session) removeTxLocked(c int) error {
	if err := s.st.RemoveChannel(c); err != nil {
		return err
	}
	var returned int64
	if s.gate != nil {
		// Teardown returns the outstanding grant; the account is frozen at
		// granted == consumed so the conservation checker sees no leak.
		returned = s.gate.Retire(c)
	}
	s.col.OnMemberDrain(c, s.st.Round(), returned)
	s.recomputeMaxBufLocked()
	// Senders parked on the removed channel's credit must re-Select.
	s.txCond.Broadcast()
	return nil
}

// admitTxLocked (re)admits c into the transmit set with a fresh credit
// window. Caller holds s.mu.
func (s *Session) admitTxLocked(c int, tx ChannelSender) error {
	wasActive := s.st.Member(c) == core.MemberActive
	join, err := s.st.AddChannel(c, tx)
	if err != nil {
		return err
	}
	if wasActive {
		return nil // transport swap only
	}
	if s.gate != nil {
		s.gate.Readmit(c)
	}
	s.evicted[c] = false
	s.probeOK[c] = 0
	s.lastMarker[c] = time.Time{} // silence detection restarts at the first marker
	// Flush the batched byte counters first so the fairness baseline
	// rebases to an exact byte position.
	s.st.SyncObs()
	s.col.RebaseFairness(c, join)
	s.col.OnMemberJoin(c, join)
	s.recomputeMaxBufLocked()
	s.txCond.Broadcast()
	return nil
}

// onPeerMembership mirrors the peer's announced membership onto this
// end's transmit side, so one end's removal (or join) retires or
// restores the full duplex link. The mirror terminates: re-applying an
// already-applied transition is a no-op and triggers no announcement.
// Invoked by the resequencer with s.mu held.
func (s *Session) onPeerMembership(c int, joined bool) {
	if joined {
		if s.st.Member(c) == core.MemberRemoved {
			_ = s.admitTxLocked(c, nil)
		}
		return
	}
	if s.st.Member(c) == core.MemberActive {
		_ = s.removeTxLocked(c)
	}
}

// evictLocked force-removes channel c after the health monitor (or the
// Send retry loop) observed it dead: transmit removal plus local
// receive-side retirement — a dead link will never complete the
// peer-mirrored drain, and the missing tail is declared lost so the
// stream resumes FIFO on the survivors. Caller holds s.mu.
func (s *Session) evictLocked(c int, value int64) {
	if s.removeTxLocked(c) != nil {
		return
	}
	_ = s.rs.RemoveChannel(c)
	s.evicted[c] = true
	s.probeOK[c] = 0
	s.col.OnMemberEvict(c, value)
}

// evictThreshold returns the effective consecutive-error eviction
// threshold (0 = eviction disabled).
func (s *Session) evictThreshold() int64 {
	if s.health.Disable {
		return 0
	}
	switch {
	case s.health.EvictAfter > 0:
		return s.health.EvictAfter
	case s.health.EvictAfter < 0:
		return 0
	default:
		return 8
	}
}

// reinstateThreshold returns the effective probe streak for automatic
// reinstatement (0 = disabled).
func (s *Session) reinstateThreshold() int {
	if s.health.Disable {
		return 0
	}
	switch {
	case s.health.ReinstateAfter > 0:
		return s.health.ReinstateAfter
	case s.health.ReinstateAfter < 0:
		return 0
	default:
		return 3
	}
}

// scoreTick runs the evidence-based eviction check: an active channel
// whose windowed health score stays below HealthConfig.ScoreEvictBelow
// for ScoreStreak consecutive rollup windows is evicted, with the
// score as the eviction value. Each published rollup advances a
// channel's streak at most once (the marker timer ticks faster than
// the rollup folds). Caller holds s.mu.
func (s *Session) scoreTick() {
	threshold := s.health.ScoreEvictBelow
	if threshold <= 0 {
		return
	}
	snap := s.col.Windows().Latest()
	if snap == nil || snap.AtNs == s.lastFoldAt {
		return
	}
	s.lastFoldAt = snap.AtNs
	streak := s.health.ScoreStreak
	if streak < 1 {
		streak = 2
	}
	for _, h := range snap.Health {
		c := h.Channel
		if c < 0 || c >= s.n {
			continue
		}
		if s.st.Member(c) != core.MemberActive {
			s.lowScore[c] = 0
			continue
		}
		if h.Score >= threshold {
			s.lowScore[c] = 0
			continue
		}
		if s.lowScore[c]++; s.lowScore[c] >= streak && s.st.ActiveN() > 1 {
			s.evictLocked(c, int64(h.Score))
			s.lowScore[c] = 0
		}
	}
}

// peerTick runs the peer-evidence eviction check: an active channel
// whose peer-reported score stays below HealthConfig.PeerScoreEvictBelow
// for ScoreStreak consecutive telemetry reports is evicted, with the
// peer score as the eviction value. Each distinct report advances a
// channel's streak at most once (the marker timer can tick faster than
// peer reports arrive). This is the only rule that sees silent loss:
// the transport accepts every send, so the local error streak never
// moves, but the peer's resequencer measured the bytes that never
// arrived. Caller holds s.mu.
func (s *Session) peerTick() {
	threshold := s.health.PeerScoreEvictBelow
	if threshold <= 0 {
		return
	}
	snap := s.peer.Latest()
	if snap == nil || snap.Seq == s.lastPeerSeq {
		return
	}
	s.lastPeerSeq = snap.Seq
	streak := s.health.ScoreStreak
	if streak < 1 {
		streak = 2
	}
	for i := range snap.Channels {
		pc := &snap.Channels[i]
		c := pc.Channel
		if c < 0 || c >= s.n {
			continue
		}
		if s.st.Member(c) != core.MemberActive {
			s.peerLow[c] = 0
			continue
		}
		if pc.Score >= threshold {
			s.peerLow[c] = 0
			continue
		}
		if s.peerLow[c]++; s.peerLow[c] >= streak && s.st.ActiveN() > 1 {
			s.evictLocked(c, int64(pc.Score))
			s.peerLow[c] = 0
		}
	}
}

// healthTick runs the periodic health checks: error-streak,
// marker-silence, windowed-health-score, and peer-score eviction for
// active channels, liveness probes and reinstatement for evicted ones.
// Runs on the marker timer with s.mu held.
func (s *Session) healthTick() {
	if s.health.Disable {
		return
	}
	s.scoreTick()
	s.peerTick()
	now := time.Now()
	for c := 0; c < s.n; c++ {
		switch {
		case s.st.Member(c) == core.MemberActive:
			if s.st.ActiveN() <= 1 {
				continue // never evict the last channel
			}
			if ea := s.evictThreshold(); ea > 0 && s.st.ErrStreak(c) >= ea {
				s.evictLocked(c, s.st.ErrStreak(c))
				continue
			}
			if s.health.MarkerSilence > 0 && !s.lastMarker[c].IsZero() {
				if sil := now.Sub(s.lastMarker[c]); sil > s.health.MarkerSilence {
					s.evictLocked(c, int64(sil))
				}
			}
		case s.evicted[c] && s.reinstateThreshold() > 0:
			// Probe the evicted channel with an idempotent status
			// announcement; a streak of successful sends is the recovery
			// signal.
			if s.st.ProbeChannel(c) == nil {
				if s.probeOK[c]++; s.probeOK[c] >= s.reinstateThreshold() {
					if s.admitTxLocked(c, nil) == nil {
						s.col.OnMemberReinstate(c)
					}
				}
			} else {
				s.probeOK[c] = 0
			}
		}
	}
}

// recomputeMaxBufLocked re-derives the resequencer's buffer cap for the
// current live set when the cap was derived (not explicitly
// configured): a smaller live set legitimately buffers less, and a
// grown one needs headroom back. Caller holds s.mu.
func (s *Session) recomputeMaxBufLocked() {
	if !s.autoMaxBuf {
		return
	}
	live := make([]int64, 0, s.n)
	for c := 0; c < s.n; c++ {
		if s.st.Member(c) == core.MemberActive {
			live = append(live, s.quanta[c])
		}
	}
	s.rs.SetMaxBuffered(DefaultMaxBuffered(len(live), s.window, live))
}
