package stripe

import (
	"sync"
	"testing"
	"time"

	"stripe/internal/packet"
)

// wirePeerLossSessions connects two sessions back-to-back like
// wireSessions, but with a per-channel silent-loss probability on the
// a→b direction. The b→a direction (which carries b's telemetry
// reports) stays clean.
func wirePeerLossSessions(t *testing.T, nch int, loss []float64, cfg SessionConfig) (a, b *Session, cleanup func()) {
	t.Helper()
	mkChans := func(loss []float64) ([]*LocalChannel, []ChannelSender) {
		chans := make([]*LocalChannel, nch)
		senders := make([]ChannelSender, nch)
		for i := range chans {
			l := 0.0
			if loss != nil {
				l = loss[i]
			}
			chans[i] = NewLocalChannel(LocalChannelConfig{Loss: l, Seed: int64(i + 1)})
			senders[i] = chans[i]
		}
		return chans, senders
	}
	abChans, abSenders := mkChans(loss)
	baChans, baSenders := mkChans(nil)

	a, err := NewSession(abSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewSession(baSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pumps sync.WaitGroup
	pump := func(chans []*LocalChannel, dst *Session) {
		for i, ch := range chans {
			pumps.Add(1)
			go func(i int, ch *LocalChannel) {
				defer pumps.Done()
				for p := range ch.Out() {
					dst.Arrive(i, p)
				}
			}(i, ch)
		}
	}
	pump(abChans, b)
	pump(baChans, a)
	cleanup = func() {
		a.Close()
		b.Close()
		for _, ch := range abChans {
			ch.Close()
		}
		for _, ch := range baChans {
			ch.Close()
		}
		pumps.Wait()
	}
	return a, b, cleanup
}

// TestSessionIgnoresUnknownKinds pins the forward-compatibility
// contract: a session handed control packets with codepoints it does
// not understand drops them — counted, but with no desync, no
// delivery-counter pollution, and FIFO data flow undisturbed.
func TestSessionIgnoresUnknownKinds(t *testing.T) {
	cfg := SessionConfig{Config: Config{Quanta: UniformQuanta(2, 1500)}}
	a, b, cleanup := wireSessions(t, 2, cfg)
	defer cleanup()

	// Future control kinds, injected between data packets.
	for i := 0; i < 3; i++ {
		a.Arrive(i%2, &Packet{Kind: KindTelemetry + 1 + packet.Kind(i), Payload: []byte("from-the-future")})
	}

	const n = 40
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := b.SendBytes([]byte{byte(i), 1, 2, 3}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		p := a.Recv()
		if p == nil {
			t.Fatalf("session closed at packet %d", i)
		}
		if p.Payload[0] != byte(i) {
			t.Fatalf("packet %d arrived out of order: got %d", i, p.Payload[0])
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	st := a.Stats()
	if st.UnknownKinds != 3 {
		t.Errorf("UnknownKinds = %d, want 3", st.UnknownKinds)
	}
	if st.Delivered != n {
		t.Errorf("Delivered = %d, want %d (unknown kinds must not count as data)", st.Delivered, n)
	}
	if st.Resyncs != 0 || st.BadMarkers != 0 {
		t.Errorf("unknown kinds perturbed protocol state: resyncs=%d badMarkers=%d", st.Resyncs, st.BadMarkers)
	}

	// A corrupt telemetry block is likewise dropped and counted.
	a.Arrive(0, &Packet{Kind: KindTelemetry, Payload: []byte("not a telemetry block")})
	if st := a.Stats(); st.BadTelemetry != 1 {
		t.Errorf("BadTelemetry = %d, want 1", st.BadTelemetry)
	}
}

// TestSessionPeerTelemetryReportsSilentLoss checks the tentpole claim
// end to end over in-process channels: a channel that accepts every
// send but silently drops a third of them never trips the sender's
// local error accounting, yet the peer's telemetry reports the loss
// and the sender-side PeerView surfaces it.
func TestSessionPeerTelemetryReportsSilentLoss(t *testing.T) {
	cfg := SessionConfig{
		Config:         Config{Quanta: UniformQuanta(2, 1500), Markers: MarkerPolicy{Every: 4, Position: 0}},
		MarkerInterval: 2 * time.Millisecond,
	}
	a, b, cleanup := wirePeerLossSessions(t, 2, []float64{0, 0.35}, cfg)

	// Keep data flowing so markers carry meaningful Sent positions; b
	// drains whatever survives the lossy channel. Closing the sessions
	// first (cleanup) is what unblocks the workers.
	stop := make(chan struct{})
	var workers sync.WaitGroup
	workers.Add(1)
	go func() {
		defer workers.Done()
		for b.Recv() != nil {
		}
	}()
	workers.Add(1)
	go func() {
		defer workers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if a.SendBytes(make([]byte, 600)) != nil {
				return
			}
		}
	}()
	defer func() { cleanup(); close(stop); workers.Wait() }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := a.PeerView().Latest(); snap != nil && len(snap.Channels) == 2 &&
			snap.Channels[1].LossFrac > 0.1 && snap.Channels[0].LossFrac < snap.Channels[1].LossFrac {
			if snap.Channels[1].Score >= 100 {
				t.Errorf("lossy channel peer score = %d, want < 100", snap.Channels[1].Score)
			}
			return
		}
		if time.Now().After(deadline) {
			snap := a.PeerView().Latest()
			t.Fatalf("peer view never reported the silent loss: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionPeerScoreEviction checks HealthConfig.PeerScoreEvictBelow:
// peer-reported silent loss alone — no local transport errors at all —
// evicts the lossy channel.
func TestSessionPeerScoreEviction(t *testing.T) {
	cfg := SessionConfig{
		Config:         Config{Quanta: UniformQuanta(2, 1500), Markers: MarkerPolicy{Every: 4, Position: 0}},
		MarkerInterval: 2 * time.Millisecond,
		// ReinstateAfter is off: probes *succeed* on a silently-lossy
		// transport (that is what makes the loss silent), so automatic
		// reinstatement would legitimately re-admit the channel and the
		// peer score would evict it again — flapping the test must not
		// depend on.
		Health: HealthConfig{PeerScoreEvictBelow: 90, ReinstateAfter: -1},
	}
	a, b, cleanup := wirePeerLossSessions(t, 2, []float64{0, 0.5}, cfg)

	stop := make(chan struct{})
	var workers sync.WaitGroup
	workers.Add(2)
	go func() {
		defer workers.Done()
		for b.Recv() != nil {
		}
	}()
	go func() {
		defer workers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if a.SendBytes(make([]byte, 600)) != nil {
				return
			}
		}
	}()
	defer func() { cleanup(); close(stop); workers.Wait() }()

	deadline := time.Now().Add(5 * time.Second)
	for a.ActiveChannels() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("peer-score eviction never fired: active=%d peer=%+v",
				a.ActiveChannels(), a.PeerView().Latest())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tx, _ := a.ChannelState(1); tx != MemberRemoved {
		t.Errorf("lossy channel tx state = %v, want removed", tx)
	}
	if tx, _ := a.ChannelState(0); tx != MemberActive {
		t.Errorf("clean channel tx state = %v, want active", tx)
	}
}
