package stripe_test

// One benchmark per table/figure of the paper's evaluation, as required
// by DESIGN.md's experiment index. Each runs the corresponding harness
// experiment at reduced (Quick) scale; `go run ./cmd/stripebench`
// regenerates the full-scale numbers recorded in EXPERIMENTS.md.
//
// The micro-benchmarks at the bottom quantify the paper's "only a few
// extra instructions" claim for SRR and the end-to-end software cost of
// the protocol.
//
// This file lives in the external test package: the harness package
// imports stripe (its flap experiment drives the public session API),
// so an in-package test importing harness would be an import cycle.

import (
	"testing"

	"stripe"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/harness"
	"stripe/internal/obs"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/trace"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if r := e.Run(harness.Config{Quick: true, Seed: int64(i + 1)}); r == nil {
			b.Fatal("experiment returned nil")
		}
	}
}

// BenchmarkTable1 regenerates the Table 1 feature matrix (measured).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure15 regenerates the Figure 15 throughput sweep.
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkSRRvsGRR regenerates the Section 6.2 adversarial-workload
// comparison (paper: 11.2 vs 6.8 Mb/s).
func BenchmarkSRRvsGRR(b *testing.B) { benchExperiment(b, "srrgrr") }

// BenchmarkLossRecovery regenerates the Section 6.3 loss sweep (marker
// recovery up to 80% loss).
func BenchmarkLossRecovery(b *testing.B) { benchExperiment(b, "loss") }

// BenchmarkMarkerFrequency regenerates the Section 6.3 marker-frequency
// study.
func BenchmarkMarkerFrequency(b *testing.B) { benchExperiment(b, "markerfreq") }

// BenchmarkMarkerPosition regenerates the Section 6.3 marker-position
// study.
func BenchmarkMarkerPosition(b *testing.B) { benchExperiment(b, "markerpos") }

// BenchmarkCreditFlowControl regenerates the Section 6.3 credit-based
// flow-control experiment.
func BenchmarkCreditFlowControl(b *testing.B) { benchExperiment(b, "credit") }

// BenchmarkVideoQuasiFIFO regenerates the Section 6.3 NV video study.
func BenchmarkVideoQuasiFIFO(b *testing.B) { benchExperiment(b, "video") }

// BenchmarkAblationQuantum regenerates the quantum-size ablation (A1).
func BenchmarkAblationQuantum(b *testing.B) { benchExperiment(b, "quantum") }

// BenchmarkChannelScaling regenerates the channel-count ablation (A3).
func BenchmarkChannelScaling(b *testing.B) { benchExperiment(b, "scaling") }

// BenchmarkAblationSkew regenerates the skew-tolerance ablation (A4).
func BenchmarkAblationSkew(b *testing.B) { benchExperiment(b, "skew") }

// BenchmarkAblationAggregate regenerates the link-count scaling
// ablation (A5, the "nearly linear speedup" claim).
func BenchmarkAblationAggregate(b *testing.B) { benchExperiment(b, "aggregate") }

// BenchmarkSchedulerDecision isolates one Select/Account decision for
// each scheduler — the cost the paper argues is "a few more
// instructions than the normal amount of processing".
func BenchmarkSchedulerDecision(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"SRR", func() sched.Scheduler { return sched.MustSRR(sched.UniformQuanta(4, 3000)) }},
		{"RR", func() sched.Scheduler { s, _ := sched.NewRR(4); return s }},
		{"GRR", func() sched.Scheduler { s, _ := sched.NewGRR([]int64{3, 1, 2, 2}); return s }},
		{"RFQ", func() sched.Scheduler { s, _ := sched.NewRFQ([]int64{1, 1, 1, 1}, 7); return s }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := tc.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Select()
				s.Account(1000)
			}
		})
	}
}

// BenchmarkStripeReseqPipeline measures the full software path: stripe
// one packet, move it across an in-memory channel, resequence and
// deliver it.
func BenchmarkStripeReseqPipeline(b *testing.B) {
	for _, nch := range []int{2, 8, 32} {
		b.Run(map[int]string{2: "2ch", 8: "8ch", 32: "32ch"}[nch], func(b *testing.B) {
			quanta := sched.UniformQuanta(nch, 1500)
			g := channel.NewGroup(nch, channel.Impairments{})
			st, err := core.NewStriper(core.StriperConfig{
				Sched:    sched.MustSRR(quanta),
				Channels: g.Senders(),
				Markers:  core.MarkerPolicy{Every: 4, Position: 0},
			})
			if err != nil {
				b.Fatal(err)
			}
			rs, err := core.NewResequencer(core.ResequencerConfig{
				Sched: sched.MustSRR(quanta),
				Mode:  core.ModeLogical,
			})
			if err != nil {
				b.Fatal(err)
			}
			sizes := trace.NewBimodal(200, 1000, 0.5, 1)
			payload := make([]byte, 1500)
			b.ReportAllocs()
			b.ResetTimer()
			delivered := 0
			for i := 0; i < b.N; i++ {
				p := packet.NewData(payload[:sizes.Next()])
				if err := st.Send(p); err != nil {
					b.Fatal(err)
				}
				for c, q := range g.Queues {
					if pkt, ok := q.Recv(); ok {
						rs.Arrive(c, pkt)
					}
				}
				for {
					if _, ok := rs.Next(); !ok {
						break
					}
					delivered++
				}
			}
			b.StopTimer()
			if delivered == 0 && b.N > nch {
				b.Fatal("pipeline delivered nothing")
			}
			b.SetBytes(int64(750)) // mean payload, for MB/s reporting
		})
	}
}

// BenchmarkSenderPublicAPI measures the concurrency-safe public path.
func BenchmarkSenderPublicAPI(b *testing.B) {
	g := channel.NewGroup(4, channel.Impairments{})
	tx, err := stripe.NewSender(g.Senders(), stripe.Config{Quanta: stripe.UniformQuanta(4, 1500)})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(stripe.Data(payload)); err != nil {
			b.Fatal(err)
		}
		// Keep the queues drained so memory stays flat.
		for _, q := range g.Queues {
			q.Recv()
		}
	}
}

// BenchmarkInstrumentationOverhead quantifies the cost of the
// observability layer on the striper hot path: the same stripe loop
// with no collector, with a collector counting, and with a collector
// that also fans events out to a ring sink. The nil case is the
// baseline every uninstrumented user pays (one pointer test); the
// acceptance bar for the layer is <5% overhead with a collector
// attached.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	for _, name := range []string{"nil", "collector", "collector+sink", "collector+tracer", "collector+tracer+windows"} {
		b.Run(name, func(b *testing.B) {
			const nch = 4
			quanta := sched.UniformQuanta(nch, 1500)
			g := channel.NewGroup(nch, channel.Impairments{})
			cfg := core.StriperConfig{
				Sched:    sched.MustSRR(quanta),
				Channels: g.Senders(),
				Markers:  core.MarkerPolicy{Every: 4, Position: 0},
			}
			switch name {
			case "collector":
				cfg.Obs = obs.NewCollector(nch)
			case "collector+sink":
				col := obs.NewCollector(nch)
				col.AddSink(obs.NewRingSink(64))
				cfg.Obs = col
			case "collector+tracer":
				// Default 1-in-16 lifecycle sampling: the production
				// configuration the <5% overhead budget applies to.
				col := obs.NewCollector(nch)
				col.SetTracer(obs.NewTracer(obs.TracerConfig{}))
				cfg.Obs = col
			case "collector+tracer+windows":
				// The full pipeline with the windowed rollup attached:
				// folds are amortized over the flush tick (the hot path
				// pays one atomic deadline check), so this row must stay
				// within 7% of collector-only.
				col := obs.NewCollector(nch)
				col.SetTracer(obs.NewTracer(obs.TracerConfig{}))
				obs.NewWindows(col, obs.WindowConfig{})
				cfg.Obs = col
			}
			st, err := core.NewStriper(cfg)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 1000)
			b.ReportAllocs()
			b.SetBytes(1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Send(packet.NewData(payload)); err != nil {
					b.Fatal(err)
				}
				for _, q := range g.Queues {
					q.Recv()
				}
			}
		})
	}
}
