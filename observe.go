package stripe

import (
	"io"

	"stripe/internal/core"
	"stripe/internal/obs"
)

// Collector is the lock-free runtime metrics core. Create one with
// NewCollector, attach it via Config.Collector, and read it with
// Snapshot (on the collector or on the Sender/Receiver/Session it is
// attached to), expose it over HTTP with Serve, or subscribe to
// protocol events with AddSink. All methods are nil-safe, so an
// unobserved configuration pays only a pointer test per packet.
type Collector = obs.Collector

// NewCollector returns a collector sized for n channels.
func NewCollector(n int) *Collector { return obs.NewCollector(n) }

// NewNamedCollector returns a collector whose metrics carry a
// session="name" label, for processes hosting several sessions behind
// one Serve endpoint.
func NewNamedCollector(name string, n int) *Collector { return obs.NewNamedCollector(name, n) }

// Snapshot is a point-in-time copy of every metric a Collector holds,
// including the derived live fairness gauge (FairnessDiscrepancy
// against the Theorem 3.2 FairnessBound).
type Snapshot = obs.Snapshot

// ChannelSnapshot is the per-channel slice of a Snapshot.
type ChannelSnapshot = obs.ChannelSnapshot

// Event is one protocol transition observed by the runtime tracing
// layer: marker resync, skip-rule activation, reset, self-heal,
// fast-forward, or credit exhaustion.
type Event = obs.Event

// EventKind enumerates protocol transition kinds.
type EventKind = obs.Kind

// Protocol event kinds.
const (
	EventResync             = obs.KindResync
	EventSkip               = obs.KindSkip
	EventReset              = obs.KindReset
	EventSelfHeal           = obs.KindSelfHeal
	EventFastForward        = obs.KindFastForward
	EventCreditExhausted    = obs.KindCreditExhausted
	EventCreditReconcile    = obs.KindCreditReconcile
	EventReseqOverflow      = obs.KindReseqOverflow
	EventInvariantViolation = obs.KindInvariantViolation
)

// Tracer is the packet lifecycle tracing side table: it stamps sampled
// packets at stripe / channel-send / channel-receive / buffer / deliver
// and aggregates end-to-end latency, resequencing delay, head-of-line
// blocking, and send-stall histograms. Attach with
// Collector.SetTracer; attach the same Tracer to both collectors of a
// session pair to trace across them. Read it with Tracer.Snapshot (or
// Snapshot.Lifecycle on the collector), export recent lifecycles with
// WriteChromeTrace.
type Tracer = obs.Tracer

// TracerConfig sizes a Tracer; the zero value selects the defaults
// (4096 slots, 1-in-16 sampling, 512 retained lifecycles).
type TracerConfig = obs.TracerConfig

// NewTracer returns a packet lifecycle tracer.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }

// PacketTrace is one completed packet lifecycle (nanosecond stamps on
// the process timebase).
type PacketTrace = obs.PacketTrace

// TracerSnapshot is a point-in-time copy of a Tracer's latency
// histograms and counters.
type TracerSnapshot = obs.TracerSnapshot

// HistogramSnapshot is a fixed-bucket histogram copy; its Quantile
// method estimates latency quantiles the way Prometheus
// histogram_quantile does.
type HistogramSnapshot = obs.HistogramSnapshot

// WriteChromeTrace writes packet lifecycles and protocol events as
// chrome://tracing / Perfetto JSON. Pass a Tracer's Recent() and
// (optionally) a RingSink's or FlightRecorder's Events().
func WriteChromeTrace(w io.Writer, traces []PacketTrace, events []Event) error {
	return obs.WriteChromeTrace(w, traces, events)
}

// FlightRecorder is a bounded ring of recent protocol events that
// dumps itself (events + full metrics Snapshot) when an anomaly trips:
// credit stall, resequencer overflow, resync storm, or an invariant
// violation. Attach with Collector.AddSink.
type FlightRecorder = obs.FlightRecorder

// FlightRecorderConfig tunes a FlightRecorder; the zero value selects
// the defaults (256 events, 8-resync storm in 100ms, 1s dump cooldown).
type FlightRecorderConfig = obs.FlightRecorderConfig

// FlightDump is one flight-recorder post-mortem.
type FlightDump = obs.FlightDump

// NewFlightRecorder returns a flight recorder that snapshots c when an
// anomaly trips; attach it with c.AddSink.
func NewFlightRecorder(c *Collector, cfg FlightRecorderConfig) *FlightRecorder {
	return obs.NewFlightRecorder(c, cfg)
}

// Checker is the runtime invariant checker: on every engine flush it
// asserts the Theorem 3.2 fairness band, per-channel credit
// conservation, and monotone round progression, surfacing violations
// as events, metrics, and Snapshot.Violations. Attach with
// Collector.SetChecker (NewSession registers the credit ledgers
// automatically when flow control is on).
type Checker = obs.Checker

// NewChecker returns a runtime invariant checker.
func NewChecker() *Checker { return obs.NewChecker() }

// Violation is one invariant-checker finding.
type Violation = obs.Violation

// CreditAccount is one channel's flow-control ledger as seen by the
// checker's credit-conservation check.
type CreditAccount = obs.CreditAccount

// EventSink observes protocol events; attach with Collector.AddSink.
type EventSink = obs.Sink

// RingSink retains the most recent protocol events in a bounded
// in-memory ring.
type RingSink = obs.RingSink

// NewRingSink returns a ring sink retaining the last n events (256
// when n is not positive).
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// NewWriterSink returns a sink that appends one line per protocol
// event to w.
func NewWriterSink(w io.Writer) *obs.WriterSink { return obs.NewWriterSink(w) }

// Windows is the windowed-telemetry rollup engine: it folds the
// collector's cumulative counters into ring-buffered sliding windows
// (default 1s/10s/60s) of per-channel goodput, loss fraction, marker
// resync rate, credit-stall fraction, send-latency EWMAs, and
// inter-channel delay skew, plus a 0-100 HealthScore per channel.
// Create with NewWindows; read the latest rollup with Windows.Latest
// or Snapshot.Windows; the session health monitor consumes the scores
// when HealthConfig.ScoreEvictBelow is set. Folding rides the engine
// flush tick, never the per-packet path.
type Windows = obs.Windows

// WindowConfig sizes a Windows rollup; the zero value selects a 1s
// tick with 1s/10s/60s spans, scored on the 10s span.
type WindowConfig = obs.WindowConfig

// NewWindows builds a rollup engine over c's counters and attaches it
// to the collector. Returns nil when c is nil.
func NewWindows(c *Collector, cfg WindowConfig) *Windows { return obs.NewWindows(c, cfg) }

// WindowsSnapshot is one immutable rollup publication: every
// configured span's rates plus per-channel health scores.
type WindowsSnapshot = obs.WindowsSnapshot

// WindowSpan is one sliding window's derived view.
type WindowSpan = obs.WindowSpan

// ChannelRates is one channel's windowed rates and fractions.
type ChannelRates = obs.ChannelRates

// SessionRates aggregates one window span across channels.
type SessionRates = obs.SessionRates

// HealthScore grades one channel 0 (dead) to 100 (clean) over the
// rollup's scoring span, with reason codes ("loss", "resync", "stall",
// "latency", "skew", "silence", "inactive") for every material
// deduction.
type HealthScore = obs.HealthScore

// HealthReport is the /debug/stripe/health payload for one collector;
// Collector.HealthReport assembles it and stripetop renders it.
type HealthReport = obs.HealthReport

// PeerView folds the telemetry blocks the peer's resequencer reports
// back into a sender-side view of the remote end: per-channel loss as
// the receiver measured it (catching silent loss the local error
// streak never sees), resequencer occupancy, and NTP-style
// min-filtered one-way delay estimates from marker timestamp pairs.
// Sessions maintain one automatically and attach it to the Collector;
// read it via Snapshot.Peer, HealthReport.Peer, or Collector.PeerView.
type PeerView = obs.PeerView

// PeerSnapshot is one immutable publication of the peer's reported
// view; see PeerChannel for the per-channel fields.
type PeerSnapshot = obs.PeerSnapshot

// PeerChannel is one channel's slice of a PeerSnapshot: the peer's
// cumulative delivery/loss/resync counters, the loss-fraction EWMA,
// and the one-way delay estimate (absolute value embeds the inter-host
// clock offset; RelativeDelayNs is offset-free).
type PeerChannel = obs.PeerChannel

// NewPeerView returns a peer view sized for n channels, for embedders
// driving core.Resequencer/Striper directly; sessions create their
// own.
func NewPeerView(n int) *PeerView { return obs.NewPeerView(n) }

// ReceiverStats are the receive-side protocol counters returned by
// Receiver.Stats and Session.Stats; see doc.go for field meanings.
type ReceiverStats = core.ResequencerStats

// SenderStats are the transmit-side counters returned by Sender.Stats
// and Session.SendStats; see doc.go for field meanings.
type SenderStats = core.StriperStats

// ChannelLoad is the per-channel data load inside SenderStats.
type ChannelLoad = core.ChannelLoad
