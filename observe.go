package stripe

import (
	"io"

	"stripe/internal/core"
	"stripe/internal/obs"
)

// Collector is the lock-free runtime metrics core. Create one with
// NewCollector, attach it via Config.Collector, and read it with
// Snapshot (on the collector or on the Sender/Receiver/Session it is
// attached to), expose it over HTTP with Serve, or subscribe to
// protocol events with AddSink. All methods are nil-safe, so an
// unobserved configuration pays only a pointer test per packet.
type Collector = obs.Collector

// NewCollector returns a collector sized for n channels.
func NewCollector(n int) *Collector { return obs.NewCollector(n) }

// NewNamedCollector returns a collector whose metrics carry a
// session="name" label, for processes hosting several sessions behind
// one Serve endpoint.
func NewNamedCollector(name string, n int) *Collector { return obs.NewNamedCollector(name, n) }

// Snapshot is a point-in-time copy of every metric a Collector holds,
// including the derived live fairness gauge (FairnessDiscrepancy
// against the Theorem 3.2 FairnessBound).
type Snapshot = obs.Snapshot

// ChannelSnapshot is the per-channel slice of a Snapshot.
type ChannelSnapshot = obs.ChannelSnapshot

// Event is one protocol transition observed by the runtime tracing
// layer: marker resync, skip-rule activation, reset, self-heal,
// fast-forward, or credit exhaustion.
type Event = obs.Event

// EventKind enumerates protocol transition kinds.
type EventKind = obs.Kind

// Protocol event kinds.
const (
	EventResync          = obs.KindResync
	EventSkip            = obs.KindSkip
	EventReset           = obs.KindReset
	EventSelfHeal        = obs.KindSelfHeal
	EventFastForward     = obs.KindFastForward
	EventCreditExhausted = obs.KindCreditExhausted
)

// EventSink observes protocol events; attach with Collector.AddSink.
type EventSink = obs.Sink

// RingSink retains the most recent protocol events in a bounded
// in-memory ring.
type RingSink = obs.RingSink

// NewRingSink returns a ring sink retaining the last n events (256
// when n is not positive).
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// NewWriterSink returns a sink that appends one line per protocol
// event to w.
func NewWriterSink(w io.Writer) *obs.WriterSink { return obs.NewWriterSink(w) }

// ReceiverStats are the receive-side protocol counters returned by
// Receiver.Stats and Session.Stats; see doc.go for field meanings.
type ReceiverStats = core.ResequencerStats

// SenderStats are the transmit-side counters returned by Sender.Stats
// and Session.SendStats; see doc.go for field meanings.
type SenderStats = core.StriperStats

// ChannelLoad is the per-channel data load inside SenderStats.
type ChannelLoad = core.ChannelLoad
