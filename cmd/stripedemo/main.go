// Command stripedemo runs a live two-channel striping session over
// loopback UDP and prints a timeline: packets striped by SRR, delivered
// in FIFO order by logical reception, with optional loss injected on
// the sending side to show quasi-FIFO behaviour and marker recovery.
//
//	stripedemo                    # lossless: exact FIFO
//	stripedemo -loss 0.1          # 10% loss: quasi-FIFO with marker recovery
//	stripedemo -n 50 -v           # print each delivery
//	stripedemo -metrics :9090     # serve /metrics + /debug/pprof during the run
//	stripedemo -trace out.json    # write packet lifecycles as chrome://tracing JSON
//
// With -metrics the demo serves the runtime observability endpoint
// (Prometheus text at /metrics, expvar at /debug/vars, pprof under
// /debug/pprof/) while it runs, prints recent protocol events, and
// fetches its own /metrics at the end so the counters are visible even
// without an external curl.
//
// With -trace every packet's lifecycle (stripe, UDP send, UDP receive,
// resequence, deliver) is stamped and written to the named file; open it
// at chrome://tracing or https://ui.perfetto.dev. Tracing enables AddSeq
// so both ends key a packet by the same wire-carried sequence number.
// Either flag also arms a flight recorder that dumps the recent event
// history when an anomaly (credit stall, resync storm, overflow,
// invariant violation) trips mid-run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"stripe"
)

// lossyChannel drops packets before a real UDP channel, so the demo can
// inject loss deterministically.
type lossyChannel struct {
	inner stripe.ChannelSender
	p     float64
	rng   *rand.Rand
}

func (l *lossyChannel) Send(pkt *stripe.Packet) error {
	if pkt.Kind == stripe.KindData && l.rng.Float64() < l.p {
		return nil
	}
	return l.inner.Send(pkt)
}

func main() {
	var (
		n        = flag.Int("n", 200, "packets to send")
		loss     = flag.Float64("loss", 0, "data-packet loss probability")
		verbose  = flag.Bool("v", false, "print each delivery")
		seed     = flag.Int64("seed", 42, "loss-process seed")
		metrics  = flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (e.g. :9090)")
		traceOut = flag.String("trace", "", "write packet lifecycles as chrome://tracing JSON to this file")
	)
	flag.Parse()

	const nch = 2
	cfg := stripe.Config{
		Quanta:  stripe.UniformQuanta(nch, 1500),
		Markers: stripe.MarkerPolicy{Every: 2, Position: 0},
	}

	var (
		events   *stripe.RingSink
		srv      *stripe.Server
		tracer   *stripe.Tracer
		recorder *stripe.FlightRecorder
	)
	if *metrics != "" || *traceOut != "" {
		col := stripe.NewCollector(nch)
		events = stripe.NewRingSink(64)
		col.AddSink(events)
		recorder = stripe.NewFlightRecorder(col, stripe.FlightRecorderConfig{})
		col.AddSink(recorder)
		cfg.Collector = col
	}
	if *traceOut != "" {
		// Stamp every packet and carry sequence numbers on the wire so
		// the UDP receive side keys lifecycles the same way the sender
		// does (without AddSeq the striper's in-process ID never crosses
		// the socket and only transmit-side stages would be traced).
		tracer = stripe.NewTracer(stripe.TracerConfig{Sample: 1})
		cfg.Collector.SetTracer(tracer)
		cfg.AddSeq = true
	}
	if *metrics != "" {
		var err error
		srv, err = stripe.Serve(*metrics, cfg.Collector)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stripedemo:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics at http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}

	sendEnds := make([]stripe.ChannelSender, nch)
	recvEnds := make([]*stripe.UDPChannel, nch)
	for i := 0; i < nch; i++ {
		s, r, err := stripe.NewUDPChannelPair()
		if err != nil {
			fmt.Fprintln(os.Stderr, "stripedemo:", err)
			os.Exit(1)
		}
		defer s.Close()
		defer r.Close()
		sendEnds[i] = &lossyChannel{inner: s, p: *loss, rng: rand.New(rand.NewSource(*seed + int64(i)))}
		recvEnds[i] = r
	}

	tx, err := stripe.NewSender(sendEnds, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stripedemo:", err)
		os.Exit(1)
	}
	rx, err := stripe.NewReceiver(nch, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stripedemo:", err)
		os.Exit(1)
	}

	stop := make(chan struct{})
	var pumps sync.WaitGroup
	for i, rc := range recvEnds {
		pumps.Add(1)
		go func(i int, rc *stripe.UDPChannel) {
			defer pumps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := rc.ReadPacket(50 * time.Millisecond)
				if err != nil || p == nil {
					continue
				}
				rx.Arrive(i, p)
			}
		}(i, rc)
	}

	fmt.Printf("striping %d packets over %d UDP channels (loss %.0f%%)\n", *n, nch, *loss*100)
	//stripe:allowleak bounded: sends *n packets plus 20 marker ticks and exits on its own
	go func() {
		for i := 0; i < *n; i++ {
			payload := make([]byte, 400+((i*37)%800))
			copy(payload, fmt.Sprintf("pkt-%05d", i))
			if err := tx.SendBytes(payload); err != nil {
				fmt.Fprintln(os.Stderr, "send:", err)
				return
			}
		}
		// Keep markers flowing while the tail resynchronizes.
		for i := 0; i < 20; i++ {
			time.Sleep(20 * time.Millisecond)
			tx.EmitMarkers()
		}
	}()

	delivered, late := 0, 0
	lastID := -1
	deadline := time.After(5 * time.Second)
	var order []int
	// One reader goroutine feeds the collect loop and announces its own
	// exit by closing results; it stops either when the stop channel
	// closes (deadline path) or when rx.Close unblocks Recv with nil.
	results := make(chan *stripe.Packet)
	go func() {
		defer close(results)
		for {
			p := rx.Recv()
			if p == nil {
				return
			}
			select {
			case results <- p:
			case <-stop:
				return
			}
		}
	}()
collect:
	for delivered < *n {
		select {
		case p, ok := <-results:
			if !ok {
				break collect
			}
			var id int
			fmt.Sscanf(string(p.Payload), "pkt-%d", &id)
			order = append(order, id)
			if id < lastID {
				late++
			} else {
				lastID = id
			}
			if *verbose {
				fmt.Printf("  delivered pkt-%05d (%4d bytes)\n", id, p.Len())
			}
			delivered++
		case <-deadline:
			break collect // remainder was lost
		}
	}
	close(stop)
	pumps.Wait()
	rx.Close() // unblocks a Recv parked in the reader goroutine

	st := rx.Stats()
	fmt.Printf("\ndelivered %d/%d packets, %d out of order\n", delivered, *n, late)
	fmt.Printf("markers consumed: %d, resynchronizations: %d, skips: %d\n",
		st.Markers, st.Resyncs, st.Skips)
	if *loss == 0 && late == 0 && delivered == *n {
		fmt.Println("FIFO delivery: exact (Theorem 4.1)")
	}
	if *loss > 0 {
		fmt.Println("quasi-FIFO: misordering confined to loss windows; markers restore sync")
	}
	_ = order

	if recorder != nil {
		if d, ok := recorder.LastDump(); ok {
			fmt.Printf("\nflight recorder: %d dump(s), last trigger %q with %d events of history\n",
				recorder.Dumps(), d.Reason, len(d.Events))
		}
	}
	if *traceOut != "" {
		lifecycles := tracer.Recent()
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stripedemo:", err)
			os.Exit(1)
		}
		if err := stripe.WriteChromeTrace(f, lifecycles, events.Events()); err != nil {
			fmt.Fprintln(os.Stderr, "stripedemo:", err)
		}
		f.Close()
		ts := tracer.Snapshot()
		fmt.Printf("\nwrote %d packet lifecycles to %s (open at chrome://tracing or ui.perfetto.dev)\n",
			len(lifecycles), *traceOut)
		fmt.Printf("end-to-end latency: p50 %v  p90 %v  p99 %v\n",
			time.Duration(ts.EndToEnd.Quantile(0.50)),
			time.Duration(ts.EndToEnd.Quantile(0.90)),
			time.Duration(ts.EndToEnd.Quantile(0.99)))
	}

	if srv != nil {
		if evs := events.Events(); len(evs) > 0 {
			fmt.Printf("\nlast %d protocol events:\n", len(evs))
			for _, e := range evs {
				fmt.Printf("  %s\n", e)
			}
		}
		fmt.Printf("\nself-scrape of http://%s/metrics (stripe_* samples):\n", srv.Addr())
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stripedemo:", err)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "stripe_") {
				fmt.Println("  " + line)
			}
		}
	}
}
