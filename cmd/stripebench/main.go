// Command stripebench regenerates every table and figure of the
// paper's evaluation. Run it with no arguments for the full suite, or
// name experiments with -exp:
//
//	stripebench                  # everything, full scale
//	stripebench -exp fig15       # one experiment
//	stripebench -exp loss,video  # several
//	stripebench -list            # what exists
//	stripebench -quick           # reduced scale (seconds, not minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stripe/internal/harness"
)

func main() {
	var (
		exp   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiments and exit")
		quick = flag.Bool("quick", false, "reduced-scale runs")
		seed  = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []harness.Experiment
	if *exp == "" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "stripebench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed}
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		r := e.Run(cfg)
		fmt.Println(r.Text)
		fmt.Printf("-- %s finished in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
