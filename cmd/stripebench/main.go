// Command stripebench regenerates every table and figure of the
// paper's evaluation. Run it with no arguments for the full suite, or
// name experiments with -exp:
//
//	stripebench                  # everything, full scale
//	stripebench -exp fig15       # one experiment
//	stripebench -exp loss,video  # several
//	stripebench -list            # what exists
//	stripebench -quick           # reduced scale (seconds, not minutes)
//	stripebench -json            # machine-readable perf record on stdout
//	stripebench -compare old.json new.json
//	                             # diff two -json records, exit 1 on a
//	                             # >15% ns/op or MB/s regression
//
// -json runs the hot-path perf suite (ns/op, MB/s, lifecycle latency
// quantiles) and emits one JSON document, plus the structured tables of
// any experiments named with -exp. CI archives the output per commit so
// performance has a diffable trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"stripe/internal/harness"
	"stripe/internal/stats"
)

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "reduced-scale runs")
		seed    = flag.Int64("seed", 1, "experiment seed")
		jsonOut = flag.Bool("json", false, "emit a machine-readable JSON perf record instead of tables")
		compare = flag.Bool("compare", false, "compare two -json records (old.json new.json) and exit non-zero on a >15% regression")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: stripebench -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), regressionThreshold))
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []harness.Experiment
	if *exp == "" {
		if !*jsonOut { // -json with no -exp runs only the perf suite
			todo = harness.All()
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "stripebench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed}
	if *jsonOut {
		out := jsonRecord{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Quick:     *quick,
			Seed:      *seed,
			Perf:      harness.RunPerf(cfg),
		}
		for _, e := range todo {
			start := time.Now()
			r := e.Run(cfg)
			out.Experiments = append(out.Experiments, jsonExperiment{
				ID:      e.ID,
				Title:   e.Title,
				Seconds: time.Since(start).Seconds(),
				Tables:  r.Tables,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "stripebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		r := e.Run(cfg)
		fmt.Println(r.Text)
		fmt.Printf("-- %s finished in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// jsonRecord is the -json output document.
type jsonRecord struct {
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	Quick       bool               `json:"quick"`
	Seed        int64              `json:"seed"`
	Perf        harness.PerfReport `json:"perf"`
	Experiments []jsonExperiment   `json:"experiments,omitempty"`
}

type jsonExperiment struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Seconds float64        `json:"seconds"`
	Tables  []*stats.Table `json:"tables,omitempty"`
}
