package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"stripe/internal/harness"
)

// regressionThreshold is how much worse a benchmark may get before the
// comparison fails: 15% covers scheduler jitter on shared CI runners
// while still catching a real hot-path regression (an accidental
// allocation or lock shows up as 2-10x, not 1.15x).
const regressionThreshold = 0.15

// regression is one benchmark metric that moved past the threshold in
// the wrong direction between two -json records.
type regression struct {
	Name   string  // benchmark name
	Metric string  // "ns/op" or "MB/s"
	Old    float64 // baseline value
	New    float64 // current value
	Delta  float64 // fractional change, positive = worse
}

// comparePerf diffs the benchmark sets of two -json records. Benchmarks
// present on only one side are ignored (suites evolve); a metric whose
// baseline is zero cannot be compared and is skipped.
func comparePerf(old, cur jsonRecord, threshold float64) []regression {
	base := make(map[string]harness.PerfBench, len(old.Perf.Benches))
	for _, b := range old.Perf.Benches {
		base[b.Name] = b
	}
	var regs []regression
	for _, b := range cur.Perf.Benches {
		o, ok := base[b.Name]
		if !ok {
			continue
		}
		// ns/op: higher is worse.
		if o.NsPerOp > 0 {
			if d := (b.NsPerOp - o.NsPerOp) / o.NsPerOp; d > threshold {
				regs = append(regs, regression{b.Name, "ns/op", o.NsPerOp, b.NsPerOp, d})
			}
		}
		// MB/s: lower is worse.
		if o.MBPerS > 0 && b.MBPerS > 0 {
			if d := (o.MBPerS - b.MBPerS) / o.MBPerS; d > threshold {
				regs = append(regs, regression{b.Name, "MB/s", o.MBPerS, b.MBPerS, d})
			}
		}
	}
	return regs
}

// runCompare loads two -json perf records and prints the verdict.
// It returns the process exit code: 0 when every shared benchmark is
// within the threshold, 1 when any regressed.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) int {
	old, err := loadRecord(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stripebench: %v\n", err)
		return 2
	}
	cur, err := loadRecord(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stripebench: %v\n", err)
		return 2
	}
	if old.Quick != cur.Quick {
		fmt.Fprintf(w, "note: comparing a quick record against a full one; thresholds still apply\n")
	}
	regs := comparePerf(old, cur, threshold)
	if len(regs) == 0 {
		fmt.Fprintf(w, "perf compare: %d benchmark(s) within %.0f%% of baseline\n",
			len(cur.Perf.Benches), threshold*100)
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %-28s %-6s %12.1f -> %12.1f  (%+.1f%%)\n",
			r.Name, r.Metric, r.Old, r.New, r.Delta*100)
	}
	fmt.Fprintf(w, "perf compare: %d regression(s) beyond %.0f%%\n", len(regs), threshold*100)
	return 1
}

func loadRecord(path string) (jsonRecord, error) {
	var rec jsonRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
