package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stripe/internal/harness"
)

func record(benches ...harness.PerfBench) jsonRecord {
	return jsonRecord{Perf: harness.PerfReport{Benches: benches}}
}

func TestComparePerf(t *testing.T) {
	old := record(
		harness.PerfBench{Name: "striper_send", NsPerOp: 100, MBPerS: 1000},
		harness.PerfBench{Name: "reseq_drain", NsPerOp: 200, MBPerS: 500},
		harness.PerfBench{Name: "retired", NsPerOp: 50},
	)

	t.Run("within threshold", func(t *testing.T) {
		cur := record(
			harness.PerfBench{Name: "striper_send", NsPerOp: 110, MBPerS: 900},
			harness.PerfBench{Name: "reseq_drain", NsPerOp: 180, MBPerS: 560},
			harness.PerfBench{Name: "brand_new", NsPerOp: 9999}, // no baseline: ignored
		)
		if regs := comparePerf(old, cur, 0.15); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %+v", regs)
		}
	})

	t.Run("nsop regression", func(t *testing.T) {
		cur := record(harness.PerfBench{Name: "striper_send", NsPerOp: 120, MBPerS: 1000})
		regs := comparePerf(old, cur, 0.15)
		if len(regs) != 1 || regs[0].Metric != "ns/op" || regs[0].Name != "striper_send" {
			t.Fatalf("want one ns/op regression, got %+v", regs)
		}
	})

	t.Run("throughput regression", func(t *testing.T) {
		cur := record(harness.PerfBench{Name: "reseq_drain", NsPerOp: 200, MBPerS: 400})
		regs := comparePerf(old, cur, 0.15)
		if len(regs) != 1 || regs[0].Metric != "MB/s" {
			t.Fatalf("want one MB/s regression, got %+v", regs)
		}
	})

	t.Run("zero baseline skipped", func(t *testing.T) {
		// "retired" has no MB/s baseline; a new MB/s value must not
		// divide by zero or fabricate a regression.
		cur := record(harness.PerfBench{Name: "retired", NsPerOp: 55, MBPerS: 123})
		if regs := comparePerf(old, cur, 0.15); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %+v", regs)
		}
	})
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rec jsonRecord) string {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", record(harness.PerfBench{Name: "x", NsPerOp: 100, MBPerS: 100}))
	samePath := write("same.json", record(harness.PerfBench{Name: "x", NsPerOp: 101, MBPerS: 99}))
	badPath := write("bad.json", record(harness.PerfBench{Name: "x", NsPerOp: 300, MBPerS: 30}))

	var out strings.Builder
	if code := runCompare(&out, oldPath, samePath, regressionThreshold); code != 0 {
		t.Fatalf("clean compare exited %d: %s", code, out.String())
	}
	out.Reset()
	if code := runCompare(&out, oldPath, badPath, regressionThreshold); code != 1 {
		t.Fatalf("regressed compare exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not reported: %s", out.String())
	}
	if code := runCompare(&out, filepath.Join(dir, "missing.json"), samePath, regressionThreshold); code != 2 {
		t.Fatalf("missing baseline exited %d", code)
	}
	notJSON := filepath.Join(dir, "not.json")
	if err := os.WriteFile(notJSON, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(&out, notJSON, samePath, regressionThreshold); code != 2 {
		t.Fatalf("corrupt baseline exited %d", code)
	}
}
