// stripetop is a live terminal dashboard for striped sessions: it
// polls a stripe.Serve endpoint's /debug/stripe/health and renders
// per-channel windowed rates, health scores with reason codes, the
// fairness band, peer-reported loss and relative one-way delay (the
// P-LOSS / P-DELAY columns, from the telemetry plane), and recent
// protocol events — top(1) for a bundle.
//
//	stripetop -addr localhost:9090           # watch a running endpoint
//	stripetop -demo                          # self-contained demo session
//	stripetop -demo -plain -d 3s -i 500ms    # CI-friendly: no ANSI clears
//	stripetop -addr localhost:9090 -once     # one frame, no ANSI, exit 0
//
// The demo starts an in-process duplex session over lossy local
// channels (one channel degraded hard), serves it on a loopback port,
// and polls itself over HTTP — the same path an external stripetop
// takes against a production endpoint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"stripe"
)

func main() {
	var (
		addr     = flag.String("addr", "", "stripe.Serve endpoint to poll (host:port)")
		demo     = flag.Bool("demo", false, "run a self-contained demo session and watch it")
		interval = flag.Duration("i", time.Second, "poll/refresh interval")
		dur      = flag.Duration("d", 0, "exit after this long (0 = run until the endpoint goes away; demo default 10s)")
		once     = flag.Bool("once", false, "render a single frame and exit")
		plain    = flag.Bool("plain", false, "append frames instead of ANSI-clearing the screen (for logs/CI)")
	)
	flag.Parse()

	// A single-frame snapshot is for scripts and CI logs: never clear
	// the screen, just print the frame and exit 0.
	if *once {
		*plain = true
	}

	target := *addr
	deadline := *dur
	if *demo {
		stopDemo, demoAddr := startDemo()
		defer stopDemo()
		target = demoAddr
		if deadline == 0 {
			deadline = 10 * time.Second
		}
	}
	if target == "" {
		fmt.Fprintln(os.Stderr, "stripetop: need -addr host:port or -demo")
		os.Exit(2)
	}

	var (
		end        time.Time
		prevEvents = map[string]map[string]int64{} // session -> kind -> count
		frames     int
	)
	if deadline > 0 {
		end = time.Now().Add(deadline)
	}
	for {
		reports, err := fetch(target)
		if err != nil {
			if frames == 0 {
				log.Fatalf("stripetop: %v", err)
			}
			fmt.Printf("stripetop: endpoint gone: %v\n", err)
			return
		}
		frame := render(target, reports, prevEvents, *interval)
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(frame)
		frames++
		if *once || (!end.IsZero() && !time.Now().Add(*interval).Before(end)) {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch pulls one health report set from the endpoint.
func fetch(addr string) ([]stripe.HealthReport, error) {
	resp, err := http.Get("http://" + addr + "/debug/stripe/health")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var payload struct{ Sessions []stripe.HealthReport }
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return payload.Sessions, nil
}

// render formats one frame from the polled reports. prevEvents carries
// the prior poll's event counts so protocol activity shows as deltas.
func render(addr string, reports []stripe.HealthReport, prevEvents map[string]map[string]int64, interval time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stripetop — %s — %s — refresh %v\n",
		addr, time.Now().Format("15:04:05"), interval)
	for i := range reports {
		r := &reports[i]
		name := r.Session
		if name == "" {
			name = fmt.Sprintf("session#%d", i)
		}
		fmt.Fprintf(&b, "\n%s  round %d  fairness %d/%d B  buffered %d  active %d/%d",
			name, r.Round, r.FairnessDiscrepancy, r.FairnessBound, r.Buffered,
			r.ActiveChannels, r.Channels)
		sp := r.Windows.ScoreWindow()
		if sp == nil {
			b.WriteString("\n  (no windowed telemetry: attach a stripe.Windows rollup)\n")
			continue
		}
		fmt.Fprintf(&b, "  window %v (covered %v)  tx %s  rx %s  stall %.1f%%\n",
			sp.Span, sp.Covered.Round(time.Millisecond),
			rate(sp.Session.TxBytesPerSec), rate(sp.Session.RxBytesPerSec),
			100*sp.Session.CreditStallFrac)
		b.WriteString("  CH  HEALTH            TX/s      RX/s      LOSS  RSYNC/s  MARK/s  LATENCY  SKEW    P-LOSS  P-DELAY  REASONS\n")
		for _, c := range sp.Channels {
			h := r.Windows.Score(c.Channel)
			reasons := "-"
			if len(h.Reasons) > 0 {
				reasons = strings.Join(h.Reasons, ",")
			}
			pLoss, pDelay := "-", "-"
			if pc := peerChannel(r.Peer, c.Channel); pc != nil {
				pLoss = fmt.Sprintf("%.1f%%", 100*pc.LossFrac)
				if pc.OneWayDelayNs != 0 {
					pDelay = "+" + latency(pc.RelativeDelayNs)
					if pc.RelativeDelayNs == 0 {
						pDelay = "+0s" // the bundle's fastest channel
					}
				}
			}
			fmt.Fprintf(&b, "  %2d  %3d %s  %-8s  %-8s  %4.1f%%  %7.1f  %6.1f  %-7s  %-6s  %-6s  %-7s  %s\n",
				c.Channel, h.Score, bar(h.Score),
				rate(c.TxBytesPerSec), rate(c.RxBytesPerSec),
				100*c.LossFrac, c.ResyncsPerSec, c.MarkersPerSec,
				latency(c.LatencyEWMA), latency(c.DelaySkew), pLoss, pDelay, reasons)
		}
		if p := r.Peer; p != nil {
			occ := ""
			if p.MaxBuffered > 0 {
				occ = fmt.Sprintf("  reseq %d/%d (%.0f%%)", p.Buffered, p.MaxBuffered, 100*p.OccupancyFrac)
			}
			fmt.Fprintf(&b, "  peer: report #%d%s  bundle skew %s\n",
				p.Seq, occ, latency(p.SkewNs))
		}
		if line := eventDelta(name, r.Events, prevEvents); line != "" {
			fmt.Fprintf(&b, "  events: %s\n", line)
		}
	}
	return b.String()
}

// eventDelta renders per-kind protocol event counts since the last
// poll (cumulative on the first).
func eventDelta(session string, now map[string]int64, prev map[string]map[string]int64) string {
	if len(now) == 0 {
		return ""
	}
	last := prev[session]
	kinds := make([]string, 0, len(now))
	for k := range now {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		d := now[k] - last[k]
		if d > 0 {
			parts = append(parts, fmt.Sprintf("%s +%d", k, d))
		}
	}
	cp := make(map[string]int64, len(now))
	for k, v := range now {
		cp[k] = v
	}
	prev[session] = cp
	return strings.Join(parts, "  ")
}

// peerChannel finds channel c in the peer section, nil when the peer
// has not reported (or not for this channel).
func peerChannel(p *stripe.PeerSnapshot, c int) *stripe.PeerChannel {
	if p == nil {
		return nil
	}
	for i := range p.Channels {
		if p.Channels[i].Channel == c {
			return &p.Channels[i]
		}
	}
	return nil
}

// bar renders a ten-cell health meter.
func bar(score int) string {
	full := score / 10
	if full < 0 {
		full = 0
	}
	if full > 10 {
		full = 10
	}
	return "[" + strings.Repeat("#", full) + strings.Repeat(".", 10-full) + "]"
}

// rate humanizes a bytes/s figure.
func rate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.1fGB/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.1fMB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1fkB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0fB/s", bps)
	}
}

// latency humanizes a nanosecond figure.
func latency(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// startDemo builds a duplex striped session over lossy in-process
// channels — channel 2 degraded hard so the health score has something
// to say — attaches windowed telemetry to both ends, and serves it on
// a loopback port for the dashboard to poll over HTTP.
func startDemo() (stop func(), addr string) {
	const nch = 3
	colA := stripe.NewNamedCollector("alice", nch)
	colB := stripe.NewNamedCollector("bob", nch)
	tracer := stripe.NewTracer(stripe.TracerConfig{Sample: 4})
	colA.SetTracer(tracer)
	colB.SetTracer(tracer)
	wcfg := stripe.WindowConfig{
		Tick:  250 * time.Millisecond,
		Spans: []time.Duration{time.Second, 5 * time.Second},
	}
	stripe.NewWindows(colA, wcfg)
	stripe.NewWindows(colB, wcfg)

	cfg := stripe.SessionConfig{
		Config: stripe.Config{
			Quanta:    stripe.UniformQuanta(nch, 1500),
			Markers:   stripe.MarkerPolicy{Every: 2, Position: 0},
			Collector: colA,
		},
		CreditWindow:   64 * 1024,
		MarkerInterval: 5 * time.Millisecond,
	}
	backCfg := cfg
	backCfg.Collector = colB

	mk := func(c *stripe.Collector, lossOn2 float64) ([]stripe.ChannelSender, []*stripe.LocalChannel) {
		send := make([]stripe.ChannelSender, nch)
		recv := make([]*stripe.LocalChannel, nch)
		for i := 0; i < nch; i++ {
			loss := 0.01
			if i == 2 {
				loss = lossOn2
			}
			ch := stripe.NewLocalChannel(stripe.LocalChannelConfig{
				Loss:      loss,
				Seed:      int64(i + 1),
				Collector: c,
				Index:     i,
			})
			send[i], recv[i] = ch, ch
		}
		return send, recv
	}
	abSend, abRecv := mk(colA, 0.35)
	baSend, baRecv := mk(nil, 0)

	alice, err := stripe.NewSession(abSend, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := stripe.NewSession(baSend, backCfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := stripe.Serve("127.0.0.1:0", colA, colB)
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{})
	var pumps sync.WaitGroup
	pump := func(recv []*stripe.LocalChannel, dst *stripe.Session) {
		for i, rc := range recv {
			pumps.Add(1)
			go func(i int, rc *stripe.LocalChannel) {
				defer pumps.Done()
				for {
					select {
					case <-done:
						return
					case p, ok := <-rc.Out():
						if !ok {
							return
						}
						dst.Arrive(i, p)
					}
				}
			}(i, rc)
		}
	}
	pump(abRecv, bob)
	pump(baRecv, alice)

	rng := rand.New(rand.NewSource(1))
	go func() { // Figure 15 bimodal workload, alice -> bob
		for {
			select {
			case <-done:
				return
			default:
			}
			size := 200
			if rng.Intn(2) == 1 {
				size = 1000
			}
			if alice.SendBytes(make([]byte, size)) != nil {
				return
			}
		}
	}()
	go func() {
		for bob.Recv() != nil {
		}
	}()
	go func() {
		for alice.Recv() != nil {
		}
	}()

	return func() {
		close(done)
		alice.Close()
		bob.Close()
		pumps.Wait()
		srv.Close()
	}, srv.Addr()
}
