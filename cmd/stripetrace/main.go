// Command stripetrace generates, inspects and converts the workload
// trace files the experiments replay (the role NV capture files played
// in the paper's Section 6.3 study).
//
//	stripetrace gen -kind video -frames 2000 -o nv.strf
//	stripetrace gen -kind bimodal -n 10000 -o mix.strf
//	stripetrace info nv.strf
package main

import (
	"flag"
	"fmt"
	"os"

	"stripe/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		if len(os.Args) != 3 {
			usage()
		}
		info(os.Args[2])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  stripetrace gen -kind {video|bimodal|uniform|alternating} [flags] -o FILE
  stripetrace info FILE`)
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		kind   = fs.String("kind", "video", "trace kind: video, bimodal, uniform, alternating")
		out    = fs.String("o", "", "output file (required)")
		n      = fs.Int("n", 10000, "packet count (size traces)")
		frames = fs.Int("frames", 2000, "frame count (video)")
		gop    = fs.Int("gop", 8, "intra-frame period (video)")
		imean  = fs.Int("imean", 8000, "mean I-frame bytes (video)")
		pmean  = fs.Int("pmean", 1500, "mean P-frame bytes (video)")
		mtu    = fs.Int("mtu", 1024, "packetization MTU (video)")
		small  = fs.Int("small", 200, "small packet bytes (bimodal/alternating)")
		large  = fs.Int("large", 1000, "large packet bytes (bimodal/alternating)")
		minSz  = fs.Int("min", 64, "minimum size (uniform)")
		maxSz  = fs.Int("max", 1500, "maximum size (uniform)")
		seed   = fs.Int64("seed", 1, "generator seed")
	)
	fs.Parse(args)
	if *out == "" {
		usage()
	}
	switch *kind {
	case "video":
		v, err := trace.SynthesizeVideo(trace.VideoConfig{
			Frames: *frames, GOP: *gop, IMean: *imean, PMean: *pmean, MTU: *mtu, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		if err := trace.SaveVideo(*out, v); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d frames, %d packets, MTU %d\n", *out, len(v.FrameBytes), len(v.Packets), v.MTU)
	case "bimodal", "uniform", "alternating":
		var g trace.SizeGen
		switch *kind {
		case "bimodal":
			g = trace.NewBimodal(*small, *large, 0.5, *seed)
		case "uniform":
			g = trace.NewUniform(*minSz, *maxSz, *seed)
		default:
			g = &trace.Alternating{Sizes: []int{*large, *small}}
		}
		sizes := make([]int, *n)
		for i := range sizes {
			sizes[i] = g.Next()
		}
		if err := trace.SaveSizes(*out, sizes); err != nil {
			fatal(err)
		}
		var total int64
		for _, s := range sizes {
			total += int64(s)
		}
		fmt.Printf("wrote %s: %d packets, %d bytes, mean %d\n", *out, len(sizes), total, total/int64(len(sizes)))
	default:
		usage()
	}
}

func info(path string) {
	if sizes, err := trace.LoadSizes(path); err == nil {
		min, max, total := sizes[0], sizes[0], int64(0)
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
			total += int64(s)
		}
		fmt.Printf("%s: size trace, %d packets, bytes %d, sizes %d..%d, mean %d\n",
			path, len(sizes), total, min, max, total/int64(len(sizes)))
		return
	}
	if v, err := trace.LoadVideo(path); err == nil {
		var total int64
		for _, b := range v.FrameBytes {
			total += int64(b)
		}
		fmt.Printf("%s: video trace, %d frames, %d packets, MTU %d, %d bytes, mean frame %d\n",
			path, len(v.FrameBytes), len(v.Packets), v.MTU, total, total/int64(len(v.FrameBytes)))
		return
	}
	fatal(fmt.Errorf("%s: not a recognizable trace file", path))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stripetrace:", err)
	os.Exit(1)
}
