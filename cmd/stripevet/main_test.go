package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"stripe/internal/analysis"
)

// sampleDiag is a rendered finding in the shape main prints: the
// Diagnostic String format the problem matcher must keep parsing.
var sampleDiag = analysis.Diagnostic{
	Pos:  token.Position{Filename: "internal/core/striper.go", Line: 42, Column: 7},
	Pass: "lockorder",
	Rule: "cycle",
	Msg:  "lock-order cycle: A.mu -> B.mu -> A.mu (one edge witnessed here; acquire these locks in one global order)",
}

// TestProblemMatcherParsesDiagnostics compiles the GitHub Actions
// problem matcher shipped in .github and asserts it captures the
// file/line/column/pass/message groups from a rendered diagnostic, so
// the annotation pipeline cannot silently rot when the rendering or
// the matcher changes.
func TestProblemMatcherParsesDiagnostics(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", ".github", "stripevet-problem-matcher.json"))
	if err != nil {
		t.Fatalf("reading problem matcher: %v", err)
	}
	var matcher struct {
		ProblemMatcher []struct {
			Owner   string `json:"owner"`
			Pattern []struct {
				Regexp  string `json:"regexp"`
				File    int    `json:"file"`
				Line    int    `json:"line"`
				Column  int    `json:"column"`
				Code    int    `json:"code"`
				Message int    `json:"message"`
			} `json:"pattern"`
		} `json:"problemMatcher"`
	}
	if err := json.Unmarshal(raw, &matcher); err != nil {
		t.Fatalf("parsing problem matcher: %v", err)
	}
	if len(matcher.ProblemMatcher) != 1 || len(matcher.ProblemMatcher[0].Pattern) != 1 {
		t.Fatalf("expected exactly one matcher with one pattern, got %+v", matcher)
	}
	pat := matcher.ProblemMatcher[0].Pattern[0]
	re, err := regexp.Compile(pat.Regexp)
	if err != nil {
		t.Fatalf("matcher regexp does not compile: %v", err)
	}

	line := sampleDiag.String()
	m := re.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("matcher regexp %q does not match rendered diagnostic %q", pat.Regexp, line)
	}
	for _, check := range []struct {
		name  string
		group int
		want  string
	}{
		{"file", pat.File, "internal/core/striper.go"},
		{"line", pat.Line, "42"},
		{"column", pat.Column, "7"},
		{"code", pat.Code, "lockorder"},
		{"message", pat.Message, sampleDiag.Msg},
	} {
		if check.group <= 0 || check.group >= len(m) {
			t.Errorf("matcher %s group %d out of range", check.name, check.group)
			continue
		}
		if m[check.group] != check.want {
			t.Errorf("matcher %s group = %q, want %q", check.name, m[check.group], check.want)
		}
	}
}

// TestJSONShapeRoundTrips pins the -json wire shape: every field is
// present, and an empty Rule falls back to the pass name the way main
// emits it.
func TestJSONShapeRoundTrips(t *testing.T) {
	d := sampleDiag
	d.Rule = "" // a pass predating per-rule tagging
	rule := d.Rule
	if rule == "" {
		rule = d.Pass
	}
	out, err := json.Marshal(jsonDiagnostic{
		File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
		Pass: d.Pass, Rule: rule, Message: d.Msg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"file", "line", "col", "pass", "rule", "message"} {
		if _, ok := back[key]; !ok {
			t.Errorf("-json output misses key %q: %s", key, out)
		}
	}
	if back["rule"] != "lockorder" {
		t.Errorf("rule fallback = %v, want pass name", back["rule"])
	}
}
