// Command stripevet runs the module's protocol-aware static-analysis
// suite (internal/analysis): machine-checked enforcement of the
// implementation discipline the paper's theorems rest on.
//
//	go run ./cmd/stripevet ./...          # whole module (the CI gate)
//	go run ./cmd/stripevet ./internal/... # a subtree
//	go run ./cmd/stripevet -list          # passes and their rules
//	go run ./cmd/stripevet -pass hotpath,intwidth ./...
//	go run ./cmd/stripevet -json ./...    # machine-readable findings
//
// Patterns are module-relative directory patterns in the go tool's
// style ("./..." recurses). Every pass runs over its own scope (the
// intwidth pass, for example, polices only the deficit/credit/codec
// packages); any finding exits non-zero.
//
// With -json, findings are emitted as one JSON array of objects with
// file, line, col, pass, rule, and message fields (rule falls back to
// the pass name for passes that predate per-rule tagging). The plain
// rendering stays `file:line:col: [pass] message` — the GitHub Actions
// problem matcher in .github/stripevet-problem-matcher.json parses it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"stripe/internal/analysis"
)

// jsonDiagnostic is the -json wire shape of one finding.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	var (
		list    = flag.Bool("list", false, "list passes and exit")
		passes  = flag.String("pass", "", "comma-separated pass names (default: all)")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array instead of text")
	)
	flag.Parse()

	if *list {
		for _, p := range analysis.Passes {
			fmt.Printf("%-15s %s\n", p.Name, p.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fatal(err)
	}

	pkgs, err := selectPackages(prog, root, flag.Args())
	if err != nil {
		fatal(err)
	}

	todo := analysis.Passes
	if *passes != "" {
		todo = nil
		for _, name := range strings.Split(*passes, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, p := range analysis.Passes {
				if p.Name == name {
					todo = append(todo, p)
					found = true
				}
			}
			if !found {
				fatal(fmt.Errorf("unknown pass %q (try -list)", name))
			}
		}
	}

	var all []analysis.Diagnostic
	for _, p := range todo {
		all = append(all, p.RunScoped(prog, pkgs)...)
	}
	analysis.SortDiagnostics(all)
	for i := range all {
		if r, err := filepath.Rel(root, all[i].Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			all[i].Pos.Filename = r
		}
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, len(all))
		for i, d := range all {
			rule := d.Rule
			if rule == "" {
				rule = d.Pass
			}
			out[i] = jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Pass: d.Pass, Rule: rule, Message: d.Msg,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "stripevet: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("stripevet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages resolves go-tool-style directory patterns against the
// loaded program. No patterns (or "./...") selects everything.
func selectPackages(prog *analysis.Program, root string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return prog.Pkgs, nil
	}
	var out []*analysis.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "./" || pat == "" {
			pat = "."
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("stripevet: pattern %q is outside the module", pat)
		}
		want := prog.ModPath
		if rel != "." {
			want = prog.ModPath + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, pkg := range prog.Pkgs {
			ok := pkg.Path == want || (recursive && strings.HasPrefix(pkg.Path, want+"/")) ||
				(recursive && pkg.Path == want)
			if ok && !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
				matched = true
			} else if ok {
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("stripevet: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stripevet:", err)
	os.Exit(1)
}
