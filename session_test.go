package stripe

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// wireSessions connects two sessions back-to-back over in-process
// channels (a.tx -> b.rx and b.tx -> a.rx) and returns them plus a
// cleanup function.
func wireSessions(t *testing.T, nch int, cfg SessionConfig) (a, b *Session, cleanup func()) {
	t.Helper()
	mkChans := func() ([]*LocalChannel, []ChannelSender) {
		chans := make([]*LocalChannel, nch)
		senders := make([]ChannelSender, nch)
		for i := range chans {
			chans[i] = NewLocalChannel(LocalChannelConfig{Delay: time.Millisecond, Seed: int64(i)})
			senders[i] = chans[i]
		}
		return chans, senders
	}
	abChans, abSenders := mkChans()
	baChans, baSenders := mkChans()

	a, err := NewSession(abSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewSession(baSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pumps sync.WaitGroup
	pump := func(chans []*LocalChannel, dst *Session) {
		for i, ch := range chans {
			pumps.Add(1)
			go func(i int, ch *LocalChannel) {
				defer pumps.Done()
				for p := range ch.Out() {
					dst.Arrive(i, p)
				}
			}(i, ch)
		}
	}
	pump(abChans, b)
	pump(baChans, a)
	cleanup = func() {
		a.Close()
		b.Close()
		for _, ch := range abChans {
			ch.Close()
		}
		for _, ch := range baChans {
			ch.Close()
		}
		pumps.Wait()
	}
	return a, b, cleanup
}

// TestSessionDuplexFIFO checks both directions deliver FIFO
// concurrently.
func TestSessionDuplexFIFO(t *testing.T) {
	cfg := SessionConfig{Config: Config{Quanta: UniformQuanta(2, 1500)}}
	a, b, cleanup := wireSessions(t, 2, cfg)
	defer cleanup()

	const n = 150
	var wg sync.WaitGroup
	sendAll := func(s *Session, tag string) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			payload := make([]byte, 700)
			copy(payload, fmt.Sprintf("%s-%04d", tag, i))
			if err := s.SendBytes(payload); err != nil {
				t.Error(err)
				return
			}
		}
	}
	recvAll := func(s *Session, tag string) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			p := s.Recv()
			if p == nil {
				t.Errorf("%s: closed at %d", tag, i)
				return
			}
			want := fmt.Sprintf("%s-%04d", tag, i)
			if string(p.Payload[:len(want)]) != want {
				t.Errorf("%s: packet %d = %q", tag, i, p.Payload[:len(want)])
				return
			}
		}
	}
	wg.Add(4)
	go sendAll(a, "ab")
	go recvAll(b, "ab")
	go sendAll(b, "ba")
	go recvAll(a, "ba")
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("duplex transfer timed out")
	}
}

// TestSessionCreditsGateAndRefresh checks flow control end to end: a
// fast sender with a slow consumer is gated, credits piggybacked on the
// peer's markers un-gate it, and everything is eventually delivered in
// order.
func TestSessionCreditsGateAndRefresh(t *testing.T) {
	cfg := SessionConfig{
		Config:         Config{Quanta: UniformQuanta(2, 1500), Markers: MarkerPolicy{Every: 2, Position: 0}},
		CreditWindow:   8 * 1024,
		MarkerInterval: 5 * time.Millisecond,
	}
	a, b, cleanup := wireSessions(t, 2, cfg)
	defer cleanup()

	const n = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			payload := make([]byte, 1000)
			payload[0] = byte(i)
			payload[1] = byte(i >> 8)
			if err := a.SendBytes(payload); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Slow consumer: the 200 kB stream cannot fit the 2x8 kB windows,
	// so the sender must be gated and then refreshed by credits.
	for i := 0; i < n; i++ {
		time.Sleep(200 * time.Microsecond)
		p := b.Recv()
		if p == nil {
			t.Fatalf("closed at %d", i)
		}
		if got := int(p.Payload[0]) | int(p.Payload[1])<<8; got != i {
			t.Fatalf("packet %d arrived as %d", i, got)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender never finished; credits failed to refresh")
	}
	if b.Stats().Markers == 0 {
		t.Fatal("no markers consumed")
	}
}

// TestSessionCreditWindowBoundsInFlight checks the invariant: bytes in
// flight plus buffered never exceed the window per channel.
func TestSessionCreditWindowBoundsInFlight(t *testing.T) {
	const window = 4 * 1024
	cfg := SessionConfig{
		Config:         Config{Quanta: UniformQuanta(2, 1500), Markers: MarkerPolicy{Every: 2, Position: 0}},
		CreditWindow:   window,
		MarkerInterval: -1, // manual markers only
	}
	a, _, cleanup := wireSessions(t, 2, cfg)
	defer cleanup()

	// With no Recv on the peer and no marker credits flowing back, the
	// sender can emit at most 2*window bytes before gating blocks it.
	sent := make(chan int)
	go func() {
		count := 0
		for {
			if err := a.SendBytes(make([]byte, 1024)); err != nil {
				break
			}
			count++
			select {
			case sent <- count:
			default:
			}
		}
	}()
	deadline := time.After(2 * time.Second)
	maxSent := 0
drain:
	for {
		select {
		case c := <-sent:
			maxSent = c
		case <-deadline:
			break drain
		}
	}
	if maxSent > 2*window/1024 {
		t.Fatalf("sender emitted %d kB against a %d kB total window", maxSent, 2*window/1024)
	}
	if maxSent == 0 {
		t.Fatal("nothing was sent")
	}
}

// TestSessionCloseUnblocks checks Close releases blocked Send and Recv.
func TestSessionCloseUnblocks(t *testing.T) {
	cfg := SessionConfig{
		Config:       Config{Quanta: UniformQuanta(2, 1500)},
		CreditWindow: 512, // tiny: Send will gate quickly
	}
	a, _, cleanup := wireSessions(t, 2, cfg)

	errs := make(chan error, 1)
	go func() {
		for {
			if err := a.SendBytes(make([]byte, 400)); err != nil {
				errs <- err
				return
			}
		}
	}()
	recvDone := make(chan *Packet, 1)
	go func() { recvDone <- a.Recv() }()

	time.Sleep(50 * time.Millisecond)
	cleanup() // closes both sessions

	select {
	case err := <-errs:
		if err != ErrSessionClosed {
			t.Fatalf("Send returned %v, want ErrSessionClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send never unblocked after Close")
	}
	select {
	case p := <-recvDone:
		if p != nil {
			t.Fatalf("Recv returned %v after close", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv never unblocked after Close")
	}
}

// TestSessionValidation covers constructor errors.
func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(make([]ChannelSender, 2), SessionConfig{
		Config: Config{Quanta: []int64{100}},
	}); err == nil {
		t.Error("mismatched quanta accepted")
	}
}
