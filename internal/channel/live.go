package channel

import (
	"math/rand"
	"sync"
	"time"

	"stripe/internal/obs"
	"stripe/internal/packet"
)

// LiveConfig configures a real-time channel.
type LiveConfig struct {
	// RateBps is the link bandwidth in bits per second; packets incur a
	// serialization delay of 8*len/RateBps. Zero means infinitely fast.
	RateBps float64
	// Delay is the one-way propagation delay (the channel's base skew).
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per
	// packet. FIFO order is preserved regardless: a packet is never
	// released before its predecessor.
	Jitter time.Duration
	// Impairments configures loss and corruption, as for Queue.
	Impairments Impairments
	// Buffer is the transmit queue depth in packets (default 1024).
	Buffer int
	// Obs, when non-nil, receives channel loss counts and transmit
	// queue depth for channel index Index.
	Obs *obs.Collector
	// Index is this channel's index within the stripe, used to label
	// the collector's per-channel metrics.
	Index int
}

// Live is a goroutine-driven FIFO channel that delivers packets after a
// configurable rate + skew delay. It is safe for one sender goroutine
// and one receiver goroutine.
type Live struct {
	cfg  LiveConfig
	in   chan *packet.Packet
	out  chan *packet.Packet
	stop chan struct{}
	once sync.Once

	mu    sync.Mutex
	stats Stats
}

// NewLive starts the channel's pump goroutine and returns the channel.
// Call Close to release it.
func NewLive(cfg LiveConfig) *Live {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	l := &Live{
		cfg:  cfg,
		in:   make(chan *packet.Packet, cfg.Buffer),
		out:  make(chan *packet.Packet, cfg.Buffer),
		stop: make(chan struct{}),
	}
	go l.pump()
	return l
}

// timedPacket is a packet with its computed delivery time.
type timedPacket struct {
	p       *packet.Packet
	release time.Time
}

// pump models the transmitter: it paces packets at the line rate,
// applies the loss processes, and stamps each survivor with its
// delivery time (serialization end + propagation + jitter, clamped to
// preserve FIFO). Delivery itself happens in deliverLoop so that the
// propagation delay pipelines instead of limiting throughput.
func (l *Live) pump() {
	mid := make(chan timedPacket, 4096)
	go l.deliverLoop(mid)
	defer close(mid)
	rng := rand.New(rand.NewSource(l.cfg.Impairments.Seed))
	q := &Queue{imp: l.cfg.Impairments, rng: rng, open: true} // reuse the loss models
	txFree := time.Now()
	var lastRelease time.Time
	for {
		select {
		case <-l.stop:
			return
		case p, ok := <-l.in:
			if !ok {
				return
			}
			now := time.Now()
			if txFree.Before(now) {
				txFree = now
			}
			if l.cfg.RateBps > 0 {
				ser := time.Duration(float64(p.Len()*8) / l.cfg.RateBps * float64(time.Second))
				txFree = txFree.Add(ser)
				// Pace the transmitter with a small burst allowance: OS
				// timers overshoot by hundreds of microseconds, so
				// sleeping per packet would throttle high packet rates.
				// Letting the budget run up to 5ms ahead keeps the
				// long-run rate exact while amortizing timer error.
				const burst = 5 * time.Millisecond
				if d := time.Until(txFree); d > burst {
					timer := time.NewTimer(d - burst)
					select {
					case <-timer.C:
					case <-l.stop:
						timer.Stop()
						return
					}
				}
			}
			l.cfg.Obs.SetChannelQueueDepth(l.cfg.Index, int64(len(l.in)))
			lost, corrupted := q.lose()
			if lost || corrupted {
				l.mu.Lock()
				if lost {
					l.stats.Lost++
				} else {
					l.stats.Corrupted++
				}
				l.mu.Unlock()
				l.cfg.Obs.OnChannelLost(l.cfg.Index)
				continue
			}
			release := txFree.Add(l.cfg.Delay)
			if l.cfg.Jitter > 0 {
				release = release.Add(time.Duration(rng.Int63n(int64(l.cfg.Jitter))))
			}
			if release.Before(lastRelease) {
				release = lastRelease // FIFO: never overtake
			}
			lastRelease = release
			select {
			case mid <- timedPacket{p: p, release: release}:
			case <-l.stop:
				return
			}
		}
	}
}

// deliverLoop releases packets at their delivery times. Release times
// are monotone, so waiting on the head is sufficient; after each wake
// every packet already due is delivered in one burst, so timer
// overshoot does not cap the delivery rate.
func (l *Live) deliverLoop(mid <-chan timedPacket) {
	defer close(l.out)
	for tp := range mid {
		if d := time.Until(tp.release); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-l.stop:
				timer.Stop()
				return
			}
		}
		for {
			select {
			case l.out <- tp.p:
				l.mu.Lock()
				l.stats.Delivered++
				l.stats.DeliveredBiB += int64(tp.p.Len())
				l.mu.Unlock()
			case <-l.stop:
				return
			}
			// Drain everything else already due.
			select {
			case next, ok := <-mid:
				if !ok {
					return
				}
				tp = next
				if d := time.Until(tp.release); d > 0 {
					// Not due yet: wait for it on the next outer pass.
					timer := time.NewTimer(d)
					select {
					case <-timer.C:
					case <-l.stop:
						timer.Stop()
						return
					}
				}
				continue
			default:
			}
			break
		}
	}
}

// Send implements Sender. It blocks when the transmit queue is full,
// which gives the examples natural backpressure.
func (l *Live) Send(p *packet.Packet) error {
	select {
	case <-l.stop:
		return ErrClosed
	default:
	}
	l.mu.Lock()
	l.stats.Sent++
	l.stats.SentBytes += int64(p.Len())
	l.mu.Unlock()
	select {
	case l.in <- p:
		return nil
	case <-l.stop:
		return ErrClosed
	}
}

// Recv implements Receiver without blocking.
func (l *Live) Recv() (*packet.Packet, bool) {
	select {
	case p, ok := <-l.out:
		return p, ok
	default:
		return nil, false
	}
}

// Out exposes the delivery stream for blocking consumption.
func (l *Live) Out() <-chan *packet.Packet { return l.out }

// Stats returns a copy of the counters.
func (l *Live) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close stops the pump. It is safe to call more than once.
func (l *Live) Close() {
	l.once.Do(func() { close(l.stop) })
}
