// Package channel provides the FIFO channel substrate the striping
// protocol runs over, in the broad sense the paper defines: a logical
// FIFO path at any layer. Channels here can lose, corrupt, and delay
// packets — but never reorder them, matching the model of Section 2
// (channels that occasionally deviate from FIFO are modelled as having
// burst errors).
//
// Two implementations are provided:
//
//   - Queue: a synchronous, zero-time FIFO for deterministic
//     state-machine experiments and tests. Impairments (i.i.d. loss,
//     Gilbert–Elliott burst loss, detectable corruption) are applied at
//     Send time from a seeded generator, so every run is reproducible.
//   - Live: a goroutine-driven channel with real-time rate limiting and
//     per-packet skew for the runnable examples, preserving FIFO order
//     by construction.
//
// The discrete-event simulator in internal/sim has its own link model
// with simulated time; this package is the substrate for everything that
// does not need a clock.
package channel

import (
	"errors"
	"math/rand"

	"stripe/internal/packet"
)

// Sender is the transmit side of a FIFO channel.
type Sender interface {
	// Send enqueues p on the channel. Impaired channels may silently
	// drop or corrupt the packet; that is not an error (the sender of a
	// lossy link does not learn of loss). An error means the channel can
	// accept no more traffic (closed or buffer-limited).
	Send(p *packet.Packet) error
}

// BatchSender is optionally implemented by channels that can accept a
// vector of packets in one call, amortizing per-send overhead (one
// buffered flush or syscall per batch where the transport allows — the
// writev of the channel world). Senders that do not implement it are
// driven packet-at-a-time by the batched striper, so implementing
// BatchSender is purely an optimization, never a requirement.
type BatchSender interface {
	Sender
	// SendBatch enqueues pkts in FIFO order and returns the number of
	// packets the channel accepted; n < len(pkts) only alongside a
	// non-nil error, and pkts[n:] were not accepted. A transport whose
	// buffering makes the delivery of accepted packets uncertain after
	// an error (a TCP flush that fails partway) still counts them as
	// accepted: an accepted-but-dropped tail is indistinguishable from
	// wire loss, which the striping protocol already recovers from.
	SendBatch(pkts []*packet.Packet) (int, error)
}

// Receiver is the receive side of a FIFO channel.
type Receiver interface {
	// Recv dequeues the next packet. ok is false when nothing is
	// currently available.
	Recv() (p *packet.Packet, ok bool)
}

// ErrClosed is returned by Send on a closed channel.
var ErrClosed = errors.New("channel: closed")

// Stats counts per-channel events. All counters are cumulative.
type Stats struct {
	Sent         int64 // packets accepted by Send
	SentBytes    int64
	Lost         int64 // dropped by the loss model
	Corrupted    int64 // dropped as detectably corrupted
	Delivered    int64 // packets handed to Recv
	DeliveredBiB int64 // bytes handed to Recv
	Overflowed   int64 // dropped because the queue was at capacity
}

// GilbertElliott is a two-state burst-loss model. In the Good state
// packets are lost with probability GoodLoss; in the Bad state with
// probability BadLoss. After each packet the state flips with
// probability PGoodToBad or PBadToGood. Zero-value means "no burst
// model".
type GilbertElliott struct {
	PGoodToBad float64
	PBadToGood float64
	GoodLoss   float64
	BadLoss    float64
}

func (g GilbertElliott) enabled() bool {
	return g.PGoodToBad > 0 || g.BadLoss > 0 || g.GoodLoss > 0
}

// perfect reports whether the impairment config can never drop a
// packet, so bulk paths may skip the per-packet error processes.
func (im Impairments) perfect() bool {
	return im.Loss <= 0 && im.Corrupt <= 0 && !im.Burst.enabled()
}

// Impairments configures the error processes of a channel. The zero
// value is a perfect channel.
type Impairments struct {
	// Loss is the i.i.d. probability that a packet is silently dropped.
	Loss float64
	// Corrupt is the i.i.d. probability that a packet is corrupted in
	// flight. The paper assumes corruption is detectable (link CRCs),
	// and that detectably corrupt packets are discarded before reaching
	// the resequencing algorithm; the model therefore drops them,
	// counting them separately from losses.
	Corrupt float64
	// Burst layers a Gilbert–Elliott burst-loss process on top of Loss.
	Burst GilbertElliott
	// Seed makes the error processes reproducible. Channels with
	// different seeds have independent processes.
	Seed int64
}

// Queue is a synchronous in-memory FIFO channel with impairments. It is
// not safe for concurrent use; it belongs to single-goroutine harnesses
// and tests. Use Live for concurrent pipelines.
type Queue struct {
	imp      Impairments
	rng      *rand.Rand
	bad      bool // Gilbert–Elliott state
	buf      []*packet.Packet
	head     int
	cap      int   // packet limit; 0 = unbounded
	capBytes int64 // byte limit; 0 = unbounded
	bytes    int64 // payload bytes currently queued
	stats    Stats
	open     bool
}

// NewQueue returns an unbounded impaired FIFO.
func NewQueue(imp Impairments) *Queue {
	return &Queue{imp: imp, rng: rand.New(rand.NewSource(imp.Seed)), open: true}
}

// NewBoundedQueue returns a FIFO that drops (counting Overflowed) when
// more than capacity packets are queued — the finite receive buffer of
// the flow-control experiment.
func NewBoundedQueue(imp Impairments, capacity int) *Queue {
	q := NewQueue(imp)
	q.cap = capacity
	return q
}

// NewByteBoundedQueue returns a FIFO that drops (counting Overflowed)
// when the queued payload bytes would exceed capBytes — a socket-buffer
// style receive buffer.
func NewByteBoundedQueue(imp Impairments, capBytes int64) *Queue {
	q := NewQueue(imp)
	q.capBytes = capBytes
	return q
}

// Close marks the channel closed; subsequent Sends fail.
func (q *Queue) Close() { q.open = false }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Stats returns a copy of the channel counters.
func (q *Queue) Stats() Stats { return q.stats }

// lose decides the fate of one packet under the error models.
func (q *Queue) lose() (lost, corrupted bool) {
	if q.imp.Loss > 0 && q.rng.Float64() < q.imp.Loss {
		return true, false
	}
	if q.imp.Burst.enabled() {
		p := q.imp.Burst.GoodLoss
		if q.bad {
			p = q.imp.Burst.BadLoss
		}
		dropped := p > 0 && q.rng.Float64() < p
		// State transition after the packet.
		if q.bad {
			if q.rng.Float64() < q.imp.Burst.PBadToGood {
				q.bad = false
			}
		} else {
			if q.rng.Float64() < q.imp.Burst.PGoodToBad {
				q.bad = true
			}
		}
		if dropped {
			return true, false
		}
	}
	if q.imp.Corrupt > 0 && q.rng.Float64() < q.imp.Corrupt {
		return false, true
	}
	return false, false
}

// Send implements Sender.
func (q *Queue) Send(p *packet.Packet) error {
	if !q.open {
		return ErrClosed
	}
	q.stats.Sent++
	q.stats.SentBytes += int64(p.Len())
	lost, corrupted := q.lose()
	if lost {
		q.stats.Lost++
		return nil
	}
	if corrupted {
		q.stats.Corrupted++
		return nil
	}
	if q.cap > 0 && q.Len() >= q.cap {
		q.stats.Overflowed++
		return nil
	}
	if q.capBytes > 0 && q.bytes+int64(p.Len()) > q.capBytes {
		q.stats.Overflowed++
		return nil
	}
	q.buf = append(q.buf, p)
	q.bytes += int64(p.Len())
	return nil
}

// SendBatch implements BatchSender. A perfect unbounded queue (the
// benchmark and happy-path test configuration) takes a bulk append —
// one stats update and one copy for the whole batch; anything with an
// error process or a capacity bound goes through Send per packet so
// the impairment state machines observe every packet in order.
func (q *Queue) SendBatch(pkts []*packet.Packet) (int, error) {
	if q.open && q.cap == 0 && q.capBytes == 0 && q.imp.perfect() {
		var by int64
		for _, p := range pkts {
			by += int64(p.Len())
		}
		q.buf = append(q.buf, pkts...)
		q.bytes += by
		q.stats.Sent += int64(len(pkts))
		q.stats.SentBytes += by
		return len(pkts), nil
	}
	for i, p := range pkts {
		if err := q.Send(p); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// Recv implements Receiver.
func (q *Queue) Recv() (*packet.Packet, bool) {
	if q.head == len(q.buf) {
		return nil, false
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	q.bytes -= int64(p.Len())
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 256 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.stats.Delivered++
	q.stats.DeliveredBiB += int64(p.Len())
	return p, true
}

// Peek returns the head packet without removing it.
func (q *Queue) Peek() (*packet.Packet, bool) {
	if q.head == len(q.buf) {
		return nil, false
	}
	return q.buf[q.head], true
}

// Group is a convenience bundle of N parallel queues between one sender
// and one receiver, the "N channels between S and R" of Figure 1.
type Group struct {
	Queues []*Queue
}

// NewGroup builds n queues sharing the impairment configuration but
// with independent seeds (seed, seed+1, ...).
func NewGroup(n int, imp Impairments) *Group {
	g := &Group{Queues: make([]*Queue, n)}
	for i := range g.Queues {
		qi := imp
		qi.Seed = imp.Seed + int64(i)
		g.Queues[i] = NewQueue(qi)
	}
	return g
}

// Senders returns the queues as a slice of Sender.
func (g *Group) Senders() []Sender {
	s := make([]Sender, len(g.Queues))
	for i, q := range g.Queues {
		s[i] = q
	}
	return s
}

// Receivers returns the queues as a slice of Receiver.
func (g *Group) Receivers() []Receiver {
	r := make([]Receiver, len(g.Queues))
	for i, q := range g.Queues {
		r[i] = q
	}
	return r
}

// TotalStats sums the per-channel counters.
func (g *Group) TotalStats() Stats {
	var t Stats
	for _, q := range g.Queues {
		s := q.Stats()
		t.Sent += s.Sent
		t.SentBytes += s.SentBytes
		t.Lost += s.Lost
		t.Corrupted += s.Corrupted
		t.Delivered += s.Delivered
		t.DeliveredBiB += s.DeliveredBiB
		t.Overflowed += s.Overflowed
	}
	return t
}
