package channel

import (
	"testing"
	"time"

	"stripe/internal/packet"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(Impairments{})
	for i := 0; i < 100; i++ {
		p := packet.NewDataSized(i + 1)
		p.ID = uint64(i)
		if err := q.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		p, ok := q.Recv()
		if !ok || p.ID != uint64(i) {
			t.Fatalf("packet %d: %v %v", i, p, ok)
		}
	}
	if _, ok := q.Recv(); ok {
		t.Fatal("Recv on empty queue succeeded")
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(Impairments{})
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue succeeded")
	}
	q.Send(packet.NewDataSized(5))
	p, ok := q.Peek()
	if !ok || p.Len() != 5 {
		t.Fatalf("Peek = %v %v", p, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed the packet")
	}
}

func TestQueueClose(t *testing.T) {
	q := NewQueue(Impairments{})
	q.Close()
	if err := q.Send(packet.NewDataSized(1)); err != ErrClosed {
		t.Fatalf("Send on closed queue: %v", err)
	}
}

func TestQueueLossRate(t *testing.T) {
	q := NewQueue(Impairments{Loss: 0.3, Seed: 11})
	const n = 20000
	for i := 0; i < n; i++ {
		q.Send(packet.NewDataSized(100))
	}
	st := q.Stats()
	frac := float64(st.Lost) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("loss fraction %.4f, want ~0.30", frac)
	}
	if st.Sent != n {
		t.Fatalf("Sent = %d", st.Sent)
	}
	if int64(q.Len())+st.Lost != n {
		t.Fatalf("queued %d + lost %d != %d", q.Len(), st.Lost, n)
	}
}

func TestQueueCorruption(t *testing.T) {
	q := NewQueue(Impairments{Corrupt: 0.5, Seed: 3})
	const n = 10000
	for i := 0; i < n; i++ {
		q.Send(packet.NewDataSized(10))
	}
	st := q.Stats()
	if st.Corrupted < 4500 || st.Corrupted > 5500 {
		t.Fatalf("corrupted = %d, want ~5000", st.Corrupted)
	}
}

func TestQueueDeterministicUnderSeed(t *testing.T) {
	a := NewQueue(Impairments{Loss: 0.5, Seed: 77})
	b := NewQueue(Impairments{Loss: 0.5, Seed: 77})
	for i := 0; i < 1000; i++ {
		a.Send(packet.NewDataSized(10))
		b.Send(packet.NewDataSized(10))
	}
	if a.Stats().Lost != b.Stats().Lost || a.Len() != b.Len() {
		t.Fatal("same seed, different outcome")
	}
}

func TestBoundedQueueOverflow(t *testing.T) {
	q := NewBoundedQueue(Impairments{}, 3)
	for i := 0; i < 5; i++ {
		q.Send(packet.NewDataSized(1))
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if st := q.Stats(); st.Overflowed != 2 {
		t.Fatalf("Overflowed = %d, want 2", st.Overflowed)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// A bursty channel: rarely enters the bad state, loses most packets
	// while there. Check the aggregate rate is near the analytic
	// stationary value and that losses cluster.
	ge := GilbertElliott{PGoodToBad: 0.01, PBadToGood: 0.2, GoodLoss: 0, BadLoss: 0.9}
	q := NewQueue(Impairments{Burst: ge, Seed: 5})
	const n = 100000
	lostRun, maxRun := 0, 0
	for i := 0; i < n; i++ {
		before := q.Stats().Lost
		q.Send(packet.NewDataSized(10))
		if q.Stats().Lost > before {
			lostRun++
			if lostRun > maxRun {
				maxRun = lostRun
			}
		} else {
			lostRun = 0
		}
		// Drain to keep memory flat.
		q.Recv()
	}
	// Stationary bad-state probability = p/(p+q) = 0.01/0.21 ≈ 0.0476;
	// expected loss ≈ 0.0476*0.9 ≈ 4.3%.
	frac := float64(q.Stats().Lost) / n
	if frac < 0.03 || frac > 0.06 {
		t.Fatalf("burst loss fraction %.4f, want ~0.043", frac)
	}
	if maxRun < 3 {
		t.Fatalf("max loss run %d; losses did not cluster", maxRun)
	}
}

func TestGroupIndependentSeeds(t *testing.T) {
	g := NewGroup(2, Impairments{Loss: 0.5, Seed: 9})
	for i := 0; i < 1000; i++ {
		g.Queues[0].Send(packet.NewDataSized(10))
		g.Queues[1].Send(packet.NewDataSized(10))
	}
	if g.Queues[0].Stats().Lost == g.Queues[1].Stats().Lost {
		// Could coincide, but with 1000 trials it is vanishingly
		// unlikely unless the processes share a seed.
		t.Fatal("channels appear to share a loss process")
	}
	ts := g.TotalStats()
	if ts.Sent != 2000 {
		t.Fatalf("total sent = %d", ts.Sent)
	}
	if len(g.Senders()) != 2 || len(g.Receivers()) != 2 {
		t.Fatal("adapter slices wrong length")
	}
}

func TestLiveChannelFIFOAndDelay(t *testing.T) {
	l := NewLive(LiveConfig{Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond})
	defer l.Close()
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		p := packet.NewDataSized(10)
		p.ID = uint64(i)
		if err := l.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case p := <-l.Out():
			if p.ID != uint64(i) {
				t.Fatalf("packet %d has ID %d (FIFO violated)", i, p.ID)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("packet %d timed out", i)
		}
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delivery too fast: %v", elapsed)
	}
	st := l.Stats()
	if st.Sent != n || st.Delivered != n {
		t.Fatalf("stats %+v", st)
	}
}

func TestLiveChannelLoss(t *testing.T) {
	l := NewLive(LiveConfig{Impairments: Impairments{Loss: 1.0}})
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Send(packet.NewDataSized(10)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case p := <-l.Out():
		t.Fatalf("packet %v survived 100%% loss", p)
	case <-time.After(50 * time.Millisecond):
	}
	// All sends counted, all lost (allow the pump a moment).
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().Lost == 10 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("lost = %d, want 10", l.Stats().Lost)
}

func TestLiveChannelClose(t *testing.T) {
	l := NewLive(LiveConfig{})
	l.Close()
	l.Close() // idempotent
	// Sends after close fail (possibly after the stop race settles).
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if err := l.Send(packet.NewDataSized(1)); err == ErrClosed {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("Send never failed after Close")
}

func TestLiveChannelRecvNonBlocking(t *testing.T) {
	l := NewLive(LiveConfig{})
	defer l.Close()
	if _, ok := l.Recv(); ok {
		t.Fatal("Recv returned a packet on an idle channel")
	}
	l.Send(packet.NewDataSized(3))
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if p, ok := l.Recv(); ok {
			if p.Len() != 3 {
				t.Fatalf("wrong packet %v", p)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("packet never delivered")
}

func TestLiveChannelRate(t *testing.T) {
	// 10 packets of 1250 bytes at 1 Mb/s = 10 ms serialization each:
	// the last packet cannot arrive before ~100 ms.
	l := NewLive(LiveConfig{RateBps: 1e6})
	defer l.Close()
	start := time.Now()
	for i := 0; i < 10; i++ {
		l.Send(packet.NewDataSized(1250))
	}
	got := 0
	for got < 10 {
		select {
		case <-l.Out():
			got++
		case <-time.After(5 * time.Second):
			t.Fatal("timed out")
		}
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("10 kB at 1 Mb/s took only %v", elapsed)
	}
}
