package sim

import (
	"fmt"

	"stripe/internal/packet"
)

// CPUConfig models the receiving workstation's packet-processing costs.
// The paper attributes the strIPe throughput flattening to interrupt
// load: with one busy interface many packets are handled per interrupt,
// while striping spreads arrivals over several interfaces and pays the
// fixed interrupt cost far more often.
type CPUConfig struct {
	// PerInterrupt is the fixed cost of taking one receive interrupt.
	PerInterrupt Time
	// PerPacket is the cost of processing one packet (driver + IP).
	PerPacket Time
	// PerByte is the data-touching cost per payload byte (checksum,
	// copy), in nanoseconds per byte.
	PerByte float64
	// Ring is the per-NIC receive ring capacity in packets (default
	// 128); overflow drops the packet, which TCP observes as loss.
	Ring int
	// Coalesce is the per-NIC interrupt-coalescing window: an interrupt
	// is raised when the ring fills or Coalesce elapses after the first
	// packet lands in an empty ring. This is the mechanism that makes a
	// single loaded interface cheap per packet (batch ≈ rate × window)
	// and striping expensive (each interface batches only its own
	// share). Zero raises interrupts immediately.
	Coalesce Time
}

// HostStats counts receive-side events.
type HostStats struct {
	Interrupts int64
	Packets    int64
	Bytes      int64
	RingDrops  int64
	// Busy is cumulative CPU time spent in receive processing.
	Busy Time
}

// Host models the receiving workstation: per-NIC receive rings drained
// by a single CPU, one ring per interrupt (batching), round-robin
// across NICs with raised interrupts.
type Host struct {
	sim   *Sim
	cfg   CPUConfig
	rings [][]*packet.Packet
	armed []bool // coalescing timer pending
	ready []bool // interrupt raised, awaiting CPU
	busy  bool
	next  int // round-robin scan position
	out   func(nic int, p *packet.Packet)
	stats HostStats
}

// NewHost creates a host with n NICs delivering processed packets to
// out.
func NewHost(s *Sim, n int, cfg CPUConfig, out func(nic int, p *packet.Packet)) (*Host, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: host needs at least one NIC")
	}
	if out == nil {
		return nil, fmt.Errorf("sim: host needs an output callback")
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 128
	}
	return &Host{
		sim:   s,
		cfg:   cfg,
		rings: make([][]*packet.Packet, n),
		armed: make([]bool, n),
		ready: make([]bool, n),
		out:   out,
	}, nil
}

// Stats returns a copy of the counters.
func (h *Host) Stats() HostStats { return h.stats }

// NICInput returns the arrival callback for NIC i, suitable as a link's
// deliver function.
func (h *Host) NICInput(i int) func(p *packet.Packet) {
	return func(p *packet.Packet) { h.arrive(i, p) }
}

func (h *Host) arrive(nic int, p *packet.Packet) {
	if len(h.rings[nic]) >= h.cfg.Ring {
		h.stats.RingDrops++
		return
	}
	h.rings[nic] = append(h.rings[nic], p)
	switch {
	case h.ready[nic]:
		// Interrupt already raised; the packet joins the pending batch.
	case len(h.rings[nic]) >= h.cfg.Ring:
		// Ring filled before the window expired: raise immediately.
		h.ready[nic] = true
		h.maybeService()
	case h.cfg.Coalesce <= 0:
		h.ready[nic] = true
		h.maybeService()
	case !h.armed[nic]:
		h.armed[nic] = true
		h.sim.After(h.cfg.Coalesce, func() {
			h.armed[nic] = false
			if len(h.rings[nic]) > 0 && !h.ready[nic] {
				h.ready[nic] = true
				h.maybeService()
			}
		})
	}
}

// maybeService starts servicing the next NIC with a raised interrupt if
// the CPU is idle. The whole ring is drained in one interrupt.
func (h *Host) maybeService() {
	if h.busy {
		return
	}
	n := len(h.rings)
	for k := 0; k < n; k++ {
		nic := (h.next + k) % n
		if !h.ready[nic] || len(h.rings[nic]) == 0 {
			continue
		}
		batch := h.rings[nic]
		h.rings[nic] = nil
		h.ready[nic] = false
		h.next = (nic + 1) % n
		var bytes int64
		for _, p := range batch {
			bytes += int64(p.Len())
		}
		cost := h.cfg.PerInterrupt +
			Time(len(batch))*h.cfg.PerPacket +
			Time(float64(bytes)*h.cfg.PerByte)
		h.busy = true
		h.stats.Interrupts++
		h.stats.Packets += int64(len(batch))
		h.stats.Bytes += bytes
		h.stats.Busy += cost
		h.sim.After(cost, func() {
			h.busy = false
			for _, p := range batch {
				h.out(nic, p)
			}
			h.maybeService()
		})
		return
	}
}
