// Package sim is a deterministic discrete-event simulator substituting
// for the paper's NetBSD testbed (two Pentium workstations, a 10 Mb/s
// Ethernet and a rate-adjustable ATM PVC). It provides:
//
//   - an event engine with nanosecond resolution and stable FIFO
//     ordering of simultaneous events;
//   - links with bandwidth, propagation delay, bounded transmit queues
//     and seeded loss processes;
//   - a receiving-host CPU model with per-interrupt and per-packet
//     costs and per-NIC interrupt batching — the mechanism the paper
//     cites for the upper bound's rise-then-fall and for strIPe's
//     flattening past 14 Mb/s (striping over two interfaces batches
//     less, so interrupt overhead grows);
//   - a Reno-style mini-TCP (slow start, congestion avoidance, duplicate
//     ACKs, fast retransmit/recovery, RTO) whose intolerance of
//     reordering is what makes logical reception outperform
//     no-resequencing in Figure 15.
//
// Everything is seeded and single-threaded: a given configuration
// always produces the same numbers.
package sim

import "container/heap"

// Time is simulated time in nanoseconds.
type Time int64

// Convenient durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event engine.
type Sim struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// New returns an empty simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.heap, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue empties or the clock passes
// `until` (events at exactly `until` run). It returns the number of
// events processed.
func (s *Sim) Run(until Time) int {
	n := 0
	for len(s.heap) > 0 {
		if s.heap[0].at > until {
			break
		}
		e := heap.Pop(&s.heap).(event)
		s.now = e.at
		e.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.heap) }
