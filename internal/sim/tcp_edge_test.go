package sim

import (
	"encoding/binary"
	"testing"

	"stripe/internal/packet"
)

// collectSender captures emitted segments without a network.
type collectSender struct {
	segs []*packet.Packet
}

func (c *collectSender) Send(p *packet.Packet) error {
	c.segs = append(c.segs, p)
	return nil
}

func seqOf(p *packet.Packet) int64 {
	return int64(binary.BigEndian.Uint64(p.Payload[:8]))
}

// TestTCPFastRetransmitOnTripleDup exercises the dup-ack state machine
// directly: three duplicate ACKs trigger exactly one fast retransmit of
// the first unacked segment, and a full ACK exits recovery with cwnd =
// ssthresh.
func TestTCPFastRetransmitOnTripleDup(t *testing.T) {
	s := New()
	out := &collectSender{}
	snd, err := NewTCPSender(s, out, TCPConfig{MSS: 1000, RcvWnd: 8000})
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	initial := len(out.segs)
	if initial == 0 {
		t.Fatal("nothing sent at start")
	}
	firstSeq := seqOf(out.segs[0])

	// Two duplicate ACKs: below the threshold, nothing retransmitted.
	snd.OnAck(firstSeq)
	snd.OnAck(firstSeq)
	if st := snd.Stats(); st.FastRetransmits != 0 {
		t.Fatalf("retransmitted before the third dup: %+v", st)
	}
	// Third duplicate: fast retransmit fires once.
	mark := len(out.segs)
	snd.OnAck(firstSeq)
	st := snd.Stats()
	if st.FastRetransmits != 1 {
		t.Fatalf("fast retransmits = %d, want 1 (stats %+v)", st.FastRetransmits, st)
	}
	// The first emission after the trigger is the hole (trySend may
	// append new data behind it under the inflated window).
	if seqOf(out.segs[mark]) != firstSeq {
		t.Fatalf("retransmitted seq %d, want %d", seqOf(out.segs[mark]), firstSeq)
	}
	// Full ACK exits recovery.
	snd.OnAck(snd.sndNxt)
	if snd.inRec {
		t.Fatal("still in recovery after full ACK")
	}
	if snd.cwnd != snd.ssthresh {
		t.Fatalf("cwnd = %v, want ssthresh %v on recovery exit", snd.cwnd, snd.ssthresh)
	}
}

// TestTCPRTOCollapsesWindow exercises the timeout path: with no ACKs at
// all, the RTO fires, the head is retransmitted and cwnd drops to one
// MSS.
func TestTCPRTOCollapsesWindow(t *testing.T) {
	s := New()
	out := &collectSender{}
	snd, err := NewTCPSender(s, out, TCPConfig{MSS: 1000, RcvWnd: 4000, RTO: 10 * Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	first := seqOf(out.segs[0])
	s.Run(50 * Millisecond)
	st := snd.Stats()
	if st.Timeouts == 0 {
		t.Fatal("RTO never fired")
	}
	if snd.cwnd != 1000 {
		t.Fatalf("cwnd = %v after RTO, want one MSS", snd.cwnd)
	}
	last := out.segs[len(out.segs)-1]
	if seqOf(last) != first {
		t.Fatalf("RTO retransmitted seq %d, want head %d", seqOf(last), first)
	}
}

// TestTCPNewRenoPartialAck exercises the partial-ACK path: in recovery,
// an ACK that advances but does not cover `recover` retransmits the
// next hole and stays in recovery.
func TestTCPNewRenoPartialAck(t *testing.T) {
	s := New()
	out := &collectSender{}
	snd, err := NewTCPSender(s, out, TCPConfig{MSS: 1000, RcvWnd: 8000, InitCwnd: 6})
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	if len(out.segs) < 4 {
		t.Fatalf("only %d segments in flight", len(out.segs))
	}
	seq0 := seqOf(out.segs[0])
	seq1 := seqOf(out.segs[1])
	// Enter recovery.
	for i := 0; i < 4; i++ {
		snd.OnAck(seq0)
	}
	if !snd.inRec {
		t.Fatal("not in recovery")
	}
	// Partial ACK: covers segment 0 only.
	before := snd.Stats().FastRetransmits
	mark := len(out.segs)
	snd.OnAck(seq1)
	if !snd.inRec {
		t.Fatal("left recovery on a partial ACK")
	}
	if got := snd.Stats().FastRetransmits; got != before+1 {
		t.Fatalf("partial ACK retransmits = %d, want %d", got, before+1)
	}
	// The first emission after the partial ACK is the next hole;
	// trySend may append fresh data behind it.
	if seqOf(out.segs[mark]) != seq1 {
		t.Fatalf("partial-ACK retransmission at %d, want next hole %d", seqOf(out.segs[mark]), seq1)
	}
}

// TestTCPReceiverOOOBuffer checks cumulative-ACK generation and the
// out-of-order reassembly path.
func TestTCPReceiverOOOBuffer(t *testing.T) {
	s := New()
	snd, _ := NewTCPSender(s, &collectSender{}, TCPConfig{MSS: 1000})
	recv := NewTCPReceiver(s, snd, TCPConfig{AckDelay: 1})
	// Intercept ACKs by replacing the sim-delayed call: run the sim
	// after each packet and read the sender's sndUna? Simpler: observe
	// through Goodput and Acks.
	seg := func(seq int64, n int) *packet.Packet {
		p := packet.NewDataSized(TCPHeaderLen + n)
		binary.BigEndian.PutUint64(p.Payload[:8], uint64(seq))
		binary.BigEndian.PutUint32(p.Payload[8:12], uint32(n))
		return p
	}
	recv.OnPacket(seg(0, 100))
	if recv.Goodput() != 100 {
		t.Fatalf("goodput = %d", recv.Goodput())
	}
	// A gap: 200..300 arrives before 100..200.
	recv.OnPacket(seg(200, 100))
	if recv.Goodput() != 100 {
		t.Fatalf("OOO segment advanced goodput to %d", recv.Goodput())
	}
	total, dup := recv.Acks()
	if total != 2 || dup != 1 {
		t.Fatalf("acks = %d/%d, want 2/1", total, dup)
	}
	// The hole fills: both segments deliver.
	recv.OnPacket(seg(100, 100))
	if recv.Goodput() != 300 {
		t.Fatalf("goodput = %d after fill, want 300", recv.Goodput())
	}
	// Stale duplicate is re-ACKed, not double counted.
	recv.OnPacket(seg(0, 100))
	if recv.Goodput() != 300 {
		t.Fatalf("duplicate advanced goodput to %d", recv.Goodput())
	}
	// Corrupt length field is ignored.
	bad := seg(300, 100)
	binary.BigEndian.PutUint32(bad.Payload[8:12], 999)
	recv.OnPacket(bad)
	if recv.Goodput() != 300 {
		t.Fatal("corrupt segment accepted")
	}
}
