package sim

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/packet"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %d", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	s.At(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run(20)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPastEventClamped(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run(10)
	ran := false
	s.At(3, func() { ran = true }) // in the past: runs "now"
	s.Run(10)
	if !ran {
		t.Fatal("past event never ran")
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := New()
	ran := false
	s.At(100, func() { ran = true })
	s.Run(50)
	if ran {
		t.Fatal("future event ran early")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run(100)
	if !ran {
		t.Fatal("event at boundary did not run")
	}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	s := New()
	var arrivals []Time
	l, err := NewLink(s, "l", LinkConfig{RateBps: 8e6, Delay: Millisecond}, func(p *packet.Packet) {
		arrivals = append(arrivals, s.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 bytes at 8 Mb/s = 1 ms serialization.
	l.Send(packet.NewDataSized(1000))
	l.Send(packet.NewDataSized(1000))
	s.Run(10 * Second)
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	if arrivals[0] != 2*Millisecond {
		t.Fatalf("first arrival at %v, want 2ms", arrivals[0])
	}
	if arrivals[1] != 3*Millisecond {
		t.Fatalf("second arrival at %v, want 3ms (FIFO, back-to-back)", arrivals[1])
	}
}

func TestLinkFIFO(t *testing.T) {
	s := New()
	var ids []uint64
	l, _ := NewLink(s, "l", LinkConfig{RateBps: 1e9, Delay: 10 * Microsecond, Queue: 200}, func(p *packet.Packet) {
		ids = append(ids, p.ID)
	})
	for i := 0; i < 100; i++ {
		p := packet.NewDataSized(1 + i%1400)
		p.ID = uint64(i)
		l.Send(p)
	}
	s.Run(Second)
	if len(ids) != 100 {
		t.Fatalf("delivered %d", len(ids))
	}
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("link reordered: %v", ids[:i+1])
		}
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	s := New()
	n := 0
	l, _ := NewLink(s, "l", LinkConfig{RateBps: 1e3, Queue: 4}, func(p *packet.Packet) { n++ })
	for i := 0; i < 10; i++ {
		l.Send(packet.NewDataSized(100))
	}
	s.Run(100 * Second)
	if st := l.Stats(); st.Dropped != 6 || st.Sent != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if n != 4 {
		t.Fatalf("delivered %d", n)
	}
}

func TestLinkLossProcess(t *testing.T) {
	s := New()
	n := 0
	l, _ := NewLink(s, "l", LinkConfig{RateBps: 1e9, Loss: 0.5, Seed: 1, Queue: 1 << 20}, func(p *packet.Packet) { n++ })
	for i := 0; i < 2000; i++ {
		l.Send(packet.NewDataSized(100))
	}
	s.Run(10 * Second)
	if n < 800 || n > 1200 {
		t.Fatalf("delivered %d of 2000 at 50%% loss", n)
	}
	if st := l.Stats(); st.Lost+int64(n) != 2000 {
		t.Fatalf("lost %d + delivered %d != 2000", st.Lost, n)
	}
}

func TestLinkValidation(t *testing.T) {
	s := New()
	if _, err := NewLink(s, "l", LinkConfig{}, func(*packet.Packet) {}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewLink(s, "l", LinkConfig{RateBps: 1}, nil); err == nil {
		t.Error("nil deliver accepted")
	}
}

func TestHostBatchingAmortizesInterrupts(t *testing.T) {
	s := New()
	delivered := 0
	h, err := NewHost(s, 1, CPUConfig{PerInterrupt: 100 * Microsecond, PerPacket: 10 * Microsecond},
		func(nic int, p *packet.Packet) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	in := h.NICInput(0)
	// A burst of 50 packets while the CPU is busy with the first
	// interrupt: the rest are drained in large batches.
	for i := 0; i < 50; i++ {
		in(packet.NewDataSized(100))
	}
	s.Run(Second)
	st := h.Stats()
	if delivered != 50 || st.Packets != 50 {
		t.Fatalf("delivered %d, stats %+v", delivered, st)
	}
	if st.Interrupts >= 10 {
		t.Fatalf("%d interrupts for a 50-packet burst; batching broken", st.Interrupts)
	}
}

func TestHostTwoNICsMoreInterrupts(t *testing.T) {
	// The same packet stream through one NIC vs spread over two: two
	// NICs take more interrupts (smaller batches), the paper's stated
	// reason striping flattens.
	run := func(nics int) int64 {
		s := New()
		h, _ := NewHost(s, nics, CPUConfig{PerInterrupt: 50 * Microsecond, PerPacket: 5 * Microsecond},
			func(int, *packet.Packet) {})
		// Packets arrive every 20µs, alternating NICs.
		for i := 0; i < 400; i++ {
			i := i
			s.At(Time(i)*20*Microsecond, func() {
				h.arrive(i%nics, packet.NewDataSized(500))
			})
		}
		s.Run(Second)
		return h.Stats().Interrupts
	}
	one := run(1)
	two := run(2)
	if two <= one {
		t.Fatalf("interrupts: 1 NIC %d, 2 NICs %d; expected more with striping", one, two)
	}
}

func TestHostRingOverflow(t *testing.T) {
	s := New()
	h, _ := NewHost(s, 1, CPUConfig{PerInterrupt: Second, PerPacket: 0, Ring: 8},
		func(int, *packet.Packet) {})
	in := h.NICInput(0)
	for i := 0; i < 20; i++ {
		in(packet.NewDataSized(10))
	}
	s.Run(10 * Second)
	// First packet triggers an interrupt that drains a 1-packet batch;
	// during the long service the ring fills to 8; the rest drop.
	if st := h.Stats(); st.RingDrops != 20-1-8 {
		t.Fatalf("ring drops = %d, want %d (stats %+v)", st.RingDrops, 20-1-8, st)
	}
}

func TestHostValidation(t *testing.T) {
	s := New()
	if _, err := NewHost(s, 0, CPUConfig{}, func(int, *packet.Packet) {}); err == nil {
		t.Error("zero NICs accepted")
	}
	if _, err := NewHost(s, 1, CPUConfig{}, nil); err == nil {
		t.Error("nil output accepted")
	}
}

// TestHostCoalescingBatches checks the interrupt-coalescing window: a
// steady 100µs-spaced arrival stream with a 1ms window forms ~10-packet
// batches on one NIC but ~5-packet batches per NIC when split across
// two, roughly doubling the interrupt count — the Figure 15 mechanism.
func TestHostCoalescingBatches(t *testing.T) {
	run := func(nics int) int64 {
		s := New()
		h, _ := NewHost(s, nics, CPUConfig{
			PerInterrupt: 10 * Microsecond,
			PerPacket:    5 * Microsecond,
			Coalesce:     Millisecond,
		}, func(int, *packet.Packet) {})
		for i := 0; i < 1000; i++ {
			i := i
			s.At(Time(i)*100*Microsecond, func() {
				h.arrive(i%nics, packet.NewDataSized(500))
			})
		}
		s.Run(Second)
		return h.Stats().Interrupts
	}
	one := run(1)
	two := run(2)
	if one > 120 {
		t.Fatalf("single NIC took %d interrupts for 1000 packets; coalescing broken", one)
	}
	if float64(two) < 1.6*float64(one) {
		t.Fatalf("interrupts: 1 NIC %d, 2 NICs %d; want ~2x", one, two)
	}
}

// TestHostCoalescingRingFullRaisesEarly checks the latency bound: a
// full ring must not wait for the window.
func TestHostCoalescingRingFullRaisesEarly(t *testing.T) {
	s := New()
	served := 0
	h, _ := NewHost(s, 1, CPUConfig{
		PerInterrupt: Microsecond,
		PerPacket:    Microsecond,
		Ring:         4,
		Coalesce:     Second, // absurdly long window
	}, func(int, *packet.Packet) { served++ })
	in := h.NICInput(0)
	for i := 0; i < 4; i++ {
		in(packet.NewDataSized(10))
	}
	s.Run(10 * Millisecond) // well before the window expires
	if served != 4 {
		t.Fatalf("served %d, want 4 (ring-full must raise the interrupt)", served)
	}
}

// TestLinkJitterPreservesFIFO checks per-packet jitter never reorders
// the link (clamped release times) while still spreading arrivals.
func TestLinkJitterPreservesFIFO(t *testing.T) {
	s := New()
	var ids []uint64
	var times []Time
	l, _ := NewLink(s, "l", LinkConfig{
		RateBps: 1e9,
		Delay:   Millisecond,
		Jitter:  5 * Millisecond,
		Queue:   1000,
		Seed:    3,
	}, func(p *packet.Packet) {
		ids = append(ids, p.ID)
		times = append(times, s.Now())
	})
	for i := 0; i < 500; i++ {
		p := packet.NewDataSized(100)
		p.ID = uint64(i)
		l.Send(p)
	}
	s.Run(10 * Second)
	if len(ids) != 500 {
		t.Fatalf("delivered %d", len(ids))
	}
	varied := false
	for i := 1; i < len(ids); i++ {
		if ids[i] != uint64(i) {
			t.Fatalf("jitter reordered the link at %d", i)
		}
		if times[i] < times[i-1] {
			t.Fatal("delivery times went backwards")
		}
		gap := times[i] - times[i-1]
		if gap > 100*Microsecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter had no visible effect on arrival spacing")
	}
}

// TestLinkBurstLoss checks the Gilbert-Elliott process on simulated
// links: losses cluster and the aggregate rate is near the stationary
// value.
func TestLinkBurstLoss(t *testing.T) {
	s := New()
	delivered := 0
	l, _ := NewLink(s, "l", LinkConfig{
		RateBps: 1e9,
		Queue:   1 << 20,
		Seed:    4,
		Burst: channel.GilbertElliott{
			PGoodToBad: 0.02,
			PBadToGood: 0.25,
			BadLoss:    0.9,
		},
	}, func(p *packet.Packet) { delivered++ })
	const n = 50000
	for i := 0; i < n; i++ {
		l.Send(packet.NewDataSized(100))
	}
	s.Run(100 * Second)
	// Stationary bad probability = 0.02/0.27 ≈ 0.074; loss ≈ 6.7%.
	frac := float64(n-delivered) / n
	if frac < 0.05 || frac > 0.09 {
		t.Fatalf("burst loss fraction %.4f, want ~0.067", frac)
	}
	st := l.Stats()
	if st.Lost+int64(delivered) != n {
		t.Fatalf("lost %d + delivered %d != %d", st.Lost, delivered, n)
	}
}
