package sim

import (
	"encoding/binary"
	"fmt"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/trace"
)

// TCPHeaderLen is the bytes of each segment payload reserved for the
// transport header (sequence number plus padding to a realistic 20
// bytes). The striping layer never looks inside — the sequence number
// lives in the packet payload exactly as a real TCP header would, so
// data packets remain unmodified by striping.
const TCPHeaderLen = 20

// TCPConfig tunes the Reno-style transport.
type TCPConfig struct {
	// MSS is the maximum segment payload including TCPHeaderLen
	// (default 1460).
	MSS int
	// RcvWnd is the receiver window in bytes (default 65536, matching
	// the era's socket buffers and keeping steady-state cwnd below the
	// interface queue capacity).
	RcvWnd int64
	// RTO is the (fixed) retransmission timeout (default 100ms).
	RTO Time
	// AckDelay is the reverse-path latency for ACKs (default 200µs).
	AckDelay Time
	// Sizes generates segment payload sizes (default Constant(MSS)).
	// Sizes below TCPHeaderLen+1 are raised to it; above MSS, clamped.
	Sizes trace.SizeGen
	// InitCwnd is the initial window in segments (default 2).
	InitCwnd int
}

func (c *TCPConfig) fill() {
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.RcvWnd <= 0 {
		c.RcvWnd = 65536
	}
	if c.RTO <= 0 {
		c.RTO = 100 * Millisecond
	}
	if c.AckDelay <= 0 {
		c.AckDelay = 200 * Microsecond
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 2
	}
}

type tcpSeg struct {
	seq int64
	n   int // payload bytes beyond the header
}

// TCPStats summarises a sender's behaviour.
type TCPStats struct {
	SegmentsSent    int64
	Retransmits     int64
	FastRetransmits int64
	Timeouts        int64
	DupAcksSeen     int64
}

// TCPSender is a backlogged Reno-style sender pushing segments into a
// channel.Sender (a bare link, or a striper).
type TCPSender struct {
	sim  *Sim
	path channel.Sender
	cfg  TCPConfig

	sndUna, sndNxt int64
	cwnd, ssthresh float64
	segs           []tcpSeg
	dup            int
	inRec          bool
	recover        int64
	rtoToken       uint64
	peeked         int // size drawn from the generator but not yet sent
	stats          TCPStats
}

// NewTCPSender returns a backlogged sender. Call Start once the
// receiver is wired.
func NewTCPSender(s *Sim, path channel.Sender, cfg TCPConfig) (*TCPSender, error) {
	if path == nil {
		return nil, fmt.Errorf("sim: TCP sender needs a path")
	}
	cfg.fill()
	if cfg.Sizes == nil {
		cfg.Sizes = trace.Constant(cfg.MSS)
	}
	t := &TCPSender{
		sim:      s,
		path:     path,
		cfg:      cfg,
		ssthresh: float64(cfg.RcvWnd),
	}
	t.cwnd = float64(cfg.InitCwnd * cfg.MSS)
	return t, nil
}

// Stats returns a copy of the counters.
func (t *TCPSender) Stats() TCPStats { return t.stats }

// Start begins transmission.
func (t *TCPSender) Start() { t.trySend() }

func (t *TCPSender) window() float64 {
	w := t.cwnd
	if r := float64(t.cfg.RcvWnd); r < w {
		w = r
	}
	return w
}

func (t *TCPSender) nextSize() int {
	n := t.cfg.Sizes.Next()
	if n > t.cfg.MSS {
		n = t.cfg.MSS
	}
	if n <= TCPHeaderLen {
		n = TCPHeaderLen + 1
	}
	return n
}

func (t *TCPSender) trySend() {
	for {
		size := t.nextSizePeek()
		inFlight := float64(t.sndNxt - t.sndUna)
		if inFlight+float64(size) > t.window() {
			return
		}
		t.consumePeek()
		t.emit(t.sndNxt, size-TCPHeaderLen, false)
		t.segs = append(t.segs, tcpSeg{seq: t.sndNxt, n: size - TCPHeaderLen})
		t.sndNxt += int64(size - TCPHeaderLen)
	}
}

// nextSizePeek memoises a size drawn from the generator so a size that
// does not currently fit the window is not discarded.
func (t *TCPSender) nextSizePeek() int {
	if t.peeked == 0 {
		t.peeked = t.nextSize()
	}
	return t.peeked
}

func (t *TCPSender) consumePeek() { t.peeked = 0 }

// emit builds and transmits one segment. retrans marks retransmissions
// for the counters.
func (t *TCPSender) emit(seq int64, n int, retrans bool) {
	p := packet.NewDataSized(TCPHeaderLen + n)
	binary.BigEndian.PutUint64(p.Payload[:8], uint64(seq))
	binary.BigEndian.PutUint32(p.Payload[8:12], uint32(n))
	t.stats.SegmentsSent++
	if retrans {
		t.stats.Retransmits++
	}
	_ = t.path.Send(p)
	t.armRTO()
}

func (t *TCPSender) armRTO() {
	t.rtoToken++
	token := t.rtoToken
	t.sim.After(t.cfg.RTO, func() { t.onRTO(token) })
}

func (t *TCPSender) onRTO(token uint64) {
	if token != t.rtoToken || t.sndUna == t.sndNxt {
		return // stale timer or nothing outstanding
	}
	t.stats.Timeouts++
	flight := float64(t.sndNxt - t.sndUna)
	t.ssthresh = maxf(flight/2, float64(2*t.cfg.MSS))
	t.cwnd = float64(t.cfg.MSS)
	t.dup = 0
	t.inRec = false
	if len(t.segs) > 0 {
		t.emit(t.segs[0].seq, t.segs[0].n, true)
	}
}

// OnAck processes a cumulative acknowledgment.
func (t *TCPSender) OnAck(ack int64) {
	switch {
	case ack > t.sndUna:
		newly := float64(ack - t.sndUna)
		t.sndUna = ack
		for len(t.segs) > 0 && t.segs[0].seq+int64(t.segs[0].n) <= ack {
			t.segs = t.segs[1:]
		}
		t.dup = 0
		t.armRTO()
		if t.inRec {
			if ack >= t.recover {
				t.inRec = false
				t.cwnd = t.ssthresh
			} else if len(t.segs) > 0 {
				// Partial ACK (NewReno): retransmit the next hole and
				// stay in recovery.
				t.emit(t.segs[0].seq, t.segs[0].n, true)
				t.stats.FastRetransmits++
			}
		} else if t.cwnd < t.ssthresh {
			t.cwnd += minf(newly, float64(t.cfg.MSS)) // slow start
		} else {
			t.cwnd += float64(t.cfg.MSS) * float64(t.cfg.MSS) / t.cwnd // congestion avoidance
		}
		t.trySend()
	case ack == t.sndUna && t.sndNxt > t.sndUna:
		t.dup++
		t.stats.DupAcksSeen++
		if t.inRec {
			t.cwnd += float64(t.cfg.MSS) // window inflation
			t.trySend()
		} else if t.dup == 3 {
			flight := float64(t.sndNxt - t.sndUna)
			t.ssthresh = maxf(flight/2, float64(2*t.cfg.MSS))
			if len(t.segs) > 0 {
				t.emit(t.segs[0].seq, t.segs[0].n, true)
				t.stats.FastRetransmits++
			}
			t.cwnd = t.ssthresh + 3*float64(t.cfg.MSS)
			t.inRec = true
			t.recover = t.sndNxt
			t.trySend()
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// TCPReceiver reassembles the byte stream and generates cumulative
// ACKs, with duplicate ACKs for out-of-order arrivals — the signal that
// turns reordering into sender back-off when resequencing is disabled.
type TCPReceiver struct {
	sim     *Sim
	cfg     TCPConfig
	sender  *TCPSender
	rcvNxt  int64
	ooo     map[int64]int
	acks    int64
	dupAcks int64
}

// NewTCPReceiver wires the receive side back to the sender with the
// configured ACK delay.
func NewTCPReceiver(s *Sim, sender *TCPSender, cfg TCPConfig) *TCPReceiver {
	cfg.fill()
	return &TCPReceiver{sim: s, cfg: cfg, sender: sender, ooo: make(map[int64]int)}
}

// Goodput returns the in-order bytes delivered to the application.
func (r *TCPReceiver) Goodput() int64 { return r.rcvNxt }

// Acks returns total and duplicate ACK counts.
func (r *TCPReceiver) Acks() (total, dup int64) { return r.acks, r.dupAcks }

// OnPacket accepts one segment from the (possibly resequencing)
// stripe layer.
func (r *TCPReceiver) OnPacket(p *packet.Packet) {
	if p.Kind != packet.Data || p.Len() < TCPHeaderLen {
		return
	}
	seq := int64(binary.BigEndian.Uint64(p.Payload[:8]))
	n := int(binary.BigEndian.Uint32(p.Payload[8:12]))
	if n != p.Len()-TCPHeaderLen {
		return // corrupt
	}
	switch {
	case seq == r.rcvNxt:
		r.rcvNxt += int64(n)
		for {
			ln, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt += int64(ln)
		}
	case seq > r.rcvNxt:
		if len(r.ooo) < 4096 {
			r.ooo[seq] = n
		}
		r.dupAcks++
	default:
		// Old or duplicate data: ack again.
	}
	r.acks++
	ack := r.rcvNxt
	r.sim.After(r.cfg.AckDelay, func() { r.sender.OnAck(ack) })
}

var _ channel.Sender = (*Link)(nil)
