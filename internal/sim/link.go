package sim

import (
	"fmt"
	"math/rand"

	"stripe/internal/channel"
	"stripe/internal/packet"
)

// LinkConfig describes one simulated link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second (required).
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay Time
	// Jitter adds a uniform per-packet extra delay in [0, Jitter),
	// clamped so FIFO order is preserved — the paper's model allows the
	// skew to "vary on a packet to packet basis".
	Jitter Time
	// Queue is the transmit queue limit in packets (default 64).
	// Drop-tail, like a device driver's interface queue.
	Queue int
	// Loss is the i.i.d. probability a packet is dropped in flight.
	Loss float64
	// Burst layers a Gilbert-Elliott burst-loss process on top of Loss
	// (see channel.GilbertElliott for the parameters).
	Burst channel.GilbertElliott
	// Overhead is per-packet framing bytes added to the serialization
	// time (link headers, preamble).
	Overhead int
	// Seed drives the loss process.
	Seed int64
}

// LinkStats counts link events.
type LinkStats struct {
	Sent      int64 // accepted for transmission
	SentBytes int64
	Dropped   int64 // transmit queue overflow
	Lost      int64 // loss process
	Delivered int64
}

// Link is a unidirectional simulated link. Send implements
// channel.Sender so stripers can drive it directly; delivery is by
// callback at the far end.
type Link struct {
	sim  *Sim
	cfg  LinkConfig
	rng  *rand.Rand
	name string

	busyUntil   Time
	lastArrival Time
	queued      int
	bad         bool // Gilbert-Elliott state
	deliver     func(p *packet.Packet)
	stats       LinkStats
}

// NewLink creates a link feeding the deliver callback.
func NewLink(s *Sim, name string, cfg LinkConfig, deliver func(p *packet.Packet)) (*Link, error) {
	if cfg.RateBps <= 0 {
		return nil, fmt.Errorf("sim: link %q needs a positive rate", name)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if deliver == nil {
		return nil, fmt.Errorf("sim: link %q needs a deliver callback", name)
	}
	return &Link{sim: s, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), name: name, deliver: deliver}, nil
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Stats returns a copy of the counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of packets waiting for or under
// serialization.
func (l *Link) QueueLen() int { return l.queued }

// serTime returns the serialization time for n payload bytes.
func (l *Link) serTime(n int) Time {
	bits := float64(n+l.cfg.Overhead) * 8
	return Time(bits / l.cfg.RateBps * float64(Second))
}

// Send implements channel.Sender. A full transmit queue drops the
// packet silently (drop-tail), which is how striping overload turns
// into TCP loss.
func (l *Link) Send(p *packet.Packet) error {
	if l.queued >= l.cfg.Queue {
		l.stats.Dropped++
		return nil
	}
	l.stats.Sent++
	l.stats.SentBytes += int64(p.Len())
	l.queued++
	now := l.sim.Now()
	if l.busyUntil < now {
		l.busyUntil = now
	}
	l.busyUntil += l.serTime(p.Len())
	txDone := l.busyUntil
	arrival := txDone + l.cfg.Delay
	if l.cfg.Jitter > 0 {
		arrival += Time(l.rng.Int63n(int64(l.cfg.Jitter)))
	}
	if arrival < l.lastArrival {
		arrival = l.lastArrival // FIFO: never overtake
	}
	l.lastArrival = arrival
	lost := l.cfg.Loss > 0 && l.rng.Float64() < l.cfg.Loss
	if !lost && (l.cfg.Burst.PGoodToBad > 0 || l.cfg.Burst.BadLoss > 0 || l.cfg.Burst.GoodLoss > 0) {
		p := l.cfg.Burst.GoodLoss
		if l.bad {
			p = l.cfg.Burst.BadLoss
		}
		lost = p > 0 && l.rng.Float64() < p
		if l.bad {
			if l.rng.Float64() < l.cfg.Burst.PBadToGood {
				l.bad = false
			}
		} else if l.rng.Float64() < l.cfg.Burst.PGoodToBad {
			l.bad = true
		}
	}
	l.sim.At(txDone, func() { l.queued-- })
	if lost {
		l.stats.Lost++
		return nil
	}
	l.sim.At(arrival, func() {
		l.stats.Delivered++
		l.deliver(p)
	})
	return nil
}

// Utilization returns the fraction of the interval [0, now] the link
// spent transmitting (approximated from bytes sent).
func (l *Link) Utilization() float64 {
	now := l.sim.Now()
	if now == 0 {
		return 0
	}
	busy := l.serTime(int(l.stats.SentBytes)) // total bytes, overhead applied once; fine for reporting
	return float64(busy) / float64(now)
}
