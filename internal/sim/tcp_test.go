package sim

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/trace"
)

// directPath builds TCP over a single link with the given rate/loss and
// a near-free CPU, runs for d, and returns goodput in Mb/s.
func directPath(t *testing.T, rate float64, loss float64, d Time) (*Path, float64) {
	t.Helper()
	p, err := BuildTCPPath(PathConfig{
		Links: []LinkConfig{{RateBps: rate, Delay: 500 * Microsecond, Loss: loss, Seed: 42, Queue: 128}},
		CPU:   CPUConfig{PerInterrupt: 1 * Microsecond, PerPacket: 1 * Microsecond},
		TCP:   TCPConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Run(d)
}

// TestTCPSaturatesCleanLink checks the transport reaches near line rate
// on a loss-free link.
func TestTCPSaturatesCleanLink(t *testing.T) {
	_, mbps := directPath(t, 10e6, 0, 3*Second)
	if mbps < 8.5 || mbps > 10.1 {
		t.Fatalf("goodput %.2f Mb/s on a clean 10 Mb/s link", mbps)
	}
}

// TestTCPRecoversFromLoss checks retransmission machinery engages and
// the transfer continues under 2% loss.
func TestTCPRecoversFromLoss(t *testing.T) {
	p, mbps := directPath(t, 10e6, 0.02, 3*Second)
	st := p.Sender.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions under 2% loss")
	}
	if mbps < 2 {
		t.Fatalf("goodput %.2f Mb/s collapsed under 2%% loss", mbps)
	}
	// Goodput counts in-order bytes once: it can never exceed line rate.
	if mbps > 10.1 {
		t.Fatalf("goodput %.2f Mb/s exceeds line rate", mbps)
	}
}

// displacer is a pathological channel that periodically delays one
// packet by several packet times — displacement big enough to cross
// TCP's three-dup-ack threshold, like a slow channel in an
// unresequenced stripe.
type displacer struct {
	sim   *Sim
	inner channel.Sender
	n     int
}

func (w *displacer) Send(p *packet.Packet) error {
	w.n++
	if w.n%8 == 1 {
		w.sim.After(6*Millisecond, func() { _ = w.inner.Send(p) })
		return nil
	}
	return w.inner.Send(p)
}

// TestTCPReorderingPenalty demonstrates the mechanism behind the
// logical-reception advantage in Figure 15: persistent reordering
// triggers duplicate ACKs and spurious fast retransmits, cutting
// goodput well below the clean-path figure.
func TestTCPReorderingPenalty(t *testing.T) {
	build := func(reorder bool) (float64, TCPStats) {
		s := New()
		var recv *TCPReceiver
		host, err := NewHost(s, 1, CPUConfig{PerInterrupt: 1 * Microsecond, PerPacket: 1 * Microsecond},
			func(nic int, pk *packet.Packet) { recv.OnPacket(pk) })
		if err != nil {
			t.Fatal(err)
		}
		link, err := NewLink(s, "l", LinkConfig{RateBps: 10e6, Delay: 500 * Microsecond, Queue: 128}, host.NICInput(0))
		if err != nil {
			t.Fatal(err)
		}
		var path channel.Sender = link
		if reorder {
			path = &displacer{sim: s, inner: link}
		}
		snd, err := NewTCPSender(s, path, TCPConfig{})
		if err != nil {
			t.Fatal(err)
		}
		recv = NewTCPReceiver(s, snd, TCPConfig{})
		snd.Start()
		s.Run(3 * Second)
		return float64(recv.Goodput()) * 8 / 3e6 / 1, snd.Stats()
	}
	clean, _ := build(false)
	shuffled, st := build(true)
	if st.DupAcksSeen == 0 || st.FastRetransmits == 0 {
		t.Fatalf("reordering produced no dup-ack activity: %+v", st)
	}
	if shuffled > clean*0.85 {
		t.Fatalf("reordering penalty too small: %.2f vs %.2f Mb/s", shuffled, clean)
	}
}

// stripedPath builds TCP over two links with the given schedule/mode.
func stripedPath(t *testing.T, rates []float64, quanta []int64, mode core.Mode, d Time) (*Path, float64) {
	t.Helper()
	links := make([]LinkConfig, len(rates))
	for i, r := range rates {
		links[i] = LinkConfig{RateBps: r, Delay: 500 * Microsecond, Queue: 128, Seed: int64(i)}
	}
	p, err := BuildTCPPath(PathConfig{
		Links:          links,
		CPU:            CPUConfig{PerInterrupt: 1 * Microsecond, PerPacket: 1 * Microsecond},
		Sched:          sched.MustSRR(quanta),
		Mode:           mode,
		Markers:        core.MarkerPolicy{Every: 2, Position: 0},
		MarkerInterval: 2 * Millisecond,
		TCP:            TCPConfig{Sizes: trace.NewBimodal(200, 1000, 0.5, 9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Run(d)
}

// TestStripedTCPAggregatesBandwidth is the headline end-to-end check:
// SRR striping with logical reception over 10+10 Mb/s delivers well
// above a single link's rate.
func TestStripedTCPAggregatesBandwidth(t *testing.T) {
	_, mbps := stripedPath(t, []float64{10e6, 10e6}, []int64{1500, 1500}, core.ModeLogical, 3*Second)
	if mbps < 15 {
		t.Fatalf("striped goodput %.2f Mb/s; no aggregation", mbps)
	}
	if mbps > 20.2 {
		t.Fatalf("striped goodput %.2f Mb/s exceeds capacity", mbps)
	}
}

// TestLogicalReceptionBeatsNoReseq verifies the Figure 15 ordering
// between the LR and no-resequencing variants under dissimilar links,
// where skew-induced reordering is persistent.
func TestLogicalReceptionBeatsNoReseq(t *testing.T) {
	quanta, err := sched.QuantaForRates([]float64{10e6, 20e6}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	_, lr := stripedPath(t, []float64{10e6, 20e6}, quanta, core.ModeLogical, 3*Second)
	_, nr := stripedPath(t, []float64{10e6, 20e6}, quanta, core.ModeNone, 3*Second)
	if lr <= nr {
		t.Fatalf("logical reception %.2f Mb/s not above no-reseq %.2f Mb/s", lr, nr)
	}
}

// TestStripedTCPSurvivesLinkLoss checks markers keep logical reception
// alive under loss: without them the receiver would block forever after
// the first lost packet.
func TestStripedTCPSurvivesLinkLoss(t *testing.T) {
	links := []LinkConfig{
		{RateBps: 10e6, Delay: 500 * Microsecond, Queue: 128, Loss: 0.01, Seed: 5},
		{RateBps: 10e6, Delay: 500 * Microsecond, Queue: 128, Loss: 0.01, Seed: 6},
	}
	p, err := BuildTCPPath(PathConfig{
		Links:          links,
		CPU:            CPUConfig{PerInterrupt: 1 * Microsecond, PerPacket: 1 * Microsecond},
		Sched:          sched.MustSRR([]int64{1500, 1500}),
		Mode:           core.ModeLogical,
		Markers:        core.MarkerPolicy{Every: 8, Position: 0},
		MarkerInterval: 2 * Millisecond,
		TCP:            TCPConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	mbps := p.Run(3 * Second)
	if mbps < 3 {
		t.Fatalf("goodput %.2f Mb/s; receiver appears wedged", mbps)
	}
	if p.Reseq.Stats().Resyncs == 0 {
		t.Fatal("no marker resynchronizations under loss")
	}
}

// TestPathValidation covers config errors.
func TestPathValidation(t *testing.T) {
	if _, err := BuildTCPPath(PathConfig{}); err == nil {
		t.Error("no links accepted")
	}
	if _, err := BuildTCPPath(PathConfig{Links: make([]LinkConfig, 2)}); err == nil {
		t.Error("multi-link without scheduler accepted")
	}
	if _, err := BuildTCPPath(PathConfig{
		Links: []LinkConfig{{RateBps: 1e6}},
		Sched: sched.MustSRR([]int64{1, 2}),
	}); err == nil {
		t.Error("scheduler/link mismatch accepted")
	}
	if _, err := NewTCPSender(New(), nil, TCPConfig{}); err == nil {
		t.Error("nil path accepted")
	}
}

// TestSequenceModeStripedTCP runs the "with header" variant under TCP:
// explicit sequence numbers give exact resequencing, so goodput lands
// in the same band as logical reception and far above no-reseq.
func TestSequenceModeStripedTCP(t *testing.T) {
	quanta, err := sched.QuantaForRates([]float64{10e6, 20e6}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	_, seq := stripedPath(t, []float64{10e6, 20e6}, quanta, core.ModeSequence, 3*Second)
	_, lr := stripedPath(t, []float64{10e6, 20e6}, quanta, core.ModeLogical, 3*Second)
	_, nr := stripedPath(t, []float64{10e6, 20e6}, quanta, core.ModeNone, 3*Second)
	if seq < lr*0.85 {
		t.Fatalf("sequence mode %.2f Mb/s far below logical reception %.2f", seq, lr)
	}
	if seq <= nr {
		t.Fatalf("sequence mode %.2f Mb/s not above no-reseq %.2f", seq, nr)
	}
}
