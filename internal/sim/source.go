package sim

import (
	"fmt"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/trace"
)

// Source is an open-loop (UDP-like) packet generator: it pushes packets
// into a channel.Sender on an arrival process, with no feedback. It
// models the datagram applications of Section 6.3.
type Source struct {
	sim      *Sim
	path     channel.Sender
	sizes    trace.SizeGen
	arrivals trace.ArrivalGen
	limit    int64
	sent     int64
	nextID   uint64
	// sendTimes records emission times by ID (the striper re-stamps
	// packet instrumentation, so latency must be joined here).
	sendTimes []int64
}

// NewSource builds a source that emits `limit` packets (0 = unlimited)
// with the given size and arrival processes. Call Start to begin.
func NewSource(s *Sim, path channel.Sender, sizes trace.SizeGen, arrivals trace.ArrivalGen, limit int64) (*Source, error) {
	if path == nil || sizes == nil || arrivals == nil {
		return nil, fmt.Errorf("sim: source needs a path, sizes and arrivals")
	}
	return &Source{sim: s, path: path, sizes: sizes, arrivals: arrivals, limit: limit}, nil
}

// Start schedules the first arrival.
func (src *Source) Start() { src.sim.After(Time(src.arrivals.NextGap()), src.emit) }

// Sent returns the number of packets emitted.
func (src *Source) Sent() int64 { return src.sent }

// SendTime returns when packet id was emitted, in nanoseconds.
func (src *Source) SendTime(id uint64) int64 {
	if id >= uint64(len(src.sendTimes)) {
		return 0
	}
	return src.sendTimes[id]
}

func (src *Source) emit() {
	if src.limit > 0 && src.sent >= src.limit {
		return
	}
	p := packet.NewDataSized(src.sizes.Next())
	p.ID = src.nextID
	src.sendTimes = append(src.sendTimes, int64(src.sim.Now()))
	src.nextID++
	_ = src.path.Send(p)
	src.sent++
	if src.limit == 0 || src.sent < src.limit {
		src.sim.After(Time(src.arrivals.NextGap()), src.emit)
	}
}

// Sink collects delivered packets with their delivery times, for
// latency and ordering analysis.
type Sink struct {
	sim *Sim
	// SendTime, when non-nil, maps a packet ID to its emission time;
	// wire it to Source.SendTime for end-to-end latency.
	SendTime func(id uint64) int64
	// IDs is the delivery order (ingress IDs).
	IDs []uint64
	// LatencyNs holds per-packet end-to-end latency in nanoseconds,
	// aligned with IDs (zero without a SendTime source).
	LatencyNs []int64
	// Bytes is the cumulative delivered payload.
	Bytes int64
}

// NewSink returns an empty collector.
func NewSink(s *Sim) *Sink { return &Sink{sim: s} }

// Deliver records one packet; use it as the terminal OnPacket/out hook.
func (k *Sink) Deliver(p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	k.IDs = append(k.IDs, p.ID)
	var lat int64
	if k.SendTime != nil {
		lat = int64(k.sim.Now()) - k.SendTime(p.ID)
	}
	k.LatencyNs = append(k.LatencyNs, lat)
	k.Bytes += int64(p.Len())
}

// MaxLatency returns the largest observed latency in nanoseconds.
func (k *Sink) MaxLatency() int64 {
	var m int64
	for _, l := range k.LatencyNs {
		if l > m {
			m = l
		}
	}
	return m
}

// MeanLatency returns the average latency in nanoseconds.
func (k *Sink) MeanLatency() float64 {
	if len(k.LatencyNs) == 0 {
		return 0
	}
	var sum int64
	for _, l := range k.LatencyNs {
		sum += l
	}
	return float64(sum) / float64(len(k.LatencyNs))
}
