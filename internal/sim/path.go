package sim

import (
	"fmt"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// PathConfig assembles one end-to-end TCP-over-striping experiment: a
// backlogged TCP sender, an optional striping layer, simulated links,
// the receiving host's CPU/interrupt model, an optional resequencing
// layer, and the TCP receiver.
type PathConfig struct {
	// Links describes the member links (one = no striping).
	Links []LinkConfig
	// CPU is the receiving host model.
	CPU CPUConfig
	// Sched, when non-nil, stripes across the links with this automaton.
	// It must have exactly len(Links) channels. Nil requires a single
	// link and bypasses the striping layer entirely.
	Sched sched.RoundBased
	// Mode is the receive discipline when striping: ModeLogical,
	// ModeNone, or ModeSequence (which also stamps sequence numbers on
	// the sender — the "with header" variant).
	Mode core.Mode
	// Markers is the sender marker policy when striping.
	Markers core.MarkerPolicy
	// MarkerInterval, when positive, additionally cuts a marker batch on
	// a timer, the way a kernel implementation would, so a stalled
	// (window-limited) sender still resynchronizes the receiver after
	// loss.
	MarkerInterval Time
	// TCP tunes the transport.
	TCP TCPConfig
}

// Path is an assembled experiment.
type Path struct {
	Sim      *Sim
	Sender   *TCPSender
	Receiver *TCPReceiver
	Links    []*Link
	Host     *Host
	Reseq    *core.Resequencer
	Striper  *core.Striper
}

// BuildTCPPath wires the components of cfg together.
func BuildTCPPath(cfg PathConfig) (*Path, error) {
	if len(cfg.Links) == 0 {
		return nil, fmt.Errorf("sim: path needs links")
	}
	if cfg.Sched == nil && len(cfg.Links) != 1 {
		return nil, fmt.Errorf("sim: multiple links need a striping scheduler")
	}
	if cfg.Sched != nil && cfg.Sched.N() != len(cfg.Links) {
		return nil, fmt.Errorf("sim: scheduler has %d channels for %d links", cfg.Sched.N(), len(cfg.Links))
	}
	s := New()
	p := &Path{Sim: s}

	// The receive chain is built back to front: TCP receiver <- stripe
	// layer <- host CPU <- links.
	var reseq *core.Resequencer
	if cfg.Sched != nil {
		var err error
		rcfg := core.ResequencerConfig{Mode: cfg.Mode, N: len(cfg.Links)}
		if cfg.Mode == core.ModeLogical {
			rcfg.Sched = cloneSched(cfg.Sched)
		}
		reseq, err = core.NewResequencer(rcfg)
		if err != nil {
			return nil, err
		}
	}
	p.Reseq = reseq

	host, err := NewHost(s, len(cfg.Links), cfg.CPU, func(nic int, pk *packet.Packet) {
		if reseq == nil {
			p.Receiver.OnPacket(pk)
			return
		}
		reseq.Arrive(nic, pk)
		for {
			out, ok := reseq.Next()
			if !ok {
				return
			}
			p.Receiver.OnPacket(out)
		}
	})
	if err != nil {
		return nil, err
	}
	p.Host = host

	p.Links = make([]*Link, len(cfg.Links))
	senders := make([]channel.Sender, len(cfg.Links))
	for i, lc := range cfg.Links {
		l, err := NewLink(s, fmt.Sprintf("link%d", i), lc, host.NICInput(i))
		if err != nil {
			return nil, err
		}
		p.Links[i] = l
		senders[i] = l
	}

	var path channel.Sender = p.Links[0]
	if cfg.Sched != nil {
		striper, err := core.NewStriper(core.StriperConfig{
			Sched:    cfg.Sched,
			Channels: senders,
			Markers:  cfg.Markers,
			AddSeq:   cfg.Mode == core.ModeSequence,
		})
		if err != nil {
			return nil, err
		}
		p.Striper = striper
		path = striper
		if cfg.MarkerInterval > 0 {
			interval := cfg.MarkerInterval
			var tick func()
			tick = func() {
				striper.EmitMarkers()
				s.After(interval, tick)
			}
			s.After(interval, tick)
		}
	}

	sender, err := NewTCPSender(s, path, cfg.TCP)
	if err != nil {
		return nil, err
	}
	p.Sender = sender
	p.Receiver = NewTCPReceiver(s, sender, cfg.TCP)
	return p, nil
}

// cloneSched builds a fresh automaton with the same parameters in the
// start state, for the receiver's simulation.
func cloneSched(s sched.RoundBased) sched.RoundBased {
	if srr, ok := s.(*sched.SRR); ok {
		c := srr.Clone()
		c.Reset()
		return c
	}
	// RoundBased implementations in this repository are all *sched.SRR;
	// fall back to sharing (incorrect only for exotic custom automata).
	return s
}

// Run starts the transfer and advances the simulation for d simulated
// time, returning application goodput in Mb/s.
func (p *Path) Run(d Time) float64 {
	p.Sender.Start()
	p.Sim.Run(p.Sim.Now() + d)
	return float64(p.Receiver.Goodput()) * 8 / d.Seconds() / 1e6
}
