package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared static-analysis substrate the concurrency
// passes (lockorder, goroleak) and their engine tests build on:
//
//   - CallGraph: the module's synchronous static call graph. Edges are
//     resolved exactly like the hot-path traversal resolves callees —
//     static in-module calls only; interface methods, func values and
//     out-of-module callees are graph exits. `go` statements are
//     deliberately NOT edges: a goroutine start is asynchronous control
//     flow, modeled by the goroleak pass instead.
//   - LockInfo: the module's lock universe (every sync.Mutex/RWMutex
//     field or package-level var, with stable display names), the
//     sync.Cond -> guarded-mutex association, and per-function lock
//     summaries (which locks a function acquires, directly or through
//     any chain of static calls, and whether it can block) merged to a
//     fixed point across package boundaries.
//   - Graph: a tiny string-keyed digraph with cycle detection, used for
//     the lock-acquisition order graph.

// CallSite is one static call edge.
type CallSite struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
}

// CallGraph is the synchronous static call graph over the module,
// seeded from a package set and closed over everything reachable
// through static in-module calls (like the hot-path traversal).
type CallGraph struct {
	prog *Program
	// Outs maps a function to its static call sites, in source order.
	Outs map[*types.Func][]CallSite
}

// NewCallGraph builds the call graph seeded from every function
// declared in pkgs, following static in-module calls transitively so
// cross-package chains (session -> core -> obs) are complete even when
// pkgs is a subset of the module.
func NewCallGraph(prog *Program, pkgs []*Package) *CallGraph {
	g := &CallGraph{prog: prog, Outs: make(map[*types.Func][]CallSite)}
	var queue []*types.Func
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					queue = append(queue, fn)
				}
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if _, done := g.Outs[fn]; done {
			continue
		}
		g.Outs[fn] = nil // visited marker, even for leaf functions
		d := prog.declOf(fn)
		if d == nil || d.decl.Body == nil {
			continue
		}
		var sites []CallSite
		inspectSync(d.decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeOf(d.pkg.Info, call)
			if callee == nil || prog.declOf(callee) == nil {
				return // dynamic, builtin, or out-of-module
			}
			sites = append(sites, CallSite{Caller: fn, Callee: callee, Pos: call.Pos()})
			queue = append(queue, callee)
		})
		g.Outs[fn] = sites
		// Functions referenced only from goroutine bodies (`go f()`, or
		// calls inside `go func(){...}`) get nodes and summaries of
		// their own, without a synchronous edge from the spawner — the
		// goroleak pass walks into them from the go statement.
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeOf(d.pkg.Info, call); callee != nil && prog.declOf(callee) != nil {
					if _, done := g.Outs[callee]; !done {
						queue = append(queue, callee)
					}
				}
			}
			return true
		})
	}
	return g
}

// Reachable returns the set of functions reachable from the roots
// through static calls, including the roots themselves.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		for _, site := range g.Outs[fn] {
			visit(site.Callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// inspectSync walks a body the way synchronous control flow runs it:
// function literals are entered (they may run inline via defer, Do,
// or a direct call), but the bodies of `go` statements are not — work
// started there executes on another goroutine and must not contribute
// to the spawner's summary.
func inspectSync(body ast.Node, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			// The call's arguments are evaluated synchronously; the
			// invoked body is not.
			for _, a := range g.Call.Args {
				inspectSync(a, f)
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				_ = lit // skipped: runs on the new goroutine
			} else {
				inspectSync(g.Call.Fun, f)
			}
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// --- Lock universe and summaries ----------------------------------------

// BlockKind classifies a blocking operation found in a function body.
type BlockKind int

const (
	BlockCondWait BlockKind = iota // sync.Cond.Wait
	BlockCondWake                  // sync.Cond.Broadcast / Signal
	BlockChanSend                  // blocking channel send
	BlockChanRecv                  // blocking channel receive / range
	BlockSelect                    // select without a default case
	BlockNetIO                     // call into package net (conn I/O, dial, accept)
	BlockCall                      // call to a function that blocks transitively
)

func (k BlockKind) String() string {
	switch k {
	case BlockCondWait:
		return "Cond.Wait"
	case BlockCondWake:
		return "Cond.Broadcast/Signal"
	case BlockChanSend:
		return "channel send"
	case BlockChanRecv:
		return "channel receive"
	case BlockSelect:
		return "blocking select"
	case BlockNetIO:
		return "net I/O"
	case BlockCall:
		return "blocking call"
	}
	return "blocking op"
}

// BlockOp is one potentially blocking operation in a function body.
type BlockOp struct {
	Kind BlockKind
	Pos  token.Pos
	// Cond is the sync.Cond variable for BlockCondWait/BlockCondWake.
	Cond *types.Var
	// Via names the callee chain for BlockCall diagnostics.
	Via string
}

// LockSummary is the merged, transitive view of one function: every
// lock it can acquire through any chain of static calls, and whether
// (and where) it can block.
type LockSummary struct {
	Fn *types.Func
	// Acquires maps each lock the function may take (transitively) to
	// the position of one acquisition site and the call chain reaching
	// it ("" when acquired directly).
	Acquires map[*types.Var]LockAcq
	// Blocks is non-nil when the function can block (transitively); it
	// describes one witness operation.
	Blocks *BlockOp
}

// LockAcq is one witnessed lock acquisition in a summary.
type LockAcq struct {
	Pos token.Pos
	Via string // call chain from the summarized function; "" = direct
}

// LockInfo is the module's lock universe plus per-function summaries.
type LockInfo struct {
	prog  *Program
	graph *CallGraph
	// names maps every known mutex object (struct field or package
	// var of type sync.Mutex / sync.RWMutex) to its display name.
	names map[*types.Var]string
	// CondLock maps a sync.Cond field/var to the mutex it guards,
	// resolved from sync.NewCond(&x) initialization sites.
	CondLock map[*types.Var]*types.Var
	// summaries holds the post-fixed-point function summaries.
	summaries map[*types.Func]*LockSummary
}

// ComputeLockInfo builds the lock universe and function summaries for
// everything reachable from pkgs. The fixed point merges summaries
// across package boundaries: a root-package function calling into
// internal/obs inherits the obs locks it can reach.
func ComputeLockInfo(prog *Program, g *CallGraph) *LockInfo {
	li := &LockInfo{
		prog:      prog,
		graph:     g,
		names:     make(map[*types.Var]string),
		CondLock:  make(map[*types.Var]*types.Var),
		summaries: make(map[*types.Func]*LockSummary),
	}
	// The lock universe and cond associations come from the whole
	// program, so summaries agree no matter which subset a pass scopes.
	for _, pkg := range prog.Pkgs {
		li.scanTypes(pkg)
	}
	for _, pkg := range prog.Pkgs {
		li.scanConds(pkg)
	}
	li.computeSummaries()
	return li
}

// LockName renders a lock variable for diagnostics: Owner.field for
// struct fields, pkg.var for package-level mutexes, the bare name
// otherwise.
func (li *LockInfo) LockName(v *types.Var) string {
	if v == nil {
		return "<unknown>"
	}
	if n, ok := li.names[v]; ok {
		return n
	}
	return v.Name()
}

// Summary returns the transitive lock summary for fn (nil when fn was
// not reached by the call graph).
func (li *LockInfo) Summary(fn *types.Func) *LockSummary { return li.summaries[fn] }

// scanTypes names every mutex-typed struct field and package-level var.
func (li *LockInfo) scanTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		switch obj := obj.(type) {
		case *types.TypeName:
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isMutexType(f.Type()) {
					li.names[f] = obj.Name() + "." + f.Name()
				}
			}
		case *types.Var:
			if isMutexType(obj.Type()) {
				li.names[obj] = pkg.Types.Name() + "." + obj.Name()
			}
		}
	}
}

// scanConds resolves sync.NewCond(&x) sites to (cond object, lock
// object) pairs by looking at the assignment the call feeds.
func (li *LockInfo) scanConds(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				callee := calleeOf(pkg.Info, call)
				if callee == nil || callee.Name() != "NewCond" || pkgPathOf(callee) != "sync" {
					continue
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				lock := varOfExpr(pkg.Info, un.X)
				cond := varOfExpr(pkg.Info, as.Lhs[i])
				if lock != nil && cond != nil {
					li.CondLock[cond] = lock
				}
			}
			return true
		})
	}
}

// computeSummaries walks every call-graph function once for its direct
// facts, then iterates summary merging to a fixed point over the call
// edges (cross-package chains converge because acquisitions only grow).
func (li *LockInfo) computeSummaries() {
	type direct struct {
		acquires map[*types.Var]token.Pos
		block    *BlockOp
	}
	directs := make(map[*types.Func]*direct)
	for fn := range li.graph.Outs {
		d := li.prog.declOf(fn)
		facts := &direct{acquires: make(map[*types.Var]token.Pos)}
		directs[fn] = facts
		if d == nil || d.decl.Body == nil {
			continue
		}
		comms := selectCommOps(d.decl.Body)
		inspectSync(d.decl.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				op, lock := li.classifyCall(d.pkg.Info, n)
				switch op {
				case "lock":
					if lock != nil {
						if _, ok := facts.acquires[lock]; !ok {
							facts.acquires[lock] = n.Pos()
						}
					}
				case "wait":
					if facts.block == nil {
						facts.block = &BlockOp{Kind: BlockCondWait, Pos: n.Pos(), Cond: lock}
					}
				case "netio":
					if facts.block == nil {
						facts.block = &BlockOp{Kind: BlockNetIO, Pos: n.Pos()}
					}
				}
			case *ast.SendStmt:
				if !comms[n] && facts.block == nil {
					facts.block = &BlockOp{Kind: BlockChanSend, Pos: n.Pos()}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !comms[n] && facts.block == nil {
					facts.block = &BlockOp{Kind: BlockChanRecv, Pos: n.Pos()}
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) && facts.block == nil {
					facts.block = &BlockOp{Kind: BlockSelect, Pos: n.Pos()}
				}
			case *ast.RangeStmt:
				if n.X != nil && facts.block == nil {
					if t := d.pkg.Info.Types[n.X].Type; t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							facts.block = &BlockOp{Kind: BlockChanRecv, Pos: n.Pos()}
						}
					}
				}
			}
		})
	}

	for fn, facts := range directs {
		s := &LockSummary{Fn: fn, Acquires: make(map[*types.Var]LockAcq)}
		for v, pos := range facts.acquires {
			s.Acquires[v] = LockAcq{Pos: pos}
		}
		if facts.block != nil {
			b := *facts.block
			s.Blocks = &b
		}
		li.summaries[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, sites := range li.graph.Outs {
			s := li.summaries[fn]
			for _, site := range sites {
				cs := li.summaries[site.Callee]
				if cs == nil {
					continue
				}
				for v, acq := range cs.Acquires {
					if _, ok := s.Acquires[v]; !ok {
						via := funcName(site.Callee)
						if acq.Via != "" {
							via += " -> " + acq.Via
						}
						s.Acquires[v] = LockAcq{Pos: site.Pos, Via: via}
						changed = true
					}
				}
				if s.Blocks == nil && cs.Blocks != nil {
					via := funcName(site.Callee)
					if cs.Blocks.Via != "" {
						via += " -> " + cs.Blocks.Via
					}
					s.Blocks = &BlockOp{Kind: BlockCall, Pos: site.Pos, Via: via}
					changed = true
				}
			}
		}
	}
}

// classifyCall recognizes the sync/net calls the lock analysis models:
// returns ("lock"|"unlock"|"wait"|"wake"|"netio"|"", lock-or-cond var).
func (li *LockInfo) classifyCall(info *types.Info, call *ast.CallExpr) (string, *types.Var) {
	callee := calleeOf(info, call)
	if callee == nil {
		return "", nil
	}
	switch pkgPathOf(callee) {
	case "sync":
		recv := receiverNamed(callee)
		if recv == nil {
			return "", nil
		}
		switch recv.Obj().Name() {
		case "Mutex", "RWMutex":
			target := lockTargetVar(info, call)
			switch callee.Name() {
			case "Lock", "RLock":
				return "lock", target
			case "Unlock", "RUnlock":
				return "unlock", target
			}
		case "Cond":
			target := lockTargetVar(info, call)
			switch callee.Name() {
			case "Wait":
				return "wait", target
			case "Broadcast", "Signal":
				return "wake", target
			}
		}
	case "net":
		return "netio", nil
	}
	return "", nil
}

// lockTargetVar resolves the receiver of x.mu.Lock() (or promoted
// s.Lock() through an embedded mutex) to the mutex/cond variable.
func lockTargetVar(info *types.Info, call *ast.CallExpr) *types.Var {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel, ok := info.Selections[fun]; ok {
		// A promoted method (embedded sync.Mutex) reaches the mutex
		// field through the selection's index path.
		if idx := sel.Index(); len(idx) > 1 {
			if f := fieldByIndex(sel.Recv(), idx[:len(idx)-1]); f != nil && isMutexOrCond(f.Type()) {
				return f
			}
		}
	}
	return varOfExpr(info, fun.X)
}

// varOfExpr resolves an expression denoting a variable (identifier or
// field selection, through parens and a leading &/*) to its object.
func varOfExpr(info *types.Info, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = info.Defs[e].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return varOfExpr(info, e.X)
		}
	case *ast.StarExpr:
		return varOfExpr(info, e.X)
	}
	return nil
}

// fieldByIndex follows a field index path from a (possibly pointer)
// struct type, as types.Selection.Index defines it.
func fieldByIndex(t types.Type, index []int) *types.Var {
	var f *types.Var
	for _, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return nil
		}
		f = st.Field(i)
		t = f.Type()
	}
	return f
}

func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isMutexOrCond(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if isMutexType(t) {
		return true
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Cond"
}

// --- Order graph --------------------------------------------------------

// GraphEdge is one lock-order edge with a witness position.
type GraphEdge struct {
	From, To string
	Pos      token.Pos
	Why      string // human-readable witness ("Session.mu held at ... acquiring ...")
}

// Graph is a small string-keyed digraph with deterministic cycle
// detection, used for the lock-acquisition order.
type Graph struct {
	edges map[string]map[string]GraphEdge
}

// NewGraph returns an empty digraph.
func NewGraph() *Graph { return &Graph{edges: make(map[string]map[string]GraphEdge)} }

// AddEdge records from -> to, keeping the first witness.
func (g *Graph) AddEdge(e GraphEdge) {
	m := g.edges[e.From]
	if m == nil {
		m = make(map[string]GraphEdge)
		g.edges[e.From] = m
	}
	if _, ok := m[e.To]; !ok {
		m[e.To] = e
	}
}

// Edge returns the recorded witness for from -> to.
func (g *Graph) Edge(from, to string) (GraphEdge, bool) {
	e, ok := g.edges[from][to]
	return e, ok
}

// Cycles returns every elementary cycle's node sequence, canonicalized
// (rotated to start at the lexically smallest node) and deduplicated,
// in deterministic order. Self-loops ("A -> A") are length-1 cycles.
func (g *Graph) Cycles() [][]string {
	nodes := make([]string, 0, len(g.edges))
	for n := range g.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	seen := make(map[string]bool)
	var out [][]string
	var stack []string
	onStack := make(map[string]int)
	var dfs func(n string)
	dfs = func(n string) {
		if depth, ok := onStack[n]; ok {
			cyc := append([]string(nil), stack[depth:]...)
			key := strings.Join(canonicalCycle(cyc), "\x00")
			if !seen[key] {
				seen[key] = true
				out = append(out, canonicalCycle(cyc))
			}
			return
		}
		onStack[n] = len(stack)
		stack = append(stack, n)
		tos := make([]string, 0, len(g.edges[n]))
		for to := range g.edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			dfs(to)
		}
		delete(onStack, n)
		stack = stack[:len(stack)-1]
	}
	for _, n := range nodes {
		dfs(n)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// canonicalCycle rotates a cycle to start at its smallest node.
func canonicalCycle(c []string) []string {
	if len(c) == 0 {
		return c
	}
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	out := make([]string, 0, len(c))
	out = append(out, c[min:]...)
	out = append(out, c[:min]...)
	return out
}

// CycleString renders a cycle for diagnostics: "A -> B -> A".
func CycleString(c []string) string {
	return fmt.Sprintf("%s -> %s", strings.Join(c, " -> "), c[0])
}
