package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak ties every goroutine to a tracked shutdown path. A `go`
// statement in the protocol packages must start work that can be told
// to stop from Close/Stop — otherwise the many-session roadmap turns
// each session teardown into a slow goroutine leak. A goroutine counts
// as tracked when its static reach (the spawned body plus everything
// reachable through static in-module calls) contains any of:
//
//   - a receive, select, or range over a channel that some function in
//     the module closes (the captured done/closed channel idiom);
//   - a close of a channel that some function in the module receives
//     from (the completion-signal idiom: the goroutine announces its
//     own exit and Close waits for it);
//   - a (*sync.WaitGroup).Done call (the spawner waits);
//   - a receive from a context.Context's Done channel.
//
// Goroutines that terminate by construction (bounded demo senders,
// accept helpers unblocked by closing the listener) carry
// `//stripe:allowleak <reason>` — on the go statement's line, the line
// above it, or the enclosing function's doc comment. The reason is
// mandatory; a goroutine whose target is dynamic (a func value) cannot
// be analyzed and needs the annotation too.
const goroLeakName = "goroleak"

var GoroLeak = &Pass{
	Name: goroLeakName,
	Doc:  "every goroutine is tied to a tracked shutdown path (done channel, WaitGroup, or context) or annotated",
	InScope: func(pkgPath string) bool {
		if !strings.Contains(pkgPath, "/") {
			return true // module root package
		}
		return strings.Contains(pkgPath, "/internal/") ||
			(strings.Contains(pkgPath, "/cmd/") && !strings.Contains(pkgPath, "/examples/"))
	},
	Run: runGoroLeak,
}

func runGoroLeak(prog *Program, pkgs []*Package) []Diagnostic {
	var ds []Diagnostic
	report := func(rule string, pos token.Pos, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Pass: goroLeakName,
			Rule: rule,
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	g := NewCallGraph(prog, pkgs)
	closed, received := chanLifecycle(prog)

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			leakLines := allowleakLines(prog, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ann := annotationsOf(fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					w := goWaiver(prog, gs, fd, ann, leakLines)
					if w == waiverBare {
						report("annotation", gs.Pos(), "%s: //stripe:allowleak needs a reason", fd.Name.Name)
						return true
					}
					if w == waiverOK {
						return true
					}
					checkGoStmt(prog, g, pkg, fd, gs, closed, received, report)
					return true
				})
			}
		}
	}
	return ds
}

type waiver int

const (
	waiverNone waiver = iota
	waiverOK
	waiverBare // annotation present but reasonless
)

// goWaiver resolves the //stripe:allowleak waiver for one go statement:
// the enclosing function's doc annotation, or a line comment on the
// statement's line or the line above it.
func goWaiver(prog *Program, gs *ast.GoStmt, fd *ast.FuncDecl, ann annotations, leakLines map[int]string) waiver {
	if ann.allowleak {
		if ann.leakWhy == "" {
			return waiverBare
		}
		return waiverOK
	}
	line := prog.Fset.Position(gs.Pos()).Line
	for _, l := range []int{line, line - 1} {
		if why, ok := leakLines[l]; ok {
			if why == "" {
				return waiverBare
			}
			return waiverOK
		}
	}
	return waiverNone
}

// allowleakLines maps comment lines carrying //stripe:allowleak to
// their reason.
func allowleakLines(prog *Program, file *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text == directiveAllowLeak || strings.HasPrefix(text, directiveAllowLeak+" ") {
				line := prog.Fset.Position(c.Pos()).Line
				out[line] = strings.TrimSpace(strings.TrimPrefix(text, directiveAllowLeak))
			}
		}
	}
	return out
}

// chanSignals is what one body contributes toward shutdown tracking.
type chanSignals struct {
	recvs   map[*types.Var]bool // channels received/selected/ranged from
	closes  map[*types.Var]bool // channels closed
	ctxDone bool                // receives from a context.Context.Done()
	wgDone  bool                // calls (*sync.WaitGroup).Done
}

// scanSignals collects shutdown signals from a body, not descending
// into nested `go` statements (their goroutines are judged separately).
func scanSignals(info *types.Info, body ast.Node, s *chanSignals) {
	recvExpr := func(e ast.Expr) {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			if callee := calleeOf(info, call); callee != nil &&
				callee.Name() == "Done" && pkgPathOf(callee) == "context" {
				s.ctxDone = true
			}
			return
		}
		if v := varOfExpr(info, e); v != nil {
			s.recvs[v] = true
		}
	}
	inspectSync(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				recvExpr(n.X)
			}
		case *ast.RangeStmt:
			if n.X != nil {
				if t := info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						recvExpr(n.X)
					}
				}
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "close") && len(n.Args) == 1 {
				if v := varOfExpr(info, n.Args[0]); v != nil {
					s.closes[v] = true
				}
				return
			}
			callee := calleeOf(info, n)
			if callee != nil && callee.Name() == "Done" && pkgPathOf(callee) == "sync" {
				if recv := receiverNamed(callee); recv != nil && recv.Obj().Name() == "WaitGroup" {
					s.wgDone = true
				}
			}
		}
	})
}

// chanLifecycle scans the whole program for channel close and receive
// sites (types.Var identity holds program-wide, so a field closed in
// Close matches a receive in a goroutine of another package).
func chanLifecycle(prog *Program) (closed, received map[*types.Var]bool) {
	closed = make(map[*types.Var]bool)
	received = make(map[*types.Var]bool)
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isBuiltin(info, n, "close") && len(n.Args) == 1 {
						if v := varOfExpr(info, n.Args[0]); v != nil {
							closed[v] = true
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if v := varOfExpr(info, n.X); v != nil {
							received[v] = true
						}
					}
				case *ast.RangeStmt:
					if n.X != nil {
						if t := info.Types[n.X].Type; t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								if v := varOfExpr(info, n.X); v != nil {
									received[v] = true
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	return closed, received
}

// checkGoStmt judges one unwaived go statement.
func checkGoStmt(prog *Program, g *CallGraph, pkg *Package, fd *ast.FuncDecl, gs *ast.GoStmt,
	closed, received map[*types.Var]bool, report func(string, token.Pos, string, ...any)) {
	sig := &chanSignals{recvs: make(map[*types.Var]bool), closes: make(map[*types.Var]bool)}
	var roots []*types.Func

	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		scanSignals(pkg.Info, lit.Body, sig)
		// Static callees inside the literal extend the reach.
		inspectSync(lit.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeOf(pkg.Info, call); callee != nil && prog.declOf(callee) != nil {
					roots = append(roots, callee)
				}
			}
		})
	} else if callee := calleeOf(pkg.Info, gs.Call); callee != nil && prog.declOf(callee) != nil {
		roots = append(roots, callee)
	} else {
		report("untracked", gs.Pos(),
			"%s: goroutine target is dynamic (func value); its shutdown cannot be verified — bind it statically or annotate //stripe:allowleak <reason>",
			fd.Name.Name)
		return
	}

	for fn := range g.Reachable(roots...) {
		if d := prog.declOf(fn); d != nil && d.decl.Body != nil {
			scanSignals(d.pkg.Info, d.decl.Body, sig)
		}
	}

	if sig.ctxDone || sig.wgDone {
		return
	}
	for v := range sig.recvs {
		if closed[v] {
			return // waits on a channel somebody closes
		}
	}
	for v := range sig.closes {
		if received[v] {
			return // announces completion to somebody who waits
		}
	}
	report("untracked", gs.Pos(),
		"%s: goroutine has no tracked shutdown path (no closed done channel, WaitGroup.Done, or context cancellation in its static reach); tie it to Close/Stop or annotate //stripe:allowleak <reason>",
		fd.Name.Name)
}
