package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation directives. They ride in function doc comments:
//
//	//stripe:hotpath
//	    The function is a protocol hot path: it and everything it
//	    (statically, in-module) calls must not allocate, lock, call
//	    fmt/log/reflect, or block on channels.
//
//	//stripe:allowescape <reason>
//	    The function is exempt from hot-path traversal even when
//	    reached from a hot root — for amortized or cold sub-paths
//	    (marker batches, reset handling, error construction, sampled
//	    retention). The reason is mandatory: an escape hatch without a
//	    justification is itself a finding.
//	//stripe:locks <name><name2[<name3...]
//	    Declares the global lock-acquisition order for the named locks
//	    (rendered as Owner.field for struct mutexes, pkg.var for
//	    package-level ones). May appear in any comment in a scoped
//	    package; the lockorder pass flags discovered acquisitions that
//	    contradict a declared order.
//
//	//stripe:allowblock <reason>
//	    The function is exempt from the lockorder blocking rules
//	    (channel ops, net I/O, Cond.Wait under foreign locks) — for
//	    code that blocks under lock by design. The reason is mandatory.
//
//	//stripe:allowleak <reason>
//	    The `go` statement (same or previous line, or the enclosing
//	    function's doc comment) is exempt from the goroleak tracked-
//	    shutdown rule — for goroutines whose termination is bounded by
//	    construction rather than by a done channel / WaitGroup /
//	    context. The reason is mandatory.
const (
	directiveHotPath     = "//stripe:hotpath"
	directiveAllowEscape = "//stripe:allowescape"
	directiveLocks       = "//stripe:locks"
	directiveAllowBlock  = "//stripe:allowblock"
	directiveAllowLeak   = "//stripe:allowleak"
)

type annotations struct {
	hotpath     bool
	allowescape bool
	escapeWhy   string
	allowblock  bool
	blockWhy    string
	allowleak   bool
	leakWhy     string
}

// annotationsOf parses the stripe directives from a function's doc
// comment. Directives must start the comment line (the go directive
// convention: no space after //).
func annotationsOf(fd *ast.FuncDecl) annotations {
	var a annotations
	if fd == nil || fd.Doc == nil {
		return a
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case text == directiveHotPath:
			a.hotpath = true
		case text == directiveAllowEscape || strings.HasPrefix(text, directiveAllowEscape+" "):
			a.allowescape = true
			a.escapeWhy = strings.TrimSpace(strings.TrimPrefix(text, directiveAllowEscape))
		case text == directiveAllowBlock || strings.HasPrefix(text, directiveAllowBlock+" "):
			a.allowblock = true
			a.blockWhy = strings.TrimSpace(strings.TrimPrefix(text, directiveAllowBlock))
		case text == directiveAllowLeak || strings.HasPrefix(text, directiveAllowLeak+" "):
			a.allowleak = true
			a.leakWhy = strings.TrimSpace(strings.TrimPrefix(text, directiveAllowLeak))
		}
	}
	return a
}

// hotFunc is one member of the transitive hot set.
type hotFunc struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	chain string // call chain from its //stripe:hotpath root, for messages
}

// hotSet computes the transitive hot set: every function annotated
// //stripe:hotpath in the given packages, plus everything reachable
// from them through static in-module calls, stopping at
// //stripe:allowescape functions and at dynamic (interface or func
// value) call sites. The returned escape set holds the allowescape
// frontier that was reached, so passes can validate the hatches too.
func hotSet(prog *Program, pkgs []*Package) (hot map[*types.Func]*hotFunc, escapes []*hotFunc) {
	hot = make(map[*types.Func]*hotFunc)
	var queue []*hotFunc
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !annotationsOf(fd).hotpath {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || hot[obj] != nil {
					continue
				}
				hf := &hotFunc{fn: obj, decl: fd, pkg: pkg, chain: funcName(obj)}
				hot[obj] = hf
				queue = append(queue, hf)
			}
		}
	}
	seenEscape := make(map[*types.Func]bool)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.decl.Body == nil {
			continue
		}
		ast.Inspect(cur.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(cur.pkg.Info, call)
			fd := prog.declOf(callee)
			if fd == nil || fd.decl.Body == nil {
				return true // out of module, dynamic, or bodiless
			}
			if hot[callee] != nil {
				return true
			}
			hf := &hotFunc{fn: callee, decl: fd.decl, pkg: fd.pkg,
				chain: cur.chain + " -> " + funcName(callee)}
			if annotationsOf(fd.decl).allowescape {
				if !seenEscape[callee] {
					seenEscape[callee] = true
					escapes = append(escapes, hf)
				}
				return true // hatch: do not descend
			}
			hot[callee] = hf
			queue = append(queue, hf)
			return true
		})
	}
	return hot, escapes
}

// funcName renders a function for diagnostics: Name, (T).Method or
// (*T).Method, package-qualified when outside the module root package.
func funcName(fn *types.Func) string {
	if fn == nil {
		return "<unknown>"
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	return fn.Name()
}
