// The lockorder corpus: one function per rule, each seeded with the
// smallest violation that triggers it, plus clean twins proving the
// rules stay quiet on disciplined code.
package lockorder

import (
	"net"
	"sync"
)

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// lockAB and lockBA acquire the same pair in opposite orders: the
// classic deadlock. The cycle is reported at the first witnessed edge
// (A.mu -> B.mu, below).
func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle: A\\.mu -> B\\.mu -> A\\.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

//stripe:locks C.mu<D.mu

// violateDecl contradicts the declared order without (yet) having a
// partner that closes the cycle — the declaration catches it early.
func violateDecl(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want "violateDecl: acquires C\\.mu while holding D\\.mu, contradicting //stripe:locks C\\.mu<D\\.mu"
	c.mu.Unlock()
	d.mu.Unlock()
}

//stripe:locks C.mu
// want-1 "//stripe:locks needs at least two '<'-separated lock names"

//stripe:locks C.mu<Ghost.mu
// want-1 "//stripe:locks names unknown lock \"Ghost.mu\""

type R struct {
	mu sync.Mutex
	n  int
}

func relockDirect(r *R) {
	r.mu.Lock()
	r.mu.Lock() // want "relockDirect: acquires R\\.mu while already holding it"
	r.mu.Unlock()
}

// withR is summary fodder: it acquires R.mu (and releases it on every
// path via defer), so callers holding R.mu self-deadlock calling it.
func withR(r *R) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
}

func relockViaCall(r *R) {
	r.mu.Lock()
	withR(r) // want "relockViaCall: calls withR, which acquires R\\.mu already held here"
	r.mu.Unlock()
}

type F struct{ mu sync.Mutex }

// W is a waiter in the Session.txCond mold: cond guards mu.
type W struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func newW() *W {
	w := &W{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// waitClean parks holding only the cond's own lock: fine.
func waitClean(w *W) {
	w.mu.Lock()
	for !w.ready {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// waitHoldingForeign parks while a second, foreign lock is held: every
// waiter on F.mu stalls for the full park.
func waitHoldingForeign(w *W, f *F) {
	f.mu.Lock()
	w.mu.Lock()
	for !w.ready {
		w.cond.Wait() // want "waitHoldingForeign: Cond\\.Wait parks while holding F\\.mu"
	}
	w.mu.Unlock()
	f.mu.Unlock()
}

func wakeHoldingForeign(w *W, f *F) {
	f.mu.Lock()
	w.cond.Broadcast() // want "wakeHoldingForeign: Cond\\.Broadcast/Signal while holding F\\.mu \\(a second lock\\)"
	f.mu.Unlock()
}

type P struct{ mu sync.Mutex }
type Q struct{ mu sync.Mutex }

func sendHoldingTwo(p *P, q *Q, ch chan int) {
	p.mu.Lock()
	q.mu.Lock()
	ch <- 1 // want "sendHoldingTwo: channel send while holding 2 locks \\(P\\.mu, Q\\.mu\\)"
	q.mu.Unlock()
	p.mu.Unlock()
}

// recvCh blocks on its own (no locks held here, so it is clean) but
// poisons the summary of everything that calls it under locks.
func recvCh(ch chan int) int {
	return <-ch
}

func blockViaCall(p *P, q *Q, ch chan int) int {
	p.mu.Lock()
	q.mu.Lock()
	v := recvCh(ch) // want "blockViaCall: calls recvCh, which may block \\(channel receive\\), while holding 2 locks"
	q.mu.Unlock()
	p.mu.Unlock()
	return v
}

//stripe:allowblock handoff runs under both striper locks by design
func sendAllowed(p *P, q *Q, ch chan int) {
	p.mu.Lock()
	q.mu.Lock()
	ch <- 1
	q.mu.Unlock()
	p.mu.Unlock()
}

//stripe:allowblock
func sendAllowedBare(p *P, q *Q, ch chan int) { // want "sendAllowedBare: //stripe:allowblock needs a reason"
	p.mu.Lock()
	q.mu.Lock()
	ch <- 1
	q.mu.Unlock()
	p.mu.Unlock()
}

type N struct{ mu sync.Mutex }

func writeHoldingLock(n *N, c net.Conn, b []byte) {
	n.mu.Lock()
	c.Write(b) // want "writeHoldingLock: net I/O while holding N\\.mu; socket stalls become lock stalls"
	n.mu.Unlock()
}

func returnHolding(r *R, early bool) int {
	r.mu.Lock()
	if early {
		return 1 // want "returnHolding: returns still holding R\\.mu"
	}
	r.mu.Unlock()
	return 0
}

func leakAtEnd(r *R) {
	r.mu.Lock() // want "leakAtEnd: R\\.mu locked here is not unlocked on every path"
	r.n++
}

// deferClean releases via defer on every path: clean.
func deferClean(r *R, early bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if early {
		return 1
	}
	r.n++
	return 0
}
