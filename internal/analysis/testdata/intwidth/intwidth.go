// Package intwidth is the stripevet self-test corpus for the intwidth
// pass. Expectations use the offset form (want+N) because a want
// comment on the conversion's own line would itself count as the
// justifying comment the pass looks for.
package intwidth

// want+2 "narrows 64 -> 32 bits"
func Narrow(x uint64) uint32 {
	return uint32(x)
}

// want+2 "loses sign"
func Sign(deficit int64) uint64 {
	return uint64(deficit)
}

// want+2 "can overflow signed 64-bit range"
func Overflow(wire uint64) int64 {
	return int64(wire)
}

func WideningOK(c uint32) uint64 {
	return uint64(c)
}

func SignedWideningOK(d int32) int64 {
	return int64(d)
}

func ConstOK() uint8 {
	const quantum = 200
	return uint8(quantum)
}

func JustifiedOK(deficit int64) uint64 {
	// Deficit is non-negative after Account: bounded below by zero.
	return uint64(deficit)
}

func TrailingJustifiedOK(sent uint64) int64 {
	return int64(sent) // Sent wraps mod 2^63 on the wire; reconciler handles it.
}
