// Package atomicfield is the stripevet self-test corpus for the
// atomicfield pass.
package atomicfield

import "sync/atomic"

// skewed puts a 64-bit atomic field after a uint32: fine on 64-bit
// targets, a runtime fault on 32-bit ones.
type skewed struct {
	flag uint32
	hits int64 // want "not 8-byte aligned"
}

func bump(s *skewed) {
	atomic.AddInt64(&s.hits, 1)
}

func loadOK(s *skewed) int64 {
	return atomic.LoadInt64(&s.hits)
}

func raceRead(s *skewed) int64 {
	return s.hits // want `non-atomic access of field atomicfield\.hits`
}

func raceWrite(s *skewed) {
	s.hits = 0 // want `non-atomic access of field atomicfield\.hits`
}

// aligned keeps its 64-bit atomic first: atomically accessed
// everywhere and alignment-safe, so fully silent.
type aligned struct {
	total uint64
	flag  uint32
}

func add(a *aligned, n uint64) {
	atomic.AddUint64(&a.total, n)
}

func read(a *aligned) uint64 {
	return atomic.LoadUint64(&a.total)
}

// typed uses the typed atomics: access-safe and alignment-safe by
// construction, but copying one copies the value non-atomically.
type typed struct {
	n atomic.Int64
}

func observe(t *typed) {
	t.n.Add(1)
}

func snapshot(t *typed) atomic.Int64 {
	return t.n // want "copied by value"
}

func addrOK(t *typed) *atomic.Int64 {
	return &t.n
}

// plain is never touched by sync/atomic; ordinary access stays silent.
type plain struct {
	count int64
}

func inc(p *plain) {
	p.count++
}
