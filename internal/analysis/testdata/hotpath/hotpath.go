// Package hotpath is the stripevet self-test corpus for the hotpath
// pass. Lines carrying a `// want "regex"` comment must produce a
// matching finding; every other line must stay silent.
package hotpath

import (
	"fmt"
	"sync"
)

type ring struct {
	mu  sync.Mutex
	buf [8]int64
	n   int
}

//stripe:hotpath
func HotAlloc(r *ring) {
	p := new(ring) // want "allocation: new"
	_ = p
	s := make([]int, 4) // want "allocation: make"
	_ = s
	b := []int64{1, 2} // want "allocation: slice literal"
	_ = b
	m := map[int]int{} // want "allocation: map literal"
	_ = m
	q := &ring{} // want "allocation: address of composite literal"
	_ = q
}

//stripe:hotpath
func HotCalls(r *ring, name string) {
	fmt.Println(r.n) // want "calls fmt.Println"
	r.mu.Lock()      // want `calls sync\.Lock`
	r.mu.Unlock()    // want `calls sync\.Unlock`
	_ = []byte(name) // want "conversion copies"
	_ = name + "!"   // want "string concatenation"
}

//stripe:hotpath
func HotBlocking(ch chan int) {
	ch <- 1  // want "blocking channel send"
	<-ch     // want "blocking channel receive"
	select { // want "blocking select"
	case v := <-ch:
		_ = v
	}
	go func() {}() // want "goroutine start" "closure allocation"
	for range ch { // want "blocking range over channel"
	}
}

// HotPolling is clean: a select with a default case polls, and the
// channel operations inside its comm clauses never block on their own.
//
//stripe:hotpath
func HotPolling(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}

func (r *ring) full() bool { return r.n == len(r.buf) }

// HotMethodValue evaluates r.full as a value, which binds the receiver
// in a fresh closure per evaluation; calling it directly is free.
//
//stripe:hotpath
func HotMethodValue(r *ring, probe func(func() bool)) {
	probe(r.full) // want "method value full binds its receiver"
	_ = r.full()
}

// sink is a dynamic seam: interface calls end hot traversal, so the
// allocation inside any implementation is that implementation's
// responsibility, not this caller's.
type sink interface{ Push(int) }

//stripe:hotpath
func HotDynamic(s sink) {
	s.Push(1)
}

// HotTransitive is clean itself; the violation lives two static calls
// down and must be reported there with the chain in the message.
//
//stripe:hotpath
func HotTransitive(r *ring) {
	middle(r)
}

func middle(r *ring) {
	leaf(r)
}

func leaf(r *ring) {
	_ = new(int) // want `HotTransitive -> middle -> leaf.*allocation: new`
}

// coldReset is an amortized escape hatch with a reason: traversal must
// stop here and the allocation below must not be reported.
//
//stripe:allowescape reset path, runs once per epoch change
func coldReset(r *ring) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = make([]int64, 64)
}

// badEscape is a hatch without a justification, which is itself a
// finding once it is reached from a hot root.
//
//stripe:allowescape
func badEscape() { // want "allowescape needs a reason"
	_ = new(ring)
}

//stripe:hotpath
func HotWithEscapes(r *ring) {
	coldReset(r)
	badEscape()
}

// PlainAllocator is not annotated and not reachable from a hot root:
// anything goes.
func PlainAllocator() *ring {
	r := &ring{n: len(fmt.Sprint("x"))}
	return r
}
