// The goroleak corpus: goroutines on each tracked shutdown path stay
// silent; unanchored ones, and annotation misuse, are findings.
package goroleak

import (
	"context"
	"sync"
)

func work() {}

// spawnDone is the captured-done-channel idiom: the goroutine parks on
// a channel the returned stop closure closes.
func spawnDone() func() {
	done := make(chan struct{})
	go func() {
		<-done
		work()
	}()
	return func() { close(done) }
}

// spawnWG is the WaitGroup idiom: the spawner waits on Done.
func spawnWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// spawnCtx is the context idiom.
func spawnCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// spawnCompletion is the completion-signal idiom: the goroutine
// announces its own exit by closing a channel the spawner drains.
func spawnCompletion() {
	ch := make(chan int)
	go func() {
		defer close(ch)
		work()
	}()
	<-ch
}

// drainForever is reachable only through a go statement; its summary
// still exists, and it offers no way to stop it.
func drainForever(ch chan int) {
	for range ch {
	}
}

func spawnUntrackedLit() {
	go func() { // want "spawnUntrackedLit: goroutine has no tracked shutdown path"
		for {
			work()
		}
	}()
}

func spawnUntrackedCallee(ch chan int) {
	go drainForever(ch) // want "spawnUntrackedCallee: goroutine has no tracked shutdown path"
}

func spawnDynamic(f func()) {
	go f() // want "spawnDynamic: goroutine target is dynamic \\(func value\\)"
}

func spawnWaivedLine(ch chan int) {
	//stripe:allowleak bounded: drains a channel the test closes immediately
	go drainForever(ch)
}

func spawnWaivedSameLine(ch chan int) {
	go drainForever(ch) //stripe:allowleak bounded: drains a channel the test closes immediately
}

//stripe:allowleak bounded: the demo sender exits after a fixed packet count
func spawnWaivedDoc() {
	go func() {
		for {
			work()
		}
	}()
}

func spawnWaivedBare(ch chan int) {
	//stripe:allowleak
	go drainForever(ch) // want "spawnWaivedBare: //stripe:allowleak needs a reason"
}
