// Package sinkdiscipline is the stripevet self-test corpus for the
// sinkdiscipline pass. It type-checks against the real
// stripe/internal/obs package through the analysis loader.
package sinkdiscipline

import "stripe/internal/obs"

// spySink is a concrete sink; implementing Event is fine, and storing
// the delivered event involves no emission.
type spySink struct {
	last obs.Event
}

func (s *spySink) Event(e obs.Event) {
	s.last = e
}

// forward chains to another sink from inside its own Event method —
// the forwarding exemption.
type forward struct {
	next obs.Sink
}

func (f *forward) Event(e obs.Event) {
	f.next.Event(e)
}

func Construct() obs.Event {
	return obs.Event{} // want "constructed outside internal/obs"
}

func DirectCall(s obs.Sink, e obs.Event) {
	s.Event(e) // want "direct sink Event call outside internal/obs"
}

func ConcreteCall(s *spySink, e obs.Event) {
	s.Event(e) // want "direct sink Event call outside internal/obs"
}

// HotRecord is a hot path: recording through the nil-safe, sampled
// Collector hooks is the sanctioned surface; touching any other obs
// type directly from hot code bypasses sampling.
//
//stripe:hotpath
func HotRecord(c *obs.Collector, h *obs.Histogram, v int64) {
	h.Observe(v) // want "hot paths emit only through the sampled"
	c.OnStriped(0, int(v))
}

// ColdRecord is not hot: direct Histogram use outside a hot path is
// allowed (it is not an event emission).
func ColdRecord(h *obs.Histogram, v int64) {
	h.Observe(v)
}
