// The wiresym corpus: a miniature wire surface with its own codepoint
// universe and codec pairs, seeded with one violation of each rule.
// This file declares the universe; references here (the iota block)
// never count as consumer handling.
package wiresym

import "encoding/binary"

// Kind is the corpus codepoint namespace (discovered structurally:
// unsigned underlying type plus a Packet struct carrying it).
type Kind uint8

const (
	Data   Kind = iota // 0
	Marker             // 1
	Credit             // 2
	// Orphan (3) is declared but handled nowhere: kind-unhandled.
	Orphan // want "codepoint Orphan is declared but no consumer handles it"
	Parity // 4: the newest, highest codepoint
)

// Packet is the frame the universe discovery keys on.
type Packet struct {
	Kind    Kind
	Payload []byte
}

// ctrlCRC stands in for the real Castagnoli checksum; the pass matches
// it by name.
func ctrlCRC(b []byte) uint32 {
	var x uint32
	for _, c := range b {
		x = x*31 + uint32(c)
	}
	return x
}

// --- A healthy codec pair: shared size constant, matching CRC spans ---

const GoodWireLen = 16

type GoodBlock struct {
	A uint64
	B uint32
}

func (g *GoodBlock) Encode(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, GoodWireLen)...)
	b := dst[off:]
	binary.BigEndian.PutUint64(b[0:8], g.A)
	binary.BigEndian.PutUint32(b[8:12], g.B)
	binary.BigEndian.PutUint32(b[12:16], ctrlCRC(b[0:12]))
	return dst
}

func DecodeGood(b []byte) (GoodBlock, error) {
	var g GoodBlock
	if len(b) < GoodWireLen {
		return g, errShort
	}
	if ctrlCRC(b[0:12]) != binary.BigEndian.Uint32(b[12:16]) {
		return g, errShort
	}
	g.A = binary.BigEndian.Uint64(b[0:8])
	g.B = binary.BigEndian.Uint32(b[8:12])
	return g, nil
}

type corpusError string

func (e corpusError) Error() string { return string(e) }

const errShort = corpusError("short block")
