package wiresym

// readFrame is the healthy frame reader: its decode bound sits at the
// highest declared codepoint, so Parity frames survive.
func readFrame(b []byte) (*Packet, bool) {
	if len(b) == 0 || b[0] > byte(Parity) {
		return nil, false
	}
	return &Packet{Kind: Kind(b[0]), Payload: b[1:]}, true
}

// readFrameStale reproduces the DecodeFrame regression: the bound was
// never raised past Credit, so every newer codepoint is rejected and
// the FIFO channel desyncs.
func readFrameStale(b []byte) (*Packet, bool) {
	if len(b) == 0 || b[0] > byte(Credit) { // want "decode bound compares against Credit \\(2\\) but the highest declared codepoint is Parity \\(4\\)"
		return nil, false
	}
	return &Packet{Kind: Kind(b[0]), Payload: b[1:]}, true
}

// dispatch handles the codepoints the reader admits. Orphan is declared
// in wire.go but never referenced outside it, which is what the
// kind-unhandled want over there pins.
func dispatch(p *Packet) int {
	switch p.Kind {
	case Data:
		return 1
	case Marker:
		return 2
	case Credit:
		return 3
	}
	return 0
}

// --- pair-consts: a codec whose halves disagree about layout ---

const (
	sizeShared  = 8
	sizeEncOnly = 4
	sizeDecOnly = 2
)

type SizeBlock struct {
	V uint64
}

func (s *SizeBlock) Encode(dst []byte) []byte { // want "\\(\\*SizeBlock\\).Encode does not reference sizeDecOnly but DecodeSize does"
	b := make([]byte, sizeShared+sizeEncOnly)
	for i := 0; i < sizeShared; i++ {
		b[i] = byte(s.V >> (8 * (sizeShared - 1 - i)))
	}
	return append(dst, b...)
}

func DecodeSize(b []byte) (SizeBlock, error) { // want "DecodeSize does not reference sizeEncOnly but \\(\\*SizeBlock\\).Encode does"
	var s SizeBlock
	if len(b) < sizeShared+sizeDecOnly {
		return s, errShort
	}
	for i := 0; i < sizeShared; i++ {
		s.V = s.V<<8 | uint64(b[i])
	}
	return s, nil
}

// --- crc-span: a codec whose CRC guards cover different spans ---

type CrcBlock struct {
	V uint64
}

func (c *CrcBlock) Encode(dst []byte) []byte {
	b := make([]byte, 16)
	for i := 0; i < 8; i++ {
		b[i] = byte(c.V >> (8 * (7 - i)))
	}
	PutUint32(b[12:16], ctrlCRC(b[0:12]))
	return append(dst, b...)
}

func DecodeCrc(b []byte) (CrcBlock, error) {
	var c CrcBlock
	if len(b) < 16 {
		return c, errShort
	}
	if ctrlCRC(b[0:8]) != Uint32(b[12:16]) { // want "CRC guard mismatch: encode checksums b\\[0:12\\]@b\\[12:16\\], decode checks b\\[0:8\\]@b\\[12:16\\]"
		return c, errShort
	}
	for i := 0; i < 8; i++ {
		c.V = c.V<<8 | uint64(b[i])
	}
	return c, nil
}

// --- crc-span: one side checksums, the other trusts the wire ---

type HalfBlock struct {
	V uint32
}

func (h *HalfBlock) Encode(dst []byte) []byte {
	b := make([]byte, 8)
	PutUint32(b[0:4], h.V)
	PutUint32(b[4:8], ctrlCRC(b[0:4]))
	return append(dst, b...)
}

func DecodeHalf(b []byte) (HalfBlock, error) { // want "DecodeHalf has no CRC guard but its counterpart checksums the block"
	var h HalfBlock
	if len(b) < 8 {
		return h, errShort
	}
	h.V = Uint32(b[0:4])
	return h, nil
}

// Local byte-order helpers so the corpus matches the PutUint32/Uint32
// idioms without importing encoding/binary twice over.
func PutUint32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func Uint32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
