// Package analysis is stripevet's engine: a stdlib-only static-analysis
// driver (go/parser + go/types + go/importer — deliberately no x/tools,
// preserving the module's zero-dependency constraint) plus the
// protocol-aware passes that enforce the implementation discipline the
// paper's theorems rest on.
//
// The driver loads every package of the module rooted at a go.mod,
// type-checks them in dependency order with a shared FileSet and
// importer (so types.Object identity holds across packages), and hands
// the typed syntax to each pass. A pass returns Diagnostics; any
// diagnostic fails the build.
//
// Passes:
//
//   - hotpath: functions annotated //stripe:hotpath must not allocate,
//     acquire locks, call fmt/log/reflect, or perform blocking channel
//     operations — transitively through the in-module static call
//     graph. //stripe:allowescape exempts a callee (see annotations.go).
//   - atomicfield: a struct field accessed through sync/atomic anywhere
//     must be accessed atomically everywhere, and 64-bit atomic fields
//     must sit at 8-byte-aligned offsets even under 32-bit layout.
//   - intwidth: value-changing integer conversions in the deficit /
//     quantum / byte-count arithmetic packages must carry an
//     explanatory comment on the same or preceding line.
//   - sinkdiscipline: protocol events are born in the obs collector;
//     code outside internal/obs must not construct obs.Event values or
//     call sink Event methods, and hot-path code must emit only through
//     the nil-safe, sampled *obs.Collector hooks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding. Any diagnostic is a failure: the passes
// encode rules, not suggestions.
type Diagnostic struct {
	Pos  token.Position
	Pass string
	// Rule is the pass's finer-grained rule slug (e.g. "kind-bound",
	// "cycle"); empty for passes predating -json, which report under
	// their pass name alone.
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Msg)
}

// Package is one type-checked package of the program.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded, type-checked module.
type Program struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	Root    string // absolute module root
	Pkgs    []*Package

	byPath map[string]*Package
	std    types.Importer
	// decls maps every function/method object declared in the program
	// (module packages plus any LoadDir extras) to its syntax.
	decls map[*types.Func]*funcDecl
}

type funcDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// Pass is one stripevet rule set.
type Pass struct {
	Name string
	Doc  string
	// InScope, when non-nil, restricts the pass to packages whose
	// import path it accepts when run through RunScoped (the stripevet
	// CLI). Run itself analyzes exactly the packages it is given.
	InScope func(pkgPath string) bool
	Run     func(prog *Program, pkgs []*Package) []Diagnostic
}

// Passes is the full stripevet suite, in reporting order.
var Passes = []*Pass{HotPath, AtomicField, IntWidth, SinkDiscipline, WireSym, LockOrder, GoroLeak}

// RunScoped runs the pass over the packages its scope accepts and
// returns the findings sorted by position.
func (p *Pass) RunScoped(prog *Program, pkgs []*Package) []Diagnostic {
	in := pkgs
	if p.InScope != nil {
		in = nil
		for _, pkg := range pkgs {
			if p.InScope(pkg.Path) {
				in = append(in, pkg)
			}
		}
	}
	ds := p.Run(prog, in)
	SortDiagnostics(ds)
	return ds
}

// SortDiagnostics orders findings by file, line, column, pass.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}

// Load parses and type-checks every package of the module rooted at
// root (the directory containing go.mod).
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		ModPath: modPath,
		Root:    root,
		byPath:  make(map[string]*Package),
		decls:   make(map[*types.Func]*funcDecl),
	}
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := prog.importPkg(path); err != nil {
			return nil, err
		}
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// LoadDir type-checks one extra directory as a package with the given
// import path, able to import module packages through the program's
// loader. The self-test corpus uses it to bring testdata packages
// (which the go tool itself never builds) into the typed program.
func (p *Program) LoadDir(dir, asPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return p.checkDir(dir, asPath)
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// moduleDirs lists every directory under root holding buildable Go
// files, skipping testdata, hidden and underscore-prefixed directories.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if ents, err := os.ReadDir(path); err == nil {
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					dirs = append(dirs, path)
					break
				}
			}
		}
		return nil
	})
	return dirs, err
}

// Import implements types.Importer: module-internal paths load (and
// type-check) recursively; everything else resolves through the
// toolchain's export data, falling back to type-checking the standard
// library from source when export data is unavailable.
func (p *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == p.ModPath || strings.HasPrefix(path, p.ModPath+"/") {
		pkg, err := p.importPkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if p.std == nil {
		p.std = importer.Default()
	}
	tp, err := p.std.Import(path)
	if err != nil {
		// Toolchains without packaged export data: fall back to the
		// source importer (slower, still stdlib-only).
		src := importer.ForCompiler(p.Fset, "source", nil)
		if tp2, err2 := src.Import(path); err2 == nil {
			p.std = src
			return tp2, nil
		}
		return nil, err
	}
	return tp, nil
}

func (p *Program) importPkg(path string) (*Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, p.ModPath), "/")
	dir := filepath.Join(p.Root, filepath.FromSlash(rel))
	p.byPath[path] = nil // cycle guard
	pkg, err := p.checkDir(dir, path)
	if err != nil {
		delete(p.byPath, path)
		return nil, err
	}
	return pkg, nil
}

// checkDir parses and type-checks the package in dir under import path
// asPath, registering it with the program.
func (p *Program) checkDir(dir, asPath string) (*Package, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: p}
	tp, err := cfg.Check(asPath, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", asPath, err)
	}
	pkg := &Package{Path: asPath, Dir: dir, Files: files, Types: tp, Info: info}
	p.byPath[asPath] = pkg
	p.Pkgs = append(p.Pkgs, pkg)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					p.decls[obj] = &funcDecl{decl: fd, pkg: pkg}
				}
			}
		}
	}
	return pkg, nil
}

// declOf returns the syntax of a program-declared function, resolving
// generic instantiations to their origin. Nil for functions without
// bodies in the program (stdlib, interface methods).
func (p *Program) declOf(fn *types.Func) *funcDecl {
	if fn == nil {
		return nil
	}
	if d, ok := p.decls[fn]; ok {
		return d
	}
	return p.decls[fn.Origin()]
}

// calleeOf statically resolves a call expression to the function it
// invokes. Interface method calls and func-value calls return the
// abstract *types.Func (no body) or nil; conversions return nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
