package analysis

import (
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// lookupFunc finds a function or method in a loaded package by
// "Name" or "Recv.Name" (pointer receivers included).
func lookupFunc(t *testing.T, pkgs []*Package, pkgSuffix, name string) *types.Func {
	t.Helper()
	recv, method, isMethod := strings.Cut(name, ".")
	for _, pkg := range pkgs {
		if !strings.HasSuffix(pkg.Types.Path(), pkgSuffix) {
			continue
		}
		scope := pkg.Types.Scope()
		if !isMethod {
			if fn, ok := scope.Lookup(name).(*types.Func); ok {
				return fn
			}
			continue
		}
		tn, ok := scope.Lookup(recv).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				return m
			}
		}
	}
	t.Fatalf("function %s not found in package *%s", name, pkgSuffix)
	return nil
}

// lookupField finds a struct field by "Type.field" in a package.
func lookupField(t *testing.T, pkgs []*Package, pkgSuffix, name string) *types.Var {
	t.Helper()
	typeName, field, _ := strings.Cut(name, ".")
	for _, pkg := range pkgs {
		if !strings.HasSuffix(pkg.Types.Path(), pkgSuffix) {
			continue
		}
		tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == field {
				return f
			}
		}
	}
	t.Fatalf("field %s not found in package *%s", name, pkgSuffix)
	return nil
}

// TestGraphCycles pins the digraph cycle detector: canonical rotation,
// deduplication (the same cycle entered from every node reports once),
// self-loops, and determinism.
func TestGraphCycles(t *testing.T) {
	g := NewGraph()
	edge := func(from, to string) {
		g.AddEdge(GraphEdge{From: from, To: to, Pos: token.NoPos})
	}
	// One 2-cycle (reachable from both ends), one self-loop, and an
	// acyclic tail hanging off it.
	edge("B.mu", "A.mu")
	edge("A.mu", "B.mu")
	edge("C.mu", "C.mu")
	edge("A.mu", "D.mu")
	edge("D.mu", "E.mu")

	cycles := g.Cycles()
	if len(cycles) != 2 {
		t.Fatalf("Cycles() = %v, want exactly the A<->B cycle and the C self-loop", cycles)
	}
	if got := CycleString(cycles[0]); got != "A.mu -> B.mu -> A.mu" {
		t.Errorf("cycle 0 = %q, want canonical rotation starting at A.mu", got)
	}
	if got := CycleString(cycles[1]); got != "C.mu -> C.mu" {
		t.Errorf("cycle 1 = %q, want the self-loop", got)
	}

	// A DAG has no cycles.
	dag := NewGraph()
	dag.AddEdge(GraphEdge{From: "X", To: "Y"})
	dag.AddEdge(GraphEdge{From: "Y", To: "Z"})
	dag.AddEdge(GraphEdge{From: "X", To: "Z"})
	if got := dag.Cycles(); len(got) != 0 {
		t.Errorf("DAG Cycles() = %v, want none", got)
	}
}

// TestCallGraphReachable pins the cross-package closure of the call
// graph on the real tree: Session.Snapshot's synchronous reach crosses
// root -> internal/core -> internal/obs.
func TestCallGraphReachable(t *testing.T) {
	prog, mod := sharedProgram(t)
	g := NewCallGraph(prog, mod)

	snapshot := lookupFunc(t, mod, "stripe", "Session.Snapshot")
	syncObs := lookupFunc(t, mod, "/internal/core", "Striper.SyncObs")
	runChecks := lookupFunc(t, mod, "/internal/obs", "Collector.RunChecks")

	reach := g.Reachable(snapshot)
	if !reach[syncObs] {
		t.Errorf("(*Session).Snapshot does not reach (*Striper).SyncObs; the root->core edge is missing")
	}
	if !reach[runChecks] {
		t.Errorf("(*Session).Snapshot does not reach (*Collector).RunChecks; the core->obs edge is missing")
	}
}

// TestLockSummaryCrossPackage pins the fixed-point summary merge:
// Snapshot locks Session.mu directly and reaches Checker.mu only
// through the SyncObs -> RunChecks -> (*Checker).run chain, two
// packages away. Both must appear in its transitive summary.
func TestLockSummaryCrossPackage(t *testing.T) {
	prog, mod := sharedProgram(t)
	g := NewCallGraph(prog, mod)
	li := ComputeLockInfo(prog, g)

	snapshot := lookupFunc(t, mod, "stripe", "Session.Snapshot")
	sum := li.Summary(snapshot)
	if sum == nil {
		t.Fatal("no lock summary for (*Session).Snapshot")
	}
	byName := make(map[string]LockAcq, len(sum.Acquires))
	for v, acq := range sum.Acquires {
		byName[li.LockName(v)] = acq
	}
	if _, ok := byName["Session.mu"]; !ok {
		t.Errorf("summary of Snapshot misses Session.mu (direct acquisition); acquires: %v", names(byName))
	}
	acq, ok := byName["Checker.mu"]
	if !ok {
		t.Fatalf("summary of Snapshot misses Checker.mu (cross-package, via SyncObs -> RunChecks); acquires: %v", names(byName))
	}
	if acq.Via == "" {
		t.Error("Checker.mu should be an indirect acquisition with a via chain, got a direct one")
	}
}

func names(m map[string]LockAcq) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCondOwner pins the sync.NewCond(&x) association the wait-holding
// rule depends on: Session.txCond guards Session.mu.
func TestCondOwner(t *testing.T) {
	prog, mod := sharedProgram(t)
	li := ComputeLockInfo(prog, NewCallGraph(prog, mod))

	cond := lookupField(t, mod, "stripe", "Session.txCond")
	mu := lookupField(t, mod, "stripe", "Session.mu")
	if got := li.CondLock[cond]; got != mu {
		t.Errorf("CondLock[Session.txCond] = %v, want Session.mu", got)
	}
	if name := li.LockName(mu); name != "Session.mu" {
		t.Errorf("LockName(Session.mu) = %q", name)
	}
}
