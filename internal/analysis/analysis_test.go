package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// The corpus harness: each testdata package is type-checked through
// the analysis loader (the go tool itself never builds testdata) and
// run through exactly one pass. Expectations ride in the source as
//
//	// want "regex"            finding on this line
//	// want "re1" "re2"        two findings on this line
//	// want+N "regex"          finding N lines below (for the intwidth
//	//                         corpus, where a same-line comment would
//	//                         itself justify the conversion)
//
// Every finding must match an expectation and every expectation must
// be matched — unexpected silence and unexpected noise both fail.

var (
	progOnce sync.Once
	progVal  *Program
	progMod  []*Package // module packages only, snapshotted before LoadDir
	progErr  error
)

func sharedProgram(t *testing.T) (*Program, []*Package) {
	t.Helper()
	progOnce.Do(func() {
		progVal, progErr = Load("../..")
		if progErr == nil {
			progMod = append([]*Package(nil), progVal.Pkgs...)
		}
	})
	if progErr != nil {
		t.Fatalf("loading module: %v", progErr)
	}
	return progVal, progMod
}

type expectation struct {
	re   *regexp.Regexp
	used bool
}

var (
	wantLine = regexp.MustCompile(`^//\s*want([+-]\d+)?\s+(.+)$`)
	wantArg  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")
)

// parseWants collects want expectations from a package's comments,
// keyed by filename and (offset-adjusted) line.
func parseWants(t *testing.T, prog *Program, pkg *Package) map[string]map[int][]*expectation {
	t.Helper()
	wants := make(map[string]map[int][]*expectation)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantLine.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
					line += off
				}
				args := wantArg.FindAllString(m[2], -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment without a quoted regex", pos)
				}
				for _, q := range args {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: unquoting %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: compiling %q: %v", pos, s, err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*expectation)
					}
					wants[pos.Filename][line] = append(wants[pos.Filename][line], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

func runCorpus(t *testing.T, p *Pass, dir string) {
	prog, _ := sharedProgram(t)
	pkg, err := prog.LoadDir(filepath.Join("testdata", dir), "stripevet.test/"+dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	wants := parseWants(t, prog, pkg)
	ds := p.Run(prog, []*Package{pkg})
	for _, d := range ds {
		matched := false
		for _, e := range wants[d.Pos.Filename][d.Pos.Line] {
			if !e.used && e.re.MatchString(d.Msg) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.used {
					t.Errorf("%s:%d: no finding matched %q", file, line, e.re)
				}
			}
		}
	}
}

func TestHotPathCorpus(t *testing.T)        { runCorpus(t, HotPath, "hotpath") }
func TestAtomicFieldCorpus(t *testing.T)    { runCorpus(t, AtomicField, "atomicfield") }
func TestIntWidthCorpus(t *testing.T)       { runCorpus(t, IntWidth, "intwidth") }
func TestSinkDisciplineCorpus(t *testing.T) { runCorpus(t, SinkDiscipline, "sinkdiscipline") }
func TestWireSymCorpus(t *testing.T)        { runCorpus(t, WireSym, "wiresym") }
func TestLockOrderCorpus(t *testing.T)      { runCorpus(t, LockOrder, "lockorder") }
func TestGoroLeakCorpus(t *testing.T)       { runCorpus(t, GoroLeak, "goroleak") }

// TestRepoClean is the green half of the corpus's red: the whole
// module, under every pass at its CLI scope, must be finding-free.
// A seeded violation anywhere in the annotated protocol core (a
// hot-path allocation, a plain read of an atomic field) turns this
// red, as the corpus proves the passes detect.
func TestRepoClean(t *testing.T) {
	prog, mod := sharedProgram(t)
	for _, p := range Passes {
		for _, d := range p.RunScoped(prog, mod) {
			t.Errorf("%s", d)
		}
	}
}

// TestHotSetTransitivity pins the traversal contract: the hot set
// reaches through static in-module calls and stops at allowescape
// hatches and dynamic calls.
func TestHotSetTransitivity(t *testing.T) {
	prog, _ := sharedProgram(t)
	pkg := prog.Package("stripevet.test/hotpath")
	if pkg == nil {
		var err error
		pkg, err = prog.LoadDir(filepath.Join("testdata", "hotpath"), "stripevet.test/hotpath")
		if err != nil {
			t.Fatalf("loading corpus: %v", err)
		}
	}
	hot, escapes := hotSet(prog, []*Package{pkg})
	names := make(map[string]bool)
	for fn := range hot {
		names[fn.Name()] = true
	}
	for _, want := range []string{"HotTransitive", "middle", "leaf"} {
		if !names[want] {
			t.Errorf("hot set misses %s; have %v", want, names)
		}
	}
	if names["coldReset"] || names["badEscape"] {
		t.Errorf("allowescape functions leaked into the hot set: %v", names)
	}
	if names["PlainAllocator"] {
		t.Errorf("unannotated, unreachable function in hot set")
	}
	escaped := make(map[string]bool)
	for _, hf := range escapes {
		escaped[hf.fn.Name()] = true
	}
	if !escaped["coldReset"] || !escaped["badEscape"] {
		t.Errorf("escape frontier incomplete: %v", escaped)
	}
}

// TestObsFoldPathIsHot pins the windowed-rollup flush discipline to
// the analyzer, not just to code review: Windows.maybeFold (the
// per-flush deadline check) must be in the module's hot set — so the
// hotpath pass proves the fold path allocation- and lock-free on every
// run — with the fold itself reached transitively and only the
// snapshot-publishing tail escaping through its annotated hatch.
func TestObsFoldPathIsHot(t *testing.T) {
	prog, mod := sharedProgram(t)
	var obsPkg *Package
	for _, p := range mod {
		if p.Path == "stripe/internal/obs" {
			obsPkg = p
		}
	}
	if obsPkg == nil {
		t.Fatal("module load missing stripe/internal/obs")
	}
	hot, escapes := hotSet(prog, []*Package{obsPkg})
	names := make(map[string]bool)
	for fn := range hot {
		names[fn.Name()] = true
	}
	for _, want := range []string{"maybeFold", "fold"} {
		if !names[want] {
			t.Errorf("rollup fold path %s not in the hot set; the flush discipline is unenforced", want)
		}
	}
	escaped := make(map[string]bool)
	for _, hf := range escapes {
		escaped[hf.fn.Name()] = true
	}
	if !escaped["publish"] {
		t.Errorf("Windows.publish should escape via its allowescape hatch, not run hot")
	}
	if names["publish"] {
		t.Errorf("Windows.publish leaked into the hot set past its allowescape annotation")
	}
}
