package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// IntWidthScope names the packages whose arithmetic the intwidth pass
// polices when run through the stripevet CLI: the deficit/quantum
// scheduler state, the credit ledgers, and the wire-format codecs —
// everywhere a silent truncation or sign flip would falsify a theorem
// (a deficit is signed by construction; wire counters are unsigned by
// construction; the conversions between them are exactly where bugs
// hide).
var IntWidthScope = []string{
	"internal/sched",
	"internal/flowcontrol",
	"internal/packet",
}

// IntWidth flags value-changing integer conversions — narrowing width,
// or crossing signedness in a direction that can wrap — unless the
// conversion line (or the line immediately above it) carries a comment
// justifying it. Conversions of constants representable in the target
// type are always safe and never flagged. int, uint and uintptr are
// treated as 64-bit, the module's deployment word size.
const intWidthName = "intwidth"

var IntWidth = &Pass{
	Name: intWidthName,
	Doc:  "deficit/quantum/byte-count conversions must not narrow or change sign without a comment",
	InScope: func(path string) bool {
		for _, s := range IntWidthScope {
			if strings.HasSuffix(path, s) {
				return true
			}
		}
		return false
	},
	Run: runIntWidth,
}

func runIntWidth(prog *Program, pkgs []*Package) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			commented := commentedLines(prog.Fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isConversion(info, call) || len(call.Args) != 1 {
					return true
				}
				to := info.Types[call].Type
				fromTV := info.Types[call.Args[0]]
				lossy, why := lossyIntConversion(fromTV, to)
				if !lossy {
					return true
				}
				line := prog.Fset.Position(call.Pos()).Line
				if commented[line] || commented[line-1] {
					return true
				}
				ds = append(ds, Diagnostic{
					Pos:  prog.Fset.Position(call.Pos()),
					Pass: intWidthName,
					Msg: fmt.Sprintf("conversion %s -> %s %s; add a comment justifying it on this or the preceding line",
						types.TypeString(fromTV.Type, types.RelativeTo(pkg.Types)),
						types.TypeString(to, types.RelativeTo(pkg.Types)), why),
				})
				return true
			})
		}
	}
	return ds
}

// lossyIntConversion reports whether converting from -> to is an
// integer conversion that can change the value, and why.
func lossyIntConversion(from types.TypeAndValue, to types.Type) (bool, string) {
	if from.Type == nil || to == nil {
		return false, ""
	}
	fb := basicInt(from.Type)
	tb := basicInt(to)
	if fb == nil || tb == nil {
		return false, ""
	}
	// A constant representable in the target cannot lose anything.
	if from.Value != nil && representableIn(from.Value, tb) {
		return false, ""
	}
	fw, fu := intWidth(fb), fb.Info()&types.IsUnsigned != 0
	tw, tu := intWidth(tb), tb.Info()&types.IsUnsigned != 0
	switch {
	case fu == tu && tw < fw:
		return true, fmt.Sprintf("narrows %d -> %d bits", fw, tw)
	case !fu && tu:
		return true, "loses sign (negative values wrap)"
	case fu && !tu && tw <= fw:
		return true, fmt.Sprintf("can overflow signed %d-bit range", tw)
	}
	return false, ""
}

func basicInt(t types.Type) *types.Basic {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return b
}

// intWidth returns the width in bits, with int/uint/uintptr pinned to
// the module's 64-bit deployment word.
func intWidth(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}

func representableIn(v constant.Value, b *types.Basic) bool {
	if v.Kind() != constant.Int {
		return false
	}
	return constant.Compare(v, token.GEQ, minOf(b)) && constant.Compare(v, token.LEQ, maxOf(b))
}

func minOf(b *types.Basic) constant.Value {
	if b.Info()&types.IsUnsigned != 0 {
		return constant.MakeInt64(0)
	}
	w := intWidth(b)
	return constant.Shift(constant.MakeInt64(-1), token.SHL, uint(w-1))
}

func maxOf(b *types.Basic) constant.Value {
	w := intWidth(b)
	if b.Info()&types.IsUnsigned == 0 {
		w--
	}
	one := constant.MakeInt64(1)
	return constant.BinaryOp(constant.Shift(one, token.SHL, uint(w)), token.SUB, one)
}

// commentedLines marks every source line covered by (or ending) a
// comment in the file, so a conversion can be justified by a trailing
// comment or one on the line above.
func commentedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				lines[l] = true
			}
		}
	}
	return lines
}
