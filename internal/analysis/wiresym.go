package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireSym cross-checks the packet wire surface against its consumers —
// the invariants whose violation desyncs a FIFO channel silently
// instead of failing a build:
//
//   - kind-bound: any ordered comparison against a control codepoint
//     constant is a decode bound, and a decode bound must sit at the
//     highest declared codepoint. Adding a codepoint without raising
//     every bound is exactly the DecodeFrame regression that killed
//     read pumps on Telemetry frames.
//   - kind-unhandled: once the analyzed packages contain a decode
//     bound, every declared codepoint must be referenced by consumer
//     code outside its declaring file — handled in a dispatch switch
//     or at least mentioned by the bound that counts it as unknown.
//   - pair-consts: an Encode method and its Decode counterpart
//     (XBlock.Encode / DecodeX) must reference the same package-level
//     size constants and *WireLen helpers; a constant used on one side
//     only means the two halves of the codec disagree about layout.
//   - crc-span: CRC-guarded blocks must compute the checksum over the
//     same field span, and store/read it at the same offset, on both
//     sides of the pair.
//
// The codepoint universe is discovered structurally: a package-level
// type named Kind with an unsigned underlying type, in a package that
// also declares a struct Packet carrying a Kind-typed field (this
// excludes unrelated Kind types, like the obs event kind).
const wireSymName = "wiresym"

var WireSym = &Pass{
	Name: wireSymName,
	Doc:  "wire codepoints bounded at the max and dispatched; encode/decode pairs agree on size constants and CRC spans",
	InScope: func(pkgPath string) bool {
		for _, s := range []string{"/internal/packet", "/internal/netchan", "/internal/core"} {
			if strings.HasSuffix(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: runWireSym,
}

// kindUniverse is one discovered codepoint namespace.
type kindUniverse struct {
	pkg    *Package
	typ    types.Type     // the Kind named type
	consts []*types.Const // declared codepoints
	max    *types.Const   // highest-valued codepoint
	maxVal int64
	// declFile maps each codepoint to the file declaring it; references
	// within that file (the iota block, the String method) do not count
	// as consumer handling.
	declFile map[*types.Const]string
	// bounded records whether any analyzed package holds an ordered
	// comparison over this universe — i.e. a decode bound exists, so
	// the dispatch-completeness rule has a frame reader to hold it to.
	bounded bool
}

func runWireSym(prog *Program, pkgs []*Package) []Diagnostic {
	var ds []Diagnostic
	report := func(rule string, pos token.Pos, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Pass: wireSymName,
			Rule: rule,
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	universes := findKindUniverses(prog, pkgs)
	if len(universes) > 0 {
		checkKindBounds(prog, pkgs, universes, report)
		checkKindHandled(prog, pkgs, universes, report)
	}
	for _, pkg := range pkgs {
		for _, pair := range codecPairs(pkg) {
			checkPairConsts(pkg, pair, universes, report)
			checkCRCSpans(pkg, pair, report)
		}
	}
	return ds
}

// findKindUniverses discovers codepoint namespaces in the analyzed
// packages: a Kind type (unsigned underlying) whose package also
// declares a struct Packet with a Kind-typed field.
func findKindUniverses(prog *Program, pkgs []*Package) []*kindUniverse {
	var out []*kindUniverse
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		kindObj, ok := scope.Lookup("Kind").(*types.TypeName)
		if !ok {
			continue
		}
		basic, ok := kindObj.Type().Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsUnsigned == 0 {
			continue
		}
		pktObj, ok := scope.Lookup("Packet").(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := pktObj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		carries := false
		for i := 0; i < st.NumFields(); i++ {
			if types.Identical(st.Field(i).Type(), kindObj.Type()) {
				carries = true
				break
			}
		}
		if !carries {
			continue
		}
		u := &kindUniverse{pkg: pkg, typ: kindObj.Type(), declFile: make(map[*types.Const]string)}
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), u.typ) {
				continue
			}
			v, ok := constant.Int64Val(c.Val())
			if !ok {
				continue
			}
			u.consts = append(u.consts, c)
			u.declFile[c] = prog.Fset.Position(c.Pos()).Filename
			if u.max == nil || v > u.maxVal {
				u.max, u.maxVal = c, v
			}
		}
		if len(u.consts) > 0 {
			out = append(out, u)
		}
	}
	return out
}

// kindConstOf resolves an expression to a codepoint constant of one of
// the universes, looking through conversions like byte(packet.Telemetry).
func kindConstOf(info *types.Info, universes []*kindUniverse, e ast.Expr) (*kindUniverse, *types.Const) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 && isConversion(info, call) {
		e = ast.Unparen(call.Args[0])
	}
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, nil
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return nil, nil
	}
	for _, u := range universes {
		if types.Identical(c.Type(), u.typ) {
			return u, c
		}
	}
	return nil, nil
}

// checkKindBounds flags ordered comparisons against a codepoint
// constant that is not the highest declared one — stale decode bounds.
func checkKindBounds(prog *Program, pkgs []*Package, universes []*kindUniverse, report func(string, token.Pos, string, ...any)) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
				default:
					return true
				}
				for _, side := range []ast.Expr{be.X, be.Y} {
					u, c := kindConstOf(pkg.Info, universes, side)
					if u == nil {
						continue
					}
					u.bounded = true
					if c != u.max {
						report("kind-bound", be.Pos(),
							"decode bound compares against %s (%s) but the highest declared codepoint is %s (%d); a frame carrying a newer codepoint would be rejected and desync the channel",
							c.Name(), c.Val(), u.max.Name(), u.maxVal)
					}
				}
				return true
			})
		}
	}
}

// checkKindHandled flags codepoints no consumer references. It runs
// only for universes with a decode bound in the analyzed set, so a
// packages-only run (no frame reader in scope) stays quiet.
func checkKindHandled(prog *Program, pkgs []*Package, universes []*kindUniverse, report func(string, token.Pos, string, ...any)) {
	for _, u := range universes {
		if !u.bounded {
			continue
		}
		handled := make(map[*types.Const]bool)
		for _, pkg := range pkgs {
			for id, obj := range pkg.Info.Uses {
				c, ok := obj.(*types.Const)
				if !ok {
					continue
				}
				if _, declared := u.declFile[c]; !declared {
					continue
				}
				if prog.Fset.Position(id.Pos()).Filename == u.declFile[c] {
					continue // the iota block and String method don't handle anything
				}
				handled[c] = true
			}
		}
		for _, c := range u.consts {
			if !handled[c] {
				report("kind-unhandled", c.Pos(),
					"codepoint %s is declared but no consumer handles it or counts it as unknown (reference it in a dispatch switch or raise the decode bound handling)",
					c.Name())
			}
		}
	}
}

// codecPair is an Encode method and its Decode counterpart.
type codecPair struct {
	name   string // "Marker" for MarkerBlock.Encode / DecodeMarker
	encode *ast.FuncDecl
	decode *ast.FuncDecl
}

// codecPairs matches XBlock.Encode methods with DecodeX functions.
func codecPairs(pkg *Package) []*codecPair {
	encodes := make(map[string]*ast.FuncDecl) // base name -> Encode decl
	decodes := make(map[string]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && fd.Name.Name == "Encode" {
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if recv := receiverNamed(fn); recv != nil {
					encodes[strings.TrimSuffix(recv.Obj().Name(), "Block")] = fd
				}
			}
			if fd.Recv == nil {
				if base, ok := strings.CutPrefix(fd.Name.Name, "Decode"); ok && base != "" {
					decodes[base] = fd
				}
			}
		}
	}
	names := make([]string, 0, len(encodes))
	for name := range encodes {
		if decodes[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []*codecPair
	for _, name := range names {
		out = append(out, &codecPair{name: name, encode: encodes[name], decode: decodes[name]})
	}
	return out
}

// sizeSymbols collects the package-level size vocabulary a codec body
// references: integer constants (excluding codepoints — they name
// kinds, not layout) and *WireLen helper functions.
func sizeSymbols(pkg *Package, body *ast.BlockStmt, universes []*kindUniverse) map[string]token.Pos {
	syms := make(map[string]token.Pos)
	scope := pkg.Types.Scope()
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		switch obj := pkg.Info.Uses[id].(type) {
		case *types.Const:
			if obj.Pkg() != pkg.Types || scope.Lookup(obj.Name()) != obj {
				return true
			}
			if obj.Val().Kind() != constant.Int {
				return true // magics are strings; only layout numbers count
			}
			for _, u := range universes {
				if types.Identical(obj.Type(), u.typ) {
					return true
				}
			}
			syms[obj.Name()] = id.Pos()
		case *types.Func:
			if obj.Pkg() == pkg.Types && scope.Lookup(obj.Name()) == obj && strings.HasSuffix(obj.Name(), "WireLen") {
				syms[obj.Name()] = id.Pos()
			}
		}
		return true
	})
	return syms
}

// checkPairConsts flags size-vocabulary asymmetry between the two
// halves of a codec pair.
func checkPairConsts(pkg *Package, pair *codecPair, universes []*kindUniverse, report func(string, token.Pos, string, ...any)) {
	enc := sizeSymbols(pkg, pair.encode.Body, universes)
	dec := sizeSymbols(pkg, pair.decode.Body, universes)
	for _, sym := range sortedKeys(enc) {
		if _, ok := dec[sym]; !ok {
			report("pair-consts", pair.decode.Pos(),
				"Decode%s does not reference %s but (%s).Encode does; the codec halves disagree about layout",
				pair.name, sym, encodeRecvName(pair.encode))
		}
	}
	for _, sym := range sortedKeys(dec) {
		if _, ok := enc[sym]; !ok {
			report("pair-consts", pair.encode.Pos(),
				"(%s).Encode does not reference %s but Decode%s does; the codec halves disagree about layout",
				encodeRecvName(pair.encode), sym, pair.name)
		}
	}
}

func encodeRecvName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return "?"
}

func sortedKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// crcUse is one checksum computation: the span the CRC covers and the
// slot it is stored to / read from (normalized source text).
type crcUse struct {
	span, slot string
	pos        token.Pos
}

// crcUses finds ctrlCRC calls in a body. On the encode side the slot is
// the destination of the enclosing PutUint32; on the decode side it is
// the Uint32 operand the checksum is compared against.
func crcUses(body *ast.BlockStmt) []crcUse {
	var out []crcUse
	crcCallOf := func(e ast.Expr) *ast.CallExpr {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "ctrlCRC" {
				return call
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "ctrlCRC" {
				return call
			}
		}
		return nil
	}
	callNamed := func(e ast.Expr, name string) *ast.CallExpr {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == name {
			return call
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == name {
			return call
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Encode idiom: binary.BigEndian.PutUint32(slot, ctrlCRC(span)).
			if put := callNamed(n, "PutUint32"); put != nil && len(put.Args) == 2 {
				if crc := crcCallOf(put.Args[1]); crc != nil && len(crc.Args) == 1 {
					out = append(out, crcUse{
						span: types.ExprString(crc.Args[0]),
						slot: types.ExprString(put.Args[0]),
						pos:  crc.Pos(),
					})
				}
			}
		case *ast.BinaryExpr:
			// Decode idiom: ctrlCRC(span) != binary.BigEndian.Uint32(slot).
			if n.Op != token.NEQ && n.Op != token.EQL {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
				crc := crcCallOf(pair[0])
				get := callNamed(pair[1], "Uint32")
				if crc != nil && len(crc.Args) == 1 && get != nil && len(get.Args) == 1 {
					out = append(out, crcUse{
						span: types.ExprString(crc.Args[0]),
						slot: types.ExprString(get.Args[0]),
						pos:  crc.Pos(),
					})
				}
			}
		}
		return true
	})
	return out
}

// checkCRCSpans flags CRC span/slot disagreement inside a codec pair.
func checkCRCSpans(pkg *Package, pair *codecPair, report func(string, token.Pos, string, ...any)) {
	enc := crcUses(pair.encode.Body)
	dec := crcUses(pair.decode.Body)
	if len(enc) == 0 || len(dec) == 0 {
		if len(enc) != len(dec) {
			side, pos := "Decode"+pair.name, pair.decode.Pos()
			if len(dec) > 0 {
				side, pos = "("+encodeRecvName(pair.encode)+").Encode", pair.encode.Pos()
			}
			report("crc-span", pos,
				"%s has no CRC guard but its counterpart checksums the block; a corrupt frame passes on one side only",
				side)
		}
		return
	}
	key := func(us []crcUse) string {
		parts := make([]string, len(us))
		for i, u := range us {
			parts[i] = u.span + "@" + u.slot
		}
		sort.Strings(parts)
		return strings.Join(parts, ", ")
	}
	if ek, dk := key(enc), key(dec); ek != dk {
		report("crc-span", dec[0].pos,
			"CRC guard mismatch: encode checksums %s, decode checks %s; the two sides cover different field spans",
			ek, dk)
	}
}
