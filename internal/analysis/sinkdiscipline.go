package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SinkDiscipline enforces the event-emission contract of the
// observability layer: protocol events are born inside the obs
// collector (Collector.emit stamps the sequence number and timebase and
// fans out to sinks), so code outside internal/obs must not construct
// obs.Event values or invoke sink Event methods directly — with one
// exemption for forwarding sinks, which may chain to another sink from
// inside their own Event method. Additionally, hot-path code
// (//stripe:hotpath, transitively) may emit observability only through
// the nil-safe, sampled *obs.Collector hooks: calling a Tracer,
// Histogram, Checker or Sink method directly from a hot function
// bypasses the sampling and nil-gating that keep instrumentation inside
// its overhead budget.
const sinkDisciplineName = "sinkdiscipline"

var SinkDiscipline = &Pass{
	Name: sinkDisciplineName,
	Doc:  "protocol events are emitted only via the obs sink API; hot paths only via sampled Collector hooks",
	Run:  runSinkDiscipline,
}

const obsPkgSuffix = "/internal/obs"

func runSinkDiscipline(prog *Program, pkgs []*Package) []Diagnostic {
	var ds []Diagnostic
	obsPath := prog.ModPath + obsPkgSuffix

	for _, pkg := range pkgs {
		if pkg.Path == obsPath {
			continue // the collector is where events are made
		}
		info := pkg.Info
		for _, file := range pkg.Files {
			var enclosing []*ast.FuncDecl
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					return true
				}
				if fd, ok := n.(*ast.FuncDecl); ok {
					enclosing = append(enclosing, fd)
					// Popping is unnecessary: FuncDecls don't nest.
				}
				switch n := n.(type) {
				case *ast.CompositeLit:
					if isObsNamed(info.Types[n].Type, obsPath, "Event") {
						ds = append(ds, Diagnostic{
							Pos:  prog.Fset.Position(n.Pos()),
							Pass: sinkDisciplineName,
							Msg:  "obs.Event constructed outside internal/obs; events are born in the collector (use its On*/Trace* hooks)",
						})
					}
				case *ast.CallExpr:
					callee := calleeOf(info, n)
					if !isSinkEventMethod(callee, obsPath) {
						return true
					}
					// A forwarding sink may chain from inside its own
					// Event method.
					if len(enclosing) > 0 {
						if last := enclosing[len(enclosing)-1]; isEventMethodDecl(pkg, last, obsPath) {
							return true
						}
					}
					ds = append(ds, Diagnostic{
						Pos:  prog.Fset.Position(n.Pos()),
						Pass: sinkDisciplineName,
						Msg:  "direct sink Event call outside internal/obs; attach the sink to a Collector and emit through its hooks",
					})
				}
				return true
			})
		}
	}

	// Hot-path emission rule: inside the transitive hot set, obs types
	// other than the Collector are off limits.
	hot, _ := hotSet(prog, pkgs)
	for _, hf := range hot {
		if hf.pkg.Path == obsPath || hf.decl.Body == nil {
			continue
		}
		info := hf.pkg.Info
		ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(info, call)
			recv := receiverNamed(callee)
			if recv == nil || pkgPathOfObj(recv.Obj()) != obsPath {
				return true
			}
			if recv.Obj().Name() == "Collector" {
				return true // the sanctioned nil-safe, sampled hook surface
			}
			ds = append(ds, Diagnostic{
				Pos:  prog.Fset.Position(call.Pos()),
				Pass: sinkDisciplineName,
				Msg: fmt.Sprintf("%s (hot via %s): calls (%s).%s directly; hot paths emit only through the sampled *obs.Collector hooks",
					funcName(hf.fn), hf.chain, recv.Obj().Name(), callee.Name()),
			})
			return true
		})
	}
	return ds
}

// isObsNamed reports whether t is the named type obsPath.name.
func isObsNamed(t types.Type, obsPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && pkgPathOfObj(obj) == obsPath
}

// isSinkEventMethod reports whether fn is a method named Event taking a
// single obs.Event — the obs.Sink interface method or any concrete
// implementation of it.
func isSinkEventMethod(fn *types.Func, obsPath string) bool {
	if fn == nil || fn.Name() != "Event" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	return isObsNamed(sig.Params().At(0).Type(), obsPath, "Event")
}

// isEventMethodDecl reports whether the declaration is itself a sink
// Event method (the forwarding exemption).
func isEventMethodDecl(pkg *Package, fd *ast.FuncDecl, obsPath string) bool {
	if fd.Recv == nil {
		return false
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	return ok && isSinkEventMethod(fn, obsPath)
}

// receiverNamed returns the named type of a method's receiver (through
// one pointer), or nil for plain functions.
func receiverNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func pkgPathOfObj(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
