package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath enforces the hot-path discipline behind the <5% observability
// overhead budget: a function annotated //stripe:hotpath — the striper
// select/update path, the resequencer insert/drain path, the collector
// and tracer record paths — must not allocate, acquire locks, call
// fmt/log/reflect, start goroutines, or perform blocking channel
// operations. The rule is transitive over the in-module static call
// graph; //stripe:allowescape (with a mandatory reason) exempts an
// amortized or cold callee, and dynamic calls (interface methods, func
// values) end traversal — the scheduler and channel interfaces are the
// designed seams, and their implementations carry their own
// annotations.
const hotPathName = "hotpath"

var HotPath = &Pass{
	Name: hotPathName,
	Doc:  "//stripe:hotpath functions must be allocation-, lock- and blocking-free, transitively",
	Run:  runHotPath,
}

// hotBannedPkgs are packages a hot path must never enter: formatting
// and reflection allocate and are unbounded; sync primitives block.
// sync/atomic is a different package and remains allowed.
var hotBannedPkgs = map[string]string{
	"fmt":     "formats and allocates",
	"log":     "locks and formats",
	"reflect": "reflection is unbounded and allocates",
	"sync":    "lock/blocking primitive",
}

func runHotPath(prog *Program, pkgs []*Package) []Diagnostic {
	var ds []Diagnostic
	hot, escapes := hotSet(prog, pkgs)
	for _, hf := range hot {
		if hf.decl.Body == nil {
			continue
		}
		ds = append(ds, checkHotBody(prog, hf)...)
	}
	// An escape hatch must say why it is one.
	for _, hf := range escapes {
		if annotationsOf(hf.decl).escapeWhy == "" {
			ds = append(ds, Diagnostic{
				Pos:  prog.Fset.Position(hf.decl.Pos()),
				Pass: hotPathName,
				Msg: fmt.Sprintf("%s: //stripe:allowescape needs a reason (reached via %s)",
					funcName(hf.fn), hf.chain),
			})
		}
	}
	return ds
}

func checkHotBody(prog *Program, hf *hotFunc) []Diagnostic {
	var ds []Diagnostic
	info := hf.pkg.Info
	report := func(n ast.Node, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Pos:  prog.Fset.Position(n.Pos()),
			Pass: hotPathName,
			Msg:  fmt.Sprintf("%s (hot via %s): %s", funcName(hf.fn), hf.chain, fmt.Sprintf(format, args...)),
		})
	}
	comms := selectCommOps(hf.decl.Body)
	funs := callFuns(hf.decl.Body)
	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure allocation (func literal)")
			return false // its body runs elsewhere; don't double-report
		case *ast.SelectorExpr:
			// A method value (x.M not immediately called) binds its
			// receiver in a fresh closure on every evaluation.
			if s, ok := info.Selections[n]; ok && s.Kind() == types.MethodVal && !funs[n] {
				report(n, "allocation: method value %s binds its receiver in a closure; hoist it to a field or call it directly", n.Sel.Name)
			}
		case *ast.CallExpr:
			checkHotCall(info, n, report)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n, "allocation: slice literal")
			case *types.Map:
				report(n, "allocation: map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "allocation: address of composite literal")
				}
			} else if n.Op == token.ARROW && !comms[n] {
				report(n, "blocking channel receive")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.Types[n.X].Type) {
				report(n, "allocation: string concatenation")
			}
		case *ast.SendStmt:
			if !comms[n] {
				report(n, "blocking channel send")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				report(n, "blocking select (no default case)")
			}
		case *ast.GoStmt:
			report(n, "goroutine start allocates and defers work")
		case *ast.RangeStmt:
			if n.X != nil {
				if t := info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						report(n, "blocking range over channel")
					}
				}
			}
		}
		return true
	})
	return ds
}

func checkHotCall(info *types.Info, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	switch {
	case isBuiltin(info, call, "make"):
		report(call, "allocation: make")
		return
	case isBuiltin(info, call, "new"):
		report(call, "allocation: new")
		return
	case isBuiltin(info, call, "append"):
		report(call, "allocation: append may grow its backing array")
		return
	case isConversion(info, call):
		to := info.Types[call].Type
		var from types.Type
		if len(call.Args) == 1 {
			from = info.Types[call.Args[0]].Type
		}
		if allocatingConversion(from, to) {
			report(call, "allocation: %s <-> string conversion copies", types.TypeString(to, nil))
		}
		return
	}
	callee := calleeOf(info, call)
	if callee == nil {
		return // func value / builtin handled above
	}
	if why, banned := hotBannedPkgs[pkgPathOf(callee)]; banned {
		report(call, "calls %s.%s (%s)", pkgPathOf(callee), callee.Name(), why)
	}
}

// allocatingConversion reports conversions that copy memory:
// string <-> []byte and string <-> []rune.
func allocatingConversion(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	return (isStringType(from) && isByteOrRuneSlice(to)) ||
		(isByteOrRuneSlice(from) && isStringType(to))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// callFuns collects the expressions in call position, so the method
// value rule can tell x.M() (a call, fine) from x.M (a closure).
func callFuns(body *ast.BlockStmt) map[ast.Expr]bool {
	funs := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			funs[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	return funs
}

// selectCommOps collects the channel operations that are select comm
// clauses (or the receive expression inside one). They are judged by
// the SelectStmt rule — a select with a default case polls, so its
// sends and receives never block on their own.
func selectCommOps(body *ast.BlockStmt) map[ast.Node]bool {
	ops := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ops[cc.Comm] = true
			switch s := cc.Comm.(type) {
			case *ast.ExprStmt:
				ops[ast.Unparen(s.X)] = true
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					ops[ast.Unparen(r)] = true
				}
			}
		}
		return true
	})
	return ops
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
