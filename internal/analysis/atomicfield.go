package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces the metrics core's concurrency contract: a
// struct field accessed through sync/atomic anywhere must be accessed
// atomically at every site — one plain load next to a thousand atomic
// ones is still a data race — and 64-bit fields driven by the
// address-taking sync/atomic functions must sit at 8-byte-aligned
// offsets even under 32-bit struct layout (the runtime faults on
// misaligned 64-bit atomics on 32-bit targets).
//
// Typed atomics (atomic.Int64 and friends) are access-safe by
// construction and alignment-safe by their embedded align64 marker, but
// copying one copies the value non-atomically, so value copies of
// typed-atomic fields are findings too. Keyed composite-literal
// initialization is exempt: a value not yet published cannot race.
const atomicFieldName = "atomicfield"

var AtomicField = &Pass{
	Name: atomicFieldName,
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere, with 64-bit alignment",
	Run:  runAtomicField,
}

func runAtomicField(prog *Program, pkgs []*Package) []Diagnostic {
	var ds []Diagnostic

	// Pass 1: collect old-style atomic fields — fields whose address is
	// passed to a sync/atomic function — plus the selector nodes that
	// appear inside those sanctioned call arguments.
	atomicFields := make(map[*types.Var]string) // field -> atomic fn that marked it
	wide := make(map[*types.Var]bool)           // 64-bit atomic ops seen
	owners := make(map[*types.Var]*types.Struct)
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(info, call)
				if callee == nil || pkgPathOf(callee) != "sync/atomic" || len(call.Args) == 0 {
					return true
				}
				sel := addressedField(info, call.Args[0])
				if sel == nil {
					return true
				}
				field := fieldOf(info, sel)
				if field == nil {
					return true
				}
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = callee.Name()
				}
				if strings.Contains(callee.Name(), "Int64") || strings.Contains(callee.Name(), "Uint64") {
					wide[field] = true
				}
				if s := recvStruct(info, sel); s != nil {
					owners[field] = s
				}
				return true
			})
		}
	}

	// Pass 2: every other access to those fields must be atomic, and
	// typed-atomic fields must never be copied by value.
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			parents := parentMap(file)
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field := fieldOf(info, sel)
				if field == nil {
					return true
				}
				if via, isAtomic := atomicFields[field]; isAtomic {
					if !isAddressOperand(parents, sel) {
						ds = append(ds, Diagnostic{
							Pos:  prog.Fset.Position(sel.Pos()),
							Pass: atomicFieldName,
							Msg: fmt.Sprintf("non-atomic access of field %s, elsewhere accessed via atomic.%s",
								fieldName(field), via),
						})
					}
					return true
				}
				if isTypedAtomic(field.Type()) && !typedAtomicUseOK(info, parents, sel) {
					ds = append(ds, Diagnostic{
						Pos:  prog.Fset.Position(sel.Pos()),
						Pass: atomicFieldName,
						Msg: fmt.Sprintf("field %s of type %s copied by value; use its atomic methods or take its address",
							fieldName(field), field.Type()),
					})
				}
				return true
			})
		}
	}

	// Pass 3: 64-bit alignment of old-style atomic fields under 32-bit
	// layout. Typed atomics carry their own align64 padding.
	sizes := types.SizesFor("gc", "386")
	for field, isWide := range wide {
		if !isWide {
			continue
		}
		st := owners[field]
		if st == nil {
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		idx := -1
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
			if st.Field(i) == field {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		offsets := sizes.Offsetsof(fields)
		if offsets[idx]%8 != 0 {
			ds = append(ds, Diagnostic{
				Pos:  prog.Fset.Position(field.Pos()),
				Pass: atomicFieldName,
				Msg: fmt.Sprintf("64-bit atomic field %s at 32-bit offset %d (not 8-byte aligned); move it first in the struct or use atomic.%s",
					fieldName(field), offsets[idx], alignedTypeFor(field)),
			})
		}
	}
	return ds
}

// addressedField unwraps &expr to a field selector, or nil.
func addressedField(info *types.Info, arg ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// recvStruct returns the struct type the selection reads through
// (after pointer indirection), or nil.
func recvStruct(info *types.Info, sel *ast.SelectorExpr) *types.Struct {
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	t := s.Recv()
	// Walk the embedding path to the struct that directly owns the field.
	for i, idx := range s.Index() {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		if i == len(s.Index())-1 {
			return st
		}
		t = st.Field(idx).Type()
	}
	return nil
}

// parentMap records each node's parent within one file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isAddressOperand reports whether the selector is the direct operand
// of &: atomic call arguments are, and passing the field's address to
// an atomic helper is equally sanctioned.
func isAddressOperand(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	p := parents[sel]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	u, ok := p.(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

// isTypedAtomic reports whether t is one of sync/atomic's typed
// atomics (atomic.Int64, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// typedAtomicUseOK reports whether a selector to a typed-atomic field
// is used safely: as the receiver of a method call, or with its
// address taken.
func typedAtomicUseOK(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	if isAddressOperand(parents, sel) {
		return true
	}
	outer, ok := parents[sel].(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[outer]
	return ok && s.Kind() == types.MethodVal
}

func fieldName(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// alignedTypeFor names the typed-atomic replacement for a raw 64-bit
// atomic field, for the fix suggestion.
func alignedTypeFor(v *types.Var) string {
	if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}
