package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder builds a static lock-acquisition graph over the session
// and its protocol engines and enforces the discipline that kept the
// Close lost-wakeup fix honest:
//
//   - cycle: two code paths that acquire the same pair of locks in
//     opposite orders can deadlock; the acquisition graph (edges from
//     every held lock to each newly acquired one, intraprocedurally
//     plus through static-call summaries) must be acyclic.
//   - order: `//stripe:locks A<B` comments declare the intended global
//     order; a discovered acquisition contradicting a declaration is a
//     finding even before a full cycle exists.
//   - relock: re-acquiring a mutex already held (directly, or by
//     calling a function whose summary acquires it) self-deadlocks —
//     Go mutexes are not reentrant.
//   - wait-holding / wake-holding: Cond.Wait parks holding only the
//     cond's own lock; waking or waiting while a foreign lock is held
//     extends that lock's hold time across a scheduling boundary.
//   - block-holding / netio-holding: blocking channel operations or
//     calls into package net while multiple locks are held (one lock
//     for net I/O) stall every path that needs them.
//   - unlock-path: a lock taken in a function must be released on
//     every return path (deferred unlocks count), mirroring what the
//     runtime's mutex profiler can only observe after the hang.
//
// `//stripe:allowblock <reason>` on a function exempts it from the
// blocking rules (only those); the reason is mandatory. Dynamic calls
// (interface methods, func values) end summary traversal, exactly like
// the hotpath pass: the channel and sink interfaces are designed seams.
const lockOrderName = "lockorder"

var LockOrder = &Pass{
	Name: lockOrderName,
	Doc:  "lock acquisitions are acyclic, declared-order-consistent, and never wrap blocking ops or leak past returns",
	InScope: func(pkgPath string) bool {
		if !strings.Contains(pkgPath, "/") {
			return true // the module root package (session, serve, stripe)
		}
		for _, s := range []string{"/internal/core", "/internal/flowcontrol", "/internal/obs"} {
			if strings.HasSuffix(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: runLockOrder,
}

func runLockOrder(prog *Program, pkgs []*Package) []Diagnostic {
	var ds []Diagnostic
	report := func(rule string, pos token.Pos, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Pass: lockOrderName,
			Rule: rule,
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	g := NewCallGraph(prog, pkgs)
	li := ComputeLockInfo(prog, g)
	declared := parseLockDecls(prog, pkgs, li, report)
	order := NewGraph()

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ann := annotationsOf(fd)
				if ann.allowblock && ann.blockWhy == "" {
					report("annotation", fd.Pos(), "%s: //stripe:allowblock needs a reason",
						fd.Name.Name)
				}
				w := &lockWalker{
					prog: prog, pkg: pkg, li: li, fd: fd,
					comms: selectCommOps(fd.Body), allowBlock: ann.allowblock,
					order: order, declared: declared, report: report,
				}
				held, terminated := w.walkBlock(fd.Body.List, nil)
				if !terminated {
					for _, h := range held {
						if !h.deferred {
							report("unlock-path", h.pos, "%s: %s locked here is not unlocked on every path",
								fd.Name.Name, li.LockName(h.v))
						}
					}
				}
			}
		}
	}

	for _, cyc := range order.Cycles() {
		pos := token.NoPos
		next := cyc[(0+1)%len(cyc)]
		if e, ok := order.Edge(cyc[0], next); ok {
			pos = e.Pos
		}
		report("cycle", pos, "lock-order cycle: %s (one edge witnessed here; acquire these locks in one global order)",
			CycleString(cyc))
	}
	return ds
}

// parseLockDecls collects //stripe:locks A<B<C declarations from every
// comment in the analyzed packages, expanding a chain to all implied
// ordered pairs. Unknown lock names are findings: a declaration that
// names nothing real enforces nothing.
func parseLockDecls(prog *Program, pkgs []*Package, li *LockInfo, report func(string, token.Pos, string, ...any)) map[[2]string]token.Pos {
	known := make(map[string]bool)
	for _, name := range li.names {
		known[name] = true
	}
	declared := make(map[[2]string]token.Pos)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					rest, ok := strings.CutPrefix(text, directiveLocks)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					names := strings.Split(strings.TrimSpace(rest), "<")
					if len(names) < 2 {
						report("annotation", c.Pos(), "//stripe:locks needs at least two '<'-separated lock names")
						continue
					}
					for i := range names {
						names[i] = strings.TrimSpace(names[i])
						if !known[names[i]] {
							report("annotation", c.Pos(), "//stripe:locks names unknown lock %q (locks render as Owner.field or pkg.var)", names[i])
						}
					}
					for i := 0; i < len(names); i++ {
						for j := i + 1; j < len(names); j++ {
							declared[[2]string{names[i], names[j]}] = c.Pos()
						}
					}
				}
			}
		}
	}
	return declared
}

// heldLock is one mutex the walker believes the current function holds.
type heldLock struct {
	v        *types.Var
	pos      token.Pos // acquisition site
	deferred bool      // release is scheduled via defer
}

// lockWalker walks one function body in source order, tracking the
// held-lock set. Branches are walked on copies; when both arms continue
// the held sets are intersected (a lock released on only one arm stops
// being assumed held). Loop bodies are walked once on a copy for their
// findings, with effects discarded — the conservative direction.
type lockWalker struct {
	prog       *Program
	pkg        *Package
	li         *LockInfo
	fd         *ast.FuncDecl
	comms      map[ast.Node]bool
	allowBlock bool
	order      *Graph
	declared   map[[2]string]token.Pos
	report     func(rule string, pos token.Pos, format string, args ...any)
}

func copyHeld(h []heldLock) []heldLock { return append([]heldLock(nil), h...) }

func heldIndex(h []heldLock, v *types.Var) int {
	for i := range h {
		if h[i].v == v {
			return i
		}
	}
	return -1
}

func heldNames(li *LockInfo, h []heldLock) string {
	names := make([]string, len(h))
	for i := range h {
		names[i] = li.LockName(h[i].v)
	}
	return strings.Join(names, ", ")
}

func (w *lockWalker) walkBlock(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = w.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if isPanicCall(w.pkg.Info, s.X) {
			return held, true
		}
		return w.scan(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scan(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scan(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = w.scan(e, held)
					}
				}
			}
		}
		return held, false
	case *ast.IncDecStmt:
		return w.scan(s.X, held), false
	case *ast.SendStmt:
		if !w.comms[s] {
			w.checkBlocking(s.Pos(), "channel send", held)
		}
		held = w.scan(s.Chan, held)
		return w.scan(s.Value, held), false
	case *ast.DeferStmt:
		return w.handleDefer(s, held), false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scan(e, held)
		}
		for _, h := range held {
			if !h.deferred {
				w.report("unlock-path", s.Pos(), "%s: returns still holding %s (locked at %s)",
					w.fd.Name.Name, w.li.LockName(h.v), w.prog.Fset.Position(h.pos))
			}
		}
		return held, true
	case *ast.BranchStmt:
		return held, true // break/continue/goto leave the sequential path
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scan(s.Cond, held)
		bodyHeld, bodyTerm := w.walkBlock(s.Body.List, copyHeld(held))
		elseHeld, elseTerm := copyHeld(held), false
		if s.Else != nil {
			elseHeld, elseTerm = w.walkStmt(s.Else, copyHeld(held))
		}
		switch {
		case bodyTerm && elseTerm:
			return held, s.Else != nil // if/else both return: flow ends; a bare if keeps the fall-through
		case bodyTerm:
			return elseHeld, false
		case elseTerm:
			return bodyHeld, false
		default:
			return intersectHeld(bodyHeld, elseHeld), false
		}
	case *ast.BlockStmt:
		return w.walkBlock(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scan(s.Cond, held)
		w.walkBlock(s.Body.List, copyHeld(held))
		// An infinite loop with no way out never falls through.
		return held, s.Cond == nil && !containsLoopExit(s.Body)
	case *ast.RangeStmt:
		if s.X != nil {
			if t := w.pkg.Info.Types[s.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.checkBlocking(s.Pos(), "range over channel", held)
				}
			}
			held = w.scan(s.X, held)
		}
		w.walkBlock(s.Body.List, copyHeld(held))
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scan(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, e := range cc.List {
					h = w.scan(e, h)
				}
				w.walkBlock(cc.Body, h)
			}
		}
		return held, false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkBlock(cc.Body, copyHeld(held))
			}
		}
		return held, false
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.checkBlocking(s.Pos(), "select without default", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := copyHeld(held)
				if cc.Comm != nil {
					h, _ = w.walkStmt(cc.Comm, h)
				}
				w.walkBlock(cc.Body, h)
			}
		}
		return held, false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			held = w.scan(a, held)
		}
		return held, false // the spawned body runs on its own stack with no locks held
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	}
	return held, false
}

// scan walks an expression for calls and channel receives, updating
// the held set through any lock/unlock calls it contains. Function
// literals are examined on a copy of the held set (they may run inline
// via Do or defer) with their effects discarded.
func (w *lockWalker) scan(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkBlock(n.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			held = w.handleCall(n, held)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !w.comms[n] {
				w.checkBlocking(n.Pos(), "channel receive", held)
			}
		}
		return true
	})
	return held
}

// handleCall applies one call's effect on the held set and checks the
// call-sensitive rules.
func (w *lockWalker) handleCall(call *ast.CallExpr, held []heldLock) []heldLock {
	info := w.pkg.Info
	op, target := w.li.classifyCall(info, call)
	switch op {
	case "lock":
		if target == nil {
			return held
		}
		if heldIndex(held, target) >= 0 {
			w.report("relock", call.Pos(), "%s: acquires %s while already holding it; Go mutexes are not reentrant, this self-deadlocks",
				w.fd.Name.Name, w.li.LockName(target))
			return held
		}
		for _, h := range held {
			w.recordEdge(h.v, target, call.Pos(), "")
		}
		return append(held, heldLock{v: target, pos: call.Pos()})
	case "unlock":
		if i := heldIndex(held, target); i >= 0 {
			return append(held[:i:i], held[i+1:]...)
		}
		return held
	case "wait":
		own := w.li.CondLock[target]
		for _, h := range held {
			if h.v != own && !w.allowBlock {
				w.report("wait-holding", call.Pos(), "%s: Cond.Wait parks while holding %s, which is not the cond's own lock; waiters on %s stall for the full park",
					w.fd.Name.Name, w.li.LockName(h.v), w.li.LockName(h.v))
			}
		}
		return held
	case "wake":
		own := w.li.CondLock[target]
		for _, h := range held {
			if h.v != own && !w.allowBlock {
				w.report("wake-holding", call.Pos(), "%s: Cond.Broadcast/Signal while holding %s (a second lock); move the wake outside the foreign critical section",
					w.fd.Name.Name, w.li.LockName(h.v))
			}
		}
		return held
	case "netio":
		if len(held) >= 1 && !w.allowBlock {
			w.report("netio-holding", call.Pos(), "%s: net I/O while holding %s; socket stalls become lock stalls",
				w.fd.Name.Name, heldNames(w.li, held))
		}
		return held
	}
	// An ordinary call: fold in the callee's transitive lock summary.
	callee := calleeOf(info, call)
	sum := w.li.Summary(callee)
	if sum == nil {
		return held
	}
	for v, acq := range sum.Acquires {
		via := funcName(callee)
		if acq.Via != "" {
			via += " -> " + acq.Via
		}
		if heldIndex(held, v) >= 0 {
			w.report("relock", call.Pos(), "%s: calls %s, which acquires %s already held here; Go mutexes are not reentrant, this self-deadlocks",
				w.fd.Name.Name, via, w.li.LockName(v))
			continue
		}
		for _, h := range held {
			w.recordEdge(h.v, v, call.Pos(), via)
		}
	}
	if sum.Blocks != nil && len(held) >= 2 && !w.allowBlock {
		w.report("block-holding", call.Pos(), "%s: calls %s, which may block (%s), while holding %d locks (%s)",
			w.fd.Name.Name, funcName(callee), sum.Blocks.Kind, len(held), heldNames(w.li, held))
	}
	return held
}

// recordEdge adds from -> to to the acquisition graph and checks it
// against the declared order.
func (w *lockWalker) recordEdge(from, to *types.Var, pos token.Pos, via string) {
	fn, tn := w.li.LockName(from), w.li.LockName(to)
	why := fmt.Sprintf("%s acquires %s while holding %s", w.fd.Name.Name, tn, fn)
	if via != "" {
		why += " via " + via
	}
	w.order.AddEdge(GraphEdge{From: fn, To: tn, Pos: pos, Why: why})
	if declPos, ok := w.declared[[2]string{tn, fn}]; ok {
		w.report("order", pos, "%s: acquires %s while holding %s, contradicting //stripe:locks %s<%s (declared at %s)",
			w.fd.Name.Name, tn, fn, tn, fn, w.prog.Fset.Position(declPos))
	}
}

// checkBlocking flags a direct blocking operation performed while more
// than one lock is held.
func (w *lockWalker) checkBlocking(pos token.Pos, what string, held []heldLock) {
	if len(held) < 2 || w.allowBlock {
		return
	}
	w.report("block-holding", pos, "%s: %s while holding %d locks (%s); every path needing them stalls behind the op",
		w.fd.Name.Name, what, len(held), heldNames(w.li, held))
}

// handleDefer processes defer statements: deferred unlocks (directly
// or inside a deferred closure) satisfy the unlock-on-all-paths rule.
func (w *lockWalker) handleDefer(s *ast.DeferStmt, held []heldLock) []heldLock {
	markDeferred := func(v *types.Var) {
		if i := heldIndex(held, v); i >= 0 {
			held[i].deferred = true
		}
	}
	if op, target := w.li.classifyCall(w.pkg.Info, s.Call); op == "unlock" && target != nil {
		markDeferred(target)
		return held
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, target := w.li.classifyCall(w.pkg.Info, call); op == "unlock" && target != nil {
					markDeferred(target)
				}
			}
			return true
		})
		w.walkBlock(lit.Body.List, copyHeld(held))
		return held
	}
	for _, a := range s.Call.Args {
		held = w.scan(a, held)
	}
	return held
}

// intersectHeld keeps locks held on both arms of a branch; a deferred
// release on either arm marks the merged entry deferred.
func intersectHeld(a, b []heldLock) []heldLock {
	var out []heldLock
	for _, h := range a {
		if j := heldIndex(b, h.v); j >= 0 {
			m := h
			m.deferred = h.deferred || b[j].deferred
			out = append(out, m)
		}
	}
	return out
}

// containsLoopExit reports whether a loop body can break out of the
// loop (a break not swallowed by a nested loop, switch, or select).
func containsLoopExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // a plain break inside binds to these, not our loop
		case *ast.BranchStmt:
			// Returns don't count: they leave the function, not fall
			// through to the statements after the loop.
			if n.(*ast.BranchStmt).Tok == token.BREAK || n.(*ast.BranchStmt).Tok == token.GOTO {
				found = true
			}
		}
		return !found
	})
	return found
}

// isPanicCall reports whether the expression is a panic(...) call.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isBuiltin(info, call, "panic")
}
