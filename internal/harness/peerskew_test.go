package harness

import "testing"

// TestPeerSkewTelemetry pins the acceptance criteria of the peer
// telemetry plane on the deterministic virtual-clock scenario: the
// sender-side PeerView reports the receiver's loss on the silently
// lossy channel while the local error streak stays zero, and the
// min-filtered one-way delay estimates order the channels exactly as
// the configured asymmetric delays do.
func TestPeerSkewTelemetry(t *testing.T) {
	delays := []int64{2e6, 8e6, 20e6}
	o := runPeerSkewOne(Config{Seed: 1, Quick: true}, 4000, delays, 1, 0.30)

	if len(o.channels) != 3 || o.reports == 0 {
		t.Fatalf("scenario produced no telemetry: %+v", o)
	}
	for c, ch := range o.channels {
		if ch.errStreak != 0 {
			t.Errorf("channel %d: local error streak %d, want 0 (the loss is silent)", c, ch.errStreak)
		}
	}
	if o.channels[1].lossFrac < 0.15 {
		t.Errorf("peer loss on the lossy channel = %.3f, want > 0.15", o.channels[1].lossFrac)
	}
	if o.channels[0].lossFrac > 0.05 || o.channels[2].lossFrac > 0.05 {
		t.Errorf("peer loss leaked onto clean channels: %.3f / %.3f",
			o.channels[0].lossFrac, o.channels[2].lossFrac)
	}
	// The min-filter must order the channels as the true delays do, and
	// land close to them (the virtual clock has no queueing noise, so
	// the estimate is within one tick of exact).
	if !(o.channels[0].owdNs < o.channels[1].owdNs && o.channels[1].owdNs < o.channels[2].owdNs) {
		t.Errorf("one-way delay estimates misordered: %d %d %d",
			o.channels[0].owdNs, o.channels[1].owdNs, o.channels[2].owdNs)
	}
	for c, ch := range o.channels {
		if diff := ch.owdNs - ch.delayNs; diff < 0 || diff > 1e6 {
			t.Errorf("channel %d: estimate %d ns vs true %d ns", c, ch.owdNs, ch.delayNs)
		}
	}
	if o.skewNs < 17e6 || o.skewNs > 19e6 {
		t.Errorf("bundle skew estimate %d ns, want ~18ms", o.skewNs)
	}
	if o.delivered == 0 {
		t.Error("scenario delivered nothing")
	}
}
