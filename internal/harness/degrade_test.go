package harness

import (
	"strings"
	"testing"
)

// TestDegradeHealthScoreFlagsBeforeErrStreak is the acceptance
// assertion for evidence-based eviction: under the degrading-channel
// scenario the windowed health score flags the Gilbert-Elliott-
// impaired channel (score below threshold, with a loss or resync
// reason code) while the error-streak rule's trigger never moves —
// impaired in-process channels drop silently, so the streak a session
// would evict on stays at zero, far from its threshold of 8.
func TestDegradeHealthScoreFlagsBeforeErrStreak(t *testing.T) {
	out := RunDegrade(Config{Seed: 7, Quick: true})
	if out.Report.Stalled {
		t.Fatalf("degrade run stalled: %+v", out.Report)
	}
	if out.Windows == nil || len(out.Scores) != 4 {
		t.Fatalf("no windowed rollup: %+v", out.Windows)
	}

	// The error-streak rule has seen nothing: score-based detection is
	// strictly earlier than streak-based eviction here.
	if out.Report.MaxErrStreak != 0 {
		t.Fatalf("expected silent loss (err streak 0), got %d", out.Report.MaxErrStreak)
	}

	deg := out.Scores[1]
	if deg.Score >= DegradeScoreThreshold {
		t.Fatalf("degraded channel scored %d, want < %d (rates %+v)",
			deg.Score, DegradeScoreThreshold, out.Windows.ScoreWindow().Channels[1])
	}
	hasEvidence := false
	for _, r := range deg.Reasons {
		if r == "loss" || r == "resync" || r == "latency" {
			hasEvidence = true
		}
	}
	if !hasEvidence {
		t.Fatalf("degraded channel lacks a loss/resync/latency reason: %v", deg.Reasons)
	}

	// The clean channels must stay comfortably above the bar: the score
	// separates the degraded channel instead of condemning the bundle.
	for _, c := range []int{0, 2, 3} {
		if s := out.Scores[c]; s.Score < 80 {
			t.Fatalf("clean channel %d scored %d (%s), want >= 80",
				c, s.Score, strings.Join(s.Reasons, ","))
		}
	}

	// The windowed loss estimate on the degraded channel must reflect
	// the ~35% effective Gilbert-Elliott loss, not the 1% baseline.
	sp := out.Windows.ScoreWindow()
	if lf := sp.Channels[1].LossFrac; lf < 0.15 {
		t.Fatalf("degraded channel loss frac %.3f, want >= 0.15", lf)
	}
	for _, c := range []int{0, 2, 3} {
		if lf := sp.Channels[c].LossFrac; lf > 0.10 {
			t.Fatalf("clean channel %d loss frac %.3f, want <= 0.10", c, lf)
		}
	}
}
