package harness

import (
	"fmt"
	"sort"
	"strings"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "video",
		Title: "Section 6.3: quasi-FIFO delivery of an NV-like video stream",
		Run:   runVideo,
	})
}

// runVideo regenerates the NV experiment: a synthetic video trace is
// striped over four lossy channels with quasi-FIFO delivery, and frame
// damage is compared against a hypothetical channel with the identical
// loss pattern but perfect ordering. The paper found the playback
// difference imperceptible below ~40% loss, and that at 40% the damage
// from pure loss already equals the damage from loss plus reordering —
// i.e. reordering's marginal contribution is insignificant.
//
// A frame is "usable" when every packet of it is delivered, and all of
// them arrive before any packet of frame f+3 (a two-frame playout
// jitter buffer, comfortably under NV's interactive latency budget).
func runVideo(cfg Config) *Result {
	frames := 2000
	if cfg.Quick {
		frames = 400
	}
	vt, err := trace.SynthesizeVideo(trace.VideoConfig{
		Frames: frames,
		GOP:    8,
		IMean:  8000,
		PMean:  1500,
		MTU:    1024,
		Seed:   cfg.Seed + 7,
	})
	if err != nil {
		panic(err)
	}
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}

	var b strings.Builder
	fmt.Fprintln(&b, "# Section 6.3 NV video: synthetic trace striped over 4 lossy channels,")
	fmt.Fprintln(&b, "# quasi-FIFO delivery vs the same loss with perfect ordering.")
	fmt.Fprintln(&b, row("loss", "usable (quasi-FIFO)", "usable (loss only)", "reorder penalty"))

	var x, quasi, pure []float64
	for _, loss := range losses {
		q := videoUsableFraction(cfg, vt, loss, true)
		p := videoUsableFraction(cfg, vt, loss, false)
		fmt.Fprintln(&b, row(fmt.Sprintf("%.0f%%", loss*100),
			fmt.Sprintf("%.4f", q),
			fmt.Sprintf("%.4f", p),
			fmt.Sprintf("%.4f", p-q)))
		x = append(x, loss*100)
		quasi = append(quasi, q)
		pure = append(pure, p)
	}
	tb := &stats.Table{Title: "NV video usability", XLabel: "loss %", YLabel: "usable frame fraction", X: x}
	tb.AddColumn("quasi-FIFO", quasi)
	tb.AddColumn("loss-only", pure)
	return &Result{ID: "video", Title: "Video quasi-FIFO", Text: b.String(), Tables: []*stats.Table{tb}}
}

// videoUsableFraction stripes the trace and scores usable frames. When
// reorder is false the delivered packets are replayed in sending order
// (perfect resequencing of whatever survived) to isolate pure loss.
func videoUsableFraction(cfg Config, vt *trace.VideoTrace, loss float64, reorder bool) float64 {
	const nch = 4
	quanta := sched.UniformQuanta(nch, 1024)
	group := channel.NewGroup(nch, channel.Impairments{Loss: loss, Seed: cfg.Seed + 11})
	st, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: group.Senders(),
		Markers:  core.MarkerPolicy{Every: 2, Position: 0},
	})
	if err != nil {
		panic(err)
	}
	rs, err := core.NewResequencer(core.ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  core.ModeLogical,
	})
	if err != nil {
		panic(err)
	}

	var delivered []*packet.Packet
	pump := func() {
		for {
			moved := false
			for c, q := range group.Queues {
				if p, ok := q.Recv(); ok {
					rs.Arrive(c, p)
					moved = true
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				delivered = append(delivered, p)
			}
			if !moved {
				return
			}
		}
	}
	for i := range vt.Packets {
		if err := st.Send(packet.NewDataSized(vt.Packets[i].Size)); err != nil {
			panic(err)
		}
		if i%16 == 0 {
			pump()
		}
	}
	pump()
	delivered = append(delivered, rs.Drain()...)

	ids := deliveredIDs(delivered)
	if !reorder {
		// Perfect ordering of the survivors: sort by ingress ID.
		sortIDs(ids)
	}

	// Score frames: all packets present, all before any packet of frame
	// f+3 in the delivery sequence.
	ppf := vt.PacketsPerFrame()
	nFrames := len(ppf)
	seen := make([]int, nFrames)
	lastPos := make([]int, nFrames) // last delivery position of frame f
	firstPos := make([]int, nFrames)
	for f := range firstPos {
		firstPos[f] = -1
	}
	for pos, id := range ids {
		f := vt.FrameOfPacket(int(id))
		seen[f]++
		lastPos[f] = pos
		if firstPos[f] == -1 {
			firstPos[f] = pos
		}
	}
	usable := 0
	for f := 0; f < nFrames; f++ {
		if seen[f] != ppf[f] {
			continue // lost packets
		}
		if f+3 < nFrames && firstPos[f+3] != -1 && lastPos[f] > firstPos[f+3] {
			continue // delivered too late for the jitter buffer
		}
		usable++
	}
	return float64(usable) / float64(nFrames)
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
