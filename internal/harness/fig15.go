package harness

import (
	"fmt"
	"strings"

	"stripe/internal/core"
	"stripe/internal/sched"
	"stripe/internal/sim"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Figure 15: application throughput vs ATM PVC capacity (7 curves)",
		Run:   runFig15,
	})
}

// fig15CPU is the receiving-workstation model calibrated so the same
// qualitative features as the paper's Pentium appear inside the sweep:
// the per-interrupt cost amortizes over coalesced batches (cheap for
// one busy interface, expensive for two half-busy ones), and total CPU
// capacity saturates inside the measured range.
var fig15CPU = sim.CPUConfig{
	PerInterrupt: 120 * sim.Microsecond,
	PerPacket:    150 * sim.Microsecond,
	PerByte:      60, // ns per byte
	Ring:         64,
	Coalesce:     sim.Millisecond,
}

// fig15Ethernet is the Ethernet member's effective rate. The paper's 10
// Mb/s Ethernet delivered about 6-7 Mb/s of application throughput;
// modelling the effective rate directly keeps the round-robin ceiling
// (2x the slower link) inside the figure, as in the paper.
const fig15Ethernet = 7e6

func fig15Sizes(seed int64) trace.SizeGen { return trace.NewBimodal(200, 1000, 0.5, seed) }

// fig15Single measures one interface alone (for the upper-bound curve).
func fig15Single(cfg Config, rate float64, d sim.Time) float64 {
	p, err := sim.BuildTCPPath(sim.PathConfig{
		Links: []sim.LinkConfig{{RateBps: rate, Delay: 500 * sim.Microsecond, Queue: 128, Seed: cfg.Seed}},
		CPU:   fig15CPU,
		TCP:   sim.TCPConfig{Sizes: fig15Sizes(cfg.Seed + 21)},
	})
	if err != nil {
		panic(err)
	}
	return p.Run(d)
}

// fig15Striped measures one striped configuration.
func fig15Striped(cfg Config, atm float64, mk func(rates []float64) sched.RoundBased, mode core.Mode, d sim.Time) float64 {
	rates := []float64{fig15Ethernet, atm}
	links := make([]sim.LinkConfig, 2)
	for i, r := range rates {
		links[i] = sim.LinkConfig{RateBps: r, Delay: 500 * sim.Microsecond, Queue: 128, Seed: cfg.Seed + int64(i)}
	}
	p, err := sim.BuildTCPPath(sim.PathConfig{
		Links:          links,
		CPU:            fig15CPU,
		Sched:          mk(rates),
		Mode:           mode,
		Markers:        core.MarkerPolicy{Every: 2, Position: 0},
		MarkerInterval: 2 * sim.Millisecond,
		TCP:            sim.TCPConfig{Sizes: fig15Sizes(cfg.Seed + 22)},
	})
	if err != nil {
		panic(err)
	}
	return p.Run(d)
}

func mkSRR(rates []float64) sched.RoundBased {
	q, err := sched.QuantaForRates(rates, 1500)
	if err != nil {
		panic(err)
	}
	return sched.MustSRR(q)
}

func mkGRR(rates []float64) sched.RoundBased {
	c, err := sched.CountsForRates(rates)
	if err != nil {
		panic(err)
	}
	s, err := sched.NewGRR(c)
	if err != nil {
		panic(err)
	}
	return s
}

func mkRR(rates []float64) sched.RoundBased {
	s, err := sched.NewRR(len(rates))
	if err != nil {
		panic(err)
	}
	return s
}

// runFig15 sweeps the ATM PVC capacity and regenerates all seven
// curves: the sum-of-interfaces upper bound and {SRR, GRR, RR} x
// {logical reception, no resequencing}.
func runFig15(cfg Config) *Result {
	atms := []float64{3.8e6, 6.3e6, 8.8e6, 11.3e6, 13.8e6, 16.3e6, 18.8e6, 21.3e6, 23.8e6}
	d := 4 * sim.Second
	if cfg.Quick {
		atms = []float64{3.8e6, 13.8e6, 23.8e6}
		d = 1500 * sim.Millisecond
	}

	type curve struct {
		label string
		mk    func([]float64) sched.RoundBased
		mode  core.Mode
	}
	curves := []curve{
		{"SRR+LR", mkSRR, core.ModeLogical},
		{"SRR", mkSRR, core.ModeNone},
		{"GRR+LR", mkGRR, core.ModeLogical},
		{"GRR", mkGRR, core.ModeNone},
		{"RR+LR", mkRR, core.ModeLogical},
		{"RR", mkRR, core.ModeNone},
	}

	// Ethernet alone is independent of the sweep; measure it once.
	ethAlone := fig15Single(cfg, fig15Ethernet, d)

	x := make([]float64, len(atms))
	sum := make([]float64, len(atms))
	series := make([][]float64, len(curves))
	for i := range series {
		series[i] = make([]float64, len(atms))
	}
	for ai, atm := range atms {
		x[ai] = atm / 1e6
		sum[ai] = ethAlone + fig15Single(cfg, atm, d)
		for ci, c := range curves {
			series[ci][ai] = fig15Striped(cfg, atm, c.mk, c.mode, d)
		}
	}

	tb := &stats.Table{
		Title:  "Figure 15: application-level throughput vs ATM PVC capacity",
		XLabel: "ATM Mb/s",
		YLabel: "goodput Mb/s",
		X:      x,
	}
	tb.AddColumn("sum(Eth+ATM)", sum)
	for ci, c := range curves {
		tb.AddColumn(c.label, series[ci])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 15 reproduction. Ethernet effective %.1f Mb/s; ATM PVC swept.\n", fig15Ethernet/1e6)
	fmt.Fprintln(&b, "# Expected shape: sum rises then saturates at the single-interface CPU")
	fmt.Fprintln(&b, "# limit; SRR+LR tracks the sum then flattens earlier (interrupt load of")
	fmt.Fprintln(&b, "# two interfaces); RR is capped near 2x the slower link; each no-reseq")
	fmt.Fprintln(&b, "# variant sits below its logical-reception twin.")
	b.WriteString(tb.String())
	return &Result{ID: "fig15", Title: "Figure 15", Text: b.String(), Tables: []*stats.Table{tb}}
}
