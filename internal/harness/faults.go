package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/flowcontrol"
	"stripe/internal/obs"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Fault injection: credit reconciliation keeps lossy channels live, buffers bounded",
		Run:   runFaults,
	})
}

// ChannelFaults is the fault schedule for one channel.
type ChannelFaults struct {
	// Loss is the i.i.d. drop probability.
	Loss float64
	// Burst layers a Gilbert–Elliott burst-loss process on top.
	Burst channel.GilbertElliott
	// Outages are [start, end) iteration windows during which the
	// channel delivers nothing (the pump stalls), modelling latency
	// spikes; relative to the other channels this reorders traffic.
	Outages [][2]int
	// Jitter delays each delivery by a uniform 0..Jitter extra
	// iterations, modelling per-channel latency variation. Deliveries
	// stay FIFO within the channel (a delayed packet holds everything
	// behind it back — the protocol assumes FIFO channels), so jitter
	// reorders traffic *across* channels, which is exactly what the
	// resequencing-delay histogram measures.
	Jitter int
}

func (f ChannelFaults) out(iter int) bool {
	for _, w := range f.Outages {
		if iter >= w[0] && iter < w[1] {
			return true
		}
	}
	return false
}

// CorrelatedOutage takes a set of channels down simultaneously for one
// [start, end) iteration window — the shared-fate failures (a common
// physical path, a site power event) that per-channel schedules cannot
// express. During the window none of the listed channels delivers
// anything; k-of-n simultaneous outages stress the resequencer and the
// credit machinery far harder than the same windows staggered.
type CorrelatedOutage struct {
	Window   [2]int
	Channels []int
}

// FaultPlan is a full per-channel fault schedule plus reverse-path
// impairments.
type FaultPlan struct {
	// Channels holds one schedule per channel; its length sets the
	// channel count.
	Channels []ChannelFaults
	// Correlated holds cross-channel outage windows layered on top of
	// the per-channel schedules.
	Correlated []CorrelatedOutage
	// CreditLossEvery drops every k-th credit refresh on the reverse
	// path (0 = lossless reverse path). Grants are cumulative, so a
	// later refresh recovers the dropped one.
	CreditLossEvery int
}

// down reports whether channel c is in any outage window — its own or a
// correlated one — at iteration iter.
func (p FaultPlan) down(c, iter int) bool {
	if p.Channels[c].out(iter) {
		return true
	}
	for _, o := range p.Correlated {
		if iter < o.Window[0] || iter >= o.Window[1] {
			continue
		}
		for _, oc := range o.Channels {
			if oc == c {
				return true
			}
		}
	}
	return false
}

// FaultReport is the outcome of one fault-injection run.
type FaultReport struct {
	Sent           int   // data packets accepted by the striper
	Target         int   // data packets the run aimed to send
	Delivered      int   // packets the receiver handed up
	MaxGatedStreak int   // longest run of consecutive gated send attempts
	MaxBuffered    int64 // resequencer occupancy high-water (packets)
	LostReconciled int64 // bytes written off as lost and re-granted
	Overflows      int64 // resequencer overflow escalations
	Stalled        bool  // the sender wedged permanently on credits
	MaxErrStreak   int64 // worst per-channel consecutive transport-error streak
}

// stallPatience is how many consecutive gated send attempts — each with
// the pump, the consumer, marker emission and credit refresh all still
// running — the harness tolerates before declaring the sender
// permanently stalled. Transient gating clears within one marker/credit
// cycle, so this is orders of magnitude past any legitimate stall.
const stallPatience = 4000

// RunFaults drives one striper/resequencer pair through the fault plan
// with credit-based flow control (window w per channel, resequencer
// buffers capped at maxBuffered packets) until total data packets are
// sent or the sender stalls. With reconcile false the receiver grants
// from delivered bytes only — the pre-reconciliation behaviour whose
// credit leak this harness exists to demonstrate; with reconcile true
// grants are reconciled from marker-carried sender positions. The col
// collector is optional; when given it must be sized for the plan's
// channel count.
func RunFaults(plan FaultPlan, seed int64, w int64, maxBuffered, total int, reconcile bool, col *obs.Collector) FaultReport {
	nch := len(plan.Channels)
	quanta := sched.UniformQuanta(nch, 1500)
	queues := make([]*channel.Queue, nch)
	senders := make([]channel.Sender, nch)
	for i, f := range plan.Channels {
		queues[i] = channel.NewQueue(channel.Impairments{
			Loss:  f.Loss,
			Burst: f.Burst,
			Seed:  seed + int64(i)*7919,
		})
		senders[i] = queues[i]
	}
	gate, err := flowcontrol.NewGate(nch, w)
	if err != nil {
		panic(err)
	}
	gate.SetObs(col)
	st, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: senders,
		Markers:  core.MarkerPolicy{Every: 4, Position: 0},
		Gate:     gate,
		Obs:      col,
	})
	if err != nil {
		panic(err)
	}
	rs, err := core.NewResequencer(core.ResequencerConfig{
		Sched:       sched.MustSRR(quanta),
		Mode:        core.ModeLogical,
		MaxBuffered: maxBuffered,
		Obs:         col,
	})
	if err != nil {
		panic(err)
	}
	mgr, err := flowcontrol.NewManager(nch, w, rs.DeliveredBytesOn)
	if err != nil {
		panic(err)
	}
	mgr.SetObs(col)

	sizes := trace.NewBimodal(300, 1100, 0.5, seed+13)
	rep := FaultReport{Target: total}
	streak, refreshes := 0, 0
	arrive := func(c int, p *packet.Packet) {
		if p.Kind == packet.Marker {
			// The FIFO point: everything the sender put on c before this
			// marker has arrived or is lost, so reconcile the credit
			// state from the marker's sender position before the
			// resequencer sees it.
			if m, err := packet.MarkerOf(p); err == nil && reconcile {
				if _, err := mgr.Reconcile(c, int64(m.Sent),
					rs.ArrivedBytesOn(c), rs.BufferedBytesOn(c)); err != nil {
					panic(err)
				}
			}
		}
		rs.Arrive(c, p)
	}
	// Per-channel delay lines for jitter. A packet popped off the queue
	// at iteration i is released at i + uniform(0..Jitter), clamped to
	// never overtake its predecessor so the channel stays FIFO.
	type held struct {
		p       *packet.Packet
		release int
	}
	lines := make([][]held, nch)
	jrng := rand.New(rand.NewSource(seed + 104729))
	pump := func(c, iter int) {
		if p, ok := queues[c].Recv(); ok {
			rel := iter
			if j := plan.Channels[c].Jitter; j > 0 {
				rel += jrng.Intn(j + 1)
			}
			if n := len(lines[c]); n > 0 && lines[c][n-1].release > rel {
				rel = lines[c][n-1].release
			}
			lines[c] = append(lines[c], held{p, rel})
		}
		for len(lines[c]) > 0 && lines[c][0].release <= iter {
			arrive(c, lines[c][0].p)
			lines[c] = lines[c][1:]
		}
	}
	for iter := 0; rep.Sent < total; iter++ {
		switch err := st.Send(packet.NewDataSized(sizes.Next())); err {
		case nil:
			rep.Sent++
			streak = 0
		case core.ErrGated:
			streak++
			if streak > rep.MaxGatedStreak {
				rep.MaxGatedStreak = streak
			}
			if streak >= stallPatience {
				rep.Stalled = true
				rep.MaxBuffered = maxInt64(rep.MaxBuffered, int64(rs.Buffered()))
				rep.Overflows = rs.Stats().Overflows
				rep.LostReconciled = lostTotal(mgr, nch)
				rep.MaxErrStreak = maxErrStreak(st, nch)
				return rep
			}
		default:
			panic(err)
		}
		// Markers keep flowing while the data path is gated — exactly
		// the behaviour the timer-driven EmitMarkers provides in the
		// session — so reconciliation state keeps moving during a stall.
		if iter%16 == 0 {
			st.EmitMarkers()
		}
		// Pump each channel that is not in an outage window (its own or a
		// correlated one).
		for c := range queues {
			if !plan.down(c, iter) {
				pump(c, iter)
			}
		}
		if occ := int64(rs.Buffered()); occ > rep.MaxBuffered {
			rep.MaxBuffered = occ
		}
		// The consumer drains at a bounded rate.
		for k := 0; k < 2; k++ {
			if _, ok := rs.Next(); ok {
				rep.Delivered++
			}
		}
		// Credits refresh at marker cadence over a (possibly lossy)
		// reverse path.
		if iter%16 == 8 {
			refreshes++
			if plan.CreditLossEvery > 0 && refreshes%plan.CreditLossEvery == 0 {
				continue
			}
			for c := 0; c < nch; c++ {
				if err := gate.ApplyGrant(c, mgr.GrantFor(c)); err != nil {
					panic(err)
				}
			}
		}
	}
	// Let outages end and the tail drain (the huge iteration count
	// flushes the jitter delay lines).
	for i := 0; i < 64; i++ {
		for c := range queues {
			pump(c, 1<<30)
		}
		for {
			p, ok := rs.Next()
			if !ok {
				break
			}
			_ = p
			rep.Delivered++
		}
	}
	rep.Delivered += len(rs.Drain())
	rep.MaxBuffered = maxInt64(rep.MaxBuffered, int64(rs.Buffered()))
	rep.Overflows = rs.Stats().Overflows
	rep.LostReconciled = lostTotal(mgr, nch)
	rep.MaxErrStreak = maxErrStreak(st, nch)
	return rep
}

// maxErrStreak is the worst per-channel consecutive transport-error
// streak at the end of a run — the signal the session's error-streak
// eviction rule watches. Impaired in-process queues drop silently
// (Send never errors), so this stays at zero however lossy the plan:
// exactly the blindness the windowed health score exists to cover.
func maxErrStreak(st *core.Striper, nch int) (worst int64) {
	for c := 0; c < nch; c++ {
		worst = maxInt64(worst, st.ErrStreak(c))
	}
	return worst
}

// fmtNs renders a nanosecond latency with time.Duration units.
func fmtNs(ns int64) string { return time.Duration(ns).String() }

func lostTotal(m *flowcontrol.Manager, n int) int64 {
	var t int64
	for c := 0; c < n; c++ {
		t += m.LostBytes(c)
	}
	return t
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DefaultFaultPlan is the acceptance scenario: every channel at 20%
// i.i.d. loss, one channel with an added loss burst, one with outage
// windows, and a reverse path that loses every third credit refresh.
func DefaultFaultPlan(nch int) FaultPlan {
	plan := FaultPlan{Channels: make([]ChannelFaults, nch), CreditLossEvery: 3}
	for i := range plan.Channels {
		plan.Channels[i].Loss = 0.20
	}
	if nch > 1 {
		plan.Channels[1].Burst = channel.GilbertElliott{
			PGoodToBad: 0.01, PBadToGood: 0.2, BadLoss: 0.9,
		}
	}
	if nch > 2 {
		plan.Channels[2].Outages = [][2]int{{500, 700}, {2000, 2300}}
	}
	// Mild delay jitter everywhere (cross-channel reordering for the
	// resequencing-delay histogram), one channel noticeably worse.
	for i := range plan.Channels {
		plan.Channels[i].Jitter = 3
	}
	if nch > 3 {
		plan.Channels[3].Jitter = 10
	}
	return plan
}

// CorrelatedFaultPlan is DefaultFaultPlan plus two shared-fate windows
// in which k of the nch channels are down simultaneously: channels
// 0..k-1 together mid-run, then a different overlapping subset later,
// so at the worst point only nch-k channels carry the whole stream.
func CorrelatedFaultPlan(nch, k int) FaultPlan {
	plan := DefaultFaultPlan(nch)
	if k > nch {
		k = nch
	}
	first := make([]int, 0, k)
	for c := 0; c < k; c++ {
		first = append(first, c)
	}
	second := make([]int, 0, k)
	for c := 0; c < k; c++ {
		second = append(second, (c+nch/2)%nch)
	}
	plan.Correlated = []CorrelatedOutage{
		{Window: [2]int{800, 1000}, Channels: first},
		{Window: [2]int{2600, 2900}, Channels: second},
	}
	return plan
}

// runFaults regenerates the credit-stall pathology and its fix: at 20%
// per-channel loss with traffic well past 10x the credit window,
// delivered-byte grants wedge the sender permanently, while
// marker-position reconciliation keeps it live with resequencer memory
// bounded by the configured cap.
func runFaults(cfg Config) *Result {
	const nch = 4
	const window = 16 * 1024
	const bufCap = 256
	total := 4000 // ~2.8MB of data: >40x the window per channel
	if cfg.Quick {
		total = 1200
	}
	plan := DefaultFaultPlan(nch)

	before := RunFaults(plan, cfg.Seed+1, window, bufCap, total, false, nil)
	// The healthy run carries a lifecycle tracer (every packet sampled)
	// so the jittery channels show up as resequencing-delay quantiles.
	col := obs.NewCollector(nch)
	tracer := obs.NewTracer(obs.TracerConfig{Sample: 1})
	col.SetTracer(tracer)
	after := RunFaults(plan, cfg.Seed+1, window, bufCap, total, true, col)

	var b strings.Builder
	fmt.Fprintln(&b, "# Fault injection: 4 channels at 20% i.i.d. loss (one bursty, one with")
	fmt.Fprintln(&b, "# outages), delay jitter on every channel, credits on a lossy reverse")
	fmt.Fprintln(&b, "# path, resequencer cap 256 packets.")
	fmt.Fprintln(&b, row("grant basis", "sent", "stalled", "max gated streak", "reseq high-water", "lost re-granted"))
	line := func(name string, r FaultReport) {
		fmt.Fprintln(&b, row(name,
			fmt.Sprintf("%d/%d", r.Sent, r.Target),
			fmt.Sprintf("%v", r.Stalled),
			fmt.Sprintf("%d", r.MaxGatedStreak),
			fmt.Sprintf("%d", r.MaxBuffered),
			fmt.Sprintf("%d", r.LostReconciled)))
	}
	line("delivered bytes (leaky)", before)
	line("reconciled (markers)", after)
	ts := tracer.Snapshot()
	fmt.Fprintf(&b, "\n# Resequencing delay (reconciled run, %d lifecycles traced):\n", ts.Tracked)
	fmt.Fprintln(&b, row("histogram", "p50", "p90", "p99", "max bucket"))
	quant := func(name string, h obs.HistogramSnapshot) {
		fmt.Fprintln(&b, row(name,
			fmtNs(h.Quantile(0.50)), fmtNs(h.Quantile(0.90)), fmtNs(h.Quantile(0.99)),
			fmt.Sprintf("%d obs", h.Count)))
	}
	quant("reseq delay", ts.ReseqDelay)
	quant("head-of-line", ts.HeadOfLine)
	quant("end-to-end", ts.EndToEnd)

	// Degrading-channel scenario: windowed health scoring flags the
	// Gilbert-Elliott-impaired channel while the error-streak rule —
	// blind to silent drops — never moves off zero.
	deg := RunDegrade(cfg)
	fmt.Fprintln(&b, "\n# Degrading channel: ch1 under heavy Gilbert-Elliott burst loss, the")
	fmt.Fprintln(&b, "# rest ~1% i.i.d. Windowed health scores vs the error-streak rule:")
	fmt.Fprintln(&b, row("channel", "health", "loss frac", "resyncs/marker", "reasons"))
	sp := deg.Windows.ScoreWindow()
	for _, h := range deg.Scores {
		c := sp.Channels[h.Channel]
		fmt.Fprintln(&b, row(fmt.Sprintf("ch%d", h.Channel),
			fmt.Sprintf("%d", h.Score),
			fmt.Sprintf("%.3f", c.LossFrac),
			fmt.Sprintf("%.2f", c.ResyncFrac),
			strings.Join(h.Reasons, ",")))
	}
	fmt.Fprintf(&b, "# score flags ch1 (<%d) while max error streak is %d (eviction needs %d)\n",
		DegradeScoreThreshold, deg.Report.MaxErrStreak, DegradeErrStreakThreshold)

	tb := &stats.Table{Title: "Credit reconciliation under 20% loss", XLabel: "reconcile(0=off,1=on)", YLabel: "packets sent", X: []float64{0, 1}}
	tb.AddColumn("sent", []float64{float64(before.Sent), float64(after.Sent)})
	return &Result{ID: "faults", Title: "Fault-injection: credit reconciliation", Text: b.String(), Tables: []*stats.Table{tb}}
}
