package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "loss",
		Title: "Section 6.3: marker recovery across loss rates up to 80%",
		Run:   runLossSweep,
	})
	register(Experiment{
		ID:    "markerfreq",
		Title: "Section 6.3: marker frequency vs out-of-order deliveries",
		Run:   runMarkerFrequency,
	})
	register(Experiment{
		ID:    "markerpos",
		Title: "Section 6.3: marker position within a round vs out-of-order deliveries",
		Run:   runMarkerPosition,
	})
}

// lossyRun drives the transport-layer pipeline of Section 6.3: an SRR
// striper over nch channels where each of the first lossyCount data
// packets is dropped with probability loss, followed by a lossless
// tail. It returns the delivered IDs and receiver stats.
func lossyRun(cfg Config, nch int, loss float64, markers core.MarkerPolicy, lossyCount, total int) ([]uint64, core.ResequencerStats) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(loss*1e4) + int64(markers.Every)*7 + int64(markers.Position)*13))
	quanta := sched.UniformQuanta(nch, 1500)
	group := channel.NewGroup(nch, channel.Impairments{})
	senders := group.Senders()
	for i := range senders {
		senders[i] = &probDropper{inner: senders[i], rng: rng, p: loss, until: uint64(lossyCount)}
	}
	st, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: senders,
		Markers:  markers,
	})
	if err != nil {
		panic(err)
	}
	rs, err := core.NewResequencer(core.ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  core.ModeLogical,
	})
	if err != nil {
		panic(err)
	}
	sizes := trace.NewBimodal(200, 1000, 0.5, cfg.Seed+5)
	var delivered []*packet.Packet
	for i := 0; i < total; i++ {
		if err := st.Send(packet.NewDataSized(sizes.Next())); err != nil {
			panic(err)
		}
		// Interleaved arrivals, slightly irregular.
		for k := 0; k < 1+i%2; k++ {
			c := (i + k) % nch
			if p, ok := group.Queues[c].Recv(); ok {
				rs.Arrive(c, p)
			}
		}
		for {
			p, ok := rs.Next()
			if !ok {
				break
			}
			delivered = append(delivered, p)
		}
	}
	for {
		moved := false
		for c, q := range group.Queues {
			if p, ok := q.Recv(); ok {
				rs.Arrive(c, p)
				moved = true
			}
		}
		for {
			p, ok := rs.Next()
			if !ok {
				break
			}
			delivered = append(delivered, p)
		}
		if !moved {
			break
		}
	}
	delivered = append(delivered, rs.Drain()...)
	return deliveredIDs(delivered), rs.Stats()
}

// probDropper drops data packets with probability p while ID < until.
type probDropper struct {
	inner channel.Sender
	rng   *rand.Rand
	p     float64
	until uint64
}

func (d *probDropper) Send(p *packet.Packet) error {
	if p.Kind == packet.Data && p.ID < d.until && d.rng.Float64() < d.p {
		return nil
	}
	return d.inner.Send(p)
}

// runLossSweep regenerates the first finding of Section 6.3: for loss
// rates up to 80%, marker resynchronization restores FIFO delivery once
// losses stop. For each loss rate we report the out-of-order fraction
// during the lossy phase and whether the post-loss tail was delivered
// complete and in order.
func runLossSweep(cfg Config) *Result {
	lossyCount, total := 4000, 6000
	if cfg.Quick {
		lossyCount, total = 800, 1400
	}
	losses := []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
	markers := core.MarkerPolicy{Every: 4, Position: 0}

	var b strings.Builder
	fmt.Fprintln(&b, "# Section 6.3 loss sweep: 3 channels, markers every 4 rounds; loss applies")
	fmt.Fprintln(&b, "# to the first phase only. 'recovered' = lossless tail complete and FIFO.")
	fmt.Fprintln(&b, row("loss", "delivered", "ooo fraction", "resyncs", "recovered"))

	var x, ooo, rec []float64
	margin := 150 // packets of slack for recovery after loss stops
	for _, loss := range losses {
		ids, st := lossyRun(cfg, 3, loss, markers, lossyCount, total)
		r := stats.AnalyzeOrder(ids)
		// Tail check: everything sent after recovery margin must arrive
		// in order with nothing missing.
		boundary := uint64(lossyCount + margin)
		var tail []uint64
		for _, id := range ids {
			if id >= boundary {
				tail = append(tail, id)
			}
		}
		recovered := len(tail) == total-int(boundary)
		for i := 1; i < len(tail) && recovered; i++ {
			if tail[i] != tail[i-1]+1 {
				recovered = false
			}
		}
		fmt.Fprintln(&b, row(fmt.Sprintf("%.0f%%", loss*100),
			fmt.Sprintf("%d/%d", len(ids), total),
			fmt.Sprintf("%.4f", r.OutOfOrderFraction()),
			fmt.Sprintf("%d", st.Resyncs),
			fmt.Sprintf("%v", recovered)))
		x = append(x, loss*100)
		ooo = append(ooo, r.OutOfOrderFraction())
		if recovered {
			rec = append(rec, 1)
		} else {
			rec = append(rec, 0)
		}
	}
	tb := &stats.Table{Title: "Loss sweep", XLabel: "loss %", YLabel: "ooo fraction / recovered", X: x}
	tb.AddColumn("ooo", ooo)
	tb.AddColumn("recovered", rec)
	return &Result{ID: "loss", Title: "Loss sweep", Text: b.String(), Tables: []*stats.Table{tb}}
}

// runMarkerFrequency regenerates the second finding: at a fixed loss
// rate, more frequent markers mean fewer out-of-order deliveries. The
// control-overhead column quantifies the price — even at a marker per
// round it is a small fraction of the data volume, the "little
// overhead" scalability claim.
func runMarkerFrequency(cfg Config) *Result {
	lossyCount, total := 6000, 7000
	if cfg.Quick {
		lossyCount, total = 1200, 1500
	}
	const loss = 0.1
	everies := []uint64{1, 2, 4, 8, 16, 32, 64}

	var b strings.Builder
	fmt.Fprintln(&b, "# Section 6.3: out-of-order deliveries vs marker period (10% loss, 3 channels).")
	fmt.Fprintln(&b, row("marker period (rounds)", "ooo deliveries", "ooo fraction", "markers seen", "overhead %"))
	var x, ooo, oh []float64
	for _, every := range everies {
		ids, st := lossyRun(cfg, 3, loss, core.MarkerPolicy{Every: every, Position: 0}, lossyCount, total)
		r := stats.AnalyzeOrder(ids)
		overhead := float64(st.Markers) * float64(packet.MarkerWireLen) /
			float64(st.DeliveredBytes) * 100
		fmt.Fprintln(&b, row(fmt.Sprintf("%d", every),
			fmt.Sprintf("%d", r.OutOfOrder),
			fmt.Sprintf("%.4f", r.OutOfOrderFraction()),
			fmt.Sprintf("%d", st.Markers),
			fmt.Sprintf("%.3f", overhead)))
		x = append(x, float64(every))
		ooo = append(ooo, float64(r.OutOfOrder))
		oh = append(oh, overhead)
	}
	tb := &stats.Table{Title: "Marker frequency", XLabel: "period (rounds)", YLabel: "ooo deliveries", X: x}
	tb.AddColumn("ooo", ooo)
	tb.AddColumn("overhead %", oh)
	return &Result{ID: "markerfreq", Title: "Marker frequency", Text: b.String(), Tables: []*stats.Table{tb}}
}

// runMarkerPosition regenerates the third finding: the position of the
// marker batch within a round affects out-of-order deliveries, with
// round boundaries (position 0, or equivalently the end of the round)
// doing best.
func runMarkerPosition(cfg Config) *Result {
	lossyCount, total := 6000, 7000
	if cfg.Quick {
		lossyCount, total = 1200, 1500
	}
	const loss = 0.1
	const nch = 8
	var b strings.Builder
	fmt.Fprintln(&b, "# Section 6.3: out-of-order deliveries vs marker position within the round")
	fmt.Fprintln(&b, "# (8 channels, markers every 4 rounds, 10% loss). Position 0 = round start.")
	fmt.Fprintln(&b, row("position", "ooo deliveries", "ooo fraction"))
	var x, ooo []float64
	for pos := 0; pos < nch; pos++ {
		ids, _ := lossyRun(cfg, nch, loss, core.MarkerPolicy{Every: 4, Position: pos}, lossyCount, total)
		r := stats.AnalyzeOrder(ids)
		fmt.Fprintln(&b, row(fmt.Sprintf("%d", pos),
			fmt.Sprintf("%d", r.OutOfOrder),
			fmt.Sprintf("%.4f", r.OutOfOrderFraction())))
		x = append(x, float64(pos))
		ooo = append(ooo, float64(r.OutOfOrder))
	}
	tb := &stats.Table{Title: "Marker position", XLabel: "position", YLabel: "ooo deliveries", X: x}
	tb.AddColumn("ooo", ooo)
	return &Result{ID: "markerpos", Title: "Marker position", Text: b.String(), Tables: []*stats.Table{tb}}
}
