package harness

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stripe"
	"stripe/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "flap",
		Title: "Channel flap: kill and restore links mid-transfer, FIFO and credits intact",
		Run:   runFlap,
	})
}

// killableLink wraps a channel transport with a cut switch. While cut,
// sends fail at the transmit side (the health monitor's error-streak
// signal) and the receive pump discards whatever was in flight — the
// full semantics of a dead link, not just a silent one.
type killableLink struct {
	inner stripe.ChannelSender
	dead  atomic.Bool
}

func (k *killableLink) Send(p *stripe.Packet) error {
	if k.dead.Load() {
		return errLinkDown
	}
	return k.inner.Send(p)
}

var errLinkDown = fmt.Errorf("harness: link down")

// FlapReport is the outcome of one channel-flap run.
type FlapReport struct {
	Total        int   // data packets the sender pushed in
	Delivered    int   // data packets the receiver handed up
	FIFOBreaks   int   // deliveries whose payload index did not increase (must be 0)
	LostInFlight int   // data packets the dead link destroyed in transit
	DeclaredLost int64 // data packets the receiver wrote off at retirement
	Evictions    int64 // health-monitor evictions on the sender's end
	Reinstates   int64 // probe-driven reinstatements on the sender's end
	Violations   int64 // invariant-checker findings across both ends (must be 0)
	Reinstated   bool  // the killed channel returned to the live set
	Completed    bool  // every packet was delivered or accounted as lost
}

// Accounted reports how many of the Total packets have a known fate.
func (r FlapReport) Accounted() int {
	return r.Delivered + r.LostInFlight + int(r.DeclaredLost)
}

// RunFlap drives a full duplex session pair across three channels and
// flaps the membership mid-transfer: channel 1's link is cut (the
// sender's error streak must evict it and the survivors carry on),
// later restored (liveness probes must reinstate it), and channel 2 is
// gracefully removed and re-added through the public API. Throughout,
// delivery must stay FIFO (payload indexes strictly increasing), every
// packet must end up delivered or accounted as lost, and the credit
// invariant checker on both ends must stay silent — eviction returns a
// channel's outstanding grant instead of leaking it.
func RunFlap(seed int64, total int) FlapReport {
	const nch = 3
	const flapCh = 1
	const window = 16 * 1024
	quanta := stripe.UniformQuanta(nch, 1500)

	colA := stripe.NewNamedCollector("flap-a", nch)
	colB := stripe.NewNamedCollector("flap-b", nch)
	colA.SetChecker(stripe.NewChecker())
	colB.SetChecker(stripe.NewChecker())

	mk := func(base int64) []*stripe.LocalChannel {
		chs := make([]*stripe.LocalChannel, nch)
		for i := range chs {
			chs[i] = stripe.NewLocalChannel(stripe.LocalChannelConfig{
				Delay: 200 * time.Microsecond,
				Seed:  base + int64(i)*7919,
			})
		}
		return chs
	}
	a2b, b2a := mk(seed), mk(seed+104729)

	link := &killableLink{inner: a2b[flapCh]}
	txA := make([]stripe.ChannelSender, nch)
	txB := make([]stripe.ChannelSender, nch)
	for i := 0; i < nch; i++ {
		txA[i], txB[i] = a2b[i], b2a[i]
	}
	txA[flapCh] = link

	cfg := func(col *stripe.Collector) stripe.SessionConfig {
		return stripe.SessionConfig{
			Config:         stripe.Config{Quanta: quanta, Mode: stripe.ModeLogical, Collector: col},
			CreditWindow:   window,
			MarkerInterval: 2 * time.Millisecond,
			Health:         stripe.HealthConfig{EvictAfter: 4, ReinstateAfter: 2},
		}
	}
	a, err := stripe.NewSession(txA, cfg(colA))
	if err != nil {
		panic(err)
	}
	b, err := stripe.NewSession(txB, cfg(colB))
	if err != nil {
		panic(err)
	}

	// Pumps. The dead link destroys in-flight traffic: while cut, the
	// A→B pump on the flapped channel discards instead of delivering.
	var lostInFlight atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nch; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for p := range a2b[i].Out() {
				if i == flapCh && link.dead.Load() {
					if p.Kind == stripe.KindData {
						lostInFlight.Add(1)
					}
					continue
				}
				b.Arrive(i, p)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			for p := range b2a[i].Out() {
				a.Arrive(i, p)
			}
		}(i)
	}

	// Consumer: payload indexes must be strictly increasing — gaps are
	// losses, regressions are FIFO violations.
	rep := FlapReport{Total: total}
	var delivered atomic.Int64
	var fifoBreaks atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := int64(-1)
		for {
			p := b.Recv()
			if p == nil {
				return
			}
			idx := int64(binary.BigEndian.Uint64(p.Payload[:8]))
			if idx <= last {
				fifoBreaks.Add(1)
			}
			last = idx
			delivered.Add(1)
		}
	}()

	// waitState polls for a transmit-side lifecycle transition; the
	// marker timer drives eviction sweeps and probes, so these settle in
	// a few ticks.
	waitState := func(c int, want stripe.MemberState) bool {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if tx, _ := a.ChannelState(c); tx == want {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}

	send := func(i int) {
		// Data wraps the payload without copying, so each packet needs
		// its own backing array while it sits in channel queues.
		payload := make([]byte, 200)
		binary.BigEndian.PutUint64(payload, uint64(i))
		if err := a.SendBytes(payload); err != nil {
			panic(fmt.Sprintf("send %d: %v", i, err))
		}
	}
	for i := 0; i < total; i++ {
		switch {
		case i == total/4:
			// Cut the link cold. The next sends the scheduler lands on it
			// fail, the error streak trips, and the health monitor evicts.
			link.dead.Store(true)
		case i == total/2:
			// Restore the link and wait out the probe streak so the
			// reinstatement is observable before the graceful flap below.
			link.dead.Store(false)
			rep.Reinstated = waitState(flapCh, stripe.MemberActive)
		case i == 5*total/8:
			if err := a.RemoveChannel(2); err != nil {
				panic(err)
			}
		case i == 3*total/4:
			if err := a.AddChannel(2, nil); err != nil {
				panic(err)
			}
		}
		send(i)
	}

	// Completion: every packet sent is delivered or has a counted fate
	// (destroyed in flight, or written off by the receiver at
	// retirement). The marker timer keeps credits and announcements
	// moving while the tail drains.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		bs := b.Stats()
		rep.Delivered = int(delivered.Load())
		rep.LostInFlight = int(lostInFlight.Load())
		rep.DeclaredLost = bs.MemberLost + bs.MemberDrops
		if rep.Accounted() >= total {
			rep.Completed = true
			break
		}
		time.Sleep(time.Millisecond)
	}

	snapA, snapB := a.Snapshot(), b.Snapshot()
	a.Close()
	b.Close()
	for i := 0; i < nch; i++ {
		a2b[i].Close()
		b2a[i].Close()
	}
	wg.Wait()
	<-done

	rep.FIFOBreaks = int(fifoBreaks.Load())
	for _, cs := range snapA.Channels {
		rep.Evictions += cs.MemberEvictions
		rep.Reinstates += cs.MemberReinstates
	}
	rep.Violations = snapA.InvariantViolations + snapB.InvariantViolations
	return rep
}

// runFlap regenerates the dynamic-membership acceptance scenario: a
// three-channel session survives a link cut (auto-eviction), a probe
// reinstatement, and a graceful remove/re-add, all mid-transfer, with
// FIFO delivery intact and zero credit leak; plus a correlated-outage
// fault run in which 2 of 4 channels go dark simultaneously and the
// stream still completes with bounded buffers.
func runFlap(cfg Config) *Result {
	total := 6000
	if cfg.Quick {
		total = 1500
	}
	rep := RunFlap(cfg.Seed, total)

	// Correlated outages: same striper/resequencer fault driver as the
	// faults experiment, but with shared-fate windows where half the
	// channels are down at once.
	const nch = 4
	const window = 16 * 1024
	const bufCap = 256
	ftotal := 4000
	if cfg.Quick {
		ftotal = 1200
	}
	corr := RunFaults(CorrelatedFaultPlan(nch, 2), cfg.Seed+1, window, bufCap, ftotal, true, nil)

	var bld strings.Builder
	fmt.Fprintln(&bld, "# Channel flap: 3-channel duplex session; link 1 cut at 25% (evicted),")
	fmt.Fprintln(&bld, "# restored at 50% (reinstated by probes); channel 2 gracefully removed")
	fmt.Fprintln(&bld, "# at 62% and re-added at 75%. FIFO = payload indexes strictly increase.")
	fmt.Fprintln(&bld, row("metric", "value", "requirement"))
	fmt.Fprintln(&bld, row("delivered", fmt.Sprintf("%d/%d", rep.Delivered, rep.Total), ""))
	fmt.Fprintln(&bld, row("accounted (delivered+lost)", fmt.Sprintf("%d/%d", rep.Accounted(), rep.Total), "== total"))
	fmt.Fprintln(&bld, row("lost in flight / declared", fmt.Sprintf("%d / %d", rep.LostInFlight, rep.DeclaredLost), ""))
	fmt.Fprintln(&bld, row("FIFO violations", fmt.Sprintf("%d", rep.FIFOBreaks), "== 0"))
	fmt.Fprintln(&bld, row("evictions / reinstates", fmt.Sprintf("%d / %d", rep.Evictions, rep.Reinstates), ">= 1 each"))
	fmt.Fprintln(&bld, row("credit/invariant violations", fmt.Sprintf("%d", rep.Violations), "== 0"))
	fmt.Fprintln(&bld, row("completed", fmt.Sprintf("%v", rep.Completed), "true"))
	fmt.Fprintln(&bld, "\n# Correlated outages: 4 channels at 20% loss, two windows with 2 of 4")
	fmt.Fprintln(&bld, "# channels down simultaneously, reconciled credits.")
	fmt.Fprintln(&bld, row("", "sent", "stalled", "max gated streak", "reseq high-water"))
	fmt.Fprintln(&bld, row("2-of-4 shared fate",
		fmt.Sprintf("%d/%d", corr.Sent, corr.Target),
		fmt.Sprintf("%v", corr.Stalled),
		fmt.Sprintf("%d", corr.MaxGatedStreak),
		fmt.Sprintf("%d", corr.MaxBuffered)))

	tb := &stats.Table{Title: "Channel flap accounting", XLabel: "metric(0=delivered,1=accounted,2=total)", YLabel: "packets", X: []float64{0, 1, 2}}
	tb.AddColumn("packets", []float64{float64(rep.Delivered), float64(rep.Accounted()), float64(rep.Total)})
	return &Result{ID: "flap", Title: "Dynamic membership under link flaps", Text: bld.String(), Tables: []*stats.Table{tb}}
}
