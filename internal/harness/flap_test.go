package harness

import "testing"

// TestFlapAcceptance runs the channel-flap scenario at reduced scale
// and holds it to the same bar as the full experiment: FIFO delivery
// throughout, every packet accounted for, at least one eviction and one
// probe-driven reinstatement, and silent invariant checkers on both
// ends.
func TestFlapAcceptance(t *testing.T) {
	const total = 900
	rep := RunFlap(7, total)

	if rep.FIFOBreaks != 0 {
		t.Errorf("FIFO violations = %d, want 0", rep.FIFOBreaks)
	}
	if rep.Violations != 0 {
		t.Errorf("invariant violations = %d, want 0", rep.Violations)
	}
	if !rep.Completed || rep.Accounted() != total {
		t.Errorf("accounted %d/%d (completed=%v); every packet needs a known fate",
			rep.Accounted(), total, rep.Completed)
	}
	if rep.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1 (the cut link must be evicted)", rep.Evictions)
	}
	if !rep.Reinstated || rep.Reinstates < 1 {
		t.Errorf("reinstated=%v reinstates=%d; the restored link must rejoin", rep.Reinstated, rep.Reinstates)
	}
}
