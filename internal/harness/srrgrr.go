package harness

import (
	"fmt"
	"strings"

	"stripe/internal/core"
	"stripe/internal/sched"
	"stripe/internal/sim"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "srrgrr",
		Title: "Section 6.2: SRR vs GRR under the adversarial alternating workload",
		Run:   runSRRvsGRR,
	})
}

// runSRRvsGRR reproduces the Section 6.2 worst-case experiment: the ATM
// PVC is set so both links have equal effective rate (paper: 7.6 Mb/s
// PVC vs 6 Mb/s effective Ethernet), at which point GRR degenerates to
// RR. Packets alternate deterministically between 1000 and 200 bytes.
// SRR's byte accounting keeps both links loaded (paper: 11.2 Mb/s);
// GRR sends every big packet down one link and every small packet down
// the other, collapsing to little more than one link's throughput
// (paper: 6.8 Mb/s).
func runSRRvsGRR(cfg Config) *Result {
	duration := 5 * sim.Second
	if cfg.Quick {
		duration = 2 * sim.Second
	}
	// Two equal-rate 6 Mb/s links, like the paper's equalised pair.
	rates := []float64{6e6, 6e6}

	run := func(mk func() sched.RoundBased) (float64, []int64) {
		links := make([]sim.LinkConfig, 2)
		for i, r := range rates {
			links[i] = sim.LinkConfig{RateBps: r, Delay: 500 * sim.Microsecond, Queue: 128, Seed: cfg.Seed + int64(i)}
		}
		p, err := sim.BuildTCPPath(sim.PathConfig{
			Links:          links,
			CPU:            sim.CPUConfig{PerInterrupt: 5 * sim.Microsecond, PerPacket: 5 * sim.Microsecond},
			Sched:          mk(),
			Mode:           core.ModeLogical,
			Markers:        core.MarkerPolicy{Every: 4, Position: 0},
			MarkerInterval: 2 * sim.Millisecond,
			TCP: sim.TCPConfig{
				Sizes: &trace.Alternating{Sizes: []int{1000, 200}},
			},
		})
		if err != nil {
			panic(err)
		}
		mbps := p.Run(duration)
		bytes := []int64{p.Links[0].Stats().SentBytes, p.Links[1].Stats().SentBytes}
		return mbps, bytes
	}

	srrMbps, srrBytes := run(func() sched.RoundBased { return sched.MustSRR([]int64{1500, 1500}) })
	grrMbps, grrBytes := run(func() sched.RoundBased { s, _ := sched.NewGRR([]int64{1, 1}); return s })

	var b strings.Builder
	fmt.Fprintln(&b, "# Section 6.2 adversarial workload: equal-rate links, alternating 1000/200B")
	fmt.Fprintln(&b, "# packets (paper: SRR 11.2 Mb/s vs GRR 6.8 Mb/s on a 12 Mb/s aggregate).")
	fmt.Fprintln(&b, row("scheme", "goodput Mb/s", "link0 bytes", "link1 bytes", "Jain"))
	fmt.Fprintln(&b, row("SRR",
		fmt.Sprintf("%.2f", srrMbps),
		fmt.Sprintf("%d", srrBytes[0]),
		fmt.Sprintf("%d", srrBytes[1]),
		fmt.Sprintf("%.4f", stats.JainIndex(srrBytes))))
	fmt.Fprintln(&b, row("GRR (reduces to RR here)",
		fmt.Sprintf("%.2f", grrMbps),
		fmt.Sprintf("%d", grrBytes[0]),
		fmt.Sprintf("%d", grrBytes[1]),
		fmt.Sprintf("%.4f", stats.JainIndex(grrBytes))))

	tb := &stats.Table{
		Title:  "SRR vs GRR, adversarial alternating workload",
		XLabel: "scheme(0=SRR,1=GRR)",
		YLabel: "goodput Mb/s",
		X:      []float64{0, 1},
	}
	tb.AddColumn("goodput", []float64{srrMbps, grrMbps})
	return &Result{ID: "srrgrr", Title: "SRR vs GRR", Text: b.String(), Tables: []*stats.Table{tb}}
}
