package harness

import (
	"fmt"
	"strings"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/flowcontrol"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "credit",
		Title: "Section 6.3: credit-based flow control eliminates congestion loss",
		Run:   runCredit,
	})
}

// runCredit regenerates the fourth Section 6.3 finding: on channels
// with no flow control of their own (UDP), a fast sender overruns the
// receiver's per-channel buffers and loses packets; the Kung-style
// credit scheme — with credits refreshed at the marker cadence —
// eliminates that loss entirely.
func runCredit(cfg Config) *Result {
	total := 20000
	if cfg.Quick {
		total = 4000
	}
	const nch = 2
	const window = 8 * 1024          // credit window per channel, in bytes
	const bufBytes = window + 2*1024 // receive buffer: window plus control-traffic headroom

	type out struct {
		overflow  int64
		delivered int
		ooo       float64
		blocked   int
	}

	run := func(withCredits bool) out {
		quanta := sched.UniformQuanta(nch, 1500)
		// The byte-bounded queue is the receiver's per-channel socket
		// buffer; a full buffer drops arrivals, exactly like UDP.
		queues := make([]*channel.Queue, nch)
		senders := make([]channel.Sender, nch)
		for i := range queues {
			queues[i] = channel.NewByteBoundedQueue(channel.Impairments{}, bufBytes)
			senders[i] = queues[i]
		}
		var gate *flowcontrol.Gate
		scfg := core.StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: senders,
			Markers:  core.MarkerPolicy{Every: 4, Position: 0},
		}
		if withCredits {
			gate, _ = flowcontrol.NewGate(nch, window)
			scfg.Gate = gate
		}
		st, err := core.NewStriper(scfg)
		if err != nil {
			panic(err)
		}
		rs, err := core.NewResequencer(core.ResequencerConfig{
			Sched: sched.MustSRR(quanta),
			Mode:  core.ModeLogical,
		})
		if err != nil {
			panic(err)
		}
		mgr, _ := flowcontrol.NewManager(nch, window, rs.DeliveredBytesOn)

		sizes := trace.NewBimodal(200, 1000, 0.5, cfg.Seed+6)
		var delivered []*packet.Packet
		blocked := 0
		// The consumer drains one packet for every producer attempt: the
		// sender is roughly 1.5x faster than the consumer on average, so
		// without flow control the buffers must overflow.
		i, iter := 0, 0
		for i < total {
			iter++
			p := packet.NewDataSized(sizes.Next())
			switch err := st.Send(p); err {
			case nil:
				i++
			case core.ErrGated:
				blocked++
			default:
				panic(err)
			}
			// The consumer owns the drain: arrivals stay in the bounded
			// receive buffers until it runs, and it runs at 2/3 the
			// producer's rate, so without credits the buffers overflow.
			if iter%3 == 0 {
				for c, q := range queues {
					if pkt, ok := q.Recv(); ok {
						rs.Arrive(c, pkt)
					}
				}
				for k := 0; k < 2; k++ {
					if p, ok := rs.Next(); ok {
						delivered = append(delivered, p)
					}
				}
			}
			// Credits refreshed at marker cadence.
			if withCredits && iter%8 == 0 {
				for c := 0; c < nch; c++ {
					if err := gate.ApplyGrant(c, mgr.GrantFor(c)); err != nil {
						panic(err)
					}
				}
			}
		}
		// Drain the residue.
		for {
			moved := false
			for c, q := range queues {
				if pkt, ok := q.Recv(); ok {
					rs.Arrive(c, pkt)
					moved = true
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				delivered = append(delivered, p)
			}
			if !moved {
				break
			}
		}
		delivered = append(delivered, rs.Drain()...)

		var overflow int64
		for _, q := range queues {
			overflow += q.Stats().Overflowed
		}
		r := stats.AnalyzeOrder(deliveredIDs(delivered))
		return out{overflow: overflow, delivered: len(delivered), ooo: r.OutOfOrderFraction(), blocked: blocked}
	}

	without := run(false)
	with := run(true)

	var b strings.Builder
	fmt.Fprintln(&b, "# Section 6.3 credit-based flow control: 2 UDP-like channels with 10KB")
	fmt.Fprintln(&b, "# receive buffers and a consumer slower than the producer.")
	fmt.Fprintln(&b, row("configuration", "buffer drops", "delivered", "ooo fraction", "sends gated"))
	fmt.Fprintln(&b, row("no flow control",
		fmt.Sprintf("%d", without.overflow),
		fmt.Sprintf("%d/%d", without.delivered, total),
		fmt.Sprintf("%.4f", without.ooo),
		fmt.Sprintf("%d", without.blocked)))
	fmt.Fprintln(&b, row("credits (FCVC, on markers)",
		fmt.Sprintf("%d", with.overflow),
		fmt.Sprintf("%d/%d", with.delivered, total),
		fmt.Sprintf("%.4f", with.ooo),
		fmt.Sprintf("%d", with.blocked)))

	tb := &stats.Table{Title: "Credit flow control", XLabel: "credits(0=off,1=on)", YLabel: "buffer drops", X: []float64{0, 1}}
	tb.AddColumn("drops", []float64{float64(without.overflow), float64(with.overflow)})
	return &Result{ID: "credit", Title: "Credit-based flow control", Text: b.String(), Tables: []*stats.Table{tb}}
}
