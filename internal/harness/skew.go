package harness

import (
	"fmt"
	"strings"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/sim"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "skew",
		Title: "Ablation: FIFO delivery and buffering vs channel skew (Section 4's claim)",
		Run:   runSkew,
	})
}

type skewOut struct {
	ooo       int
	maxBuf    int
	meanLatMs float64
	p99LatMs  float64
	delivered int
}

// runSkewOne runs one (skew, mode) point: an open-loop Poisson source
// striped over two equal-rate links whose propagation delays differ by
// skewMs.
func runSkewOne(cfg Config, skewMs float64, mode core.Mode, count int64) skewOut {
	s := sim.New()
	quanta := sched.UniformQuanta(2, 1500)

	rcfg := core.ResequencerConfig{Mode: mode, N: 2}
	if mode == core.ModeLogical {
		rcfg.Sched = sched.MustSRR(quanta)
	}
	rs, err := core.NewResequencer(rcfg)
	if err != nil {
		panic(err)
	}
	sink := sim.NewSink(s)
	maxBuf := 0
	host, err := sim.NewHost(s, 2, sim.CPUConfig{PerInterrupt: sim.Microsecond, PerPacket: sim.Microsecond},
		func(nic int, p *packet.Packet) {
			rs.Arrive(nic, p)
			if b := rs.Buffered(); b > maxBuf {
				maxBuf = b
			}
			for {
				q, ok := rs.Next()
				if !ok {
					return
				}
				sink.Deliver(q)
			}
		})
	if err != nil {
		panic(err)
	}
	senders := make([]channel.Sender, 2)
	delays := []sim.Time{sim.Millisecond, sim.Millisecond + sim.Time(skewMs*float64(sim.Millisecond))}
	for i := range senders {
		l, err := sim.NewLink(s, fmt.Sprintf("l%d", i), sim.LinkConfig{
			RateBps: 10e6,
			Delay:   delays[i],
			Queue:   4096,
			Seed:    cfg.Seed + int64(i),
		}, host.NICInput(i))
		if err != nil {
			panic(err)
		}
		senders[i] = l
	}
	striper, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: senders,
		Markers:  core.MarkerPolicy{Every: 8, Position: 0},
	})
	if err != nil {
		panic(err)
	}

	// An open-loop Poisson source at ~70% of the 20 Mb/s aggregate
	// (mean 600 B at ~2900 pps).
	src, err := sim.NewSource(s, striper, trace.NewBimodal(200, 1000, 0.5, cfg.Seed+31),
		trace.NewPoisson(343e3, cfg.Seed+32), count)
	if err != nil {
		panic(err)
	}
	sink.SendTime = src.SendTime
	src.Start()
	s.Run(sim.Time(count)*400*sim.Microsecond + sim.Second)

	r := stats.AnalyzeOrder(sink.IDs)
	return skewOut{
		ooo:       r.OutOfOrder,
		maxBuf:    maxBuf,
		meanLatMs: sink.MeanLatency() / 1e6,
		p99LatMs:  float64(stats.Quantile(sink.LatencyNs, 0.99)) / 1e6,
		delivered: len(sink.IDs),
	}
}

// runSkew sweeps the inter-channel skew and compares logical reception
// against no resequencing: LR must deliver FIFO at any skew, paying
// with buffer occupancy proportional to skew x packet rate, while the
// unresequenced baseline misorders more as skew grows.
func runSkew(cfg Config) *Result {
	count := int64(20000)
	if cfg.Quick {
		count = 4000
	}
	skewsMs := []float64{0, 0.5, 1, 2, 5, 10, 20}

	var b strings.Builder
	fmt.Fprintln(&b, "# Skew ablation: 2x10 Mb/s links, Poisson source at ~70% load; link 1's")
	fmt.Fprintln(&b, "# extra propagation delay swept. LR = logical reception; none = arrival order.")
	fmt.Fprintln(&b, row("skew (ms)", "ooo (LR)", "ooo (none)", "max buffered (LR)", "mean lat ms (LR)", "p99 lat ms (LR)"))
	var x, oooLR, oooNone, buf []float64
	for _, skew := range skewsMs {
		lr := runSkewOne(cfg, skew, core.ModeLogical, count)
		nr := runSkewOne(cfg, skew, core.ModeNone, count)
		fmt.Fprintln(&b, row(fmt.Sprintf("%.1f", skew),
			fmt.Sprintf("%d", lr.ooo),
			fmt.Sprintf("%d", nr.ooo),
			fmt.Sprintf("%d", lr.maxBuf),
			fmt.Sprintf("%.2f", lr.meanLatMs),
			fmt.Sprintf("%.2f", lr.p99LatMs)))
		x = append(x, skew)
		oooLR = append(oooLR, float64(lr.ooo))
		oooNone = append(oooNone, float64(nr.ooo))
		buf = append(buf, float64(lr.maxBuf))
	}
	tb := &stats.Table{Title: "Skew ablation", XLabel: "skew ms", YLabel: "ooo / buffered", X: x}
	tb.AddColumn("ooo LR", oooLR)
	tb.AddColumn("ooo none", oooNone)
	tb.AddColumn("max buffered LR", buf)

	// Second act: the peer telemetry plane measuring delay asymmetry
	// and silent loss from the sender's side (peerskew.go).
	peerText, peerTable := peerSkewSection(cfg)
	b.WriteString(peerText)
	return &Result{ID: "skew", Title: "Skew tolerance", Text: b.String(),
		Tables: []*stats.Table{tb, peerTable}}
}
