package harness

import (
	"stripe/internal/baseline"
	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/trace"
)

// pipe is the synchronous test pipeline shared by the non-simulator
// experiments: a striper (CFQ or baseline selector), a group of
// impaired FIFO queues, a skewed arrival pump, and a resequencer.
type pipe struct {
	nch     int
	group   *channel.Group
	striper *core.Striper
	sel     baseline.Selector
	senders []channel.Sender
	reseq   *core.Resequencer
	skew    []int
	nextID  uint64
}

type pipeConfig struct {
	quanta  []int64
	mode    core.Mode
	addSeq  bool
	markers core.MarkerPolicy
	imp     channel.Impairments
	// skew delays channel c's arrivals by skew[c] pump ticks,
	// modelling differing channel latencies.
	skew []int
	// selector, when non-nil, replaces the CFQ striper with a baseline
	// scheme (markers and sequence stamping still apply via addSeq).
	selector baseline.Selector
	// schedFor overrides the automaton (defaults to SRR over quanta).
	schedFor func() sched.RoundBased
}

func newPipe(cfg pipeConfig) (*pipe, error) {
	nch := len(cfg.quanta)
	if cfg.selector != nil {
		nch = cfg.selector.N()
	}
	p := &pipe{nch: nch, sel: cfg.selector}
	p.group = channel.NewGroup(nch, cfg.imp)
	p.senders = p.group.Senders()
	p.skew = make([]int, nch)
	copy(p.skew, cfg.skew)

	mk := func() sched.RoundBased {
		if cfg.schedFor != nil {
			return cfg.schedFor()
		}
		return sched.MustSRR(cfg.quanta)
	}

	if cfg.selector == nil {
		st, err := core.NewStriper(core.StriperConfig{
			Sched:    mk(),
			Channels: p.senders,
			Markers:  cfg.markers,
			AddSeq:   cfg.addSeq,
		})
		if err != nil {
			return nil, err
		}
		p.striper = st
	}

	rcfg := core.ResequencerConfig{Mode: cfg.mode, N: nch}
	if cfg.mode == core.ModeLogical {
		rcfg.Sched = mk()
	}
	rs, err := core.NewResequencer(rcfg)
	if err != nil {
		return nil, err
	}
	p.reseq = rs
	return p, nil
}

// send stripes one packet of the given size.
func (p *pipe) send(size int) error {
	pkt := packet.NewDataSized(size)
	if p.striper != nil {
		return p.striper.Send(pkt)
	}
	pkt.ID = p.nextID
	p.nextID++
	return baseline.Stripe(p.sel, p.senders, pkt)
}

// pump runs the skewed arrival process to completion and returns the
// delivered data packets in delivery order (including a final drain).
func (p *pipe) pump() []*packet.Packet {
	var out []*packet.Packet
	tick := 0
	for {
		moved := false
		for c, q := range p.group.Queues {
			if tick < p.skew[c] {
				if q.Len() > 0 {
					moved = true // still waiting on skewed arrivals
				}
				continue
			}
			if pkt, ok := q.Recv(); ok {
				p.reseq.Arrive(c, pkt)
				moved = true
			}
		}
		for {
			pkt, ok := p.reseq.Next()
			if !ok {
				break
			}
			out = append(out, pkt)
		}
		if !moved {
			break
		}
		tick++
	}
	return append(out, p.reseq.Drain()...)
}

// deliveredIDs extracts ingress IDs from a delivery sequence.
func deliveredIDs(pkts []*packet.Packet) []uint64 {
	ids := make([]uint64, len(pkts))
	for i, p := range pkts {
		ids[i] = p.ID
	}
	return ids
}

// channelBytes returns per-channel transmitted byte counts.
func (p *pipe) channelBytes() []int64 {
	out := make([]int64, p.nch)
	for i, q := range p.group.Queues {
		out[i] = q.Stats().SentBytes
	}
	return out
}

// sendAll pushes n packets drawn from sizes.
func (p *pipe) sendAll(n int, sizes trace.SizeGen) error {
	for i := 0; i < n; i++ {
		if err := p.send(sizes.Next()); err != nil {
			return err
		}
	}
	return nil
}
