package harness

import (
	"testing"

	"stripe/internal/obs"
)

// TestCreditStallRedThenGreen is the regression for the credit-leak
// pathology: grants keyed to delivered bytes alone wedge the sender
// permanently once cumulative loss passes the window, and
// marker-position reconciliation removes the wedge under the identical
// fault schedule.
func TestCreditStallRedThenGreen(t *testing.T) {
	const window = 16 * 1024
	const bufCap = 256
	const total = 2500 // ~1.75MB: cumulative loss at 20% far exceeds the window
	plan := DefaultFaultPlan(4)

	red := RunFaults(plan, 42, window, bufCap, total, false, nil)
	if !red.Stalled {
		t.Fatalf("delivered-byte grants did not stall under 20%% loss: %+v", red)
	}
	if red.Sent >= total {
		t.Fatalf("red run completed despite the credit leak: %+v", red)
	}

	green := RunFaults(plan, 42, window, bufCap, total, true, nil)
	if green.Stalled {
		t.Fatalf("reconciled grants stalled: %+v", green)
	}
	if green.Sent != total {
		t.Fatalf("reconciled run sent %d of %d", green.Sent, total)
	}
	if green.LostReconciled == 0 {
		t.Fatal("no bytes were written off despite 20% loss")
	}
	// Gated streaks must clear within roughly one marker/credit cycle:
	// the refresh period is 16 iterations, so a streak orders of
	// magnitude longer would mean credits are leaking again.
	if green.MaxGatedStreak > 500 {
		t.Fatalf("max gated streak %d: credits are not self-healing", green.MaxGatedStreak)
	}
}

// TestJitterReordersButPreservesDelivery checks the FaultPlan delay
// jitter: packets on a jittery channel are delayed but stay FIFO within
// the channel, so the run still completes and delivers everything —
// while the cross-channel reordering forces the resequencer to buffer
// visibly more than the smooth run.
func TestJitterReordersButPreservesDelivery(t *testing.T) {
	const total = 1500
	mk := func(jit int) FaultPlan {
		plan := FaultPlan{Channels: make([]ChannelFaults, 4)}
		plan.Channels[2].Jitter = jit
		return plan
	}
	smooth := RunFaults(mk(0), 11, 16*1024, 256, total, true, nil)
	jittery := RunFaults(mk(12), 11, 16*1024, 256, total, true, nil)

	if jittery.Stalled || jittery.Sent != total {
		t.Fatalf("jittery run did not complete: %+v", jittery)
	}
	if jittery.Delivered != smooth.Delivered {
		t.Fatalf("jitter changed delivery count: smooth %d, jittery %d",
			smooth.Delivered, jittery.Delivered)
	}
	if jittery.Overflows != 0 {
		t.Fatalf("jitter alone overflowed the resequencer: %+v", jittery)
	}
	if jittery.MaxBuffered <= smooth.MaxBuffered {
		t.Fatalf("jitter did not reorder across channels: high-water %d vs smooth %d",
			jittery.MaxBuffered, smooth.MaxBuffered)
	}
}

// TestFaultsAcceptance is the issue's acceptance run, verified through
// the observability counters: 20% per-channel loss over traffic an
// order of magnitude past the credit window, zero permanent credit
// stalls, and resequencer occupancy bounded by the configured cap (the
// hard bound is twice the soft cap, at which point arrivals drop).
func TestFaultsAcceptance(t *testing.T) {
	const nch = 4
	const window = 16 * 1024
	const bufCap = 128
	const total = 3000 // ~2.1MB >> 10x window

	col := obs.NewCollector(nch)
	rep := RunFaults(DefaultFaultPlan(nch), 7, window, bufCap, total, true, col)
	if rep.Stalled {
		t.Fatalf("permanent credit stall: %+v", rep)
	}
	if rep.Sent != total {
		t.Fatalf("sent %d of %d", rep.Sent, total)
	}
	if rep.MaxBuffered > 2*bufCap {
		t.Fatalf("resequencer occupancy %d exceeded the hard bound %d", rep.MaxBuffered, 2*bufCap)
	}

	snap := col.Snapshot()
	if snap.BufferedHighWater > 2*bufCap {
		t.Fatalf("obs high-water %d exceeded the hard bound %d", snap.BufferedHighWater, 2*bufCap)
	}
	var reconciles, lost int64
	for _, ch := range snap.Channels {
		reconciles += ch.CreditReconciles
		lost += ch.LostReconciled
	}
	if reconciles == 0 || lost == 0 {
		t.Fatalf("obs recorded no reconciliation (reconciles=%d lost=%d)", reconciles, lost)
	}
	if lost != rep.LostReconciled {
		t.Fatalf("obs lost bytes %d != manager lost bytes %d", lost, rep.LostReconciled)
	}
	if snap.CreditRejects != 0 {
		t.Fatalf("%d legitimate grants were rejected by the gate", snap.CreditRejects)
	}
}
