package harness

import (
	"fmt"
	"strings"

	"stripe/internal/core"
	"stripe/internal/sched"
	"stripe/internal/sim"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "aggregate",
		Title: "Ablation: aggregate TCP goodput vs number of striped links (the 'scalable' claim)",
		Run:   runAggregate,
	})
}

// runAggregate stripes a TCP transfer over 1..8 identical 10 Mb/s links
// (think T1 bundles or the four STS-3c channels of the IBM SIA) and
// reports goodput and efficiency. With a generous receiver the speedup
// is near linear — the paper's "nearly linear speedup" claim — until
// the per-interface interrupt load of many half-busy NICs catches up,
// the same ceiling Figure 15 shows for two.
func runAggregate(cfg Config) *Result {
	d := 4 * sim.Second
	counts := []int{1, 2, 3, 4, 6, 8}
	if cfg.Quick {
		d = 1500 * sim.Millisecond
		counts = []int{1, 2, 4, 8}
	}
	const rate = 10e6

	run := func(n int) float64 {
		links := make([]sim.LinkConfig, n)
		for i := range links {
			links[i] = sim.LinkConfig{RateBps: rate, Delay: 500 * sim.Microsecond, Queue: 768, Seed: cfg.Seed + int64(i)}
		}
		pc := sim.PathConfig{
			Links: links,
			// A faster receiver than Figure 15's: the point here is link
			// aggregation, not the CPU wall (which fig15 covers).
			CPU: sim.CPUConfig{
				PerInterrupt: 40 * sim.Microsecond,
				PerPacket:    20 * sim.Microsecond,
				PerByte:      10,
				Ring:         128,
				Coalesce:     sim.Millisecond,
			},
			TCP: sim.TCPConfig{Sizes: trace.NewBimodal(200, 1000, 0.5, cfg.Seed+41), RcvWnd: 262144},
		}
		if n > 1 {
			pc.Sched = sched.MustSRR(sched.UniformQuanta(n, 1500))
			pc.Mode = core.ModeLogical
			pc.Markers = core.MarkerPolicy{Every: 2, Position: 0}
			pc.MarkerInterval = 2 * sim.Millisecond
		}
		p, err := sim.BuildTCPPath(pc)
		if err != nil {
			panic(err)
		}
		return p.Run(d)
	}

	var b strings.Builder
	fmt.Fprintln(&b, "# Aggregate goodput vs striped link count (10 Mb/s links, TCP, SRR+LR).")
	fmt.Fprintln(&b, row("links", "goodput Mb/s", "capacity Mb/s", "efficiency"))
	var x, gp, eff []float64
	for _, n := range counts {
		mbps := run(n)
		capacity := float64(n) * rate / 1e6
		fmt.Fprintln(&b, row(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", mbps),
			fmt.Sprintf("%.0f", capacity),
			fmt.Sprintf("%.2f", mbps/capacity)))
		x = append(x, float64(n))
		gp = append(gp, mbps)
		eff = append(eff, mbps/capacity)
	}
	tb := &stats.Table{Title: "Aggregate goodput vs link count", XLabel: "links", YLabel: "Mb/s", X: x}
	tb.AddColumn("goodput", gp)
	tb.AddColumn("efficiency", eff)
	return &Result{ID: "aggregate", Title: "Link-count scaling", Text: b.String(), Tables: []*stats.Table{tb}}
}
