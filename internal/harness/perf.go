package harness

import (
	"runtime"
	"strconv"
	"time"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/obs"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/trace"
)

// PerfBench is one machine-readable micro-benchmark result.
type PerfBench struct {
	Name    string  `json:"name"`
	Ops     int     `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
	// AllocsPerOp is the heap allocations per op in the reported
	// (fastest) pass, so the zero-alloc batched path is tracked in the
	// perf trajectory rather than only asserted in tests.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// PerfReport is the output of RunPerf: the perf trajectory record that
// `stripebench -json` emits for CI to archive, so regressions between
// PRs are a diff of two JSON files rather than an anecdote.
type PerfReport struct {
	Benches []PerfBench `json:"benchmarks"`
	// Quantiles holds lifecycle latency quantiles (nanoseconds) from a
	// traced pipeline run: histogram name -> {"p50","p90","p99"}.
	Quantiles map[string]map[string]int64 `json:"latency_quantiles_ns"`
}

// perfPasses splits each row's measurement into independent passes; the
// fastest pass is reported. The workload is deterministic, so the
// passes differ only in how much the machine interfered — the fastest
// is the least-perturbed measurement, and taking it keeps within-record
// row ratios comparable even when a shared runner's speed drifts
// between rows.
const perfPasses = 5

// perfLoop runs fn ops times (split into perfPasses passes) and folds
// the fastest pass into a PerfBench. bytesPerOp feeds the MB/s figure
// (0 disables it).
func perfLoop(name string, ops int, bytesPerOp int64, fn func(i int)) PerfBench {
	per := ops / perfPasses
	if per == 0 {
		per = 1
	}
	best, bestAllocs := 0.0, 0.0
	var msBefore, msAfter runtime.MemStats
	for p := 0; p < perfPasses; p++ {
		// Mallocs deltas bracket the timed region from outside it, so
		// the stop-the-world ReadMemStats never lands in a measurement.
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		for i := 0; i < per; i++ {
			fn(p*per + i)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(per)
		runtime.ReadMemStats(&msAfter)
		if best == 0 || ns < best {
			best = ns
			bestAllocs = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(per)
		}
	}
	b := PerfBench{
		Name:        name,
		Ops:         per * perfPasses,
		NsPerOp:     best,
		AllocsPerOp: bestAllocs,
	}
	if bytesPerOp > 0 && best > 0 {
		b.MBPerS = float64(bytesPerOp) / best * 1e3
	}
	return b
}

// RunPerf measures the protocol's software hot paths: the striper send
// path alone, the full stripe->channel->resequence pipeline, and the
// pipeline with a lifecycle tracer sampling every packet (which also
// yields the latency quantiles). Deterministic workload under cfg.Seed;
// wall-clock timings vary with the machine, which is the point.
func RunPerf(cfg Config) PerfReport {
	ops := 200_000
	if cfg.Quick {
		ops = 50_000
	}
	const nch = 4
	quanta := sched.UniformQuanta(nch, 1500)
	rep := PerfReport{Quantiles: map[string]map[string]int64{}}

	// The bimodal packet-size schedule is drawn ahead of time so the
	// timed loops measure the protocol rather than math/rand, and every
	// pipeline row stripes the identical sequence. Rows consume it
	// through their own cursor, wrapping if they outrun it.
	sizes := make([]int, ops)
	{
		bim := trace.NewBimodal(200, 1000, 0.5, cfg.Seed)
		for i := range sizes {
			sizes[i] = bim.Next()
		}
	}

	// Striper hot path alone: perfect channels, queues drained inline.
	{
		g := channel.NewGroup(nch, channel.Impairments{})
		st, err := core.NewStriper(core.StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: g.Senders(),
			Markers:  core.MarkerPolicy{Every: 4, Position: 0},
		})
		if err != nil {
			panic(err)
		}
		payload := make([]byte, 1000)
		rep.Benches = append(rep.Benches, perfLoop("striper_send", ops, 1000, func(int) {
			if err := st.Send(packet.NewData(payload)); err != nil {
				panic(err)
			}
			for _, q := range g.Queues {
				q.Recv() //nolint:errcheck // drained, not inspected
			}
		}))
	}

	// Full pipeline, plain and traced. The traced run samples every
	// packet so its histograms feed the quantile record.
	pipeline := func(name string, col *obs.Collector) {
		g := channel.NewGroup(nch, channel.Impairments{})
		st, err := core.NewStriper(core.StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: g.Senders(),
			Markers:  core.MarkerPolicy{Every: 4, Position: 0},
			Obs:      col,
		})
		if err != nil {
			panic(err)
		}
		rs, err := core.NewResequencer(core.ResequencerConfig{
			Sched: sched.MustSRR(quanta),
			Mode:  core.ModeLogical,
			Obs:   col,
		})
		if err != nil {
			panic(err)
		}
		payload := make([]byte, 1500)
		si := 0
		var bytes int64
		bench := perfLoop(name, ops, 0, func(int) {
			p := packet.NewData(payload[:sizes[si]])
			if si++; si == len(sizes) {
				si = 0
			}
			bytes += int64(p.Len())
			if err := st.Send(p); err != nil {
				panic(err)
			}
			for c, q := range g.Queues {
				if pkt, ok := q.Recv(); ok {
					rs.Arrive(c, pkt)
				}
			}
			for {
				if _, ok := rs.Next(); !ok {
					break
				}
			}
		})
		if ns := bench.NsPerOp * float64(bench.Ops); ns > 0 {
			bench.MBPerS = float64(bytes) / (ns / 1e9) / 1e6
		}
		rep.Benches = append(rep.Benches, bench)
	}
	pipeline("pipeline", nil)

	// The batched pipeline: same workload, but packets flow through
	// SendBatch in fixed-size batches of pooled packets, and delivered
	// packets are released back to the pool. Batch size 1 measures the
	// batch machinery's fixed cost against the `pipeline` row; 16 and
	// 256 measure the amortization win. ns_per_op is per batch; MB/s is
	// the cross-row comparable figure.
	batched := func(batch int) {
		name := "pipeline_batched_" + strconv.Itoa(batch)
		g := channel.NewGroup(nch, channel.Impairments{})
		st, err := core.NewStriper(core.StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: g.Senders(),
			Markers:  core.MarkerPolicy{Every: 4, Position: 0},
		})
		if err != nil {
			panic(err)
		}
		rs, err := core.NewResequencer(core.ResequencerConfig{
			Sched: sched.MustSRR(quanta),
			Mode:  core.ModeLogical,
		})
		if err != nil {
			panic(err)
		}
		pkts := make([]*packet.Packet, batch)
		delivered := make([]*packet.Packet, 0, batch+nch)
		// iters keeps every pipeline-family row at the same packet
		// count, so each perfLoop pass covers the same workload in the
		// same wall time and best-of-pass selection biases every row
		// equally — a prerequisite for comparing MB/s across rows.
		iters := ops / batch
		if iters < perfPasses {
			iters = perfPasses
		}
		si := 0
		var bytes int64
		run := func(int) {
			packet.GetBatch(pkts)
			for _, p := range pkts {
				p.Kind = packet.Data
				p.Resize(sizes[si])
				if si++; si == len(sizes) {
					si = 0
				}
				bytes += int64(p.Len())
			}
			if n, err := st.SendBatch(pkts); err != nil || n != batch {
				panic(err)
			}
			for c, q := range g.Queues {
				for {
					pkt, ok := q.Recv()
					if !ok {
						break
					}
					rs.Arrive(c, pkt)
				}
			}
			for {
				n := rs.NextBatch(delivered[:cap(delivered)])
				if n == 0 {
					break
				}
				packet.ReleaseBatch(delivered[:n])
			}
		}
		// Unmeasured warmup: the large-batch rows run few timed
		// iterations, so steady state (populated free-list slab, sized
		// queue and resequencer buffers) must be reached before the
		// clock starts or cold-start noise swamps the row.
		warm := iters / 8
		if warm < 8 {
			warm = 8
		}
		for i := 0; i < warm; i++ {
			run(i)
		}
		bytes = 0
		bench := perfLoop(name, iters, 0, run)
		if ns := bench.NsPerOp * float64(bench.Ops); ns > 0 {
			bench.MBPerS = float64(bytes) / (ns / 1e9) / 1e6
		}
		rep.Benches = append(rep.Benches, bench)
	}
	batched(1)
	batched(16)
	batched(256)

	col := obs.NewCollector(nch)
	tracer := obs.NewTracer(obs.TracerConfig{Sample: 1})
	col.SetTracer(tracer)
	pipeline("pipeline_traced", col)

	// The fully instrumented pipeline: collector, every-packet tracer,
	// and the windowed rollup folding on a short tick while traffic
	// flows. This is the row CI watches to keep the windowed overhead
	// honest — folds amortize over the tick, so it must track
	// pipeline_traced, not fall off a cliff.
	wcol := obs.NewCollector(nch)
	wtracer := obs.NewTracer(obs.TracerConfig{Sample: 1})
	wcol.SetTracer(wtracer)
	obs.NewWindows(wcol, obs.WindowConfig{
		Tick:  100 * time.Millisecond,
		Spans: []time.Duration{time.Second, 10 * time.Second},
	})
	pipeline("pipeline_windowed", wcol)

	ts := tracer.Snapshot()
	quant := func(h obs.HistogramSnapshot) map[string]int64 {
		return map[string]int64{
			"p50": h.Quantile(0.50),
			"p90": h.Quantile(0.90),
			"p99": h.Quantile(0.99),
		}
	}
	rep.Quantiles["e2e"] = quant(ts.EndToEnd)
	rep.Quantiles["reseq"] = quant(ts.ReseqDelay)
	rep.Quantiles["hol"] = quant(ts.HeadOfLine)
	return rep
}
