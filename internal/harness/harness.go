// Package harness contains one runner per table and figure of the
// paper's evaluation (and the ablations listed in DESIGN.md). Each
// experiment is deterministic under its seed and reports the same rows
// or series the paper reports, so the whole evaluation regenerates from
// `go test -bench` or the stripebench command.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"stripe/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Quick trades sweep resolution and run length for speed; benches
	// use it, the CLI defaults to full scale.
	Quick bool
	// Seed perturbs every random process in the experiment.
	Seed int64
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Text is the formatted table(s), ready to print.
	Text string
	// Tables carries the structured series for programmatic checks.
	Tables []*stats.Table
}

// Experiment is a registered runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) *Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// row formats one aligned table row for free-form result text.
func row(cells ...string) string {
	var b strings.Builder
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(&b, "%-28s", c)
		} else {
			fmt.Fprintf(&b, " %16s", c)
		}
	}
	return b.String()
}
