package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/obs"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

// peerSkewLine is a FIFO channel with a fixed propagation delay on a
// shared virtual clock and optional *silent* data loss: Send always
// reports success, so the sender's local error accounting never moves.
// That is precisely the failure mode only the peer telemetry plane can
// see.
type peerSkewLine struct {
	now     *int64
	delayNs int64
	loss    float64
	rng     *rand.Rand
	q       []peerSkewArrival
	head    int
}

type peerSkewArrival struct {
	at int64
	p  *packet.Packet
}

func (l *peerSkewLine) Send(p *packet.Packet) error {
	if p.Kind == packet.Data && l.loss > 0 && l.rng.Float64() < l.loss {
		return nil // dropped without a trace: the sender sees success
	}
	l.q = append(l.q, peerSkewArrival{at: *l.now + l.delayNs, p: p})
	return nil
}

// pop returns the next arrival due at or before now, nil when none.
func (l *peerSkewLine) pop(now int64) *packet.Packet {
	if l.head >= len(l.q) || l.q[l.head].at > now {
		return nil
	}
	p := l.q[l.head].p
	l.q[l.head].p = nil
	l.head++
	if l.head == len(l.q) {
		l.q, l.head = l.q[:0], 0
	}
	return p
}

// peerSkewChannelOut is one channel's outcome from the peer-telemetry
// scenario.
type peerSkewChannelOut struct {
	delayNs   int64   // configured one-way propagation delay
	owdNs     int64   // PeerView's min-filtered one-way delay estimate
	relNs     int64   // estimate relative to the bundle's fastest channel
	lossFrac  float64 // peer-reported loss EWMA
	errStreak int64   // sender-local transport error streak
}

type peerSkewOut struct {
	channels  []peerSkewChannelOut
	skewNs    int64 // bundle skew from the peer snapshot
	reports   uint64
	delivered int
}

// runPeerSkewOne drives a striper over three delay lines with
// asymmetric propagation (and one silently lossy channel) on a virtual
// clock, feeding the receiver's telemetry blocks through the wire codec
// back into a sender-side PeerView — the deterministic version of what
// a Session does on its marker timer.
func runPeerSkewOne(cfg Config, iters int, delaysNs []int64, lossOn int, loss float64) peerSkewOut {
	const tickNs = 100_000 // 100µs of virtual time per data packet
	nch := len(delaysNs)
	var vnow int64
	clock := func() int64 { return vnow }

	lines := make([]*peerSkewLine, nch)
	senders := make([]channel.Sender, nch)
	for c := range lines {
		l := 0.0
		if c == lossOn {
			l = loss
		}
		lines[c] = &peerSkewLine{
			now: &vnow, delayNs: delaysNs[c], loss: l,
			rng: rand.New(rand.NewSource(cfg.Seed + int64(c)*101)),
		}
		senders[c] = lines[c]
	}
	quanta := sched.UniformQuanta(nch, 1500)
	st, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: senders,
		Markers:  core.MarkerPolicy{Every: 8, Position: 0},
		Now:      clock,
	})
	if err != nil {
		panic(err)
	}
	rs, err := core.NewResequencer(core.ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  core.ModeLogical,
		Now:   clock,
	})
	if err != nil {
		panic(err)
	}
	pv := obs.NewPeerView(nch)

	sizes := trace.NewBimodal(200, 1000, 0.5, cfg.Seed+17)
	delivered := 0
	for i := 0; i < iters; i++ {
		vnow += tickNs
		if err := st.Send(packet.NewDataSized(sizes.Next())); err != nil {
			panic(err)
		}
		for c, l := range lines {
			for {
				p := l.pop(vnow)
				if p == nil {
					break
				}
				rs.Arrive(c, p)
			}
		}
		for {
			if _, ok := rs.Next(); !ok {
				break
			}
			delivered++
		}
		// Telemetry cadence: one report per 64 ticks, through the wire
		// codec (encode, decode, fold) exactly as a session would.
		if i%64 == 63 {
			t, err := packet.TelemetryOf(packet.NewTelemetry(rs.TelemetryBlock()))
			if err != nil {
				panic(err)
			}
			pv.Apply(t, vnow)
		}
	}

	out := peerSkewOut{channels: make([]peerSkewChannelOut, nch), delivered: delivered}
	snap := pv.Latest()
	if snap == nil {
		return out
	}
	out.skewNs = snap.SkewNs
	out.reports = snap.Seq
	for c := 0; c < nch; c++ {
		out.channels[c] = peerSkewChannelOut{
			delayNs:   delaysNs[c],
			owdNs:     snap.Channels[c].OneWayDelayNs,
			relNs:     snap.Channels[c].RelativeDelayNs,
			lossFrac:  snap.Channels[c].LossFrac,
			errStreak: st.ErrStreak(c),
		}
	}
	return out
}

// peerSkewSection renders the peer-telemetry scenario: asymmetric
// per-channel delays plus one silently lossy channel, with the
// sender-side PeerView's estimates against ground truth.
func peerSkewSection(cfg Config) (string, *stats.Table) {
	iters := 20000
	if cfg.Quick {
		iters = 4000
	}
	delays := []int64{2e6, 8e6, 20e6} // 2ms / 8ms / 20ms one-way
	const lossOn, loss = 1, 0.30
	o := runPeerSkewOne(cfg, iters, delays, lossOn, loss)

	var b strings.Builder
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "# Peer telemetry: 3 channels with 2/8/20 ms one-way delays; channel 1")
	fmt.Fprintln(&b, "# drops 30% of data *silently* (sends succeed, local error streak stays 0).")
	fmt.Fprintln(&b, "# The sender-side PeerView reports the receiver-measured loss and recovers")
	fmt.Fprintln(&b, "# the delay asymmetry from marker tx/rx pairs (min-filter).")
	fmt.Fprintln(&b, row("ch", "true delay (ms)", "est owd (ms)", "rel delay (ms)", "peer loss", "err streak"))
	var x, est, lf []float64
	for c, ch := range o.channels {
		fmt.Fprintln(&b, row(fmt.Sprintf("%d", c),
			fmt.Sprintf("%.1f", float64(ch.delayNs)/1e6),
			fmt.Sprintf("%.1f", float64(ch.owdNs)/1e6),
			fmt.Sprintf("%.1f", float64(ch.relNs)/1e6),
			fmt.Sprintf("%.1f%%", 100*ch.lossFrac),
			fmt.Sprintf("%d", ch.errStreak)))
		x = append(x, float64(c))
		est = append(est, float64(ch.owdNs)/1e6)
		lf = append(lf, ch.lossFrac)
	}
	fmt.Fprintf(&b, "# bundle skew estimate %.1f ms (true 18.0), %d reports, %d delivered\n",
		float64(o.skewNs)/1e6, o.reports, o.delivered)
	tb := &stats.Table{Title: "Peer telemetry", XLabel: "channel", YLabel: "est owd ms / peer loss", X: x}
	tb.AddColumn("est owd ms", est)
	tb.AddColumn("peer loss", lf)
	return b.String(), tb
}
