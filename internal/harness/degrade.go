package harness

import (
	"time"

	"stripe/internal/channel"
	"stripe/internal/obs"
)

// The degrading-channel scenario: one channel of the bundle decays
// under a heavy Gilbert–Elliott burst-loss process while the rest stay
// nearly clean, and the question is which monitor notices. The
// error-streak rule cannot — an impaired in-process channel drops
// silently, so Send never errors and the streak stays at zero — but
// the windowed health score sees the loss evidence (credit write-offs,
// resync storms) and flags the channel with a loss/resync reason code.
// This is the acceptance scenario for evidence-based eviction:
// score-based detection fires while streak-based eviction never would.

// DegradeErrStreakThreshold is the session health monitor's default
// error-streak eviction threshold the scenario compares against.
const DegradeErrStreakThreshold = 8

// DegradeScoreThreshold is the health-score bar the degraded channel
// must fall below (and the clean channels must stay well above).
const DegradeScoreThreshold = 60

// DegradePlan returns the scenario's fault schedule: every channel at
// 1% i.i.d. loss with mild jitter, channel 1 additionally under a
// Gilbert–Elliott process that spends half its time in a 90%-loss bad
// state (~46% effective loss) — a link that is dying, not flapping.
func DegradePlan(nch int) FaultPlan {
	plan := FaultPlan{Channels: make([]ChannelFaults, nch)}
	for i := range plan.Channels {
		plan.Channels[i].Loss = 0.01
		plan.Channels[i].Jitter = 2
	}
	if nch > 1 {
		plan.Channels[1].Burst = channel.GilbertElliott{
			PGoodToBad: 0.06, PBadToGood: 0.06, BadLoss: 0.9,
		}
	}
	return plan
}

// DegradeOutcome is the result of one degrading-channel run.
type DegradeOutcome struct {
	Report FaultReport
	// Windows is the final rollup; Scores its per-channel health
	// scores (Scores[1] is the degraded channel).
	Windows *obs.WindowsSnapshot
	Scores  []obs.HealthScore
}

// RunDegrade drives the degrading-channel scenario with windowed
// telemetry attached and returns the final health scores alongside the
// run report. The window tick is small so rollups fold during the run;
// a forced final fold makes the returned scores cover the whole run
// regardless of wall-clock speed.
func RunDegrade(cfg Config) DegradeOutcome {
	const nch = 4
	const window = 64 * 1024
	const bufCap = 512
	total := 6000
	if cfg.Quick {
		total = 2000
	}
	plan := DegradePlan(nch)
	col := obs.NewCollector(nch)
	tracer := obs.NewTracer(obs.TracerConfig{Sample: 1})
	col.SetTracer(tracer)
	w := obs.NewWindows(col, obs.WindowConfig{
		Tick:  5 * time.Millisecond,
		Spans: []time.Duration{30 * time.Second},
	})
	rep := RunFaults(plan, cfg.Seed+2, window, bufCap, total, true, col)
	w.Fold()
	snap := w.Latest()
	return DegradeOutcome{Report: rep, Windows: snap, Scores: snap.Health}
}
