package harness

import (
	"fmt"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"aggregate", "credit", "faults", "fig15", "flap", "loss", "markerfreq", "markerpos", "quantum", "scaling", "skew", "srrgrr", "table1", "video"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registered %v, want %v", ids, want)
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := ByID("fig15"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("ByID found a ghost")
	}
}

func colByLabel(t *testing.T, r *Result, table int, label string) []float64 {
	t.Helper()
	if table >= len(r.Tables) {
		t.Fatalf("%s has %d tables", r.ID, len(r.Tables))
	}
	for _, c := range r.Tables[table].Columns {
		if c.Label == label {
			return c.Points
		}
	}
	t.Fatalf("%s: no column %q", r.ID, label)
	return nil
}

// TestLossSweepRecovers asserts the headline Section 6.3 finding: FIFO
// delivery is restored after losses stop, for every loss rate up to 80%.
func TestLossSweepRecovers(t *testing.T) {
	r := runLossSweep(quickCfg())
	rec := colByLabel(t, r, 0, "recovered")
	for i, v := range rec {
		if v != 1 {
			t.Fatalf("loss point %d did not recover:\n%s", i, r.Text)
		}
	}
	// Without loss delivery is perfectly FIFO; with loss, misordering
	// appears during the lossy phase. (The *fraction* is not monotone in
	// the loss rate: at extreme loss few packets survive to be late.)
	ooo := colByLabel(t, r, 0, "ooo")
	if ooo[0] != 0 {
		t.Fatalf("lossless run had ooo fraction %v", ooo[0])
	}
	maxOOO := 0.0
	for _, v := range ooo[1:] {
		if v > maxOOO {
			maxOOO = v
		}
	}
	if maxOOO < 0.02 {
		t.Fatalf("loss produced almost no misordering (max %.4f); scenario too gentle:\n%s", maxOOO, r.Text)
	}
}

// TestMarkerFrequencyHelps asserts more frequent markers mean fewer
// out-of-order deliveries (comparing the extremes, which tolerates
// non-monotonic neighbours).
func TestMarkerFrequencyHelps(t *testing.T) {
	r := runMarkerFrequency(quickCfg())
	ooo := colByLabel(t, r, 0, "ooo")
	if len(ooo) < 4 {
		t.Fatalf("too few points:\n%s", r.Text)
	}
	first, last := ooo[0], ooo[len(ooo)-1]
	if first >= last {
		t.Fatalf("markers every round (%v ooo) not better than every 64 rounds (%v ooo):\n%s", first, last, r.Text)
	}
}

// TestMarkerPositionRuns sanity-checks the position sweep; the paper's
// claim (round boundaries best) is recorded in EXPERIMENTS.md from the
// full-scale run rather than asserted on the quick one.
func TestMarkerPositionRuns(t *testing.T) {
	r := runMarkerPosition(quickCfg())
	ooo := colByLabel(t, r, 0, "ooo")
	if len(ooo) != 8 {
		t.Fatalf("expected 8 positions, got %d", len(ooo))
	}
	for i, v := range ooo {
		if v < 0 {
			t.Fatalf("position %d has negative ooo", i)
		}
	}
}

// TestCreditEliminatesOverflow asserts the flow-control claim exactly:
// zero buffer drops with credits, real drops without.
func TestCreditEliminatesOverflow(t *testing.T) {
	r := runCredit(quickCfg())
	drops := colByLabel(t, r, 0, "drops")
	if drops[0] == 0 {
		t.Fatalf("uncontrolled run lost nothing; the scenario is too gentle:\n%s", r.Text)
	}
	if drops[1] != 0 {
		t.Fatalf("credits did not eliminate buffer drops (%v):\n%s", drops[1], r.Text)
	}
}

// TestVideoShapes asserts the NV findings: perfect delivery without
// loss, and a negligible reorder penalty at low loss rates (the paper's
// "quasi-FIFO is adequate" argument).
func TestVideoShapes(t *testing.T) {
	r := runVideo(quickCfg())
	quasi := colByLabel(t, r, 0, "quasi-FIFO")
	pure := colByLabel(t, r, 0, "loss-only")
	if quasi[0] < 0.999 {
		t.Fatalf("lossless video not fully usable: %v", quasi[0])
	}
	// Up to 10% loss the reorder penalty stays small in absolute terms.
	for i := 0; i < 3; i++ {
		if d := pure[i] - quasi[i]; d > 0.08 {
			t.Fatalf("reorder penalty %.3f at point %d too large:\n%s", d, i, r.Text)
		}
	}
	// Loss, not reordering, dominates the damage at high rates.
	last := len(quasi) - 1
	if pure[last] > 0.8 {
		t.Fatalf("loss-only usability %.3f at 60%% loss is implausibly high", pure[last])
	}
}

// TestSRRBeatsGRROnAdversarialWorkload asserts the Section 6.2 result.
func TestSRRBeatsGRROnAdversarialWorkload(t *testing.T) {
	r := runSRRvsGRR(quickCfg())
	goodput := colByLabel(t, r, 0, "goodput")
	srr, grr := goodput[0], goodput[1]
	if srr < grr*1.3 {
		t.Fatalf("SRR %.2f Mb/s vs GRR %.2f Mb/s; expected a dramatic gap:\n%s", srr, grr, r.Text)
	}
}

// TestFig15Shapes asserts the orderings the paper reports, on the quick
// three-point sweep.
func TestFig15Shapes(t *testing.T) {
	r := runFig15(quickCfg())
	sum := colByLabel(t, r, 0, "sum(Eth+ATM)")
	srrLR := colByLabel(t, r, 0, "SRR+LR")
	srrNR := colByLabel(t, r, 0, "SRR")
	grrLR := colByLabel(t, r, 0, "GRR+LR")
	grrNR := colByLabel(t, r, 0, "GRR")
	rrLR := colByLabel(t, r, 0, "RR+LR")
	rrNR := colByLabel(t, r, 0, "RR")

	for i := range sum {
		if srrLR[i] > sum[i]*1.05 {
			t.Fatalf("point %d: SRR+LR %.2f above the upper bound %.2f", i, srrLR[i], sum[i])
		}
		if srrLR[i] < srrNR[i] {
			t.Fatalf("point %d: no-reseq SRR beat logical reception", i)
		}
		if grrLR[i] < grrNR[i] {
			t.Fatalf("point %d: no-reseq GRR beat logical reception", i)
		}
		if rrLR[i] < rrNR[i] {
			t.Fatalf("point %d: no-reseq RR beat logical reception", i)
		}
		if srrLR[i] < grrLR[i]*0.95 {
			t.Fatalf("point %d: SRR+LR %.2f below GRR+LR %.2f", i, srrLR[i], grrLR[i])
		}
	}
	// Low-rate point: strIPe tracks the sum of the interfaces.
	if srrLR[0] < sum[0]*0.9 {
		t.Fatalf("SRR+LR %.2f does not track the sum %.2f at low ATM rate", srrLR[0], sum[0])
	}
	// High-rate point: RR stays pinned near 2x the slower link while
	// SRR keeps the aggregate clearly higher.
	last := len(sum) - 1
	if srrLR[last] < rrLR[last]*1.15 {
		t.Fatalf("SRR+LR %.2f not clearly above RR+LR %.2f at high ATM rate:\n%s",
			srrLR[last], rrLR[last], r.Text)
	}
}

// TestQuantumAblationWithinBound asserts the Theorem 3.2 bound holds
// across the quantum sweep.
func TestQuantumAblationWithinBound(t *testing.T) {
	r := runQuantumAblation(quickCfg())
	dev := colByLabel(t, r, 0, "worst deviation")
	bound := colByLabel(t, r, 0, "bound")
	for i := range dev {
		if dev[i] > bound[i] {
			t.Fatalf("point %d: deviation %v exceeds bound %v:\n%s", i, dev[i], bound[i], r.Text)
		}
	}
}

// TestChannelScalingFIFO asserts the protocol stays FIFO and live as
// channel counts grow.
func TestChannelScalingFIFO(t *testing.T) {
	r := runChannelScaling(quickCfg())
	if strings.Contains(r.Text, "false") {
		t.Fatalf("a scaling configuration broke FIFO delivery:\n%s", r.Text)
	}
}

// TestSkewToleranceShapes asserts the Section 4 claim: logical
// reception is FIFO at any skew, its buffering grows with skew, and the
// unresequenced baseline misorders more as skew grows.
func TestSkewToleranceShapes(t *testing.T) {
	r := runSkew(quickCfg())
	lr := colByLabel(t, r, 0, "ooo LR")
	nr := colByLabel(t, r, 0, "ooo none")
	buf := colByLabel(t, r, 0, "max buffered LR")
	for i, v := range lr {
		if v != 0 {
			t.Fatalf("logical reception misordered %v packets at skew point %d:\n%s", v, i, r.Text)
		}
	}
	last := len(nr) - 1
	if nr[last] <= nr[0] {
		t.Fatalf("no-reseq misordering did not grow with skew:\n%s", r.Text)
	}
	if buf[last] <= buf[0] {
		t.Fatalf("LR buffering did not grow with skew:\n%s", r.Text)
	}
}

// TestAggregateNearLinear asserts the "nearly linear speedup" claim:
// efficiency stays high at every striped width.
func TestAggregateNearLinear(t *testing.T) {
	r := runAggregate(quickCfg())
	eff := colByLabel(t, r, 0, "efficiency")
	for i, e := range eff {
		if e < 0.8 {
			t.Fatalf("efficiency %.2f at point %d:\n%s", e, i, r.Text)
		}
	}
}

// TestTable1Shapes checks the measured feature matrix against the
// paper's qualitative table.
func TestTable1Shapes(t *testing.T) {
	r := runTable1(quickCfg())
	lines := strings.Split(strings.TrimSpace(r.Text), "\n")
	get := func(prefix string) []string {
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				return strings.Fields(l[28:])
			}
		}
		t.Fatalf("no row %q in:\n%s", prefix, r.Text)
		return nil
	}
	parse := func(s string) float64 {
		var f float64
		if _, err := fmt.Sscan(s, &f); err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return f
	}
	rrNoHdr := get("RR, no header")
	rrHdr := get("RR with header")
	srrHdr := get("SRR with header")
	srrNoHdr := get("SRR, no header (strIPe)")
	bonding := get("BONDING")

	// FIFO column (no loss): RR-no-header misorders under skew; every
	// resequenced variant is clean.
	if parse(rrNoHdr[0]) == 0 {
		t.Errorf("RR without resequencing delivered FIFO under skew:\n%s", r.Text)
	}
	for _, row := range [][]string{rrHdr, srrHdr, srrNoHdr, bonding} {
		if parse(row[0]) != 0 {
			t.Errorf("resequenced scheme misordered without loss: %v\n%s", row, r.Text)
		}
	}
	// With loss: the header variants stay FIFO; the no-header variant is
	// quasi-FIFO (small but possibly nonzero).
	if parse(rrHdr[1]) != 0 || parse(srrHdr[1]) != 0 {
		t.Errorf("sequence-numbered variants misordered under loss:\n%s", r.Text)
	}
	// Under *continuous* loss quasi-FIFO misorders between a loss and
	// the next marker batch, but stays far below unresequenced RR.
	if q, rr := parse(srrNoHdr[1]), parse(rrNoHdr[1]); q > 0.2 || q > rr*0.5 {
		t.Errorf("quasi-FIFO misorder fraction %.4f too high (RR: %.4f):\n%s", q, rr, r.Text)
	}
	// Load sharing: the byte-accounting schemes balance far better than
	// packet-count round robin under the bimodal mix.
	if parse(srrNoHdr[2]) >= parse(rrNoHdr[2]) {
		t.Errorf("SRR imbalance %v not below RR imbalance %v:\n%s",
			parse(srrNoHdr[2]), parse(rrNoHdr[2]), r.Text)
	}
}
