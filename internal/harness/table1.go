package harness

import (
	"fmt"
	"strings"

	"stripe/internal/baseline"
	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: features of channel striping solutions (measured)",
		Run:   runTable1,
	})
}

// runTable1 regenerates Table 1 empirically: each scheme stripes the
// same bimodal workload over two equal channels with skewed arrivals
// and a burst of loss, and we measure what the table asserts
// qualitatively — FIFO behaviour (out-of-order delivery fraction with
// and without loss) and load sharing with variable-length packets
// (byte imbalance between the channels).
func runTable1(cfg Config) *Result {
	n := 20000
	if cfg.Quick {
		n = 4000
	}
	type outcome struct {
		name        string
		oooNoLoss   float64
		oooLoss     float64
		imbalance   int64
		jain        float64
		modifies    string
		deliveredOK bool
	}
	var rows []outcome

	// Common scenario pieces.
	mkSizes := func() trace.SizeGen { return trace.NewBimodal(200, 1000, 0.5, cfg.Seed+1) }
	skew := []int{0, 40} // channel 1 lags 40 ticks: persistent skew
	lossImp := channel.Impairments{Loss: 0.05, Seed: cfg.Seed + 2}

	runScheme := func(name, modifies string, mk func(imp channel.Impairments) (*pipe, error)) {
		o := outcome{name: name, modifies: modifies}
		// Pass 1: skew only, no loss — steady-state FIFO behaviour.
		p, err := mk(channel.Impairments{})
		if err != nil {
			panic(err)
		}
		if err := p.sendAll(n, mkSizes()); err != nil {
			panic(err)
		}
		got := p.pump()
		r := stats.AnalyzeOrder(deliveredIDs(got))
		o.oooNoLoss = r.OutOfOrderFraction()
		bytes := p.channelBytes()
		o.imbalance = stats.MaxImbalance(bytes)
		o.jain = stats.JainIndex(bytes)
		o.deliveredOK = len(got) == n

		// Pass 2: skew plus 5% loss — quasi-FIFO behaviour under errors.
		p, err = mk(lossImp)
		if err != nil {
			panic(err)
		}
		if err := p.sendAll(n, mkSizes()); err != nil {
			panic(err)
		}
		r = stats.AnalyzeOrder(deliveredIDs(p.pump()))
		o.oooLoss = r.OutOfOrderFraction()
		rows = append(rows, o)
	}

	quanta := []int64{1500, 1500}
	markers := core.MarkerPolicy{Every: 4, Position: 0}

	// Row 1: round robin, no header, no resequencing.
	runScheme("RR, no header", "none", func(imp channel.Impairments) (*pipe, error) {
		return newPipe(pipeConfig{
			quanta: quanta, mode: core.ModeNone, imp: imp, skew: skew,
			schedFor: func() sched.RoundBased { s, _ := sched.NewRR(2); return s },
		})
	})
	// Row 2: round robin with sequence headers.
	runScheme("RR with header", "adds seq header", func(imp channel.Impairments) (*pipe, error) {
		return newPipe(pipeConfig{
			quanta: quanta, mode: core.ModeSequence, addSeq: true, imp: imp, skew: skew,
			schedFor: func() sched.RoundBased { s, _ := sched.NewRR(2); return s },
		})
	})
	// Row 4 (paper): fair queuing with header.
	runScheme("SRR with header", "adds seq header", func(imp channel.Impairments) (*pipe, error) {
		return newPipe(pipeConfig{
			quanta: quanta, mode: core.ModeSequence, addSeq: true, imp: imp, skew: skew,
		})
	})
	// Row 5 (paper): fair queuing, no header — the paper's scheme.
	runScheme("SRR, no header (strIPe)", "none", func(imp channel.Impairments) (*pipe, error) {
		return newPipe(pipeConfig{
			quanta: quanta, mode: core.ModeLogical, markers: markers, imp: imp, skew: skew,
		})
	})
	// Extra baselines surveyed in Section 2.1.
	runScheme("Random Selection", "none", func(imp channel.Impairments) (*pipe, error) {
		sel, err := baseline.NewRandomSelection(2, cfg.Seed+3)
		if err != nil {
			return nil, err
		}
		return newPipe(pipeConfig{quanta: quanta, mode: core.ModeNone, imp: imp, skew: skew, selector: sel})
	})
	runScheme("Shortest Queue First", "none", func(imp channel.Impairments) (*pipe, error) {
		var g *channel.Group
		sel, err := baseline.NewShortestQueue(2, func(c int) int {
			if g == nil {
				return 0
			}
			return int(g.Queues[c].Stats().SentBytes) - int(g.Queues[c].Stats().DeliveredBiB)
		})
		if err != nil {
			return nil, err
		}
		p, err := newPipe(pipeConfig{quanta: quanta, mode: core.ModeNone, imp: imp, skew: skew, selector: sel})
		if err != nil {
			return nil, err
		}
		g = p.group
		return p, nil
	})

	// Row 3 (paper): BONDING-style inverse mux, measured separately
	// because it reformats the stream into frames.
	bondOOO, bondImb, bondJain := runBonding(n/4, cfg)

	var b strings.Builder
	fmt.Fprintln(&b, "# Table 1 (measured): 2 equal channels, bimodal 200/1000B packets,")
	fmt.Fprintln(&b, "# channel-1 skew, loss pass at 5%. ooo = out-of-order delivery fraction.")
	fmt.Fprintln(&b, row("scheme", "ooo (no loss)", "ooo (5% loss)", "byte imbalance", "Jain", "pkt modification"))
	for _, o := range rows {
		fmt.Fprintln(&b, row(o.name,
			fmt.Sprintf("%.4f", o.oooNoLoss),
			fmt.Sprintf("%.4f", o.oooLoss),
			fmt.Sprintf("%d", o.imbalance),
			fmt.Sprintf("%.4f", o.jain),
			o.modifies))
	}
	fmt.Fprintln(&b, row("BONDING (frame striping)",
		fmt.Sprintf("%.4f", bondOOO), "n/a (reliable)",
		fmt.Sprintf("%d", bondImb), fmt.Sprintf("%.4f", bondJain), "reframes all data"))

	return &Result{ID: "table1", Title: "Table 1", Text: b.String()}
}

// runBonding measures the BONDING baseline: guaranteed FIFO and
// near-perfect byte balance, at the cost of reformatting everything.
func runBonding(n int, cfg Config) (ooo float64, imbalance int64, jain float64) {
	g := channel.NewGroup(2, channel.Impairments{})
	bs, err := baseline.NewBondingSender(g.Senders(), 256)
	if err != nil {
		panic(err)
	}
	br, err := baseline.NewBondingReceiver(2, 256)
	if err != nil {
		panic(err)
	}
	sizes := trace.NewBimodal(200, 1000, 0.5, cfg.Seed+4)
	var want [][]byte
	for i := 0; i < n; i++ {
		pl := make([]byte, sizes.Next())
		pl[0] = byte(i)
		pl[1] = byte(i >> 8)
		pl[2] = byte(i >> 16)
		want = append(want, pl)
		if err := bs.Send(packet.NewData(pl)); err != nil {
			panic(err)
		}
	}
	if err := bs.Flush(); err != nil {
		panic(err)
	}
	// Skewed delivery: channel 1 drained entirely after channel 0.
	var ids []uint64
	for _, c := range []int{1, 0} {
		for {
			p, ok := g.Queues[c].Recv()
			if !ok {
				break
			}
			br.Arrive(c, p)
			for {
				out, ok := br.Next()
				if !ok {
					break
				}
				id := uint64(out.Payload[0]) | uint64(out.Payload[1])<<8 | uint64(out.Payload[2])<<16
				ids = append(ids, id)
			}
		}
	}
	r := stats.AnalyzeOrder(ids)
	bytes := []int64{g.Queues[0].Stats().SentBytes, g.Queues[1].Stats().SentBytes}
	return r.OutOfOrderFraction(), stats.MaxImbalance(bytes), stats.JainIndex(bytes)
}
