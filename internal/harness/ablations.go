package harness

import (
	"fmt"
	"strings"
	"time"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
	"stripe/internal/stats"
	"stripe/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "quantum",
		Title: "Ablation: quantum size vs fairness deviation (Theorem 3.2 bound)",
		Run:   runQuantumAblation,
	})
	register(Experiment{
		ID:    "scaling",
		Title: "Ablation: striper+resequencer cost vs channel count",
		Run:   runChannelScaling,
	})
}

// runQuantumAblation sweeps the quantum size and measures the worst
// observed deviation |K*Quantum_i - bytes_i| against the analytic bound
// Max + 2*Quantum. Larger quanta loosen short-term fairness linearly,
// exactly as the bound predicts; quanta below the maximum packet size
// remain fair but cause service skips.
func runQuantumAblation(cfg Config) *Result {
	n := 200000
	if cfg.Quick {
		n = 40000
	}
	const maxPkt = 1500
	multipliers := []float64{0.5, 1, 2, 4, 8, 16}

	var b strings.Builder
	fmt.Fprintln(&b, "# Quantum ablation: 3 equal channels, uniform 1..1500B packets.")
	fmt.Fprintln(&b, row("quantum/maxPkt", "worst deviation", "bound", "within bound"))
	var x, dev, bound []float64
	for _, m := range multipliers {
		q := int64(float64(maxPkt) * m)
		quanta := sched.UniformQuanta(3, q)
		s := sched.MustSRR(quanta)
		sizes := trace.NewUniform(1, maxPkt, cfg.Seed+int64(m*10))
		sent := make([]int64, 3)
		worst := int64(0)
		lastRound := uint64(0)
		for i := 0; i < n; i++ {
			size := sizes.Next()
			c := s.Select()
			sent[c] += int64(size)
			s.Account(size)
			if r := s.Round(); r != lastRound {
				lastRound = r
				for i := range sent {
					d := int64(r)*quanta[i] - sent[i]
					if d < 0 {
						d = -d
					}
					if d > worst {
						worst = d
					}
				}
			}
		}
		bd := sched.FairnessBound(maxPkt, quanta)
		fmt.Fprintln(&b, row(fmt.Sprintf("%.1f", m),
			fmt.Sprintf("%d", worst),
			fmt.Sprintf("%d", bd),
			fmt.Sprintf("%v", worst <= bd)))
		x = append(x, m)
		dev = append(dev, float64(worst))
		bound = append(bound, float64(bd))
	}
	tb := &stats.Table{Title: "Quantum ablation", XLabel: "quantum/maxPkt", YLabel: "bytes", X: x}
	tb.AddColumn("worst deviation", dev)
	tb.AddColumn("bound", bound)
	return &Result{ID: "quantum", Title: "Quantum ablation", Text: b.String(), Tables: []*stats.Table{tb}}
}

// runChannelScaling measures the end-to-end software cost of the
// protocol as channels scale from 2 to 32 — the "scalable" claim in the
// paper's title: per-packet work is O(1) in the number of channels.
func runChannelScaling(cfg Config) *Result {
	n := 200000
	if cfg.Quick {
		n = 50000
	}
	counts := []int{2, 4, 8, 16, 32}

	var b strings.Builder
	fmt.Fprintln(&b, "# Channel scaling: wall-clock cost per packet through striper+resequencer")
	fmt.Fprintln(&b, "# (in-memory channels, no impairments, markers every 4 rounds).")
	fmt.Fprintln(&b, row("channels", "ns/packet", "packets", "fifo ok"))
	var x, nsPkt []float64
	for _, nch := range counts {
		quanta := sched.UniformQuanta(nch, 1500)
		group := channel.NewGroup(nch, channel.Impairments{})
		st, err := core.NewStriper(core.StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: group.Senders(),
			Markers:  core.MarkerPolicy{Every: 4, Position: 0},
		})
		if err != nil {
			panic(err)
		}
		rs, err := core.NewResequencer(core.ResequencerConfig{
			Sched: sched.MustSRR(quanta),
			Mode:  core.ModeLogical,
		})
		if err != nil {
			panic(err)
		}
		sizes := trace.NewBimodal(200, 1000, 0.5, cfg.Seed)
		delivered := 0
		inOrder := true
		lastID := int64(-1)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := st.Send(packet.NewDataSized(sizes.Next())); err != nil {
				panic(err)
			}
			// Service arrivals round-robin, one per channel per send.
			for c := 0; c < nch; c++ {
				if p, ok := group.Queues[c].Recv(); ok {
					rs.Arrive(c, p)
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				if int64(p.ID) != lastID+1 {
					inOrder = false
				}
				lastID = int64(p.ID)
				delivered++
			}
		}
		elapsed := time.Since(start)
		perPkt := float64(elapsed.Nanoseconds()) / float64(n)
		fmt.Fprintln(&b, row(fmt.Sprintf("%d", nch),
			fmt.Sprintf("%.0f", perPkt),
			fmt.Sprintf("%d", delivered),
			fmt.Sprintf("%v", inOrder)))
		x = append(x, float64(nch))
		nsPkt = append(nsPkt, perPkt)
	}
	tb := &stats.Table{Title: "Channel scaling", XLabel: "channels", YLabel: "ns/packet", X: x}
	tb.AddColumn("ns/packet", nsPkt)
	return &Result{ID: "scaling", Title: "Channel scaling", Text: b.String(), Tables: []*stats.Table{tb}}
}
