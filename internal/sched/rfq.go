package sched

// RFQ is the randomized fair queuing scheme of Section 3.4: each packet
// is assigned to a queue (channel) drawn from a weighted distribution.
// Over all backlogged executions the expected number of bytes allocated
// to any two equal-weight channels is identical, which is the paper's
// fairness criterion for randomized schemes, and by Theorem 3.1 the
// transformed load-sharing algorithm inherits it.
//
// RFQ is causal in the sense required for logical reception provided the
// sender and receiver share the generator seed: the "state" s includes
// the PRNG state, and f(s) is a deterministic function of it. The
// generator is a 64-bit xorshift* so that the whole state fits in one
// word and can be snapshotted, restored, or carried in a marker's RNG
// field. RFQ has no round structure, so it does not support the
// round/deficit marker protocol; resynchronization after loss requires
// either sequence numbers or a reset.
type RFQ struct {
	weights []int64
	total   int64
	rng     uint64
	last    int
	chosen  bool
}

// NewRFQ returns a randomized scheduler over len(weights) channels with
// the given relative weights and seed. A zero seed is replaced with a
// fixed non-zero constant, since xorshift has an all-zero fixed point.
func NewRFQ(weights []int64, seed uint64) (*RFQ, error) {
	if err := validateQuanta(weights); err != nil {
		return nil, err
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RFQ{
		weights: append([]int64(nil), weights...),
		total:   total,
		rng:     seed,
	}, nil
}

// N implements Scheduler.
func (r *RFQ) N() int { return len(r.weights) }

// Select implements Scheduler. The choice is latched until Account so
// repeated Selects agree.
func (r *RFQ) Select() int {
	if r.chosen {
		return r.last
	}
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	// Map the draw onto the weight line. The modulo bias is negligible
	// for the weight magnitudes used here and identical on both ends,
	// which is all that correctness requires.
	draw := int64(x % uint64(r.total))
	for i, w := range r.weights {
		draw -= w
		if draw < 0 {
			r.last = i
			break
		}
	}
	r.chosen = true
	return r.last
}

// Account implements Scheduler. RFQ is size-oblivious per decision; the
// weighting delivers fairness in expectation.
func (r *RFQ) Account(int) {
	if !r.chosen {
		r.Select()
	}
	r.chosen = false
}

// Snapshot implements Causal. The entire decision state is the PRNG
// word plus the latched choice.
func (r *RFQ) Snapshot() State {
	st := State{RNG: r.rng, Current: r.last}
	st.Began = r.chosen
	return st
}

// Restore implements Causal.
func (r *RFQ) Restore(st State) {
	r.rng = st.RNG
	r.last = st.Current
	r.chosen = st.Began
}

var (
	_ Scheduler = (*RFQ)(nil)
	_ Causal    = (*RFQ)(nil)
)
