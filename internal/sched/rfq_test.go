package sched

import (
	"testing"
	"testing/quick"
)

// TestRFQExpectedFairness checks the randomized fairness criterion of
// Section 3.3: over a long backlogged execution, equal-weight channels
// receive statistically indistinguishable byte allocations, and weighted
// channels receive allocations proportional to weight.
func TestRFQExpectedFairness(t *testing.T) {
	r, err := NewRFQ([]int64{1, 1, 2}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	var bytes [3]int64
	const n = 200000
	for i := 0; i < n; i++ {
		size := 100 + (i*37)%1400 // deterministic size mix
		c := r.Select()
		bytes[c] += int64(size)
		r.Account(size)
	}
	total := bytes[0] + bytes[1] + bytes[2]
	share := func(i int) float64 { return float64(bytes[i]) / float64(total) }
	if s := share(0); s < 0.23 || s > 0.27 {
		t.Fatalf("channel 0 share %.4f, want ~0.25", s)
	}
	if s := share(1); s < 0.23 || s > 0.27 {
		t.Fatalf("channel 1 share %.4f, want ~0.25", s)
	}
	if s := share(2); s < 0.48 || s > 0.52 {
		t.Fatalf("channel 2 share %.4f, want ~0.50", s)
	}
}

// TestRFQReceiverSimulation checks that a receiver sharing the seed
// replays the identical channel sequence — RFQ's version of causality.
func TestRFQReceiverSimulation(t *testing.T) {
	check := func(seed uint64) bool {
		a, _ := NewRFQ([]int64{2, 3, 5}, seed)
		b, _ := NewRFQ([]int64{2, 3, 5}, seed)
		for i := 0; i < 2000; i++ {
			if a.Select() != b.Select() {
				return false
			}
			a.Account(100)
			b.Account(100)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRFQSnapshotRestore checks mid-stream resynchronization from a
// snapshot (what a marker carrying the RNG field enables).
func TestRFQSnapshotRestore(t *testing.T) {
	a, _ := NewRFQ([]int64{1, 1}, 99)
	for i := 0; i < 500; i++ {
		a.Select()
		a.Account(10)
	}
	st := a.Snapshot()
	b, _ := NewRFQ([]int64{1, 1}, 1) // wrong seed on purpose
	b.Restore(st)
	for i := 0; i < 500; i++ {
		if a.Select() != b.Select() {
			t.Fatalf("diverged at step %d after restore", i)
		}
		a.Account(10)
		b.Account(10)
	}
}

// TestRFQSelectLatched checks that Select is stable until Account.
func TestRFQSelectLatched(t *testing.T) {
	r, _ := NewRFQ([]int64{1, 1, 1, 1}, 7)
	for i := 0; i < 100; i++ {
		c1 := r.Select()
		c2 := r.Select()
		if c1 != c2 {
			t.Fatalf("Select not idempotent: %d then %d", c1, c2)
		}
		r.Account(64)
	}
}

// TestRFQZeroSeed checks the all-zero xorshift fixed point is avoided.
func TestRFQZeroSeed(t *testing.T) {
	r, _ := NewRFQ([]int64{1, 1}, 0)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Select()] = true
		r.Account(1)
	}
	if len(seen) != 2 {
		t.Fatalf("zero-seeded RFQ visited %d channels, want 2", len(seen))
	}
}

// TestTransformationTheoremRFQ extends the Theorem 3.1 correspondence
// to the randomized scheduler: with the same seed, FQ over the striper's
// outputs reproduces the striper's input.
func TestTransformationTheoremRFQ(t *testing.T) {
	const seed = 2024
	striper, _ := NewRFQ([]int64{1, 2, 1}, seed)
	perChannel := make([][]int, 3)
	sizes := make([]int, 600)
	for i := range sizes {
		sizes[i] = 50 + (i*101)%1200
		c := striper.Select()
		perChannel[c] = append(perChannel[c], i)
		striper.Account(sizes[i])
	}
	sim, _ := NewRFQ([]int64{1, 2, 1}, seed)
	fq := NewFQ(sim)
	for c, ids := range perChannel {
		for _, id := range ids {
			fq.Enqueue(c, mkPkt(uint64(id), sizes[id]))
		}
	}
	out := fq.DrainBacklogged()
	if len(out) != len(sizes) {
		t.Fatalf("drained %d, want %d", len(out), len(sizes))
	}
	for i, p := range out {
		if p.ID != uint64(i) {
			t.Fatalf("position %d: packet %d", i, p.ID)
		}
	}
}
