// Package sched implements the scheduling theory at the heart of the
// paper: Causal Fair Queuing (CFQ) algorithms and their transformation
// into fair load-sharing (striping) algorithms.
//
// # The CFQ model (Section 3.1 of the paper)
//
// In the backlogged case, a causal fair queuing algorithm is fully
// characterised by an initial state s0 and two functions applied in
// succession: f(s) selects a queue given the current state, and g(s, p)
// updates the state after the packet p at the head of the selected queue
// is transmitted. Causality means decisions depend only on previously
// transmitted packets — never on future arrivals or on the contents of
// queues (for example the sizes of head-of-line packets, which is what
// makes the DKS bit-by-bit round-robin emulation non-causal).
//
// # The transformation (Section 3.2)
//
// The same (s0, f, g) triple runs "in reverse" as a load-sharing
// algorithm: where fair queuing uses f(s) to pull the next packet from
// queue f(s) onto a single output channel, load sharing uses f(s) to
// push the next packet from a single input queue to output channel f(s).
// Theorem 3.1 shows the transformation preserves fairness. The Scheduler
// interface below is exactly that shared automaton: Select is f, Account
// is g.
//
// # Why causality matters twice
//
// Causality also enables logical reception (Section 4): a receiver that
// knows (s0, f, g) can simulate the sender and therefore knows which
// channel the next packet will arrive on, restoring FIFO order with
// per-channel buffering and no packet modification. The Causal interface
// marks schedulers whose full state can be snapshotted and restored; the
// RoundBased interface additionally exposes the (round, deficit)
// per-channel implicit packet numbers that the marker-recovery protocol
// of Section 5 depends on.
package sched

import "fmt"

// Scheduler is the shared automaton (s0, f, g) of a causal fair queuing
// algorithm, usable either as a fair-queuing selector (pull the next
// packet from queue Select()) or, transformed, as a striping selector
// (push the next packet to channel Select()).
type Scheduler interface {
	// N returns the number of channels (equivalently, queues).
	N() int
	// Select returns the index of the channel the next packet must be
	// sent on — the function f(s). Select may advance internal
	// bookkeeping past channels whose deficit does not permit service,
	// but calling it repeatedly without an intervening Account returns
	// the same index.
	Select() int
	// Account charges a transmitted packet of the given payload size to
	// the channel returned by Select and updates the state — the
	// function g(s, p).
	Account(size int)
}

// State is a full snapshot of a causal scheduler, sufficient to replay
// its future decisions. Receivers use it to initialise their simulation
// of the sender, and tests use it to verify determinism.
type State struct {
	// Current is the index of the channel under (or about to be under)
	// service.
	Current int
	// Round is the global round number G: the count of completed
	// round-robin scans.
	Round uint64
	// Began reports whether the quantum for Current's service in this
	// round has already been added to its deficit counter.
	Began bool
	// Deficits holds the per-channel deficit counters.
	Deficits []int64
	// RNG is the generator state for randomized schedulers; zero
	// otherwise.
	RNG uint64
	// Disabled holds the per-slot membership mask for schedulers that
	// implement Membership. A nil Disabled means "leave membership
	// unchanged" on Restore, so snapshots taken before membership
	// existed (and the marker protocol's self-heal path, which restores
	// only automaton position) compose with dynamic link sets.
	Disabled []bool
}

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	c := s
	c.Deficits = append([]int64(nil), s.Deficits...)
	if s.Disabled != nil {
		c.Disabled = append([]bool(nil), s.Disabled...)
	}
	return c
}

// Causal is implemented by schedulers that satisfy the CFQ property:
// their decisions are a deterministic function of previously transmitted
// packets (plus, for randomized schedulers, a seedable generator). Only
// causal schedulers can drive logical reception, because the receiver
// must be able to reproduce the sender's decisions exactly.
type Causal interface {
	Scheduler
	// Snapshot captures the full scheduler state.
	Snapshot() State
	// Restore replaces the scheduler state with a snapshot.
	Restore(State)
}

// RoundBased is implemented by causal schedulers organised as
// round-robin scans with per-channel deficit counters — the family the
// marker-based synchronization protocol of Section 5 applies to. The
// implicit number of a packet is the pair (round, deficit) immediately
// before the packet is sent.
type RoundBased interface {
	Causal
	// Round returns the global round number G.
	Round() uint64
	// Current returns the channel the scan pointer rests on, without
	// side effects.
	Current() int
	// MidService reports whether the current channel's service has begun
	// (its quantum has been added) but not yet completed. Markers must
	// only be cut at service boundaries, where MidService is false.
	MidService() bool
	// Deficit returns channel c's deficit counter. When the channel is
	// not mid-service this is the value the marker protocol transmits:
	// the deficit before the next service's quantum is added.
	Deficit(c int) int64
	// SetDeficit overwrites channel c's deficit counter; the receiver
	// uses it to adopt the value carried by a marker.
	SetDeficit(c int, d int64)
	// NextServiceRound returns the round number in which channel c will
	// next begin service, assuming a backlogged sender: G if c has not
	// yet been visited in the current scan, G+1 otherwise.
	NextServiceRound(c int) uint64
	// SelectFor behaves like Select but consults skip before beginning
	// service of each candidate channel; if skip returns true the
	// channel is passed over without its quantum being added. The
	// receiver implements the Section 5 rule "skip channel c while
	// r_c > G" with it. A nil skip never skips.
	SelectFor(skip func(c int) bool) int
	// AdvanceRoundTo fast-forwards the global round number to r without
	// touching deficit counters, provided the scan pointer is at a
	// service boundary and r is ahead of the current round. The receiver
	// uses it when every channel is being skipped, so recovery takes
	// O(channels) work instead of O(rounds missed).
	AdvanceRoundTo(r uint64)
	// EndService force-completes the current channel's service,
	// advancing the scan pointer regardless of remaining deficit.
	EndService()
	// Skip advances past the current channel without granting its
	// quantum; valid only at a service boundary.
	Skip()
	// QuantumOf returns channel c's quantum.
	QuantumOf(c int) int64
	// Reset reinitialises the automaton to its start state s0.
	Reset()
}

// Membership is implemented by schedulers whose channel set can change
// mid-run. The channel universe (N and the quantum vector) is fixed at
// construction; membership enables and disables slots within it, which
// keeps condition C2 of Section 5 (identical channel numbering at both
// ends) trivially true across leaves and rejoins.
//
// Disabling a slot retires its deficit to zero and removes it from the
// round-robin scan; the surviving channels keep the Theorem 3.2
// fairness band relative to the rounds elapsed since the change,
// because each still receives exactly its quantum per scan. Re-enabling
// a slot restarts it with a zero deficit — the same state both ends
// compute, so the receiver simulation stays in lockstep.
type Membership interface {
	// SetEnabled adds (true) or removes (false) slot c from the scan.
	// Disabling retires the deficit; if c is mid-service its service
	// ends immediately. Enabling grants a fresh zero deficit. Both are
	// no-ops when the slot is already in the requested state.
	SetEnabled(c int, on bool)
	// Enabled reports whether slot c participates in the scan.
	Enabled(c int) bool
	// ActiveN returns the number of enabled slots.
	ActiveN() int
}

// Quantum validation errors.
var (
	errNoChannels = fmt.Errorf("sched: need at least one channel")
)

func validateQuanta(quanta []int64) error {
	if len(quanta) == 0 {
		return errNoChannels
	}
	for i, q := range quanta {
		if q <= 0 {
			return fmt.Errorf("sched: quantum %d for channel %d must be positive", q, i)
		}
	}
	return nil
}
