package sched

import (
	"math/rand"
	"testing"
)

// TestSetEnabledScanSkips checks that disabled slots vanish from the
// round-robin scan without consuming their quanta, and that the
// membership accessors track the live set.
func TestSetEnabledScanSkips(t *testing.T) {
	s := MustSRR(UniformQuanta(4, 100))
	s.SetEnabled(1, false)
	s.SetEnabled(2, false)
	if got := s.ActiveN(); got != 2 {
		t.Fatalf("ActiveN = %d, want 2", got)
	}
	for c, want := range []bool{true, false, false, true} {
		if got := s.Enabled(c); got != want {
			t.Fatalf("Enabled(%d) = %v, want %v", c, got, want)
		}
	}
	want := []int{0, 3, 0, 3, 0, 3}
	for i, w := range want {
		if got := s.Select(); got != w {
			t.Fatalf("selection %d: channel %d, want %d", i, got, w)
		}
		s.Account(100)
	}
	if got := s.Round(); got != 3 {
		t.Fatalf("round = %d, want 3 after three two-channel rounds", got)
	}
	// Idempotence: disabling a disabled slot or enabling an enabled one
	// must not corrupt the live count.
	s.SetEnabled(1, false)
	s.SetEnabled(0, true)
	if got := s.ActiveN(); got != 2 {
		t.Fatalf("ActiveN after redundant toggles = %d, want 2", got)
	}
}

// TestSetEnabledMidService checks the removal corner: disabling the
// slot currently in service must end that service and move the scan
// pointer off it, and the retired slot's deficit must be zeroed so a
// later rejoin starts its Theorem 3.2 accounting from scratch.
func TestSetEnabledMidService(t *testing.T) {
	s := MustSRR(UniformQuanta(3, 500))
	if got := s.Select(); got != 0 {
		t.Fatalf("Select = %d, want 0", got)
	}
	s.Account(100) // deficit 400 remains: still mid-service on 0
	if !s.MidService() || s.Current() != 0 {
		t.Fatalf("expected mid-service on 0, got cur=%d mid=%v", s.Current(), s.MidService())
	}
	s.SetEnabled(0, false)
	if s.MidService() {
		t.Fatal("still mid-service after disabling the served slot")
	}
	if got := s.Deficit(0); got != 0 {
		t.Fatalf("retired slot deficit = %d, want 0", got)
	}
	if got := s.Select(); got != 1 {
		t.Fatalf("Select after removal = %d, want 1", got)
	}
	s.Account(500)
	// Rejoin: the deficit stays zeroed, no stale surplus or penalty.
	s.SetEnabled(0, true)
	if got := s.Deficit(0); got != 0 {
		t.Fatalf("rejoined slot deficit = %d, want 0", got)
	}
}

// TestFairnessBandAcrossMembership is Theorem 3.2 over a shrinking and
// growing live set: after any K rounds of backlogged service, the
// difference between K·Quantum_i and the bytes channel i carried is
// bounded by Max + 2·Quantum_i, independent of K — where K counts
// rounds since the channel (re)entered the live set. A removal must
// not disturb the survivors' bands, and a rejoined channel must re-form
// its band from a fresh baseline.
func TestFairnessBandAcrossMembership(t *testing.T) {
	quanta := []int64{900, 600, 300}
	const maxPkt = 280
	s := MustSRR(quanta)
	rng := rand.New(rand.NewSource(42))

	bytes := make([]int64, len(quanta))
	baseRound := make([]uint64, len(quanta))
	baseBytes := make([]int64, len(quanta))

	checkBands := func(round uint64) {
		for c := range quanta {
			if !s.Enabled(c) || round <= baseRound[c] {
				continue
			}
			k := int64(round - baseRound[c])
			diff := k*quanta[c] - (bytes[c] - baseBytes[c])
			if diff < 0 {
				diff = -diff
			}
			if bound := maxPkt + 2*quanta[c]; diff > bound {
				t.Fatalf("round %d channel %d: |K·q - bytes| = %d > %d", round, c, diff, bound)
			}
		}
	}

	last := uint64(0)
	var frozen int64
	for s.Round() < 120 {
		if r := s.Round(); r != last {
			// Round boundary: the scan pointer is back at slot 0 with no
			// service begun, so membership changes land exactly where a
			// real striper's applyPendingJoins applies them.
			checkBands(r)
			switch r {
			case 40:
				s.SetEnabled(1, false)
				frozen = bytes[1]
			case 80:
				if bytes[1] != frozen {
					t.Fatalf("disabled channel carried %d bytes while out of the live set", bytes[1]-frozen)
				}
				s.SetEnabled(1, true)
				baseRound[1], baseBytes[1] = r, bytes[1]
			}
			last = r
		}
		c := s.Select()
		if !s.Enabled(c) {
			t.Fatalf("round %d: selected disabled channel %d", s.Round(), c)
		}
		size := 1 + rng.Intn(maxPkt)
		s.Account(size)
		bytes[c] += int64(size)
	}
	checkBands(s.Round())
}
