package sched_test

import (
	"fmt"

	"stripe/internal/packet"
	"stripe/internal/sched"
)

// ExampleSRR replays the paper's Figure 6: packets a..f striped over
// two channels with 500-byte quanta.
func ExampleSRR() {
	s := sched.MustSRR([]int64{500, 500})
	names := []string{"a", "d", "e", "b", "c", "f"}
	sizes := []int{550, 200, 400, 150, 300, 400}
	for i, n := range names {
		c := s.Select()
		fmt.Printf("%s(%d) -> channel %d\n", n, sizes[i], c+1)
		s.Account(sizes[i])
	}
	// Output:
	// a(550) -> channel 1
	// d(200) -> channel 2
	// e(400) -> channel 2
	// b(150) -> channel 1
	// c(300) -> channel 1
	// f(400) -> channel 2
}

// ExampleFQ runs the same automaton in its original fair-queuing
// direction (Figure 5): the outputs of the striper, fed back in as
// queues, reproduce the original arrival order — the Theorem 3.1
// correspondence.
func ExampleFQ() {
	fq := sched.NewFQ(sched.MustSRR([]int64{500, 500}))
	// Queue 1 holds a,b,c; queue 2 holds d,e,f (the striper's outputs).
	for _, e := range []struct {
		q    int
		name byte
		size int
	}{
		{0, 'a', 550}, {0, 'b', 150}, {0, 'c', 300},
		{1, 'd', 200}, {1, 'e', 400}, {1, 'f', 400},
	} {
		p := packet.NewDataSized(e.size)
		p.ID = uint64(e.name)
		fq.Enqueue(e.q, p)
	}
	for _, p := range fq.DrainBacklogged() {
		fmt.Printf("%c", byte(p.ID))
	}
	fmt.Println()
	// Output:
	// adebcf
}

// ExampleQuantaForRates derives weighted quanta for dissimilar links.
func ExampleQuantaForRates() {
	quanta, _ := sched.QuantaForRates([]float64{10e6, 25e6, 155e6}, 1500)
	fmt.Println(quanta)
	// Output:
	// [1500 3750 23250]
}
