package sched

import (
	"math"
	"testing"
)

func TestQuantaForRates(t *testing.T) {
	q, err := QuantaForRates([]float64{10e6, 30e6, 20e6}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1500, 4500, 3000}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("quanta = %v, want %v", q, want)
		}
	}
}

func TestQuantaForRatesRounding(t *testing.T) {
	q, err := QuantaForRates([]float64{6e6, 7.6e6}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 1000 {
		t.Fatalf("min-rate quantum = %d, want 1000", q[0])
	}
	if want := int64(math.Round(7.6 / 6.0 * 1000)); q[1] != want {
		t.Fatalf("quantum = %d, want %d", q[1], want)
	}
}

func TestQuantaForRatesErrors(t *testing.T) {
	if _, err := QuantaForRates(nil, 100); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := QuantaForRates([]float64{0, 5}, 100); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := QuantaForRates([]float64{-1}, 100); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := QuantaForRates([]float64{math.Inf(1)}, 100); err == nil {
		t.Error("infinite rate accepted")
	}
	if _, err := QuantaForRates([]float64{math.NaN()}, 100); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := QuantaForRates([]float64{5}, 0); err == nil {
		t.Error("zero minQuantum accepted")
	}
}

func TestCountsForRates(t *testing.T) {
	// The paper's GRR example: equal effective rates reduce GRR to RR.
	c, err := CountsForRates([]float64{6e6, 6e6})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 1 || c[1] != 1 {
		t.Fatalf("counts = %v, want [1 1]", c)
	}
	// A 2.4:1 ratio rounds to 2:1.
	c, err = CountsForRates([]float64{24e6, 10e6})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 2 || c[1] != 1 {
		t.Fatalf("counts = %v, want [2 1]", c)
	}
}

func TestCountsForRatesErrors(t *testing.T) {
	if _, err := CountsForRates(nil); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := CountsForRates([]float64{1, -2}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestUniformQuanta(t *testing.T) {
	q := UniformQuanta(4, 1500)
	if len(q) != 4 {
		t.Fatalf("len = %d", len(q))
	}
	for _, v := range q {
		if v != 1500 {
			t.Fatalf("quanta = %v", q)
		}
	}
}

func TestFairnessBound(t *testing.T) {
	if got := FairnessBound(1500, []int64{1000, 4000, 2000}); got != 1500+2*4000 {
		t.Fatalf("bound = %d, want %d", got, 1500+2*4000)
	}
}
