package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stripe/internal/packet"
)

func mkPkt(id uint64, size int) *packet.Packet {
	p := packet.NewDataSized(size)
	p.ID = id
	return p
}

// TestFQPaperTraceFigure5 replays the fair-queuing execution of Figure
// 5: queue 1 holds a(550), b(150), c(300); queue 2 holds d(200), e(400),
// f(400); quantum 500 each. The output must be a, d, e, b, c, f.
func TestFQPaperTraceFigure5(t *testing.T) {
	f := NewFQ(MustSRR([]int64{500, 500}))
	ids := "abcdef"
	for i, q := range []int{0, 0, 0, 1, 1, 1} {
		f.Enqueue(q, mkPkt(uint64(ids[i]), paperSizes[ids[i]]))
	}
	want := "adebcf"
	out := f.DrainBacklogged()
	if len(out) != 6 {
		t.Fatalf("drained %d packets, want 6", len(out))
	}
	for i, p := range out {
		if byte(p.ID) != want[i] {
			t.Fatalf("output %d = %c, want %c", i, byte(p.ID), want[i])
		}
	}
}

// TestTransformationTheorem is the Theorem 3.1 correspondence, checked
// directly: stripe a random input sequence with SRR (execution E), feed
// the per-channel outputs in as the queues of the SRR fair-queuing
// engine (execution E'), and verify the FQ output sequence equals the
// striper's input sequence. This is exactly the E <-> E' construction in
// the proof, and it is also why logical reception (Section 4) restores
// FIFO order.
func TestTransformationTheorem(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nch := 2 + rng.Intn(5)
		quanta := make([]int64, nch)
		for i := range quanta {
			quanta[i] = int64(500 + rng.Intn(3000))
		}
		striper := MustSRR(quanta)

		npkts := 200 + rng.Intn(800)
		input := make([]*packet.Packet, npkts)
		perChannel := make([][]*packet.Packet, nch)
		for i := range input {
			p := mkPkt(uint64(i), 1+rng.Intn(1500))
			input[i] = p
			c := striper.Select()
			perChannel[c] = append(perChannel[c], p)
			striper.Account(p.Len())
		}

		// E': run the same automaton from s0 as a fair queuer over the
		// striper's outputs.
		fq := NewFQ(MustSRR(quanta))
		for c, pkts := range perChannel {
			for _, p := range pkts {
				fq.Enqueue(c, p)
			}
		}
		out := fq.DrainBacklogged()
		if len(out) != npkts {
			return false
		}
		for i, p := range out {
			if p.ID != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTransformationTheoremRR repeats the correspondence for plain
// round robin (the simplest causal algorithm) and GRR.
func TestTransformationTheoremRR(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *SRR
	}{
		{"RR", func() *SRR { s, _ := NewRR(3); return s }},
		{"GRR", func() *SRR { s, _ := NewGRR([]int64{3, 1, 2}); return s }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			striper := tc.mk()
			perChannel := make([][]*packet.Packet, striper.N())
			const npkts = 500
			for i := 0; i < npkts; i++ {
				p := mkPkt(uint64(i), 1+rng.Intn(1500))
				c := striper.Select()
				perChannel[c] = append(perChannel[c], p)
				striper.Account(p.Len())
			}
			fq := NewFQ(tc.mk())
			for c, pkts := range perChannel {
				for _, p := range pkts {
					fq.Enqueue(c, p)
				}
			}
			for i, p := range fq.DrainBacklogged() {
				if p.ID != uint64(i) {
					t.Fatalf("output %d has ID %d", i, p.ID)
				}
			}
		})
	}
}

// TestFQBlocksOnEmptyQueue checks the backlogged-model behaviour:
// dequeueing with an empty selected queue reports false rather than
// skipping, because skipping would be non-causal.
func TestFQBlocksOnEmptyQueue(t *testing.T) {
	f := NewFQ(MustSRR([]int64{100, 100}))
	f.Enqueue(0, mkPkt(1, 50))
	f.Enqueue(0, mkPkt(2, 60))
	if p, ok := f.Dequeue(); !ok || p.ID != 1 {
		t.Fatalf("first dequeue = %v, %v", p, ok)
	}
	if p, ok := f.Dequeue(); !ok || p.ID != 2 {
		t.Fatalf("second dequeue = %v, %v", p, ok)
	}
	// Queue 1's turn, but it is empty: must block, not skip to queue 0.
	f.Enqueue(0, mkPkt(3, 10))
	if _, ok := f.Dequeue(); ok {
		t.Fatal("dequeue succeeded on empty selected queue")
	}
	if f.Backlogged() {
		t.Fatal("Backlogged() = true with an empty queue")
	}
	f.Enqueue(1, mkPkt(4, 10))
	if p, ok := f.Dequeue(); !ok || p.ID != 4 {
		t.Fatalf("dequeue after refill = %v, %v", p, ok)
	}
}

// TestDRRFairness checks the classic DRR fairness property under
// backlog: long-run byte shares proportional to quanta.
func TestDRRFairness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := NewDRR([]int64{3000, 1500})
	if err != nil {
		t.Fatal(err)
	}
	// Packets carry their source queue index in the ID field so the
	// output can be attributed.
	refill := func() {
		for q := 0; q < 2; q++ {
			for d.queues[q].len() < 10 {
				d.Enqueue(q, mkPkt(uint64(q), 100+rng.Intn(1400)))
			}
		}
	}
	var bytes [2]int64
	for i := 0; i < 20000; i++ {
		refill()
		p, ok := d.Dequeue()
		if !ok {
			t.Fatal("Dequeue failed with backlog")
		}
		bytes[p.ID] += int64(p.Len())
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("byte ratio %.3f, want ~2.0", ratio)
	}
}

// TestDRRNeverOverdraws checks the property distinguishing DRR from
// SRR: DRR checks the head packet against the deficit before sending,
// so a deficit never goes negative.
func TestDRRNeverOverdraws(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, _ := NewDRR([]int64{500, 500})
	for q := 0; q < 2; q++ {
		for i := 0; i < 200; i++ {
			d.Enqueue(q, mkPkt(uint64(q), 1+rng.Intn(499)))
		}
	}
	for {
		_, ok := d.Dequeue()
		if !ok {
			break
		}
		for q := 0; q < 2; q++ {
			if d.deficit[q] < 0 {
				t.Fatalf("queue %d deficit went negative: %d", q, d.deficit[q])
			}
		}
	}
}

// TestDRRSmallQuantumStillServes checks that a queue whose quantum is
// smaller than its head packet accumulates deficit over multiple turns
// rather than stalling forever.
func TestDRRSmallQuantumStillServes(t *testing.T) {
	d, _ := NewDRR([]int64{100, 100})
	d.Enqueue(0, mkPkt(0, 350))
	d.Enqueue(1, mkPkt(1, 50))
	var got []uint64
	for {
		p, ok := d.Dequeue()
		if !ok {
			break
		}
		got = append(got, p.ID)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(got))
	}
	// The small packet goes first (its quantum covers it immediately);
	// the big one follows once 4 quanta accumulate.
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", got)
	}
}

// TestDRRIsNotCausal demonstrates concretely why practical DRR cannot
// drive logical reception: its decisions depend on arrival timing (the
// active list), so two executions with the same transmitted prefix but
// different arrivals diverge. A receiver simulating the sender sees only
// the transmitted prefix and therefore cannot stay in lockstep.
func TestDRRIsNotCausal(t *testing.T) {
	// Execution 1: both queues populated up front.
	d1, _ := NewDRR([]int64{500, 500})
	d1.Enqueue(0, mkPkt(100, 400))
	d1.Enqueue(1, mkPkt(200, 400))
	p, _ := d1.Dequeue()
	first1 := p.ID

	// Execution 2: queue 1 arrives first, then queue 0. Same packets,
	// same sizes, same transmitted prefix (empty), different arrival
	// order.
	d2, _ := NewDRR([]int64{500, 500})
	d2.Enqueue(1, mkPkt(200, 400))
	d2.Enqueue(0, mkPkt(100, 400))
	p, _ = d2.Dequeue()
	first2 := p.ID

	if first1 == first2 {
		t.Skip("active-list order coincided; non-causality not exhibited by this vector")
	}
	// first1 != first2: identical transmitted history, divergent next
	// decision — the defining violation of causality.
}
