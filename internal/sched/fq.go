package sched

import "stripe/internal/packet"

// FQ drives a causal scheduler in its original, fair-queuing direction:
// multiple input queues feeding one output channel (Figure 2 of the
// paper). It is the "forward" half of the transformation; the striper in
// internal/core is the "reverse" half. Running both with the same
// automaton is what makes logical reception work, and the equivalence of
// the two directions (executions E and E' in the proof of Theorem 3.1)
// is verified directly by tests in this package.
type FQ struct {
	sched  Scheduler
	queues []fifo
}

// NewFQ returns a fair-queuing engine over s.N() queues.
func NewFQ(s Scheduler) *FQ {
	return &FQ{sched: s, queues: make([]fifo, s.N())}
}

// Enqueue appends p to input queue q.
func (f *FQ) Enqueue(q int, p *packet.Packet) { f.queues[q].push(p) }

// Len returns the number of packets waiting in queue q.
func (f *FQ) Len(q int) int { return f.queues[q].len() }

// Backlogged reports whether every input queue holds at least one
// packet — the regime in which the CFQ characterisation applies.
func (f *FQ) Backlogged() bool {
	for i := range f.queues {
		if f.queues[i].len() == 0 {
			return false
		}
	}
	return true
}

// Empty reports whether every input queue is empty.
func (f *FQ) Empty() bool {
	for i := range f.queues {
		if f.queues[i].len() != 0 {
			return false
		}
	}
	return true
}

// Dequeue transmits the next packet: it selects queue f(s), pops its
// head, and applies g(s, p). It returns false, leaving the scheduler
// state unchanged in effect, if the selected queue is empty — the
// backlogged model has no notion of skipping an empty queue, so the
// caller either refills the queue or stops.
func (f *FQ) Dequeue() (*packet.Packet, bool) {
	q := f.sched.Select()
	p, ok := f.queues[q].pop()
	if !ok {
		return nil, false
	}
	f.sched.Account(p.Len())
	return p, true
}

// DrainBacklogged transmits packets until some queue would underflow,
// returning the output sequence. It is the "run the FQ algorithm on the
// striper's outputs" step used when checking Theorem 3.1.
func (f *FQ) DrainBacklogged() []*packet.Packet {
	var out []*packet.Packet
	for {
		p, ok := f.Dequeue()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// fifo is a slice-backed FIFO of packets with an amortised O(1) pop.
type fifo struct {
	buf  []*packet.Packet
	head int
}

func (f *fifo) push(p *packet.Packet) { f.buf = append(f.buf, p) }

func (f *fifo) len() int { return len(f.buf) - f.head }

func (f *fifo) pop() (*packet.Packet, bool) {
	if f.head == len(f.buf) {
		return nil, false
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 > len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = nil
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	return p, true
}

// DRR is a practical Deficit Round Robin fair queuer [SV94] with the
// standard active-list optimisation: empty queues are removed from the
// scan and rejoin it on their next arrival, at which point their deficit
// restarts from zero.
//
// DRR is deliberately included as a NON-causal contrast to SRR: whether
// a queue is in the active list depends on arrivals, not on previously
// transmitted packets, so a receiver cannot simulate it — see Section
// 3.1 of the paper for why almost all practical FQ algorithms fall
// outside the causal class. TestDRRIsNotCausal demonstrates the failure
// concretely.
type DRR struct {
	quantum []int64
	deficit []int64
	queues  []fifo
	active  []int
	inList  []bool
	// turnBegan records whether the queue at the head of the active list
	// has already received its quantum for the current service turn.
	turnBegan bool
}

// NewDRR returns a DRR fair queuer with the given per-queue quanta.
func NewDRR(quanta []int64) (*DRR, error) {
	if err := validateQuanta(quanta); err != nil {
		return nil, err
	}
	n := len(quanta)
	return &DRR{
		quantum: append([]int64(nil), quanta...),
		deficit: make([]int64, n),
		queues:  make([]fifo, n),
		inList:  make([]bool, n),
	}, nil
}

// N returns the number of input queues.
func (d *DRR) N() int { return len(d.quantum) }

// Enqueue appends p to queue q, activating the queue if necessary.
func (d *DRR) Enqueue(q int, p *packet.Packet) {
	d.queues[q].push(p)
	if !d.inList[q] {
		d.inList[q] = true
		d.active = append(d.active, q)
	}
}

// Dequeue transmits the next packet under DRR service, or returns false
// if all queues are empty.
//
// Unlike SRR, DRR checks the head-of-line packet size against the
// remaining deficit before sending (never overdrawing), which is the
// other reason it is non-causal.
func (d *DRR) Dequeue() (*packet.Packet, bool) {
	for len(d.active) > 0 {
		q := d.active[0]
		if d.queues[q].len() == 0 {
			// Deactivated lazily.
			d.active = d.active[1:]
			d.inList[q] = false
			d.deficit[q] = 0
			d.turnBegan = false
			continue
		}
		if !d.turnBegan {
			d.deficit[q] += d.quantum[q]
			d.turnBegan = true
		}
		head := d.queues[q].buf[d.queues[q].head]
		if int64(head.Len()) > d.deficit[q] {
			// Head does not fit in the remaining deficit: end the turn,
			// rotate to the tail keeping the accumulated deficit.
			d.active = append(d.active[1:], q)
			d.turnBegan = false
			continue
		}
		p, _ := d.queues[q].pop()
		d.deficit[q] -= int64(p.Len())
		if d.queues[q].len() == 0 {
			d.active = d.active[1:]
			d.inList[q] = false
			d.deficit[q] = 0
			d.turnBegan = false
		}
		return p, true
	}
	return nil, false
}
