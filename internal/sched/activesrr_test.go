package sched

import (
	"math/rand"
	"testing"
)

func TestActiveSRRBackloggedMatchesPlainSRR(t *testing.T) {
	// Under permanent backlog the active list never skips, so the
	// practical engine must emit the identical sequence as the
	// backlogged automaton driving sched.FQ.
	rng := rand.New(rand.NewSource(6))
	quanta := []int64{900, 2100}
	a, err := NewActiveSRR(quanta)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFQ(MustSRR(quanta))
	const n = 400
	for q := 0; q < 2; q++ {
		for i := 0; i < n; i++ {
			size := 1 + rng.Intn(1500)
			id := uint64(q*n + i)
			a.Enqueue(q, mkPkt(id, size))
			f.Enqueue(q, mkPkt(id, size))
		}
	}
	for i := 0; ; i++ {
		pa, oka := a.Dequeue()
		pf, okf := f.Dequeue()
		if !okf {
			// The backlogged FQ stops when a queue would underflow; the
			// active engine continues draining the rest. Equality is
			// required only on the common backlogged prefix.
			break
		}
		if !oka {
			t.Fatalf("active engine stopped at %d before the backlogged one", i)
		}
		if pa.ID != pf.ID {
			t.Fatalf("position %d: active %d vs backlogged %d", i, pa.ID, pf.ID)
		}
	}
}

func TestActiveSRRSkipsIdleQueues(t *testing.T) {
	a, _ := NewActiveSRR([]int64{1000, 1000, 1000})
	// Only queue 1 has traffic: it must be served continuously, no
	// blocking on the empty neighbours (the non-causal convenience).
	for i := 0; i < 10; i++ {
		a.Enqueue(1, mkPkt(uint64(i), 400))
	}
	for i := 0; i < 10; i++ {
		p, ok := a.Dequeue()
		if !ok || p.ID != uint64(i) {
			t.Fatalf("packet %d: %v %v", i, p, ok)
		}
	}
	if _, ok := a.Dequeue(); ok {
		t.Fatal("dequeue from empty engine succeeded")
	}
}

func TestActiveSRRFairShares(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, _ := NewActiveSRR([]int64{3000, 1000})
	var bytes [2]int64
	refill := func() {
		for q := 0; q < 2; q++ {
			for a.Len(q) < 8 {
				a.Enqueue(q, mkPkt(uint64(q), 100+rng.Intn(1400)))
			}
		}
	}
	for i := 0; i < 30000; i++ {
		refill()
		p, ok := a.Dequeue()
		if !ok {
			t.Fatal("backlogged dequeue failed")
		}
		bytes[p.ID] += int64(p.Len())
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 2.85 || ratio > 3.15 {
		t.Fatalf("byte ratio %.3f, want ~3.0", ratio)
	}
}

func TestActiveSRRDebtSurvivesIdle(t *testing.T) {
	a, _ := NewActiveSRR([]int64{100, 100})
	// Queue 0 overdraws massively with one packet, then goes idle.
	a.Enqueue(0, mkPkt(0, 500))
	a.Enqueue(1, mkPkt(1, 50))
	if p, _ := a.Dequeue(); p.ID != 0 {
		t.Fatalf("first dequeue = %d", p.ID)
	}
	if d := a.Deficit(0); d != -400 {
		t.Fatalf("deficit = %d, want -400", d)
	}
	// Drain queue 1, then give queue 0 new traffic: it must pay the
	// debt (4 quanta) before sending again, so queue 1's new traffic
	// goes first for several turns.
	if p, _ := a.Dequeue(); p.ID != 1 {
		t.Fatal("queue 1 blocked")
	}
	a.Enqueue(0, mkPkt(10, 50))
	served1 := 0
	for i := 0; i < 3; i++ {
		a.Enqueue(1, mkPkt(1, 90))
	}
	for {
		p, ok := a.Dequeue()
		if !ok {
			t.Fatal("drained before queue 0 was served")
		}
		if p.ID == 10 {
			break
		}
		served1++
	}
	if served1 != 3 {
		t.Fatalf("queue 1 served %d packets before the debtor, want 3", served1)
	}
}

func TestActiveSRRForgivesDebtWhenConfigured(t *testing.T) {
	a, _ := NewActiveSRR([]int64{100, 100})
	a.KeepDebtWhenIdle = false
	a.Enqueue(0, mkPkt(0, 500))
	a.Enqueue(1, mkPkt(1, 50))
	a.Dequeue() // queue 0 overdraws and empties
	if d := a.Deficit(0); d != 0 {
		t.Fatalf("deficit = %d, want 0 (forgiven)", d)
	}
}

func TestActiveSRRNoCreditHoarding(t *testing.T) {
	a, _ := NewActiveSRR([]int64{1000, 1000})
	a.Enqueue(0, mkPkt(0, 10)) // uses 10 of 1000; 990 left
	a.Dequeue()
	if d := a.Deficit(0); d != 0 {
		t.Fatalf("idle queue kept %d credit", d)
	}
}

func TestActiveSRRValidation(t *testing.T) {
	if _, err := NewActiveSRR(nil); err == nil {
		t.Error("empty quanta accepted")
	}
	if _, err := NewActiveSRR([]int64{0}); err == nil {
		t.Error("zero quantum accepted")
	}
}
