package sched

import "stripe/internal/packet"

// ActiveSRR is the practical, non-backlogged form of the SRR fair
// queuer attributed to Jacobson and Floyd [Flo93]: queues with traffic
// sit in an active list (empty queues are skipped, like DRR), but the
// service discipline is SRR's — a queue transmits while its deficit
// counter is positive, may overdraw on its last packet, and carries the
// overdraft as a debt into its next service.
//
// Like DRR, the active list makes ActiveSRR NON-causal: decisions
// depend on which queues currently hold packets, not only on the
// transmitted history. It therefore serves the forward (fair-queuing)
// direction only and cannot drive logical reception — use the
// backlogged SRR automaton for that. Its inclusion completes the
// paper's Section 3 taxonomy with the practical FQ engine the SRR
// striper is derived from.
type ActiveSRR struct {
	quantum []int64
	deficit []int64
	queues  []fifo
	active  []int
	inList  []bool
	// turnBegan records whether the queue at the head of the active
	// list has received its quantum for the current service turn.
	turnBegan bool

	// KeepDebtWhenIdle controls what happens to a negative deficit when
	// a queue empties: true (default via NewActiveSRR) carries the debt
	// so a queue cannot escape its overdraft by going idle; false
	// forgives it, as DRR does.
	KeepDebtWhenIdle bool
}

// NewActiveSRR returns a practical SRR fair queuer with the given
// per-queue quanta and debt carried across idle periods.
func NewActiveSRR(quanta []int64) (*ActiveSRR, error) {
	if err := validateQuanta(quanta); err != nil {
		return nil, err
	}
	n := len(quanta)
	return &ActiveSRR{
		quantum:          append([]int64(nil), quanta...),
		deficit:          make([]int64, n),
		queues:           make([]fifo, n),
		inList:           make([]bool, n),
		KeepDebtWhenIdle: true,
	}, nil
}

// N returns the number of input queues.
func (a *ActiveSRR) N() int { return len(a.quantum) }

// Len returns the occupancy of queue q.
func (a *ActiveSRR) Len(q int) int { return a.queues[q].len() }

// Deficit returns queue q's deficit counter.
func (a *ActiveSRR) Deficit(q int) int64 { return a.deficit[q] }

// Enqueue appends p to queue q, activating the queue if necessary.
func (a *ActiveSRR) Enqueue(q int, p *packet.Packet) {
	a.queues[q].push(p)
	if !a.inList[q] {
		a.inList[q] = true
		a.active = append(a.active, q)
	}
}

// Dequeue transmits the next packet under SRR service, or returns false
// when all queues are empty.
func (a *ActiveSRR) Dequeue() (*packet.Packet, bool) {
	for len(a.active) > 0 {
		q := a.active[0]
		if a.queues[q].len() == 0 {
			a.deactivate(q)
			continue
		}
		if !a.turnBegan {
			a.deficit[q] += a.quantum[q]
			a.turnBegan = true
			if a.deficit[q] <= 0 {
				// The fresh quantum did not clear the debt: the queue
				// forfeits this turn (the SRR penalty).
				a.rotate(q)
				continue
			}
		}
		if a.deficit[q] <= 0 {
			a.rotate(q)
			continue
		}
		p, _ := a.queues[q].pop()
		a.deficit[q] -= int64(p.Len())
		if a.queues[q].len() == 0 {
			a.deactivate(q)
		} else if a.deficit[q] <= 0 {
			a.rotate(q)
		}
		return p, true
	}
	return nil, false
}

// rotate ends q's turn, moving it to the tail of the active list.
func (a *ActiveSRR) rotate(q int) {
	a.active = append(a.active[1:], q)
	a.turnBegan = false
}

// deactivate removes q from the active list.
func (a *ActiveSRR) deactivate(q int) {
	a.active = a.active[1:]
	a.inList[q] = false
	a.turnBegan = false
	if !a.KeepDebtWhenIdle && a.deficit[q] < 0 {
		a.deficit[q] = 0
	}
	if a.deficit[q] > 0 {
		// Unused positive credit does not accumulate across idleness;
		// both DRR and SRR zero it so an idle queue cannot hoard
		// bandwidth.
		a.deficit[q] = 0
	}
}
