package sched

import "fmt"

// CostModel determines what a deficit counter is denominated in.
type CostModel uint8

const (
	// CostBytes charges each packet its payload length — Surplus Round
	// Robin proper, which is what gives fair load sharing with variable
	// length packets.
	CostBytes CostModel = iota
	// CostPackets charges each packet one unit regardless of length.
	// With per-channel quantum 1 this degenerates to ordinary round
	// robin; with quanta set to an integer bandwidth ratio it is the
	// generalized round robin (GRR) baseline of Section 6.2.
	CostPackets
)

// SRR is the Surplus Round Robin automaton of Section 3.5, usable both
// as a fair-queuing selector and (by the Section 3.2 transformation) as
// a striping selector.
//
// Each channel i has a quantum Quantum_i and a deficit counter DC_i,
// initialised to zero. Channels are visited in round-robin order. When a
// channel's service begins, its quantum is added to its DC. While the DC
// is positive, packets are sent on the channel, each decrementing the DC
// by its cost. Once the DC becomes non-positive the scan advances; a
// channel that overdraws its account is penalised by the overdraft in
// its next round, hence "surplus" round robin.
//
// Fairness (Theorem 3.2 / Lemma 3.3): after any K rounds the difference
// between K·Quantum_i and the bytes actually sent on channel i is
// bounded by Max + 2·Quantum, independent of K.
//
// SRR is not safe for concurrent use; wrap it in the owning goroutine of
// a striper or resequencer.
type SRR struct {
	quanta []int64
	dc     []int64
	cost   CostModel
	cur    int
	round  uint64
	began  bool
	// disabled marks slots removed from the scan (dynamic membership);
	// activeN counts the survivors. The zero value (all enabled) keeps
	// static configurations on the original code path.
	disabled []bool
	activeN  int
}

// NewSRR returns a byte-denominated SRR over len(quanta) channels. For
// the Theorem 5.1 guarantee that no channel is ever passed over unserved
// (and therefore every marker period makes progress), choose each
// quantum at least as large as the maximum packet size.
func NewSRR(quanta []int64) (*SRR, error) {
	return newSRR(quanta, CostBytes)
}

// NewRR returns ordinary round robin over n channels: one packet per
// channel per round, regardless of packet sizes. It is the classic
// striping baseline whose poor load sharing with variable-length packets
// motivates the paper.
func NewRR(n int) (*SRR, error) {
	if n <= 0 {
		return nil, errNoChannels
	}
	quanta := make([]int64, n)
	for i := range quanta {
		quanta[i] = 1
	}
	return newSRR(quanta, CostPackets)
}

// NewGRR returns generalized round robin: channel i carries counts[i]
// consecutive packets per round, approximating a bandwidth ratio with
// packet counts. It ignores packet sizes, which is exactly the weakness
// the Section 6.2 adversarial workload exposes.
func NewGRR(counts []int64) (*SRR, error) {
	return newSRR(counts, CostPackets)
}

func newSRR(quanta []int64, cost CostModel) (*SRR, error) {
	if err := validateQuanta(quanta); err != nil {
		return nil, err
	}
	return &SRR{
		quanta:   append([]int64(nil), quanta...),
		dc:       make([]int64, len(quanta)),
		cost:     cost,
		disabled: make([]bool, len(quanta)),
		activeN:  len(quanta),
	}, nil
}

// MustSRR is NewSRR that panics on invalid quanta; for tests and
// examples with literal configuration.
func MustSRR(quanta []int64) *SRR {
	s, err := NewSRR(quanta)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of channels.
func (s *SRR) N() int { return len(s.quanta) }

// Quanta returns a copy of the per-channel quanta.
func (s *SRR) Quanta() []int64 { return append([]int64(nil), s.quanta...) }

// Cost returns the scheduler's cost model.
func (s *SRR) Cost() CostModel { return s.cost }

func (s *SRR) costOf(size int) int64 {
	if s.cost == CostPackets {
		return 1
	}
	return int64(size)
}

// CostOf returns what a packet of the given payload size charges
// against a deficit counter under the scheduler's cost model (bytes
// for SRR, one unit for the RR/GRR baselines). The batched striper
// uses it to predict how long the current channel's service lasts
// without mutating the automaton.
//
//stripe:hotpath
func (s *SRR) CostOf(size int) int64 { return s.costOf(size) }

// Select implements Scheduler; it is SelectFor with no skip rule.
//
//stripe:hotpath
func (s *SRR) Select() int { return s.SelectFor(nil) }

// SelectFor implements RoundBased. It walks the round-robin scan until
// it finds a channel whose freshly credited deficit counter permits
// service, consulting skip (if non-nil) before crediting each candidate.
//
//stripe:hotpath
func (s *SRR) SelectFor(skip func(c int) bool) int {
	for {
		if !s.began {
			if s.disabled[s.cur] {
				// A removed slot is passed over without its quantum;
				// callers must not call Select with no enabled slots.
				s.advance()
				continue
			}
			if skip != nil && skip(s.cur) {
				s.advance()
				continue
			}
			s.dc[s.cur] += s.quanta[s.cur]
			s.began = true
		}
		if s.dc[s.cur] > 0 {
			return s.cur
		}
		// The fresh quantum did not clear the overdraft: the channel is
		// penalised by losing this round's service entirely.
		s.advance()
	}
}

// Account implements Scheduler. It must follow a Select (or SelectFor)
// that returned the channel the packet was sent on.
//
//stripe:hotpath
func (s *SRR) Account(size int) {
	if !s.began {
		// Select was skipped; begin service implicitly so that
		// Select/Account pairs cannot be misordered into corruption.
		s.dc[s.cur] += s.quanta[s.cur]
		s.began = true
	}
	s.dc[s.cur] -= s.costOf(size)
	if s.dc[s.cur] <= 0 {
		s.advance()
	}
}

// AccountCost charges one whole service run in a single step: cost must
// be the sum of CostOf over the run's packets, and the run must have
// been predicted so that no packet but the last could end the service
// (deficit stays positive through the run's interior — the batched
// striper's run-prediction rule). Under that precondition the automaton
// lands in exactly the state m individual Account calls would produce,
// because none of the skipped intermediate states could have advanced
// the scan.
//
//stripe:hotpath
func (s *SRR) AccountCost(cost int64) {
	if !s.began {
		s.dc[s.cur] += s.quanta[s.cur]
		s.began = true
	}
	s.dc[s.cur] -= cost
	if s.dc[s.cur] <= 0 {
		s.advance()
	}
}

func (s *SRR) advance() {
	s.began = false
	s.cur++
	if s.cur == len(s.quanta) {
		s.cur = 0
		s.round++
	}
}

// Skip advances past the current channel without granting its quantum
// or servicing it. It must only be called at a service boundary.
func (s *SRR) Skip() {
	if s.began {
		panic("sched: Skip mid-service")
	}
	s.advance()
}

// EndService ends the current channel's service immediately, advancing
// the scan pointer, regardless of the remaining deficit. The receiver
// uses it when a marker reveals that the sender has already moved past
// the channel (the receiver was servicing it "too long" because packets
// were lost).
func (s *SRR) EndService() {
	if s.began {
		s.advance()
	}
}

// QuantumOf returns channel c's quantum.
func (s *SRR) QuantumOf(c int) int64 { return s.quanta[c] }

// Round implements RoundBased.
func (s *SRR) Round() uint64 { return s.round }

// Current implements RoundBased.
func (s *SRR) Current() int { return s.cur }

// MidService implements RoundBased.
func (s *SRR) MidService() bool { return s.began }

// Deficit implements RoundBased.
func (s *SRR) Deficit(c int) int64 { return s.dc[c] }

// SetDeficit implements RoundBased.
func (s *SRR) SetDeficit(c int, d int64) { s.dc[c] = d }

// NextServiceRound implements RoundBased.
func (s *SRR) NextServiceRound(c int) uint64 {
	if c < s.cur {
		return s.round + 1
	}
	return s.round
}

// AdvanceRoundTo implements RoundBased.
func (s *SRR) AdvanceRoundTo(r uint64) {
	if s.began {
		panic("sched: AdvanceRoundTo mid-service")
	}
	if r > s.round {
		s.round = r
		s.cur = 0
	}
}

// SetEnabled implements Membership. Disabling retires the slot's
// deficit to zero (Theorem 3.2 accounting restarts from scratch if it
// rejoins) and, when the slot is mid-service, ends that service so the
// scan pointer never rests on a removed slot with its quantum granted.
func (s *SRR) SetEnabled(c int, on bool) {
	if s.disabled[c] == !on {
		return
	}
	if on {
		s.disabled[c] = false
		s.dc[c] = 0
		s.activeN++
		return
	}
	if s.began && s.cur == c {
		s.advance()
	}
	s.disabled[c] = true
	s.dc[c] = 0
	s.activeN--
}

// Enabled implements Membership.
func (s *SRR) Enabled(c int) bool { return !s.disabled[c] }

// ActiveN implements Membership.
func (s *SRR) ActiveN() int { return s.activeN }

// Snapshot implements Causal.
func (s *SRR) Snapshot() State {
	return State{
		Current:  s.cur,
		Round:    s.round,
		Began:    s.began,
		Deficits: append([]int64(nil), s.dc...),
		Disabled: append([]bool(nil), s.disabled...),
	}
}

// Restore implements Causal. A nil st.Disabled leaves the membership
// mask unchanged (see State.Disabled).
func (s *SRR) Restore(st State) {
	if len(st.Deficits) != len(s.dc) {
		panic(fmt.Sprintf("sched: Restore with %d deficits into %d-channel SRR", len(st.Deficits), len(s.dc)))
	}
	s.cur = st.Current
	s.round = st.Round
	s.began = st.Began
	copy(s.dc, st.Deficits)
	if st.Disabled != nil {
		if len(st.Disabled) != len(s.disabled) {
			panic(fmt.Sprintf("sched: Restore with %d-slot mask into %d-channel SRR", len(st.Disabled), len(s.disabled)))
		}
		copy(s.disabled, st.Disabled)
		s.activeN = 0
		for _, d := range s.disabled {
			if !d {
				s.activeN++
			}
		}
	}
}

// Reset reinitialises the automaton to its start state s0: all deficit
// counters zero, pointer at channel 0, round 0. Both ends run Reset when
// a Reset packet is exchanged (crash recovery, Section 5). Membership is
// deliberately preserved: the epoch restarts over the same physical link
// set, and both ends apply Reset with identical masks.
func (s *SRR) Reset() {
	for i := range s.dc {
		s.dc[i] = 0
	}
	s.cur = 0
	s.round = 0
	s.began = false
}

// Clone returns an independent copy of the automaton in the same state.
// The receiver of a striped group clones the sender's start-state
// automaton to run the logical-reception simulation.
func (s *SRR) Clone() *SRR {
	return &SRR{
		quanta:   append([]int64(nil), s.quanta...),
		dc:       append([]int64(nil), s.dc...),
		cost:     s.cost,
		cur:      s.cur,
		round:    s.round,
		began:    s.began,
		disabled: append([]bool(nil), s.disabled...),
		activeN:  s.activeN,
	}
}

var _ Membership = (*SRR)(nil)

var (
	_ Scheduler  = (*SRR)(nil)
	_ Causal     = (*SRR)(nil)
	_ RoundBased = (*SRR)(nil)
)
