package sched

import (
	"fmt"
	"math"
)

// QuantaForRates derives byte-denominated SRR quanta proportional to the
// given channel bandwidths, scaled so that the smallest quantum is at
// least minQuantum. Setting minQuantum to the maximum packet size
// satisfies the Quantum_i >= Max assumption of the marker-recovery
// theorem (no channel is ever passed over unserved, so every round makes
// progress on every channel).
//
// This is the weighted-fair-queuing generalisation the paper notes at
// the end of Section 3.5: assigning larger quanta to higher-bandwidth
// lines shares load in proportion to capacity.
func QuantaForRates(rates []float64, minQuantum int64) ([]int64, error) {
	if len(rates) == 0 {
		return nil, errNoChannels
	}
	if minQuantum <= 0 {
		return nil, fmt.Errorf("sched: minQuantum %d must be positive", minQuantum)
	}
	minRate := math.Inf(1)
	for i, r := range rates {
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			return nil, fmt.Errorf("sched: rate %v for channel %d must be positive and finite", r, i)
		}
		if r < minRate {
			minRate = r
		}
	}
	quanta := make([]int64, len(rates))
	for i, r := range rates {
		q := int64(math.Round(r / minRate * float64(minQuantum)))
		if q < 1 {
			q = 1
		}
		quanta[i] = q
	}
	return quanta, nil
}

// CountsForRates derives GRR per-round packet counts from channel
// bandwidths using the closest integer ratio, the policy described for
// the GRR baseline in Section 6.2: divide every rate by the smallest and
// round to the nearest integer.
func CountsForRates(rates []float64) ([]int64, error) {
	if len(rates) == 0 {
		return nil, errNoChannels
	}
	minRate := math.Inf(1)
	for i, r := range rates {
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			return nil, fmt.Errorf("sched: rate %v for channel %d must be positive and finite", r, i)
		}
		if r < minRate {
			minRate = r
		}
	}
	counts := make([]int64, len(rates))
	for i, r := range rates {
		c := int64(math.Round(r / minRate))
		if c < 1 {
			c = 1
		}
		counts[i] = c
	}
	return counts, nil
}

// UniformQuanta returns n equal quanta of size q, the configuration for
// striping over identical links.
func UniformQuanta(n int, q int64) []int64 {
	quanta := make([]int64, n)
	for i := range quanta {
		quanta[i] = q
	}
	return quanta
}

// FairnessBound returns the Theorem 3.2 / Lemma 3.3 bound on the
// deviation between the bytes channel i should carry after K rounds
// (K·Quantum_i) and the bytes it actually carries: Max + 2·Quantum,
// where Max is the maximum packet size and Quantum the maximum quantum.
func FairnessBound(maxPacket int64, quanta []int64) int64 {
	var maxQ int64
	for _, q := range quanta {
		if q > maxQ {
			maxQ = q
		}
	}
	return maxPacket + 2*maxQ
}
