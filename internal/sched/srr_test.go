package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperPackets is the six-packet example of Figures 2, 3, 5 and 6:
// packets a..f with sizes 550, 150, 300, 200, 400, 400 and quantum 500
// on both channels.
var paperSizes = map[byte]int{
	'a': 550, 'b': 150, 'c': 300, 'd': 200, 'e': 400, 'f': 400,
}

// TestSRRPaperTraceFigure6 replays the exact striping execution of
// Figure 6: the input sequence a,d,e,b,c,f must split into channel 1 =
// (a,b,c) and channel 2 = (d,e,f), with the deficit counters following
// the annotated trace.
func TestSRRPaperTraceFigure6(t *testing.T) {
	s := MustSRR([]int64{500, 500})

	// The arrival order consistent with the figures: the FQ output in
	// Figure 5 is a, d, e, b, c, f; time-reversed it is the striper's
	// input.
	input := []byte{'a', 'd', 'e', 'b', 'c', 'f'}
	wantChannel := map[byte]int{'a': 0, 'b': 0, 'c': 0, 'd': 1, 'e': 1, 'f': 1}

	type step struct {
		dc0, dc1 int64
		round    uint64
	}
	// Deficit counters after each packet is accounted, per Figure 6:
	// after a: DC1 = -50 (move to ch2, round stays 0)
	// after d: DC2 = 300
	// after e: DC2 = -100 (wrap, round 1)
	// after b: DC1 = 450+... see trace: round 2 adds 500 to -50 -> 450,
	// minus 150 -> 300; after c: 0 (move on); after f: 400-400 = 0.
	wantSteps := []step{
		{-50, 0, 0},
		{-50, 300, 0},
		{-50, -100, 1},
		{300, -100, 1},
		{0, -100, 1},
		{0, 0, 2},
	}

	for i, id := range input {
		got := s.Select()
		if want := wantChannel[id]; got != want {
			t.Fatalf("packet %c: sent on channel %d, want %d", id, got, want)
		}
		s.Account(paperSizes[id])
		st := s.Snapshot()
		w := wantSteps[i]
		if st.Deficits[0] != w.dc0 || st.Deficits[1] != w.dc1 || st.Round != w.round {
			t.Fatalf("after %c: DC=(%d,%d) round=%d, want DC=(%d,%d) round=%d",
				id, st.Deficits[0], st.Deficits[1], st.Round, w.dc0, w.dc1, w.round)
		}
	}
}

// TestSRRRoundStructure checks the round accounting: with quantum equal
// to the (uniform) packet size SRR degenerates to one packet per channel
// per round, the configuration of the Section 5 walkthrough.
func TestSRRRoundStructure(t *testing.T) {
	const n = 4
	s := MustSRR(UniformQuanta(n, 100))
	for round := uint64(0); round < 5; round++ {
		for c := 0; c < n; c++ {
			if got := s.Round(); got != round {
				t.Fatalf("round = %d, want %d", got, round)
			}
			if got := s.Select(); got != c {
				t.Fatalf("round %d: Select() = %d, want %d", round, got, c)
			}
			s.Account(100)
		}
	}
}

// TestRRAlternates checks that ordinary round robin ignores sizes.
func TestRRAlternates(t *testing.T) {
	s, err := NewRR(3)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1500, 40, 1500, 1500, 40, 40, 9000, 1, 64}
	for i, sz := range sizes {
		if got, want := s.Select(), i%3; got != want {
			t.Fatalf("packet %d: channel %d, want %d", i, got, want)
		}
		s.Account(sz)
	}
	if got := s.Round(); got != 3 {
		t.Fatalf("round = %d, want 3", got)
	}
}

// TestGRRCounts checks the packet-count quanta: a 2:1 ratio must carry
// two packets on channel 0 for every one on channel 1.
func TestGRRCounts(t *testing.T) {
	s, err := NewGRR([]int64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 0, 0, 1, 0, 0, 1}
	for i, w := range want {
		if got := s.Select(); got != w {
			t.Fatalf("packet %d: channel %d, want %d", i, got, w)
		}
		s.Account(1000 + i) // sizes must not matter
	}
}

// TestSRRFairnessBound is the Theorem 3.2 / Lemma 3.3 property test:
// for random packet-size sequences, after any prefix of K complete
// rounds, |K*Quantum_i - bytes_i| <= Max + 2*Quantum for every channel.
func TestSRRFairnessBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nch := 2 + rng.Intn(6)
		maxPkt := 64 + rng.Intn(1500)
		quanta := make([]int64, nch)
		for i := range quanta {
			// Quantum >= Max keeps every channel served every round, the
			// regime the bound is stated for.
			quanta[i] = int64(maxPkt + rng.Intn(4*maxPkt))
		}
		s := MustSRR(quanta)
		bound := FairnessBound(int64(maxPkt), quanta)

		sent := make([]int64, nch)
		lastRound := uint64(0)
		for i := 0; i < 20000; i++ {
			size := 1 + rng.Intn(maxPkt)
			c := s.Select()
			sent[c] += int64(size)
			s.Account(size)
			if r := s.Round(); r != lastRound {
				lastRound = r
				k := int64(r)
				for i := range sent {
					dev := k*quanta[i] - sent[i]
					if dev < 0 {
						dev = -dev
					}
					if dev > bound {
						t.Logf("seed %d: channel %d after %d rounds: |%d| > bound %d",
							seed, i, r, dev, bound)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSRRFairnessGrowsUnboundedForGRR shows the contrast motivating SRR:
// under the adversarial alternating big/small workload of Section 6.2,
// GRR's byte imbalance grows linearly while SRR's stays bounded.
func TestSRRFairnessGrowsUnboundedForGRR(t *testing.T) {
	grr, _ := NewGRR([]int64{1, 1})
	srr := MustSRR([]int64{1000, 1000})
	var grrBytes, srrBytes [2]int64
	for i := 0; i < 10000; i++ {
		size := 1000
		if i%2 == 1 {
			size = 200
		}
		c := grr.Select()
		grrBytes[c] += int64(size)
		grr.Account(size)

		c = srr.Select()
		srrBytes[c] += int64(size)
		srr.Account(size)
	}
	grrDiff := grrBytes[0] - grrBytes[1]
	if grrDiff < 0 {
		grrDiff = -grrDiff
	}
	srrDiff := srrBytes[0] - srrBytes[1]
	if srrDiff < 0 {
		srrDiff = -srrDiff
	}
	if grrDiff < 1000000 {
		t.Fatalf("GRR imbalance %d unexpectedly small; the adversarial workload should load one channel with all big packets", grrDiff)
	}
	if bound := FairnessBound(1000, []int64{1000, 1000}); srrDiff > bound {
		t.Fatalf("SRR imbalance %d exceeds bound %d", srrDiff, bound)
	}
}

// TestSRRSnapshotRestore verifies that a restored automaton replays the
// identical decision sequence — the property logical reception rests on.
func TestSRRSnapshotRestore(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		quanta := []int64{1500, 3000, 2200}
		a := MustSRR(quanta)

		// Warm up with a random prefix.
		for i := 0; i < rng.Intn(500); i++ {
			a.Select()
			a.Account(1 + rng.Intn(1500))
		}
		st := a.Snapshot()
		b := MustSRR(quanta)
		b.Restore(st)

		sizes := make([]int, 1000)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(1500)
		}
		for _, sz := range sizes {
			if a.Select() != b.Select() {
				return false
			}
			a.Account(sz)
			b.Account(sz)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSRRSkipRule exercises SelectFor: skipping a channel must advance
// past it without granting its quantum.
func TestSRRSkipRule(t *testing.T) {
	s := MustSRR([]int64{100, 100, 100})
	skipCh1 := func(c int) bool { return c == 1 }
	if got := s.SelectFor(skipCh1); got != 0 {
		t.Fatalf("Select = %d, want 0", got)
	}
	s.Account(100) // ends channel 0's service
	if got := s.SelectFor(skipCh1); got != 2 {
		t.Fatalf("Select = %d, want 2 (channel 1 skipped)", got)
	}
	if got := s.Deficit(1); got != 0 {
		t.Fatalf("skipped channel deficit = %d, want 0 (no quantum granted)", got)
	}
	s.Account(100)
	if got := s.Round(); got != 1 {
		t.Fatalf("round = %d, want 1", got)
	}
}

// TestSRRSkippedOverdraftChannel checks that a channel whose fresh
// quantum cannot clear its overdraft loses the round — the "penalised in
// the next round" rule.
func TestSRRSkippedOverdraftChannel(t *testing.T) {
	s := MustSRR([]int64{100, 100})
	if got := s.Select(); got != 0 {
		t.Fatalf("Select = %d, want 0", got)
	}
	s.Account(350) // overdraft of 250: needs three more quanta to recover
	// Rounds 1-3: channel 0's deficit stays non-positive after one and
	// two fresh quanta (-150, -50), so only channel 1 is served.
	for round := 0; round < 3; round++ {
		if got := s.Select(); got != 1 {
			t.Fatalf("round %d: Select = %d, want 1", round, got)
		}
		s.Account(100)
	}
	// Fourth visit: -250 + 3*100 = +50, service resumes.
	if got := s.Select(); got != 0 {
		t.Fatalf("Select = %d, want 0 after recovery", got)
	}
}

// TestNextServiceRound pins the marker numbering convention.
func TestNextServiceRound(t *testing.T) {
	s := MustSRR(UniformQuanta(3, 100))
	s.Select()
	s.Account(100) // channel 0 done; pointer at 1, round 0
	if got := s.NextServiceRound(0); got != 1 {
		t.Fatalf("NextServiceRound(0) = %d, want 1", got)
	}
	if got := s.NextServiceRound(1); got != 0 {
		t.Fatalf("NextServiceRound(1) = %d, want 0", got)
	}
	if got := s.NextServiceRound(2); got != 0 {
		t.Fatalf("NextServiceRound(2) = %d, want 0", got)
	}
}

// TestAdvanceRoundTo checks the fast-forward used when every channel is
// skip-listed.
func TestAdvanceRoundTo(t *testing.T) {
	s := MustSRR(UniformQuanta(2, 100))
	s.AdvanceRoundTo(7)
	if got := s.Round(); got != 7 {
		t.Fatalf("Round = %d, want 7", got)
	}
	if got := s.Current(); got != 0 {
		t.Fatalf("Current = %d, want 0", got)
	}
	// Regressing is a no-op.
	s.AdvanceRoundTo(3)
	if got := s.Round(); got != 7 {
		t.Fatalf("Round = %d after regress attempt, want 7", got)
	}
}

// TestSRRReset checks crash-recovery reinitialisation.
func TestSRRReset(t *testing.T) {
	s := MustSRR(UniformQuanta(2, 100))
	for i := 0; i < 7; i++ {
		s.Select()
		s.Account(130)
	}
	s.Reset()
	st := s.Snapshot()
	if st.Round != 0 || st.Current != 0 || st.Began || st.Deficits[0] != 0 || st.Deficits[1] != 0 {
		t.Fatalf("Reset left state %+v", st)
	}
}

// TestSRRCloneIndependent checks that clones do not share state.
func TestSRRCloneIndependent(t *testing.T) {
	a := MustSRR(UniformQuanta(2, 500))
	a.Select()
	a.Account(400)
	b := a.Clone()
	b.Account(400)
	if a.Deficit(0) == b.Deficit(0) {
		t.Fatalf("clone shares deficit state: %d", a.Deficit(0))
	}
}

// TestInvalidConstructors covers constructor validation.
func TestInvalidConstructors(t *testing.T) {
	if _, err := NewSRR(nil); err == nil {
		t.Error("NewSRR(nil) succeeded")
	}
	if _, err := NewSRR([]int64{100, 0}); err == nil {
		t.Error("NewSRR with zero quantum succeeded")
	}
	if _, err := NewSRR([]int64{100, -5}); err == nil {
		t.Error("NewSRR with negative quantum succeeded")
	}
	if _, err := NewRR(0); err == nil {
		t.Error("NewRR(0) succeeded")
	}
	if _, err := NewGRR([]int64{}); err == nil {
		t.Error("NewGRR(empty) succeeded")
	}
}

// TestWeightedSRRShares checks weighted load sharing for dissimilar
// links: a 3:1 quantum ratio must carry ~3x the bytes on the fast
// channel over a long random run.
func TestWeightedSRRShares(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quanta := []int64{4500, 1500}
	s := MustSRR(quanta)
	var bytes [2]int64
	for i := 0; i < 50000; i++ {
		size := 40 + rng.Intn(1460)
		c := s.Select()
		bytes[c] += int64(size)
		s.Account(size)
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("byte ratio = %.3f, want ~3.0", ratio)
	}
}

func BenchmarkSRRDecision(b *testing.B) {
	s := MustSRR(UniformQuanta(4, 3000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Select()
		s.Account(1000)
	}
}

func BenchmarkRRDecision(b *testing.B) {
	s, _ := NewRR(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Select()
		s.Account(1000)
	}
}
