// Flight recorder: a bounded ring of recent protocol events that dumps
// itself — together with a full metrics Snapshot — the moment an
// anomaly trips, so the events leading up to a failure are preserved
// even when nobody was watching the endpoint. It is an ordinary Sink:
// attach with Collector.AddSink and it records everything the
// collector emits.
//
// Anomaly triggers:
//
//   - credit stall: a KindCreditExhausted event (flow control vetoed a
//     send);
//   - resequencer overflow: a KindReseqOverflow event;
//   - resync storm: more than StormThreshold KindResync events inside
//     one StormWindow — isolated resyncs are routine loss recovery, a
//     burst means a channel is flapping;
//   - auto-eviction: a KindMemberEvict event (the health monitor
//     force-removed a channel after consecutive send errors or marker
//     silence);
//   - fairness-band exit / any invariant break: a
//     KindInvariantViolation event from the attached Checker.
//
// Dumps are rate-limited by Cooldown so a persistent anomaly produces
// one post-mortem, not a dump per packet.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightDump is one post-mortem record: the trigger, the event history
// leading up to it, and the collector's metrics at that instant.
type FlightDump struct {
	At       int64   // nanoseconds since the process timebase
	Trigger  Event   // the event that tripped the dump
	Reason   string  // human-readable trigger description
	Events   []Event // retained history, oldest first (includes Trigger)
	Snapshot Snapshot
}

// FlightRecorderConfig tunes a FlightRecorder. The zero value selects
// the defaults.
type FlightRecorderConfig struct {
	// Size is the event ring capacity. Default 256.
	Size int
	// StormThreshold is the number of resync events inside StormWindow
	// that counts as a storm. Default 8; negative disables the trigger.
	StormThreshold int
	// StormWindow is the sliding window for storm detection. Default
	// 100ms.
	StormWindow time.Duration
	// Cooldown is the minimum spacing between dumps. Default 1s.
	Cooldown time.Duration
	// W, when non-nil, receives every dump as one line of JSON. The
	// last dump is always retained in memory regardless (LastDump).
	W io.Writer
	// OnDump, when non-nil, is called synchronously with every dump.
	OnDump func(FlightDump)
}

// FlightRecorder implements Sink. Create with NewFlightRecorder and
// attach with Collector.AddSink.
type FlightRecorder struct {
	col *Collector
	cfg FlightRecorderConfig

	mu       sync.Mutex
	buf      []Event
	next     int
	resyncs  []int64 // At stamps of recent resyncs, for storm detection
	lastDump int64   // At of the most recent dump
	dumped   bool
	dumps    int64
	last     FlightDump
}

// NewFlightRecorder returns a recorder that snapshots c when an
// anomaly trips. Attach it with c.AddSink(fr).
func NewFlightRecorder(c *Collector, cfg FlightRecorderConfig) *FlightRecorder {
	if cfg.Size <= 0 {
		cfg.Size = 256
	}
	if cfg.StormThreshold == 0 {
		cfg.StormThreshold = 8
	}
	if cfg.StormWindow <= 0 {
		cfg.StormWindow = 100 * time.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	return &FlightRecorder{
		col: c,
		cfg: cfg,
		buf: make([]Event, 0, cfg.Size),
	}
}

// Event implements Sink: record the event, then test the anomaly
// triggers.
func (f *FlightRecorder) Event(e Event) {
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % cap(f.buf)
	}

	reason := ""
	switch e.Kind {
	case KindCreditExhausted:
		reason = "credit stall"
	case KindReseqOverflow:
		reason = "resequencer overflow"
	case KindInvariantViolation:
		reason = "invariant violation"
	case KindMemberEvict:
		reason = "channel auto-evicted"
	case KindResync:
		if f.cfg.StormThreshold > 0 {
			cutoff := e.At - f.cfg.StormWindow.Nanoseconds()
			keep := f.resyncs[:0]
			for _, at := range f.resyncs {
				if at >= cutoff {
					keep = append(keep, at)
				}
			}
			f.resyncs = append(keep, e.At)
			if len(f.resyncs) > f.cfg.StormThreshold {
				reason = "resync storm"
				f.resyncs = f.resyncs[:0]
			}
		}
	}
	if reason == "" || (f.dumped && e.At-f.lastDump < f.cfg.Cooldown.Nanoseconds()) {
		f.mu.Unlock()
		return
	}
	f.lastDump, f.dumped = e.At, true
	events := f.eventsLocked()
	f.mu.Unlock()

	// Snapshot outside the lock: the collector may call back into other
	// sinks or the checker while we assemble the dump.
	d := FlightDump{
		At:       e.At,
		Trigger:  e,
		Reason:   reason,
		Events:   events,
		Snapshot: f.col.Snapshot(),
	}

	f.mu.Lock()
	f.dumps++
	f.last = d
	f.mu.Unlock()

	if f.cfg.W != nil {
		if b, err := json.Marshal(d); err == nil {
			f.cfg.W.Write(append(b, '\n'))
		}
	}
	if f.cfg.OnDump != nil {
		f.cfg.OnDump(d)
	}
}

// eventsLocked copies the ring, oldest first. Caller holds f.mu.
func (f *FlightRecorder) eventsLocked() []Event {
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Events returns the currently retained events, oldest first.
func (f *FlightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

// Dumps returns how many post-mortems have fired.
func (f *FlightRecorder) Dumps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// LastDump returns the most recent post-mortem and whether one exists.
func (f *FlightRecorder) LastDump() (FlightDump, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last, f.dumps > 0
}
