package obs

import (
	"sync"
	"sync/atomic"

	"stripe/internal/packet"
)

// peerOwdSamples is the per-channel sliding sample window the one-way
// delay min-filter runs over: long enough to ride out queueing spikes
// (the minimum of recent samples approaches the propagation floor, the
// NTP filter argument), short enough to track a genuine path change
// within a handful of marker intervals.
const peerOwdSamples = 8

// peerResyncKnee is the resync rate (events/s) at which the peer score
// takes the full resync deduction; the local HealthScore normalizes
// resyncs per marker instead, but a peer report carries no marker rate,
// so the knee is absolute.
const peerResyncKnee = 5.0

// PeerView folds the telemetry blocks a peer's resequencer reports
// back into a sender-side view of the remote end: per-channel loss as
// the *receiver* measured it (catching silent loss the local error
// streak never sees), resequencer occupancy against its cap, and an
// NTP-style min-filtered one-way delay estimate per channel from
// marker (tx, rx) timestamp pairs.
//
// Raw delay samples are rx − tx across two unsynchronized clocks, so
// each embeds the inter-host clock offset. The offset is common to
// every channel of the bundle, which makes cross-channel differences
// (RelativeDelayNs, SkewNs) true delay asymmetry measurements even
// though the absolute figures are not.
//
// Apply runs at telemetry cadence (one block per peer marker
// interval), never on the data hot path. Readers get an immutable
// snapshot via Latest. All methods are nil-safe.
type PeerView struct {
	n  int
	mu sync.Mutex

	seq      uint64
	havePrev bool
	prevAt   int64
	prev     []packet.TelemetryChannel // last applied cumulative values

	lossEWMA []float64 // per-channel EWMA of per-block loss fraction
	lastTx   []int64   // last folded MarkerTxNs, so a pair is sampled once
	owd      []int64   // per-channel sample rings, peerOwdSamples each
	owdLen   []int     // samples resident per channel
	owdPos   []int     // next write position per channel

	latest atomic.Pointer[PeerSnapshot]
}

// NewPeerView returns a peer view sized for n channels.
func NewPeerView(n int) *PeerView {
	if n <= 0 {
		return nil
	}
	return &PeerView{
		n:        n,
		prev:     make([]packet.TelemetryChannel, n),
		lossEWMA: make([]float64, n),
		lastTx:   make([]int64, n),
		owd:      make([]int64, n*peerOwdSamples),
		owdLen:   make([]int, n),
		owdPos:   make([]int, n),
	}
}

// N returns the channel count (0 on nil).
func (pv *PeerView) N() int {
	if pv == nil {
		return 0
	}
	return pv.n
}

// Apply folds one telemetry block received at local time rxNs and
// publishes a fresh snapshot. Blocks are sequenced by the peer;
// duplicates and reordered stragglers are rejected (returns false) so
// a stale report cannot roll the view backwards. Counters in the block
// are cumulative, which makes loss of any individual report harmless.
func (pv *PeerView) Apply(t packet.TelemetryBlock, rxNs int64) bool {
	if pv == nil {
		return false
	}
	pv.mu.Lock()
	defer pv.mu.Unlock()
	if pv.seq != 0 && t.Seq <= pv.seq {
		return false
	}
	pv.seq = t.Seq

	n := len(t.Channels)
	if n > pv.n {
		n = pv.n
	}
	for c := 0; c < n; c++ {
		cur := t.Channels[c]
		if pv.havePrev {
			dDel := cur.Delivered - pv.prev[c].Delivered
			dLost := cur.Lost - pv.prev[c].Lost
			if dDel < 0 {
				dDel = 0
			}
			if dLost < 0 {
				dLost = 0
			}
			if dDel+dLost > 0 {
				frac := float64(dLost) / float64(dDel+dLost)
				// The windows engine's EWMA idiom: alpha = 3/8, enough
				// history to smooth marker-cadence jitter without hiding
				// a developing loss trend.
				pv.lossEWMA[c] = (3*frac + 5*pv.lossEWMA[c]) / 8
			}
		} else if cur.Delivered+cur.Lost > 0 {
			pv.lossEWMA[c] = float64(cur.Lost) / float64(cur.Delivered+cur.Lost)
		}
		if cur.MarkerTxNs != 0 && cur.MarkerTxNs != pv.lastTx[c] {
			pv.lastTx[c] = cur.MarkerTxNs
			ring := pv.owd[c*peerOwdSamples : (c+1)*peerOwdSamples]
			ring[pv.owdPos[c]] = cur.MarkerRxNs - cur.MarkerTxNs
			pv.owdPos[c] = (pv.owdPos[c] + 1) % peerOwdSamples
			if pv.owdLen[c] < peerOwdSamples {
				pv.owdLen[c]++
			}
		}
	}

	snap := &PeerSnapshot{
		Seq:         t.Seq,
		AtNs:        t.AtNs,
		RxAtNs:      rxNs,
		Buffered:    t.Buffered,
		MaxBuffered: t.MaxBuffered,
		Channels:    make([]PeerChannel, n),
	}
	if t.MaxBuffered > 0 {
		snap.OccupancyFrac = float64(t.Buffered) / float64(t.MaxBuffered)
	}
	dt := float64(0)
	if pv.havePrev && t.AtNs > pv.prevAt {
		dt = float64(t.AtNs-pv.prevAt) / 1e9
	}
	minOwd, maxOwd := int64(0), int64(0)
	haveOwd := false
	for c := 0; c < n; c++ {
		cur := t.Channels[c]
		pc := PeerChannel{
			Channel:        c,
			DeliveredBytes: cur.Delivered,
			LostBytes:      cur.Lost,
			Resyncs:        cur.Resyncs,
			LossFrac:       pv.lossEWMA[c],
		}
		if dt > 0 {
			if d := cur.Delivered - pv.prev[c].Delivered; d > 0 {
				pc.DeliveredBytesPerSec = float64(d) / dt
			}
			if d := cur.Resyncs - pv.prev[c].Resyncs; d > 0 {
				pc.ResyncsPerSec = float64(d) / dt
			}
		}
		if pv.owdLen[c] > 0 {
			ring := pv.owd[c*peerOwdSamples : (c+1)*peerOwdSamples]
			est := ring[0]
			for i := 1; i < pv.owdLen[c]; i++ {
				if ring[i] < est {
					est = ring[i]
				}
			}
			pc.OneWayDelayNs = est
			if !haveOwd || est < minOwd {
				minOwd = est
			}
			if !haveOwd || est > maxOwd {
				maxOwd = est
			}
			haveOwd = true
		}
		pc.Score = peerScore(&pc)
		snap.Channels[c] = pc
	}
	if haveOwd {
		snap.SkewNs = maxOwd - minOwd
		for c := range snap.Channels {
			if snap.Channels[c].OneWayDelayNs != 0 || pv.owdLen[c] > 0 {
				snap.Channels[c].RelativeDelayNs = snap.Channels[c].OneWayDelayNs - minOwd
			}
		}
	}

	copy(pv.prev, t.Channels[:n])
	pv.prevAt = t.AtNs
	pv.havePrev = true
	pv.latest.Store(snap)
	return true
}

// peerScore grades one channel from the peer's evidence alone, on the
// local HealthScore's loss scale (full deduction at the same knee) plus
// a resync-rate deduction. It is intentionally a subset of the local
// score: the peer report carries no stall/latency axes, and mixing the
// two views is the caller's job (the session health monitor keeps
// separate thresholds for them).
func peerScore(pc *PeerChannel) int {
	ded := 0.0
	loss := pc.LossFrac / healthLossKnee
	if loss > 1 {
		loss = 1
	}
	ded += healthLossWeight * loss
	rs := pc.ResyncsPerSec / peerResyncKnee
	if rs > 1 {
		rs = 1
	}
	ded += healthResyncWeight * rs
	score := 100 - int(ded+0.5)
	if score < 0 {
		score = 0
	}
	return score
}

// Latest returns the most recent peer snapshot, or nil before the
// first applied report (and on nil).
func (pv *PeerView) Latest() *PeerSnapshot {
	if pv == nil {
		return nil
	}
	return pv.latest.Load()
}

// Score returns the peer-evidence score for channel c from the latest
// snapshot, or -1 when no report covers it yet. The session health
// monitor polls it for PeerScoreEvictBelow.
func (pv *PeerView) Score(c int) int {
	s := pv.Latest()
	if s == nil || c < 0 || c >= len(s.Channels) {
		return -1
	}
	return s.Channels[c].Score
}

// PeerSnapshot is one immutable publication of the peer's reported
// view, timestamped on both clocks.
type PeerSnapshot struct {
	// Seq is the peer's report sequence number.
	Seq uint64
	// AtNs is the peer's (receiver) clock when the report was cut;
	// RxAtNs is the local clock when it was applied.
	AtNs   int64
	RxAtNs int64
	// Buffered / MaxBuffered / OccupancyFrac describe the peer
	// resequencer's occupancy against its cap (OccupancyFrac is zero
	// when the peer is unbounded).
	Buffered      int64
	MaxBuffered   int64
	OccupancyFrac float64
	// SkewNs is the bundle's cross-endpoint delay skew: the spread
	// between the largest and smallest per-channel one-way delay
	// estimates. Clock offset cancels in the difference, so this is a
	// true asymmetry measurement.
	SkewNs int64
	// Channels is the per-channel peer view.
	Channels []PeerChannel
}

// PeerChannel is one channel's slice of a PeerSnapshot.
type PeerChannel struct {
	Channel int
	// DeliveredBytes / LostBytes / Resyncs are the peer's cumulative
	// counters: delivery and resyncs as its resequencer performed them,
	// loss as its marker reconciliation measured it.
	DeliveredBytes int64
	LostBytes      int64
	Resyncs        int64
	// LossFrac is the EWMA loss fraction over recent reports — the
	// receiver-measured mirror of ChannelRates.LossFrac, nonzero even
	// when the loss is silent (the local error streak stays 0).
	LossFrac float64
	// DeliveredBytesPerSec / ResyncsPerSec are rates over the interval
	// between the last two reports, on the peer's clock.
	DeliveredBytesPerSec float64
	ResyncsPerSec        float64
	// OneWayDelayNs is the min-filtered rx−tx marker timestamp sample.
	// It embeds the inter-host clock offset (it can even be negative),
	// so read it relative to the other channels: RelativeDelayNs
	// subtracts the bundle minimum, isolating per-channel asymmetry.
	// Zero when no stamped marker has been sampled yet.
	OneWayDelayNs   int64
	RelativeDelayNs int64
	// Score grades the channel 0-100 from peer evidence alone (loss
	// and resync-rate axes of the local HealthScore scale).
	Score int
}

// --- Collector integration ----------------------------------------------

// SetPeerView attaches a peer view; Snapshot and HealthReport then
// carry its latest publication. A nil pv detaches.
func (c *Collector) SetPeerView(pv *PeerView) {
	if c == nil {
		return
	}
	if pv == nil {
		c.peer.Store(nil)
		return
	}
	c.peer.Store(pv)
}

// PeerView returns the attached peer view, or nil.
func (c *Collector) PeerView() *PeerView {
	if c == nil {
		return nil
	}
	return c.peer.Load()
}
