package obs

import (
	"testing"
)

// TestTracerLifecycle walks one packet through all five stages and
// checks every histogram sees the right latency class.
func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1})
	c := NewCollector(2)
	c.SetTracer(tr)

	c.TraceGated(7)
	c.TraceSend(7, 1)
	c.TraceArrive(7, 1)
	c.TraceBuffered(7)
	c.TraceDeliver(7, 2)

	s := tr.Snapshot()
	if s.Tracked != 1 || s.Evicted != 0 || s.Torn != 0 {
		t.Fatalf("tracked=%d evicted=%d torn=%d", s.Tracked, s.Evicted, s.Torn)
	}
	if s.EndToEnd.Count != 1 || s.ReseqDelay.Count != 1 || s.SendStall.Count != 1 {
		t.Fatalf("histogram counts: %+v", s)
	}
	// Displacement 2 is out of order: no head-of-line sample.
	if s.HeadOfLine.Count != 0 {
		t.Fatalf("head-of-line saw displaced packet: %+v", s.HeadOfLine)
	}

	// A second, in-order packet that was never gated.
	c.TraceSend(8, 0)
	c.TraceArrive(8, 0)
	c.TraceDeliver(8, 0)
	s = tr.Snapshot()
	if s.Tracked != 2 || s.HeadOfLine.Count != 1 {
		t.Fatalf("after in-order packet: tracked=%d hol=%d", s.Tracked, s.HeadOfLine.Count)
	}
	// Never-gated packets stall zero nanoseconds (send stamp == stripe
	// stamp), which still lands in the first bucket.
	if s.SendStall.Count != 2 {
		t.Fatalf("send stall count %d", s.SendStall.Count)
	}

	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Key != 7 || recent[1].Key != 8 {
		t.Fatalf("recent: %+v", recent)
	}
	r := recent[0]
	if r.Channel != 1 || r.Displacement != 2 {
		t.Fatalf("record: %+v", r)
	}
	if !(r.StripedNs > 0 && r.SentNs >= r.StripedNs && r.ArrivedNs >= r.SentNs &&
		r.BufferedNs >= r.ArrivedNs && r.DeliveredNs >= r.BufferedNs) {
		t.Fatalf("stamps not monotone: %+v", r)
	}
}

// TestTracerSampling checks that only keys on the sampling lattice are
// stamped: the non-sampled path must not touch the side table.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 16})
	if tr.SampleEvery() != 16 {
		t.Fatalf("SampleEvery = %d", tr.SampleEvery())
	}
	for key := uint64(0); key < 64; key++ {
		tr.onSend(key, 0)
		tr.onArrive(key, 0)
		tr.onDeliver(key, 0)
	}
	if got := tr.Snapshot().Tracked; got != 4 { // keys 0, 16, 32, 48
		t.Fatalf("tracked %d of 64 with 1-in-16 sampling", got)
	}
}

// TestTracerEviction forces two live keys into one slot and checks the
// loser is counted as evicted, not silently merged.
func TestTracerEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Slots: 2, Sample: 1})
	tr.onSend(1, 0)
	tr.onSend(3, 0) // 3 & 1 == 1 & 1: same slot, evicts key 1
	if got := tr.Snapshot().Evicted; got != 1 {
		t.Fatalf("evicted = %d", got)
	}
	// Delivering the evicted key is a no-op; delivering the owner works.
	tr.onDeliver(1, 0)
	tr.onDeliver(3, 0)
	if s := tr.Snapshot(); s.Tracked != 1 {
		t.Fatalf("tracked = %d", s.Tracked)
	}
}

// TestTracerArrivalOnlyClaim checks that a receive-side tracer that
// never saw the send still measures resequencing delay.
func TestTracerArrivalOnlyClaim(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1})
	tr.onArrive(5, 2)
	tr.onDeliver(5, 0)
	s := tr.Snapshot()
	if s.Tracked != 1 || s.ReseqDelay.Count != 1 {
		t.Fatalf("arrival-only: %+v", s)
	}
	// No stripe stamp: end-to-end must not record a bogus latency.
	if s.EndToEnd.Count != 0 || s.SendStall.Count != 0 {
		t.Fatalf("arrival-only recorded send-side stats: %+v", s)
	}
}

// TestTracerRecentRing checks the retention ring is bounded and keeps
// the newest records.
func TestTracerRecentRing(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Recent: 4})
	for key := uint64(0); key < 10; key++ {
		tr.onSend(key, 0)
		tr.onDeliver(key, 0)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("kept %d records", len(recent))
	}
	for i, r := range recent {
		if want := uint64(6 + i); r.Key != want {
			t.Fatalf("recent[%d].Key = %d, want %d", i, r.Key, want)
		}
	}

	// Negative Recent disables retention entirely.
	off := NewTracer(TracerConfig{Sample: 1, Recent: -1})
	off.onSend(1, 0)
	off.onDeliver(1, 0)
	if got := off.Recent(); len(got) != 0 {
		t.Fatalf("disabled retention kept %d", len(got))
	}
}

// TestTracerNilSafety checks nil tracers and detached collectors absorb
// the whole surface.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tr.onGated(1)
	tr.onSend(1, 0)
	tr.onArrive(1, 0)
	tr.onBuffered(1)
	tr.onDeliver(1, 0)
	if s := tr.Snapshot(); s.Tracked != 0 || s.SampleEvery != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
	if tr.Recent() != nil {
		t.Fatal("nil Recent not nil")
	}

	var c *Collector
	c.SetTracer(nil)
	c.TraceSend(1, 0)
	c.TraceDeliver(1, 0)

	c2 := NewCollector(1) // collector without a tracer
	c2.TraceGated(1)
	c2.TraceSend(1, 0)
	c2.TraceArrive(1, 0)
	c2.TraceBuffered(1)
	c2.TraceDeliver(1, 0)
	if c2.Tracer() != nil {
		t.Fatal("phantom tracer")
	}
}

// TestQuantile checks HistogramSnapshot.Quantile interpolation and
// monotonicity in q.
func TestQuantile(t *testing.T) {
	var h Histogram
	h.setBounds(latencyBounds[:])
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i) * 1000) // 0 .. 999µs
	}
	s := h.Snapshot()
	if s.Quantile(0) < 0 {
		t.Fatalf("q0 = %d", s.Quantile(0))
	}
	prev := int64(-1)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %d after %d", q, v, prev)
		}
		prev = v
	}
	// The median of 0..999µs must land in the right order of magnitude.
	if m := s.Quantile(0.5); m < 100_000 || m > 2_000_000 {
		t.Fatalf("median %dns implausible", m)
	}
	// Empty histogram.
	var e Histogram
	if got := e.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
}

// TestSnapshotLifecycle checks the tracer aggregates surface through
// Collector.Snapshot.
func TestSnapshotLifecycle(t *testing.T) {
	c := NewCollector(1)
	if c.Snapshot().Lifecycle != nil {
		t.Fatal("untraced snapshot has lifecycle")
	}
	tr := NewTracer(TracerConfig{Sample: 1})
	c.SetTracer(tr)
	c.TraceSend(0, 0)
	c.TraceDeliver(0, 0)
	s := c.Snapshot()
	if s.Lifecycle == nil || s.Lifecycle.Tracked != 1 {
		t.Fatalf("snapshot lifecycle: %+v", s.Lifecycle)
	}
}
