package obs

import (
	"fmt"
	"io"
	"sync"
)

// Kind enumerates the protocol transitions that fire events.
type Kind uint8

const (
	// KindResync: a marker changed receiver state (expected round or
	// deficit adopted). Channel is the resynchronized channel, Round the
	// marker's round, Value the adopted deficit.
	KindResync Kind = iota
	// KindSkip: the receiver passed over a channel under the r_c > G
	// rule. Channel is the skipped channel, Round the receiver's G.
	KindSkip
	// KindReset: an epoch reset was broadcast (sender) or applied
	// (receiver). Value is the new epoch.
	KindReset
	// KindSelfHeal: the receiver adopted state from uniformly stale
	// markers. Round is the adopted restart round.
	KindSelfHeal
	// KindFastForward: the receiver jumped its round because every
	// channel was skip-listed. Round is the old round, Value the jump
	// distance in rounds.
	KindFastForward
	// KindCreditExhausted: flow control vetoed a send. Channel is the
	// starved channel, Value the blocked packet's size.
	KindCreditExhausted
	// KindCreditReconcile: a marker-carried sender position wrote off
	// lost bytes and granted them back. Channel is the reconciled
	// channel, Value the bytes newly written off.
	KindCreditReconcile
	// KindReseqOverflow: the resequencer's buffered-packet count
	// crossed its configured cap. Channel is the arriving channel;
	// Value is the occupancy (negated when the arrival was dropped at
	// the hard cap).
	KindReseqOverflow
	// KindInvariantViolation: the runtime invariant checker found a
	// protocol invariant broken (Theorem 3.2 fairness band, credit
	// conservation, or monotone round progression). Channel is the
	// offending channel (-1 when global), Round the checker's view of
	// the sender round, Value the violation magnitude in the
	// invariant's own unit (bytes over the bound, rounds regressed).
	KindInvariantViolation
	// KindMemberJoin: a channel (re)joined the live set. Channel is the
	// joining channel, Round the round in which the scheduler first
	// serves it.
	KindMemberJoin
	// KindMemberDrain: a channel left the live set (graceful removal or
	// receiver-side drain completion). Channel is the departing channel,
	// Round the automaton round at departure, Value the outstanding
	// credit returned by gate teardown (sender side) or the buffered
	// packets declared lost (receiver side).
	KindMemberDrain
	// KindMemberEvict: the health monitor force-removed a channel.
	// Value is the consecutive send-error count (or, for marker-silence
	// evictions, the silent interval in nanoseconds).
	KindMemberEvict
	// KindMemberReinstate: the health monitor re-admitted a previously
	// evicted channel after observing recovery.
	KindMemberReinstate

	nKinds
)

var kindNames = [nKinds]string{
	"resync", "skip", "reset", "self_heal", "fast_forward", "credit_exhausted",
	"credit_reconcile", "reseq_overflow", "invariant_violation",
	"member_join", "member_drain", "member_evict", "member_reinstate",
}

// String returns the exposition name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one protocol transition. Channel is -1 for events that are
// not channel-specific; the meanings of Round and Value depend on Kind
// (see the Kind constants). At is nanoseconds since the process
// timebase (the same axis as PacketTrace stamps), so events and packet
// lifecycles interleave on one timeline in a Chrome trace.
type Event struct {
	Seq     uint64 // per-collector emission sequence, from 1
	At      int64  // nanoseconds since the process timebase
	Kind    Kind
	Channel int
	Round   uint64
	Value   int64
}

// String renders the event as one human-readable line.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s channel=%d round=%d value=%d",
		e.Seq, e.Kind, e.Channel, e.Round, e.Value)
}

// Sink observes protocol events. Implementations must be safe for
// concurrent use and should return quickly: sinks run inline on the
// protocol path.
type Sink interface {
	Event(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Event implements Sink.
func (f SinkFunc) Event(e Event) { f(e) }

// RingSink retains the most recent events in a bounded in-memory ring,
// so a live system always has its recent protocol history available at
// zero allocation cost per event.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRingSink returns a ring retaining the last n events (n defaults to
// 256 when not positive).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		n = 256
	}
	return &RingSink{buf: make([]Event, 0, n)}
}

// Event implements Sink.
func (r *RingSink) Event(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Events returns the retained events, oldest first.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever observed (retained or
// overwritten).
func (r *RingSink) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriterSink appends one line per event to an io.Writer — a debug
// trace. Write errors are dropped (tracing must never fail the
// protocol).
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink returns a sink writing to w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Event implements Sink.
func (s *WriterSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "obs %s\n", e)
}
