package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteChromeTrace renders one full lifecycle plus an event and
// checks the JSON decodes into well-formed trace-event records.
func TestWriteChromeTrace(t *testing.T) {
	traces := []PacketTrace{
		{ // gated, flew, resequenced: three slices
			Key: 42, Channel: 1, Displacement: 2,
			StripedNs: 1000, SentNs: 2500, ArrivedNs: 4000,
			BufferedNs: 4100, DeliveredNs: 9000,
		},
		{ // receive-side only: just the resequence slice
			Key: 43, Channel: 0,
			ArrivedNs: 5000, DeliveredNs: 6000,
		},
	}
	events := []Event{{Seq: 1, Kind: KindResync, Channel: 1, Round: 7, Value: -3, At: 4500}}

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, traces, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, sb.String())
	}
	if out.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	byName := map[string]int{}
	for _, e := range out.TraceEvents {
		byName[e.Name]++
	}
	if byName["gated"] != 1 || byName["flight"] != 1 || byName["resequence"] != 2 || byName["resync"] != 1 {
		t.Fatalf("slices: %v", byName)
	}
	for _, e := range out.TraceEvents {
		switch e.Name {
		case "gated":
			if e.Ph != "X" || e.Ts != 1.0 || e.Dur != 1.5 || e.Tid != 1 {
				t.Fatalf("gated slice: %+v", e)
			}
			if e.Args["displacement"] != float64(2) {
				t.Fatalf("gated args: %+v", e.Args)
			}
		case "flight":
			if e.Ts != 2.5 || e.Dur != 1.5 {
				t.Fatalf("flight slice: %+v", e)
			}
		case "resync":
			if e.Ph != "i" || e.Ts != 4.5 || e.Tid != 1 {
				t.Fatalf("instant: %+v", e)
			}
		}
	}

	// Empty input still produces a valid document.
	sb.Reset()
	if err := WriteChromeTrace(&sb, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace: %s", sb.String())
	}
}
