// Chrome trace-event export: renders completed packet lifecycles and
// protocol events as the JSON object format understood by
// chrome://tracing and https://ui.perfetto.dev, for offline inspection
// of where time went. Each channel is a track (tid); every traced
// packet contributes up to three duration slices — "gated" (first
// gated attempt to transmit), "flight" (channel send to receive) and
// "resequence" (receive to in-order delivery) — and every protocol
// event an instant marker on its channel's track.
package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the trace-event JSON array. Timestamps
// and durations are microseconds (the format's unit), as floats so
// sub-microsecond protocol latencies keep three decimal digits.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes traces and events as chrome://tracing JSON.
// Pass the tracer's Recent() and a RingSink's (or flight recorder's)
// Events(); either slice may be nil.
func WriteChromeTrace(w io.Writer, traces []PacketTrace, events []Event) error {
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, 3*len(traces)+len(events)),
		DisplayTimeUnit: "ns",
	}
	for _, t := range traces {
		args := map[string]any{"key": t.Key, "displacement": t.Displacement}
		tid := int64(t.Channel)
		if t.StripedNs > 0 && t.SentNs > t.StripedNs {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "gated", Cat: "stripe", Ph: "X",
				Ts: micros(t.StripedNs), Dur: micros(t.SentNs - t.StripedNs),
				Pid: 1, Tid: tid, Args: args,
			})
		}
		if t.SentNs > 0 && t.ArrivedNs >= t.SentNs {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "flight", Cat: "channel", Ph: "X",
				Ts: micros(t.SentNs), Dur: micros(t.ArrivedNs - t.SentNs),
				Pid: 1, Tid: tid, Args: args,
			})
		}
		if t.ArrivedNs > 0 && t.DeliveredNs >= t.ArrivedNs {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "resequence", Cat: "reseq", Ph: "X",
				Ts: micros(t.ArrivedNs), Dur: micros(t.DeliveredNs - t.ArrivedNs),
				Pid: 1, Tid: tid, Args: args,
			})
		}
	}
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Cat: "protocol", Ph: "i",
			Ts: micros(e.At), Pid: 1, Tid: int64(e.Channel), S: "t",
			Args: map[string]any{"round": e.Round, "value": e.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
