package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"testing"
	"time"
)

// mkHist builds a HistogramSnapshot on the latency ladder with the
// given per-bucket counts (padded with zeros).
func mkHist(counts ...int64) HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  latencyBounds[:],
		Buckets: make([]int64, len(latencyBounds)+1),
	}
	for i, c := range counts {
		s.Buckets[i] = c
		s.Count += c
	}
	return s
}

// TestQuantileEdgeCases pins the estimator's contract at its corners:
// empty histograms, single-bucket mass, the extreme quantiles, q
// clamping, and the +Inf bucket.
func TestQuantileEdgeCases(t *testing.T) {
	empty := HistogramSnapshot{}
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}
	if got := (HistogramSnapshot{Count: 3}).Quantile(0.5); got != 0 {
		t.Errorf("bucketless snapshot Quantile = %d, want 0", got)
	}

	// All mass in the first bucket (bound 256): every quantile must
	// stay inside [0, 256], and q=1 must hit the bucket's upper bound.
	single := mkHist(10)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		got := single.Quantile(q)
		if got < 0 || got > 256 {
			t.Errorf("single-bucket Quantile(%v) = %d, outside [0,256]", q, got)
		}
	}
	if got := single.Quantile(1); got != 256 {
		t.Errorf("single-bucket Quantile(1) = %d, want 256", got)
	}
	if got := single.Quantile(0); got != 0 {
		t.Errorf("single-bucket Quantile(0) = %d, want 0", got)
	}

	// Out-of-range q clamps instead of extrapolating.
	if got, want := single.Quantile(-3), single.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %d, want Quantile(0) = %d", got, want)
	}
	if got, want := single.Quantile(7), single.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %d, want Quantile(1) = %d", got, want)
	}

	// Mass in the +Inf bucket clamps to the last finite bound.
	var inf Histogram
	inf.setBounds(latencyBounds[:])
	inf.Observe(1 << 40)
	if got, want := inf.Snapshot().Quantile(1), latencyBounds[len(latencyBounds)-1]; got != want {
		t.Errorf("+Inf bucket Quantile(1) = %d, want clamp to %d", got, want)
	}

	// Monotone in q across a multi-bucket distribution.
	multi := mkHist(5, 0, 7, 3, 1)
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := multi.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: q=%v -> %d after %d", q, got, prev)
		}
		prev = got
	}
}

// TestWindowDeltaMath pins the fold's delta derivation on injected
// fold times: exact per-second rates, loss fractions from both
// evidence sources, and resync-per-marker normalization.
func TestWindowDeltaMath(t *testing.T) {
	c := NewCollector(2)
	w := NewWindows(c, WindowConfig{Tick: time.Hour, Spans: []time.Duration{time.Hour}})

	w.fold(0) // baseline row at t=0

	// One second of traffic: channel 0 stripes 100 pkts / 100kB and
	// loses 25 of them; channel 1 delivers 50 pkts / 30kB, consumes 10
	// markers, resyncs 5 times, and writes off 5kB via reconciliation.
	c.SyncStriped(0, 100, 100_000)
	for i := 0; i < 25; i++ {
		c.OnChannelLost(0)
	}
	c.SyncStriped(1, 100, 50_000)
	for i := 0; i < 50; i++ {
		c.OnDelivered(1, 600, 0)
	}
	for i := 0; i < 10; i++ {
		c.OnMarkerConsumed(1)
	}
	for i := 0; i < 5; i++ {
		c.OnResync(1, uint64(i), 0)
	}
	c.OnCreditReconciled(1, 5_000)
	w.fold(int64(time.Second))

	snap := w.Latest()
	if snap == nil || len(snap.Spans) != 1 {
		t.Fatalf("no snapshot after fold: %+v", snap)
	}
	sp := snap.Spans[0]
	if sp.Covered != time.Second {
		t.Fatalf("covered = %v, want 1s", sp.Covered)
	}
	ch0, ch1 := sp.Channels[0], sp.Channels[1]
	if ch0.TxBytesPerSec != 100_000 || ch0.TxPacketsPerSec != 100 {
		t.Errorf("ch0 tx rates = %v B/s %v pkt/s, want 100000/100", ch0.TxBytesPerSec, ch0.TxPacketsPerSec)
	}
	if got, want := ch0.LossFrac, 0.25; got != want {
		t.Errorf("ch0 loss frac = %v, want %v (25 drops / 100 striped)", got, want)
	}
	if ch1.RxBytesPerSec != 30_000 || ch1.RxPacketsPerSec != 50 {
		t.Errorf("ch1 rx rates = %v B/s %v pkt/s, want 30000/50", ch1.RxBytesPerSec, ch1.RxPacketsPerSec)
	}
	if got, want := ch1.ResyncFrac, 0.5; got != want {
		t.Errorf("ch1 resync frac = %v, want %v (5 resyncs / 10 markers)", got, want)
	}
	if got, want := ch1.LossFrac, 0.1; got != want {
		t.Errorf("ch1 loss frac = %v, want %v (5kB written off / 50kB striped)", got, want)
	}
	if got := sp.Session.TxBytesPerSec; got != 150_000 {
		t.Errorf("session tx = %v, want 150000", got)
	}
}

// TestWindowRebaseClampsNegativeDeltas pins restart/rebase safety: an
// engine republishing lower absolute totals (SyncStriped after a
// restart) must read as a quiet window, never as negative rates, and
// RebaseFairness must neither disturb the windowed rates nor be
// disturbed by folding.
func TestWindowRebaseClampsNegativeDeltas(t *testing.T) {
	c := NewCollector(1)
	c.SetQuantum(0, 1500)
	w := NewWindows(c, WindowConfig{Tick: time.Hour, Spans: []time.Duration{time.Hour}})

	c.SyncStriped(0, 100, 150_000)
	c.SetRound(100)
	w.fold(0)

	// Restart: totals legally move backwards.
	c.SyncStriped(0, 10, 15_000)
	c.SetRound(10)
	c.RebaseFairness(0, 10)
	discBefore, boundBefore := c.Fairness()

	w.fold(int64(time.Second))
	snap := w.Latest()
	sp := snap.Spans[0]
	if got := sp.Channels[0]; got.TxBytesPerSec != 0 || got.TxPacketsPerSec != 0 {
		t.Errorf("backwards totals produced rates %+v, want zeros", got)
	}
	if lf := sp.Channels[0].LossFrac; lf < 0 || lf > 1 {
		t.Errorf("loss frac %v outside [0,1] across rebase", lf)
	}
	if sp.Session.RoundsPerSec != 0 {
		t.Errorf("backwards round produced %v rounds/s, want 0", sp.Session.RoundsPerSec)
	}
	if disc, bound := c.Fairness(); disc != discBefore || bound != boundBefore {
		t.Errorf("fold disturbed the fairness baseline: (%d,%d) -> (%d,%d)",
			discBefore, boundBefore, disc, bound)
	}

	// Traffic after the rebase is measured from the post-restart row:
	// 30kB of new bytes over the 1s since the last fold.
	c.SyncStriped(0, 30, 45_000)
	w.fold(int64(2 * time.Second))
	sp = w.Latest().Spans[0]
	if got := sp.Channels[0].TxBytesPerSec; got != 30_000 {
		t.Errorf("post-rebase tx = %v B/s, want 30000", got)
	}
}

// TestHealthScoring pins the scoring policy at its edges: clean
// channels, inactive channels, heavy loss, and marker silence.
func TestHealthScoring(t *testing.T) {
	sp := WindowSpan{
		Span:    10 * time.Second,
		Covered: 10 * time.Second,
		Channels: []ChannelRates{
			{Channel: 0, Active: true, MarkersInWindow: 10, MarkerAge: 1000},
			{Channel: 1, Active: true, MarkersInWindow: 10, MarkerAge: 1000, LossFrac: 0.4},
			{Channel: 2, Active: false},
			{Channel: 3, Active: true, MarkersInWindow: 0, MarkerAge: int64(5 * time.Second)},
		},
	}
	scores := healthForSpan(&sp)
	if s := scores[0]; s.Score != 100 || len(s.Reasons) != 0 {
		t.Errorf("clean channel scored %+v, want 100 with no reasons", s)
	}
	if s := scores[1]; s.Score > 60 || !hasReason(s, HealthLoss) {
		t.Errorf("40%%-loss channel scored %+v, want heavy loss deduction", s)
	}
	if s := scores[2]; s.Score != 0 || !hasReason(s, HealthInactive) {
		t.Errorf("inactive channel scored %+v, want 0/inactive", s)
	}
	if s := scores[3]; s.Score > healthSilenceCap || !hasReason(s, HealthSilence) {
		t.Errorf("marker-silent channel scored %+v, want cap at %d with silence", s, healthSilenceCap)
	}
	if !scores[1].Degraded(60) || scores[0].Degraded(60) {
		t.Errorf("Degraded(60) misclassified: %+v vs %+v", scores[1], scores[0])
	}
}

func hasReason(h HealthScore, code string) bool {
	for _, r := range h.Reasons {
		if r == code {
			return true
		}
	}
	return false
}

// TestPublishExpvarDedupesRepeatedNames is the regression for the
// expvar collision: two distinct collectors sharing one name must both
// stay visible at /debug/vars (as a JSON array) instead of the second
// silently vanishing, and republishing must not panic or duplicate.
func TestPublishExpvarDedupesRepeatedNames(t *testing.T) {
	c1 := NewNamedCollector("expvar-dup-regress", 2)
	c2 := NewNamedCollector("expvar-dup-regress", 3)
	c1.PublishExpvar()
	c1.PublishExpvar() // idempotent republish of the same collector
	c2.PublishExpvar()
	c2.PublishExpvar()

	v := expvar.Get("stripe.expvar-dup-regress")
	if v == nil {
		t.Fatal("nothing published under stripe.expvar-dup-regress")
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snaps); err != nil {
		t.Fatalf("expected a JSON array of snapshots, got %q: %v",
			truncate(v.String(), 120), err)
	}
	if len(snaps) != 2 {
		t.Fatalf("published %d snapshots, want both collectors", len(snaps))
	}
	sizes := map[int]bool{len(snaps[0].Channels): true, len(snaps[1].Channels): true}
	if !sizes[2] || !sizes[3] {
		t.Fatalf("expected the 2- and 3-channel collectors, got sizes %v", sizes)
	}

	// A single collector under its own name still renders as an object.
	c3 := NewNamedCollector("expvar-solo-regress", 1)
	c3.PublishExpvar()
	var single Snapshot
	if err := json.Unmarshal([]byte(expvar.Get("stripe.expvar-solo-regress").String()), &single); err != nil {
		t.Fatalf("single-collector publication is not an object: %v", err)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// TestWindowFoldOnRunChecks verifies the engine-flush integration: an
// attached rollup folds (and publishes) through Collector.RunChecks
// once its tick deadline passes, without any explicit Fold call.
func TestWindowFoldOnRunChecks(t *testing.T) {
	c := NewCollector(1)
	w := NewWindows(c, WindowConfig{Tick: time.Millisecond, Spans: []time.Duration{time.Second}})
	if c.Windows() != w {
		t.Fatal("NewWindows did not attach to the collector")
	}
	c.SyncStriped(0, 10, 10_000)
	deadline := time.Now().Add(2 * time.Second)
	for w.Latest() == nil {
		c.RunChecks()
		if time.Now().After(deadline) {
			t.Fatal("RunChecks never folded the attached rollup")
		}
		time.Sleep(time.Millisecond)
	}
	if snap := c.Snapshot(); snap.Windows == nil {
		t.Fatal("Snapshot does not carry the rollup publication")
	}
	if strings.Contains(w.Latest().ScoreSpan.String(), "-") {
		t.Fatalf("nonsense score span %v", w.Latest().ScoreSpan)
	}
}
