package obs

import (
	"strings"
	"testing"
)

// TestCheckerFairnessRedThenGreen seeds a Theorem 3.2 fairness-band
// exit and checks the checker catches it, stays quiet while it
// persists (edge triggering), and re-fires after a recovery.
func TestCheckerFairnessRedThenGreen(t *testing.T) {
	c := NewCollector(2)
	k := NewChecker()
	c.SetChecker(k)
	c.SetQuantum(0, 100)
	c.SetQuantum(1, 100)
	c.SetRound(1)

	// Green: balanced striping, inside the band.
	c.OnStriped(0, 100)
	c.OnStriped(1, 100)
	c.RunChecks()
	if n := k.ViolationCount(); n != 0 {
		t.Fatalf("healthy run violated %d times", n)
	}

	// Red: pile bytes onto channel 0 without advancing the round. The
	// discrepancy |K*Q - bytes_0| = 4800 busts the Max + 2*Quantum band.
	for i := 0; i < 48; i++ {
		c.OnStriped(0, 100)
	}
	c.RunChecks()
	if n := k.ViolationCount(); n != 1 {
		t.Fatalf("seeded fairness break: %d violations, want 1", n)
	}
	v := k.Violations()[0]
	if v.Check != "fairness" || v.Value <= 0 || !strings.Contains(v.Detail, "Theorem 3.2") {
		t.Fatalf("violation: %+v", v)
	}
	if !strings.Contains(v.String(), "invariant fairness") {
		t.Fatalf("String: %q", v.String())
	}

	// Still broken: edge-triggered, no second finding.
	c.RunChecks()
	if n := k.ViolationCount(); n != 1 {
		t.Fatalf("persistent break re-fired: %d", n)
	}

	// Recover: catch the other channel up and advance the round so the
	// discrepancy collapses to zero.
	for i := 0; i < 48; i++ {
		c.OnStriped(1, 100)
	}
	c.SetRound(50)
	c.RunChecks()
	if n := k.ViolationCount(); n != 1 {
		t.Fatalf("recovered state counted as violation: %d", n)
	}

	// Break again: the edge re-arms after recovery.
	for i := 0; i < 50; i++ {
		c.OnStriped(0, 100)
	}
	c.RunChecks()
	if n := k.ViolationCount(); n != 2 {
		t.Fatalf("second break: %d violations, want 2", n)
	}
}

// TestCheckerRoundMonotone checks the round-regression invariant.
func TestCheckerRoundMonotone(t *testing.T) {
	c := NewCollector(1)
	k := NewChecker()
	c.SetChecker(k)

	c.SetRound(10)
	c.RunChecks()
	c.SetRound(11)
	c.RunChecks()
	if n := k.ViolationCount(); n != 0 {
		t.Fatalf("monotone rounds violated %d times", n)
	}
	c.SetRound(5)
	c.RunChecks()
	vs := k.Violations()
	if len(vs) != 1 || vs[0].Check != "round" || vs[0].Value != 6 {
		t.Fatalf("regression finding: %+v", vs)
	}
}

// TestCheckerCreditConservation seeds a broken credit ledger through a
// CreditSource and checks both failure directions are caught.
func TestCheckerCreditConservation(t *testing.T) {
	c := NewCollector(2)
	k := NewChecker()
	c.SetChecker(k)

	ledger := []CreditAccount{
		{Channel: 0, Granted: 1000, Consumed: 400, Window: 1000},
		{Channel: 1, Granted: 1000, Consumed: 900, Window: 1000},
	}
	c.SetCreditSource(func() []CreditAccount { return ledger })

	c.RunChecks()
	if n := k.ViolationCount(); n != 0 {
		t.Fatalf("healthy ledger violated %d times", n)
	}

	// Channel 0 mints credit (debt > window), channel 1 destroys it
	// (consumed more than granted).
	ledger[0].Granted = 3000
	ledger[1].Consumed = 1200
	c.RunChecks()
	vs := k.Violations()
	if len(vs) != 2 {
		t.Fatalf("broken ledger: %+v", vs)
	}
	for _, v := range vs {
		if v.Check != "credit" {
			t.Fatalf("finding: %+v", v)
		}
	}
	if vs[0].Channel == vs[1].Channel {
		t.Fatalf("per-channel edge triggers collided: %+v", vs)
	}
}

// TestCheckerCallbackAndEvents checks violations surface as
// KindInvariantViolation events, through OnViolation, and in the
// collector snapshot.
func TestCheckerCallbackAndEvents(t *testing.T) {
	c := NewCollector(1)
	ring := NewRingSink(8)
	c.AddSink(ring)
	k := NewChecker()
	var got []Violation
	k.OnViolation = func(v Violation) { got = append(got, v) }
	c.SetChecker(k)

	c.SetRound(10)
	c.RunChecks()
	c.SetRound(3)
	c.RunChecks()

	if len(got) != 1 || got[0].Check != "round" {
		t.Fatalf("callback saw %+v", got)
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != KindInvariantViolation {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].At == 0 {
		t.Fatalf("event missing timebase stamp: %+v", evs[0])
	}
	s := c.Snapshot()
	if s.InvariantViolations != 1 || len(s.Violations) != 1 {
		t.Fatalf("snapshot: violations=%d %+v", s.InvariantViolations, s.Violations)
	}
	if s.Events["invariant_violation"] != 1 {
		t.Fatalf("event counter: %v", s.Events)
	}
}

// TestCheckerNilSafety checks nil checkers and empty attachments.
func TestCheckerNilSafety(t *testing.T) {
	var k *Checker
	if k.ViolationCount() != 0 || k.Violations() != nil {
		t.Fatal("nil checker not inert")
	}
	var c *Collector
	c.SetChecker(nil)
	c.SetCreditSource(nil)
	c.RunChecks()

	c2 := NewCollector(1)
	c2.RunChecks() // no checker attached
	c2.SetChecker(NewChecker())
	c2.SetChecker(nil) // detach
	c2.RunChecks()
	if c2.Checker() != nil {
		t.Fatal("detach failed")
	}
}

// TestCheckerWithFlightRecorder wires the checker and the flight
// recorder to one collector and trips an invariant: the recorder's dump
// path re-enters the collector for a snapshot, which reads the checker
// back — this must complete without deadlock and the dump must carry
// the violation.
func TestCheckerWithFlightRecorder(t *testing.T) {
	c := NewCollector(1)
	fr := NewFlightRecorder(c, FlightRecorderConfig{})
	c.AddSink(fr)
	k := NewChecker()
	c.SetChecker(k)

	c.SetRound(10)
	c.RunChecks()
	c.SetRound(2)
	c.RunChecks() // trips "round"; recorder dumps synchronously

	d, ok := fr.LastDump()
	if !ok {
		t.Fatal("no dump")
	}
	if d.Reason != "invariant violation" || d.Trigger.Kind != KindInvariantViolation {
		t.Fatalf("dump: reason=%q trigger=%+v", d.Reason, d.Trigger)
	}
	if d.Snapshot.InvariantViolations != 1 || len(d.Snapshot.Violations) != 1 {
		t.Fatalf("dump snapshot: %+v", d.Snapshot.Violations)
	}
}
