package obs

import "sync/atomic"

// bucketBounds are the fixed upper bounds (inclusive) of the
// displacement histogram, in packets. Power-of-two spacing matches the
// quantity's dynamic range: displacement 0 is exact FIFO, small values
// are quasi-FIFO jitter inside a loss window, large values indicate a
// resynchronization that took many packets. The final implicit bucket
// is +Inf.
var bucketBounds = [...]int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

const nBuckets = len(bucketBounds) + 1 // + the +Inf bucket

// Histogram is a fixed-bucket, lock-free histogram. The zero value is
// ready to use.
type Histogram struct {
	counts [nBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(bucketBounds) && v > bucketBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets are
// non-cumulative per-bucket counts aligned with Bounds; the last entry
// counts observations above the final bound.
type HistogramSnapshot struct {
	Bounds  []int64 // upper bounds, inclusive; last bucket is +Inf
	Buckets []int64
	Sum     int64
	Count   int64
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  bucketBounds[:],
		Buckets: make([]int64, nBuckets),
		Sum:     h.sum.Load(),
		Count:   h.count.Load(),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}
