package obs

import "sync/atomic"

// displacementBounds are the fixed upper bounds (inclusive) of the
// displacement histogram, in packets. Power-of-two spacing matches the
// quantity's dynamic range: displacement 0 is exact FIFO, small values
// are quasi-FIFO jitter inside a loss window, large values indicate a
// resynchronization that took many packets. The final implicit bucket
// is +Inf.
var displacementBounds = [...]int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// latencyBounds are the upper bounds (inclusive) of the lifecycle
// latency histograms, in nanoseconds: powers of four from 256 ns to
// about 1 s. In-process striping latencies sit in the sub-microsecond
// buckets; resequencing stalls behind a lossy channel climb toward the
// marker period; anything in the top buckets is an outage.
var latencyBounds = [...]int64{
	1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18,
	1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30,
}

const nBuckets = len(displacementBounds) + 1 // + the +Inf bucket

// Histogram is a fixed-bucket, lock-free histogram. The zero value is
// ready to use and counts packet displacements; setBounds swaps in a
// different bucket ladder (it must be called before the first Observe).
type Histogram struct {
	bounds []int64 // nil selects displacementBounds
	counts [nBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

func (h *Histogram) boundsOrDefault() []int64 {
	if h.bounds != nil {
		return h.bounds
	}
	return displacementBounds[:]
}

// setBounds replaces the bucket ladder (at most nBuckets-1 bounds,
// ascending). Call before the first Observe.
func (h *Histogram) setBounds(b []int64) { h.bounds = b }

// Observe records one value.
//
//stripe:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	bounds := h.boundsOrDefault()
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets are
// non-cumulative per-bucket counts aligned with Bounds; the last entry
// counts observations above the final bound.
type HistogramSnapshot struct {
	Bounds  []int64 // upper bounds, inclusive; last bucket is +Inf
	Buckets []int64
	Sum     int64
	Count   int64
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	bounds := h.boundsOrDefault()
	s := HistogramSnapshot{
		Bounds:  bounds,
		Buckets: make([]int64, len(bounds)+1),
		Sum:     h.sum.Load(),
		Count:   h.count.Load(),
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the
// bucket counts by linear interpolation inside the covering bucket, the
// way Prometheus histogram_quantile does. Observations in the +Inf
// bucket clamp to the highest finite bound. Returns 0 for an empty
// histogram. Quantile is monotone in q by construction.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, cnt := range s.Buckets {
		prev := cum
		cum += cnt
		if float64(cum) < rank || cnt == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the last finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(cnt)
		return lo + int64(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}
