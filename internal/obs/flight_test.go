package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestFlightRecorderCreditTrigger checks a credit stall dumps the
// retained history plus a metrics snapshot, as one JSON line.
func TestFlightRecorderCreditTrigger(t *testing.T) {
	c := NewCollector(2)
	var sb strings.Builder
	fr := NewFlightRecorder(c, FlightRecorderConfig{W: &sb})
	c.AddSink(fr)

	// Routine events first: they are history, not triggers.
	c.OnResync(0, 3, -100)
	c.OnSkip(1, 4)
	if fr.Dumps() != 0 {
		t.Fatal("routine events tripped a dump")
	}

	c.OnStriped(0, 700)
	c.OnCreditExhausted(0, 700)
	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d", fr.Dumps())
	}
	d, ok := fr.LastDump()
	if !ok || d.Reason != "credit stall" || d.Trigger.Kind != KindCreditExhausted {
		t.Fatalf("dump: %+v", d.Trigger)
	}
	if len(d.Events) != 3 || d.Events[0].Kind != KindResync || d.Events[2].Kind != KindCreditExhausted {
		t.Fatalf("dump history: %+v", d.Events)
	}
	if d.Snapshot.Channels[0].StripedBytes != 700 {
		t.Fatalf("dump snapshot: %+v", d.Snapshot.Channels)
	}

	// The writer got exactly one parseable JSON line.
	line := strings.TrimSpace(sb.String())
	if strings.Contains(line, "\n") {
		t.Fatalf("more than one line: %q", line)
	}
	var back FlightDump
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("unmarshal dump: %v", err)
	}
	if back.Reason != "credit stall" || len(back.Events) != 3 {
		t.Fatalf("round-tripped dump: %+v", back)
	}
}

// TestFlightRecorderCooldown checks a persistent anomaly produces one
// post-mortem per cooldown period, not one per event.
func TestFlightRecorderCooldown(t *testing.T) {
	c := NewCollector(1)
	fr := NewFlightRecorder(c, FlightRecorderConfig{Cooldown: time.Hour})
	c.AddSink(fr)
	for i := 0; i < 10; i++ {
		c.OnCreditExhausted(0, 100)
	}
	if got := fr.Dumps(); got != 1 {
		t.Fatalf("dumps = %d, want 1 (cooldown)", got)
	}

	// With a tiny cooldown every trigger dumps.
	c2 := NewCollector(1)
	fr2 := NewFlightRecorder(c2, FlightRecorderConfig{Cooldown: time.Nanosecond})
	c2.AddSink(fr2)
	c2.OnCreditExhausted(0, 100)
	time.Sleep(time.Millisecond)
	c2.OnCreditExhausted(0, 100)
	if got := fr2.Dumps(); got != 2 {
		t.Fatalf("dumps = %d, want 2", got)
	}
}

// TestFlightRecorderResyncStorm checks isolated resyncs pass but a
// burst above the threshold trips the storm trigger.
func TestFlightRecorderResyncStorm(t *testing.T) {
	c := NewCollector(1)
	fr := NewFlightRecorder(c, FlightRecorderConfig{StormThreshold: 3, StormWindow: time.Minute})
	c.AddSink(fr)
	for i := 0; i < 3; i++ {
		c.OnResync(0, uint64(i), 0)
	}
	if fr.Dumps() != 0 {
		t.Fatal("threshold resyncs tripped early")
	}
	c.OnResync(0, 4, 0)
	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d after storm", fr.Dumps())
	}
	d, _ := fr.LastDump()
	if d.Reason != "resync storm" {
		t.Fatalf("reason = %q", d.Reason)
	}

	// Negative threshold disables the trigger entirely.
	c2 := NewCollector(1)
	fr2 := NewFlightRecorder(c2, FlightRecorderConfig{StormThreshold: -1})
	c2.AddSink(fr2)
	for i := 0; i < 50; i++ {
		c2.OnResync(0, uint64(i), 0)
	}
	if fr2.Dumps() != 0 {
		t.Fatal("disabled storm trigger fired")
	}
}

// TestFlightRecorderRing checks the event ring is bounded and ordered.
func TestFlightRecorderRing(t *testing.T) {
	c := NewCollector(1)
	fr := NewFlightRecorder(c, FlightRecorderConfig{Size: 4, StormThreshold: -1})
	c.AddSink(fr)
	for i := 0; i < 10; i++ {
		c.OnSkip(0, uint64(i))
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring out of order: %+v", evs)
		}
	}
	if evs[3].Round != 9 {
		t.Fatalf("newest event: %+v", evs[3])
	}
}

// TestFlightRecorderOnDump checks the synchronous callback and the
// OnDump/LastDump agreement.
func TestFlightRecorderOnDump(t *testing.T) {
	c := NewCollector(1)
	var got []FlightDump
	fr := NewFlightRecorder(c, FlightRecorderConfig{OnDump: func(d FlightDump) { got = append(got, d) }})
	c.AddSink(fr)
	c.OnReseqOverflow(0, 128, true)
	if len(got) != 1 || got[0].Reason != "resequencer overflow" {
		t.Fatalf("callback: %+v", got)
	}
	last, ok := fr.LastDump()
	if !ok || last.At != got[0].At {
		t.Fatalf("LastDump disagrees: %+v vs %+v", last, got[0])
	}
}
