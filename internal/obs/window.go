// Windowed telemetry: the rollup engine that turns the collector's
// cumulative counters into "what is happening now, per channel".
//
// A Windows attached to a Collector samples the per-channel counter
// slab into a fixed ring at a configured tick and, from the ring,
// derives per-channel rates over one or more sliding spans (default
// 1s / 10s / 60s): goodput, loss fraction, marker-resync rate,
// credit-stall fraction, a send-latency EWMA (when a Tracer is
// attached), and the inter-channel one-way-delay skew implied by the
// spread of marker arrival times. The newest rollup is published as an
// immutable WindowsSnapshot behind an atomic pointer, so readers (the
// health monitor, the /debug/stripe/health endpoint, stripetop, the
// Prometheus gauges) never contend with the fold.
//
// Folding is driven from Collector.RunChecks — the engine flush path
// that already runs at marker cadence — through a deadline-gated fast
// path: between ticks the cost is one atomic load and a compare, and
// the fold itself touches no per-packet state. Nothing here runs per
// packet; that is the discipline behind the collector+tracer+windows
// row of BenchmarkInstrumentationOverhead staying within 7% of
// collector-only.
package obs

import (
	"sync/atomic"
	"time"
)

// WindowConfig sizes a Windows rollup. The zero value selects the
// defaults: a 1s tick with 1s/10s/60s spans, scored on the 10s span.
type WindowConfig struct {
	// Tick is the sampling period: how often a fold copies the counter
	// slab into the ring (gated on the engine flush path, so the
	// effective resolution is also bounded by marker cadence). Default
	// 1s; values below 1ms are raised to 1ms.
	Tick time.Duration
	// Spans are the sliding windows rates are derived over, ascending.
	// Default {1s, 10s, 60s}. Spans shorter than Tick are raised to it.
	Spans []time.Duration
	// ScoreSpan selects the span health scores are computed on: the
	// first configured span >= ScoreSpan (the last one when none is).
	// Zero selects the second-shortest span — long enough to smooth
	// marker-cadence noise, short enough to flag a degrading channel
	// within seconds.
	ScoreSpan time.Duration
}

// chanSample is one channel's cumulative counter values at a tick.
type chanSample struct {
	stripedPkts     int64
	stripedBytes    int64
	deliveredPkts   int64
	deliveredBytes  int64
	markersConsumed int64
	resyncs         int64
	lost            int64
	blockedSends    int64
	lostReconciled  int64
	latSum          int64 // tracer per-channel e2e latency sum (ns)
	latCnt          int64
	lastMarkerAt    int64 // process-timebase ns of the newest consumed marker
	inactive        bool
}

// windowRow is one tick's sample of the whole collector.
type windowRow struct {
	at          int64 // process-timebase ns
	round       uint64
	creditStall int64
	ch          []chanSample
}

// Windows is the rollup engine. Create with NewWindows (which attaches
// it to the collector); read it with Latest, or through
// Snapshot.Windows on the collector. All methods are safe for
// concurrent use and safe on a nil receiver.
type Windows struct {
	c        *Collector
	tick     int64   // ns
	spans    []int64 // ns, ascending
	scoreIdx int

	nextFold atomic.Int64 // deadline (process-timebase ns) for the next fold
	folding  atomic.Bool  // serializes concurrent folds without blocking

	// Ring of counter samples; guarded by the folding flag. Rows and
	// their per-channel slices are preallocated so a fold never
	// allocates.
	ring []windowRow
	head int // next write position
	n    int // rows filled

	ewma []int64 // per-channel send-latency EWMA, ns (fold-cadence)

	latest atomic.Pointer[WindowsSnapshot]
}

// windowRingCap bounds ring memory for tiny ticks against long spans.
const windowRingCap = 8192

// NewWindows builds a rollup engine over c's counters and attaches it
// (Collector.SetWindows), so engine flushes start folding immediately.
// Returns nil when c is nil.
func NewWindows(c *Collector, cfg WindowConfig) *Windows {
	if c == nil {
		return nil
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = time.Second
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	spans := make([]int64, 0, len(cfg.Spans))
	for _, s := range cfg.Spans {
		if s <= 0 {
			continue
		}
		if s < tick {
			s = tick
		}
		spans = append(spans, int64(s))
	}
	if len(spans) == 0 {
		spans = []int64{int64(time.Second), int64(10 * time.Second), int64(60 * time.Second)}
		for i := range spans {
			if spans[i] < int64(tick) {
				spans[i] = int64(tick)
			}
		}
	}
	// Ascending, deduplicated.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j] < spans[j-1]; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	uniq := spans[:1]
	for _, s := range spans[1:] {
		if s != uniq[len(uniq)-1] {
			uniq = append(uniq, s)
		}
	}
	spans = uniq

	scoreIdx := 1
	if scoreIdx >= len(spans) {
		scoreIdx = len(spans) - 1
	}
	if cfg.ScoreSpan > 0 {
		scoreIdx = len(spans) - 1
		for i, s := range spans {
			if s >= int64(cfg.ScoreSpan) {
				scoreIdx = i
				break
			}
		}
	}

	depth := int(spans[len(spans)-1]/int64(tick)) + 1
	if depth < 2 {
		depth = 2
	}
	if depth > windowRingCap {
		depth = windowRingCap
	}
	w := &Windows{
		c:        c,
		tick:     int64(tick),
		spans:    spans,
		scoreIdx: scoreIdx,
		ring:     make([]windowRow, depth),
		ewma:     make([]int64, len(c.ch)),
	}
	for i := range w.ring {
		w.ring[i].ch = make([]chanSample, len(c.ch))
	}
	c.SetWindows(w)
	return w
}

// Tick returns the configured sampling period.
func (w *Windows) Tick() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.tick)
}

// Latest returns the most recent rollup, or nil before the first fold.
// The snapshot is immutable; callers must not modify it.
func (w *Windows) Latest() *WindowsSnapshot {
	if w == nil {
		return nil
	}
	return w.latest.Load()
}

// Fold samples the counters and republishes the rollup immediately,
// regardless of the tick deadline — for tests, harnesses, and pollers
// that need a fresh rollup now. Engines never call it; they go through
// the deadline-gated path on RunChecks.
func (w *Windows) Fold() {
	if w == nil {
		return
	}
	now := sinceEpoch()
	w.nextFold.Store(now + w.tick)
	w.fold(now)
}

// maybeFold is the engine-flush fast path: one atomic load and a
// compare between ticks. Called from Collector.RunChecks.
//
//stripe:hotpath
func (w *Windows) maybeFold() {
	now := sinceEpoch()
	dl := w.nextFold.Load()
	if now < dl {
		return
	}
	// One winner per deadline: a racing flush loses the CAS and skips.
	if !w.nextFold.CompareAndSwap(dl, now+w.tick) {
		return
	}
	w.fold(now)
}

// fold copies the counter slab into the next ring row, advances the
// latency EWMAs, and republishes the rollup. The ring rows are
// preallocated, so the sample itself never allocates; snapshot
// construction is delegated to publish.
func (w *Windows) fold(now int64) {
	if !w.folding.CompareAndSwap(false, true) {
		return // a concurrent fold is in flight; skip rather than block
	}
	row := &w.ring[w.head]
	w.head = (w.head + 1) % len(w.ring)
	if w.n < len(w.ring) {
		w.n++
	}
	row.at = now
	row.round = w.c.round.Load()
	row.creditStall = w.c.creditStall.Load()
	t := w.c.tracer.Load()
	for i := range row.ch {
		cc := &w.c.ch[i]
		s := &row.ch[i]
		s.stripedPkts = cc.stripedPkts.Load()
		s.stripedBytes = cc.stripedBytes.Load()
		s.deliveredPkts = cc.deliveredPkts.Load()
		s.deliveredBytes = cc.deliveredBytes.Load()
		s.markersConsumed = cc.markersConsumed.Load()
		s.resyncs = cc.resyncs.Load()
		s.lost = cc.lost.Load()
		s.blockedSends = cc.blockedSends.Load()
		s.lostReconciled = cc.lostReconciled.Load()
		s.lastMarkerAt = cc.lastMarkerAt.Load()
		s.inactive = cc.inactive.Load()
		s.latSum, s.latCnt = 0, 0
		if t != nil && i < maxLatChannels {
			s.latSum = t.latSumOn[i].Load()
			s.latCnt = t.latCntOn[i].Load()
		}
	}
	// Advance the per-channel send-latency EWMA from this tick's delta.
	// Alpha 3/8: a degraded channel dominates the estimate within a few
	// ticks without one outlier sample owning it.
	if w.n >= 2 {
		prev := w.ring[(w.head-2+len(w.ring))%len(w.ring)].ch
		for i := range row.ch {
			dc := row.ch[i].latCnt - prev[i].latCnt
			ds := row.ch[i].latSum - prev[i].latSum
			if dc > 0 && ds >= 0 {
				mean := ds / dc
				if w.ewma[i] == 0 {
					w.ewma[i] = mean
				} else {
					w.ewma[i] = (3*mean + 5*w.ewma[i]) / 8
				}
			}
		}
	}
	w.publish(now)
	w.folding.Store(false)
}

// publish derives the per-span rates and health scores from the ring
// and swaps in a fresh immutable snapshot.
//
//stripe:allowescape rollup snapshot construction, amortized over the window tick (default 1s), never per packet
func (w *Windows) publish(now int64) {
	newest := &w.ring[(w.head-1+len(w.ring))%len(w.ring)]
	snap := &WindowsSnapshot{
		AtNs:      now,
		Tick:      time.Duration(w.tick),
		ScoreSpan: time.Duration(w.spans[w.scoreIdx]),
		Spans:     make([]WindowSpan, len(w.spans)),
	}
	for si, span := range w.spans {
		base := w.oldestWithin(newest.at - span)
		snap.Spans[si] = w.spanRates(newest, base, time.Duration(span))
	}
	snap.Health = healthForSpan(&snap.Spans[w.scoreIdx])
	w.latest.Store(snap)
}

// oldestWithin returns the oldest ring row sampled at or after cut
// (the newest row when the ring holds nothing older). Caller holds the
// folding flag.
func (w *Windows) oldestWithin(cut int64) *windowRow {
	var best *windowRow
	for k := 0; k < w.n; k++ {
		row := &w.ring[(w.head-1-k+2*len(w.ring))%len(w.ring)]
		if row.at < cut {
			break // walking newest -> oldest; everything further is older
		}
		best = row
	}
	if best == nil {
		best = &w.ring[(w.head-1+len(w.ring))%len(w.ring)]
	}
	return best
}

// delta is a counter difference clamped at zero: an engine restart or
// rebase that republishes lower absolute totals must read as "no
// traffic this window", never as a negative rate.
func delta(newer, older int64) int64 {
	if newer <= older {
		return 0
	}
	return newer - older
}

// spanRates derives one span's ChannelRates and SessionRates from the
// newest and baseline rows.
func (w *Windows) spanRates(newest, base *windowRow, span time.Duration) WindowSpan {
	covered := newest.at - base.at
	if covered < 0 {
		covered = 0
	}
	sec := float64(covered) / 1e9
	sp := WindowSpan{
		Span:     span,
		Covered:  time.Duration(covered),
		Channels: make([]ChannelRates, len(newest.ch)),
	}
	perSec := func(d int64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(d) / sec
	}
	frac := func(num, den int64) float64 {
		if den <= 0 {
			return 0
		}
		f := float64(num) / float64(den)
		if f > 1 {
			return 1
		}
		return f
	}
	// The newest marker arrival across live channels anchors the skew:
	// markers are cut for every channel in one batch, so a channel whose
	// last marker is older than the freshest one is running behind by
	// (at least) that spread.
	var newestMark int64
	for i := range newest.ch {
		if c := &newest.ch[i]; !c.inactive && c.lastMarkerAt > newestMark {
			newestMark = c.lastMarkerAt
		}
	}
	var txB, rxB int64
	for i := range newest.ch {
		nc, bc := &newest.ch[i], &base.ch[i]
		dStripedP := delta(nc.stripedPkts, bc.stripedPkts)
		dStripedB := delta(nc.stripedBytes, bc.stripedBytes)
		dDelivP := delta(nc.deliveredPkts, bc.deliveredPkts)
		dDelivB := delta(nc.deliveredBytes, bc.deliveredBytes)
		dMarkers := delta(nc.markersConsumed, bc.markersConsumed)
		dResync := delta(nc.resyncs, bc.resyncs)
		dLost := delta(nc.lost, bc.lost)
		dBlocked := delta(nc.blockedSends, bc.blockedSends)
		dLostRec := delta(nc.lostReconciled, bc.lostReconciled)
		txB += dStripedB
		rxB += dDelivB

		// Loss evidence, best of two estimators: packets the channel
		// itself reported dropping (instrumented channels), and bytes
		// the credit machinery wrote off against marker positions
		// (uninstrumented but flow-controlled channels).
		loss := frac(dLost, dStripedP)
		if rec := frac(dLostRec, dStripedB); rec > loss {
			loss = rec
		}

		r := ChannelRates{
			Channel:         i,
			Active:          !nc.inactive,
			TxPacketsPerSec: perSec(dStripedP),
			TxBytesPerSec:   perSec(dStripedB),
			RxPacketsPerSec: perSec(dDelivP),
			RxBytesPerSec:   perSec(dDelivB),
			MarkersPerSec:   perSec(dMarkers),
			MarkersInWindow: dMarkers,
			LossFrac:        loss,
			ResyncFrac:      frac(dResync, maxI64(dMarkers, 1)),
			ResyncsPerSec:   perSec(dResync),
			BlockedFrac:     frac(dBlocked, dBlocked+dStripedP),
			LatencyEWMA:     w.ewma[i],
		}
		if nc.lastMarkerAt > 0 {
			r.MarkerAge = newest.at - nc.lastMarkerAt
			if r.Active && newestMark > nc.lastMarkerAt {
				r.DelaySkew = newestMark - nc.lastMarkerAt
			}
		} else {
			r.MarkerAge = -1
		}
		sp.Channels[i] = r
	}
	sp.Session = SessionRates{
		TxBytesPerSec:   perSec(txB),
		RxBytesPerSec:   perSec(rxB),
		RoundsPerSec:    perSec(delta(int64(newest.round), int64(base.round))),
		CreditStallFrac: frac(delta(newest.creditStall, base.creditStall), maxI64(covered, 1)),
	}
	return sp
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- Snapshot types ------------------------------------------------------

// ChannelRates is one channel's windowed view: rates and fractions
// derived over one sliding span.
type ChannelRates struct {
	Channel int
	// Active mirrors the membership gauge at the window's newest tick.
	Active bool

	TxPacketsPerSec float64
	TxBytesPerSec   float64 // goodput striped onto the channel
	RxPacketsPerSec float64
	RxBytesPerSec   float64 // goodput delivered in order off the channel
	MarkersPerSec   float64
	MarkersInWindow int64

	// LossFrac estimates the fraction of the channel's transmit traffic
	// lost in the window, from the stronger of two evidence sources:
	// channel-reported drops and credit-reconciliation write-offs.
	LossFrac float64
	// ResyncFrac is the fraction of consumed markers that had to change
	// receiver state — a marker-cadence-normalized loss/reorder signal.
	ResyncFrac    float64
	ResyncsPerSec float64
	// BlockedFrac is the fraction of send attempts vetoed by flow
	// control (credit starvation on this channel).
	BlockedFrac float64

	// LatencyEWMA is the smoothed sampled end-to-end latency of packets
	// delivered off this channel, in nanoseconds; 0 without a Tracer.
	LatencyEWMA int64
	// DelaySkew is how far this channel's newest marker arrival lags
	// the freshest channel's, in nanoseconds — the marker-spread
	// estimate of inter-channel one-way-delay skew.
	DelaySkew int64
	// MarkerAge is nanoseconds since this channel's newest consumed
	// marker; -1 when the channel has never delivered one.
	MarkerAge int64
}

// SessionRates aggregates one span across channels.
type SessionRates struct {
	TxBytesPerSec float64
	RxBytesPerSec float64
	RoundsPerSec  float64
	// CreditStallFrac is the fraction of the window senders spent
	// blocked on exhausted credit.
	CreditStallFrac float64
}

// WindowSpan is one sliding window's derived view.
type WindowSpan struct {
	// Span is the nominal window; Covered is the time the ring actually
	// held (shorter during warmup and in fast-folding harnesses).
	Span     time.Duration
	Covered  time.Duration
	Channels []ChannelRates
	Session  SessionRates
}

// WindowsSnapshot is one immutable rollup publication: every configured
// span's rates plus the per-channel health scores computed on the
// scoring span.
type WindowsSnapshot struct {
	// AtNs is the publication instant on the process timebase; two
	// snapshots with equal AtNs are the same fold.
	AtNs      int64
	Tick      time.Duration
	ScoreSpan time.Duration
	Spans     []WindowSpan
	Health    []HealthScore
}

// ScoreWindow returns the span health scores were computed on, or nil
// on a nil snapshot.
func (s *WindowsSnapshot) ScoreWindow() *WindowSpan {
	if s == nil {
		return nil
	}
	for i := range s.Spans {
		if s.Spans[i].Span == s.ScoreSpan {
			return &s.Spans[i]
		}
	}
	if len(s.Spans) == 0 {
		return nil
	}
	return &s.Spans[len(s.Spans)-1]
}

// Score returns the snapshot's health score for channel c, or the zero
// HealthScore when out of range. Safe on nil.
func (s *WindowsSnapshot) Score(c int) HealthScore {
	if s == nil || c < 0 || c >= len(s.Health) {
		return HealthScore{Channel: c}
	}
	return s.Health[c]
}

// --- Collector integration ----------------------------------------------

// SetWindows attaches a rollup engine; engine flushes fold it at its
// tick. A nil w detaches. NewWindows attaches automatically.
func (c *Collector) SetWindows(w *Windows) {
	if c == nil {
		return
	}
	if w == nil {
		c.windows.Store(nil)
		return
	}
	c.windows.Store(w)
}

// Windows returns the attached rollup engine, or nil.
func (c *Collector) Windows() *Windows {
	if c == nil {
		return nil
	}
	return c.windows.Load()
}
