package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// WritePrometheus renders the collectors in Prometheus text exposition
// format (version 0.0.4). Metadata (# HELP / # TYPE) is written once
// per metric even when several collectors share the endpoint; samples
// from a named collector carry a session="name" label.
func WritePrometheus(w io.Writer, cols ...*Collector) {
	snaps := make([]Snapshot, 0, len(cols))
	for _, c := range cols {
		if c != nil {
			snaps = append(snaps, c.Snapshot())
		}
	}
	// When several unnamed collectors share an endpoint their samples
	// would collide; synthesize an index label.
	if len(snaps) > 1 {
		for i := range snaps {
			if snaps[i].Name == "" {
				snaps[i].Name = "c" + strconv.Itoa(i)
			}
		}
	}

	metric := func(name, typ, help string, emit func(s *Snapshot, base string)) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i := range snaps {
			base := ""
			if snaps[i].Name != "" {
				base = `session="` + snaps[i].Name + `"`
			}
			emit(&snaps[i], base)
		}
	}
	// sample writes one sample line, merging the session label with any
	// metric-specific labels.
	sample := func(name, base, labels string, v int64) {
		switch {
		case base == "" && labels == "":
			fmt.Fprintf(w, "%s %d\n", name, v)
		case base == "":
			fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
		case labels == "":
			fmt.Fprintf(w, "%s{%s} %d\n", name, base, v)
		default:
			fmt.Fprintf(w, "%s{%s,%s} %d\n", name, base, labels, v)
		}
	}
	perChannel := func(name, typ, help string, get func(*ChannelSnapshot) int64) {
		metric(name, typ, help, func(s *Snapshot, base string) {
			for c := range s.Channels {
				sample(name, base, `channel="`+strconv.Itoa(c)+`"`, get(&s.Channels[c]))
			}
		})
	}
	perChannelDir := func(name, typ, help string, tx, rx func(*ChannelSnapshot) int64) {
		metric(name, typ, help, func(s *Snapshot, base string) {
			for c := range s.Channels {
				l := `channel="` + strconv.Itoa(c) + `"`
				sample(name, base, l+`,dir="tx"`, tx(&s.Channels[c]))
				sample(name, base, l+`,dir="rx"`, rx(&s.Channels[c]))
			}
		})
	}
	scalar := func(name, typ, help string, get func(*Snapshot) int64) {
		metric(name, typ, help, func(s *Snapshot, base string) {
			sample(name, base, "", get(s))
		})
	}

	perChannelDir("stripe_channel_packets_total", "counter",
		"Data packets striped onto (tx) or delivered in order from (rx) each channel.",
		func(c *ChannelSnapshot) int64 { return c.StripedPackets },
		func(c *ChannelSnapshot) int64 { return c.DeliveredPackets })
	perChannelDir("stripe_channel_bytes_total", "counter",
		"Data payload bytes striped onto (tx) or delivered in order from (rx) each channel.",
		func(c *ChannelSnapshot) int64 { return c.StripedBytes },
		func(c *ChannelSnapshot) int64 { return c.DeliveredBytes })
	perChannelDir("stripe_markers_total", "counter",
		"Synchronization markers emitted on (tx) or consumed from (rx) each channel.",
		func(c *ChannelSnapshot) int64 { return c.MarkersEmitted },
		func(c *ChannelSnapshot) int64 { return c.MarkersConsumed })
	perChannel("stripe_resync_events_total", "counter",
		"Markers that changed receiver state (expected round or deficit adopted).",
		func(c *ChannelSnapshot) int64 { return c.Resyncs })
	perChannel("stripe_skips_total", "counter",
		"Channel visits skipped under the r_c > G rule.",
		func(c *ChannelSnapshot) int64 { return c.Skips })
	perChannel("stripe_blocked_sends_total", "counter",
		"Send attempts vetoed by credit-based flow control.",
		func(c *ChannelSnapshot) int64 { return c.BlockedSends })
	perChannel("stripe_channel_lost_packets_total", "counter",
		"Packets dropped by the physical channel (loss or corruption).",
		func(c *ChannelSnapshot) int64 { return c.Lost })
	perChannel("stripe_channel_queue_depth", "gauge",
		"Transmit queue occupancy per channel, in packets.",
		func(c *ChannelSnapshot) int64 { return c.QueueDepth })
	perChannel("stripe_channel_surplus_bytes", "gauge",
		"Current SRR deficit/surplus counter per channel.",
		func(c *ChannelSnapshot) int64 { return c.Surplus })
	perChannel("stripe_channel_quantum_bytes", "gauge",
		"Configured SRR quantum per channel.",
		func(c *ChannelSnapshot) int64 { return c.Quantum })
	perChannel("stripe_credit_remaining_bytes", "gauge",
		"Unused flow-control credit per channel (0 when flow control is off).",
		func(c *ChannelSnapshot) int64 { return c.CreditRemaining })
	perChannel("stripe_markers_drained_total", "counter",
		"Markers consumed eagerly at arrival instead of in scan order.",
		func(c *ChannelSnapshot) int64 { return c.MarkersDrained })
	perChannel("stripe_credit_reconciles_total", "counter",
		"Credit reconciliations from marker-carried sender positions that wrote off loss.",
		func(c *ChannelSnapshot) int64 { return c.CreditReconciles })
	perChannel("stripe_credit_lost_bytes_total", "counter",
		"Bytes written off as lost by credit reconciliation and granted back.",
		func(c *ChannelSnapshot) int64 { return c.LostReconciled })
	perChannel("stripe_member_joins_total", "counter",
		"Channel (re)join transitions into the live set.",
		func(c *ChannelSnapshot) int64 { return c.MemberJoins })
	perChannel("stripe_member_drains_total", "counter",
		"Channel drain transitions out of the live set.",
		func(c *ChannelSnapshot) int64 { return c.MemberDrains })
	perChannel("stripe_member_evictions_total", "counter",
		"Health-monitor forced removals (consecutive send errors or marker silence).",
		func(c *ChannelSnapshot) int64 { return c.MemberEvictions })
	perChannel("stripe_member_reinstates_total", "counter",
		"Health-monitor re-admissions after recovery.",
		func(c *ChannelSnapshot) int64 { return c.MemberReinstates })
	perChannel("stripe_member_active", "gauge",
		"Live-set membership per channel (1 = striping, 0 = removed).",
		func(c *ChannelSnapshot) int64 {
			if c.MemberActive {
				return 1
			}
			return 0
		})

	scalar("stripe_round", "gauge",
		"Sender global round number G.",
		func(s *Snapshot) int64 { return int64(s.Round) })
	scalar("stripe_max_packet_bytes", "gauge",
		"Largest data payload striped so far (the Max of Theorem 3.2).",
		func(s *Snapshot) int64 { return s.MaxPacket })
	scalar("stripe_resets_total", "counter",
		"Epoch resets broadcast or applied.",
		func(s *Snapshot) int64 { return s.Resets })
	scalar("stripe_self_heals_total", "counter",
		"Self-stabilization events (receiver state adopted from markers).",
		func(s *Snapshot) int64 { return s.SelfHeals })
	scalar("stripe_fast_forwards_total", "counter",
		"Receiver round fast-forwards while every channel was skip-listed.",
		func(s *Snapshot) int64 { return s.FastForwards })
	scalar("stripe_bad_markers_total", "counter",
		"Markers dropped as corrupt or mis-addressed.",
		func(s *Snapshot) int64 { return s.BadMarkers })
	scalar("stripe_old_epoch_drops_total", "counter",
		"Packets discarded while waiting out an epoch reset.",
		func(s *Snapshot) int64 { return s.OldEpochDrops })
	scalar("stripe_credit_stall_nanoseconds_total", "counter",
		"Total wall-clock time senders spent blocked on exhausted credit.",
		func(s *Snapshot) int64 { return int64(s.CreditStall) })
	scalar("stripe_credit_rejects_total", "counter",
		"Wire credit grants refused by the gate as invalid.",
		func(s *Snapshot) int64 { return s.CreditRejects })
	scalar("stripe_reseq_buffered_packets", "gauge",
		"Resequencer buffer occupancy, in packets.",
		func(s *Snapshot) int64 { return s.Buffered })
	scalar("stripe_reseq_buffered_high_water", "gauge",
		"Highest resequencer buffer occupancy observed.",
		func(s *Snapshot) int64 { return s.BufferedHighWater })
	scalar("stripe_reseq_overflows_total", "counter",
		"Resequencer buffer-cap overflow escalations.",
		func(s *Snapshot) int64 { return s.ReseqOverflows })
	scalar("stripe_reseq_overflow_drops_total", "counter",
		"Arrivals discarded at the resequencer's hard buffer cap.",
		func(s *Snapshot) int64 { return s.OverflowDrops })
	scalar("stripe_fairness_discrepancy_bytes", "gauge",
		"Live fairness gauge: max over channels of |K*Quantum_i - bytes_i|.",
		func(s *Snapshot) int64 { return s.FairnessDiscrepancy })
	scalar("stripe_fairness_bound_bytes", "gauge",
		"Theorem 3.2 ceiling Max + 2*Quantum; discrepancy above it is an invariant violation.",
		func(s *Snapshot) int64 { return s.FairnessBound })

	metric("stripe_protocol_events_total", "counter",
		"Protocol transition events by kind.",
		func(s *Snapshot, base string) {
			for k := Kind(0); k < nKinds; k++ {
				if n, ok := s.Events[k.String()]; ok {
					sample("stripe_protocol_events_total", base, `kind="`+k.String()+`"`, n)
				}
			}
		})

	// Histograms, in native Prometheus histogram shape (cumulative
	// buckets with an le label).
	histSamples := func(name, base string, h HistogramSnapshot) {
		cum := int64(0)
		for b, cnt := range h.Buckets {
			cum += cnt
			le := "+Inf"
			if b < len(h.Bounds) {
				le = strconv.FormatInt(h.Bounds[b], 10)
			}
			sample(name+"_bucket", base, `le="`+le+`"`, cum)
		}
		sample(name+"_sum", base, "", h.Sum)
		sample(name+"_count", base, "", h.Count)
	}
	histogram := func(name, help string, get func(*Snapshot) (HistogramSnapshot, bool)) {
		wrote := false
		for i := range snaps {
			h, ok := get(&snaps[i])
			if !ok {
				continue
			}
			if !wrote {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
				wrote = true
			}
			base := ""
			if snaps[i].Name != "" {
				base = `session="` + snaps[i].Name + `"`
			}
			histSamples(name, base, h)
		}
	}

	histogram("stripe_displacement_packets",
		"Reordering lateness per delivered packet (0 = in order).",
		func(s *Snapshot) (HistogramSnapshot, bool) { return s.Displacement, true })

	// Lifecycle latency histograms: present only on collectors with a
	// tracer attached.
	lifecycleHist := func(get func(*TracerSnapshot) HistogramSnapshot) func(*Snapshot) (HistogramSnapshot, bool) {
		return func(s *Snapshot) (HistogramSnapshot, bool) {
			if s.Lifecycle == nil {
				return HistogramSnapshot{}, false
			}
			return get(s.Lifecycle), true
		}
	}
	histogram("stripe_latency_e2e_nanoseconds",
		"Sampled packet latency from striping to in-order delivery.",
		lifecycleHist(func(t *TracerSnapshot) HistogramSnapshot { return t.EndToEnd }))
	histogram("stripe_latency_reseq_nanoseconds",
		"Sampled time packets spent in the resequencer (channel receive to delivery).",
		lifecycleHist(func(t *TracerSnapshot) HistogramSnapshot { return t.ReseqDelay }))
	histogram("stripe_latency_hol_nanoseconds",
		"Sampled head-of-line blocking: resequencing delay of in-order (displacement 0) packets.",
		lifecycleHist(func(t *TracerSnapshot) HistogramSnapshot { return t.HeadOfLine }))
	histogram("stripe_latency_send_stall_nanoseconds",
		"Sampled delay from a packet's first credit-gated send attempt to its transmit.",
		lifecycleHist(func(t *TracerSnapshot) HistogramSnapshot { return t.SendStall }))

	lifecycleScalar := func(name, typ, help string, get func(*TracerSnapshot) int64) {
		wrote := false
		for i := range snaps {
			if snaps[i].Lifecycle == nil {
				continue
			}
			if !wrote {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
				wrote = true
			}
			base := ""
			if snaps[i].Name != "" {
				base = `session="` + snaps[i].Name + `"`
			}
			sample(name, base, "", get(snaps[i].Lifecycle))
		}
	}
	lifecycleScalar("stripe_trace_sample_period", "gauge",
		"Lifecycle tracing sample period (1 = every packet).",
		func(t *TracerSnapshot) int64 { return t.SampleEvery })
	lifecycleScalar("stripe_trace_tracked_total", "counter",
		"Packet lifecycles completed and folded into the latency histograms.",
		func(t *TracerSnapshot) int64 { return t.Tracked })
	lifecycleScalar("stripe_trace_evicted_total", "counter",
		"Trace slots reclaimed before delivery (packet loss or key collision).",
		func(t *TracerSnapshot) int64 { return t.Evicted })
	lifecycleScalar("stripe_trace_torn_total", "counter",
		"Trace completions dropped because the slot was concurrently reused.",
		func(t *TracerSnapshot) int64 { return t.Torn })

	scalar("stripe_invariant_violations_total", "counter",
		"Invariant-checker findings (Theorem 3.2 band, credit conservation, monotone rounds); any nonzero value is a protocol bug.",
		func(s *Snapshot) int64 { return s.InvariantViolations })

	// Windowed telemetry: present only on collectors with a Windows
	// rollup attached that has folded at least once. All rates are
	// derived over the rollup's scoring span.
	fsample := func(name, base, labels string, v float64) {
		fv := strconv.FormatFloat(v, 'g', -1, 64)
		switch {
		case base == "" && labels == "":
			fmt.Fprintf(w, "%s %s\n", name, fv)
		case base == "":
			fmt.Fprintf(w, "%s{%s} %s\n", name, labels, fv)
		case labels == "":
			fmt.Fprintf(w, "%s{%s} %s\n", name, base, fv)
		default:
			fmt.Fprintf(w, "%s{%s,%s} %s\n", name, base, labels, fv)
		}
	}
	windowed := func(name, typ, help string, emit func(base string, sp *WindowSpan, health []HealthScore)) {
		wrote := false
		for i := range snaps {
			sp := snaps[i].Windows.ScoreWindow()
			if sp == nil {
				continue
			}
			if !wrote {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
				wrote = true
			}
			base := ""
			if snaps[i].Name != "" {
				base = `session="` + snaps[i].Name + `"`
			}
			emit(base, sp, snaps[i].Windows.Health)
		}
	}
	chLabel := func(c int) string { return `channel="` + strconv.Itoa(c) + `"` }
	windowed("stripe_channel_health", "gauge",
		"Windowed per-channel health score: 100 clean, 0 dead (see obs.HealthScore).",
		func(base string, sp *WindowSpan, health []HealthScore) {
			for _, h := range health {
				sample("stripe_channel_health", base, chLabel(h.Channel), int64(h.Score))
			}
		})
	windowed("stripe_channel_bytes_rate", "gauge",
		"Windowed goodput in bytes/s striped onto (tx) or delivered from (rx) each channel.",
		func(base string, sp *WindowSpan, _ []HealthScore) {
			for i := range sp.Channels {
				c := &sp.Channels[i]
				fsample("stripe_channel_bytes_rate", base, chLabel(c.Channel)+`,dir="tx"`, c.TxBytesPerSec)
				fsample("stripe_channel_bytes_rate", base, chLabel(c.Channel)+`,dir="rx"`, c.RxBytesPerSec)
			}
		})
	windowed("stripe_channel_loss_rate", "gauge",
		"Windowed loss fraction per channel (0-1): channel drops or credit write-offs over transmit traffic.",
		func(base string, sp *WindowSpan, _ []HealthScore) {
			for i := range sp.Channels {
				fsample("stripe_channel_loss_rate", base, chLabel(sp.Channels[i].Channel), sp.Channels[i].LossFrac)
			}
		})
	windowed("stripe_channel_resync_rate", "gauge",
		"Windowed marker resyncs per second per channel.",
		func(base string, sp *WindowSpan, _ []HealthScore) {
			for i := range sp.Channels {
				fsample("stripe_channel_resync_rate", base, chLabel(sp.Channels[i].Channel), sp.Channels[i].ResyncsPerSec)
			}
		})
	windowed("stripe_channel_send_latency_ewma_nanoseconds", "gauge",
		"Smoothed sampled end-to-end latency of packets delivered off each channel (0 without a tracer).",
		func(base string, sp *WindowSpan, _ []HealthScore) {
			for i := range sp.Channels {
				sample("stripe_channel_send_latency_ewma_nanoseconds", base, chLabel(sp.Channels[i].Channel), sp.Channels[i].LatencyEWMA)
			}
		})
	windowed("stripe_channel_delay_skew_nanoseconds", "gauge",
		"Inter-channel one-way-delay skew estimate: lag of each channel's newest marker behind the freshest channel's.",
		func(base string, sp *WindowSpan, _ []HealthScore) {
			for i := range sp.Channels {
				sample("stripe_channel_delay_skew_nanoseconds", base, chLabel(sp.Channels[i].Channel), sp.Channels[i].DelaySkew)
			}
		})
	windowed("stripe_credit_stall_ratio", "gauge",
		"Windowed fraction of wall-clock time senders spent blocked on exhausted credit.",
		func(base string, sp *WindowSpan, _ []HealthScore) {
			fsample("stripe_credit_stall_ratio", base, "", sp.Session.CreditStallFrac)
		})
	windowed("stripe_window_covered_seconds", "gauge",
		"Time actually covered by the scoring window (shorter than the span during warmup).",
		func(base string, sp *WindowSpan, _ []HealthScore) {
			fsample("stripe_window_covered_seconds", base, "", sp.Covered.Seconds())
		})

	// Peer telemetry: present only on collectors with a PeerView that
	// has applied at least one report from the remote resequencer.
	peered := func(name, typ, help string, emit func(base string, p *PeerSnapshot)) {
		wrote := false
		for i := range snaps {
			p := snaps[i].Peer
			if p == nil {
				continue
			}
			if !wrote {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
				wrote = true
			}
			base := ""
			if snaps[i].Name != "" {
				base = `session="` + snaps[i].Name + `"`
			}
			emit(base, p)
		}
	}
	peered("stripe_peer_channel_loss_rate", "gauge",
		"Peer-reported loss fraction per channel (0-1), measured by the remote resequencer's marker reconciliation; catches silent loss.",
		func(base string, p *PeerSnapshot) {
			for i := range p.Channels {
				fsample("stripe_peer_channel_loss_rate", base, chLabel(p.Channels[i].Channel), p.Channels[i].LossFrac)
			}
		})
	peered("stripe_peer_reseq_occupancy", "gauge",
		"Peer resequencer occupancy as a fraction of its buffer cap (0 when the peer is unbounded).",
		func(base string, p *PeerSnapshot) {
			fsample("stripe_peer_reseq_occupancy", base, "", p.OccupancyFrac)
		})
	peered("stripe_channel_oneway_delay_nanoseconds", "gauge",
		"Min-filtered one-way delay sample per channel from marker tx/rx timestamps; embeds the inter-host clock offset, so compare channels, not absolutes.",
		func(base string, p *PeerSnapshot) {
			for i := range p.Channels {
				sample("stripe_channel_oneway_delay_nanoseconds", base, chLabel(p.Channels[i].Channel), p.Channels[i].OneWayDelayNs)
			}
		})
}

// WritePrometheus renders this collector alone; see the package-level
// function for multi-collector endpoints.
func (c *Collector) WritePrometheus(w io.Writer) { WritePrometheus(w, c) }

// String renders the snapshot as JSON; it makes the collector an
// expvar.Var.
func (c *Collector) String() string {
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

var (
	expvarMu   sync.Mutex
	expvarSets = map[string]*expvarSet{}
)

// expvarSet is the expvar.Var registered for one "stripe[.<name>]"
// key. expvar.Publish panics on duplicate registration and offers no
// replacement, so the set is registered once and every distinct
// collector sharing the name renders through it: one collector as its
// snapshot object, several as a JSON array. Without this, a second
// session reusing a name would silently vanish from /debug/vars.
type expvarSet struct {
	mu   sync.Mutex
	cols []*Collector
}

func (s *expvarSet) add(c *Collector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.cols {
		if have == c {
			return
		}
	}
	s.cols = append(s.cols, c)
}

// String renders the set as JSON, making it an expvar.Var.
func (s *expvarSet) String() string {
	s.mu.Lock()
	cols := make([]*Collector, len(s.cols))
	copy(cols, s.cols)
	s.mu.Unlock()
	if len(cols) == 1 {
		return cols[0].String()
	}
	snaps := make([]Snapshot, len(cols))
	for i, c := range cols {
		snaps[i] = c.Snapshot()
	}
	b, err := json.Marshal(snaps)
	if err != nil {
		return "[]"
	}
	return string(b)
}

// PublishExpvar registers the collector under "stripe.<name>" (or
// "stripe" when unnamed) in the process-wide expvar registry, making it
// visible at /debug/vars. Distinct collectors sharing one name are
// published together as a JSON array; re-publishing the same collector
// is a no-op, so it is safe to call repeatedly.
func (c *Collector) PublishExpvar() {
	if c == nil {
		return
	}
	name := "stripe"
	if c.name != "" {
		name += "." + c.name
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	set := expvarSets[name]
	if set == nil {
		set = &expvarSet{}
		expvarSets[name] = set
		if expvar.Get(name) == nil {
			expvar.Publish(name, set)
		}
	}
	set.add(c)
}
