package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilCollectorIsSafe checks that every hook is a no-op on a nil
// *Collector: instrumented code never guards calls beyond one pointer
// test, so the nil receiver must absorb the full surface.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.OnStriped(0, 100)
	c.SetRound(3)
	c.SetSurplus(1, -50)
	c.SetQuantum(0, 1500)
	c.OnMarkerEmitted(0)
	c.OnCreditExhausted(1, 200)
	c.SetCreditRemaining(0, 10)
	c.AddCreditStall(time.Millisecond)
	c.OnReset(1)
	c.OnDelivered(0, 100, 2)
	c.OnMarkerConsumed(1)
	c.OnBadMarker()
	c.OnResync(0, 5, -100)
	c.OnSkip(1, 6)
	c.OnFastForward(2, 9)
	c.OnSelfHeal(7)
	c.OnOldEpochDrops(3)
	c.SetBuffered(4)
	c.OnChannelLost(0)
	c.SetChannelQueueDepth(1, 8)
	if d, b := c.Fairness(); d != 0 || b != 0 {
		t.Fatalf("nil Fairness = %d, %d", d, b)
	}
	if s := c.Snapshot(); len(s.Channels) != 0 {
		t.Fatalf("nil Snapshot has channels: %+v", s)
	}
}

func TestCountersAndSnapshot(t *testing.T) {
	c := NewNamedCollector("t", 2)
	if c.N() != 2 || c.Name() != "t" {
		t.Fatalf("N=%d Name=%q", c.N(), c.Name())
	}
	c.SetQuantum(0, 1500)
	c.SetQuantum(1, 1500)
	c.OnStriped(0, 1000)
	c.OnStriped(0, 500)
	c.OnStriped(1, 1500)
	c.SetRound(1)
	c.OnMarkerEmitted(0)
	c.OnDelivered(1, 1500, 0)
	c.OnDelivered(0, 1000, 3)
	c.OnMarkerConsumed(0)
	c.SetBuffered(5)
	c.SetBuffered(2)
	c.OnChannelLost(1)

	s := c.Snapshot()
	if s.Channels[0].StripedPackets != 2 || s.Channels[0].StripedBytes != 1500 {
		t.Fatalf("channel 0 striped: %+v", s.Channels[0])
	}
	if s.Channels[1].StripedBytes != 1500 || s.Channels[1].Lost != 1 {
		t.Fatalf("channel 1: %+v", s.Channels[1])
	}
	if s.Channels[0].DeliveredPackets != 1 || s.Channels[1].DeliveredBytes != 1500 {
		t.Fatalf("delivered: %+v", s.Channels)
	}
	if s.MaxPacket != 1500 {
		t.Fatalf("MaxPacket = %d", s.MaxPacket)
	}
	if s.Buffered != 2 || s.BufferedHighWater != 5 {
		t.Fatalf("buffered %d high water %d", s.Buffered, s.BufferedHighWater)
	}
	// K=1, quanta 1500/1500, bytes 1500/1500 -> discrepancy 0,
	// bound = Max + 2*Quantum = 1500 + 3000.
	if s.FairnessDiscrepancy != 0 || s.FairnessBound != 4500 {
		t.Fatalf("fairness %d/%d", s.FairnessDiscrepancy, s.FairnessBound)
	}
	// Displacement histogram saw one 0 and one 3 (bucket le=4).
	if s.Displacement.Count != 2 || s.Displacement.Sum != 3 {
		t.Fatalf("displacement %+v", s.Displacement)
	}
}

func TestFairnessDiscrepancy(t *testing.T) {
	c := NewCollector(2)
	if d, b := c.Fairness(); d != 0 || b != 0 {
		t.Fatalf("fresh collector fairness %d/%d", d, b)
	}
	c.SetQuantum(0, 1000)
	c.SetQuantum(1, 500)
	c.OnStriped(0, 1800) // deficit vs K*Q0 = 2000: 200
	c.OnStriped(1, 1300) // surplus vs K*Q1 = 1000: 300
	c.SetRound(2)
	d, b := c.Fairness()
	if d != 300 {
		t.Fatalf("discrepancy = %d, want 300", d)
	}
	if want := int64(1800 + 2*1000); b != want {
		t.Fatalf("bound = %d, want %d", b, want)
	}
}

func TestEventsAndRingSink(t *testing.T) {
	c := NewCollector(2)
	ring := NewRingSink(4)
	c.AddSink(ring)
	var funcGot []Event
	c.AddSink(SinkFunc(func(e Event) { funcGot = append(funcGot, e) }))

	c.OnResync(0, 5, -100)
	c.OnSkip(1, 6)
	c.OnReset(2)
	c.OnSelfHeal(9)
	c.OnFastForward(3, 9)
	c.OnCreditExhausted(0, 700)

	if got := ring.Total(); got != 6 {
		t.Fatalf("ring total = %d, want 6", got)
	}
	evs := ring.Events()
	if len(evs) != 4 { // bounded: keeps only the newest 4
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	wantKinds := []Kind{KindReset, KindSelfHeal, KindFastForward, KindCreditExhausted}
	for i, e := range evs {
		if e.Kind != wantKinds[i] {
			t.Fatalf("ring[%d] = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	if len(funcGot) != 6 {
		t.Fatalf("SinkFunc saw %d events", len(funcGot))
	}
	// Seq is assigned monotonically across sinks.
	for i := 1; i < len(funcGot); i++ {
		if funcGot[i].Seq != funcGot[i-1].Seq+1 {
			t.Fatalf("non-monotone seq: %v", funcGot)
		}
	}
	if s := funcGot[0].String(); !strings.Contains(s, "resync") || !strings.Contains(s, "channel=0") {
		t.Fatalf("event string %q", s)
	}
	// Event counters made it into the snapshot.
	snap := c.Snapshot()
	for _, k := range []string{"resync", "skip", "reset", "self_heal", "fast_forward", "credit_exhausted"} {
		if snap.Events[k] != 1 {
			t.Fatalf("snapshot events %v, missing %s", snap.Events, k)
		}
	}
}

func TestWriterSink(t *testing.T) {
	c := NewCollector(1)
	var sb strings.Builder
	var mu sync.Mutex
	c.AddSink(SinkFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		NewWriterSink(&sb).Event(e)
	}))
	c.OnResync(0, 7, 42)
	if got := sb.String(); !strings.Contains(got, "resync channel=0 round=7 value=42") {
		t.Fatalf("writer sink wrote %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 900, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 5904 {
		t.Fatalf("count %d sum %d", s.Count, s.Sum)
	}
	if len(s.Buckets) != len(s.Bounds)+1 {
		t.Fatalf("%d buckets for %d bounds", len(s.Buckets), len(s.Bounds))
	}
	find := func(bound int64) int64 {
		for i, b := range s.Bounds {
			if b == bound {
				return s.Buckets[i]
			}
		}
		t.Fatalf("no bucket bound %d", bound)
		return 0
	}
	if find(0) != 1 || find(1) != 1 || find(4) != 1 || find(1024) != 1 {
		t.Fatalf("bucket placement: %+v", s)
	}
	if s.Buckets[len(s.Buckets)-1] != 1 { // +Inf overflow
		t.Fatalf("overflow bucket: %+v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	a := NewNamedCollector("a", 2)
	b := NewNamedCollector("b", 1)
	a.SetQuantum(0, 1500)
	a.SetQuantum(1, 1500)
	a.OnStriped(0, 1000)
	a.SetRound(1)
	a.OnMarkerEmitted(1)
	a.OnResync(0, 4, 0)
	a.OnDelivered(0, 1000, 2)
	b.OnStriped(0, 64)

	var sb strings.Builder
	WritePrometheus(&sb, a, b)
	out := sb.String()
	for _, want := range []string{
		`stripe_channel_bytes_total{session="a",channel="0",dir="tx"} 1000`,
		`stripe_markers_total{session="a",channel="1",dir="tx"} 1`,
		`stripe_resync_events_total{session="a",channel="0"} 1`,
		`stripe_fairness_discrepancy_bytes{session="a"} 1500`,
		`stripe_fairness_bound_bytes{session="a"} 4000`,
		`stripe_channel_bytes_total{session="b",channel="0",dir="tx"} 64`,
		`stripe_protocol_events_total{session="a",kind="resync"} 1`,
		`stripe_displacement_packets_bucket{session="a",le="2"} 1`,
		`stripe_displacement_packets_sum{session="a"} 2`,
		`stripe_displacement_packets_count{session="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE appear exactly once per metric even with two collectors.
	if n := strings.Count(out, "# TYPE stripe_channel_bytes_total counter"); n != 1 {
		t.Fatalf("TYPE line appears %d times", n)
	}
}

// TestWritePrometheusUnnamed checks that multiple unnamed collectors
// get synthesized session labels instead of colliding.
func TestWritePrometheusUnnamed(t *testing.T) {
	a, b := NewCollector(1), NewCollector(1)
	a.OnStriped(0, 1)
	b.OnStriped(0, 2)
	var sb strings.Builder
	WritePrometheus(&sb, a, b)
	out := sb.String()
	if !strings.Contains(out, `session="c0"`) || !strings.Contains(out, `session="c1"`) {
		t.Fatalf("missing synthesized labels:\n%s", out)
	}
}

// TestConcurrentUse hammers one collector from many goroutines; run
// under -race this is the lock-freedom proof for the hot-path hooks.
func TestConcurrentUse(t *testing.T) {
	c := NewCollector(4)
	ring := NewRingSink(16)
	c.AddSink(ring)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ch := g % 4
			for i := 0; i < 1000; i++ {
				c.OnStriped(ch, 100)
				c.OnDelivered(ch, 100, int64(i%3))
				c.SetRound(uint64(i))
				c.SetBuffered(int64(i % 7))
				if i%100 == 0 {
					c.OnResync(ch, uint64(i), 0)
					var sb strings.Builder
					c.WritePrometheus(&sb)
					_ = c.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	var pkts int64
	for _, ch := range s.Channels {
		pkts += ch.StripedPackets
	}
	if pkts != 8*1000 {
		t.Fatalf("striped %d, want 8000", pkts)
	}
	if s.Displacement.Count != 8*1000 {
		t.Fatalf("displacement count %d", s.Displacement.Count)
	}
}
