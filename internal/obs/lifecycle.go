// Packet lifecycle tracing: per-packet latency attribution across the
// five protocol stages — stripe (accepted by the striper, possibly
// gated), channel send, channel receive, buffer, deliver — without any
// wire change. Stamps are monotonic nanoseconds held in a fixed-size
// side table keyed by the packet's sequence identity: the explicit
// sequence number in the with-header variants (which crosses the wire),
// or the striper's instrumentation-only ID for in-process channels.
//
// Tracing is sampled (default one packet in 16) so an attached tracer
// stays inside the observability layer's overhead budget; set Sample: 1
// to stamp every packet in tests and offline analyses. On delivery the
// tracer folds the stamps into four latency histograms:
//
//   - end-to-end: stripe -> deliver, the full protocol latency.
//   - resequencing delay: receive -> deliver, the time a packet sat in
//     the resequencer. Theorem 5.1 bounds its recovery tail by one
//     marker period plus a one-way delay.
//   - head-of-line blocking: receive -> deliver restricted to in-order
//     (displacement 0) packets — time spent waiting not for this
//     packet's own channel but for the scan to work through others.
//   - send stall: first gated attempt -> successful transmit, the
//     per-packet face of credit exhaustion.
//
// Completed lifecycles are additionally retained in a bounded ring for
// offline inspection; WriteChromeTrace renders them (plus protocol
// events) as chrome://tracing JSON.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// epoch0 is the process-wide timebase: every tracer stamp and every
// Event.At is nanoseconds since this instant, so records from different
// collectors and tracers in one process align on one axis.
var epoch0 = time.Now()

// sinceEpoch returns monotonic nanoseconds since the process timebase.
func sinceEpoch() int64 { return time.Since(epoch0).Nanoseconds() }

// PacketTrace is one completed packet lifecycle. All stamps are
// nanoseconds on the process timebase; zero means the stage was never
// observed (e.g. Arrived on a packet traced only at the sender).
type PacketTrace struct {
	Key          uint64 // sequence identity (Seq or striper ID)
	Channel      int32
	Displacement int64
	StripedNs    int64 // accepted by the striper (first gated attempt)
	SentNs       int64 // pushed onto the channel
	ArrivedNs    int64 // physically received off the channel
	BufferedNs   int64 // entered a resequencer buffer
	DeliveredNs  int64 // handed to the application in order
}

// TracerConfig sizes a Tracer. The zero value selects the defaults.
type TracerConfig struct {
	// Slots is the side-table capacity; rounded up to a power of two.
	// Default 4096. A slot is reclaimed at delivery; a packet lost in
	// flight leaves its slot to be evicted by a later key.
	Slots int
	// Sample traces every Sample-th packet (by sequence identity);
	// rounded up to a power of two. Default 16; use 1 to stamp every
	// packet when overhead does not matter.
	Sample int
	// Recent is how many completed lifecycles the tracer retains for
	// chrome-trace export. Default 512; negative disables retention.
	Recent int
}

// maxLatChannels bounds the tracer's per-channel latency accumulators;
// it matches the protocol's 64-slot channel universe.
const maxLatChannels = 64

// slot is one side-table entry. Fields are atomics because the
// transmit and receive paths may stamp from different goroutines.
type slot struct {
	key      atomic.Uint64 // packet key + 1; 0 = free
	striped  atomic.Int64
	sent     atomic.Int64
	arrived  atomic.Int64
	buffered atomic.Int64
	channel  atomic.Int32
}

// Tracer is the packet lifecycle side table plus its latency
// histograms. Create with NewTracer, attach with Collector.SetTracer
// (attach the same tracer to both ends' collectors to trace across a
// session pair). All methods are safe for concurrent use and safe on a
// nil receiver.
type Tracer struct {
	slotMask   uint64
	sampleMask uint64
	slots      []slot

	endToEnd   Histogram
	reseqDelay Histogram
	headOfLine Histogram
	sendStall  Histogram

	tracked atomic.Int64 // completed lifecycles folded into histograms
	evicted atomic.Int64 // slots reused before delivery (loss or collision)
	torn    atomic.Int64 // deliveries dropped: slot reused mid-read

	// Per-channel end-to-end latency accumulators (sum/count of
	// stripe -> deliver, ns) feeding the windowed-telemetry EWMAs.
	// Fixed at the membership universe bound so delivery never indexes
	// out of range.
	latSumOn [maxLatChannels]atomic.Int64
	latCntOn [maxLatChannels]atomic.Int64

	mu     sync.Mutex
	recent []PacketTrace
	next   int
}

// NewTracer returns a tracer with the given configuration.
func NewTracer(cfg TracerConfig) *Tracer {
	slots := ceilPow2(cfg.Slots, 4096)
	sample := ceilPow2(cfg.Sample, 16)
	recent := cfg.Recent
	if recent == 0 {
		recent = 512
	}
	t := &Tracer{
		slotMask:   uint64(slots - 1),
		sampleMask: uint64(sample - 1),
		slots:      make([]slot, slots),
	}
	if recent > 0 {
		t.recent = make([]PacketTrace, 0, recent)
	}
	t.endToEnd.setBounds(latencyBounds[:])
	t.reseqDelay.setBounds(latencyBounds[:])
	t.headOfLine.setBounds(latencyBounds[:])
	t.sendStall.setBounds(latencyBounds[:])
	return t
}

func ceilPow2(v, def int) int {
	if v <= 0 {
		return def
	}
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// SampleEvery returns the sampling period (1 = every packet).
func (t *Tracer) SampleEvery() int64 {
	if t == nil {
		return 0
	}
	return int64(t.sampleMask + 1)
}

func (t *Tracer) sampled(key uint64) bool { return key&t.sampleMask == 0 }

// claim points the slot for key at this packet, evicting a stale
// occupant (a packet lost in flight, or a key collision).
func (t *Tracer) claim(key uint64) *slot {
	s := &t.slots[key&t.slotMask]
	if s.key.Load() != key+1 {
		if s.key.Load() != 0 {
			t.evicted.Add(1)
		}
		s.striped.Store(0)
		s.sent.Store(0)
		s.arrived.Store(0)
		s.buffered.Store(0)
		s.channel.Store(-1)
		s.key.Store(key + 1)
	}
	return s
}

// lookup returns the slot for key only if this packet still owns it.
func (t *Tracer) lookup(key uint64) *slot {
	s := &t.slots[key&t.slotMask]
	if s.key.Load() != key+1 {
		return nil
	}
	return s
}

// onGated stamps the stripe stage for a packet whose transmission flow
// control just vetoed: the stripe clock starts at the first attempt, so
// sent − striped measures the credit stall the packet experienced.
//
//stripe:hotpath
func (t *Tracer) onGated(key uint64) {
	if t == nil || !t.sampled(key) {
		return
	}
	s := t.claim(key)
	if s.striped.Load() == 0 {
		s.striped.Store(sinceEpoch())
	}
}

// onSend stamps the channel-send stage (and the stripe stage, when the
// packet was never gated) after a successful transmit on channel ch.
//
//stripe:hotpath
func (t *Tracer) onSend(key uint64, ch int) {
	if t == nil || !t.sampled(key) {
		return
	}
	now := sinceEpoch()
	s := t.claim(key)
	if s.striped.Load() == 0 {
		s.striped.Store(now)
	}
	s.sent.Store(now)
	s.channel.Store(int32(ch))
}

// onArrive stamps the channel-receive stage on channel ch.
//
//stripe:hotpath
func (t *Tracer) onArrive(key uint64, ch int) {
	if t == nil || !t.sampled(key) {
		return
	}
	s := t.lookup(key)
	if s == nil {
		// Not stamped at a sender sharing this tracer (e.g. the peer is
		// a remote process): claim at arrival so resequencing delay is
		// still measured.
		s = t.claim(key)
	}
	s.arrived.Store(sinceEpoch())
	s.channel.Store(int32(ch))
}

// onBuffered stamps the buffer stage: the packet entered a resequencer
// buffer to await its turn in the delivery order.
//
//stripe:hotpath
func (t *Tracer) onBuffered(key uint64) {
	if t == nil || !t.sampled(key) {
		return
	}
	if s := t.lookup(key); s != nil {
		s.buffered.Store(sinceEpoch())
	}
}

// onDeliver completes the lifecycle: reads the stamps, folds the
// latencies into the histograms, retains the record, and frees the
// slot.
//
//stripe:hotpath
func (t *Tracer) onDeliver(key uint64, displacement int64) {
	if t == nil || !t.sampled(key) {
		return
	}
	s := t.lookup(key)
	if s == nil {
		return // never stamped (tracer attached mid-stream) or evicted
	}
	rec := PacketTrace{
		Key:          key,
		Channel:      s.channel.Load(),
		Displacement: displacement,
		StripedNs:    s.striped.Load(),
		SentNs:       s.sent.Load(),
		ArrivedNs:    s.arrived.Load(),
		BufferedNs:   s.buffered.Load(),
	}
	if s.key.Load() != key+1 {
		// The slot was evicted between lookup and read: the stamps are
		// torn. Drop the sample rather than pollute the histograms.
		t.torn.Add(1)
		return
	}
	s.key.Store(0)
	now := sinceEpoch()
	rec.DeliveredNs = now
	t.tracked.Add(1)
	if rec.StripedNs > 0 {
		e2e := now - rec.StripedNs
		t.endToEnd.Observe(e2e)
		if ch := rec.Channel; ch >= 0 && int(ch) < maxLatChannels {
			t.latSumOn[ch].Add(e2e)
			t.latCntOn[ch].Add(1)
		}
		if rec.SentNs >= rec.StripedNs {
			t.sendStall.Observe(rec.SentNs - rec.StripedNs)
		}
	}
	if rec.ArrivedNs > 0 {
		d := now - rec.ArrivedNs
		t.reseqDelay.Observe(d)
		if displacement == 0 {
			t.headOfLine.Observe(d)
		}
	}
	t.retain(rec)
}

//stripe:allowescape mutex-guarded retention ring, reached only for the 1-in-SampleEvery sampled lifecycles that complete
func (t *Tracer) retain(rec PacketTrace) {
	if cap(t.recent) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recent) < cap(t.recent) {
		t.recent = append(t.recent, rec)
	} else {
		t.recent[t.next] = rec
		t.next = (t.next + 1) % cap(t.recent)
	}
}

// Recent returns the retained completed lifecycles, oldest first.
func (t *Tracer) Recent() []PacketTrace {
	if t == nil {
		return nil
	}
	return t.AppendRecent(nil, 1<<31-1)
}

// AppendRecent appends up to max of the newest retained lifecycles to
// dst (oldest first among those kept) and returns the extended slice.
// Exporters reuse dst across scrapes so a polling loop does not
// reallocate the copy every request.
func (t *Tracer) AppendRecent(dst []PacketTrace, max int) []PacketTrace {
	if t == nil || max <= 0 {
		return dst
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.recent)
	skip := n - max
	if skip < 0 {
		skip = 0
	}
	// Oldest-first logical order is recent[next:] then recent[:next].
	for _, part := range [2][]PacketTrace{t.recent[t.next:], t.recent[:t.next]} {
		if skip >= len(part) {
			skip -= len(part)
			continue
		}
		dst = append(dst, part[skip:]...)
		skip = 0
	}
	return dst
}

// TracerSnapshot is a point-in-time copy of the tracer's histograms
// and bookkeeping counters.
type TracerSnapshot struct {
	SampleEvery int64 // sampling period (1 = every packet)
	Tracked     int64 // completed lifecycles
	Evicted     int64 // slots reused before delivery (loss/collision)
	Torn        int64 // deliveries dropped to a concurrent slot reuse

	// All histograms are in nanoseconds.
	EndToEnd   HistogramSnapshot // stripe -> deliver
	ReseqDelay HistogramSnapshot // receive -> deliver
	HeadOfLine HistogramSnapshot // receive -> deliver, in-order packets
	SendStall  HistogramSnapshot // first gated attempt -> transmit
}

// Snapshot copies the tracer's aggregates. Safe on nil (zero value).
func (t *Tracer) Snapshot() TracerSnapshot {
	if t == nil {
		return TracerSnapshot{}
	}
	return TracerSnapshot{
		SampleEvery: t.SampleEvery(),
		Tracked:     t.tracked.Load(),
		Evicted:     t.evicted.Load(),
		Torn:        t.torn.Load(),
		EndToEnd:    t.endToEnd.Snapshot(),
		ReseqDelay:  t.reseqDelay.Snapshot(),
		HeadOfLine:  t.headOfLine.Snapshot(),
		SendStall:   t.sendStall.Snapshot(),
	}
}

// --- Collector integration ---------------------------------------------

// SetTracer attaches a lifecycle tracer; engines stamp through the
// collector's Trace* hooks. Attach the same tracer to both collectors
// of a session pair to measure end-to-end latency across them. A nil
// tracer detaches.
func (c *Collector) SetTracer(t *Tracer) {
	if c == nil {
		return
	}
	if t == nil {
		c.tracer.Store(nil)
		return
	}
	c.tracer.Store(t)
}

// Tracer returns the attached lifecycle tracer, or nil.
func (c *Collector) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer.Load()
}

// traceTarget returns the tracer only when it should stamp this key:
// the nil and sampling rejections happen here, in the collector hook,
// so the common non-sampled packet never enters a tracer method.
func (c *Collector) traceTarget(key uint64) *Tracer {
	if c == nil {
		return nil
	}
	t := c.tracer.Load()
	if t == nil || key&t.sampleMask != 0 {
		return nil
	}
	return t
}

// TraceGated stamps the stripe stage for a packet flow control just
// vetoed; key is the sequence identity the packet will carry.
func (c *Collector) TraceGated(key uint64) {
	if t := c.traceTarget(key); t != nil {
		t.onGated(key)
	}
}

// TraceSend stamps the stripe and channel-send stages after a
// successful transmit on channel ch.
func (c *Collector) TraceSend(key uint64, ch int) {
	if t := c.traceTarget(key); t != nil {
		t.onSend(key, ch)
	}
}

// TraceArrive stamps the channel-receive stage on channel ch.
func (c *Collector) TraceArrive(key uint64, ch int) {
	if t := c.traceTarget(key); t != nil {
		t.onArrive(key, ch)
	}
}

// TraceBuffered stamps the buffer stage.
func (c *Collector) TraceBuffered(key uint64) {
	if t := c.traceTarget(key); t != nil {
		t.onBuffered(key)
	}
}

// TraceDeliver completes a packet's lifecycle at in-order delivery.
func (c *Collector) TraceDeliver(key uint64, displacement int64) {
	if t := c.traceTarget(key); t != nil {
		t.onDeliver(key, displacement)
	}
}
