// Runtime invariant checking: the paper's theorems, asserted
// continuously on the live system instead of only in offline tests.
//
// A Checker attached to a Collector runs three checks every time an
// engine flushes its batched counters (Collector.RunChecks is called
// from the striper's SyncObs, under the engine mutex — never from the
// HTTP scrape path):
//
//   - Theorem 3.2 fairness: |K·Quantum_i − bytes_i| ≤ Max + 2·Quantum
//     for every channel, using the collector's live fairness gauge.
//   - Credit conservation: for every channel the gate's outstanding
//     grant satisfies 0 ≤ granted − consumed ≤ window. The receiver
//     grants exactly delivered + lost + window (flowcontrol.Manager),
//     so granted − consumed = window − in-flight: a value outside
//     [0, window] means bytes were minted or destroyed.
//   - Monotone rounds: the sender's global round G never decreases
//     between flushes (an SRR round, once completed, stays completed).
//
// Checks are edge-triggered: entering a violated state records one
// Violation and fires one KindInvariantViolation event; staying broken
// does not re-fire until the invariant recovers first, so a persistent
// break cannot storm the sinks.
package obs

import (
	"fmt"
	"sync"
)

// Violation is one invariant-checker finding.
type Violation struct {
	At      int64  // nanoseconds since the process timebase
	Check   string // "fairness", "credit", "round"
	Channel int    // offending channel, -1 when global
	Round   uint64 // sender round at detection
	Value   int64  // magnitude in the invariant's unit (see Detail)
	Detail  string // human-readable statement of the broken inequality
}

func (v Violation) String() string {
	return fmt.Sprintf("invariant %s channel=%d round=%d: %s", v.Check, v.Channel, v.Round, v.Detail)
}

// CreditAccount is one channel's flow-control ledger as seen by the
// sender's gate, provided to the checker by a CreditSource.
type CreditAccount struct {
	Channel  int
	Granted  int64 // cumulative bytes the receiver has granted
	Consumed int64 // cumulative bytes the sender has charged against it
	Window   int64 // configured credit window W
	// Retired marks an account torn down by dynamic membership (the
	// channel left the live set and its outstanding credit was
	// returned). Conservation is not asserted on retired accounts: the
	// teardown clamps granted to consumed by design, and the peer's
	// in-flight grants are ignored rather than folded in, so the ledger
	// is intentionally frozen, not leaking.
	Retired bool
}

// CreditSource supplies the current per-channel credit ledgers. It is
// called from RunChecks, i.e. under the same mutex as the engine flush
// that triggered it, so implementations may read engine state directly.
// Register one with Collector.SetCreditSource.
type CreditSource func() []CreditAccount

// Checker evaluates protocol invariants on every engine flush. Create
// with NewChecker, attach with Collector.SetChecker. All methods are
// safe for concurrent use and safe on a nil receiver.
type Checker struct {
	// OnViolation, when non-nil, is called synchronously for every new
	// violation — tests hook it to fail immediately. Set before
	// attaching the checker.
	OnViolation func(Violation)

	mu        sync.Mutex
	lastRound uint64
	roundSeen bool
	inViol    map[string]bool // per-check edge trigger state
	recent    []Violation     // bounded, oldest first
	next      int
	count     int64
}

// maxRecentViolations bounds the retained violation history.
const maxRecentViolations = 64

// NewChecker returns an invariant checker.
func NewChecker() *Checker {
	return &Checker{inViol: make(map[string]bool)}
}

// ViolationCount returns the number of violations ever recorded.
func (k *Checker) ViolationCount() int64 {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.count
}

// Violations returns the retained findings, oldest first.
func (k *Checker) Violations() []Violation {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]Violation, 0, len(k.recent))
	out = append(out, k.recent[k.next:]...)
	out = append(out, k.recent[:k.next]...)
	return out
}

// run evaluates all checks against c. Called by Collector.RunChecks.
// New violations are recorded under the checker mutex but emitted to
// sinks only after it is released: a sink (e.g. the flight recorder)
// may respond by taking a full Snapshot, which reads the checker back.
func (k *Checker) run(c *Collector, src CreditSource) {
	var fired []Violation
	k.mu.Lock()

	round := c.round.Load()

	// Theorem 3.2: the striped-byte discrepancy must stay inside the
	// Max + 2·Quantum band.
	disc, bound := c.Fairness()
	k.check(&fired, "fairness", bound > 0 && disc > bound, Violation{
		Check: "fairness", Channel: -1, Round: round, Value: disc - bound,
		Detail: fmt.Sprintf("|K*Quantum - bytes| = %d > bound %d (Theorem 3.2)", disc, bound),
	})

	// Monotone rounds: G may stall but never regress.
	regressed := k.roundSeen && round < k.lastRound
	k.check(&fired, "round", regressed, Violation{
		Check: "round", Channel: -1, Round: round, Value: int64(k.lastRound - round),
		Detail: fmt.Sprintf("sender round regressed %d -> %d", k.lastRound, round),
	})
	if !regressed {
		k.lastRound, k.roundSeen = round, true
	}

	// Credit conservation: granted = consumed + lost + in-flight, i.e.
	// the outstanding grant stays within [0, window] on every channel.
	if src != nil {
		for _, a := range src() {
			debt := a.Granted - a.Consumed
			name := fmt.Sprintf("credit/%d", a.Channel)
			// A retired account is never in violation; evaluating it as
			// healthy also clears any edge-trigger state from before the
			// teardown.
			k.check(&fired, name, !a.Retired && (debt < 0 || debt > a.Window), Violation{
				Check: "credit", Channel: a.Channel, Round: round, Value: debt,
				Detail: fmt.Sprintf("granted-consumed = %d-%d = %d outside [0, window %d]",
					a.Granted, a.Consumed, debt, a.Window),
			})
		}
	}

	cb := k.OnViolation
	k.mu.Unlock()

	for _, v := range fired {
		c.emit(KindInvariantViolation, v.Channel, v.Round, v.Value)
		if cb != nil {
			cb(v)
		}
	}
}

// check applies edge-triggered violation recording for one named check.
// Caller holds k.mu.
func (k *Checker) check(fired *[]Violation, name string, broken bool, v Violation) {
	was := k.inViol[name]
	k.inViol[name] = broken
	if !broken || was {
		return
	}
	v.At = sinceEpoch()
	k.count++
	if cap(k.recent) == 0 {
		k.recent = make([]Violation, 0, maxRecentViolations)
	}
	if len(k.recent) < cap(k.recent) {
		k.recent = append(k.recent, v)
	} else {
		k.recent[k.next] = v
		k.next = (k.next + 1) % cap(k.recent)
	}
	*fired = append(*fired, v)
}

// --- Collector integration ---------------------------------------------

// SetChecker attaches an invariant checker; RunChecks evaluates it. A
// nil checker detaches.
func (c *Collector) SetChecker(k *Checker) {
	if c == nil {
		return
	}
	if k == nil {
		c.checker.Store(nil)
		return
	}
	c.checker.Store(k)
}

// Checker returns the attached invariant checker, or nil.
func (c *Collector) Checker() *Checker {
	if c == nil {
		return nil
	}
	return c.checker.Load()
}

// SetCreditSource registers the credit ledger supplier the checker's
// conservation check reads (typically a closure over the session's
// flow-control gate, registered by NewSession). A nil source clears it.
func (c *Collector) SetCreditSource(src CreditSource) {
	if c == nil {
		return
	}
	if src == nil {
		c.creditSrc.Store(nil)
		return
	}
	c.creditSrc.Store(&src)
}

// RunChecks evaluates the attached invariant checker, if any, and
// gives the windowed-telemetry rollup its fold opportunity. Engines
// call it at flush boundaries (marker cadence), under the same mutex
// that guards the state the checker's CreditSource reads.
func (c *Collector) RunChecks() {
	if c == nil {
		return
	}
	if w := c.windows.Load(); w != nil {
		w.maybeFold()
	}
	if k := c.checker.Load(); k != nil {
		var src CreditSource
		if p := c.creditSrc.Load(); p != nil {
			src = *p
		}
		k.run(c, src)
	}
}
