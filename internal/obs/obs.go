// Package obs is the runtime observability layer: a lock-free metrics
// core plus a protocol event bus, designed so that the paper's live
// properties — the SRR fairness bound |K·Quantum_i − bytes_i| ≤
// Max + 2·Quantum (Theorem 3.2) and quasi-FIFO recovery within one
// marker period (Theorem 5.1) — are observable on a running Session
// instead of only in offline tests.
//
// A *Collector holds per-channel atomic counters and gauges written by
// the striper, resequencer, session, channels, and flow controller.
// Every method is nil-safe: instrumented code calls the collector
// unconditionally, and a nil collector compiles to a pointer test on
// the hot path, so uninstrumented configurations pay (almost) nothing.
//
// Protocol transitions — marker resync, skip-rule activation, reset,
// self-heal, fast-forward, credit exhaustion — additionally fire
// events through any attached Sink (see sink.go). Exposition to
// Prometheus text format and expvar lives in prometheus.go; the HTTP
// endpoint that serves both (plus net/http/pprof) is stripe.Serve.
//
// Naming note: package trace (internal/trace) generates *workloads*
// for the experiments; this package is the runtime tracing layer.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// chanCounters is the per-channel slab of the metrics core. All fields
// are atomics so writers on different goroutines never contend on a
// lock.
type chanCounters struct {
	stripedPkts     atomic.Int64
	stripedBytes    atomic.Int64
	deliveredPkts   atomic.Int64
	deliveredBytes  atomic.Int64
	markersEmitted  atomic.Int64
	markersConsumed atomic.Int64
	resyncs         atomic.Int64
	skips           atomic.Int64
	blockedSends    atomic.Int64
	lost            atomic.Int64
	queueDepth      atomic.Int64 // gauge: transmit queue occupancy
	surplus         atomic.Int64 // gauge: SRR deficit/surplus counter
	quantum         atomic.Int64 // gauge: configured quantum (static)
	credit          atomic.Int64 // gauge: unused flow-control credit
	markersDrained  atomic.Int64 // markers consumed eagerly at arrival
	reconciles      atomic.Int64 // credit reconciliations that wrote off loss
	lostReconciled  atomic.Int64 // bytes written off as lost and re-granted
	lastMarkerAt    atomic.Int64 // gauge: process-timebase ns of newest consumed marker

	// Dynamic membership lifecycle (join/drain/evict/reinstate
	// transitions observed on the channel; a session-level change fires
	// one transition per protocol engine that applies it).
	joins      atomic.Int64
	drains     atomic.Int64
	evictions  atomic.Int64
	reinstates atomic.Int64
	inactive   atomic.Bool // gauge: channel currently out of the live set

	// Fairness baseline: the (round, striped-bytes) position at the
	// channel's most recent (re)join. The Theorem 3.2 band is asserted
	// over rounds the channel actually participated in, so a rejoined
	// channel is not charged for rounds it sat out. Zero values preserve
	// the original since-construction accounting.
	baseRound atomic.Uint64
	baseBytes atomic.Int64
}

// Collector is the lock-free metrics core. Construct with NewCollector
// and attach to StriperConfig.Obs / ResequencerConfig.Obs (or the
// public stripe.Config.Collector). All methods are safe for concurrent
// use and safe on a nil receiver.
type Collector struct {
	name string
	ch   []chanCounters

	round  atomic.Uint64 // sender's global round G
	maxPkt atomic.Int64  // largest data payload striped so far

	resets        atomic.Int64
	selfHeals     atomic.Int64
	fastForwards  atomic.Int64
	badMarkers    atomic.Int64
	oldEpochDrops atomic.Int64

	creditStall   atomic.Int64 // nanoseconds blocked on exhausted credit
	creditRejects atomic.Int64 // wire grants rejected as invalid

	buffered       atomic.Int64 // gauge: resequencer buffer occupancy
	highWater      atomic.Int64 // max value buffered has reached
	reseqOverflows atomic.Int64 // buffer-cap overflow escalations
	overflowDrops  atomic.Int64 // arrivals dropped at the hard buffer cap

	displacement Histogram // reordering lateness per delivery

	eventSeq    atomic.Uint64
	eventCounts [nKinds]atomic.Int64

	tracer    atomic.Pointer[Tracer]       // packet lifecycle tracing (lifecycle.go)
	checker   atomic.Pointer[Checker]      // runtime invariant checks (invariants.go)
	creditSrc atomic.Pointer[CreditSource] // credit ledgers for the checker
	windows   atomic.Pointer[Windows]      // windowed telemetry rollup (window.go)
	peer      atomic.Pointer[PeerView]     // peer-reported telemetry view (peer.go)

	mu    sync.Mutex // guards sink attachment only
	sinks atomic.Pointer[[]Sink]
}

// NewCollector returns a collector sized for n channels.
func NewCollector(n int) *Collector {
	if n < 0 {
		n = 0
	}
	return &Collector{ch: make([]chanCounters, n)}
}

// NewNamedCollector returns a collector whose metrics carry a
// session="name" label in Prometheus exposition, for processes hosting
// several sessions.
func NewNamedCollector(name string, n int) *Collector {
	c := NewCollector(n)
	c.name = name
	return c
}

// N returns the channel count the collector was sized for; zero on a
// nil collector.
func (c *Collector) N() int {
	if c == nil {
		return 0
	}
	return len(c.ch)
}

// Name returns the collector's session label ("" when unnamed).
func (c *Collector) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// AddSink attaches a protocol event sink. Sinks receive every event
// emitted after attachment; attach before wiring the collector into a
// running engine to see everything.
func (c *Collector) AddSink(s Sink) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next []Sink
	if cur := c.sinks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, s)
	c.sinks.Store(&next)
}

// emit counts an event and fans it out to the attached sinks.
//
//stripe:hotpath
func (c *Collector) emit(k Kind, channel int, round uint64, value int64) {
	c.eventCounts[k].Add(1)
	sinks := c.sinks.Load()
	if sinks == nil {
		return
	}
	e := Event{Seq: c.eventSeq.Add(1), At: sinceEpoch(), Kind: k, Channel: channel, Round: round, Value: value}
	for _, s := range *sinks {
		s.Event(e)
	}
}

func (c *Collector) inRange(channel int) bool {
	return channel >= 0 && channel < len(c.ch)
}

// --- Sender-side hooks -------------------------------------------------

// OnStriped records one data packet of the given payload size striped
// onto channel. Senders that keep their own plain counters should
// prefer SyncStriped at a batch boundary; OnStriped is the per-packet
// convenience form. Do not mix the two on one collector: SyncStriped
// stores absolute totals and would clobber OnStriped's sums.
//
//stripe:hotpath
func (c *Collector) OnStriped(channel, size int) {
	if c == nil || !c.inRange(channel) {
		return
	}
	cc := &c.ch[channel]
	cc.stripedPkts.Add(1)
	cc.stripedBytes.Add(int64(size))
	atomicMax(&c.maxPkt, int64(size))
}

// SyncStriped publishes absolute striped totals for channel. The
// striper batches its hot-path accounting in plain fields (it is
// single-writer by design) and flushes them here at marker cadence, so
// enabling metrics costs no per-packet atomics on the transmit path.
// Totals must be monotone across calls to keep Prometheus counter
// semantics.
//
//stripe:hotpath
func (c *Collector) SyncStriped(channel int, pkts, bytes int64) {
	if c == nil || !c.inRange(channel) {
		return
	}
	cc := &c.ch[channel]
	cc.stripedPkts.Store(pkts)
	cc.stripedBytes.Store(bytes)
}

// SetMaxPacket raises the observed maximum packet size gauge.
func (c *Collector) SetMaxPacket(v int64) {
	if c == nil {
		return
	}
	atomicMax(&c.maxPkt, v)
}

// SetRound updates the sender's global round gauge. The store is
// elided when the round is unchanged, so per-packet callers pay a load
// (not a fenced store) on the common path.
func (c *Collector) SetRound(r uint64) {
	if c == nil {
		return
	}
	if c.round.Load() != r {
		c.round.Store(r)
	}
}

// SetSurplus updates channel's current deficit/surplus counter gauge.
func (c *Collector) SetSurplus(channel int, v int64) {
	if c == nil || !c.inRange(channel) {
		return
	}
	c.ch[channel].surplus.Store(v)
}

// SetQuantum records channel's configured quantum; the fairness gauge
// derives the per-channel fair share from it.
func (c *Collector) SetQuantum(channel int, q int64) {
	if c == nil || !c.inRange(channel) {
		return
	}
	c.ch[channel].quantum.Store(q)
}

// OnMarkerEmitted records one marker transmitted on channel.
func (c *Collector) OnMarkerEmitted(channel int) {
	if c == nil || !c.inRange(channel) {
		return
	}
	c.ch[channel].markersEmitted.Add(1)
}

// OnCreditExhausted records a send vetoed by flow control: the selected
// channel had less credit than the packet size.
func (c *Collector) OnCreditExhausted(channel, size int) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		c.ch[channel].blockedSends.Add(1)
	}
	c.emit(KindCreditExhausted, channel, c.round.Load(), int64(size))
}

// SetCreditRemaining updates channel's unused flow-control credit gauge.
func (c *Collector) SetCreditRemaining(channel int, v int64) {
	if c == nil || !c.inRange(channel) {
		return
	}
	c.ch[channel].credit.Store(v)
}

// AddCreditStall accumulates wall-clock time a sender spent blocked
// waiting for credits.
func (c *Collector) AddCreditStall(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.creditStall.Add(int64(d))
}

// OnCreditReconciled records a marker-position reconciliation on
// channel that wrote off lostBytes as lost and granted them back.
func (c *Collector) OnCreditReconciled(channel int, lostBytes int64) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		cc := &c.ch[channel]
		cc.reconciles.Add(1)
		cc.lostReconciled.Add(lostBytes)
	}
	c.emit(KindCreditReconcile, channel, c.round.Load(), lostBytes)
}

// OnCreditRejected records a wire grant the gate refused (out-of-range
// channel, negative value, or a grant beyond the sent + window bound).
func (c *Collector) OnCreditRejected(channel int) {
	if c == nil {
		return
	}
	c.creditRejects.Add(1)
}

// OnReset records a reset (sender broadcast or receiver application of
// one); value carries the new epoch.
func (c *Collector) OnReset(epoch uint64) {
	if c == nil {
		return
	}
	c.resets.Add(1)
	c.emit(KindReset, -1, c.round.Load(), int64(epoch))
}

// --- Receiver-side hooks -----------------------------------------------

// OnDelivered records one data packet delivered in order off channel.
// displacement is the reordering lateness in packets (0 = in order):
// how far behind the highest-ID delivery so far this packet arrived.
//
//stripe:hotpath
func (c *Collector) OnDelivered(channel, size int, displacement int64) {
	if c == nil || !c.inRange(channel) {
		return
	}
	cc := &c.ch[channel]
	cc.deliveredPkts.Add(1)
	cc.deliveredBytes.Add(int64(size))
	c.displacement.Observe(displacement)
}

// OnMarkerConsumed records one structurally valid marker consumed from
// channel.
//
//stripe:hotpath
func (c *Collector) OnMarkerConsumed(channel int) {
	if c == nil || !c.inRange(channel) {
		return
	}
	cc := &c.ch[channel]
	cc.markersConsumed.Add(1)
	cc.lastMarkerAt.Store(sinceEpoch())
}

// OnBadMarker records a marker dropped as corrupt or mis-addressed.
func (c *Collector) OnBadMarker() {
	if c == nil {
		return
	}
	c.badMarkers.Add(1)
}

// OnResync records a marker that changed receiver state for channel:
// the channel's expected round moved to round with the given deficit.
func (c *Collector) OnResync(channel int, round uint64, deficit int64) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		c.ch[channel].resyncs.Add(1)
	}
	c.emit(KindResync, channel, round, deficit)
}

// OnSkip records one skip-rule activation: the receiver passed over
// channel because its expected round is still ahead of G.
func (c *Collector) OnSkip(channel int, round uint64) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		c.ch[channel].skips.Add(1)
	}
	c.emit(KindSkip, channel, round, 0)
}

// OnFastForward records the receiver jumping its round from from to to
// because every channel was skip-listed.
func (c *Collector) OnFastForward(from, to uint64) {
	if c == nil {
		return
	}
	c.fastForwards.Add(1)
	c.emit(KindFastForward, -1, from, int64(to-from))
}

// OnSelfHeal records a self-stabilization event: the receiver adopted
// the state declared by uniformly stale markers, restarting at round.
func (c *Collector) OnSelfHeal(round uint64) {
	if c == nil {
		return
	}
	c.selfHeals.Add(1)
	c.emit(KindSelfHeal, -1, round, 0)
}

// OnOldEpochDrops records packets discarded while waiting out a reset.
func (c *Collector) OnOldEpochDrops(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.oldEpochDrops.Add(n)
}

// SetBuffered updates the resequencer buffer occupancy gauge and its
// high-water mark.
//
//stripe:hotpath
func (c *Collector) SetBuffered(n int64) {
	if c == nil {
		return
	}
	c.buffered.Store(n)
	atomicMax(&c.highWater, n)
}

// OnMarkerDrained records a marker consumed eagerly at arrival (head of
// an otherwise idle channel buffer) rather than in scan order.
func (c *Collector) OnMarkerDrained(channel int) {
	if c == nil || !c.inRange(channel) {
		return
	}
	c.ch[channel].markersDrained.Add(1)
}

// OnReseqOverflow records the resequencer's buffered-packet count
// crossing its configured cap on channel, escalating to forced
// delivery. dropped reports whether the arrival was discarded at the
// hard cap instead of buffered.
func (c *Collector) OnReseqOverflow(channel int, buffered int64, dropped bool) {
	if c == nil {
		return
	}
	c.reseqOverflows.Add(1)
	if dropped {
		c.overflowDrops.Add(1)
	}
	v := buffered
	if dropped {
		v = -buffered
	}
	c.emit(KindReseqOverflow, channel, c.round.Load(), v)
}

// --- Membership hooks --------------------------------------------------

// OnMemberJoin records channel (re)joining the live set. round is the
// round in which the serving scheduler first serves it. Both directions'
// engines fire it (a session's transmit admit and receive admit each
// count one join); only the transmit side may additionally rebase the
// fairness baseline, via RebaseFairness.
func (c *Collector) OnMemberJoin(channel int, round uint64) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		cc := &c.ch[channel]
		cc.joins.Add(1)
		cc.inactive.Store(false)
	}
	c.emit(KindMemberJoin, channel, round, 0)
}

// RebaseFairness resets channel's fairness baseline to (round, current
// striped bytes) so the Theorem 3.2 band measures the channel only over
// rounds it participates in. Only the transmit-side join path may call
// it, with round in the local striper's round space: a receive-side
// join's announced round belongs to the peer's striper — an unrelated
// round space — and rebasing to it would misstate the band by however
// far the two spaces diverge. Callers flush batched byte counters first
// so the byte position read here is exact.
func (c *Collector) RebaseFairness(channel int, round uint64) {
	if c == nil || !c.inRange(channel) {
		return
	}
	cc := &c.ch[channel]
	cc.baseRound.Store(round)
	cc.baseBytes.Store(cc.stripedBytes.Load())
}

// OnMemberDrain records channel leaving the live set. value carries the
// outstanding credit returned by gate teardown (sender side) or the
// buffered packets declared lost (receiver side).
func (c *Collector) OnMemberDrain(channel int, round uint64, value int64) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		cc := &c.ch[channel]
		cc.drains.Add(1)
		cc.inactive.Store(true)
	}
	c.emit(KindMemberDrain, channel, round, value)
}

// OnMemberEvict records the health monitor force-removing channel;
// value is the consecutive send-error count (or nanoseconds of marker
// silence). The transition itself also fires OnMemberDrain from the
// engines it tears down; this event marks that it was involuntary, and
// it is a flight-recorder dump trigger.
func (c *Collector) OnMemberEvict(channel int, value int64) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		c.ch[channel].evictions.Add(1)
	}
	c.emit(KindMemberEvict, channel, c.round.Load(), value)
}

// OnMemberReinstate records the health monitor re-admitting a
// previously evicted channel after observing recovery.
func (c *Collector) OnMemberReinstate(channel int) {
	if c == nil {
		return
	}
	if c.inRange(channel) {
		c.ch[channel].reinstates.Add(1)
	}
	c.emit(KindMemberReinstate, channel, c.round.Load(), 0)
}

// MemberActive reports the membership gauge for channel (true for
// channels never touched by membership hooks).
func (c *Collector) MemberActive(channel int) bool {
	if c == nil || !c.inRange(channel) {
		return false
	}
	return !c.ch[channel].inactive.Load()
}

// --- Channel hooks -----------------------------------------------------

// OnChannelLost records a packet dropped (lost or corrupted) by the
// physical channel itself.
func (c *Collector) OnChannelLost(channel int) {
	if c == nil || !c.inRange(channel) {
		return
	}
	c.ch[channel].lost.Add(1)
}

// SetChannelQueueDepth updates channel's transmit queue occupancy gauge.
func (c *Collector) SetChannelQueueDepth(channel int, depth int64) {
	if c == nil || !c.inRange(channel) {
		return
	}
	c.ch[channel].queueDepth.Store(depth)
}

// --- Derived metrics ---------------------------------------------------

// Fairness returns the live fairness gauge: the maximum over live
// channels of |K_i·Quantum_i − bytes_i| (K_i the rounds elapsed since
// the channel's fairness baseline — its construction or most recent
// rejoin — and bytes_i the data bytes striped onto it since then) and
// the theoretical bound Max + 2·max_i(Quantum_i) of Theorem 3.2. With
// static membership the baselines are zero and this is the original
// since-construction gauge. Channels currently out of the live set are
// excluded: the theorem quantifies over the surviving set. Both results
// are zero until a round completes or when quanta were never registered
// (non-round-based schedulers).
func (c *Collector) Fairness() (discrepancy, bound int64) {
	if c == nil {
		return 0, 0
	}
	k := c.round.Load()
	if k == 0 {
		return 0, 0
	}
	var maxQ int64
	for i := range c.ch {
		cc := &c.ch[i]
		q := cc.quantum.Load()
		if q <= 0 || cc.inactive.Load() {
			continue
		}
		if q > maxQ {
			maxQ = q
		}
		base := cc.baseRound.Load()
		if base >= k {
			// Joined for a future round; no participation to measure yet.
			continue
		}
		// k > base >= 0, so the difference fits int64 for any realistic
		// round count
		ki := int64(k - base)
		d := ki*q - (cc.stripedBytes.Load() - cc.baseBytes.Load())
		if d < 0 {
			d = -d
		}
		if d > discrepancy {
			discrepancy = d
		}
	}
	if maxQ == 0 {
		return 0, 0
	}
	return discrepancy, c.maxPkt.Load() + 2*maxQ
}

// --- Snapshot ----------------------------------------------------------

// ChannelSnapshot is a point-in-time copy of one channel's counters.
type ChannelSnapshot struct {
	StripedPackets   int64
	StripedBytes     int64
	DeliveredPackets int64
	DeliveredBytes   int64
	MarkersEmitted   int64
	MarkersConsumed  int64
	Resyncs          int64
	Skips            int64
	BlockedSends     int64
	Lost             int64
	QueueDepth       int64
	Surplus          int64
	Quantum          int64
	CreditRemaining  int64
	MarkersDrained   int64
	CreditReconciles int64
	LostReconciled   int64

	// Lifecycle counters and the live-set gauge for dynamic membership.
	MemberJoins      int64
	MemberDrains     int64
	MemberEvictions  int64
	MemberReinstates int64
	MemberActive     bool
}

// Snapshot is a point-in-time copy of every metric the collector holds,
// plus the derived fairness gauge. It is what Session.Snapshot,
// Sender.Snapshot and Receiver.Snapshot return, what expvar publishes
// as JSON, and the source of the Prometheus exposition.
type Snapshot struct {
	Name     string `json:",omitempty"`
	Channels []ChannelSnapshot

	Round     uint64
	MaxPacket int64

	Resets        int64
	SelfHeals     int64
	FastForwards  int64
	BadMarkers    int64
	OldEpochDrops int64

	CreditStall   time.Duration // total time senders spent credit-blocked
	CreditRejects int64         // wire grants refused by the gate

	Buffered          int64 // resequencer buffer occupancy now
	BufferedHighWater int64
	ReseqOverflows    int64 // buffer-cap escalations
	OverflowDrops     int64 // arrivals discarded at the hard cap

	// FairnessDiscrepancy is max_i |K·Quantum_i − bytes_i|;
	// FairnessBound is the Theorem 3.2 ceiling Max + 2·Quantum. A
	// discrepancy above the bound means the fairness invariant broke —
	// visible here as a metric, not just a test failure.
	FairnessDiscrepancy int64
	FairnessBound       int64

	Displacement HistogramSnapshot

	// Lifecycle is the attached packet tracer's aggregates; nil when no
	// tracer is attached.
	Lifecycle *TracerSnapshot `json:",omitempty"`

	// Windows is the attached rollup engine's latest publication: the
	// windowed per-channel rates and health scores. Nil when no Windows
	// is attached or it has not folded yet.
	Windows *WindowsSnapshot `json:",omitempty"`

	// Peer is the attached peer view's latest publication: the remote
	// resequencer's reported loss/occupancy and the cross-endpoint
	// delay estimates. Nil when no PeerView is attached or no telemetry
	// has arrived yet.
	Peer *PeerSnapshot `json:",omitempty"`

	// InvariantViolations counts invariant-checker findings; any nonzero
	// value means a protocol theorem was observed broken at runtime.
	// Violations holds the most recent findings, oldest first.
	InvariantViolations int64       `json:",omitempty"`
	Violations          []Violation `json:",omitempty"`

	Events map[string]int64 `json:",omitempty"` // per-kind event counts
}

// Snapshot returns a consistent-enough copy of all counters (each field
// is read atomically; the set is not a single atomic cut, which metrics
// scraping never needs). Safe on nil (returns the zero Snapshot).
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Name:              c.name,
		Channels:          make([]ChannelSnapshot, len(c.ch)),
		Round:             c.round.Load(),
		MaxPacket:         c.maxPkt.Load(),
		Resets:            c.resets.Load(),
		SelfHeals:         c.selfHeals.Load(),
		FastForwards:      c.fastForwards.Load(),
		BadMarkers:        c.badMarkers.Load(),
		OldEpochDrops:     c.oldEpochDrops.Load(),
		CreditStall:       time.Duration(c.creditStall.Load()),
		CreditRejects:     c.creditRejects.Load(),
		Buffered:          c.buffered.Load(),
		BufferedHighWater: c.highWater.Load(),
		ReseqOverflows:    c.reseqOverflows.Load(),
		OverflowDrops:     c.overflowDrops.Load(),
		Displacement:      c.displacement.Snapshot(),
	}
	for i := range c.ch {
		cc := &c.ch[i]
		s.Channels[i] = ChannelSnapshot{
			StripedPackets:   cc.stripedPkts.Load(),
			StripedBytes:     cc.stripedBytes.Load(),
			DeliveredPackets: cc.deliveredPkts.Load(),
			DeliveredBytes:   cc.deliveredBytes.Load(),
			MarkersEmitted:   cc.markersEmitted.Load(),
			MarkersConsumed:  cc.markersConsumed.Load(),
			Resyncs:          cc.resyncs.Load(),
			Skips:            cc.skips.Load(),
			BlockedSends:     cc.blockedSends.Load(),
			Lost:             cc.lost.Load(),
			QueueDepth:       cc.queueDepth.Load(),
			Surplus:          cc.surplus.Load(),
			Quantum:          cc.quantum.Load(),
			CreditRemaining:  cc.credit.Load(),
			MarkersDrained:   cc.markersDrained.Load(),
			CreditReconciles: cc.reconciles.Load(),
			LostReconciled:   cc.lostReconciled.Load(),
			MemberJoins:      cc.joins.Load(),
			MemberDrains:     cc.drains.Load(),
			MemberEvictions:  cc.evictions.Load(),
			MemberReinstates: cc.reinstates.Load(),
			MemberActive:     !cc.inactive.Load(),
		}
	}
	s.FairnessDiscrepancy, s.FairnessBound = c.Fairness()
	if t := c.tracer.Load(); t != nil {
		ts := t.Snapshot()
		s.Lifecycle = &ts
	}
	if w := c.windows.Load(); w != nil {
		s.Windows = w.Latest()
	}
	if pv := c.peer.Load(); pv != nil {
		s.Peer = pv.Latest()
	}
	if ck := c.checker.Load(); ck != nil {
		s.InvariantViolations = ck.ViolationCount()
		s.Violations = ck.Violations()
	}
	for k := Kind(0); k < nKinds; k++ {
		if n := c.eventCounts[k].Load(); n != 0 {
			if s.Events == nil {
				s.Events = make(map[string]int64, int(nKinds))
			}
			s.Events[k.String()] = n
		}
	}
	return s
}

// atomicMax raises *a to v if v is larger, without locking.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
