// Per-channel health scoring: a composable 0-100 score with reason
// codes, computed from one WindowSpan's windowed evidence. The session
// health monitor consumes it as an evidence-based eviction signal
// alongside the error-streak rule; stripetop and the
// /debug/stripe/health endpoint render it for humans.
//
// The score is deliberately built from time-independent fractions
// (loss fraction, resyncs per marker, blocked-send fraction) plus two
// relative latency signals (EWMA vs. the bundle median, marker-spread
// skew), so it behaves identically in a deterministic harness folding
// windows back-to-back and in a wall-clock session folding once a
// second.
package obs

import (
	"sort"
	"time"
)

// Health reason codes, ordered in HealthScore.Reasons by deduction
// size (largest first).
const (
	// HealthInactive marks an evicted or drained channel: score 0.
	HealthInactive = "inactive"
	// HealthLoss: windowed loss fraction (channel drops or credit
	// write-offs) is eating the score; full deduction at 33% loss.
	HealthLoss = "loss"
	// HealthResync: markers keep finding the receiver out of sync on
	// this channel — loss/reorder at marker granularity.
	HealthResync = "resync"
	// HealthStall: flow control is vetoing a large fraction of send
	// attempts on this channel (credit starvation).
	HealthStall = "stall"
	// HealthLatency: the channel's send-latency EWMA runs well above
	// the bundle median.
	HealthLatency = "latency"
	// HealthSkew: the channel's marker arrivals lag the freshest
	// channel's by more than the skew budget.
	HealthSkew = "skew"
	// HealthSilence: other channels delivered markers this window but
	// this one delivered none despite having before — the strongest
	// sign of a dead or wedged link. Caps the score at 20.
	HealthSilence = "silence"
)

// Scoring weights and knees. Deductions scale linearly from zero at a
// healthy reading to the full weight at the knee; the weights sum to
// a little over 100 so a channel failing on every axis pins to zero.
const (
	healthLossWeight   = 45
	healthLossKnee     = 1.0 / 3 // full deduction at 33% loss
	healthResyncWeight = 20      // full deduction when every marker resyncs
	healthStallWeight  = 15
	healthStallKnee    = 0.5 // full deduction when half of sends are vetoed
	healthLatWeight    = 15
	healthLatRatioLo   = 2.0 // deduction starts at 2x the bundle median
	healthLatRatioHi   = 6.0 // full deduction at 6x
	healthSkewWeight   = 10
	healthSkewBudget   = 250 * time.Millisecond // deduction starts here
	healthSkewKnee     = time.Second            // full deduction here
	healthSilenceCap   = 20
	healthReasonMin    = 2 // deductions below this many points carry no reason code
)

// HealthScore grades one channel 0 (dead) to 100 (clean) over the
// rollup's scoring span, with reason codes for every material
// deduction, largest first.
type HealthScore struct {
	Channel int
	Score   int
	Reasons []string `json:",omitempty"`
}

// Degraded reports whether the score is below threshold. Convenience
// for monitors; a zero threshold never matches.
func (h HealthScore) Degraded(threshold int) bool {
	return threshold > 0 && h.Score < threshold
}

// healthForSpan scores every channel from one span's windowed rates.
func healthForSpan(sp *WindowSpan) []HealthScore {
	scores := make([]HealthScore, len(sp.Channels))
	// Bundle median latency EWMA across active channels with a
	// reading: the baseline the "latency" deduction is relative to.
	lats := make([]int64, 0, len(sp.Channels))
	markersFlowing := false
	for i := range sp.Channels {
		c := &sp.Channels[i]
		if !c.Active {
			continue
		}
		if c.LatencyEWMA > 0 {
			lats = append(lats, c.LatencyEWMA)
		}
		if c.MarkersInWindow > 0 {
			markersFlowing = true
		}
	}
	var medianLat int64
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		medianLat = lats[len(lats)/2]
	}
	for i := range sp.Channels {
		scores[i] = scoreChannel(&sp.Channels[i], medianLat, markersFlowing)
	}
	return scores
}

// deduction is one named score penalty.
type deduction struct {
	code   string
	points int
}

// scoreChannel grades one channel against the bundle baseline.
func scoreChannel(c *ChannelRates, medianLat int64, markersFlowing bool) HealthScore {
	if !c.Active {
		return HealthScore{Channel: c.Channel, Score: 0, Reasons: []string{HealthInactive}}
	}
	deds := make([]deduction, 0, 6)
	add := func(code string, weight int, f float64) {
		if f <= 0 {
			return
		}
		if f > 1 {
			f = 1
		}
		deds = append(deds, deduction{code, int(float64(weight)*f + 0.5)})
	}
	add(HealthLoss, healthLossWeight, c.LossFrac/healthLossKnee)
	add(HealthResync, healthResyncWeight, c.ResyncFrac)
	add(HealthStall, healthStallWeight, c.BlockedFrac/healthStallKnee)
	if medianLat > 0 && c.LatencyEWMA > 0 {
		ratio := float64(c.LatencyEWMA) / float64(medianLat)
		add(HealthLatency, healthLatWeight, (ratio-healthLatRatioLo)/(healthLatRatioHi-healthLatRatioLo))
	}
	if c.DelaySkew > int64(healthSkewBudget) {
		add(HealthSkew, healthSkewWeight,
			float64(c.DelaySkew-int64(healthSkewBudget))/float64(healthSkewKnee-healthSkewBudget))
	}

	score := 100
	sort.SliceStable(deds, func(a, b int) bool { return deds[a].points > deds[b].points })
	var reasons []string
	for _, d := range deds {
		score -= d.points
		if d.points >= healthReasonMin {
			reasons = append(reasons, d.code)
		}
	}

	// Marker silence: the bundle delivered markers this window, this
	// channel has delivered markers before, but produced none now. The
	// channel may be entirely dead (no loss evidence at all), so this
	// caps the score rather than deducting.
	if markersFlowing && c.MarkersInWindow == 0 && c.MarkerAge > 0 {
		if score > healthSilenceCap {
			score = healthSilenceCap
		}
		reasons = append(reasons, HealthSilence)
	}

	if score < 0 {
		score = 0
	}
	return HealthScore{Channel: c.Channel, Score: score, Reasons: reasons}
}

// HealthReport is the /debug/stripe/health payload for one collector:
// session identity, the point-in-time protocol gauges a dashboard
// needs next to the windowed view, and the latest rollup.
type HealthReport struct {
	// Session is the collector's name ("" for unnamed collectors).
	Session string `json:",omitempty"`
	// AtNs is the report instant on the process timebase.
	AtNs  int64
	Round uint64
	// ActiveChannels counts channels currently in the striping set.
	ActiveChannels int
	Channels       int
	// FairnessDiscrepancy / FairnessBound: Theorem 3.2 band, as in
	// Snapshot.
	FairnessDiscrepancy int64
	FairnessBound       int64
	Buffered            int64
	CreditStallNs       int64
	// Windows is the latest rollup, nil when none is attached or it
	// has not folded yet.
	Windows *WindowsSnapshot `json:",omitempty"`
	// Peer is the peer-reported telemetry view, nil when none is
	// attached or no telemetry has arrived yet.
	Peer *PeerSnapshot `json:",omitempty"`
	// Events are the cumulative protocol-event counts by kind; pollers
	// difference successive reports to show recent protocol activity.
	Events map[string]int64 `json:",omitempty"`
}

// HealthReport assembles the live health view of this collector. Safe
// on nil (returns the zero report).
func (c *Collector) HealthReport() HealthReport {
	if c == nil {
		return HealthReport{}
	}
	r := HealthReport{
		Session:       c.name,
		AtNs:          sinceEpoch(),
		Round:         c.round.Load(),
		Channels:      len(c.ch),
		Buffered:      c.buffered.Load(),
		CreditStallNs: c.creditStall.Load(),
	}
	for i := range c.ch {
		if !c.ch[i].inactive.Load() {
			r.ActiveChannels++
		}
	}
	r.FairnessDiscrepancy, r.FairnessBound = c.Fairness()
	if w := c.windows.Load(); w != nil {
		r.Windows = w.Latest()
	}
	if pv := c.peer.Load(); pv != nil {
		r.Peer = pv.Latest()
	}
	for k := Kind(0); k < nKinds; k++ {
		if n := c.eventCounts[k].Load(); n != 0 {
			if r.Events == nil {
				r.Events = make(map[string]int64, int(nKinds))
			}
			r.Events[k.String()] = n
		}
	}
	return r
}
