package obs

import (
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusLifecycle is the golden-ish exposition test for
// the tracing layer: every lifecycle metric renders with the right name
// and TYPE, histogram buckets are cumulative and monotone in le, and
// the invariant counter is present on every collector.
func TestWritePrometheusLifecycle(t *testing.T) {
	c := NewNamedCollector("lt", 2)
	tr := NewTracer(TracerConfig{Sample: 1})
	c.SetTracer(tr)
	k := NewChecker()
	c.SetChecker(k)
	for key := uint64(0); key < 100; key++ {
		c.TraceGated(key)
		c.TraceSend(key, int(key%2))
		c.TraceArrive(key, int(key%2))
		c.TraceDeliver(key, int64(key%3))
	}
	c.SetRound(5)
	c.RunChecks()
	c.SetRound(1)
	c.RunChecks() // one seeded violation

	var sb strings.Builder
	WritePrometheus(&sb, c)
	out := sb.String()

	for _, want := range []string{
		"# TYPE stripe_latency_e2e_nanoseconds histogram",
		"# TYPE stripe_latency_reseq_nanoseconds histogram",
		"# TYPE stripe_latency_hol_nanoseconds histogram",
		"# TYPE stripe_latency_send_stall_nanoseconds histogram",
		"# TYPE stripe_trace_sample_period gauge",
		"# TYPE stripe_trace_tracked_total counter",
		"# TYPE stripe_trace_evicted_total counter",
		"# TYPE stripe_trace_torn_total counter",
		"# TYPE stripe_invariant_violations_total counter",
		`stripe_latency_e2e_nanoseconds_bucket{session="lt",le="+Inf"} 100`,
		`stripe_latency_e2e_nanoseconds_count{session="lt"} 100`,
		`stripe_trace_sample_period{session="lt"} 1`,
		`stripe_trace_tracked_total{session="lt"} 100`,
		`stripe_invariant_violations_total{session="lt"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q\n%s", want, out)
		}
	}

	// Buckets must be cumulative: counts non-decreasing as le grows,
	// ending at the _count value.
	var prev, last int64
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `stripe_latency_e2e_nanoseconds_bucket`) {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-cumulative buckets at %q", line)
		}
		prev, last = v, v
		seen++
	}
	if seen != nBuckets || last != 100 {
		t.Fatalf("saw %d bucket lines, last %d", seen, last)
	}

	// A tracer-less collector on the same endpoint renders no lifecycle
	// samples but still renders the invariant counter.
	plain := NewNamedCollector("plain", 1)
	sb.Reset()
	WritePrometheus(&sb, c, plain)
	out = sb.String()
	if strings.Contains(out, `stripe_trace_tracked_total{session="plain"}`) {
		t.Fatal("tracer-less collector rendered lifecycle samples")
	}
	if !strings.Contains(out, `stripe_invariant_violations_total{session="plain"} 0`) {
		t.Fatalf("missing invariant counter for plain collector\n%s", out)
	}
	// HELP/TYPE still appear exactly once.
	if n := strings.Count(out, "# TYPE stripe_latency_e2e_nanoseconds histogram"); n != 1 {
		t.Fatalf("TYPE line appears %d times", n)
	}
}
