package trace

import (
	"math"
	"math/rand"
)

// ArrivalGen produces packet interarrival gaps in nanoseconds, for
// open-loop (non-TCP) sources in the simulator.
type ArrivalGen interface {
	// NextGap returns the time until the next packet, in nanoseconds.
	NextGap() int64
}

// CBR emits perfectly periodic arrivals.
type CBR struct {
	// GapNs is the constant interarrival time in nanoseconds.
	GapNs int64
}

// NextGap implements ArrivalGen.
func (c CBR) NextGap() int64 { return c.GapNs }

// Poisson emits exponentially distributed interarrival times — the
// classic open-loop datagram traffic model.
type Poisson struct {
	mean float64
	rng  *rand.Rand
}

// NewPoisson returns a Poisson process with the given mean interarrival
// time in nanoseconds.
func NewPoisson(meanNs float64, seed int64) *Poisson {
	if meanNs <= 0 {
		meanNs = 1
	}
	return &Poisson{mean: meanNs, rng: rand.New(rand.NewSource(seed))}
}

// NextGap implements ArrivalGen.
func (p *Poisson) NextGap() int64 {
	u := p.rng.Float64()
	for u == 0 {
		u = p.rng.Float64()
	}
	g := int64(-math.Log(u) * p.mean)
	if g < 1 {
		g = 1
	}
	return g
}

// OnOff alternates between bursts of back-to-back arrivals and idle
// gaps, a crude model of frame-structured or interactive traffic.
type OnOff struct {
	// BurstLen is the number of packets per burst.
	BurstLen int
	// InBurstGapNs separates packets inside a burst.
	InBurstGapNs int64
	// IdleGapNs separates bursts.
	IdleGapNs int64
	i         int
}

// NextGap implements ArrivalGen.
func (o *OnOff) NextGap() int64 {
	o.i++
	if o.BurstLen > 0 && o.i%o.BurstLen == 0 {
		return o.IdleGapNs
	}
	return o.InBurstGapNs
}
