package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSizesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sizes.strf")
	want := []int{1, 200, 1500, 64, 9000}
	if err := SaveSizes(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSizes(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestReplayCycles(t *testing.T) {
	r, err := NewReplay([]int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30, 10, 20, 30, 10}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
	if r.Max() != 30 || r.Len() != 3 {
		t.Fatalf("Max=%d Len=%d", r.Max(), r.Len())
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Error("empty replay accepted")
	}
	if _, err := NewReplay([]int{5, 0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestVideoFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "video.strf")
	v, err := SynthesizeVideo(VideoConfig{Frames: 60, GOP: 6, IMean: 6000, PMean: 1200, MTU: 512, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveVideo(path, v); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVideo(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MTU != v.MTU || len(got.FrameBytes) != len(v.FrameBytes) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Packets) != len(v.Packets) {
		t.Fatalf("packets %d, want %d", len(got.Packets), len(v.Packets))
	}
	for i := range v.Packets {
		if got.Packets[i] != v.Packets[i] {
			t.Fatalf("packet %d = %+v, want %+v", i, got.Packets[i], v.Packets[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSizes(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("not a trace"), 0o644)
	if _, err := LoadSizes(bad); err == nil {
		t.Error("garbage loaded")
	}
	// Kind mismatch.
	sizes := filepath.Join(dir, "sizes.strf")
	if err := SaveSizes(sizes, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadVideo(sizes); err == nil {
		t.Error("size trace loaded as video")
	}
	// Truncated body.
	b, _ := os.ReadFile(sizes)
	trunc := filepath.Join(dir, "trunc.strf")
	os.WriteFile(trunc, b[:len(b)-3], 0o644)
	if _, err := LoadSizes(trunc); err == nil {
		t.Error("truncated trace loaded")
	}
	// Bad version.
	b2 := append([]byte(nil), b...)
	b2[4] = 99
	ver := filepath.Join(dir, "ver.strf")
	os.WriteFile(ver, b2, 0o644)
	if _, err := LoadSizes(ver); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	// Oversized entries rejected on save.
	if err := SaveSizes(filepath.Join(dir, "neg.strf"), []int{-1}); err == nil {
		t.Error("negative entry saved")
	}
}
