package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Trace files let workloads be generated once and replayed across
// experiments (the paper captured NV traces and replayed them through
// the striping prototype the same way).
//
// File layout (big endian):
//
//	0   4  magic "STRF"
//	4   1  version (1)
//	5   1  kind (1 = packet sizes, 2 = video frames)
//	6   4  reserved / MTU for video traces
//	10  4  entry count n
//	14  4*n entries (sizes in bytes, or frame sizes in bytes)

const (
	fileMagic   = "STRF"
	fileVersion = 1

	kindSizes byte = 1
	kindVideo byte = 2
)

// Errors returned by trace file parsing.
var (
	ErrBadTraceFile = errors.New("trace: not a trace file")
	ErrBadVersion   = errors.New("trace: unsupported trace version")
)

func writeFile(path string, kind byte, mtu uint32, entries []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	hdr := make([]byte, 14)
	copy(hdr[0:4], fileMagic)
	hdr[4] = fileVersion
	hdr[5] = kind
	binary.BigEndian.PutUint32(hdr[6:10], mtu)
	binary.BigEndian.PutUint32(hdr[10:14], uint32(len(entries)))
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		return err
	}
	var buf [4]byte
	for _, e := range entries {
		if e < 0 || e > 1<<31-1 {
			f.Close()
			return fmt.Errorf("trace: entry %d out of range", e)
		}
		binary.BigEndian.PutUint32(buf[:], uint32(e))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readFile(path string, wantKind byte) (mtu uint32, entries []int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, 14)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, ErrBadTraceFile
	}
	if string(hdr[0:4]) != fileMagic {
		return 0, nil, ErrBadTraceFile
	}
	if hdr[4] != fileVersion {
		return 0, nil, ErrBadVersion
	}
	if hdr[5] != wantKind {
		return 0, nil, fmt.Errorf("trace: file holds kind %d, want %d", hdr[5], wantKind)
	}
	mtu = binary.BigEndian.Uint32(hdr[6:10])
	n := binary.BigEndian.Uint32(hdr[10:14])
	if n > 1<<28 {
		return 0, nil, fmt.Errorf("trace: implausible entry count %d", n)
	}
	entries = make([]int, n)
	var buf [4]byte
	for i := range entries {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, nil, fmt.Errorf("trace: truncated at entry %d: %w", i, err)
		}
		entries[i] = int(binary.BigEndian.Uint32(buf[:]))
	}
	return mtu, entries, nil
}

// SaveSizes writes a packet-size trace.
func SaveSizes(path string, sizes []int) error {
	return writeFile(path, kindSizes, 0, sizes)
}

// LoadSizes reads a packet-size trace.
func LoadSizes(path string) ([]int, error) {
	_, sizes, err := readFile(path, kindSizes)
	return sizes, err
}

// Replay yields sizes from a recorded trace, cycling at the end so it
// satisfies SizeGen for arbitrarily long runs.
type Replay struct {
	sizes []int
	max   int
	i     int
}

// NewReplay wraps recorded sizes as a generator.
func NewReplay(sizes []int) (*Replay, error) {
	if len(sizes) == 0 {
		return nil, errors.New("trace: empty replay")
	}
	max := 0
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("trace: non-positive size %d", s)
		}
		if s > max {
			max = s
		}
	}
	return &Replay{sizes: sizes, max: max}, nil
}

// LoadReplay opens a size trace as a generator.
func LoadReplay(path string) (*Replay, error) {
	sizes, err := LoadSizes(path)
	if err != nil {
		return nil, err
	}
	return NewReplay(sizes)
}

// Next implements SizeGen.
func (r *Replay) Next() int {
	s := r.sizes[r.i]
	r.i = (r.i + 1) % len(r.sizes)
	return s
}

// Max implements SizeGen.
func (r *Replay) Max() int { return r.max }

// Len returns the recorded trace length.
func (r *Replay) Len() int { return len(r.sizes) }

// SaveVideo writes a video trace (frame sizes plus the packetization
// MTU).
func SaveVideo(path string, v *VideoTrace) error {
	return writeFile(path, kindVideo, uint32(v.MTU), v.FrameBytes)
}

// LoadVideo reads a video trace and re-packetizes it.
func LoadVideo(path string) (*VideoTrace, error) {
	mtu, frames, err := readFile(path, kindVideo)
	if err != nil {
		return nil, err
	}
	if mtu == 0 {
		return nil, fmt.Errorf("trace: video trace without MTU")
	}
	v := &VideoTrace{MTU: int(mtu), FrameBytes: frames}
	for f, size := range frames {
		for rem := size; rem > 0; {
			n := int(mtu)
			if rem < n {
				n = rem
			}
			rem -= n
			v.Packets = append(v.Packets, VideoPacket{Frame: f, Size: n, LastOfFrame: rem == 0})
		}
	}
	return v, nil
}
