package trace

import (
	"math"
	"testing"
)

func TestCBR(t *testing.T) {
	c := CBR{GapNs: 125}
	for i := 0; i < 10; i++ {
		if c.NextGap() != 125 {
			t.Fatal("CBR varied")
		}
	}
}

func TestPoissonMeanAndSpread(t *testing.T) {
	const mean = 50_000.0
	p := NewPoisson(mean, 3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := float64(p.NextGap())
		if g < 1 {
			t.Fatalf("gap %v < 1", g)
		}
		sum += g
		sumSq += g * g
	}
	m := sum / n
	if math.Abs(m-mean)/mean > 0.02 {
		t.Fatalf("mean %.0f, want ~%.0f", m, mean)
	}
	// Exponential: stddev == mean.
	sd := math.Sqrt(sumSq/n - m*m)
	if math.Abs(sd-mean)/mean > 0.05 {
		t.Fatalf("stddev %.0f, want ~%.0f (exponential)", sd, mean)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := NewPoisson(1000, 9)
	b := NewPoisson(1000, 9)
	for i := 0; i < 100; i++ {
		if a.NextGap() != b.NextGap() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPoissonDegenerateMean(t *testing.T) {
	p := NewPoisson(-5, 1)
	if g := p.NextGap(); g < 1 {
		t.Fatalf("gap %d", g)
	}
}

func TestOnOff(t *testing.T) {
	o := &OnOff{BurstLen: 3, InBurstGapNs: 10, IdleGapNs: 1000}
	var gaps []int64
	for i := 0; i < 9; i++ {
		gaps = append(gaps, o.NextGap())
	}
	idle := 0
	for _, g := range gaps {
		switch g {
		case 10:
		case 1000:
			idle++
		default:
			t.Fatalf("unexpected gap %d", g)
		}
	}
	if idle != 3 {
		t.Fatalf("%d idle gaps in 9 packets with burst 3, want 3", idle)
	}
}
