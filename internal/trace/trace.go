// Package trace generates the workloads of the paper's evaluation:
// random mixtures of small and large packets (the Figure 15 TCP
// workload), the deterministic alternating big/small sequence that
// defeats GRR (Section 6.2), uniform and constant mixes, and a synthetic
// NV-style video conference trace for the quasi-FIFO tolerance study
// (Section 6.3).
//
// Generators are deterministic under a seed so experiments are exactly
// reproducible.
//
// Despite the name, this package has nothing to do with protocol event
// tracing: it generates *input* traffic (packet-size traces). Runtime
// observability — per-channel metrics, protocol event streams, and the
// /metrics endpoint — lives in internal/obs.
package trace

import (
	"fmt"
	"math/rand"
)

// SizeGen produces a stream of packet payload sizes.
type SizeGen interface {
	// Next returns the next packet size in bytes.
	Next() int
	// Max returns the largest size the generator can produce, which the
	// caller uses to choose quanta satisfying Quantum >= Max.
	Max() int
}

// Constant yields a fixed size.
type Constant int

// Next implements SizeGen.
func (c Constant) Next() int { return int(c) }

// Max implements SizeGen.
func (c Constant) Max() int { return int(c) }

// Alternating cycles deterministically through Sizes. With
// {1000, 200} it is the adversarial workload of Section 6.2: under GRR
// on two equal channels every big packet lands on one channel and every
// small packet on the other.
type Alternating struct {
	Sizes []int
	i     int
}

// Next implements SizeGen.
func (a *Alternating) Next() int {
	s := a.Sizes[a.i%len(a.Sizes)]
	a.i++
	return s
}

// Max implements SizeGen.
func (a *Alternating) Max() int {
	m := 0
	for _, s := range a.Sizes {
		if s > m {
			m = s
		}
	}
	return m
}

// Uniform yields sizes uniformly in [Min, Max].
type Uniform struct {
	MinSize int
	MaxSize int
	rng     *rand.Rand
}

// NewUniform returns a seeded uniform generator.
func NewUniform(min, max int, seed int64) *Uniform {
	if max < min {
		min, max = max, min
	}
	return &Uniform{MinSize: min, MaxSize: max, rng: rand.New(rand.NewSource(seed))}
}

// Next implements SizeGen.
func (u *Uniform) Next() int {
	if u.MaxSize == u.MinSize {
		return u.MinSize
	}
	return u.MinSize + u.rng.Intn(u.MaxSize-u.MinSize+1)
}

// Max implements SizeGen.
func (u *Uniform) Max() int { return u.MaxSize }

// Bimodal yields Small with probability PSmall, otherwise Large — the
// "random mixture of small and large packets" the NetBSD measurements
// used.
type Bimodal struct {
	Small  int
	Large  int
	PSmall float64
	rng    *rand.Rand
}

// NewBimodal returns a seeded bimodal generator.
func NewBimodal(small, large int, pSmall float64, seed int64) *Bimodal {
	return &Bimodal{Small: small, Large: large, PSmall: pSmall, rng: rand.New(rand.NewSource(seed))}
}

// Next implements SizeGen.
func (b *Bimodal) Next() int {
	if b.rng.Float64() < b.PSmall {
		return b.Small
	}
	return b.Large
}

// Max implements SizeGen.
func (b *Bimodal) Max() int {
	if b.Small > b.Large {
		return b.Small
	}
	return b.Large
}

// VideoConfig synthesizes an NV-like video conference trace. NV (the
// network video tool the paper captured traces from) sends each frame
// as a burst of packets at a fixed frame rate, with occasional large
// intra-coded frames and smaller difference frames.
type VideoConfig struct {
	// Frames is the trace length in frames.
	Frames int
	// GOP is the intra-frame period: frame i is an I-frame when
	// i%GOP == 0.
	GOP int
	// IMean and PMean are mean frame sizes in bytes for I and P frames;
	// actual sizes vary ±25% uniformly.
	IMean, PMean int
	// MTU is the packetization size; frames are split into MTU-sized
	// packets with a smaller tail packet.
	MTU int
	// Seed drives the size jitter.
	Seed int64
}

// VideoPacket is one packet of a packetized video trace.
type VideoPacket struct {
	// Frame is the index of the frame this packet belongs to.
	Frame int
	// Size is the payload size in bytes.
	Size int
	// LastOfFrame marks the frame's final packet.
	LastOfFrame bool
}

// VideoTrace is a synthesized video stream.
type VideoTrace struct {
	// FrameBytes holds each frame's size in bytes.
	FrameBytes []int
	// Packets is the packetized stream in transmission order.
	Packets []VideoPacket
	// MTU echoes the packetization size.
	MTU int
}

// SynthesizeVideo builds a reproducible NV-like trace.
func SynthesizeVideo(cfg VideoConfig) (*VideoTrace, error) {
	if cfg.Frames <= 0 || cfg.GOP <= 0 || cfg.MTU <= 0 {
		return nil, fmt.Errorf("trace: Frames, GOP and MTU must be positive (got %d, %d, %d)", cfg.Frames, cfg.GOP, cfg.MTU)
	}
	if cfg.IMean <= 0 || cfg.PMean <= 0 {
		return nil, fmt.Errorf("trace: frame size means must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := &VideoTrace{MTU: cfg.MTU, FrameBytes: make([]int, cfg.Frames)}
	jitter := func(mean int) int {
		lo := mean * 3 / 4
		hi := mean * 5 / 4
		return lo + rng.Intn(hi-lo+1)
	}
	for f := 0; f < cfg.Frames; f++ {
		size := jitter(cfg.PMean)
		if f%cfg.GOP == 0 {
			size = jitter(cfg.IMean)
		}
		v.FrameBytes[f] = size
		for rem := size; rem > 0; {
			n := cfg.MTU
			if rem < n {
				n = rem
			}
			rem -= n
			v.Packets = append(v.Packets, VideoPacket{Frame: f, Size: n, LastOfFrame: rem == 0})
		}
	}
	return v, nil
}

// FrameOfPacket maps a packet index (into Packets) to its frame.
func (v *VideoTrace) FrameOfPacket(i int) int { return v.Packets[i].Frame }

// PacketsPerFrame returns how many packets each frame was split into.
func (v *VideoTrace) PacketsPerFrame() []int {
	n := make([]int, len(v.FrameBytes))
	for _, p := range v.Packets {
		n[p.Frame]++
	}
	return n
}
