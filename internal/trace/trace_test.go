package trace

import (
	"testing"
)

func TestConstant(t *testing.T) {
	c := Constant(512)
	for i := 0; i < 5; i++ {
		if c.Next() != 512 {
			t.Fatal("Constant varied")
		}
	}
	if c.Max() != 512 {
		t.Fatalf("Max = %d", c.Max())
	}
}

func TestAlternating(t *testing.T) {
	a := &Alternating{Sizes: []int{1000, 200}}
	want := []int{1000, 200, 1000, 200, 1000}
	for i, w := range want {
		if got := a.Next(); got != w {
			t.Fatalf("packet %d size %d, want %d", i, got, w)
		}
	}
	if a.Max() != 1000 {
		t.Fatalf("Max = %d", a.Max())
	}
}

func TestUniformRange(t *testing.T) {
	u := NewUniform(100, 200, 1)
	for i := 0; i < 1000; i++ {
		s := u.Next()
		if s < 100 || s > 200 {
			t.Fatalf("size %d outside [100,200]", s)
		}
	}
	if u.Max() != 200 {
		t.Fatalf("Max = %d", u.Max())
	}
	// Swapped bounds are normalised.
	u = NewUniform(300, 100, 1)
	if u.MinSize != 100 || u.MaxSize != 300 {
		t.Fatalf("bounds not normalised: %d..%d", u.MinSize, u.MaxSize)
	}
	// Degenerate range.
	u = NewUniform(64, 64, 1)
	if u.Next() != 64 {
		t.Fatal("degenerate uniform wrong")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := NewUniform(1, 1500, 99)
	b := NewUniform(1, 1500, 99)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBimodalMix(t *testing.T) {
	b := NewBimodal(200, 1000, 0.5, 7)
	var small, large int
	for i := 0; i < 10000; i++ {
		switch b.Next() {
		case 200:
			small++
		case 1000:
			large++
		default:
			t.Fatal("unexpected size")
		}
	}
	if small < 4700 || small > 5300 {
		t.Fatalf("small fraction %d/10000, want ~5000", small)
	}
	if b.Max() != 1000 {
		t.Fatalf("Max = %d", b.Max())
	}
	if bb := NewBimodal(1500, 40, 0.5, 1); bb.Max() != 1500 {
		t.Fatalf("Max with swapped sizes = %d", bb.Max())
	}
}

func TestSynthesizeVideo(t *testing.T) {
	cfg := VideoConfig{Frames: 100, GOP: 10, IMean: 8000, PMean: 2000, MTU: 1024, Seed: 3}
	v, err := SynthesizeVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.FrameBytes) != 100 {
		t.Fatalf("frames = %d", len(v.FrameBytes))
	}
	// I-frames are visibly larger than P-frames on average.
	var iSum, pSum, iN, pN int
	for f, b := range v.FrameBytes {
		if f%10 == 0 {
			iSum += b
			iN++
		} else {
			pSum += b
			pN++
		}
	}
	if iSum/iN <= pSum/pN*2 {
		t.Fatalf("I mean %d not much larger than P mean %d", iSum/iN, pSum/pN)
	}
	// Packetization conserves bytes and respects the MTU.
	perFrame := make([]int, 100)
	for i, p := range v.Packets {
		if p.Size <= 0 || p.Size > 1024 {
			t.Fatalf("packet %d size %d", i, p.Size)
		}
		perFrame[p.Frame] += p.Size
	}
	for f := range perFrame {
		if perFrame[f] != v.FrameBytes[f] {
			t.Fatalf("frame %d packetized to %d bytes, want %d", f, perFrame[f], v.FrameBytes[f])
		}
	}
	// Exactly one LastOfFrame per frame, and it is the frame's final
	// packet in stream order.
	last := make([]int, 100)
	for i, p := range v.Packets {
		if p.LastOfFrame {
			last[p.Frame]++
		}
		if i > 0 && v.Packets[i-1].Frame > p.Frame {
			t.Fatal("packets out of frame order")
		}
	}
	for f, n := range last {
		if n != 1 {
			t.Fatalf("frame %d has %d LastOfFrame markers", f, n)
		}
	}
	// FrameOfPacket and PacketsPerFrame agree.
	ppf := v.PacketsPerFrame()
	count := 0
	for i := range v.Packets {
		if v.FrameOfPacket(i) == 0 {
			count++
		}
	}
	if count != ppf[0] {
		t.Fatalf("frame 0: FrameOfPacket count %d != PacketsPerFrame %d", count, ppf[0])
	}
}

func TestSynthesizeVideoValidation(t *testing.T) {
	bad := []VideoConfig{
		{Frames: 0, GOP: 1, IMean: 1, PMean: 1, MTU: 1},
		{Frames: 1, GOP: 0, IMean: 1, PMean: 1, MTU: 1},
		{Frames: 1, GOP: 1, IMean: 0, PMean: 1, MTU: 1},
		{Frames: 1, GOP: 1, IMean: 1, PMean: 0, MTU: 1},
		{Frames: 1, GOP: 1, IMean: 1, PMean: 1, MTU: 0},
	}
	for i, cfg := range bad {
		if _, err := SynthesizeVideo(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSynthesizeVideoDeterministic(t *testing.T) {
	cfg := VideoConfig{Frames: 50, GOP: 8, IMean: 6000, PMean: 1500, MTU: 512, Seed: 42}
	a, _ := SynthesizeVideo(cfg)
	b, _ := SynthesizeVideo(cfg)
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatal("same seed produced different packets")
		}
	}
}
