package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAnalyzeOrderInOrder(t *testing.T) {
	r := AnalyzeOrder([]uint64{1, 2, 5, 9})
	if r.OutOfOrder != 0 || r.Inversions != 0 || r.MaxDisplacement != 0 {
		t.Fatalf("in-order sequence scored %+v", r)
	}
	if r.Delivered != 4 {
		t.Fatalf("Delivered = %d", r.Delivered)
	}
}

func TestAnalyzeOrderEmpty(t *testing.T) {
	r := AnalyzeOrder(nil)
	if r.Delivered != 0 || r.OutOfOrderFraction() != 0 {
		t.Fatalf("empty sequence scored %+v", r)
	}
}

func TestAnalyzeOrderKnownShuffle(t *testing.T) {
	// 3 arrives after 5 and 4: one late... (3 < max 5); 4 also late
	// relative to 5. Sequence: 1,5,4,3 -> late: 5>1 no; 4<5 yes; 3<5 yes.
	r := AnalyzeOrder([]uint64{1, 5, 4, 3})
	if r.OutOfOrder != 2 {
		t.Fatalf("OutOfOrder = %d, want 2", r.OutOfOrder)
	}
	// Inversions: (5,4), (5,3), (4,3) = 3.
	if r.Inversions != 3 {
		t.Fatalf("Inversions = %d, want 3", r.Inversions)
	}
	// Ranks: 1->0, 3->1, 4->2, 5->3. Positions: 1@0, 5@1, 4@2, 3@3.
	// Displacements: 0, |1-3|=2, 0, |3-1|=2.
	if r.MaxDisplacement != 2 {
		t.Fatalf("MaxDisplacement = %d, want 2", r.MaxDisplacement)
	}
	if f := r.OutOfOrderFraction(); f != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
}

// TestInversionsMatchesBruteForce cross-checks the merge-sort counter
// against the O(n^2) definition.
func TestInversionsMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(rng.Intn(100))
		}
		var brute int64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if ids[i] > ids[j] {
					brute++
				}
			}
		}
		return AnalyzeOrder(ids).Inversions == brute
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstInOrderSuffix(t *testing.T) {
	for _, tc := range []struct {
		ids  []uint64
		want int
	}{
		{nil, 0},
		{[]uint64{1, 2, 3}, 0},
		{[]uint64{3, 1, 2}, 1},
		{[]uint64{5, 4, 3}, 2},
		{[]uint64{1, 3, 2, 4, 5, 6}, 2},
	} {
		if got := FirstInOrderSuffix(tc.ids); got != tc.want {
			t.Errorf("FirstInOrderSuffix(%v) = %d, want %d", tc.ids, got, tc.want)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]int64{100, 100, 100}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("even split index = %v", got)
	}
	if got := JainIndex([]int64{300, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("single-channel index = %v, want 1/3", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty index = %v", got)
	}
	if got := JainIndex([]int64{0, 0}); got != 1 {
		t.Fatalf("all-zero index = %v, want 1", got)
	}
}

func TestMaxImbalance(t *testing.T) {
	if got := MaxImbalance([]int64{5, 9, 7}); got != 4 {
		t.Fatalf("imbalance = %d, want 4", got)
	}
	if got := MaxImbalance(nil); got != 0 {
		t.Fatalf("empty imbalance = %d", got)
	}
}

func TestMbps(t *testing.T) {
	if got := Mbps(1250000, 1); got != 10 {
		t.Fatalf("Mbps = %v, want 10", got)
	}
	if got := Mbps(100, 0); got != 0 {
		t.Fatalf("zero-span Mbps = %v", got)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add(625000)
	m.Add(625000)
	if m.Bytes() != 1250000 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
	if got := m.RateMbps(1); got != 10 {
		t.Fatalf("RateMbps = %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{
		Title:  "Figure X",
		XLabel: "loss%",
		YLabel: "out-of-order",
		X:      []float64{0, 10, 20},
	}
	tb.AddColumn("srr", []float64{0, 1, 2})
	tb.AddColumn("rr", []float64{0, 3, 6})
	s := tb.String()
	for _, want := range []string{"Figure X", "loss%", "srr", "rr", "6.0000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	// A short column renders NaN rather than panicking.
	tb.AddColumn("short", []float64{1})
	if s := tb.String(); !strings.Contains(s, "NaN") {
		t.Fatalf("short column did not render NaN:\n%s", s)
	}
}

// TestAnalyzeOrderRandomPermutationConsistency checks internal
// consistency on random permutations: a fully sorted copy has no
// inversions, and metrics are non-negative.
func TestAnalyzeOrderRandomPermutationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = uint64(i)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	r := AnalyzeOrder(ids)
	if r.OutOfOrder <= 0 || r.Inversions <= 0 {
		t.Fatalf("shuffled sequence scored %+v", r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r = AnalyzeOrder(ids)
	if r.OutOfOrder != 0 || r.Inversions != 0 {
		t.Fatalf("sorted sequence scored %+v", r)
	}
}

func TestQuantile(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7}
	if got := Quantile(vals, 0); got != 1 {
		t.Fatalf("q0 = %d", got)
	}
	if got := Quantile(vals, 0.5); got != 5 {
		t.Fatalf("q50 = %d", got)
	}
	if got := Quantile(vals, 1); got != 9 {
		t.Fatalf("q100 = %d", got)
	}
	if got := Quantile(vals, 0.99); got != 9 {
		t.Fatalf("q99 = %d", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
	// Input must be untouched.
	if vals[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}
