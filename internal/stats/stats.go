// Package stats provides the measurement machinery the experiments use:
// reordering metrics over delivered packet IDs, throughput accounting,
// fairness indices, and small table/series formatters for regenerating
// the paper's figures as text.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Reorder summarises how far a delivered sequence deviates from FIFO.
type Reorder struct {
	// Delivered is the number of packets observed.
	Delivered int
	// OutOfOrder counts deliveries whose ID is smaller than some
	// earlier-delivered ID (late packets), the metric the paper's
	// Section 6.3 experiments report.
	OutOfOrder int
	// Inversions counts pairs delivered in the wrong relative order; it
	// grows quadratically with the severity of a shuffle and is useful
	// for comparing schemes, not absolute damage.
	Inversions int64
	// MaxDisplacement is the largest |delivery position − ID rank|.
	MaxDisplacement int
}

// OutOfOrderFraction returns OutOfOrder / Delivered, or 0 when empty.
func (r Reorder) OutOfOrderFraction() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.OutOfOrder) / float64(r.Delivered)
}

// AnalyzeOrder computes reordering metrics for a delivered ID sequence.
// IDs need not be contiguous (losses leave gaps); order is judged
// against the IDs' rank order.
func AnalyzeOrder(ids []uint64) Reorder {
	r := Reorder{Delivered: len(ids)}
	if len(ids) == 0 {
		return r
	}
	// Late packets: ID below the running maximum.
	var maxSeen uint64
	hasMax := false
	for _, id := range ids {
		if hasMax && id < maxSeen {
			r.OutOfOrder++
		}
		if !hasMax || id > maxSeen {
			maxSeen = id
			hasMax = true
		}
	}
	// Rank displacement: position in delivery vs position in sorted
	// order.
	ranked := append([]uint64(nil), ids...)
	sort.Slice(ranked, func(i, j int) bool { return ranked[i] < ranked[j] })
	rank := make(map[uint64]int, len(ranked))
	for i, id := range ranked {
		rank[id] = i
	}
	for pos, id := range ids {
		d := pos - rank[id]
		if d < 0 {
			d = -d
		}
		if d > r.MaxDisplacement {
			r.MaxDisplacement = d
		}
	}
	r.Inversions = countInversions(ids)
	return r
}

// countInversions uses merge sort for O(n log n).
func countInversions(ids []uint64) int64 {
	buf := append([]uint64(nil), ids...)
	tmp := make([]uint64, len(buf))
	return mergeCount(buf, tmp)
}

func mergeCount(a, tmp []uint64) int64 {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], tmp[:mid]) + mergeCount(a[mid:], tmp[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			tmp[k] = a[i]
			i++
		} else {
			tmp[k] = a[j]
			inv += int64(mid - i)
			j++
		}
		k++
	}
	for i < mid {
		tmp[k] = a[i]
		i++
		k++
	}
	for j < n {
		tmp[k] = a[j]
		j++
		k++
	}
	copy(a, tmp[:k])
	return inv
}

// FirstInOrderSuffix returns the smallest index s such that ids[s:] is
// strictly increasing — the recovery point after which delivery is FIFO.
// It returns len(ids) for an empty suffix (never in order).
func FirstInOrderSuffix(ids []uint64) int {
	if len(ids) == 0 {
		return 0
	}
	s := len(ids) - 1
	for s > 0 && ids[s-1] < ids[s] {
		s--
	}
	return s
}

// JainIndex computes Jain's fairness index over per-channel allocations:
// (Σx)² / (n·Σx²). It is 1.0 for a perfectly even split and 1/n when one
// channel carries everything.
func JainIndex(alloc []int64) float64 {
	if len(alloc) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range alloc {
		f := float64(x)
		sum += f
		sq += f * f
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(alloc)) * sq)
}

// MaxImbalance returns the largest pairwise difference between
// per-channel allocations — the quantity the deterministic fairness
// definition of Section 3.3 bounds.
func MaxImbalance(alloc []int64) int64 {
	if len(alloc) == 0 {
		return 0
	}
	min, max := alloc[0], alloc[0]
	for _, x := range alloc[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}

// Quantile returns the q-quantile (0..1) of the values using nearest-
// rank on a sorted copy. Empty input yields 0.
func Quantile(values []int64, q float64) int64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mbps converts bytes transferred over a duration in simulated seconds
// to megabits per second.
func Mbps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) * 8 / seconds / 1e6
}

// Series is one labelled curve of a figure: y values indexed by the
// shared x axis of a Table.
type Series struct {
	Label  string
	Points []float64
}

// Table formats experiment output in the row/column shape of the
// paper's figures: one row per x value, one column per series.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	X       []float64
	Columns []Series
}

// AddColumn appends a series; its Points must align with X.
func (t *Table) AddColumn(label string, points []float64) {
	t.Columns = append(t.Columns, Series{Label: label, Points: points})
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, "# y: %s\n", t.YLabel)
	}
	fmt.Fprintf(&b, "%-16s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %22s", c.Label)
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "%-16.4g", x)
		for _, c := range t.Columns {
			v := math.NaN()
			if i < len(c.Points) {
				v = c.Points[i]
			}
			fmt.Fprintf(&b, " %22.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Meter accumulates byte counts against a logical clock to report
// throughput.
type Meter struct {
	bytes int64
}

// Add records n payload bytes.
func (m *Meter) Add(n int) { m.bytes += int64(n) }

// Bytes returns the total.
func (m *Meter) Bytes() int64 { return m.bytes }

// RateMbps returns throughput over the given span in seconds.
func (m *Meter) RateMbps(seconds float64) float64 { return Mbps(m.bytes, seconds) }
