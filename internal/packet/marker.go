package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MarkerBlock is the payload of a marker packet for one channel
// (Section 5). It carries the implicit packet number — the tuple
// (Round, Deficit) — of the next packet the sender will transmit on the
// channel, together with the sender's numbering of the channel so both
// ends agree on the round-robin visiting order (condition C2).
//
// Markers are the only control traffic the basic protocol needs. They
// never touch data packets; they are distinguished by the channel's
// codepoint mechanism.
type MarkerBlock struct {
	// Channel is the sender's number for the channel the marker was sent
	// on. Receivers adopt this numbering (condition C2 of Section 5).
	Channel uint32
	// Round is the sender's global round number G for the next packet to
	// be sent on this channel.
	Round uint64
	// Deficit is the channel's deficit counter immediately before the
	// next service of the channel (before the quantum is added).
	Deficit int64
	// Credits optionally piggybacks a cumulative flow-control credit
	// grant (for the reverse direction's channel) on the periodic
	// marker, as suggested in Section 6.3. Zero means "no credit
	// information" — grants are monotone and start positive.
	Credits uint64
	// Sent is the sender's cumulative count of data payload bytes
	// transmitted on this channel at the instant the marker was cut —
	// the authoritative sender position that lets the receiver
	// reconcile flow-control credits after loss. Because channels are
	// FIFO, every data byte counted here has either arrived before the
	// marker or is lost, so Sent minus the receiver's arrival count is
	// exactly the cumulative loss on the channel.
	Sent uint64
	// RNG optionally carries the 64-bit state of a randomized (RFQ)
	// scheduler so the receiver can resynchronize its simulation of a
	// randomized striper. Zero for deterministic schedulers.
	RNG uint64
	// TxNs is the sender-clock timestamp (nanoseconds) at the instant
	// the marker was cut. Paired with the receiver's arrival clock it
	// feeds the peer telemetry plane's NTP-style min-filter one-way
	// delay estimate per channel; each raw sample includes the clock
	// offset between the two hosts, so only cross-channel differences
	// are meaningful. Zero means "unstamped" and disables the estimate.
	TxNs int64
}

// Marker wire format:
//
//	offset size  field
//	0      4     magic "SMRK"
//	4      4     channel (big endian)
//	8      8     round
//	16     8     deficit (two's complement)
//	24     8     credits (cumulative grant)
//	32     8     sent (cumulative data bytes sent on the channel)
//	40     8     rng state
//	48     8     txns (sender-clock timestamp, two's complement)
//	56     4     CRC-32C (Castagnoli) over bytes [0,56)
//
// The format is fixed-size so markers are cheap to produce and validate
// even at high rates, and checksummed so a corrupted marker is discarded
// rather than desynchronizing the receiver (the marker-recovery theorem
// assumes corruption is detectable).
const (
	markerMagic = "SMRK"
	// MarkerWireLen is the encoded size of a marker block in bytes.
	MarkerWireLen = 60
)

// Errors returned by marker and credit decoding.
var (
	ErrBadMagic  = errors.New("packet: bad control-block magic")
	ErrBadLength = errors.New("packet: control block truncated")
	ErrChecksum  = errors.New("packet: control-block checksum mismatch")
)

// ctrlTable is the CRC-32C (Castagnoli) table used by every control
// block. Castagnoli rather than IEEE because Go computes it with the
// dedicated CRC instruction on common platforms, which matters at
// marker rates: control blocks are cut and validated on the data hot
// path, and both ends of a stripe group share this constant by
// construction.
var ctrlTable = crc32.MakeTable(crc32.Castagnoli)

// ctrlCRC is the checksum over a control block's fixed-size body.
//
//stripe:hotpath
func ctrlCRC(b []byte) uint32 { return crc32.Checksum(b, ctrlTable) }

// Encode appends the wire representation of the block to dst and returns
// the extended slice.
func (m *MarkerBlock) Encode(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, MarkerWireLen)...)
	b := dst[off:]
	copy(b[0:4], markerMagic)
	binary.BigEndian.PutUint32(b[4:8], m.Channel)
	binary.BigEndian.PutUint64(b[8:16], m.Round)
	binary.BigEndian.PutUint64(b[16:24], uint64(m.Deficit)) // two's-complement wire form; DecodeMarker undoes it exactly
	binary.BigEndian.PutUint64(b[24:32], m.Credits)
	binary.BigEndian.PutUint64(b[32:40], m.Sent)
	binary.BigEndian.PutUint64(b[40:48], m.RNG)
	binary.BigEndian.PutUint64(b[48:56], uint64(m.TxNs)) // two's-complement wire form, like Deficit
	binary.BigEndian.PutUint32(b[56:60], ctrlCRC(b[0:56]))
	return dst
}

// DecodeMarker parses a marker block from b.
func DecodeMarker(b []byte) (MarkerBlock, error) {
	var m MarkerBlock
	if len(b) < MarkerWireLen {
		return m, ErrBadLength
	}
	if string(b[0:4]) != markerMagic {
		return m, ErrBadMagic
	}
	if ctrlCRC(b[0:56]) != binary.BigEndian.Uint32(b[56:60]) {
		return m, ErrChecksum
	}
	m.Channel = binary.BigEndian.Uint32(b[4:8])
	m.Round = binary.BigEndian.Uint64(b[8:16])
	m.Deficit = int64(binary.BigEndian.Uint64(b[16:24])) // inverse of Encode's two's-complement form; a deficit is signed
	m.Credits = binary.BigEndian.Uint64(b[24:32])
	m.Sent = binary.BigEndian.Uint64(b[32:40])
	m.RNG = binary.BigEndian.Uint64(b[40:48])
	m.TxNs = int64(binary.BigEndian.Uint64(b[48:56])) // inverse of Encode's two's-complement form
	return m, nil
}

// NewMarker builds a marker packet carrying the block.
func NewMarker(m MarkerBlock) *Packet {
	return &Packet{Kind: Marker, Payload: m.Encode(nil)}
}

// MarkerOf extracts the marker block from a marker packet.
//
//stripe:allowescape error construction only on mis-kinded packets, and the magic-string check is compiler-elided; the valid-marker path is allocation-free
func MarkerOf(p *Packet) (MarkerBlock, error) {
	if p.Kind != Marker {
		return MarkerBlock{}, fmt.Errorf("packet: MarkerOf on %s packet", p.Kind)
	}
	return DecodeMarker(p.Payload)
}

// CreditBlock is the payload of a credit packet flowing from receiver to
// sender on one channel. Grant is cumulative: it names the highest byte
// count the sender is permitted to have sent on the channel, in the
// style of Kung's flow-controlled virtual channels.
type CreditBlock struct {
	// Channel is the channel the grant applies to.
	Channel uint32
	// Grant is the cumulative number of payload bytes the receiver has
	// buffer space for on this channel.
	Grant uint64
}

const (
	creditMagic = "SCRD"
	// CreditWireLen is the encoded size of a credit block in bytes.
	CreditWireLen = 20
)

// Encode appends the wire representation of the block to dst.
func (c *CreditBlock) Encode(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, CreditWireLen)...)
	b := dst[off:]
	copy(b[0:4], creditMagic)
	binary.BigEndian.PutUint32(b[4:8], c.Channel)
	binary.BigEndian.PutUint64(b[8:16], c.Grant)
	binary.BigEndian.PutUint32(b[16:20], ctrlCRC(b[0:16]))
	return dst
}

// DecodeCredit parses a credit block from b.
func DecodeCredit(b []byte) (CreditBlock, error) {
	var c CreditBlock
	if len(b) < CreditWireLen {
		return c, ErrBadLength
	}
	if string(b[0:4]) != creditMagic {
		return c, ErrBadMagic
	}
	if ctrlCRC(b[0:16]) != binary.BigEndian.Uint32(b[16:20]) {
		return c, ErrChecksum
	}
	c.Channel = binary.BigEndian.Uint32(b[4:8])
	c.Grant = binary.BigEndian.Uint64(b[8:16])
	return c, nil
}

// NewCredit builds a credit packet carrying the block.
func NewCredit(c CreditBlock) *Packet {
	return &Packet{Kind: Credit, Payload: c.Encode(nil)}
}

// CreditOf extracts the credit block from a credit packet.
func CreditOf(p *Packet) (CreditBlock, error) {
	if p.Kind != Credit {
		return CreditBlock{}, fmt.Errorf("packet: CreditOf on %s packet", p.Kind)
	}
	return DecodeCredit(p.Payload)
}
