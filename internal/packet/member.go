package packet

import (
	"encoding/binary"
	"fmt"
)

// MemberOp names the membership transition a Member packet announces.
type MemberOp uint8

const (
	// MemberLeave announces that Target has left the sender's transmit
	// set (drained or evicted).
	MemberLeave MemberOp = iota
	// MemberJoin announces that Target has (re)joined; Round carries the
	// round in which the sender's scheduler will first serve it, so the
	// receiver can re-derive the Section 5 skip rule for the newcomer.
	MemberJoin
	// MemberStatus is a keepalive restating the current membership with
	// no transition; health monitors also use it to probe an evicted
	// channel without perturbing protocol state.
	MemberStatus
)

// String returns the conventional name of the op.
func (o MemberOp) String() string {
	switch o {
	case MemberLeave:
		return "leave"
	case MemberJoin:
		return "join"
	case MemberStatus:
		return "status"
	default:
		return fmt.Sprintf("memberop(%d)", uint8(o))
	}
}

// MemberBlock is the payload of a Member packet: one announcement of
// the sender's live transmit channel set. The channel universe (the
// numbering of condition C2) is fixed at construction; membership
// enables and disables slots within it, so the block carries the full
// surviving set as a bitmap rather than a delta. Announcements are
// sequenced: the receiver applies only blocks whose Seq exceeds the
// last one it applied, which makes re-broadcast (for loss resilience)
// and reordering harmless.
type MemberBlock struct {
	// Seq is the sender's monotone announcement sequence number,
	// incremented on every membership transition.
	Seq uint64
	// Op is the transition being announced.
	Op MemberOp
	// Target is the channel joining or leaving (ignored for
	// MemberStatus).
	Target uint32
	// Round is, for MemberJoin, the round in which the sender's
	// scheduler first serves Target; for other ops, the sender's global
	// round number when the announcement was cut. Receivers that missed
	// earlier announcements use it as a conservative skip-until bound.
	Round uint64
	// Active is the post-transition membership bitmap: bit c set means
	// channel c is in the transmit set. The bitmap bounds dynamic
	// membership to 64-channel universes, far above the paper's
	// deployments.
	Active uint64
	// N is the size of the fixed channel universe, for validation.
	N uint32
}

// ActiveChannel reports whether the bitmap marks channel c live.
func (m *MemberBlock) ActiveChannel(c int) bool {
	if c < 0 || c >= 64 {
		return false
	}
	return m.Active&(uint64(1)<<uint(c)) != 0 // c is range-checked above, so the shift is in [0,64)
}

// Member wire format:
//
//	offset size  field
//	0      4     magic "SMBR"
//	4      8     seq
//	12     1     op
//	13     4     target (big endian)
//	17     8     round
//	25     8     active bitmap
//	33     4     n (universe size)
//	37     4     CRC-32C (Castagnoli) over bytes [0,37)
//
// Fixed-size and checksummed for the same reasons as markers: cheap to
// validate, and a corrupted announcement is dropped rather than
// desynchronizing the two ends' membership views.
const (
	memberMagic = "SMBR"
	// MemberWireLen is the encoded size of a member block in bytes.
	MemberWireLen = 41
)

// Encode appends the wire representation of the block to dst and
// returns the extended slice.
func (m *MemberBlock) Encode(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, MemberWireLen)...)
	b := dst[off:]
	copy(b[0:4], memberMagic)
	binary.BigEndian.PutUint64(b[4:12], m.Seq)
	b[12] = byte(m.Op) // MemberOp is uint8-valued by construction
	binary.BigEndian.PutUint32(b[13:17], m.Target)
	binary.BigEndian.PutUint64(b[17:25], m.Round)
	binary.BigEndian.PutUint64(b[25:33], m.Active)
	binary.BigEndian.PutUint32(b[33:37], m.N)
	binary.BigEndian.PutUint32(b[37:41], ctrlCRC(b[0:37]))
	return dst
}

// DecodeMember parses a member block from b.
func DecodeMember(b []byte) (MemberBlock, error) {
	var m MemberBlock
	if len(b) < MemberWireLen {
		return m, ErrBadLength
	}
	if string(b[0:4]) != memberMagic {
		return m, ErrBadMagic
	}
	if ctrlCRC(b[0:37]) != binary.BigEndian.Uint32(b[37:41]) {
		return m, ErrChecksum
	}
	m.Seq = binary.BigEndian.Uint64(b[4:12])
	m.Op = MemberOp(b[12])
	m.Target = binary.BigEndian.Uint32(b[13:17])
	m.Round = binary.BigEndian.Uint64(b[17:25])
	m.Active = binary.BigEndian.Uint64(b[25:33])
	m.N = binary.BigEndian.Uint32(b[33:37])
	return m, nil
}

// NewMember builds a member packet carrying the block.
func NewMember(m MemberBlock) *Packet {
	return &Packet{Kind: Member, Payload: m.Encode(nil)}
}

// MemberOf extracts the member block from a member packet.
//
//stripe:allowescape error construction only on mis-kinded packets, and the magic-string check is compiler-elided; the valid-member path is allocation-free
func MemberOf(p *Packet) (MemberBlock, error) {
	if p.Kind != Member {
		return MemberBlock{}, fmt.Errorf("packet: MemberOf on %s packet", p.Kind)
	}
	return DecodeMember(p.Payload)
}
