package packet

import (
	"testing"
	"testing/quick"
)

// TestMemberRoundTrip checks that any member block survives the wire
// encoding byte-for-byte, including appending after a non-empty prefix.
func TestMemberRoundTrip(t *testing.T) {
	check := func(seq uint64, op uint8, target uint32, round, active uint64, n uint32) bool {
		m := MemberBlock{
			Seq:    seq,
			Op:     MemberOp(op % 3),
			Target: target,
			Round:  round,
			Active: active,
			N:      n,
		}
		prefix := []byte("junk-prefix")
		b := m.Encode(append([]byte(nil), prefix...))
		if len(b) != len(prefix)+MemberWireLen {
			return false
		}
		got, err := DecodeMember(b[len(prefix):])
		return err == nil && got == m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeMemberErrors checks the three rejection paths: truncation,
// wrong magic, and checksum mismatch. A corrupted announcement must be
// dropped, not applied — a desynchronized membership view is worse than
// a missed (re-broadcast) one.
func TestDecodeMemberErrors(t *testing.T) {
	m := MemberBlock{Seq: 9, Op: MemberJoin, Target: 2, Round: 17, Active: 0b101, N: 3}
	wire := m.Encode(nil)

	if _, err := DecodeMember(wire[:MemberWireLen-1]); err != ErrBadLength {
		t.Errorf("truncated: err = %v, want ErrBadLength", err)
	}
	bad := append([]byte(nil), wire...)
	bad[0] = 'X'
	if _, err := DecodeMember(bad); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}
	bad = append([]byte(nil), wire...)
	bad[20] ^= 0xff // flip a round byte, leave the CRC
	if _, err := DecodeMember(bad); err != ErrChecksum {
		t.Errorf("corrupt body: err = %v, want ErrChecksum", err)
	}
}

// TestMemberOf checks packet-level extraction and the kind guard.
func TestMemberOf(t *testing.T) {
	m := MemberBlock{Seq: 3, Op: MemberLeave, Target: 1, Round: 4, Active: 0b01, N: 2}
	p := NewMember(m)
	if p.Kind != Member {
		t.Fatalf("NewMember kind = %v", p.Kind)
	}
	got, err := MemberOf(p)
	if err != nil || got != m {
		t.Fatalf("MemberOf = %+v, %v; want %+v", got, err, m)
	}
	if _, err := MemberOf(NewDataSized(10)); err == nil {
		t.Fatal("MemberOf accepted a data packet")
	}
}

// TestActiveChannelBounds checks the bitmap accessor, including the
// out-of-range channels that must read as inactive rather than shifting
// out of the 64-bit universe.
func TestActiveChannelBounds(t *testing.T) {
	m := MemberBlock{Active: 1 | 1<<5 | 1<<63}
	for c, want := range map[int]bool{0: true, 1: false, 5: true, 63: true, -1: false, 64: false, 1000: false} {
		if got := m.ActiveChannel(c); got != want {
			t.Errorf("ActiveChannel(%d) = %v, want %v", c, got, want)
		}
	}
}

// TestMemberOpString pins the diagnostic names.
func TestMemberOpString(t *testing.T) {
	for op, want := range map[MemberOp]string{
		MemberLeave:  "leave",
		MemberJoin:   "join",
		MemberStatus: "status",
		MemberOp(9):  "memberop(9)",
	} {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint8(op), got, want)
		}
	}
}
