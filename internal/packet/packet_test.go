package packet

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Data: "data", Marker: "marker", Credit: "credit", Reset: "reset", Kind(9): "kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewDataDoesNotCopy(t *testing.T) {
	b := []byte{1, 2, 3}
	p := NewData(b)
	b[0] = 9
	if p.Payload[0] != 9 {
		t.Fatal("NewData copied the payload")
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewData([]byte{1, 2, 3})
	p.ID = 7
	q := p.Clone()
	q.Payload[0] = 99
	if p.Payload[0] != 1 {
		t.Fatal("Clone shares payload storage")
	}
	if q.ID != 7 {
		t.Fatal("Clone dropped metadata")
	}
}

func TestWireLen(t *testing.T) {
	p := NewDataSized(100)
	if got := p.WireLen(8); got != 108 {
		t.Fatalf("WireLen = %d, want 108", got)
	}
}

func TestStringFormats(t *testing.T) {
	p := NewDataSized(10)
	p.ID = 3
	if s := p.String(); !strings.Contains(s, "id=3") || !strings.Contains(s, "len=10") {
		t.Fatalf("String() = %q", s)
	}
	p.Seq, p.HasSeq = 42, true
	if s := p.String(); !strings.Contains(s, "seq=42") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	check := func(ch uint32, round uint64, deficit int64, credits uint64, rng uint64) bool {
		m := MarkerBlock{Channel: ch, Round: round, Deficit: deficit, Credits: credits, RNG: rng}
		p := NewMarker(m)
		if p.Kind != Marker || len(p.Payload) != MarkerWireLen {
			return false
		}
		got, err := MarkerOf(p)
		return err == nil && got == m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarkerNegativeDeficit(t *testing.T) {
	m := MarkerBlock{Channel: 1, Round: 5, Deficit: -12345}
	got, err := DecodeMarker(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Deficit != -12345 {
		t.Fatalf("Deficit = %d, want -12345", got.Deficit)
	}
}

func TestMarkerDecodeErrors(t *testing.T) {
	m := MarkerBlock{Channel: 2, Round: 9, Deficit: 100}
	enc := m.Encode(nil)

	if _, err := DecodeMarker(enc[:10]); err != ErrBadLength {
		t.Errorf("truncated: err = %v, want ErrBadLength", err)
	}

	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeMarker(bad); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), enc...)
	bad[12] ^= 0xff // corrupt the round field
	if _, err := DecodeMarker(bad); err != ErrChecksum {
		t.Errorf("corrupt body: err = %v, want ErrChecksum", err)
	}

	bad = append([]byte(nil), enc...)
	bad[MarkerWireLen-1] ^= 0x01 // corrupt the checksum itself
	if _, err := DecodeMarker(bad); err != ErrChecksum {
		t.Errorf("corrupt crc: err = %v, want ErrChecksum", err)
	}
}

func TestMarkerEncodeAppends(t *testing.T) {
	prefix := []byte("hdr")
	m := MarkerBlock{Channel: 3}
	out := m.Encode(prefix)
	if !bytes.HasPrefix(out, []byte("hdr")) {
		t.Fatal("Encode overwrote the prefix")
	}
	if _, err := DecodeMarker(out[3:]); err != nil {
		t.Fatal(err)
	}
}

func TestMarkerOfWrongKind(t *testing.T) {
	if _, err := MarkerOf(NewDataSized(40)); err == nil {
		t.Fatal("MarkerOf accepted a data packet")
	}
}

func TestCreditRoundTrip(t *testing.T) {
	check := func(ch uint32, grant uint64) bool {
		c := CreditBlock{Channel: ch, Grant: grant}
		p := NewCredit(c)
		if p.Kind != Credit || len(p.Payload) != CreditWireLen {
			return false
		}
		got, err := CreditOf(p)
		return err == nil && got == c
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreditDecodeErrors(t *testing.T) {
	c := CreditBlock{Channel: 1, Grant: 4096}
	enc := c.Encode(nil)
	if _, err := DecodeCredit(enc[:4]); err != ErrBadLength {
		t.Errorf("truncated: err = %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[1] = '?'
	if _, err := DecodeCredit(bad); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[9] ^= 0x80
	if _, err := DecodeCredit(bad); err != ErrChecksum {
		t.Errorf("corrupt: err = %v", err)
	}
	if _, err := CreditOf(NewDataSized(4)); err == nil {
		t.Error("CreditOf accepted a data packet")
	}
}

func BenchmarkMarkerEncode(b *testing.B) {
	m := MarkerBlock{Channel: 1, Round: 1 << 40, Deficit: -500}
	buf := make([]byte, 0, MarkerWireLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Encode(buf[:0])
	}
}

func BenchmarkMarkerDecode(b *testing.B) {
	m := MarkerBlock{Channel: 1, Round: 1 << 40, Deficit: -500}
	enc := m.Encode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMarker(enc); err != nil {
			b.Fatal(err)
		}
	}
}
