// Pooled packets: the free-list behind the zero-allocation batched
// hot path. Steady-state striping moves millions of packets per second
// through Send/Arrive/Next; allocating a fresh Packet (and payload
// backing array) per call makes the garbage collector a bandwidth tax.
// The pool recycles both together — a released packet keeps its payload
// capacity, so a traffic mix with a stable size distribution reaches a
// steady state where Get/Release allocate nothing at all.
//
// Lifetime rules (see also the package stripe doc.go walkthrough):
//
//   - Get/GetSized hand the caller exclusive ownership of the packet
//     AND its payload backing array.
//   - Release returns both to the pool. After Release the caller must
//     not touch the packet or any slice of its payload — the next Get
//     anywhere in the process may reuse them.
//   - Release is optional. A packet that is never released is simply
//     garbage collected; correctness never depends on the pool.
//   - Never Release a packet whose payload aliases memory you intend
//     to keep (for example one built with NewData around an
//     application buffer): Release donates the backing array to the
//     pool, and a later GetSized would hand it to a stranger.
package packet

import "sync"

// pool recycles packets together with their payload backing arrays.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns a zeroed packet from the pool. Its payload has length
// zero but retains whatever capacity its previous life accumulated;
// extend it with append or take a sized one with GetSized.
func Get() *Packet {
	return pool.Get().(*Packet)
}

// GetSized returns a pooled Data packet whose payload has length n,
// reusing the pooled backing array when its capacity allows. The
// payload contents are unspecified (they are whatever the previous
// owner left); callers that need zeroed memory should use NewDataSized
// instead.
func GetSized(n int) *Packet {
	p := pool.Get().(*Packet)
	p.Kind = Data
	if cap(p.Payload) < n {
		p.Payload = make([]byte, n)
	} else {
		p.Payload = p.Payload[:n]
	}
	return p
}

// Release resets the packet and returns it — payload backing array
// included — to the pool. The caller must hold the only reference: the
// packet must already have been delivered (or never sent) and no slice
// of its payload may be retained. Releasing is always optional; skip it
// and the packet is ordinary garbage.
func (p *Packet) Release() {
	p.reset()
	pool.Put(p)
}

// reset clears the packet for its next life, keeping the payload
// backing array.
func (p *Packet) reset() {
	buf := p.Payload
	if buf != nil {
		buf = buf[:0]
	}
	*p = Packet{Payload: buf}
}

// Resize sets the payload length to n, reusing the backing array when
// its capacity allows. Contents are unspecified. This is how a batch
// producer sizes packets taken with GetBatch.
func (p *Packet) Resize(n int) {
	if cap(p.Payload) < n {
		p.Payload = make([]byte, n)
	} else {
		p.Payload = p.Payload[:n]
	}
}

// The batch tier: sync.Pool costs two synchronized operations per
// packet, which at batched line rate is the single largest remaining
// per-packet tax. A whole batch can instead be recycled through one
// mutex round trip on a plain LIFO slab; the slab is bounded, and
// overflow spills into the sync.Pool so nothing is ever lost.
const slabMax = 4096

var (
	slabMu sync.Mutex
	slab   []*Packet
)

// GetBatch fills dst with zeroed pooled packets — one lock round trip
// for the whole batch, falling back to the per-packet pool only when
// the slab runs dry. Payloads have length zero with recycled capacity;
// size them with Resize.
func GetBatch(dst []*Packet) {
	slabMu.Lock()
	n := len(slab)
	take := len(dst)
	if take > n {
		take = n
	}
	copy(dst[:take], slab[n-take:])
	for i := n - take; i < n; i++ {
		slab[i] = nil
	}
	slab = slab[:n-take]
	slabMu.Unlock()
	for i := take; i < len(dst); i++ {
		dst[i] = pool.Get().(*Packet)
	}
}

// ReleaseBatch releases every packet in pkts in one lock round trip
// (nil entries are skipped). The same ownership rules as Release apply
// to each packet. This is the intended partner of RecvBatch: receive a
// batch, consume the payloads, release the batch.
func ReleaseBatch(pkts []*Packet) {
	for _, p := range pkts {
		if p != nil {
			p.reset()
		}
	}
	slabMu.Lock()
	room := slabMax - len(slab)
	keep := len(pkts)
	if keep > room {
		keep = room
	}
	for _, p := range pkts[:keep] {
		if p != nil {
			slab = append(slab, p)
		}
	}
	slabMu.Unlock()
	for _, p := range pkts[keep:] {
		if p != nil {
			pool.Put(p)
		}
	}
}
