package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTelemetryRoundTrip(t *testing.T) {
	check := func(seq uint64, atNs, buffered, maxBuf int64, a, b TelemetryChannel) bool {
		blk := TelemetryBlock{
			Seq: seq, AtNs: atNs, Buffered: buffered, MaxBuffered: maxBuf,
			Channels: []TelemetryChannel{a, b},
		}
		p := NewTelemetry(blk)
		if p.Kind != Telemetry || len(p.Payload) != TelemetryWireLen(2) {
			return false
		}
		got, err := TelemetryOf(p)
		if err != nil {
			return false
		}
		return got.Seq == blk.Seq && got.AtNs == blk.AtNs &&
			got.Buffered == blk.Buffered && got.MaxBuffered == blk.MaxBuffered &&
			len(got.Channels) == 2 && got.Channels[0] == a && got.Channels[1] == b
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryEmptyAndFull(t *testing.T) {
	for _, n := range []int{0, 1, TelemetryMaxChannels} {
		blk := TelemetryBlock{Seq: 9, AtNs: -5}
		for i := 0; i < n; i++ {
			blk.Channels = append(blk.Channels, TelemetryChannel{Delivered: int64(i), Lost: 1})
		}
		enc := blk.Encode(nil)
		if len(enc) != TelemetryWireLen(n) {
			t.Fatalf("n=%d: len = %d, want %d", n, len(enc), TelemetryWireLen(n))
		}
		got, err := DecodeTelemetry(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got.Channels) != n || got.Seq != 9 || got.AtNs != -5 {
			t.Fatalf("n=%d: decoded %+v", n, got)
		}
	}
}

func TestTelemetryEncodeTruncatesOverfull(t *testing.T) {
	blk := TelemetryBlock{Channels: make([]TelemetryChannel, TelemetryMaxChannels+3)}
	got, err := DecodeTelemetry(blk.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Channels) != TelemetryMaxChannels {
		t.Fatalf("decoded %d channels, want cap %d", len(got.Channels), TelemetryMaxChannels)
	}
}

func TestTelemetryDecodeErrors(t *testing.T) {
	blk := TelemetryBlock{Seq: 1, Channels: []TelemetryChannel{{Delivered: 7}}}
	enc := blk.Encode(nil)

	if _, err := DecodeTelemetry(enc[:8]); err != ErrBadLength {
		t.Errorf("truncated header: err = %v, want ErrBadLength", err)
	}
	if _, err := DecodeTelemetry(enc[:len(enc)-1]); err != ErrBadLength {
		t.Errorf("truncated body: err = %v, want ErrBadLength", err)
	}

	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeTelemetry(bad); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), enc...)
	bad[36] = TelemetryMaxChannels + 1
	if _, err := DecodeTelemetry(bad); err != ErrBadTelemetry {
		t.Errorf("overfull n: err = %v, want ErrBadTelemetry", err)
	}

	bad = append([]byte(nil), enc...)
	bad[5] ^= 0xff // corrupt the seq field
	if _, err := DecodeTelemetry(bad); err != ErrChecksum {
		t.Errorf("corrupt body: err = %v, want ErrChecksum", err)
	}

	bad = append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x01 // corrupt the checksum itself
	if _, err := DecodeTelemetry(bad); err != ErrChecksum {
		t.Errorf("corrupt crc: err = %v, want ErrChecksum", err)
	}

	if _, err := TelemetryOf(NewDataSized(48)); err == nil {
		t.Error("TelemetryOf accepted a data packet")
	}
}

func TestTelemetryEncodeAppends(t *testing.T) {
	prefix := []byte("hdr")
	blk := TelemetryBlock{Seq: 4}
	out := blk.Encode(prefix)
	if !bytes.HasPrefix(out, []byte("hdr")) {
		t.Fatal("Encode overwrote the prefix")
	}
	if _, err := DecodeTelemetry(out[3:]); err != nil {
		t.Fatal(err)
	}
}

func TestMarkerTxNsRoundTrip(t *testing.T) {
	for _, ns := range []int64{0, 1, -1, 1 << 60} {
		m := MarkerBlock{Channel: 2, TxNs: ns}
		got, err := DecodeMarker(m.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if got.TxNs != ns {
			t.Fatalf("TxNs = %d, want %d", got.TxNs, ns)
		}
	}
}

// FuzzTelemetryBlock hardens the telemetry parser against arbitrary
// bytes: it must never panic, and anything that decodes must re-encode
// identically (the CRC pins this down).
func FuzzTelemetryBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, TelemetryWireLen(1)))
	for _, n := range []int{0, 1, 3, TelemetryMaxChannels} {
		blk := TelemetryBlock{Seq: uint64(n), AtNs: -int64(n), Buffered: 1 << 40}
		for i := 0; i < n; i++ {
			blk.Channels = append(blk.Channels, TelemetryChannel{
				Delivered: int64(i) << 32, Lost: -1, MarkerTxNs: int64(i), MarkerRxNs: int64(i) + 5,
			})
		}
		f.Add(blk.Encode(nil))
	}
	crcFlip := (&TelemetryBlock{Seq: 7}).Encode(nil)
	crcFlip[len(crcFlip)-1] ^= 0x01
	f.Add(crcFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTelemetry(data)
		if err != nil {
			return
		}
		re := got.Encode(nil)
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("telemetry re-encode mismatch")
		}
	})
}
