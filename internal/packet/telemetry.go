package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TelemetryChannel is one channel's slice of a telemetry block: the
// receiver's cumulative view of the channel plus the most recent marker
// timestamp pair observed on it.
type TelemetryChannel struct {
	// Delivered is the cumulative count of data payload bytes the
	// resequencer has delivered in order on this channel.
	Delivered int64
	// Lost is the receiver's cumulative estimate of data payload bytes
	// lost on the channel, derived at each marker arrival from the
	// marker's authoritative Sent position minus the bytes that actually
	// arrived (channels are FIFO, so the difference is exact loss). It
	// counts silent loss the sender's own error streak never sees.
	Lost int64
	// Resyncs is the cumulative count of marker-driven resynchronization
	// events the receiver performed for this channel.
	Resyncs int64
	// MarkerTxNs is the sender-clock timestamp carried by the most
	// recent stamped marker received on the channel (MarkerBlock.TxNs).
	// Zero when no stamped marker has arrived yet.
	MarkerTxNs int64
	// MarkerRxNs is the receiver-clock arrival timestamp of that same
	// marker. The (tx, rx) pair is one one-way-delay sample; it embeds
	// the clock offset between the hosts, which is common to every
	// channel of the bundle, so cross-channel differences isolate the
	// per-channel delay.
	MarkerRxNs int64
}

// TelemetryBlock is the payload of a Telemetry packet: the receiver's
// periodic report of bundle health back to the sender, piggybacked on
// the marker cadence. All counters are cumulative, so a lost or
// reordered report is harmless — the next one supersedes it (reports
// are sequenced and the consumer applies only forward jumps).
type TelemetryBlock struct {
	// Seq is the receiver's monotone report sequence number.
	Seq uint64
	// AtNs is the receiver-clock timestamp when the report was cut.
	AtNs int64
	// Buffered is the resequencer's total buffered byte count at the cut.
	Buffered int64
	// MaxBuffered is the resequencer's configured occupancy cap (zero
	// means unbounded), so the sender can judge Buffered as a fraction.
	MaxBuffered int64
	// Channels is the per-channel view, indexed by the sender's channel
	// numbering (condition C2 makes the numbering shared).
	Channels []TelemetryChannel
}

// Telemetry wire format:
//
//	offset size  field
//	0      4     magic "STLM"
//	4      8     seq
//	12     8     atns (receiver clock, two's complement)
//	20     8     buffered
//	28     8     maxbuffered
//	36     1     n (channel count, at most TelemetryMaxChannels)
//	37     40*n  per-channel entries:
//	             {delivered, lost, resyncs, markertxns, markerrxns}
//	37+40n 4     CRC-32C (Castagnoli) over bytes [0, 37+40n)
//
// Variable-size (unlike markers) because the per-channel section scales
// with the universe, but still flat, fixed-stride, and checksummed: a
// corrupted report is dropped rather than poisoning the sender's view
// of the peer.
const (
	telemetryMagic = "STLM"
	// telemetryHdrLen is the fixed prefix before the per-channel entries.
	telemetryHdrLen = 37
	// telemetryChanLen is the stride of one per-channel entry.
	telemetryChanLen = 40
	// TelemetryMaxChannels bounds the per-channel section to the same
	// 64-slot universe dynamic membership uses.
	TelemetryMaxChannels = 64
)

// ErrBadTelemetry reports a structurally invalid telemetry block (an
// impossible channel count); distinct from ErrBadLength so fuzzers and
// callers can tell truncation from corruption that passed the length
// check.
var ErrBadTelemetry = errors.New("packet: telemetry channel count out of range")

// TelemetryWireLen returns the encoded size of a telemetry block
// carrying n per-channel entries.
func TelemetryWireLen(n int) int { return telemetryHdrLen + telemetryChanLen*n + 4 }

// Encode appends the wire representation of the block to dst and
// returns the extended slice. Blocks with more than TelemetryMaxChannels
// entries are truncated to the cap (construction never produces them).
func (t *TelemetryBlock) Encode(dst []byte) []byte {
	n := len(t.Channels)
	if n > TelemetryMaxChannels {
		n = TelemetryMaxChannels
	}
	off := len(dst)
	dst = append(dst, make([]byte, TelemetryWireLen(n))...)
	b := dst[off:]
	copy(b[0:4], telemetryMagic)
	binary.BigEndian.PutUint64(b[4:12], t.Seq)
	// All int64 fields travel in two's-complement wire form (like
	// MarkerBlock.Deficit); DecodeTelemetry inverts each cast exactly.
	binary.BigEndian.PutUint64(b[12:20], uint64(t.AtNs))        // two's-complement wire form
	binary.BigEndian.PutUint64(b[20:28], uint64(t.Buffered))    // two's-complement wire form
	binary.BigEndian.PutUint64(b[28:36], uint64(t.MaxBuffered)) // two's-complement wire form
	b[36] = byte(n)                                             // n is capped to TelemetryMaxChannels (64) above
	for i := 0; i < n; i++ {
		e := b[telemetryHdrLen+telemetryChanLen*i:]
		c := &t.Channels[i]
		binary.BigEndian.PutUint64(e[0:8], uint64(c.Delivered))    // two's-complement wire form
		binary.BigEndian.PutUint64(e[8:16], uint64(c.Lost))        // two's-complement wire form
		binary.BigEndian.PutUint64(e[16:24], uint64(c.Resyncs))    // two's-complement wire form
		binary.BigEndian.PutUint64(e[24:32], uint64(c.MarkerTxNs)) // two's-complement wire form
		binary.BigEndian.PutUint64(e[32:40], uint64(c.MarkerRxNs)) // two's-complement wire form
	}
	body := telemetryHdrLen + telemetryChanLen*n
	binary.BigEndian.PutUint32(b[body:body+4], ctrlCRC(b[:body]))
	return dst
}

// DecodeTelemetry parses a telemetry block from b.
func DecodeTelemetry(b []byte) (TelemetryBlock, error) {
	var t TelemetryBlock
	if len(b) < telemetryHdrLen+4 {
		return t, ErrBadLength
	}
	if string(b[0:4]) != telemetryMagic {
		return t, ErrBadMagic
	}
	n := int(b[36])
	if n > TelemetryMaxChannels {
		return t, ErrBadTelemetry
	}
	if len(b) < TelemetryWireLen(n) {
		return t, ErrBadLength
	}
	body := telemetryHdrLen + telemetryChanLen*n
	if ctrlCRC(b[:body]) != binary.BigEndian.Uint32(b[body:body+4]) {
		return t, ErrChecksum
	}
	t.Seq = binary.BigEndian.Uint64(b[4:12])
	// Each cast inverts Encode's two's-complement wire form exactly.
	t.AtNs = int64(binary.BigEndian.Uint64(b[12:20]))        // inverse of Encode's two's-complement form
	t.Buffered = int64(binary.BigEndian.Uint64(b[20:28]))    // inverse of Encode's two's-complement form
	t.MaxBuffered = int64(binary.BigEndian.Uint64(b[28:36])) // inverse of Encode's two's-complement form
	if n > 0 {
		t.Channels = make([]TelemetryChannel, n)
		for i := range t.Channels {
			e := b[telemetryHdrLen+telemetryChanLen*i:]
			c := &t.Channels[i]
			c.Delivered = int64(binary.BigEndian.Uint64(e[0:8]))    // inverse of Encode's two's-complement form
			c.Lost = int64(binary.BigEndian.Uint64(e[8:16]))        // inverse of Encode's two's-complement form
			c.Resyncs = int64(binary.BigEndian.Uint64(e[16:24]))    // inverse of Encode's two's-complement form
			c.MarkerTxNs = int64(binary.BigEndian.Uint64(e[24:32])) // inverse of Encode's two's-complement form
			c.MarkerRxNs = int64(binary.BigEndian.Uint64(e[32:40])) // inverse of Encode's two's-complement form
		}
	}
	return t, nil
}

// NewTelemetry builds a telemetry packet carrying the block.
func NewTelemetry(t TelemetryBlock) *Packet {
	return &Packet{Kind: Telemetry, Payload: t.Encode(nil)}
}

// TelemetryOf extracts the telemetry block from a telemetry packet.
func TelemetryOf(p *Packet) (TelemetryBlock, error) {
	if p.Kind != Telemetry {
		return TelemetryBlock{}, fmt.Errorf("packet: TelemetryOf on %s packet", p.Kind)
	}
	return DecodeTelemetry(p.Payload)
}
