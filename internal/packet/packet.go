// Package packet defines the atomic units of exchange carried over the
// striped channels: opaque data packets, marker packets used by the
// synchronization-recovery protocol of Section 5 of the paper, and credit
// packets used by the optional credit-based flow-control scheme of
// Section 6.3.
//
// A central requirement of the paper is that data packets are never
// modified: no header is prepended and no trailer is appended. The only
// thing the channel substrate must provide is a distinct codepoint (for
// example a different Ethernet type field, or an OAM cell on an ATM VC)
// so that the receiver can tell markers apart from data. This package
// therefore separates the on-the-wire representation of control packets
// (markers and credits, which we define and encode) from data packets
// (which are carried verbatim).
//
// Packets also carry instrumentation metadata (a monotone ingress ID and
// an ingress timestamp). That metadata is NOT part of any wire format; it
// exists so that experiments can measure reordering and latency without
// perturbing the protocol under test, exactly as a packet trace taken
// outside the system would.
package packet

import "fmt"

// Kind discriminates the classes of packets a channel can carry. It is
// conveyed by the channel's codepoint mechanism, not by bytes inside the
// data packet.
type Kind uint8

const (
	// Data is an ordinary, unmodified data packet.
	Data Kind = iota
	// Marker is a synchronization marker (Section 5). Markers carry the
	// sender's per-channel state (round number and deficit counter) for
	// the next packet to be sent on the channel.
	Marker
	// Credit is a flow-control credit grant flowing from receiver to
	// sender (Section 6.3, after Kung's FCVC scheme).
	Credit
	// Reset requests a full reinitialization of striping state on both
	// ends. The paper uses a reset to recover from node crashes and to
	// make the marker algorithm self-stabilizing.
	Reset
	// Member announces a change to the live channel set (Section 6.1's
	// interfaces that come and go): a channel joining or leaving the
	// stripe, carried as a sequenced bitmap of the surviving membership
	// so announcements are idempotent under loss and reordering.
	Member
	// Telemetry carries the receiver's view of the bundle back to the
	// sender (delivered/lost bytes, resyncs, resequencer occupancy, and
	// marker receive timestamps) on the marker cadence. Telemetry is
	// advisory: receivers that do not understand it — or any codepoint
	// beyond the ones they know — drop it without touching protocol
	// state, which is the forward-compatibility contract new control
	// kinds rely on.
	Telemetry
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Marker:
		return "marker"
	case Credit:
		return "credit"
	case Reset:
		return "reset"
	case Member:
		return "member"
	case Telemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is one atomic unit of exchange between the sender and the
// receiver of a striped channel group.
//
// For Kind == Data, Payload is the application's packet, carried
// verbatim. For control kinds, Payload is the encoded control block
// (see MarkerBlock and CreditBlock).
type Packet struct {
	Kind    Kind
	Payload []byte

	// Seq is an optional sequence number used only by the "with header"
	// protocol variants (Table 1 rows "Round-Robin with header" and
	// "Fair Queuing algorithm with header"). HasSeq reports whether it
	// is meaningful. In the no-header variants both fields are zero and
	// nothing corresponding to them is transmitted.
	Seq    uint64
	HasSeq bool

	// ID is an instrumentation-only monotone identifier stamped at the
	// striper's ingress, used by experiments to detect reordering. It is
	// never transmitted.
	ID uint64

	// Ingress is an instrumentation-only logical timestamp (units are
	// experiment-defined: event ticks for the simulator, packet counts
	// for synchronous harnesses). It is never transmitted.
	Ingress int64
}

// Len returns the number of payload bytes, the quantity charged against
// deficit counters by byte-based schedulers.
func (p *Packet) Len() int { return len(p.Payload) }

// WireLen returns the number of bytes the packet occupies on a channel:
// the payload plus the channel framing overhead for the given per-packet
// overhead. Data packets are carried verbatim, so their wire length is
// payload + framing only.
func (p *Packet) WireLen(framing int) int { return len(p.Payload) + framing }

// Clone returns a deep copy of the packet. Channels that model
// corruption mutate payload bytes, so impairment models clone first.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return &q
}

// NewData builds a data packet around payload without copying it.
func NewData(payload []byte) *Packet {
	return &Packet{Kind: Data, Payload: payload}
}

// NewDataSized builds a data packet with a zero-filled payload of n
// bytes. Workload generators use it to synthesize traffic of a given
// size distribution.
func NewDataSized(n int) *Packet {
	return &Packet{Kind: Data, Payload: make([]byte, n)}
}

// String renders a short human-readable description.
func (p *Packet) String() string {
	if p.HasSeq {
		return fmt.Sprintf("%s[id=%d seq=%d len=%d]", p.Kind, p.ID, p.Seq, len(p.Payload))
	}
	return fmt.Sprintf("%s[id=%d len=%d]", p.Kind, p.ID, len(p.Payload))
}
