package flowcontrol

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

func TestGateAdmitConsume(t *testing.T) {
	g, err := NewGate(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Admit(0, 1000) {
		t.Fatal("initial window not granted")
	}
	if g.Admit(0, 1001) {
		t.Fatal("over-window packet admitted")
	}
	g.Consume(0, 600)
	if g.Remaining(0) != 400 {
		t.Fatalf("remaining = %d, want 400", g.Remaining(0))
	}
	if g.Admit(0, 500) {
		t.Fatal("admitted beyond remaining credit")
	}
	if !g.Admit(1, 1000) {
		t.Fatal("channel 1's credit affected by channel 0")
	}
}

func TestGateGrantMonotone(t *testing.T) {
	g, _ := NewGate(1, 100)
	g.ApplyGrant(0, 500)
	if g.Remaining(0) != 500 {
		t.Fatalf("remaining = %d", g.Remaining(0))
	}
	g.ApplyGrant(0, 300) // stale: ignored
	if g.Remaining(0) != 500 {
		t.Fatalf("stale grant lowered credit to %d", g.Remaining(0))
	}
	g.ApplyGrant(5, 999) // out of range: ignored
}

func TestGateApplyCredit(t *testing.T) {
	g, _ := NewGate(2, 0)
	p := packet.NewCredit(packet.CreditBlock{Channel: 1, Grant: 4096})
	if err := g.ApplyCredit(p); err != nil {
		t.Fatal(err)
	}
	if g.Remaining(1) != 4096 {
		t.Fatalf("remaining = %d", g.Remaining(1))
	}
	if err := g.ApplyCredit(packet.NewDataSized(8)); err == nil {
		t.Fatal("data packet accepted as credit")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewGate(0, 10); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewGate(1, -1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewManager(0, 10, func(int) int64 { return 0 }); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewManager(1, 0, func(int) int64 { return 0 }); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewManager(1, 10, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestManagerGrants(t *testing.T) {
	delivered := []int64{0, 0}
	m, err := NewManager(2, 1000, func(c int) int64 { return delivered[c] })
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GrantFor(0); got != 1000 {
		t.Fatalf("initial grant = %d", got)
	}
	delivered[0] = 700
	if got := m.GrantFor(0); got != 1700 {
		t.Fatalf("grant = %d, want 1700", got)
	}
	pkts := m.CreditPackets()
	if len(pkts) != 2 {
		t.Fatalf("%d credit packets", len(pkts))
	}
	cb, err := packet.CreditOf(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if cb.Channel != 0 || cb.Grant != 1700 {
		t.Fatalf("credit = %+v", cb)
	}
}

// TestCreditsBoundBufferOccupancy is the end-to-end invariant: with
// grant = delivered + W, the receive buffer can never hold more than W
// bytes per channel, so a W-byte buffer never overflows.
func TestCreditsBoundBufferOccupancy(t *testing.T) {
	const window = 4 * 1024
	quanta := []int64{1500, 1500}
	g := channel.NewGroup(2, channel.Impairments{})
	gate, _ := NewGate(2, window)
	st, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Gate:     gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.NewResequencer(core.ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  core.ModeLogical,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := NewManager(2, window, rs.DeliveredBytesOn)

	// Drive a slow consumer: one delivery for every three send attempts.
	sent, blocked := 0, 0
	for i := 0; i < 3000; i++ {
		p := packet.NewDataSized(1000)
		switch err := st.Send(p); err {
		case nil:
			sent++
		case core.ErrGated:
			blocked++
		default:
			t.Fatal(err)
		}
		// Move arrivals to the receiver.
		for c, q := range g.Queues {
			if pkt, ok := q.Recv(); ok {
				rs.Arrive(c, pkt)
			}
		}
		// Slow consumption.
		if i%3 == 0 {
			rs.Next()
		}
		// The invariant: bytes arrived on c but not yet delivered never
		// exceed the window.
		for c := 0; c < 2; c++ {
			occupancy := g.Queues[c].Stats().DeliveredBiB - rs.DeliveredBytesOn(c)
			if occupancy > window {
				t.Fatalf("channel %d buffer occupancy %d exceeds window %d", c, occupancy, window)
			}
		}
		// Credits at marker cadence.
		if i%10 == 0 {
			for c := 0; c < 2; c++ {
				gate.ApplyGrant(c, mgr.GrantFor(c))
			}
		}
	}
	if blocked == 0 {
		t.Fatal("flow control never engaged despite a slow consumer")
	}
	if sent == 0 {
		t.Fatal("nothing was sent")
	}
}
