package flowcontrol

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

func TestGateAdmitConsume(t *testing.T) {
	g, err := NewGate(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Admit(0, 1000) {
		t.Fatal("initial window not granted")
	}
	if g.Admit(0, 1001) {
		t.Fatal("over-window packet admitted")
	}
	g.Consume(0, 600)
	if g.Remaining(0) != 400 {
		t.Fatalf("remaining = %d, want 400", g.Remaining(0))
	}
	if g.Admit(0, 500) {
		t.Fatal("admitted beyond remaining credit")
	}
	if !g.Admit(1, 1000) {
		t.Fatal("channel 1's credit affected by channel 0")
	}
}

func TestGateGrantMonotone(t *testing.T) {
	g, _ := NewGate(1, 100)
	g.Consume(0, 80)
	if err := g.ApplyGrant(0, 150); err != nil {
		t.Fatal(err)
	}
	if g.Remaining(0) != 70 {
		t.Fatalf("remaining = %d, want 70", g.Remaining(0))
	}
	if err := g.ApplyGrant(0, 120); err != nil { // stale: ignored, not an error
		t.Fatal(err)
	}
	if g.Remaining(0) != 70 {
		t.Fatalf("stale grant changed credit to %d", g.Remaining(0))
	}
}

func TestGateApplyCredit(t *testing.T) {
	g, _ := NewGate(2, 4096)
	g.Consume(1, 1000)
	p := packet.NewCredit(packet.CreditBlock{Channel: 1, Grant: 5096})
	if err := g.ApplyCredit(p); err != nil {
		t.Fatal(err)
	}
	if g.Remaining(1) != 4096 {
		t.Fatalf("remaining = %d", g.Remaining(1))
	}
	if err := g.ApplyCredit(packet.NewDataSized(8)); err == nil {
		t.Fatal("data packet accepted as credit")
	}
}

// TestGateGuards pins the gate's wire-input validation: grants are
// untrusted, and a bad one must leave the credit table untouched.
func TestGateGuards(t *testing.T) {
	g, _ := NewGate(2, 100)
	if err := g.ApplyGrant(-1, 50); err == nil {
		t.Error("negative channel accepted")
	}
	if err := g.ApplyGrant(2, 50); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if err := g.ApplyGrant(0, -1); err == nil {
		t.Error("negative grant accepted")
	}
	// A receiver can never legitimately grant past sent + window: such a
	// grant is corrupt (or an overflowed cast) and must be refused, or a
	// single bad credit packet would let the sender overrun the peer's
	// buffers by an arbitrary amount.
	if err := g.ApplyGrant(0, 201); err == nil {
		t.Error("grant beyond sent+window accepted")
	}
	if err := g.ApplyGrant(0, int64(^uint64(0)>>1)); err == nil {
		t.Error("overflowing grant accepted")
	}
	for c := 0; c < 2; c++ {
		if g.Remaining(c) != 100 {
			t.Fatalf("rejected grants changed channel %d credit to %d", c, g.Remaining(c))
		}
	}
	// Exactly at the bound is legitimate (receiver consumed everything).
	g.Consume(0, 60)
	if err := g.ApplyGrant(0, 160); err != nil {
		t.Fatal(err)
	}
	if g.Remaining(0) != 100 {
		t.Fatalf("remaining = %d, want 100", g.Remaining(0))
	}
	// Defensive accessors and mutators.
	if g.Admit(-1, 10) || g.Admit(2, 10) || g.Admit(0, -1) {
		t.Error("bad Admit input admitted")
	}
	g.Consume(-1, 10)
	g.Consume(2, 10)
	g.Consume(0, -5)
	if g.Remaining(-1) != 0 || g.Remaining(2) != 0 || g.Sent(2) != 0 {
		t.Error("out-of-range accessor returned nonzero")
	}
	if g.Sent(0) != 60 {
		t.Fatalf("bad Consume input corrupted sent to %d", g.Sent(0))
	}
}

// TestManagerReconcile pins the loss write-off math: grant floor
// = senderSent + W − buffered, loss = senderSent − arrived, both folded
// monotonically so stale or duplicated marker positions are harmless.
func TestManagerReconcile(t *testing.T) {
	delivered := []int64{0, 0}
	m, err := NewManager(2, 1000, func(c int) int64 { return delivered[c] })
	if err != nil {
		t.Fatal(err)
	}
	// Sender put 5000 bytes on channel 0; 3800 arrived (1200 lost), 300
	// of those still buffered, 3500 delivered.
	delivered[0] = 3500
	wrote, err := m.Reconcile(0, 5000, 3800, 300)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != 1200 {
		t.Fatalf("wrote off %d, want 1200", wrote)
	}
	if m.LostBytes(0) != 1200 {
		t.Fatalf("lost = %d", m.LostBytes(0))
	}
	// Grant = max(floor, delivered+lost+W): floor = 5000+1000−300 = 5700,
	// delivered path = 3500+1200+1000 = 5700. They agree at the marker.
	if got := m.GrantFor(0); got != 5700 {
		t.Fatalf("grant = %d, want 5700", got)
	}
	// The application drains the 300 buffered bytes: the delivered path
	// moves the grant past the floor.
	delivered[0] = 3800
	if got := m.GrantFor(0); got != 6000 {
		t.Fatalf("grant = %d, want 6000", got)
	}
	// A stale (duplicated or reordered) position is a no-op.
	wrote, err = m.Reconcile(0, 4000, 3800, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != 0 || m.LostBytes(0) != 1200 || m.GrantFor(0) != 6000 {
		t.Fatalf("stale position changed state: wrote=%d lost=%d grant=%d",
			wrote, m.LostBytes(0), m.GrantFor(0))
	}
	// Guards.
	if _, err := m.Reconcile(2, 0, 0, 0); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if _, err := m.Reconcile(0, -1, 0, 0); err == nil {
		t.Error("negative position accepted")
	}
	if m.LostBytes(-1) != 0 || m.GrantFor(9) != 0 {
		t.Error("out-of-range accessor returned nonzero")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewGate(0, 10); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewGate(1, -1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewManager(0, 10, func(int) int64 { return 0 }); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewManager(1, 0, func(int) int64 { return 0 }); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewManager(1, 10, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestManagerGrants(t *testing.T) {
	delivered := []int64{0, 0}
	m, err := NewManager(2, 1000, func(c int) int64 { return delivered[c] })
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GrantFor(0); got != 1000 {
		t.Fatalf("initial grant = %d", got)
	}
	delivered[0] = 700
	if got := m.GrantFor(0); got != 1700 {
		t.Fatalf("grant = %d, want 1700", got)
	}
	pkts := m.CreditPackets()
	if len(pkts) != 2 {
		t.Fatalf("%d credit packets", len(pkts))
	}
	cb, err := packet.CreditOf(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if cb.Channel != 0 || cb.Grant != 1700 {
		t.Fatalf("credit = %+v", cb)
	}
}

// TestCreditsBoundBufferOccupancy is the end-to-end invariant: with
// grant = delivered + W, the receive buffer can never hold more than W
// bytes per channel, so a W-byte buffer never overflows.
func TestCreditsBoundBufferOccupancy(t *testing.T) {
	const window = 4 * 1024
	quanta := []int64{1500, 1500}
	g := channel.NewGroup(2, channel.Impairments{})
	gate, _ := NewGate(2, window)
	st, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Gate:     gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.NewResequencer(core.ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  core.ModeLogical,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := NewManager(2, window, rs.DeliveredBytesOn)

	// Drive a slow consumer: one delivery for every three send attempts.
	sent, blocked := 0, 0
	for i := 0; i < 3000; i++ {
		p := packet.NewDataSized(1000)
		switch err := st.Send(p); err {
		case nil:
			sent++
		case core.ErrGated:
			blocked++
		default:
			t.Fatal(err)
		}
		// Move arrivals to the receiver.
		for c, q := range g.Queues {
			if pkt, ok := q.Recv(); ok {
				rs.Arrive(c, pkt)
			}
		}
		// Slow consumption.
		if i%3 == 0 {
			rs.Next()
		}
		// The invariant: bytes arrived on c but not yet delivered never
		// exceed the window.
		for c := 0; c < 2; c++ {
			occupancy := g.Queues[c].Stats().DeliveredBiB - rs.DeliveredBytesOn(c)
			if occupancy > window {
				t.Fatalf("channel %d buffer occupancy %d exceeds window %d", c, occupancy, window)
			}
		}
		// Credits at marker cadence.
		if i%10 == 0 {
			for c := 0; c < 2; c++ {
				gate.ApplyGrant(c, mgr.GrantFor(c))
			}
		}
	}
	if blocked == 0 {
		t.Fatal("flow control never engaged despite a slow consumer")
	}
	if sent == 0 {
		t.Fatal("nothing was sent")
	}
}
