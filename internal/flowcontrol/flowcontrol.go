// Package flowcontrol implements the credit-based, per-channel flow
// control scheme the paper adopted for channels that provide none of
// their own (Section 6.3), following Kung and Chapman's flow-controlled
// virtual channels (FCVC): the receiver grants cumulative byte credits
// per channel, and the sender never lets a channel's cumulative sent
// bytes exceed its grant. With the grant set to consumed-bytes + W, at
// most W bytes can ever occupy the channel plus the receive buffer, so
// a receive buffer of W bytes cannot overflow — eliminating congestion
// loss entirely.
//
// # Loss-resilient reconciliation
//
// Keying grants to *delivered* bytes alone leaks window over lossy
// channels: a byte lost in flight is never delivered, so the receiver's
// grant stops W bytes past it and the sender stalls permanently once
// cumulative loss reaches W. The fix is to reconcile from the sender's
// own position: every marker carries the cumulative bytes the sender
// has put on the channel (MarkerBlock.Sent). Because channels are FIFO,
// everything sent before the marker has either arrived or is lost by
// the time the marker arrives, so the receiver computes the exact
// cumulative loss L = Sent − arrived and grants consumed + L + W.
// Lost bytes are thereby granted back automatically — the credit table
// is self-healing after any loss burst — while the occupancy invariant
// is preserved: the sender's unacked-but-not-lost bytes (in flight plus
// buffered) still never exceed W.
//
// Credits travel on the reverse path as Credit packets, and the paper
// notes they piggyback naturally on the periodic marker traffic; the
// Manager emits one grant per channel on demand so the harness can
// send them at marker cadence.
package flowcontrol

import (
	"fmt"

	"stripe/internal/obs"
	"stripe/internal/packet"
)

// Gate is the sender-side credit table. It implements core.Gate. It is
// a pure state machine; synchronise externally if shared.
type Gate struct {
	sent   []int64
	grant  []int64
	window int64
	// retired marks channels torn down by dynamic membership: they admit
	// nothing, their outstanding credit has been returned, and incoming
	// grants are ignored until Readmit. Counters stay cumulative across
	// retirement so a rejoin reconciles from the same byte positions.
	retired []bool
	obs     *obs.Collector
}

// SetObs attaches a collector; the gate keeps its per-channel
// remaining-credit gauge current. Call before the gate is in use.
func (g *Gate) SetObs(c *obs.Collector) {
	g.obs = c
	for i := range g.grant {
		g.obs.SetCreditRemaining(i, g.grant[i]-g.sent[i])
	}
}

// NewGate returns a gate for n channels with an initial window of w
// bytes on each (the receiver's initial buffer grant).
func NewGate(n int, w int64) (*Gate, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flowcontrol: need positive channel count, got %d", n)
	}
	if w < 0 {
		return nil, fmt.Errorf("flowcontrol: negative initial window %d", w)
	}
	g := &Gate{sent: make([]int64, n), grant: make([]int64, n), window: w, retired: make([]bool, n)}
	for i := range g.grant {
		g.grant[i] = w
	}
	return g, nil
}

// Retire tears down channel c's credit account when it leaves the
// stripe, returning the outstanding (granted-but-unused) credit so the
// caller can account for it. After Retire the channel admits nothing
// and incoming grants for it are silently ignored (the peer keeps
// granting until its own membership view catches up — those grants are
// stale by definition, not errors). The cumulative sent counter is
// preserved: it is the position a rejoin reconciles from.
func (g *Gate) Retire(c int) int64 {
	if c < 0 || c >= len(g.grant) || g.retired[c] {
		return 0
	}
	outstanding := g.grant[c] - g.sent[c]
	// Clamp the grant to the sent position: the account closes with zero
	// debt, so credit-conservation checks stay clean across teardown.
	g.grant[c] = g.sent[c]
	g.retired[c] = true
	g.obs.SetCreditRemaining(c, 0)
	return outstanding
}

// Readmit reopens channel c's account with a fresh window above the
// preserved cumulative sent position. That is exactly the receiver's
// real capacity: its buffers for c drained at teardown, and bytes that
// died in flight are written off by the first marker reconciliation
// after the rejoin, so granting sent + W here cannot overflow the peer.
func (g *Gate) Readmit(c int) {
	if c < 0 || c >= len(g.grant) || !g.retired[c] {
		return
	}
	g.retired[c] = false
	g.grant[c] = g.sent[c] + g.window
	g.obs.SetCreditRemaining(c, g.window)
}

// Retired reports whether channel c's account is torn down.
func (g *Gate) Retired(c int) bool {
	if c < 0 || c >= len(g.grant) {
		return false
	}
	return g.retired[c]
}

// Admit reports whether a packet of the given size fits channel c's
// remaining credit. Out-of-range channels admit nothing.
//
//stripe:hotpath
func (g *Gate) Admit(c int, size int) bool {
	if c < 0 || c >= len(g.grant) || size < 0 || g.retired[c] {
		return false
	}
	return g.sent[c]+int64(size) <= g.grant[c]
}

// Consume charges a transmitted packet against channel c's credit.
// Out-of-range channels and negative sizes are ignored: the gate never
// lets a bad caller corrupt the credit table.
//
//stripe:hotpath
func (g *Gate) Consume(c int, size int) {
	if c < 0 || c >= len(g.grant) || size < 0 {
		return
	}
	g.sent[c] += int64(size)
	g.obs.SetCreditRemaining(c, g.grant[c]-g.sent[c])
}

// ApplyGrant raises channel c's cumulative grant. Grants are monotone:
// a stale (lower) grant is ignored, so credit packets may be lost,
// reordered or duplicated without harm.
//
// Grants arrive off the wire, so they are validated rather than
// trusted: an out-of-range channel, a negative grant (a corrupt uint64
// cast), or a grant further ahead of the sender's position than the
// window permits (the receiver can never legitimately grant beyond
// sent + W, because everything it has consumed or written off as lost
// was first sent) returns an error and leaves the table untouched.
func (g *Gate) ApplyGrant(c int, grant int64) error {
	if c < 0 || c >= len(g.grant) {
		return fmt.Errorf("flowcontrol: grant for channel %d outside [0,%d)", c, len(g.grant))
	}
	if grant < 0 {
		return fmt.Errorf("flowcontrol: negative grant %d for channel %d", grant, c)
	}
	if grant > g.sent[c]+g.window {
		return fmt.Errorf("flowcontrol: grant %d for channel %d exceeds sent %d + window %d",
			grant, c, g.sent[c], g.window)
	}
	if g.retired[c] {
		// In-flight grants from before the peer learned of the teardown;
		// stale by definition, dropped without error.
		return nil
	}
	if grant > g.grant[c] {
		g.grant[c] = grant
		g.obs.SetCreditRemaining(c, g.grant[c]-g.sent[c])
	}
	return nil
}

// ApplyCredit applies a credit packet to the table.
func (g *Gate) ApplyCredit(p *packet.Packet) error {
	cb, err := packet.CreditOf(p)
	if err != nil {
		return err
	}
	// Grant is validated below 2^63 by ApplyGrant, which rejects the
	// negative values a wrapped conversion would produce.
	return g.ApplyGrant(int(cb.Channel), int64(cb.Grant))
}

// Remaining returns channel c's unused credit in bytes (zero for
// out-of-range channels).
func (g *Gate) Remaining(c int) int64 {
	if c < 0 || c >= len(g.grant) {
		return 0
	}
	return g.grant[c] - g.sent[c]
}

// Sent returns the cumulative bytes charged against channel c.
func (g *Gate) Sent(c int) int64 {
	if c < 0 || c >= len(g.sent) {
		return 0
	}
	return g.sent[c]
}

// Manager is the receiver-side credit issuer. It grants each channel a
// window of W bytes past the position the sender no longer occupies:
// bytes the receiver has consumed plus bytes reconciled as lost from
// marker-carried sender positions.
type Manager struct {
	window    int64
	delivered func(c int) int64
	n         int
	lost      []int64 // cumulative bytes written off per channel (monotone)
	floor     []int64 // monotone grant floor from sender-position reconciliation
	obs       *obs.Collector
}

// NewManager returns a manager granting a window of w bytes per channel
// above the cumulative delivered-byte count reported by the callback
// (typically Resequencer.DeliveredBytesOn), plus any loss reconciled
// via Reconcile.
func NewManager(n int, w int64, delivered func(c int) int64) (*Manager, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flowcontrol: need positive channel count, got %d", n)
	}
	if w <= 0 {
		return nil, fmt.Errorf("flowcontrol: window must be positive, got %d", w)
	}
	if delivered == nil {
		return nil, fmt.Errorf("flowcontrol: nil delivered callback")
	}
	return &Manager{
		window:    w,
		delivered: delivered,
		n:         n,
		lost:      make([]int64, n),
		floor:     make([]int64, n),
	}, nil
}

// SetObs attaches a collector; the manager counts reconciliations and
// the bytes they wrote off as lost.
func (m *Manager) SetObs(c *obs.Collector) { m.obs = c }

// Reconcile folds a marker-carried sender position into the grant for
// channel c. senderSent is MarkerBlock.Sent; arrived and buffered are
// the receiver's cumulative data-byte arrival count and current
// buffered data bytes on the channel, read at the instant the marker
// arrived (the FIFO point at which in-flight bytes from before the
// marker are exactly zero). It returns the bytes newly written off as
// lost. Stale, duplicated or reordered marker positions are harmless:
// every quantity involved is folded in with a monotone max.
func (m *Manager) Reconcile(c int, senderSent, arrived, buffered int64) (int64, error) {
	if c < 0 || c >= m.n {
		return 0, fmt.Errorf("flowcontrol: reconcile for channel %d outside [0,%d)", c, m.n)
	}
	if senderSent < 0 || arrived < 0 || buffered < 0 {
		return 0, fmt.Errorf("flowcontrol: negative reconcile position (sent=%d arrived=%d buffered=%d)",
			senderSent, arrived, buffered)
	}
	var wroteOff int64
	// Cumulative loss on c as of the marker. A position older than one
	// already reconciled yields a smaller value and is ignored.
	if loss := senderSent - arrived; loss > m.lost[c] {
		wroteOff = loss - m.lost[c]
		m.lost[c] = loss
		if m.obs != nil {
			m.obs.OnCreditReconciled(c, wroteOff)
		}
	}
	// Grant floor: the sender may run W bytes past everything that has
	// left the pipeline, i.e. up to Sent + (W − buffered). Equivalent to
	// consumed + lost + W with consumed = arrived − buffered, which also
	// credits bytes the receiver dropped (old epochs, overflow) without
	// delivering.
	if f := senderSent + m.window - buffered; f > m.floor[c] {
		m.floor[c] = f
	}
	return wroteOff, nil
}

// LostBytes returns the cumulative bytes written off as lost on c.
func (m *Manager) LostBytes(c int) int64 {
	if c < 0 || c >= m.n {
		return 0
	}
	return m.lost[c]
}

// GrantFor returns the current cumulative grant for channel c: the
// larger of the reconciled floor and delivered + lost + window (the
// latter keeps credits flowing between markers as the application
// drains the resequencer).
func (m *Manager) GrantFor(c int) int64 {
	if c < 0 || c >= m.n {
		return 0
	}
	g := m.delivered(c) + m.lost[c] + m.window
	if m.floor[c] > g {
		g = m.floor[c]
	}
	return g
}

// CreditPackets builds one credit packet per channel carrying the
// current grants, for transmission on the reverse path (at marker
// cadence, as the paper suggests).
func (m *Manager) CreditPackets() []*packet.Packet {
	out := make([]*packet.Packet, m.n)
	for c := 0; c < m.n; c++ {
		out[c] = packet.NewCredit(packet.CreditBlock{
			Channel: uint32(c),             // c ranges over [0, m.n): non-negative, small
			Grant:   uint64(m.GrantFor(c)), // grants are cumulative byte counts, >= 0 by construction
		})
	}
	return out
}
