// Package flowcontrol implements the credit-based, per-channel flow
// control scheme the paper adopted for channels that provide none of
// their own (Section 6.3), following Kung and Chapman's flow-controlled
// virtual channels (FCVC): the receiver grants cumulative byte credits
// per channel, and the sender never lets a channel's cumulative sent
// bytes exceed its grant. With the grant set to delivered-bytes + W, at
// most W bytes can ever occupy the channel plus the receive buffer, so
// a receive buffer of W bytes cannot overflow — eliminating congestion
// loss entirely.
//
// Credits travel on the reverse path as Credit packets, and the paper
// notes they piggyback naturally on the periodic marker traffic; the
// CreditManager emits one grant per channel on demand so the harness can
// send them at marker cadence.
package flowcontrol

import (
	"fmt"

	"stripe/internal/obs"
	"stripe/internal/packet"
)

// Gate is the sender-side credit table. It implements core.Gate. It is
// a pure state machine; synchronise externally if shared.
type Gate struct {
	sent  []int64
	grant []int64
	obs   *obs.Collector
}

// SetObs attaches a collector; the gate keeps its per-channel
// remaining-credit gauge current. Call before the gate is in use.
func (g *Gate) SetObs(c *obs.Collector) {
	g.obs = c
	for i := range g.grant {
		g.obs.SetCreditRemaining(i, g.grant[i]-g.sent[i])
	}
}

// NewGate returns a gate for n channels with an initial window of w
// bytes on each (the receiver's initial buffer grant).
func NewGate(n int, w int64) (*Gate, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flowcontrol: need positive channel count, got %d", n)
	}
	if w < 0 {
		return nil, fmt.Errorf("flowcontrol: negative initial window %d", w)
	}
	g := &Gate{sent: make([]int64, n), grant: make([]int64, n)}
	for i := range g.grant {
		g.grant[i] = w
	}
	return g, nil
}

// Admit reports whether a packet of the given size fits channel c's
// remaining credit.
func (g *Gate) Admit(c int, size int) bool {
	return g.sent[c]+int64(size) <= g.grant[c]
}

// Consume charges a transmitted packet against channel c's credit.
func (g *Gate) Consume(c int, size int) {
	g.sent[c] += int64(size)
	g.obs.SetCreditRemaining(c, g.grant[c]-g.sent[c])
}

// ApplyGrant raises channel c's cumulative grant. Grants are monotone:
// a stale (lower) grant is ignored, so credit packets may be lost,
// reordered or duplicated without harm.
func (g *Gate) ApplyGrant(c int, grant int64) {
	if c < 0 || c >= len(g.grant) {
		return
	}
	if grant > g.grant[c] {
		g.grant[c] = grant
		g.obs.SetCreditRemaining(c, g.grant[c]-g.sent[c])
	}
}

// ApplyCredit applies a credit packet to the table.
func (g *Gate) ApplyCredit(p *packet.Packet) error {
	cb, err := packet.CreditOf(p)
	if err != nil {
		return err
	}
	g.ApplyGrant(int(cb.Channel), int64(cb.Grant))
	return nil
}

// Remaining returns channel c's unused credit in bytes.
func (g *Gate) Remaining(c int) int64 { return g.grant[c] - g.sent[c] }

// Manager is the receiver-side credit issuer.
type Manager struct {
	window    int64
	delivered func(c int) int64
	n         int
}

// NewManager returns a manager granting a window of w bytes per channel
// above the cumulative delivered-byte count reported by the callback
// (typically Resequencer.DeliveredBytesOn).
func NewManager(n int, w int64, delivered func(c int) int64) (*Manager, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flowcontrol: need positive channel count, got %d", n)
	}
	if w <= 0 {
		return nil, fmt.Errorf("flowcontrol: window must be positive, got %d", w)
	}
	if delivered == nil {
		return nil, fmt.Errorf("flowcontrol: nil delivered callback")
	}
	return &Manager{window: w, delivered: delivered, n: n}, nil
}

// GrantFor returns the current cumulative grant for channel c.
func (m *Manager) GrantFor(c int) int64 { return m.delivered(c) + m.window }

// CreditPackets builds one credit packet per channel carrying the
// current grants, for transmission on the reverse path (at marker
// cadence, as the paper suggests).
func (m *Manager) CreditPackets() []*packet.Packet {
	out := make([]*packet.Packet, m.n)
	for c := 0; c < m.n; c++ {
		out[c] = packet.NewCredit(packet.CreditBlock{
			Channel: uint32(c),
			Grant:   uint64(m.GrantFor(c)),
		})
	}
	return out
}
