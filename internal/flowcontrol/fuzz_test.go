package flowcontrol

import (
	"testing"

	"stripe/internal/packet"
)

// FuzzApplyGrant hardens the wire-facing credit validation. Grants
// arrive as attacker-controlled packet fields, so no sequence of
// grants — in range, stale, negative-after-cast, or for a channel that
// does not exist — may panic, corrupt the credit table, or break the
// occupancy invariant grant <= sent + window that bounds receive-buffer
// memory.
func FuzzApplyGrant(f *testing.F) {
	f.Add(uint32(0), uint64(0), uint64(0), uint16(0))
	f.Add(uint32(1), uint64(4096), uint64(8192), uint16(1500))
	f.Add(uint32(3), uint64(1)<<63, ^uint64(0), uint16(9000)) // negative after the int64 cast
	f.Add(uint32(9), uint64(1)<<62, uint64(1)<<62+1, uint16(100))
	f.Fuzz(func(t *testing.T, ch uint32, g1, g2 uint64, consumed uint16) {
		const n = 4
		const window = int64(65536)
		gate, err := NewGate(n, window)
		if err != nil {
			t.Fatal(err)
		}
		c := int(int32(ch)) // exercise negative and out-of-range channels
		gate.Consume(c, int(consumed))

		invariant := func() {
			for i := 0; i < n; i++ {
				if gate.Remaining(i) > window {
					t.Fatalf("channel %d: remaining %d exceeds window %d (grant ran past sent + window)",
						i, gate.Remaining(i), window)
				}
			}
		}
		snapshot := func() [n][2]int64 {
			var s [n][2]int64
			for i := 0; i < n; i++ {
				s[i] = [2]int64{gate.Sent(i), gate.Remaining(i)}
			}
			return s
		}

		before := snapshot()
		err1 := gate.ApplyGrant(c, int64(g1))
		invariant()
		if err1 != nil && snapshot() != before {
			t.Fatalf("rejected grant (%v) still changed the table: %v -> %v", err1, before, snapshot())
		}
		if err1 == nil && 0 <= c && c < n && gate.Remaining(c) < before[c][1] {
			t.Fatalf("accepted grant lowered channel %d remaining %d -> %d (grants must be monotone)",
				c, before[c][1], gate.Remaining(c))
		}

		// The same grants through the wire path: encode, then validate on
		// decode + apply. ApplyCredit must behave exactly like ApplyGrant
		// on the decoded values.
		before = snapshot()
		p := packet.NewCredit(packet.CreditBlock{Channel: ch, Grant: g2})
		if err := gate.ApplyCredit(p); err != nil && snapshot() != before {
			t.Fatalf("rejected credit packet (%v) still changed the table", err)
		}
		invariant()
	})
}
