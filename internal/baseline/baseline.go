// Package baseline implements the competing striping schemes the paper
// surveys in Section 2.1, used as experimental baselines:
//
//   - Random Selection (Bay Networks): load sharing in expectation, no
//     FIFO delivery.
//   - Shortest Queue First (the Linux EQL serial-line driver): good load
//     sharing, no FIFO delivery, and non-causal (depends on queue
//     occupancy, so a receiver cannot simulate it).
//   - Address-based Hashing (Bay Networks): per-destination FIFO, but no
//     load sharing within a destination.
//   - BONDING-style inverse multiplexing: fixed-size frames with frame
//     sequence numbers and skew compensation. Guaranteed FIFO and good
//     load sharing, but requires reformatting all traffic into special
//     frames — exactly the hardware-level cost the paper's scheme
//     avoids.
//
// These selectors implement per-packet channel choice; the BONDING pair
// implements a complete byte-striping sender/receiver.
package baseline

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"stripe/internal/channel"
	"stripe/internal/packet"
)

// Selector chooses an output channel per packet. Unlike sched.Scheduler
// it may consult information beyond transmitted history (queue lengths,
// addresses), which is what makes these schemes non-causal.
type Selector interface {
	// Pick returns the channel for p.
	Pick(p *packet.Packet) int
	// N returns the channel count.
	N() int
}

// RandomSelection picks a channel uniformly at random.
type RandomSelection struct {
	n   int
	rng *rand.Rand
}

// NewRandomSelection returns a seeded random selector over n channels.
func NewRandomSelection(n int, seed int64) (*RandomSelection, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: need positive channel count, got %d", n)
	}
	return &RandomSelection{n: n, rng: rand.New(rand.NewSource(seed))}, nil
}

// Pick implements Selector.
func (r *RandomSelection) Pick(*packet.Packet) int { return r.rng.Intn(r.n) }

// N implements Selector.
func (r *RandomSelection) N() int { return r.n }

// ShortestQueue picks the channel with the smallest current load, as
// the Linux EQL driver does. Load is provided by a callback so the
// selector works over any channel implementation.
type ShortestQueue struct {
	n    int
	load func(c int) int
}

// NewShortestQueue returns a selector over n channels reading load from
// the callback (for example queued bytes or packets).
func NewShortestQueue(n int, load func(c int) int) (*ShortestQueue, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: need positive channel count, got %d", n)
	}
	if load == nil {
		return nil, fmt.Errorf("baseline: ShortestQueue requires a load callback")
	}
	return &ShortestQueue{n: n, load: load}, nil
}

// Pick implements Selector.
func (s *ShortestQueue) Pick(*packet.Packet) int {
	best, bestLoad := 0, s.load(0)
	for c := 1; c < s.n; c++ {
		if l := s.load(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}

// N implements Selector.
func (s *ShortestQueue) N() int { return s.n }

// AddressHash routes each packet by hashing a key derived from it, so
// all packets for one destination share a channel (per-destination FIFO,
// no intra-destination load sharing).
type AddressHash struct {
	n   int
	key func(p *packet.Packet) []byte
}

// NewAddressHash returns a hashing selector; key extracts the address
// bytes from a packet (for example the destination field of an embedded
// header). A nil key hashes the first 4 payload bytes.
func NewAddressHash(n int, key func(p *packet.Packet) []byte) (*AddressHash, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: need positive channel count, got %d", n)
	}
	if key == nil {
		key = func(p *packet.Packet) []byte {
			if len(p.Payload) >= 4 {
				return p.Payload[:4]
			}
			return p.Payload
		}
	}
	return &AddressHash{n: n, key: key}, nil
}

// Pick implements Selector.
func (a *AddressHash) Pick(p *packet.Packet) int {
	h := fnv.New32a()
	h.Write(a.key(p))
	return int(h.Sum32() % uint32(a.n))
}

// N implements Selector.
func (a *AddressHash) N() int { return a.n }

// Stripe sends one packet through a selector onto its channels; a
// convenience for the baseline experiments.
func Stripe(sel Selector, chans []channel.Sender, p *packet.Packet) error {
	return chans[sel.Pick(p)].Send(p)
}

// BONDING-style inverse multiplexing
//
// The BONDING consortium scheme aggregates synchronous serial channels:
// the byte stream is chopped into fixed-size frames, each frame carries
// a sequence number, frames are sent round robin, and the receiver uses
// the sequence numbers for skew compensation before reassembling the
// stream. Packets must be rewritten into the frame format — the scheme
// cannot carry packets unmodified, which is its entry in Table 1.

// bondingHeader is the per-frame overhead: an 8-byte frame sequence
// number and a 2-byte count of valid payload bytes (partial frames occur
// only at a flush).
const bondingHeader = 10

// BondingSender reformats a packet stream into fixed-size frames
// striped round robin.
type BondingSender struct {
	chans     []channel.Sender
	frameSize int
	buf       []byte
	seq       uint64
}

// NewBondingSender returns a frame striper. frameSize is the frame
// payload in bytes (excluding the sequence header) and must exceed the
// 4-byte record header.
func NewBondingSender(chans []channel.Sender, frameSize int) (*BondingSender, error) {
	if len(chans) == 0 {
		return nil, fmt.Errorf("baseline: bonding needs channels")
	}
	if frameSize <= 8 || frameSize > 65535 {
		return nil, fmt.Errorf("baseline: frame size %d outside (8, 65535]", frameSize)
	}
	return &BondingSender{chans: chans, frameSize: frameSize}, nil
}

// Send appends p to the stream as a length-prefixed record and
// transmits any complete frames.
func (b *BondingSender) Send(p *packet.Packet) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(p.Len()))
	b.buf = append(b.buf, hdr[:]...)
	b.buf = append(b.buf, p.Payload...)
	return b.drain(false)
}

// Flush pads and transmits the partial trailing frame so all buffered
// records are delivered.
func (b *BondingSender) Flush() error { return b.drain(true) }

func (b *BondingSender) drain(flush bool) error {
	for len(b.buf) >= b.frameSize || (flush && len(b.buf) > 0) {
		frame := make([]byte, bondingHeader+b.frameSize)
		binary.BigEndian.PutUint64(frame[:8], b.seq)
		n := copy(frame[bondingHeader:], b.buf)
		b.buf = b.buf[n:]
		binary.BigEndian.PutUint16(frame[8:10], uint16(n))
		c := int(b.seq % uint64(len(b.chans)))
		if err := b.chans[c].Send(&packet.Packet{Kind: packet.Data, Payload: frame}); err != nil {
			return err
		}
		b.seq++
	}
	return nil
}

// BondingReceiver reassembles the frame stream. Frames arrive FIFO per
// channel; the sequence number says which channel the next frame is on,
// so skew is absorbed by per-channel buffering.
type BondingReceiver struct {
	n         int
	frameSize int
	bufs      [][][]byte // per-channel FIFO of frame payloads
	nextSeq   uint64
	stream    []byte
	out       []*packet.Packet
}

// NewBondingReceiver returns a reassembler for n channels and the given
// frame payload size.
func NewBondingReceiver(n, frameSize int) (*BondingReceiver, error) {
	if n <= 0 || frameSize <= 8 {
		return nil, fmt.Errorf("baseline: bad bonding receiver config (n=%d, frameSize=%d)", n, frameSize)
	}
	return &BondingReceiver{n: n, frameSize: frameSize, bufs: make([][][]byte, n)}, nil
}

// Arrive accepts a frame received on channel c.
func (r *BondingReceiver) Arrive(c int, p *packet.Packet) {
	if c < 0 || c >= r.n || len(p.Payload) < bondingHeader {
		return
	}
	r.bufs[c] = append(r.bufs[c], p.Payload)
	r.reassemble()
}

func (r *BondingReceiver) reassemble() {
	for {
		c := int(r.nextSeq % uint64(r.n))
		if len(r.bufs[c]) == 0 {
			return
		}
		frame := r.bufs[c][0]
		seq := binary.BigEndian.Uint64(frame[:8])
		if seq != r.nextSeq {
			// A frame was lost on a supposedly reliable circuit; BONDING
			// resynchronises at the next frame boundary by adopting the
			// received sequence if it is ahead.
			if seq < r.nextSeq {
				r.bufs[c] = r.bufs[c][1:] // stale duplicate
				continue
			}
			r.nextSeq = seq
			continue
		}
		r.bufs[c] = r.bufs[c][1:]
		used := int(binary.BigEndian.Uint16(frame[8:10]))
		if used > len(frame)-bondingHeader {
			used = len(frame) - bondingHeader
		}
		r.consume(frame[bondingHeader : bondingHeader+used])
		r.nextSeq++
	}
}

// consume parses records out of a frame body, accumulating partial
// records across frames.
func (r *BondingReceiver) consume(body []byte) {
	r.stream = append(r.stream, body...)
	for {
		if len(r.stream) < 4 {
			return
		}
		l := binary.BigEndian.Uint32(r.stream[:4])
		if len(r.stream) < 4+int(l) {
			return
		}
		payload := make([]byte, l)
		copy(payload, r.stream[4:4+l])
		r.stream = r.stream[4+l:]
		r.out = append(r.out, &packet.Packet{Kind: packet.Data, Payload: payload})
	}
}

// Next returns the next reassembled packet.
func (r *BondingReceiver) Next() (*packet.Packet, bool) {
	if len(r.out) == 0 {
		return nil, false
	}
	p := r.out[0]
	r.out = r.out[1:]
	return p, true
}
