package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/stats"
)

func TestRandomSelectionSpread(t *testing.T) {
	r, err := NewRandomSelection(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 4)
	p := packet.NewDataSized(100)
	for i := 0; i < 40000; i++ {
		counts[r.Pick(p)]++
	}
	if idx := stats.JainIndex(counts); idx < 0.99 {
		t.Fatalf("Jain index %.4f, want ~1", idx)
	}
	if r.N() != 4 {
		t.Fatalf("N = %d", r.N())
	}
	if _, err := NewRandomSelection(0, 1); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestShortestQueuePicksMin(t *testing.T) {
	loads := []int{5, 2, 9}
	s, err := NewShortestQueue(3, func(c int) int { return loads[c] })
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Pick(packet.NewDataSized(1)); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
	loads[1] = 100
	if got := s.Pick(packet.NewDataSized(1)); got != 0 {
		t.Fatalf("Pick = %d, want 0", got)
	}
	if _, err := NewShortestQueue(2, nil); err == nil {
		t.Error("nil load callback accepted")
	}
	if _, err := NewShortestQueue(-1, func(int) int { return 0 }); err == nil {
		t.Error("negative channel count accepted")
	}
}

func TestShortestQueueBalancesBytes(t *testing.T) {
	// Feeding a byte-load callback makes SQF share load well even with
	// variable sizes — its strength; the weakness is ordering, shown in
	// the harness experiments.
	rng := rand.New(rand.NewSource(2))
	var loads [2]int
	s, _ := NewShortestQueue(2, func(c int) int { return loads[c] })
	var sent [2]int64
	for i := 0; i < 20000; i++ {
		p := packet.NewDataSized(40 + rng.Intn(1460))
		c := s.Pick(p)
		loads[c] += p.Len()
		sent[c] += int64(p.Len())
		// Drain both "queues" at equal rates slightly below the offered
		// load, so queues stay occupied and ties (which always break to
		// channel 0) stay rare.
		for q := 0; q < 2; q++ {
			loads[q] -= 380
			if loads[q] < 0 {
				loads[q] = 0
			}
		}
	}
	if idx := stats.JainIndex(sent[:]); idx < 0.99 {
		t.Fatalf("Jain index %.4f", idx)
	}
}

func TestAddressHashStickyAndDeterministic(t *testing.T) {
	a, err := NewAddressHash(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := packet.NewData([]byte{10, 0, 0, 1, 99, 98})
	c1 := a.Pick(p)
	p2 := packet.NewData([]byte{10, 0, 0, 1, 7, 7, 7})
	if c2 := a.Pick(p2); c2 != c1 {
		t.Fatalf("same address hashed to %d and %d", c1, c2)
	}
	q := packet.NewData([]byte{10, 0, 0, 2})
	_ = a.Pick(q) // may or may not collide; just must not panic
	short := packet.NewData([]byte{1})
	_ = a.Pick(short)
	if _, err := NewAddressHash(0, nil); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestAddressHashNoLoadSharingPerAddress(t *testing.T) {
	// All packets to one destination use one channel: per-destination
	// FIFO but zero intra-destination load sharing (Table 1).
	a, _ := NewAddressHash(4, nil)
	counts := make([]int64, 4)
	p := packet.NewData([]byte{192, 168, 1, 1})
	for i := 0; i < 1000; i++ {
		counts[a.Pick(p)]++
	}
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("one destination spread over %d channels", nonzero)
	}
}

func TestStripeHelper(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	r, _ := NewRandomSelection(2, 3)
	for i := 0; i < 10; i++ {
		if err := Stripe(r, g.Senders(), packet.NewDataSized(10)); err != nil {
			t.Fatal(err)
		}
	}
	if total := g.Queues[0].Len() + g.Queues[1].Len(); total != 10 {
		t.Fatalf("queued %d packets, want 10", total)
	}
}

// TestBondingRoundTrip checks reassembly of a packet stream through the
// fixed-frame byte striper, including records spanning frames and the
// padded flush frame.
func TestBondingRoundTrip(t *testing.T) {
	g := channel.NewGroup(3, channel.Impairments{})
	bs, err := NewBondingSender(g.Senders(), 64)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBondingReceiver(3, 64)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	var want [][]byte
	for i := 0; i < 100; i++ {
		pl := make([]byte, 1+rng.Intn(300)) // many spans > frameSize
		rng.Read(pl)
		want = append(want, pl)
		if err := bs.Send(packet.NewData(pl)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Deliver frames with inter-channel skew: channel order reversed.
	for c := 2; c >= 0; c-- {
		for {
			p, ok := g.Queues[c].Recv()
			if !ok {
				break
			}
			br.Arrive(c, p)
		}
	}
	var got [][]byte
	for {
		p, ok := br.Next()
		if !ok {
			break
		}
		got = append(got, p.Payload)
	}
	if len(got) != len(want) {
		t.Fatalf("reassembled %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("packet %d mismatch", i)
		}
	}
}

// TestBondingLoadSharing checks that byte striping shares load almost
// perfectly regardless of packet sizes — the property that needs frame
// rewriting to get.
func TestBondingLoadSharing(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	bs, _ := NewBondingSender(g.Senders(), 128)
	// The adversarial alternating workload that breaks GRR.
	for i := 0; i < 1000; i++ {
		size := 1000
		if i%2 == 1 {
			size = 200
		}
		if err := bs.Send(packet.NewDataSized(size)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Flush(); err != nil {
		t.Fatal(err)
	}
	s0 := g.Queues[0].Stats().SentBytes
	s1 := g.Queues[1].Stats().SentBytes
	diff := s0 - s1
	if diff < 0 {
		diff = -diff
	}
	if diff > 128+10 { // at most one frame of imbalance
		t.Fatalf("byte imbalance %d (channels %d vs %d)", diff, s0, s1)
	}
}

// TestBondingEmptyFlush checks flushing with nothing buffered.
func TestBondingEmptyFlush(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	bs, _ := NewBondingSender(g.Senders(), 64)
	if err := bs.Flush(); err != nil {
		t.Fatal(err)
	}
	if g.Queues[0].Len()+g.Queues[1].Len() != 0 {
		t.Fatal("empty flush emitted frames")
	}
}

// TestBondingStaleDuplicateDropped exercises the duplicate/stale frame
// path in the reassembler.
func TestBondingStaleDuplicateDropped(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	bs, _ := NewBondingSender(g.Senders(), 32)
	if err := bs.Send(packet.NewDataSized(100)); err != nil { // several frames
		t.Fatal(err)
	}
	if err := bs.Flush(); err != nil {
		t.Fatal(err)
	}
	br, _ := NewBondingReceiver(2, 32)
	var frames [][2]interface{}
	for c := 0; c < 2; c++ {
		for {
			p, ok := g.Queues[c].Recv()
			if !ok {
				break
			}
			frames = append(frames, [2]interface{}{c, p})
		}
	}
	// Deliver everything once, then replay the first frame (stale).
	for _, f := range frames {
		br.Arrive(f[0].(int), f[1].(*packet.Packet))
	}
	first := frames[0]
	br.Arrive(first[0].(int), first[1].(*packet.Packet))
	n := 0
	for {
		if _, ok := br.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("reassembled %d packets, want 1", n)
	}
}

// TestBondingConstructorValidation covers argument checks.
func TestBondingConstructorValidation(t *testing.T) {
	g := channel.NewGroup(1, channel.Impairments{})
	if _, err := NewBondingSender(nil, 64); err == nil {
		t.Error("no channels accepted")
	}
	if _, err := NewBondingSender(g.Senders(), 8); err == nil {
		t.Error("tiny frame accepted")
	}
	if _, err := NewBondingSender(g.Senders(), 70000); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, err := NewBondingReceiver(0, 64); err == nil {
		t.Error("zero-channel receiver accepted")
	}
	if _, err := NewBondingReceiver(2, 4); err == nil {
		t.Error("tiny-frame receiver accepted")
	}
}
