package core

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/obs"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// eventLog is a SinkFunc target collecting events by kind for
// assertions. Single-threaded tests: no locking needed.
type eventLog struct {
	byKind map[obs.Kind][]obs.Event
}

func newEventLog(c *obs.Collector) *eventLog {
	l := &eventLog{byKind: make(map[obs.Kind][]obs.Event)}
	c.AddSink(obs.SinkFunc(func(e obs.Event) {
		l.byKind[e.Kind] = append(l.byKind[e.Kind], e)
	}))
	return l
}

// TestObsLossThenMarkerOneResyncPerChannel reruns the Section 5
// walkthrough scenario — one data packet lost on one channel, markers
// restoring synchronization — and checks the event stream: exactly one
// resync event, on the channel that took the loss, and none on the
// healthy channel.
func TestObsLossThenMarkerOneResyncPerChannel(t *testing.T) {
	const nch = 2
	quanta := sched.UniformQuanta(nch, 100)
	g := channel.NewGroup(nch, channel.Impairments{})
	col := obs.NewCollector(nch)
	log := newEventLog(col)

	// Packet size == quantum, so SRR reduces to RR and ingress ID i
	// lands on channel i%2; dropping IDs 6 and 8 means channel 0 takes
	// a two-round hole and channel 1 stays healthy. Markers every 6
	// rounds, as in the Figure 8-13 walkthrough: misordering happens
	// first, then the marker repairs. The hole spans more rounds than
	// the marker closes with EndService alone, so the skip rule must
	// step channel 0 past the missing round.
	senders := make([]channel.Sender, nch)
	for i, s := range g.Senders() {
		senders[i] = &dropSender{inner: s, drop: map[uint64]bool{6: true, 8: true}}
	}
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: senders,
		Markers:  MarkerPolicy{Every: 6, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  ModeLogical,
		Obs:   col,
	})
	for i := 0; i < 18; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	got := pumpAll(g, rs)
	if len(got) != 16 {
		t.Fatalf("delivered %d packets, want 16 (two lost)", len(got))
	}

	resyncs := log.byKind[obs.KindResync]
	if len(resyncs) != 1 {
		t.Fatalf("got %d resync events, want exactly 1: %v", len(resyncs), resyncs)
	}
	if resyncs[0].Channel != 0 {
		t.Fatalf("resync on channel %d, want 0 (the lossy channel)", resyncs[0].Channel)
	}
	if int64(len(resyncs)) != rs.Stats().Resyncs {
		t.Fatalf("event count %d != stats.Resyncs %d", len(resyncs), rs.Stats().Resyncs)
	}
	// The skip rule fired to step past the hole; every skip event must
	// be mirrored in the stats counter.
	skips := log.byKind[obs.KindSkip]
	if len(skips) == 0 {
		t.Fatal("no skip events for a loss that requires skipping")
	}
	if int64(len(skips)) != rs.Stats().Skips {
		t.Fatalf("skip events %d != stats.Skips %d", len(skips), rs.Stats().Skips)
	}
	// Snapshot agrees with the event stream, per channel.
	snap := col.Snapshot()
	if snap.Channels[0].Resyncs != 1 || snap.Channels[1].Resyncs != 0 {
		t.Fatalf("per-channel resync counters: %+v", snap.Channels)
	}
	if snap.Events["resync"] != 1 {
		t.Fatalf("snapshot events: %v", snap.Events)
	}
}

// TestObsSelfHealEvent reruns the corrupt-receiver-state scenario from
// selfheal_test.go and checks that healing emits self_heal events (one
// per heal, matching stats) and no reset events.
func TestObsSelfHealEvent(t *testing.T) {
	const nch = 2
	quanta := sched.UniformQuanta(nch, 100)
	g := channel.NewGroup(nch, channel.Impairments{})
	col := obs.NewCollector(nch)
	log := newEventLog(col)
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 2, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  ModeLogical,
		Obs:   col,
	})
	for i := 0; i < 20; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	pumpAll(g, rs)

	// Corrupt the receiver's round so every marker looks stale.
	rs.s.Restore(sched.State{Current: 0, Round: 1 << 20, Deficits: make([]int64, nch)})
	for i := 0; i < 200; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	pumpAll(g, rs)

	heals := log.byKind[obs.KindSelfHeal]
	if len(heals) == 0 {
		t.Fatal("no self_heal events after corrupt-state recovery")
	}
	if int64(len(heals)) != rs.Stats().SelfHeals {
		t.Fatalf("self_heal events %d != stats.SelfHeals %d", len(heals), rs.Stats().SelfHeals)
	}
	if got := log.byKind[obs.KindReset]; len(got) != 0 {
		t.Fatalf("self-heal must not emit reset events, got %v", got)
	}
}

// TestObsResetEvents checks both ends of an epoch reset: the sender's
// collector counts the reset it initiates, and the receiver's emits a
// reset event when the reset packet is applied.
func TestObsResetEvents(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	quanta := []int64{100, 100}
	txCol := obs.NewCollector(2)
	rxCol := obs.NewCollector(2)
	log := newEventLog(rxCol)
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Obs:      txCol,
	})
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  ModeLogical,
		Obs:   rxCol,
	})
	for i := 0; i < 7; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	pumpAll(g, rs)

	if got := txCol.Snapshot().Resets; got != 1 {
		t.Fatalf("sender reset counter = %d, want 1", got)
	}
	resets := log.byKind[obs.KindReset]
	if len(resets) != 1 {
		t.Fatalf("got %d reset events, want 1: %v", len(resets), resets)
	}
	if resets[0].Value != 1 {
		t.Fatalf("reset event carries epoch %d, want 1", resets[0].Value)
	}
	if int64(len(resets)) != rs.Stats().Resets {
		t.Fatalf("reset events %d != stats.Resets %d", len(resets), rs.Stats().Resets)
	}
}

// TestObsStriperCounters checks the transmit-side per-channel load
// accounting and the live fairness gauge on a bimodal workload.
func TestObsStriperCounters(t *testing.T) {
	const nch = 4
	quanta := sched.UniformQuanta(nch, 1500)
	g := channel.NewGroup(nch, channel.Impairments{})
	col := obs.NewCollector(nch)
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 4, Position: 0},
		Obs:      col,
	})
	var sent, bytes int64
	for i := 0; i < 1000; i++ {
		size := 200
		if i%2 == 1 {
			size = 1000
		}
		if err := st.Send(packet.NewDataSized(size)); err != nil {
			t.Fatal(err)
		}
		sent++
		bytes += int64(size)
	}
	// Transmit counters are batched; a Stats call flushes them.
	_ = st.Stats()
	snap := col.Snapshot()
	var gotPkts, gotBytes, markers int64
	for _, ch := range snap.Channels {
		gotPkts += ch.StripedPackets
		gotBytes += ch.StripedBytes
		markers += ch.MarkersEmitted
	}
	if gotPkts != sent || gotBytes != bytes {
		t.Fatalf("collector saw %d pkts/%d bytes, striped %d/%d", gotPkts, gotBytes, sent, bytes)
	}
	if markers == 0 {
		t.Fatal("no markers counted")
	}
	if snap.Round != st.Round() {
		t.Fatalf("round gauge %d != striper round %d", snap.Round, st.Round())
	}
	if snap.FairnessBound == 0 {
		t.Fatal("fairness bound not derived")
	}
	if snap.FairnessDiscrepancy > snap.FairnessBound {
		t.Fatalf("fairness violated: %d > %d", snap.FairnessDiscrepancy, snap.FairnessBound)
	}
	// Stats() agrees with the collector's totals.
	st2 := st.Stats()
	if st2.DataPackets != sent || st2.DataBytes != bytes {
		t.Fatalf("Stats() %+v, want %d/%d", st2, sent, bytes)
	}
	if len(st2.PerChannel) != nch {
		t.Fatalf("PerChannel has %d entries", len(st2.PerChannel))
	}
}

// TestObsCollectorSizeValidation checks constructors reject collectors
// sized for a different channel count.
func TestObsCollectorSizeValidation(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	bad := obs.NewCollector(3)
	if _, err := NewStriper(StriperConfig{
		Sched:    sched.MustSRR(sched.UniformQuanta(2, 100)),
		Channels: g.Senders(),
		Obs:      bad,
	}); err == nil {
		t.Fatal("NewStriper accepted mis-sized collector")
	}
	if _, err := NewResequencer(ResequencerConfig{
		Sched: sched.MustSRR(sched.UniformQuanta(2, 100)),
		Mode:  ModeLogical,
		Obs:   bad,
	}); err == nil {
		t.Fatal("NewResequencer accepted mis-sized collector")
	}
}

// TestObsDisplacementHistogram checks that in-order delivery lands in
// the zero bucket and loss-induced reordering is recorded as positive
// displacement.
func TestObsDisplacementHistogram(t *testing.T) {
	const nch = 2
	quanta := sched.UniformQuanta(nch, 100)

	// Lossless run: every delivery in order, all displacement zero.
	g := channel.NewGroup(nch, channel.Impairments{})
	col := obs.NewCollector(nch)
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 2, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  ModeLogical,
		Obs:   col,
	})
	for i := 0; i < 50; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	pumpAll(g, rs)
	d := col.Snapshot().Displacement
	if d.Count == 0 || d.Sum != 0 {
		t.Fatalf("lossless displacement count=%d sum=%d, want sum 0", d.Count, d.Sum)
	}

	// Lossy run: marker recovery skips past holes, so later deliveries
	// from the stalled channel arrive displaced.
	g2 := channel.NewGroup(nch, channel.Impairments{})
	col2 := obs.NewCollector(nch)
	senders := make([]channel.Sender, nch)
	for i, s := range g2.Senders() {
		senders[i] = &dropSender{inner: s, drop: map[uint64]bool{6: true}}
	}
	st2 := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: senders,
		Markers:  MarkerPolicy{Every: 6, Position: 0},
	})
	rs2 := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  ModeLogical,
		Obs:   col2,
	})
	for i := 0; i < 18; i++ {
		if err := st2.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	pumpAll(g2, rs2)
	if d2 := col2.Snapshot().Displacement; d2.Sum == 0 {
		t.Fatalf("lossy run recorded no displacement: %+v", d2)
	}
}
