package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// TestMidServiceMarkersStayConsistent pins the trickiest marker
// convention: a timer-driven batch cut while the sender is mid-service
// of a channel (quantum already granted) must encode the pre-quantum
// deficit, and the receiver must apply the mirror-image adjustment —
// in both its own mid-service and boundary states. Any asymmetry shows
// up as desynchronization in a lossless run.
func TestMidServiceMarkersStayConsistent(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nch := 2 + rng.Intn(4)
		quanta := make([]int64, nch)
		for i := range quanta {
			quanta[i] = int64(2000 + rng.Intn(3000)) // big quanta: services span many packets
		}
		g := channel.NewGroup(nch, channel.Impairments{})
		st, err := NewStriper(StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: g.Senders(),
			Markers:  MarkerPolicy{Every: 3, Position: 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewResequencer(ResequencerConfig{
			Sched: sched.MustSRR(quanta),
			Mode:  ModeLogical,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 300 + rng.Intn(300)
		var delivered []*packet.Packet
		for i := 0; i < n; i++ {
			// Small packets keep the sender mid-service most of the time;
			// forced batches land in every automaton state.
			if err := st.Send(packet.NewDataSized(50 + rng.Intn(400))); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				st.EmitMarkers()
			}
			if rng.Intn(2) == 0 {
				c := rng.Intn(nch)
				if p, ok := g.Queues[c].Recv(); ok {
					rs.Arrive(c, p)
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				delivered = append(delivered, p)
			}
		}
		delivered = append(delivered, pumpAll(g, rs)...)
		if len(delivered) != n {
			t.Logf("seed %d: delivered %d of %d", seed, len(delivered), n)
			return false
		}
		for i, p := range delivered {
			if p.ID != uint64(i) {
				t.Logf("seed %d: position %d got ID %d (resyncs=%d)", seed, i, p.ID, rs.Stats().Resyncs)
				return false
			}
		}
		// A lossless run must need no state corrections at all: every
		// marker, wherever it was cut, must agree with the receiver.
		if rs.Stats().Resyncs != 0 {
			t.Logf("seed %d: %d spurious resyncs in a lossless run", seed, rs.Stats().Resyncs)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMidServiceMarkersRecoverLoss combines forced mid-service batches
// with loss: the tail after losses stop must still come out complete
// and FIFO.
func TestMidServiceMarkersRecoverLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const nch = 3
	quanta := sched.UniformQuanta(nch, 4000)
	g := channel.NewGroup(nch, channel.Impairments{})
	drop := map[uint64]bool{}
	const lossy = 1500
	const total = 2500
	for i := uint64(0); i < lossy; i++ {
		if rng.Float64() < 0.25 {
			drop[i] = true
		}
	}
	senders := g.Senders()
	for i := range senders {
		senders[i] = &dropSender{inner: senders[i], drop: drop}
	}
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: senders,
		Markers:  MarkerPolicy{Every: 2, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR(quanta), Mode: ModeLogical})

	var delivered []*packet.Packet
	for i := 0; i < total; i++ {
		if err := st.Send(packet.NewDataSized(100 + rng.Intn(600))); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			st.EmitMarkers() // timer markers landing mid-service constantly
		}
		for k := 0; k < 2; k++ {
			c := rng.Intn(nch)
			if p, ok := g.Queues[c].Recv(); ok {
				rs.Arrive(c, p)
			}
		}
		for {
			p, ok := rs.Next()
			if !ok {
				break
			}
			delivered = append(delivered, p)
		}
	}
	delivered = append(delivered, pumpAll(g, rs)...)
	delivered = append(delivered, rs.Drain()...)

	const margin = 120
	var tail []uint64
	for _, p := range delivered {
		if p.ID >= lossy+margin {
			tail = append(tail, p.ID)
		}
	}
	if len(tail) != total-lossy-margin {
		t.Fatalf("tail has %d packets, want %d", len(tail), total-lossy-margin)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i] != tail[i-1]+1 {
			t.Fatalf("tail misordered: %d after %d", tail[i], tail[i-1])
		}
	}
}
