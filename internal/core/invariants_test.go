package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// TestDeliveryInvariants is a randomized soak over the whole engine:
// arbitrary quanta, sizes, loss rates, marker policies and arrival
// interleavings must never panic and must uphold the conservation
// invariants — every delivered packet was sent (no invention), nothing
// is delivered twice (no duplication), and with Drain every packet that
// physically arrived is eventually delivered (no black holes).
func TestDeliveryInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nch := 2 + rng.Intn(7)
		quanta := make([]int64, nch)
		for i := range quanta {
			quanta[i] = int64(100 + rng.Intn(4000))
		}
		loss := rng.Float64() * 0.6
		g := channel.NewGroup(nch, channel.Impairments{Loss: loss, Seed: seed})
		markers := MarkerPolicy{Every: 1 + uint64(rng.Intn(8)), Position: rng.Intn(nch)}
		if rng.Intn(5) == 0 {
			markers = MarkerPolicy{} // sometimes no markers at all
		}
		st, err := NewStriper(StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: g.Senders(),
			Markers:  markers,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewResequencer(ResequencerConfig{
			Sched: sched.MustSRR(quanta),
			Mode:  ModeLogical,
		})
		if err != nil {
			t.Fatal(err)
		}

		n := 100 + rng.Intn(500)
		seen := make(map[uint64]bool)
		var delivered []uint64
		deliver := func(p *packet.Packet) bool {
			if p.Kind != packet.Data {
				t.Errorf("non-data packet delivered: %v", p)
				return false
			}
			if p.ID >= uint64(n) {
				t.Errorf("invented packet ID %d (sent %d)", p.ID, n)
				return false
			}
			if seen[p.ID] {
				t.Errorf("packet %d delivered twice", p.ID)
				return false
			}
			seen[p.ID] = true
			delivered = append(delivered, p.ID)
			return true
		}

		for i := 0; i < n; i++ {
			if err := st.Send(packet.NewDataSized(1 + rng.Intn(2000))); err != nil {
				t.Fatal(err)
			}
			// Random partial pumping.
			for k := 0; k < rng.Intn(3); k++ {
				c := rng.Intn(nch)
				if p, ok := g.Queues[c].Recv(); ok {
					rs.Arrive(c, p)
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				if !deliver(p) {
					return false
				}
			}
		}
		// Final pump and drain.
		for {
			moved := false
			for c, q := range g.Queues {
				if p, ok := q.Recv(); ok {
					rs.Arrive(c, p)
					moved = true
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				if !deliver(p) {
					return false
				}
			}
			if !moved {
				break
			}
		}
		for _, p := range rs.Drain() {
			if p.Kind == packet.Data && !deliver(p) {
				return false
			}
		}
		if rs.Buffered() != 0 {
			t.Errorf("Drain left %d packets", rs.Buffered())
			return false
		}

		// Conservation: everything that survived the channels was
		// delivered exactly once.
		ts := g.TotalStats()
		survivors := ts.Sent - ts.Lost - ts.Corrupted
		// survivors counts markers too; subtract markers that reached
		// the receiver (all markers that weren't lost).
		dataSurvivors := int(survivors) - int(rs.Stats().Markers) - int(rs.Stats().BadMarkers)
		if len(delivered) != dataSurvivors {
			t.Errorf("seed %d: delivered %d, surviving data packets %d", seed, len(delivered), dataSurvivors)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSequenceModeInvariants repeats the soak for the with-header
// variant, adding the stronger guarantee: delivery is globally FIFO
// (strictly increasing IDs) even under loss.
func TestSequenceModeInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nch := 2 + rng.Intn(5)
		quanta := sched.UniformQuanta(nch, int64(500+rng.Intn(3000)))
		loss := rng.Float64() * 0.5
		g := channel.NewGroup(nch, channel.Impairments{Loss: loss, Seed: seed})
		st, err := NewStriper(StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: g.Senders(),
			AddSeq:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewResequencer(ResequencerConfig{N: nch, Mode: ModeSequence})
		if err != nil {
			t.Fatal(err)
		}
		n := 100 + rng.Intn(400)
		for i := 0; i < n; i++ {
			if err := st.Send(packet.NewDataSized(1 + rng.Intn(1500))); err != nil {
				t.Fatal(err)
			}
		}
		var ids []uint64
		for {
			moved := false
			for c, q := range g.Queues {
				if p, ok := q.Recv(); ok {
					rs.Arrive(c, p)
					moved = true
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				ids = append(ids, p.ID)
			}
			if !moved {
				break
			}
		}
		for _, p := range rs.Drain() {
			if p.Kind == packet.Data {
				ids = append(ids, p.ID)
			}
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Errorf("seed %d: sequence mode misordered: %d after %d", seed, ids[i], ids[i-1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPktFIFOProperty fuzzes the internal ring against a reference
// slice implementation.
func TestPktFIFOProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var f pktFIFO
		var ref []*packet.Packet
		for op := 0; op < 3000; op++ {
			switch rng.Intn(3) {
			case 0: // push
				p := packet.NewDataSized(rng.Intn(10))
				p.ID = uint64(op)
				f.push(p)
				ref = append(ref, p)
			case 1: // pop
				got, ok := f.pop()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := ref[0]
				ref = ref[1:]
				if !ok || got != want {
					return false
				}
			case 2: // peek
				got, ok := f.peek()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || got != ref[0] {
					return false
				}
			}
			if f.len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
