package core

import (
	"math/rand"
	"testing"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// TestNextBatchEquivalentToNext feeds one impaired striped stream to
// two identical resequencers and drains one through Next and the other
// through NextBatch with awkward batch sizes. The run-continuation fast
// path inside NextBatch must produce exactly the delivery sequence the
// plain scan does, including across losses, markers, and the blocking
// boundaries where both drains come up empty.
func TestNextBatchEquivalentToNext(t *testing.T) {
	const nch = 3
	quanta := []int64{1500, 1000, 1500}
	g := channel.NewGroup(nch, channel.Impairments{Loss: 0.05, Seed: 11})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 2, Position: 0},
	})
	rsA := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR(quanta), Mode: ModeLogical})
	rsB := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR(quanta), Mode: ModeLogical})

	rng := rand.New(rand.NewSource(7))
	var gotA, gotB []uint64
	buf := make([]*packet.Packet, 16)
	drainBoth := func() {
		for {
			p, ok := rsA.Next()
			if !ok {
				break
			}
			gotA = append(gotA, p.ID)
		}
		for {
			// Batch sizes cycle through small odd values so batch
			// boundaries land at every possible offset within runs.
			n := rsB.NextBatch(buf[:1+rng.Intn(len(buf)-1)])
			if n == 0 {
				break
			}
			for _, p := range buf[:n] {
				gotB = append(gotB, p.ID)
			}
		}
	}

	for i := 0; i < 4000; i++ {
		size := 100 + rng.Intn(1300)
		if err := st.Send(packet.NewData(make([]byte, size))); err != nil {
			t.Fatal(err)
		}
		for c, q := range g.Queues {
			if p, ok := q.Recv(); ok {
				// The same packet pointer feeds both resequencers;
				// neither mutates buffered packets, so the tee is safe.
				rsA.Arrive(c, p)
				rsB.Arrive(c, p)
			}
		}
		if i%17 == 0 {
			drainBoth()
		}
	}
	for c, q := range g.Queues {
		for {
			p, ok := q.Recv()
			if !ok {
				break
			}
			rsA.Arrive(c, p)
			rsB.Arrive(c, p)
		}
	}
	drainBoth()

	if len(gotA) == 0 {
		t.Fatal("no deliveries at all")
	}
	if len(gotA) != len(gotB) {
		t.Fatalf("Next delivered %d packets, NextBatch %d", len(gotA), len(gotB))
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("delivery %d: Next gave ID %d, NextBatch gave ID %d", i, gotA[i], gotB[i])
		}
	}
	sa, sb := rsA.Stats(), rsB.Stats()
	if sa.Delivered != sb.Delivered || sa.DeliveredBytes != sb.DeliveredBytes {
		t.Fatalf("stats diverged: Next %+v, NextBatch %+v", sa, sb)
	}
}

// TestBatchedPathSteadyStateZeroAlloc pins the zero-allocation claim of
// the batched hot path: once the pool and every internal buffer have
// reached steady state, a full send-batch / arrive / next-batch /
// release cycle performs no heap allocation at all. Markers are
// disabled because marker emission builds control payloads (an
// annotated, accounted-for escape); the data path itself must be clean.
func TestBatchedPathSteadyStateZeroAlloc(t *testing.T) {
	const nch, batch = 4, 64
	quanta := sched.UniformQuanta(nch, 1500)
	g := channel.NewGroup(nch, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
	})
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR(quanta), Mode: ModeLogical})

	rng := rand.New(rand.NewSource(3))
	pkts := make([]*packet.Packet, batch)
	delivered := make([]*packet.Packet, batch+nch)
	cycle := func(size func() int) {
		packet.GetBatch(pkts)
		for _, p := range pkts {
			p.Kind = packet.Data
			p.Resize(size())
		}
		if n, err := st.SendBatch(pkts); err != nil || n != batch {
			t.Fatalf("SendBatch: n=%d err=%v", n, err)
		}
		for c, q := range g.Queues {
			for {
				p, ok := q.Recv()
				if !ok {
					break
				}
				rs.Arrive(c, p)
			}
		}
		for {
			n := rs.NextBatch(delivered)
			if n == 0 {
				break
			}
			packet.ReleaseBatch(delivered[:n])
		}
	}
	// Warm to steady state: the max-size pass grows every cycling
	// payload to full capacity so Resize never reallocates, then mixed
	// sizes settle the queue and resequencer buffers.
	for i := 0; i < 4; i++ {
		cycle(func() int { return 1000 })
	}
	for i := 0; i < 32; i++ {
		cycle(func() int { return 200 + rng.Intn(801) })
	}

	allocs := testing.AllocsPerRun(50, func() {
		cycle(func() int { return 200 + rng.Intn(801) })
	})
	if allocs != 0 {
		t.Fatalf("steady-state batched cycle allocates %.1f times per run, want 0", allocs)
	}
}
