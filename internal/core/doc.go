// Package core implements the paper's striping protocol proper: the
// sender-side channel striping engine (Striper) and the receiver-side
// resequencing engine (Resequencer) built on logical reception, together
// with the marker-based synchronization-recovery protocol of Section 5.
//
// # Logical reception (Section 4)
//
// The receiver keeps a per-channel buffer between physical reception and
// logical reception, and runs the same causal scheduling automaton as
// the sender. The automaton tells the receiver which channel the next
// packet must be removed from; the receiver blocks on that channel
// (buffering arrivals on the others) until a packet is available there.
// If no packets are lost, the delivered sequence equals the sent
// sequence (Theorem 4.1) with no modification of any data packet.
//
// # Markers and quasi-FIFO (Section 5)
//
// A single undetected loss desynchronizes the simulation, after which
// delivery is merely quasi-FIFO. Each packet has an implicit number
// (G, D) — the sender's global round number and the channel's deficit
// counter just before the packet is sent. The sender periodically cuts a
// marker on every channel carrying the implicit number of the next
// packet it will send on that channel. On receiving a marker (r, d) for
// channel c the receiver adopts r_c = r and DC_c = d, and skips channel
// c in its scan while r_c exceeds its own global round G (the receiver
// arrived "too early" at the channel because packets were lost). Once
// loss stops, FIFO delivery is restored as soon as one marker has been
// delivered on every channel (Theorem 5.1) — about one marker period
// plus a one-way propagation delay, versus a round trip for reset-based
// schemes.
//
// # Delivery modes
//
// The Resequencer supports the three receive disciplines compared in
// Section 6.2: ModeLogical (the paper's scheme), ModeNone (no
// resequencing; packets delivered in physical arrival order), and
// ModeSequence (the "with header" variant that resequences on explicit
// sequence numbers, for channels where adding a header is acceptable).
//
// The engines are pure state machines driven by Arrive/Next calls; they
// contain no goroutines and no clocks, so the same code runs under the
// synchronous test harness, the discrete-event simulator, and the live
// goroutine pumps in the public stripe package.
package core
