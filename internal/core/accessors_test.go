package core

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// TestAccessorsAndEdgeArrivals covers the observability accessors and
// the defensive edges of Arrive/WaitingOn across modes.
func TestAccessorsAndEdgeArrivals(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{300, 100}),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 1, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR([]int64{300, 100}), Mode: ModeLogical})

	if st.N() != 2 {
		t.Fatalf("N = %d", st.N())
	}
	var total int64
	for i := 0; i < 40; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
		total += 100
	}
	if st.Round() == 0 {
		t.Fatal("rounds never advanced")
	}
	if st.SentBytes() != total {
		t.Fatalf("SentBytes = %d, want %d", st.SentBytes(), total)
	}
	p0, b0 := st.SentOn(0)
	p1, b1 := st.SentOn(1)
	if b0+b1 != total || p0+p1 != 40 {
		t.Fatalf("per-channel %d/%d bytes %d/%d packets do not sum", b0, b1, p0, p1)
	}
	// 3:1 quanta with uniform packets: channel 0 carries ~3x.
	if p0 < 2*p1 {
		t.Fatalf("split %d:%d not ~3:1", p0, p1)
	}

	// Defensive arrivals: out-of-range channels are dropped silently.
	rs.Arrive(-1, packet.NewDataSized(10))
	rs.Arrive(99, packet.NewDataSized(10))
	got := pumpAll(g, rs)
	if len(got) != 40 {
		t.Fatalf("delivered %d", len(got))
	}
	if rs.DeliveredBytesOn(0)+rs.DeliveredBytesOn(1) != total {
		t.Fatal("DeliveredBytesOn does not sum to the stream size")
	}

	// WaitingOn per mode.
	if w := rs.WaitingOn(); w < 0 || w > 1 {
		t.Fatalf("logical WaitingOn = %d", w)
	}
	rn := mustReseq(t, ResequencerConfig{N: 2, Mode: ModeNone})
	if rn.WaitingOn() != -1 {
		t.Fatal("ModeNone WaitingOn should be -1")
	}
}

// TestSequenceModeControlPackets covers the marker/reset/credit paths
// of the sequence-mode scan and Drain with control residue.
func TestSequenceModeControlPackets(t *testing.T) {
	rs := mustReseq(t, ResequencerConfig{N: 2, Mode: ModeSequence})
	seen := 0
	rs.onMarker = func(int, packet.MarkerBlock) { seen++ }

	mk := func(seq uint64) *packet.Packet {
		p := packet.NewDataSized(50)
		p.Seq, p.HasSeq = seq, true
		p.ID = seq
		return p
	}
	rs.Arrive(0, packet.NewMarker(packet.MarkerBlock{Channel: 0, Round: 1}))
	rs.Arrive(0, mk(0))
	rs.Arrive(1, packet.NewCredit(packet.CreditBlock{Channel: 1, Grant: 10}))
	rs.Arrive(1, mk(1))
	bad := packet.NewMarker(packet.MarkerBlock{Channel: 1})
	bad.Payload[5] ^= 0xff
	rs.Arrive(1, bad)

	var ids []uint64
	for {
		p, ok := rs.Next()
		if !ok {
			break
		}
		ids = append(ids, p.ID)
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("delivered %v", ids)
	}
	if seen != 1 {
		t.Fatalf("marker hook saw %d", seen)
	}
	if rs.Stats().BadMarkers != 1 {
		t.Fatalf("bad markers = %d", rs.Stats().BadMarkers)
	}
	// Unstamped data delivers eagerly.
	rs.Arrive(0, packet.NewDataSized(9))
	if p, ok := rs.Next(); !ok || p.Len() != 9 {
		t.Fatalf("unstamped packet: %v %v", p, ok)
	}
	// Drain with only control packets buffered.
	rs.Arrive(0, packet.NewCredit(packet.CreditBlock{Channel: 0, Grant: 1}))
	rs.Arrive(1, packet.NewCredit(packet.CreditBlock{Channel: 1, Grant: 1}))
	if out := rs.Drain(); len(out) != 0 {
		t.Fatalf("Drain yielded %d from control-only buffers", len(out))
	}
	if rs.Buffered() != 0 {
		t.Fatalf("Drain left %d buffered", rs.Buffered())
	}
}

// TestResetEpochShortPayload covers resetEpoch's defensive branch.
func TestResetEpochShortPayload(t *testing.T) {
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR([]int64{100, 100}), Mode: ModeLogical})
	// A malformed reset (short payload) decodes as epoch 0 and is
	// treated as stale; nothing breaks.
	rs.Arrive(0, &packet.Packet{Kind: packet.Reset, Payload: []byte{1, 2}})
	rs.Arrive(0, func() *packet.Packet { p := packet.NewDataSized(100); p.ID = 0; return p }())
	rs.Arrive(1, func() *packet.Packet { p := packet.NewDataSized(100); p.ID = 1; return p }())
	var ids []uint64
	for {
		p, ok := rs.Next()
		if !ok {
			break
		}
		ids = append(ids, p.ID)
	}
	if len(ids) != 2 || rs.Stats().Resets != 0 {
		t.Fatalf("short reset mishandled: ids=%v stats=%+v", ids, rs.Stats())
	}
}

// TestCausalModeMarkersIgnoredButObserved covers nextCausal's control
// branches: markers and credits on a causal receiver are consumed
// without touching the simulation.
func TestCausalModeMarkersIgnoredButObserved(t *testing.T) {
	rx, _ := sched.NewRFQ([]int64{1, 1}, 5)
	tx, _ := sched.NewRFQ([]int64{1, 1}, 5)
	seen := 0
	rs, err := NewResequencer(ResequencerConfig{
		Mode:        ModeLogical,
		CausalSched: rx,
		OnMarker:    func(int, packet.MarkerBlock) { seen++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	g := channel.NewGroup(2, channel.Impairments{})
	st := mustStriper(t, StriperConfig{CausalSched: tx, Channels: g.Senders()})
	for i := 0; i < 6; i++ {
		if err := st.Send(packet.NewDataSized(80)); err != nil {
			t.Fatal(err)
		}
	}
	// Inject control traffic mid-stream on both channels.
	rs.Arrive(0, packet.NewMarker(packet.MarkerBlock{Channel: 0, Round: 3}))
	rs.Arrive(1, packet.NewCredit(packet.CreditBlock{Channel: 1, Grant: 9}))
	bad := packet.NewMarker(packet.MarkerBlock{Channel: 0})
	bad.Payload[6] ^= 0x01
	rs.Arrive(0, bad)
	got := pumpAll(g, rs)
	if len(got) != 6 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, p := range got {
		if p.ID != uint64(i) {
			t.Fatalf("causal order broken at %d", i)
		}
	}
	if seen != 1 || rs.Stats().BadMarkers != 1 {
		t.Fatalf("marker accounting: seen=%d stats=%+v", seen, rs.Stats())
	}
}
