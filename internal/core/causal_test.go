package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// TestCausalLogicalReceptionRFQ exercises Theorem 4.1 in its full
// generality: logical reception needs only a *causal* sender algorithm,
// not a round-robin one. A seeded randomized scheduler (RFQ) stripes;
// the receiver simulates it from the same seed and recovers exact FIFO
// order over lossless channels.
func TestCausalLogicalReceptionRFQ(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		nch := 2 + rng.Intn(5)
		weights := make([]int64, nch)
		for i := range weights {
			weights[i] = int64(1 + rng.Intn(5))
		}
		tx, err := sched.NewRFQ(weights, seed)
		if err != nil {
			t.Fatal(err)
		}
		rxSched, err := sched.NewRFQ(weights, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := channel.NewGroup(nch, channel.Impairments{})
		st, err := NewStriper(StriperConfig{CausalSched: tx, Channels: g.Senders()})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewResequencer(ResequencerConfig{Mode: ModeLogical, CausalSched: rxSched})
		if err != nil {
			t.Fatal(err)
		}
		n := 100 + rng.Intn(400)
		for i := 0; i < n; i++ {
			if err := st.Send(packet.NewDataSized(1 + rng.Intn(1500))); err != nil {
				t.Fatal(err)
			}
		}
		got := pumpAll(g, rs)
		if len(got) != n {
			return false
		}
		for i, p := range got {
			if p.ID != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCausalModeValidation checks constructor rules for the causal
// path.
func TestCausalModeValidation(t *testing.T) {
	if _, err := NewResequencer(ResequencerConfig{Mode: ModeLogical}); err == nil {
		t.Error("ModeLogical with no scheduler accepted")
	}
	rfq, _ := sched.NewRFQ([]int64{1, 1}, 3)
	rs, err := NewResequencer(ResequencerConfig{Mode: ModeLogical, CausalSched: rfq})
	if err != nil {
		t.Fatal(err)
	}
	if rs.N() != 2 {
		t.Fatalf("N = %d", rs.N())
	}
	if rs.WaitingOn() < 0 || rs.WaitingOn() > 1 {
		t.Fatalf("WaitingOn = %d", rs.WaitingOn())
	}
}

// TestCausalModeResetRestoresStartState checks epoch reset under the
// causal path: both ends restart from the shared seed state.
func TestCausalModeResetRestoresStartState(t *testing.T) {
	const nch = 2
	weights := []int64{1, 1}
	tx, _ := sched.NewRFQ(weights, 77)
	rx, _ := sched.NewRFQ(weights, 77)
	g := channel.NewGroup(nch, channel.Impairments{})
	st, err := NewStriper(StriperConfig{CausalSched: tx, Channels: g.Senders()})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewResequencer(ResequencerConfig{Mode: ModeLogical, CausalSched: rx})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	// Lose everything in flight (crash), then reset. The RFQ striper
	// cannot use round markers, so the reset must restore the receiver's
	// generator to the shared start state.
	for _, q := range g.Queues {
		for {
			if _, ok := q.Recv(); !ok {
				break
			}
		}
	}
	// The reset needs the *striper* automaton back at s0 too; the
	// generic Reset handles that.
	if err := st.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	got := pumpAll(g, rs)
	if len(got) != 10 {
		t.Fatalf("delivered %d after reset, want 10", len(got))
	}
	for i, p := range got {
		if p.ID != uint64(9+i) {
			t.Fatalf("delivery %d = ID %d", i, p.ID)
		}
	}
}
