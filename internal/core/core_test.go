package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// dropSender drops specific packets by ingress ID, for deterministic
// loss placement in walkthrough tests.
type dropSender struct {
	inner channel.Sender
	drop  map[uint64]bool
}

func (d *dropSender) Send(p *packet.Packet) error {
	if p.Kind == packet.Data && d.drop[p.ID] {
		return nil
	}
	return d.inner.Send(p)
}

func mustStriper(t *testing.T, cfg StriperConfig) *Striper {
	t.Helper()
	st, err := NewStriper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustReseq(t *testing.T, cfg ResequencerConfig) *Resequencer {
	t.Helper()
	r, err := NewResequencer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// pumpAll moves every queued packet from the channels into the
// resequencer and returns all deliveries that unblock.
func pumpAll(g *channel.Group, r *Resequencer) []*packet.Packet {
	var out []*packet.Packet
	for {
		moved := false
		for c, q := range g.Queues {
			if p, ok := q.Recv(); ok {
				r.Arrive(c, p)
				moved = true
			}
		}
		for {
			p, ok := r.Next()
			if !ok {
				break
			}
			out = append(out, p)
		}
		if !moved {
			return out
		}
	}
}

// TestMarkerWalkthroughFigures8to13 reproduces the Section 5
// walkthrough exactly: two equal channels, packet size == quantum (so
// SRR reduces to RR), packets numbered 1..18 in the paper (0..17 here),
// the paper's packet 7 (our ID 6) lost, and a marker batch cut before
// the paper's round 7 (our round 6) carrying G=7 (our Round=6).
//
// The expected delivery sequence shows all three phases: in-order
// delivery before the loss, persistent misordering after it, and full
// restoration of FIFO delivery from the marker onward (Figure 13).
func TestMarkerWalkthroughFigures8to13(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	senders := g.Senders()
	senders[0] = &dropSender{inner: senders[0], drop: map[uint64]bool{6: true}}

	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100}),
		Channels: senders,
		Markers:  MarkerPolicy{Every: 6, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR([]int64{100, 100}),
		Mode:  ModeLogical,
	})

	for i := 0; i < 18; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	if st.SentMarkers() != 2 {
		t.Fatalf("sent %d markers, want 2 (one per channel)", st.SentMarkers())
	}

	got := pumpAll(g, rs)
	want := []uint64{0, 1, 2, 3, 4, 5, 8, 7, 10, 9, 11, 12, 13, 14, 15, 16, 17}
	if len(got) != len(want) {
		ids := make([]uint64, len(got))
		for i, p := range got {
			ids[i] = p.ID
		}
		t.Fatalf("delivered %d packets %v, want %d", len(got), ids, len(want))
	}
	for i, p := range got {
		if p.ID != want[i] {
			ids := make([]uint64, len(got))
			for j, q := range got {
				ids[j] = q.ID
			}
			t.Fatalf("delivery sequence %v, want %v", ids, want)
		}
	}
	s := rs.Stats()
	if s.Markers != 2 {
		t.Fatalf("receiver consumed %d markers, want 2", s.Markers)
	}
	if s.Resyncs == 0 {
		t.Fatal("marker did not trigger a resynchronization")
	}
}

// TestTheorem41FIFOWithoutLoss is Theorem 4.1 as a property test: with
// no loss, any SRR striper paired with a logical-reception receiver
// built from the same automaton delivers exactly the sent sequence,
// regardless of quanta, packet sizes, and arrival interleaving.
func TestTheorem41FIFOWithoutLoss(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nch := 2 + rng.Intn(6)
		quanta := make([]int64, nch)
		for i := range quanta {
			quanta[i] = int64(200 + rng.Intn(3000))
		}
		g := channel.NewGroup(nch, channel.Impairments{})
		st, err := NewStriper(StriperConfig{
			Sched:    sched.MustSRR(quanta),
			Channels: g.Senders(),
			Markers:  MarkerPolicy{Every: 1 + uint64(rng.Intn(5)), Position: rng.Intn(nch)},
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewResequencer(ResequencerConfig{
			Sched: sched.MustSRR(quanta),
			Mode:  ModeLogical,
		})
		if err != nil {
			t.Fatal(err)
		}

		n := 200 + rng.Intn(600)
		var delivered []*packet.Packet
		for i := 0; i < n; i++ {
			if err := st.Send(packet.NewDataSized(1 + rng.Intn(1500))); err != nil {
				t.Fatal(err)
			}
			// Interleave arrivals irregularly to exercise buffering: move
			// a random number of packets from random channels.
			for k := 0; k < rng.Intn(4); k++ {
				c := rng.Intn(nch)
				if p, ok := g.Queues[c].Recv(); ok {
					rs.Arrive(c, p)
				}
			}
			for {
				p, ok := rs.Next()
				if !ok {
					break
				}
				delivered = append(delivered, p)
			}
		}
		delivered = append(delivered, pumpAll(g, rs)...)
		if len(delivered) != n {
			return false
		}
		for i, p := range delivered {
			if p.ID != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem51MarkerRecovery is the Theorem 5.1 property: under heavy
// random loss (up to 80%), once losses stop and a marker has been
// delivered on every channel, delivery is FIFO from that point on, and
// no post-recovery packet is missing.
func TestTheorem51MarkerRecovery(t *testing.T) {
	for _, lossPct := range []float64{0.1, 0.3, 0.5, 0.8} {
		lossPct := lossPct
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(lossPct * 1000)))
			const nch = 3
			quanta := []int64{1500, 1500, 1500}
			g := channel.NewGroup(nch, channel.Impairments{})

			// Lossy prefix: drop each of the first `lossyCount` data
			// packets with probability lossPct.
			const lossyCount = 600
			const total = 1200
			drop := map[uint64]bool{}
			for i := uint64(0); i < lossyCount; i++ {
				if rng.Float64() < lossPct {
					drop[i] = true
				}
			}
			senders := g.Senders()
			for i := range senders {
				senders[i] = &dropSender{inner: senders[i], drop: drop}
			}

			st := mustStriper(t, StriperConfig{
				Sched:    sched.MustSRR(quanta),
				Channels: senders,
				Markers:  MarkerPolicy{Every: 4, Position: 0},
			})
			rs := mustReseq(t, ResequencerConfig{
				Sched: sched.MustSRR(quanta),
				Mode:  ModeLogical,
			})

			var delivered []*packet.Packet
			for i := 0; i < total; i++ {
				if err := st.Send(packet.NewDataSized(100 + rng.Intn(1400))); err != nil {
					t.Fatal(err)
				}
				for k := 0; k < 2; k++ {
					c := rng.Intn(nch)
					if p, ok := g.Queues[c].Recv(); ok {
						rs.Arrive(c, p)
					}
				}
				for {
					p, ok := rs.Next()
					if !ok {
						break
					}
					delivered = append(delivered, p)
				}
			}
			delivered = append(delivered, pumpAll(g, rs)...)
			delivered = append(delivered, rs.Drain()...)

			// Recovery must complete within a couple of marker periods
			// after the loss stops. The marker period here is 4 rounds ~=
			// 12+ packets; give it a generous margin of 100 packets.
			const recoveredBy = lossyCount + 100
			var tail []uint64
			for _, p := range delivered {
				if p.ID >= recoveredBy {
					tail = append(tail, p.ID)
				}
			}
			if len(tail) != total-recoveredBy {
				t.Fatalf("loss %.0f%%: %d post-recovery packets delivered, want %d",
					lossPct*100, len(tail), total-recoveredBy)
			}
			for i := 1; i < len(tail); i++ {
				if tail[i] != tail[i-1]+1 {
					t.Fatalf("loss %.0f%%: post-recovery delivery out of order: %d after %d",
						lossPct*100, tail[i], tail[i-1])
				}
			}
			if rs.Stats().Resyncs == 0 && lossPct > 0 && len(drop) > 0 {
				t.Fatalf("loss %.0f%%: no resynchronizations recorded", lossPct*100)
			}
		})
	}
}

// TestModeNoneArrivalOrder checks the no-resequencing baseline.
func TestModeNoneArrivalOrder(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100}),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 2, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{N: 2, Mode: ModeNone})
	for i := 0; i < 10; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain channel 1 first: ModeNone must deliver in arrival order,
	// i.e. all odd IDs then all even IDs.
	var got []uint64
	for _, c := range []int{1, 0} {
		for {
			p, ok := g.Queues[c].Recv()
			if !ok {
				break
			}
			rs.Arrive(c, p)
		}
	}
	for {
		p, ok := rs.Next()
		if !ok {
			break
		}
		got = append(got, p.ID)
	}
	want := []uint64{1, 3, 5, 7, 9, 0, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("delivered %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	if rs.Stats().Markers == 0 {
		t.Fatal("ModeNone did not consume markers")
	}
}

// TestModeSequenceGuaranteedFIFO checks the "with header" variant:
// exact FIFO despite adversarial arrival interleaving, and gap skipping
// after loss.
func TestModeSequenceGuaranteedFIFO(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	senders := g.Senders()
	senders[0] = &dropSender{inner: senders[0], drop: map[uint64]bool{4: true}}
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100}),
		Channels: senders,
		AddSeq:   true,
	})
	rs := mustReseq(t, ResequencerConfig{N: 2, Mode: ModeSequence})
	for i := 0; i < 12; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	got := pumpAll(g, rs)
	got = append(got, rs.Drain()...)
	want := []uint64{0, 1, 2, 3, 5, 6, 7, 8, 9, 10, 11} // 4 lost, order exact
	if len(got) != len(want) {
		ids := make([]uint64, len(got))
		for i, p := range got {
			ids[i] = p.ID
		}
		t.Fatalf("delivered %v, want %v", ids, want)
	}
	for i, p := range got {
		if p.ID != want[i] {
			t.Fatalf("delivery %d = %d, want %d", i, p.ID, want[i])
		}
	}
}

// TestLogicalReceptionEqualsFairQueuing cross-checks Section 4's core
// claim at the code level: feeding the striper's channel outputs into
// the sched.FQ engine (the forward direction) produces the same sequence
// as the Resequencer's logical reception.
func TestLogicalReceptionEqualsFairQueuing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	quanta := []int64{900, 2100, 1300}
	g := channel.NewGroup(3, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
	})
	const n = 400
	for i := 0; i < n; i++ {
		if err := st.Send(packet.NewDataSized(1 + rng.Intn(1500))); err != nil {
			t.Fatal(err)
		}
	}

	// Copy channel contents for both consumers.
	perChannel := make([][]*packet.Packet, 3)
	for c, q := range g.Queues {
		for {
			p, ok := q.Recv()
			if !ok {
				break
			}
			perChannel[c] = append(perChannel[c], p)
		}
	}

	fq := sched.NewFQ(sched.MustSRR(quanta))
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR(quanta), Mode: ModeLogical})
	for c, pkts := range perChannel {
		for _, p := range pkts {
			fq.Enqueue(c, p)
			rs.Arrive(c, p)
		}
	}
	fqOut := fq.DrainBacklogged()
	var lrOut []*packet.Packet
	for {
		p, ok := rs.Next()
		if !ok {
			break
		}
		lrOut = append(lrOut, p)
	}
	if len(fqOut) != n || len(lrOut) != n {
		t.Fatalf("fq delivered %d, logical reception %d, want %d", len(fqOut), len(lrOut), n)
	}
	for i := range fqOut {
		if fqOut[i].ID != lrOut[i].ID {
			t.Fatalf("position %d: FQ %d vs logical reception %d", i, fqOut[i].ID, lrOut[i].ID)
		}
	}
}

// TestResetRecovery checks epoch reset: after a reset both ends restart
// from s0 and old-epoch traffic in flight is discarded.
func TestResetRecovery(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100}),
		Channels: g.Senders(),
	})
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR([]int64{100, 100}), Mode: ModeLogical})

	for i := 0; i < 7; i++ { // odd count: sender state is mid-round
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	// Old-epoch traffic never reaches the receiver (crash scenario):
	// drop it from the channels.
	for _, q := range g.Queues {
		for {
			if _, ok := q.Recv(); !ok {
				break
			}
		}
	}
	if err := st.Reset(); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch())
	}
	for i := 0; i < 8; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	got := pumpAll(g, rs)
	if len(got) != 8 {
		t.Fatalf("delivered %d packets after reset, want 8", len(got))
	}
	for i, p := range got {
		if p.ID != uint64(7+i) {
			t.Fatalf("delivery %d = ID %d, want %d", i, p.ID, 7+i)
		}
	}
	if rs.Stats().Resets != 1 {
		t.Fatalf("resets = %d, want 1", rs.Stats().Resets)
	}
}

// TestResetDiscardsBufferedOldEpoch checks that packets already buffered
// at the receiver are flushed by a reset.
func TestResetDiscardsBufferedOldEpoch(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100}),
		Channels: g.Senders(),
	})
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR([]int64{100, 100}), Mode: ModeLogical})

	for i := 0; i < 6; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer channel 1's packets at the receiver but lose channel 0's,
	// so the receiver is desynchronized and blocked.
	for {
		p, ok := g.Queues[1].Recv()
		if !ok {
			break
		}
		rs.Arrive(1, p)
	}
	for {
		if _, ok := g.Queues[0].Recv(); !ok {
			break
		}
	}
	if p, ok := rs.Next(); ok {
		t.Fatalf("unexpected delivery %v before reset", p)
	}

	if err := st.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	got := pumpAll(g, rs)
	if len(got) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(got))
	}
	for i, p := range got {
		if p.ID != uint64(6+i) {
			t.Fatalf("delivery %d = ID %d, want %d", i, p.ID, 6+i)
		}
	}
	if drops := rs.Stats().OldEpochDrops; drops == 0 {
		t.Fatal("no old-epoch packets were discarded")
	}
}

// TestStriperConfigValidation covers constructor errors.
func TestStriperConfigValidation(t *testing.T) {
	g := channel.NewGroup(2, channel.Impairments{})
	if _, err := NewStriper(StriperConfig{Channels: g.Senders()}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewStriper(StriperConfig{Sched: sched.MustSRR([]int64{1, 2, 3}), Channels: g.Senders()}); err == nil {
		t.Error("channel count mismatch accepted")
	}
	if _, err := NewStriper(StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100}),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 1, Position: 5},
	}); err == nil {
		t.Error("out-of-range marker position accepted")
	}
	if _, err := NewResequencer(ResequencerConfig{Mode: ModeLogical}); err == nil {
		t.Error("ModeLogical without scheduler accepted")
	}
	if _, err := NewResequencer(ResequencerConfig{Mode: ModeNone}); err == nil {
		t.Error("ModeNone without channel count accepted")
	}
}

// TestCorruptMarkerIgnored checks that a corrupted marker is discarded
// (detectable corruption) rather than poisoning the receiver state.
func TestCorruptMarkerIgnored(t *testing.T) {
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR([]int64{100, 100}), Mode: ModeLogical})
	m := packet.NewMarker(packet.MarkerBlock{Channel: 0, Round: 99, Deficit: 5})
	m.Payload[8] ^= 0xff // corrupt the round field; CRC now fails
	rs.Arrive(0, m)
	rs.Arrive(0, func() *packet.Packet { p := packet.NewDataSized(100); p.ID = 0; return p }())
	rs.Arrive(1, func() *packet.Packet { p := packet.NewDataSized(100); p.ID = 1; return p }())
	var got []uint64
	for {
		p, ok := rs.Next()
		if !ok {
			break
		}
		got = append(got, p.ID)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("delivered %v, want [0 1]", got)
	}
	if rs.Stats().BadMarkers != 1 {
		t.Fatalf("BadMarkers = %d, want 1", rs.Stats().BadMarkers)
	}
	if rs.Stats().Resyncs != 0 {
		t.Fatalf("corrupt marker changed state: %d resyncs", rs.Stats().Resyncs)
	}
}

// TestStriperGate checks flow-control gating: a vetoed send leaves the
// scheduler untouched so the retry targets the same channel.
type fixedGate struct {
	admit   bool
	consume int
}

func (g *fixedGate) Admit(int, int) bool { return g.admit }
func (g *fixedGate) Consume(int, int)    { g.consume++ }

func TestStriperGate(t *testing.T) {
	grp := channel.NewGroup(2, channel.Impairments{})
	gate := &fixedGate{admit: false}
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100}),
		Channels: grp.Senders(),
		Gate:     gate,
	})
	p := packet.NewDataSized(100)
	if err := st.Send(p); err != ErrGated {
		t.Fatalf("Send = %v, want ErrGated", err)
	}
	if st.SentData() != 0 {
		t.Fatal("gated send was counted")
	}
	gate.admit = true
	if err := st.Send(p); err != nil {
		t.Fatal(err)
	}
	if gate.consume != 1 {
		t.Fatalf("consume = %d, want 1", gate.consume)
	}
	if got := grp.Queues[0].Len(); got != 1 {
		t.Fatalf("channel 0 has %d packets, want 1 (retry must reuse the selection)", got)
	}
}

// TestDrainFlushesTail checks end-of-stream draining in logical mode.
func TestDrainFlushesTail(t *testing.T) {
	g := channel.NewGroup(3, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR([]int64{100, 100, 100}),
		Channels: g.Senders(),
	})
	for i := 0; i < 7; i++ { // not a multiple of 3: tail blocks mid-round
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
	rs := mustReseq(t, ResequencerConfig{Sched: sched.MustSRR([]int64{100, 100, 100}), Mode: ModeLogical})
	got := pumpAll(g, rs)
	got = append(got, rs.Drain()...)
	if len(got) != 7 {
		t.Fatalf("delivered %d, want 7", len(got))
	}
	for i, p := range got {
		if p.ID != uint64(i) {
			t.Fatalf("delivery %d = %d", i, p.ID)
		}
	}
	if rs.Buffered() != 0 {
		t.Fatalf("Drain left %d packets buffered", rs.Buffered())
	}
}
