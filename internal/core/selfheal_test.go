package core

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// TestSelfHealFromCorruptReceiverState exercises the self-stabilization
// extension the paper sketches at the end of Section 5: an arbitrary
// corruption of the receiver's state (here, its global round jumping
// far ahead of the sender — the one fault ordinary markers cannot fix,
// because they all look stale) is detected from the uniform staleness
// of incoming markers and healed by adopting the state the markers
// declare. Afterwards delivery is FIFO again.
func TestSelfHealFromCorruptReceiverState(t *testing.T) {
	const nch = 2
	quanta := sched.UniformQuanta(nch, 100)
	g := channel.NewGroup(nch, channel.Impairments{})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 2, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  ModeLogical,
	})

	send := func(n int) {
		for i := 0; i < n; i++ {
			if err := st.Send(packet.NewDataSized(100)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Healthy warm-up.
	send(20)
	first := pumpAll(g, rs)
	if len(first) != 20 {
		t.Fatalf("warm-up delivered %d", len(first))
	}

	// Fault injection: the receiver's round leaps far ahead (bit flip,
	// bad memory, software bug). Without self-stabilization this is
	// permanent: every future marker is "stale" and ignored, the skip
	// rule never fires, and delivery degenerates to arrival order.
	rs.s.Restore(sched.State{Current: 0, Round: 1 << 20, Deficits: make([]int64, nch)})

	send(200)
	after := pumpAll(g, rs)
	stats := rs.Stats()
	if stats.SelfHeals == 0 {
		t.Fatalf("no self-heal occurred; stats %+v", stats)
	}

	// Everything sent after the heal must come out in exact order. Find
	// the heal point empirically: the suffix of deliveries must be
	// strictly increasing and cover the tail of the ID space.
	ids := make([]uint64, len(after))
	for i, p := range after {
		ids[i] = p.ID
	}
	suffix := len(ids) - 1
	for suffix > 0 && ids[suffix-1] < ids[suffix] {
		suffix--
	}
	inOrder := len(ids) - suffix
	if inOrder < 100 {
		t.Fatalf("only the last %d deliveries were in order after healing; ids tail: %v",
			inOrder, ids[max(0, len(ids)-20):])
	}
	if last := ids[len(ids)-1]; last != 219 {
		t.Fatalf("final delivery ID %d, want 219 (nothing lost after heal)", last)
	}
}

// TestSelfHealDoesNotFireInHealthyLossyRuns guards against spurious
// healing: a long lossy run with frequent markers must recover through
// ordinary marker resynchronization; occasional self-heals are benign
// but must not dominate.
func TestSelfHealDoesNotFireInHealthyLossyRuns(t *testing.T) {
	const nch = 3
	quanta := sched.UniformQuanta(nch, 1500)
	g := channel.NewGroup(nch, channel.Impairments{Loss: 0.3, Seed: 17})
	st := mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(quanta),
		Channels: g.Senders(),
		Markers:  MarkerPolicy{Every: 2, Position: 0},
	})
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(quanta),
		Mode:  ModeLogical,
	})
	for i := 0; i < 3000; i++ {
		if err := st.Send(packet.NewDataSized(100 + (i*131)%1300)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			for c, q := range g.Queues {
				if p, ok := q.Recv(); ok {
					rs.Arrive(c, p)
				}
			}
			for {
				if _, ok := rs.Next(); !ok {
					break
				}
			}
		}
	}
	pumpAll(g, rs)
	stats := rs.Stats()
	if stats.Resyncs == 0 {
		t.Fatal("lossy run produced no ordinary resyncs")
	}
	if stats.SelfHeals > stats.Resyncs/4 {
		t.Fatalf("self-heals (%d) dominate ordinary resyncs (%d)", stats.SelfHeals, stats.Resyncs)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
