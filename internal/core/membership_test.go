package core

import (
	"testing"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// killSender is a channel transport with a cut switch: while dead it
// silently destroys everything handed to it — in-flight loss, not a
// transport error — which models a link that died without telling the
// sender.
type killSender struct {
	inner channel.Sender
	dead  bool
	lost  int
}

func (k *killSender) Send(p *packet.Packet) error {
	if k.dead {
		if p.Kind == packet.Data {
			k.lost++
		}
		return nil
	}
	return k.inner.Send(p)
}

func membershipStriper(t *testing.T, senders []channel.Sender) *Striper {
	t.Helper()
	return mustStriper(t, StriperConfig{
		Sched:    sched.MustSRR(sched.UniformQuanta(len(senders), 100)),
		Channels: senders,
		Markers:  MarkerPolicy{Every: 4, Position: 0},
	})
}

func membershipPair(t *testing.T, nch int) (*channel.Group, *Striper, *Resequencer) {
	t.Helper()
	g := channel.NewGroup(nch, channel.Impairments{})
	st := membershipStriper(t, g.Senders())
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(sched.UniformQuanta(nch, 100)),
		Mode:  ModeLogical,
	})
	return g, st, rs
}

// killPair is membershipPair with channel 1's transport wrapped in a
// kill switch.
func killPair(t *testing.T, nch int) (*channel.Group, *killSender, *Striper, *Resequencer) {
	t.Helper()
	g := channel.NewGroup(nch, channel.Impairments{})
	senders := g.Senders()
	kill := &killSender{inner: senders[1]}
	senders[1] = kill
	st := membershipStriper(t, senders)
	rs := mustReseq(t, ResequencerConfig{
		Sched: sched.MustSRR(sched.UniformQuanta(nch, 100)),
		Mode:  ModeLogical,
	})
	return g, kill, st, rs
}

func sendN(t *testing.T, st *Striper, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.Send(packet.NewDataSized(100)); err != nil {
			t.Fatal(err)
		}
	}
}

func assertAscending(t *testing.T, got []*packet.Packet) []uint64 {
	t.Helper()
	ids := make([]uint64, len(got))
	last := int64(-1)
	for i, p := range got {
		ids[i] = p.ID
		if int64(p.ID) <= last {
			t.Fatalf("FIFO violated: delivery sequence %v", ids[:i+1])
		}
		last = int64(p.ID)
	}
	return ids
}

// TestGracefulRemoveLosslessDrain removes a healthy channel mid-stream:
// the MemberLeave delimiter sent down the departing channel proves its
// stream complete, so every packet buffered from it is delivered in
// order before the slot retires — nothing is declared lost.
func TestGracefulRemoveLosslessDrain(t *testing.T) {
	g, st, rs := membershipPair(t, 3)

	sendN(t, st, 12)
	if err := st.RemoveChannel(1); err != nil {
		t.Fatal(err)
	}
	sendN(t, st, 12)

	got := pumpAll(g, rs)
	ids := assertAscending(t, got)
	if len(ids) != 24 {
		t.Fatalf("delivered %d packets %v, want all 24", len(ids), ids)
	}
	s := rs.Stats()
	if s.MemberDrains != 1 || s.MemberLost != 0 || s.MemberDrops != 0 {
		t.Fatalf("drains=%d lost=%d drops=%d, want 1/0/0", s.MemberDrains, s.MemberLost, s.MemberDrops)
	}
	if st.Member(1) != MemberRemoved || st.ActiveN() != 2 {
		t.Fatalf("sender state: Member(1)=%v ActiveN=%d", st.Member(1), st.ActiveN())
	}
	if rs.MemberState(1) != MemberRemoved {
		t.Fatalf("receiver state: MemberState(1)=%v, want removed", rs.MemberState(1))
	}
}

// TestDeadLinkRemovalNeverReorders cuts a link cold (silent in-flight
// destruction, including the would-be delimiter), then removes the
// channel on the transmit side. The survivors' announcements begin the
// receiver's drain, and the delivery scan retires the slot when it
// actually blocks on it: every surviving packet is delivered in order,
// the destroyed ones are simply absent, and nothing is ever reordered.
func TestDeadLinkRemovalNeverReorders(t *testing.T) {
	g, kill, st, rs := killPair(t, 3)

	sendN(t, st, 9) // IDs 0..8; channel 1 carries 1, 4, 7
	if got := assertAscending(t, pumpAll(g, rs)); len(got) != 9 {
		t.Fatalf("healthy phase delivered %d packets, want 9", len(got))
	}

	kill.dead = true
	sendN(t, st, 9) // IDs 9..17; 10, 13, 16 destroyed in flight
	if err := st.RemoveChannel(1); err != nil {
		t.Fatal(err)
	}
	sendN(t, st, 6) // IDs 18..23, striped over the survivors

	ids := assertAscending(t, pumpAll(g, rs))
	if want := 24 - 9 - kill.lost; len(ids) != want {
		t.Fatalf("delivered %d packets %v, want %d (all survivors)", len(ids), ids, want)
	}
	for _, id := range ids {
		if id == 10 || id == 13 || id == 16 {
			t.Fatalf("destroyed packet %d was delivered", id)
		}
	}
	s := rs.Stats()
	if s.MemberDrains != 1 {
		t.Fatalf("MemberDrains = %d, want 1", s.MemberDrains)
	}
	if rs.MemberState(1) != MemberRemoved {
		t.Fatalf("MemberState(1) = %v, want removed", rs.MemberState(1))
	}
}

// TestLocalRemoveDeclaresDeadLink exercises the receiver-side removal
// path the health monitor uses when it observes a link dead locally: no
// peer announcement at all, just RemoveChannel on the resequencer. The
// simulation must drop the slot and keep delivering the survivors in
// order.
func TestLocalRemoveDeclaresDeadLink(t *testing.T) {
	g, kill, st, rs := killPair(t, 3)

	sendN(t, st, 9)
	if got := assertAscending(t, pumpAll(g, rs)); len(got) != 9 {
		t.Fatalf("healthy phase delivered %d packets, want 9", len(got))
	}
	kill.dead = true
	sendN(t, st, 9) // channel 1's share destroyed; sender unaware
	if err := rs.RemoveChannel(1); err != nil {
		t.Fatal(err)
	}
	ids := assertAscending(t, pumpAll(g, rs))
	if want := 18 - 9 - kill.lost; len(ids) != want {
		t.Fatalf("delivered %d survivors %v, want %d", len(ids), ids, want)
	}
	if rs.MemberState(1) != MemberRemoved {
		t.Fatalf("MemberState(1) = %v, want removed", rs.MemberState(1))
	}
}

// TestRejoinAtRoundBoundaryFIFO is the regression test for the
// mid-round join race. The receiver's simulation advances eagerly on
// arrivals, so by the time a join announcement lands it can already
// have scanned past the joining slot within the current round — here
// that state is built deterministically by pumping the receiver after
// the sender has served channel 0 in its current round. A join
// announced for the *current* round would then deliver the newcomer's
// packets one round late forever; the striper must instead announce and
// defer to the next round boundary.
func TestRejoinAtRoundBoundaryFIFO(t *testing.T) {
	g, st, rs := membershipPair(t, 3)

	sendN(t, st, 6) // two full rounds over three channels
	if err := st.RemoveChannel(1); err != nil {
		t.Fatal(err)
	}
	// One more send: channel 0 is served in the current round, and the
	// pump walks the receiver's scan past removed slot 1 to block on
	// channel 2 — the exact state the race needs.
	sendN(t, st, 1)
	if got := assertAscending(t, pumpAll(g, rs)); len(got) != 7 {
		t.Fatalf("pre-join phase delivered %d packets, want 7", len(got))
	}

	roundBefore := st.Round()
	join, err := st.AddChannel(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if join != roundBefore+1 {
		t.Fatalf("join round = %d, want next boundary %d", join, roundBefore+1)
	}
	// Re-adding while the join is still pending must report the same
	// round, not push the boundary out again.
	if again, err := st.AddChannel(1, nil); err != nil || again != join {
		t.Fatalf("repeated AddChannel = %d, %v; want %d", again, err, join)
	}

	sendN(t, st, 11)
	ids := assertAscending(t, pumpAll(g, rs))
	if len(ids) != 11 {
		t.Fatalf("post-join delivered %d packets %v, want 11", len(ids), ids)
	}
	s := rs.Stats()
	if s.MemberJoins != 1 || s.MemberDrains != 1 || s.MemberLost != 0 {
		t.Fatalf("joins=%d drains=%d lost=%d, want 1/1/0", s.MemberJoins, s.MemberDrains, s.MemberLost)
	}
	if st.Member(1) != MemberActive || rs.MemberState(1) != MemberActive {
		t.Fatalf("states after rejoin: tx=%v rx=%v, want active/active", st.Member(1), rs.MemberState(1))
	}
}

// TestMembershipErrors pins the guard rails: the live set can never be
// emptied, out-of-range channels are rejected, and redundant
// transitions are no-ops.
func TestMembershipErrors(t *testing.T) {
	_, st, rs := membershipPair(t, 2)

	if err := st.RemoveChannel(5); err == nil {
		t.Fatal("RemoveChannel(5) accepted an out-of-range slot")
	}
	if _, err := st.AddChannel(-1, nil); err == nil {
		t.Fatal("AddChannel(-1) accepted an out-of-range slot")
	}
	if err := st.RemoveChannel(0); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveChannel(0); err != nil {
		t.Fatalf("removing a removed channel: %v, want no-op", err)
	}
	if err := st.RemoveChannel(1); err != ErrLastChannel {
		t.Fatalf("removing the last channel: %v, want ErrLastChannel", err)
	}
	if err := rs.RemoveChannel(7); err == nil {
		t.Fatal("resequencer RemoveChannel(7) accepted an out-of-range slot")
	}
	if err := rs.AddChannel(0, 3); err != nil {
		t.Fatalf("re-admitting an active channel: %v, want no-op", err)
	}
}
