package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"stripe/internal/channel"
	"stripe/internal/obs"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// MarkerPolicy controls when the sender cuts synchronization markers.
type MarkerPolicy struct {
	// Every is the marker period in rounds: a marker batch (one marker
	// per channel) is cut every `Every` rounds. Zero disables markers.
	Every uint64
	// Position is the channel index the round-robin pointer must rest on
	// when the batch is cut: 0 places markers at the beginning of a
	// round, N-1 near its end. Section 6.3 studies how this placement
	// affects the number of out-of-order deliveries.
	Position int
}

// StriperConfig configures a sender engine.
type StriperConfig struct {
	// Sched is the causal scheduling automaton; the receiver must be
	// built from an automaton with identical parameters. Required
	// unless CausalSched is given.
	Sched sched.RoundBased
	// CausalSched stripes with a round-less causal scheduler (for
	// example RFQ). Markers are unavailable — the Section 5 protocol is
	// round-based — so configure Markers only with Sched.
	CausalSched sched.Causal
	// Channels are the transmit sides of the striped channels, indexed
	// exactly as the receiver indexes them (condition C2). Required.
	Channels []channel.Sender
	// Markers configures periodic synchronization markers.
	Markers MarkerPolicy
	// AddSeq makes the striper stamp an explicit sequence number on
	// every data packet — the "with header" protocol variants of
	// Table 1. The default (false) transmits data packets unmodified.
	AddSeq bool
	// Gate, when non-nil, is consulted before each transmission; it
	// implements per-channel flow control (credits). A nil gate admits
	// everything.
	Gate Gate
	// MarkerCredits, when non-nil, fills the Credits field of each
	// outgoing marker with the cumulative flow-control grant for the
	// *reverse* direction's channel c — the paper's observation that
	// credits piggyback naturally on the periodic marker traffic.
	MarkerCredits func(c int) uint64
	// Obs, when non-nil, receives per-channel metrics and protocol
	// events. A nil collector disables instrumentation at the cost of
	// one pointer test per packet.
	Obs *obs.Collector
	// Now supplies the sender clock (nanoseconds) stamped into each
	// marker's TxNs field for the peer telemetry plane's one-way delay
	// estimation. Nil selects time.Now. Deterministic harnesses inject
	// a virtual clock.
	Now func() int64
}

// Gate is the hook the credit-based flow controller plugs into.
type Gate interface {
	// Admit reports whether a packet of the given size may currently be
	// sent on channel c.
	Admit(c int, size int) bool
	// Consume records that a packet of the given size was sent on c.
	Consume(c int, size int)
}

// creditReader is optionally implemented by gates that expose their
// remaining per-channel credit (flowcontrol.Gate does). SendBatch
// needs it to predict how many packets of a run the gate will admit
// without calling Admit for packets it has not yet committed; a gate
// without it limits runs to one packet.
type creditReader interface {
	Remaining(c int) int64
}

// costModel is optionally implemented by schedulers that expose what a
// packet charges against a deficit counter (sched.SRR does, covering
// the SRR/RR/GRR family). SendBatch uses it to predict how long the
// selected channel's service lasts without mutating the automaton;
// without it runs degrade to single packets.
type costModel interface {
	CostOf(size int) int64
}

// bulkAccounter is optionally implemented by schedulers that can charge
// a whole predicted run in one step (sched.SRR does). Valid only for a
// fully transmitted run whose interior packets provably could not end
// the service — exactly what run prediction guarantees — so the bulk
// charge lands in the same state per-packet Account calls would.
type bulkAccounter interface {
	AccountCost(cost int64)
}

// ErrGated is returned by Send when flow control blocks the selected
// channel. The caller retries after credits arrive; the scheduler state
// is untouched, so the retry goes to the same channel (anything else
// would break the receiver's simulation).
var ErrGated = errors.New("core: selected channel out of credits")

// Striper is the sender engine: it accepts a single FIFO stream of
// packets and pushes each to the channel chosen by the causal automaton,
// cutting periodic markers. It is a pure state machine — not safe for
// concurrent use; wrap it in one goroutine (as package stripe does).
type Striper struct {
	s             sched.Scheduler  // send-path automaton (rb or cs)
	rb            sched.RoundBased // non-nil for round-based scheduling
	cs            sched.Causal     // non-nil for round-less causal scheduling
	csInit        sched.State      // cs start state, for resets
	mem           sched.Membership // non-nil when the scheduler supports dynamic membership
	out           []channel.Sender
	batchOut      []channel.BatchSender // batch-capable views of out (nil where unsupported)
	coster        costModel             // scheduler cost model for run prediction (nil disables)
	bulkAcct      bulkAccounter         // scheduler bulk accounting for committed runs (nil disables)
	creditRem     creditReader          // gate credit view for run prediction (nil disables)
	one           [1]*packet.Packet     // Send's batch of one, alias-free between calls
	policy        MarkerPolicy
	addSeq        bool
	gate          Gate
	markerCredits func(c int) uint64
	obs           *obs.Collector
	nextMark      uint64 // round at/after which the next marker batch is due
	nextSeq       uint64
	nextID        uint64
	clock         int64
	epoch         uint64
	now           func() int64
	stampTick     uint64 // marker batches cut; every 4th carries a TxNs stamp
	telemetryChan int    // next channel SendTelemetry rotates onto

	// Dynamic membership (see membership.go). The channel universe is
	// fixed at construction — slots are enabled and disabled, never
	// renumbered, preserving condition C2's identical numbering on both
	// ends across arbitrary join/leave histories.
	active       []bool
	activeN      int
	memberSeq    uint64
	lastAnnounce packet.MemberBlock
	announceLeft int      // marker batches that still piggyback the announcement
	errStreak    []int64  // consecutive transport errors per channel
	pendingJoin  []uint64 // announced join round per slot awaiting its round boundary (0 = none)
	pendingJoins int      // count of non-zero pendingJoin entries

	// Counters.
	sentData    int64
	sentBytes   int64
	sentMarkers int64
	sentOn      []int64 // data bytes per channel
	sentPktsOn  []int64 // data packets per channel

	// Observability batching: the hot path only touches these plain
	// fields; SyncObs publishes them to the collector's atomics at
	// marker cadence (or every obsFlushEvery packets as a backstop).
	obsMaxLen int
	obsLag    int
}

// obsFlushEvery bounds how many packets the collector's counters may
// lag behind the striper when markers are infrequent or disabled.
const obsFlushEvery = 64

// NewStriper validates the configuration and returns a sender engine.
func NewStriper(cfg StriperConfig) (*Striper, error) {
	var s sched.Scheduler
	switch {
	case cfg.Sched != nil:
		s = cfg.Sched
	case cfg.CausalSched != nil:
		if cfg.Markers.Every != 0 {
			return nil, errors.New("core: markers require a round-based scheduler")
		}
		s = cfg.CausalSched
	default:
		return nil, errors.New("core: StriperConfig.Sched is required")
	}
	if len(cfg.Channels) != s.N() {
		return nil, fmt.Errorf("core: %d channels but scheduler expects %d", len(cfg.Channels), s.N())
	}
	if cfg.Sched != nil && (cfg.Markers.Position < 0 || cfg.Markers.Position >= cfg.Sched.N()) {
		if cfg.Markers.Every != 0 {
			return nil, fmt.Errorf("core: marker position %d out of range [0,%d)", cfg.Markers.Position, cfg.Sched.N())
		}
	}
	if cfg.Obs != nil && cfg.Obs.N() != len(cfg.Channels) {
		return nil, fmt.Errorf("core: collector sized for %d channels, want %d", cfg.Obs.N(), len(cfg.Channels))
	}
	st := &Striper{
		s:             s,
		rb:            cfg.Sched,
		out:           append([]channel.Sender(nil), cfg.Channels...),
		policy:        cfg.Markers,
		addSeq:        cfg.AddSeq,
		gate:          cfg.Gate,
		markerCredits: cfg.MarkerCredits,
		obs:           cfg.Obs,
		now:           cfg.Now,
	}
	if st.now == nil {
		st.now = nowNs
	}
	if cfg.Sched == nil {
		st.cs = cfg.CausalSched
		st.csInit = st.cs.Snapshot().Clone()
	}
	st.sentOn = make([]int64, len(st.out))
	st.sentPktsOn = make([]int64, len(st.out))
	st.batchOut = make([]channel.BatchSender, len(st.out))
	for c, ch := range st.out {
		st.batchOut[c], _ = ch.(channel.BatchSender)
	}
	st.coster, _ = s.(costModel)
	st.bulkAcct, _ = s.(bulkAccounter)
	if cfg.Gate != nil {
		st.creditRem, _ = cfg.Gate.(creditReader)
	}
	st.mem, _ = s.(sched.Membership)
	st.active = make([]bool, len(st.out))
	for c := range st.active {
		st.active[c] = true
	}
	st.activeN = len(st.out)
	st.errStreak = make([]int64, len(st.out))
	st.pendingJoin = make([]uint64, len(st.out))
	if st.obs != nil && st.rb != nil {
		for c := range st.out {
			st.obs.SetQuantum(c, st.rb.QuantumOf(c))
		}
	}
	if st.policy.Every != 0 {
		st.nextMark = st.policy.Every
	}
	return st, nil
}

// N returns the number of channels.
func (st *Striper) N() int { return len(st.out) }

// Round returns the sender's global round number G (zero for
// round-less causal schedulers).
func (st *Striper) Round() uint64 {
	if st.rb == nil {
		return 0
	}
	return st.rb.Round()
}

// SentData returns the number of data packets transmitted.
func (st *Striper) SentData() int64 { return st.sentData }

// SentBytes returns the number of data payload bytes transmitted.
func (st *Striper) SentBytes() int64 { return st.sentBytes }

// SentMarkers returns the number of marker packets transmitted.
func (st *Striper) SentMarkers() int64 { return st.sentMarkers }

// SentOn returns the data packets and payload bytes sent on channel c,
// for load-sharing observability.
func (st *Striper) SentOn(c int) (packets, bytes int64) {
	return st.sentPktsOn[c], st.sentOn[c]
}

// maybeEmitMarkers cuts a marker batch if one is due and the automaton
// sits at a service boundary at (or past) the configured position.
// Markers bypass the scheduler: they are control traffic, not charged to
// any deficit counter, and the receiver likewise does not charge them.
func (st *Striper) maybeEmitMarkers() {
	if st.rb == nil || st.policy.Every == 0 || st.rb.MidService() {
		return
	}
	r := st.rb.Round()
	if r < st.nextMark {
		return
	}
	// At the due round, wait for the pointer to rest on the configured
	// position; if the round was overshot (the pointer skipped past the
	// position, which can happen when a channel's overdraft forfeits its
	// service), cut the batch at the first boundary available. A disabled
	// (or not-yet-joined) position channel is never rested on, so
	// membership changes fall back to first-boundary cadence rather than
	// stalling the marker clock.
	if r == st.nextMark && st.rb.Current() != st.policy.Position &&
		st.active[st.policy.Position] && st.pendingJoin[st.policy.Position] == 0 {
		return
	}
	st.emitBatch()
	st.nextMark = r + st.policy.Every
}

// EmitMarkers cuts a marker batch immediately, regardless of the
// round-based policy. Kernel implementations send markers from a timer
// so that a stalled sender (for example a window-limited TCP source)
// still resynchronizes the receiver; drive this method from whatever
// clock the embedding has. It is safe mid-service.
func (st *Striper) EmitMarkers() {
	if st.rb == nil {
		return
	}
	st.emitBatch()
	st.SyncObs()
	if st.policy.Every != 0 {
		st.nextMark = st.rb.Round() + st.policy.Every
	}
}

// emitBatch sends one marker per channel carrying the implicit number
// (round, pre-quantum deficit) of the next packet on that channel. If
// the current channel is mid-service its quantum has already been
// granted, so the pre-quantum convention subtracts it back; the
// receiver's marker handling applies the mirror-image adjustment.
//
//stripe:allowescape marker batch: control-plane work amortized over a marker interval (policy.Every rounds), and marker packets must allocate
func (st *Striper) emitBatch() {
	// One delay sample per few marker batches is all the peer's 8-deep
	// min-filter needs, and a clock read per marker is real money at
	// tight marker cadences — so stamp every fourth batch, once for the
	// whole batch (markers cut at the same instant make cross-channel rx
	// differences directly comparable), and leave the rest TxNs=0, which
	// also skips the receiver's clock read on arrival.
	var txNs int64
	if st.stampTick++; st.stampTick&3 == 0 {
		txNs = st.now()
	}
	for c := range st.out {
		if !st.active[c] {
			continue
		}
		mb := packet.MarkerBlock{Channel: uint32(c), Sent: uint64(st.sentOn[c])}
		if j := st.pendingJoin[c]; j != 0 {
			// A joined slot awaiting its round boundary has an exact
			// implicit position already: first service at the join round
			// with a fresh deficit. The scheduler knows nothing useful
			// about the slot yet, but skipping it instead would stop the
			// channel's piggybacked credits — and on an idle direction
			// (rounds never advance, the join never fires) that would
			// starve the peer's reverse-path flow control for good.
			mb.Round = j
		} else {
			d := st.rb.Deficit(c)
			if st.rb.MidService() && st.rb.Current() == c {
				d -= st.rb.QuantumOf(c)
			}
			mb.Round = st.rb.NextServiceRound(c)
			mb.Deficit = d
		}
		if st.markerCredits != nil {
			mb.Credits = st.markerCredits(c)
		}
		mb.TxNs = txNs
		if err := st.out[c].Send(packet.NewMarker(mb)); err == nil {
			st.sentMarkers++
			st.errStreak[c] = 0
			st.obs.OnMarkerEmitted(c)
		} else {
			st.errStreak[c]++
		}
	}
	// Membership announcements ride the marker cadence for a few batches
	// after each transition, so a single lost announcement packet cannot
	// leave the two ends with divergent live sets.
	if st.announceLeft > 0 {
		st.announceLeft--
		st.broadcastMember()
	}
}

// SyncObs publishes the striper's counters, the round gauge, and the
// per-channel surplus gauges to the attached collector. It runs every
// obsFlushEvery packets, from the timer-driven EmitMarkers path, and
// from Stats/Snapshot, so scrapes lag a loaded sender by at most
// obsFlushEvery packets and an idle one by at most a marker interval.
// Flushing the round and byte counters together also keeps the derived
// fairness gauge consistent for the flushed prefix.
//
//stripe:allowescape publishes batched counters and runs invariant checks (which lock) at most once per obsFlushEvery packets or marker interval
func (st *Striper) SyncObs() {
	if st.obs == nil {
		return
	}
	st.obsLag = 0
	for c := range st.out {
		st.obs.SyncStriped(c, st.sentPktsOn[c], st.sentOn[c])
		if st.rb != nil {
			st.obs.SetSurplus(c, st.rb.Deficit(c))
		}
	}
	st.obs.SetMaxPacket(int64(st.obsMaxLen))
	if st.rb != nil {
		st.obs.SetRound(st.rb.Round())
	}
	st.obs.RunChecks()
}

// Send stripes one data packet: a batch of one, so flow-control
// gating, transport-failure accounting, and marker cadence share
// SendBatch's single code path. The packet is transmitted verbatim
// unless AddSeq was configured. ErrGated means flow control vetoed the
// transmission; retry the same packet later.
//
//stripe:hotpath
func (st *Striper) Send(p *packet.Packet) error {
	st.one[0] = p
	_, err := st.SendBatch(st.one[:1])
	st.one[0] = nil
	return err
}

// SendBatch stripes pkts in FIFO order, amortizing scheduler
// selection, credit-gate checks, and channel writes across the batch:
// maximal runs of consecutive packets bound for the same channel are
// predicted against the scheduler's cost model and handed to the
// channel in one BatchSender call (one buffered flush per run on TCP
// channels). It returns the number of packets transmitted; n <
// len(pkts) only alongside a non-nil error — ErrGated when flow
// control vetoed pkts[n] (retry pkts[n:] once credits arrive), or a
// *ChannelSendError when a transport failed. Exactly as with Send, a
// packet the transport did not accept is neither accounted to the
// scheduler nor charged to the gate, so the retry targets the same
// channel until the health monitor evicts it.
//
//stripe:hotpath
func (st *Striper) SendBatch(pkts []*packet.Packet) (int, error) {
	done := 0
	for done < len(pkts) {
		n, err := st.sendRun(pkts[done:])
		done += n
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// sendRun transmits a maximal single-channel prefix of pkts: the
// packets the scheduler provably assigns to the channel it selects for
// pkts[0] before that channel's service ends, bounded by the remaining
// flow-control credit. Packets are stamped before the flush (the wire
// format carries Seq), but all commitment — scheduler accounting, gate
// consumption, counters, traces — happens per packet only after the
// transport accepts it, so a transport failure leaves the automaton
// exactly as a failed Send always has: un-advanced, the failed packets
// re-stamped by their retry.
//
//stripe:hotpath
func (st *Striper) sendRun(pkts []*packet.Packet) (int, error) {
	if st.activeN == 0 {
		return 0, ErrNoActiveChannels
	}
	if st.pendingJoins != 0 {
		st.applyPendingJoins()
	}
	st.maybeEmitMarkers()
	c := st.s.Select()
	if st.gate != nil && !st.gate.Admit(c, pkts[0].Len()) {
		st.obs.OnCreditExhausted(c, pkts[0].Len())
		// The packet has no identity yet (ID/Seq are stamped on the
		// successful send), so trace under the identity it will get.
		if st.addSeq {
			st.obs.TraceGated(st.nextSeq)
		} else {
			st.obs.TraceGated(st.nextID)
		}
		return 0, ErrGated
	}

	// Predict the run length m. pkts[1:m] stay on c exactly while the
	// deficit the scheduler granted survives each packet's cost (the
	// mirror of Account's advance rule: service ends when the counter
	// reaches zero) and while the gate's remaining credit admits each
	// packet (the mirror of Admit; gate state cannot change mid-run —
	// grants arrive under the same lock that serializes sends). A gate
	// that hides its remaining credit, or a scheduler without a cost
	// model, caps runs at one packet rather than risking a divergent
	// prediction.
	m := 1
	runCost := int64(0) // summed scheduler cost of pkts[:m] (0 = unknown)
	if st.coster != nil {
		runCost = st.coster.CostOf(pkts[0].Len())
	}
	if st.coster != nil && st.rb != nil && st.batchOut[c] != nil &&
		(st.gate == nil || st.creditRem != nil) {
		deficit := st.rb.Deficit(c) - runCost
		credit := int64(-1)
		if st.gate != nil {
			credit = st.creditRem.Remaining(c) - int64(pkts[0].Len())
		}
		for m < len(pkts) && deficit > 0 {
			sz := pkts[m].Len()
			if credit >= 0 && int64(sz) > credit {
				break
			}
			cost := st.coster.CostOf(sz)
			deficit -= cost
			runCost += cost
			if credit >= 0 {
				credit -= int64(sz)
			}
			m++
		}
	}

	// Stamp before the flush: Seq rides the wire, so it must be final
	// when the channel encodes the frame. The counters advance only at
	// commit, so a failed tail is freshly re-stamped by its retry.
	for i := 0; i < m; i++ {
		p := pkts[i]
		p.ID = st.nextID + uint64(i)
		p.Ingress = st.clock + int64(i)
		if st.addSeq {
			p.Seq = st.nextSeq + uint64(i)
			p.HasSeq = true
		}
	}

	var sent int
	var err error
	if bs := st.batchOut[c]; bs != nil {
		sent, err = bs.SendBatch(pkts[:m])
	} else if err = st.out[c].Send(pkts[0]); err == nil {
		sent = 1
	}

	// Commit exactly the accepted prefix. Everything additive — counters,
	// gate consumption, scheduler cost — is charged in bulk; only traces
	// are inherently per packet. A fully accepted predicted run takes
	// the scheduler's one-step AccountCost (state-identical, see
	// bulkAccounter); a partial prefix falls back to per-packet Account
	// since the prediction's no-interior-advance guarantee covered the
	// whole run, not the prefix.
	if sent > 0 {
		var runBytes int64
		if st.obs != nil {
			for i := 0; i < sent; i++ {
				p := pkts[i]
				runBytes += int64(p.Len())
				// No atomics here: accounting stays in the striper's plain
				// fields and is published in SyncObs, so an active
				// collector costs two plain-field updates per packet.
				if p.Len() > st.obsMaxLen {
					st.obsMaxLen = p.Len()
				}
				st.obs.TraceSend(traceKey(p), c)
			}
			if st.obsLag += sent; st.obsLag >= obsFlushEvery {
				st.SyncObs()
			}
		} else {
			for i := 0; i < sent; i++ {
				runBytes += int64(pkts[i].Len())
			}
		}
		st.errStreak[c] = 0
		st.nextID += uint64(sent)
		st.clock += int64(sent)
		if st.addSeq {
			st.nextSeq += uint64(sent)
		}
		if st.gate != nil {
			st.gate.Consume(c, int(runBytes))
		}
		st.sentData += int64(sent)
		st.sentBytes += runBytes
		st.sentOn[c] += runBytes
		st.sentPktsOn[c] += int64(sent)
		if sent == m && st.bulkAcct != nil && st.coster != nil {
			st.bulkAcct.AccountCost(runCost)
		} else {
			for i := 0; i < sent; i++ {
				st.s.Account(pkts[i].Len())
			}
		}
	}
	if err != nil {
		return sent, st.sendFailed(c, err)
	}
	st.maybeEmitMarkers()
	return sent, nil
}

// Reset broadcasts a reset packet on every channel and reinitialises the
// striping automaton to its start state. Both ends return to the common
// start state s0, which is how the paper handles node crashes and makes
// the marker scheme self-stabilizing in conjunction with a snapshot.
// The reset carries the new epoch number; the receiver discards traffic
// from older epochs still in flight.
func (st *Striper) Reset() error {
	st.epoch++
	// Encode the epoch once and share the payload across the broadcast:
	// reset packets are read-only once handed to a channel, so the
	// per-channel copies the old byte-by-byte encoding made bought
	// nothing.
	pl := make([]byte, 8)
	binary.BigEndian.PutUint64(pl, st.epoch)
	var firstErr error
	for c := range st.out {
		if !st.active[c] {
			continue
		}
		p := &packet.Packet{Kind: packet.Reset, Payload: pl}
		if err := st.out[c].Send(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if st.pendingJoins != 0 {
		// A reset returns both automatons to the common start state, which
		// subsumes any join still waiting on its round boundary: the slot
		// simply starts the new epoch enabled.
		st.flushPendingJoins()
	}
	if st.rb != nil {
		st.rb.Reset()
	} else {
		st.cs.Restore(st.csInit.Clone())
	}
	st.nextMark = st.policy.Every
	st.SyncObs()
	st.obs.OnReset(st.epoch)
	return firstErr
}

// Epoch returns the current reset epoch.
func (st *Striper) Epoch() uint64 { return st.epoch }

// ChannelLoad is the data load placed on one channel.
type ChannelLoad struct {
	Packets int64
	Bytes   int64
}

// StriperStats is a copy of the sender counters, the transmit-side
// mirror of ResequencerStats.
type StriperStats struct {
	DataPackets int64 // data packets transmitted
	DataBytes   int64 // data payload bytes transmitted
	Markers     int64 // marker packets transmitted
	Round       uint64
	Epoch       uint64
	PerChannel  []ChannelLoad // data load striped onto each channel
}

// Stats returns a copy of the sender counters. It also flushes the
// batched observability counters, so a Stats call brings an attached
// collector fully up to date.
func (st *Striper) Stats() StriperStats {
	st.SyncObs()
	s := StriperStats{
		DataPackets: st.sentData,
		DataBytes:   st.sentBytes,
		Markers:     st.sentMarkers,
		Round:       st.Round(),
		Epoch:       st.epoch,
		PerChannel:  make([]ChannelLoad, len(st.out)),
	}
	for c := range st.out {
		s.PerChannel[c] = ChannelLoad{Packets: st.sentPktsOn[c], Bytes: st.sentOn[c]}
	}
	return s
}
