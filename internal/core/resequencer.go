package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"stripe/internal/obs"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// Mode selects the receive discipline.
type Mode uint8

const (
	// ModeLogical is the paper's scheme: per-channel buffering plus
	// receiver simulation of the sender automaton, giving quasi-FIFO
	// delivery with unmodified packets and marker-based recovery.
	ModeLogical Mode = iota
	// ModeNone performs no resequencing: packets are delivered in
	// physical arrival order. This is the "no logical reception"
	// baseline of Figure 15.
	ModeNone
	// ModeSequence resequences on explicit per-packet sequence numbers
	// (requires the striper's AddSeq). Delivery is guaranteed FIFO; a
	// sequence gap is declared lost once every channel's head has moved
	// past it (per-channel FIFO makes that sound).
	ModeSequence
)

// ResequencerConfig configures a receiver engine.
type ResequencerConfig struct {
	// Sched is the receiver's copy of the sender automaton, in the
	// common start state. Required for ModeLogical (unless CausalSched
	// is given); ignored otherwise.
	Sched sched.RoundBased
	// CausalSched enables logical reception for causal schedulers
	// without round structure (for example the randomized RFQ of
	// Section 3.4). Theorem 4.1 needs only causality, so FIFO delivery
	// works; the round/deficit marker recovery of Section 5 does not
	// apply, so resynchronization after loss requires a reset. Ignored
	// when Sched is set.
	CausalSched sched.Causal
	// N is the channel count; required for ModeNone and ModeSequence
	// (ModeLogical takes it from Sched).
	N int
	// Mode selects the receive discipline.
	Mode Mode
	// OnMarker, when non-nil, observes every structurally valid marker
	// (in any mode). The flow controller uses it to read piggybacked
	// credits.
	OnMarker func(ch int, m packet.MarkerBlock)
	// OnMembership, when non-nil, observes membership transitions the
	// receiver applies: joined=true when channel c is (re)admitted,
	// false when its retirement completes. Sessions use it to mirror the
	// peer's membership onto their own transmit side and to recompute
	// derived sizing (buffer caps) for the new live set.
	OnMembership func(c int, joined bool)
	// OnTelemetry, when non-nil, observes every structurally valid
	// telemetry block arriving from the peer. Sessions feed it into an
	// obs.PeerView; without a handler telemetry packets are counted and
	// dropped.
	OnTelemetry func(t packet.TelemetryBlock)
	// Now supplies the receiver clock (nanoseconds) used to stamp marker
	// arrivals for the telemetry plane's one-way delay samples. Nil
	// selects time.Now. Deterministic harnesses inject a virtual clock.
	Now func() int64
	// SelfHealGap tunes the self-stabilization detector: a marker counts
	// as evidence of state corruption only when it is stale by more than
	// this many rounds. Legitimate staleness (markers buffered behind
	// data while overdrafted channels are skipped) is bounded by roughly
	// Max/min(Quantum) rounds, so the default of 256 never fires for
	// sane configurations. Zero selects the default; negative disables
	// self-healing.
	SelfHealGap int64
	// MaxBuffered caps the total packets held across the receiver's
	// buffers, making resequencer memory hard-bounded. Above the cap
	// the receiver escalates instead of growing: ordering is abandoned
	// for the backlog (forced delivery, the same medicine a reset
	// applies to ordering state) until occupancy falls to half the cap,
	// and while occupancy exceeds twice the cap, arrivals other than
	// resets are dropped — indistinguishable from channel loss, which
	// the marker protocol already recovers from. Zero means unbounded
	// (the seed behaviour).
	MaxBuffered int
	// Obs, when non-nil, receives per-channel metrics and protocol
	// events (resync, skip, reset, self-heal, fast-forward). A nil
	// collector disables instrumentation at the cost of one pointer
	// test per packet.
	Obs *obs.Collector
}

// ResequencerStats counts receiver events.
type ResequencerStats struct {
	Delivered      int64 // data packets handed to the application
	DeliveredBytes int64
	Markers        int64 // valid markers consumed
	BadMarkers     int64 // markers dropped as corrupt
	Resyncs        int64 // markers that changed receiver state (r_c or DC)
	Skips          int64 // channel visits skipped under the r_c > G rule
	Resets         int64 // epoch resets applied
	OldEpochDrops  int64 // packets discarded while waiting out a reset
	SelfHeals      int64 // self-stabilization events (state adopted from markers)
	FastForwards   int64 // round fast-forwards while every channel was skip-listed
	EagerMarkers   int64 // markers consumed eagerly at arrival (no data precedes them)
	Overflows      int64 // buffer-cap overflow escalations
	OverflowDrops  int64 // arrivals discarded at the hard buffer cap
	MemberJoins    int64 // channels (re)admitted to the live set
	MemberDrains   int64 // channel retirements completed
	MemberLost     int64 // buffered data packets declared lost at retirement
	MemberDrops    int64 // arrivals discarded on removed channels
	BadMembers     int64 // membership announcements dropped as corrupt
	Telemetry      int64 // telemetry blocks consumed
	BadTelemetry   int64 // telemetry blocks dropped as corrupt
	UnknownKinds   int64 // arrivals dropped for unrecognized codepoints
}

// Resequencer is the receiver engine. Drive it by pushing packets from
// each channel with Arrive and pulling in-order deliveries with Next.
// It is a pure state machine: not safe for concurrent use.
type Resequencer struct {
	mode   Mode
	s      sched.RoundBased
	cs     sched.Causal // round-less causal simulation (no markers)
	csInit sched.State  // cs start state, for resets
	n      int
	bufs   []pktFIFO
	arrivq pktFIFO // ModeNone delivery queue

	// Marker state (ModeLogical).
	expect   []uint64
	marked   []bool
	onMarker func(int, packet.MarkerBlock)
	// Pending marker slots for eager draining (round-based ModeLogical):
	// a marker popped from the head of its buffer at arrival has its
	// (round, deficit) staged here and applied when the scan next visits
	// the channel — the same stream position a buffered marker would
	// have been applied at, so scheduler-state conventions (mid-service
	// adjustments in particular) are undisturbed. Later markers
	// supersede earlier ones, so the slot bounds idle-direction marker
	// memory at one per channel.
	pending    []packet.MarkerBlock
	pendingHas []bool

	// skip is the skipRule method value, bound once here so the
	// per-delivery scan does not allocate a fresh closure for it.
	skip func(c int) bool

	// Sequence state (ModeSequence).
	nextSeq uint64

	// Reset/epoch state.
	epoch     uint64
	resetting bool
	passed    []bool

	stats ResequencerStats
	// Per-channel delivered byte counts, used by credit-based flow
	// control to compute cumulative grants.
	deliveredOn []int64
	// Per-channel cumulative data bytes physically arrived, the
	// receiver half of the marker-position reconciliation: Sent (from
	// the marker) minus arrivedOn is exactly the loss on the channel.
	arrivedOn []int64
	obs       *obs.Collector

	// Telemetry-plane state, harvested at physical marker arrival and
	// reported back to the sender by TelemetryBlock. resyncsOn
	// attributes resync events to the channel whose marker (or sequence
	// gap) triggered them; peerLost is the monotone max-fold of each
	// marker's Sent position minus arrivedOn — exact cumulative loss,
	// because channels are FIFO; markerTxNs/markerRxNs hold the latest
	// stamped marker's (sender tx, receiver rx) clock pair, one one-way
	// delay sample.
	resyncsOn    []int64
	peerLost     []int64
	markerTxNs   []int64
	markerRxNs   []int64
	now          func() int64
	telemetrySeq uint64
	onTelemetry  func(packet.TelemetryBlock)

	// Memory bound state.
	maxBuffered int  // 0 = unbounded
	overflow    bool // escalated: deliver despite gaps until backlog halves
	// maxSeenID tracks the highest striper-assigned packet ID delivered
	// so far; a delivery below it is late by the difference, which is
	// the reordering displacement the collector histograms.
	maxSeenID int64

	// Self-stabilization state (Section 5's closing remark). A marker
	// whose round is *behind* the receiver's global round is "stale".
	// Transient staleness is normal (old markers still in flight), but
	// when every channel's latest marker is stale and no packet has been
	// delivered in between, the receiver's state cannot be a consistent
	// continuation of the sender's — it was corrupted (or wedged, which
	// deserves the same medicine). The receiver then adopts the state
	// the markers themselves declare, which resynchronizes in O(1)
	// without a round trip.
	staleRound   []uint64
	staleDeficit []int64
	staleHas     []bool
	staleCount   int
	healGap      uint64 // 0 = disabled

	// Dynamic membership (receive side). A channel leaves in two steps:
	// draining (departure announced or observed, buffered packets still
	// being delivered in order) then removed (buffer empty, slot disabled
	// in the simulation, further arrivals on it dropped). The universe is
	// never renumbered, preserving condition C2.
	mem     sched.Membership // non-nil when the simulated scheduler supports it
	leaving []bool           // draining: out of the live set, buffer not yet empty
	left    []bool           // removed
	// delimited marks channels whose data stream is known complete: a
	// membership block arrived on the channel itself while excluding it,
	// and per-channel FIFO puts that block after every packet the sender
	// transmitted before retiring the slot. A draining delimited channel
	// retires the moment its buffer empties without losing anything that
	// was in flight; an undelimited one retires only when the delivery
	// discipline actually blocks on it (or is locally declared dead).
	delimited    []bool
	leavingN     int
	memberSeq    uint64 // last applied announcement sequence number
	onMembership func(c int, joined bool)
}

// NewResequencer validates the configuration and returns a receiver.
func NewResequencer(cfg ResequencerConfig) (*Resequencer, error) {
	n := cfg.N
	var cs sched.Causal
	if cfg.Mode == ModeLogical {
		switch {
		case cfg.Sched != nil:
			n = cfg.Sched.N()
		case cfg.CausalSched != nil:
			cs = cfg.CausalSched
			n = cs.N()
		default:
			return nil, errors.New("core: ModeLogical requires a scheduler")
		}
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: need a positive channel count, got %d", n)
	}
	healGap := uint64(256)
	switch {
	case cfg.SelfHealGap > 0:
		healGap = uint64(cfg.SelfHealGap)
	case cfg.SelfHealGap < 0:
		healGap = 0
	}
	if cfg.Obs != nil && cfg.Obs.N() != n {
		return nil, fmt.Errorf("core: collector sized for %d channels, want %d", cfg.Obs.N(), n)
	}
	if cfg.MaxBuffered < 0 {
		return nil, fmt.Errorf("core: negative buffer cap %d", cfg.MaxBuffered)
	}
	rr := &Resequencer{
		mode:         cfg.Mode,
		s:            cfg.Sched,
		cs:           cs,
		n:            n,
		healGap:      healGap,
		obs:          cfg.Obs,
		maxSeenID:    -1,
		maxBuffered:  cfg.MaxBuffered,
		bufs:         make([]pktFIFO, n),
		expect:       make([]uint64, n),
		marked:       make([]bool, n),
		pending:      make([]packet.MarkerBlock, n),
		pendingHas:   make([]bool, n),
		passed:       make([]bool, n),
		onMarker:     cfg.OnMarker,
		deliveredOn:  make([]int64, n),
		arrivedOn:    make([]int64, n),
		staleRound:   make([]uint64, n),
		staleDeficit: make([]int64, n),
		staleHas:     make([]bool, n),
		leaving:      make([]bool, n),
		left:         make([]bool, n),
		delimited:    make([]bool, n),
		onMembership: cfg.OnMembership,
		resyncsOn:    make([]int64, n),
		peerLost:     make([]int64, n),
		markerTxNs:   make([]int64, n),
		markerRxNs:   make([]int64, n),
		now:          cfg.Now,
		onTelemetry:  cfg.OnTelemetry,
	}
	if rr.now == nil {
		rr.now = nowNs
	}
	rr.mem, _ = cfg.Sched.(sched.Membership)
	rr.skip = rr.skipRule
	if cs != nil {
		rr.csInit = cs.Snapshot().Clone()
	}
	return rr, nil
}

// N returns the channel count.
func (r *Resequencer) N() int { return r.n }

// Stats returns a copy of the receiver counters.
func (r *Resequencer) Stats() ResequencerStats { return r.stats }

// DeliveredBytesOn returns the cumulative data bytes delivered that
// arrived on channel c. Credit-based flow control derives cumulative
// grants from it.
func (r *Resequencer) DeliveredBytesOn(c int) int64 { return r.deliveredOn[c] }

// ArrivedBytesOn returns the cumulative data bytes physically received
// on channel c, whether delivered, still buffered, or discarded.
// Credit reconciliation subtracts it from a marker-carried sender
// position to compute the channel's exact cumulative loss.
func (r *Resequencer) ArrivedBytesOn(c int) int64 {
	if c < 0 || c >= r.n {
		return 0
	}
	return r.arrivedOn[c]
}

// BufferedBytesOn returns the data payload bytes currently buffered for
// channel c (awaiting their turn in the delivery order).
func (r *Resequencer) BufferedBytesOn(c int) int64 {
	if c < 0 || c >= r.n {
		return 0
	}
	return r.bufs[c].dataBytes
}

// Buffered returns the total number of packets waiting in per-channel
// buffers (plus, in ModeNone, the delivery queue).
func (r *Resequencer) Buffered() int {
	t := r.arrivq.len()
	for i := range r.bufs {
		t += r.bufs[i].len()
	}
	return t
}

// Arrive accepts a packet physically received on channel c. Packets are
// buffered; ordering decisions happen in Next.
//
//stripe:hotpath
func (r *Resequencer) Arrive(c int, p *packet.Packet) {
	r.arrive(c, p)
	if r.obs != nil {
		r.obs.SetBuffered(int64(r.Buffered()))
	}
}

func (r *Resequencer) arrive(c int, p *packet.Packet) {
	if c < 0 || c >= r.n {
		return // unknown channel: drop defensively
	}
	if p.Kind == packet.Data {
		// Count every physical data arrival, delivered or not: the
		// reconciliation identity loss = Sent − arrived needs the raw
		// arrival position, and bytes later discarded (old epochs,
		// overflow) must still be credited back to the sender.
		r.arrivedOn[c] += int64(p.Len())
		r.obs.TraceArrive(traceKey(p), c)
	}
	if r.resetting && !r.passed[c] {
		// Waiting for this channel's reset boundary: everything before
		// it belongs to the old epoch.
		if p.Kind == packet.Reset && resetEpoch(p) == r.epoch {
			r.passed[c] = true
			if r.allPassed() {
				r.resetting = false
			}
		} else {
			r.stats.OldEpochDrops++
			r.obs.OnOldEpochDrops(1)
		}
		return
	}
	if p.Kind == packet.Member {
		// Membership announcements apply eagerly: they are full-bitmap and
		// sequenced, so applying one out of stream order is harmless, and
		// a draining channel keeps delivering until its buffer empties
		// regardless of when the announcement was seen.
		if m, err := packet.MemberOf(p); err == nil {
			r.applyMember(m)
			if int(m.N) == r.n && !m.ActiveChannel(c) {
				// The block arrived on a channel it excludes: it is the
				// departure's FIFO delimiter (or a later probe), so every
				// packet the sender put on c before retiring the slot has
				// already arrived. A draining c may now retire as soon as
				// its buffer drains, losing nothing in flight.
				r.delimited[c] = true
				if r.leaving[c] && r.bufs[c].len() == 0 {
					r.retire(c)
				}
			}
		} else {
			r.stats.BadMembers++
		}
		return
	}
	if p.Kind == packet.Telemetry {
		// Telemetry is advisory control traffic for the local sender; it
		// never enters the delivery order or the simulation.
		r.consumeTelemetry(p)
		return
	}
	if p.Kind > packet.Telemetry {
		// Forward compatibility: an unrecognized codepoint from a newer
		// peer is dropped here, before it can reach the buffers — the
		// delivery scans would otherwise account it against the simulated
		// schedulers and hand it to the application as data, desyncing
		// the two ends over a packet the sender never striped.
		r.stats.UnknownKinds++
		return
	}
	if p.Kind == packet.Marker {
		r.harvestMarker(c, p)
	}
	if r.left[c] {
		// Removed slot. Data is dropped (the arrival accounting above
		// still credits it back to the sender); markers are consumed for
		// their piggybacked credits only, since the slot has no
		// simulation state left to synchronize; resets must still apply
		// so a rejoining channel cannot wedge epoch recovery.
		switch p.Kind {
		case packet.Data:
			r.stats.MemberDrops++
		case packet.Marker:
			if m, err := packet.MarkerOf(p); err == nil {
				r.stats.Markers++
				r.obs.OnMarkerConsumed(c)
				if r.onMarker != nil {
					r.onMarker(c, m)
				}
			} else {
				r.stats.BadMarkers++
				r.obs.OnBadMarker()
			}
		case packet.Reset:
			r.applyReset(c, p)
		}
		return
	}
	switch r.mode {
	case ModeNone:
		switch p.Kind {
		case packet.Data:
			if r.enforceCap(c) {
				return
			}
			// In arrival-order mode delivery is immediate, so the drain
			// accounting used by flow control happens here.
			r.deliveredOn[c] += int64(p.Len())
			r.noteDelivered(c, p)
			r.arrivq.push(p)
		case packet.Marker:
			if m, err := packet.MarkerOf(p); err == nil {
				r.stats.Markers++
				r.obs.OnMarkerConsumed(c)
				if r.onMarker != nil {
					r.onMarker(c, m)
				}
			} else {
				r.stats.BadMarkers++
				r.obs.OnBadMarker()
			}
		case packet.Reset:
			r.applyReset(c, p)
		}
	default:
		if p.Kind != packet.Reset && r.enforceCap(c) {
			return
		}
		r.bufs[c].push(p)
		if p.Kind == packet.Data {
			r.obs.TraceBuffered(traceKey(p))
		}
		r.drainEagerMarkers(c)
	}
}

// enforceCap implements the buffer memory bound. It reports whether an
// arriving packet must be dropped outright (occupancy at twice the
// cap), and crossing the cap itself flips the receiver into overflow
// escalation: Next abandons strict order for the backlog until
// occupancy falls to half the cap. Dropping at the hard cap is safe by
// construction — to the protocol it is indistinguishable from channel
// loss, which markers already recover from — and it is what a real
// finite receive buffer does.
func (r *Resequencer) enforceCap(c int) (drop bool) {
	if r.maxBuffered == 0 {
		return false
	}
	total := r.Buffered()
	if total >= 2*r.maxBuffered {
		r.stats.OverflowDrops++
		r.obs.OnReseqOverflow(c, int64(total), true)
		return true
	}
	if total >= r.maxBuffered && !r.overflow {
		r.overflow = true
		r.stats.Overflows++
		r.obs.OnReseqOverflow(c, int64(total), false)
	}
	return false
}

// drainEagerMarkers consumes control packets sitting at the head of
// channel c's buffer immediately. A marker at the head has no data
// packet preceding it on its own FIFO channel, and consuming a marker
// is not a delivery, so nothing in the delivery order can precede it
// either — buffering it would only delay its synchronization state.
// Without this, an idle-but-markered direction accumulates markers
// without bound on channels the receiver simulation is not visiting.
func (r *Resequencer) drainEagerMarkers(c int) {
	for {
		p, ok := r.bufs[c].peek()
		if !ok {
			return
		}
		switch p.Kind {
		case packet.Marker:
			r.bufs[c].pop()
			m, err := packet.MarkerOf(p)
			if err != nil {
				r.stats.BadMarkers++
				r.obs.OnBadMarker()
				continue
			}
			r.stats.Markers++
			r.stats.EagerMarkers++
			r.obs.OnMarkerConsumed(c)
			r.obs.OnMarkerDrained(c)
			if r.onMarker != nil {
				r.onMarker(c, m)
			}
			if r.mode == ModeLogical && r.s != nil {
				// Applying scheduler state here would happen at an
				// arbitrary simulation position; stage it instead for the
				// scan to apply at the marker's true stream position. A
				// newer marker supersedes a staged one: the scan would
				// have applied them back to back with no data in between,
				// and the last application wins.
				r.pending[c] = m
				r.pendingHas[c] = true
			}
		case packet.Credit:
			// Credits belong on the reverse path; tolerate and drop.
			r.bufs[c].pop()
		default:
			return
		}
	}
}

// noteDelivered records a delivery with the observability layer. It
// does not touch the ResequencerStats counters; callers keep their
// existing accounting (ModeNone, notably, counts delivery at Arrive
// time and never increments stats.Delivered).
func (r *Resequencer) noteDelivered(c int, p *packet.Packet) {
	if r.obs == nil {
		return
	}
	var disp int64
	if id := int64(p.ID); id >= r.maxSeenID {
		r.maxSeenID = id
	} else {
		disp = r.maxSeenID - id
	}
	r.obs.OnDelivered(c, p.Len(), disp)
	r.obs.TraceDeliver(traceKey(p), disp)
}

// traceKey is a packet's lifecycle-tracing identity: the explicit
// sequence number when present (it crosses the wire, so both ends of a
// remote session agree on it), else the striper's in-process ID.
func traceKey(p *packet.Packet) uint64 {
	if p.HasSeq {
		return p.Seq
	}
	return p.ID
}

// WaitingOn returns the channel logical reception is blocked on. It is
// meaningful after Next returned false in ModeLogical.
func (r *Resequencer) WaitingOn() int {
	if r.mode != ModeLogical {
		return -1
	}
	if r.cs != nil {
		return r.cs.Select()
	}
	return r.s.Current()
}

// Next returns the next packet in delivery order, or false if the
// receiver must wait for more arrivals.
//
//stripe:hotpath
func (r *Resequencer) Next() (*packet.Packet, bool) {
	p, ok := r.next()
	if r.obs != nil {
		r.obs.SetBuffered(int64(r.Buffered()))
	}
	return p, ok
}

// NextBatch fills dst with the next packets in delivery order and
// returns how many it delivered (possibly zero, meaning the receiver
// must wait for more arrivals — the same condition as Next returning
// false). One call amortizes the scan machinery over whole service
// runs: once a delivery leaves the simulation mid-service of a
// channel, the run's remaining packets are taken straight off that
// channel without re-running channel selection, which is exactly what
// the scan would do — while the deficit stays positive SelectFor
// cannot move, fast-forward requires a service boundary, and nothing
// staged for the channel may apply before its run position.
//
//stripe:hotpath
func (r *Resequencer) NextBatch(dst []*packet.Packet) int {
	n := 0
	for n < len(dst) {
		p, ok := r.next()
		if !ok {
			break
		}
		dst[n] = p
		n++
		if r.mode == ModeLogical && r.cs == nil && r.leavingN == 0 {
			n += r.drainRun(dst[n:])
		}
	}
	if r.obs != nil {
		r.obs.SetBuffered(int64(r.Buffered()))
	}
	return n
}

// drainRun continues the current service run: while the round-based
// simulation is mid-service of a settled channel (no staged marker, not
// leaving) whose head is a data packet, delivery and deficit accounting
// proceed without the scan. Any other head kind — or the run ending —
// falls back to the full discipline in the caller's loop.
//
//stripe:hotpath
func (r *Resequencer) drainRun(dst []*packet.Packet) int {
	n := 0
	for n < len(dst) && r.s.MidService() {
		c := r.s.Current()
		if r.pendingHas[c] || r.left[c] || r.leaving[c] {
			break
		}
		p, ok := r.bufs[c].peek()
		if !ok || p.Kind != packet.Data {
			break
		}
		r.bufs[c].pop()
		r.s.Account(p.Len())
		r.stats.Delivered++
		r.stats.DeliveredBytes += int64(p.Len())
		r.deliveredOn[c] += int64(p.Len())
		r.noteDelivered(c, p)
		dst[n] = p
		n++
	}
	return n
}

func (r *Resequencer) next() (*packet.Packet, bool) {
	// Overflow escalation ends once the backlog has halved (hysteresis,
	// so a buffer hovering at the cap does not flap in and out of forced
	// delivery).
	if r.overflow && r.Buffered() <= r.maxBuffered/2 {
		r.overflow = false
	}
	for {
		p, ok := r.dispatch()
		if ok {
			return p, true
		}
		// Blocked. Under overflow escalation, blocking is what grows the
		// buffer without bound, so force the discipline past the gap —
		// the same medicine Drain applies at end of stream.
		if !r.overflow || r.Buffered() == 0 || !r.forceAdvance() {
			return nil, false
		}
	}
}

func (r *Resequencer) dispatch() (*packet.Packet, bool) {
	switch r.mode {
	case ModeNone:
		return r.arrivq.pop()
	case ModeSequence:
		return r.nextSequence()
	default:
		if r.cs != nil {
			return r.nextCausal()
		}
		return r.nextLogical()
	}
}

// forceAdvance pushes a blocked delivery discipline past the channel or
// sequence gap it is waiting on, abandoning strict order for the
// backlog. It reports whether another delivery attempt is worthwhile.
// Reordering here is equivalent to unrecovered loss followed by
// quasi-FIFO resumption, which downstream consumers already tolerate.
func (r *Resequencer) forceAdvance() bool {
	switch r.mode {
	case ModeLogical:
		if r.cs != nil {
			// Round-less causal simulation: charge a phantom packet to
			// move the automaton past the exhausted channel.
			r.cs.Account(1)
			return true
		}
		// Abandon the blocked channel's service and clear any skip marks
		// that could spin the scan.
		for i := range r.marked {
			r.marked[i] = false
		}
		r.s.EndService()
		return true
	case ModeSequence:
		// Release the smallest buffered sequence number.
		min, ch := uint64(0), -1
		for c := 0; c < r.n; c++ {
			if p, ok := r.bufs[c].peek(); ok && p.Kind == packet.Data && p.HasSeq {
				if ch == -1 || p.Seq < min {
					min, ch = p.Seq, c
				}
			}
		}
		if ch == -1 {
			// Only control packets remain; consume them.
			advanced := false
			for c := 0; c < r.n; c++ {
				for r.bufs[c].len() > 0 {
					r.bufs[c].pop()
					advanced = true
				}
			}
			return advanced
		}
		r.nextSeq = min
		return true
	default:
		return false
	}
}

// nextCausal is logical reception for round-less causal schedulers:
// pure sender simulation, no marker protocol.
func (r *Resequencer) nextCausal() (*packet.Packet, bool) {
	for {
		c := r.cs.Select()
		p, ok := r.bufs[c].peek()
		if !ok {
			return nil, false
		}
		switch p.Kind {
		case packet.Marker:
			r.bufs[c].pop()
			if m, err := packet.MarkerOf(p); err == nil {
				r.stats.Markers++
				r.obs.OnMarkerConsumed(c)
				if r.onMarker != nil {
					r.onMarker(c, m)
				}
			} else {
				r.stats.BadMarkers++
				r.obs.OnBadMarker()
			}
		case packet.Reset:
			r.bufs[c].pop()
			r.applyReset(c, p)
		case packet.Credit:
			r.bufs[c].pop()
		default:
			r.bufs[c].pop()
			r.cs.Account(p.Len())
			r.stats.Delivered++
			r.stats.DeliveredBytes += int64(p.Len())
			r.deliveredOn[c] += int64(p.Len())
			r.noteDelivered(c, p)
			return p, true
		}
	}
}

// skipRule is the r_c > G rule. It is invoked through the skip field
// (a method value bound once at construction — binding it at the
// SelectFor call site would allocate a closure per scan), so hot
// traversal cannot see through the indirection; it carries its own
// annotation.
//
//stripe:hotpath
func (r *Resequencer) skipRule(c int) bool {
	if r.marked[c] && r.expect[c] > r.s.Round() {
		r.stats.Skips++
		r.obs.OnSkip(c, r.s.Round())
		return true
	}
	return false
}

// maybeFastForward jumps the receiver's round directly to the smallest
// expected round when every channel is skip-listed, so recovery after a
// long outage costs O(channels) instead of O(rounds missed).
func (r *Resequencer) maybeFastForward() {
	if r.s.MidService() {
		return
	}
	min := uint64(0)
	have := false
	for c := 0; c < r.n; c++ {
		if r.left[c] {
			continue // removed slots neither block nor bound the jump
		}
		if !r.marked[c] || r.expect[c] <= r.s.Round() {
			return
		}
		if !have || r.expect[c] < min {
			min = r.expect[c]
			have = true
		}
	}
	if !have {
		return
	}
	from := r.s.Round()
	r.s.AdvanceRoundTo(min)
	r.stats.FastForwards++
	r.obs.OnFastForward(from, min)
}

func (r *Resequencer) nextLogical() (*packet.Packet, bool) {
	for {
		if r.leavingN > 0 {
			r.sweepLeaving()
		}
		r.maybeFastForward()
		c := r.s.SelectFor(r.skip)
		if r.pendingHas[c] {
			// An eagerly drained marker staged for this channel: the scan
			// has now consumed everything that preceded it, which is the
			// position its scheduler state speaks about.
			r.pendingHas[c] = false
			r.applyMarker(c, r.pending[c])
			continue
		}
		p, ok := r.bufs[c].peek()
		if !ok {
			if r.leaving[c] {
				// The simulation is blocked on a draining channel: what it
				// still expects from c is lost, or would arrive only after
				// this point in the delivery order. Retire rather than
				// wedge — the delimiter path retires losslessly whenever
				// it wins this race.
				r.retire(c)
				continue
			}
			// Logical reception blocks here until channel c produces the
			// packet the simulation says comes next.
			return nil, false
		}
		switch p.Kind {
		case packet.Marker:
			r.bufs[c].pop()
			m, err := packet.MarkerOf(p)
			if err != nil {
				r.stats.BadMarkers++
				r.obs.OnBadMarker()
				continue
			}
			r.stats.Markers++
			r.obs.OnMarkerConsumed(c)
			if r.onMarker != nil {
				r.onMarker(c, m)
			}
			r.applyMarker(c, m)
		case packet.Reset:
			r.bufs[c].pop()
			r.applyReset(c, p)
		case packet.Credit:
			// Credits belong on the reverse path; tolerate and drop.
			r.bufs[c].pop()
		default:
			r.bufs[c].pop()
			r.s.Account(p.Len())
			r.stats.Delivered++
			r.stats.DeliveredBytes += int64(p.Len())
			r.deliveredOn[c] += int64(p.Len())
			r.noteDelivered(c, p)
			return p, true
		}
	}
}

// applyMarker adopts the sender state (r_c, DC_c) carried by a marker
// for channel c. It is invoked from the scan, where channel c is the
// one under service, so the receiver may be mid-service of c.
func (r *Resequencer) applyMarker(c int, m packet.MarkerBlock) {
	// Condition C2: adopt the sender's numbering of the channel. The
	// engines index channels identically by construction, so a
	// disagreement indicates mis-wiring; the marker is ignored rather
	// than corrupting another channel's state.
	if int(m.Channel) != c {
		r.stats.BadMarkers++
		r.obs.OnBadMarker()
		return
	}
	g := r.s.Round()
	switch {
	case m.Round > g:
		// The sender's next packet on c is rounds ahead: the receiver
		// has been consuming too eagerly (losses upstream). Close the
		// channel's service and skip it until G catches up.
		if r.s.MidService() && r.s.Current() == c {
			r.s.SetDeficit(c, m.Deficit)
			r.s.EndService()
		} else {
			r.s.SetDeficit(c, m.Deficit)
		}
		if !r.marked[c] || r.expect[c] != m.Round {
			r.stats.Resyncs++
			r.resyncsOn[c]++
			r.obs.OnResync(c, m.Round, m.Deficit)
		}
		r.marked[c] = true
		r.expect[c] = m.Round
	case m.Round == g:
		// In the current round. If the channel is mid-service the
		// quantum has already been granted on top of the marker's
		// pre-service deficit.
		d := m.Deficit
		if r.s.MidService() && r.s.Current() == c {
			d += r.s.QuantumOf(c)
		}
		if r.s.Deficit(c) != d {
			r.stats.Resyncs++
			r.resyncsOn[c]++
			r.obs.OnResync(c, m.Round, d)
			r.s.SetDeficit(c, d)
		}
		r.marked[c] = true
		r.expect[c] = m.Round
	default:
		// Stale marker from a round the receiver already passed. Mild
		// staleness is routine: a marker can sit buffered behind data
		// while its channel is overdraft-skipped, so the receiver's
		// round moves past it legitimately. But a marker stale by far
		// more than any overdraft horizon on *every* channel, with no
		// fresh marker in between, means the receiver's round ran ahead
		// of anything the sender ever declared — corrupt state — and the
		// markers themselves are the authoritative state to adopt.
		if r.healGap == 0 || g-m.Round <= r.healGap {
			return
		}
		r.staleRound[c] = m.Round
		r.staleDeficit[c] = m.Deficit
		if !r.staleHas[c] {
			r.staleHas[c] = true
		}
		r.staleCount++
		if r.staleCount >= 2*r.n && r.allStale() {
			r.selfHeal()
		}
		return
	}
	// A current or future marker clears the self-stabilization alarm.
	r.clearStale()
}

func (r *Resequencer) allStale() bool {
	for c, ok := range r.staleHas {
		if !ok && !r.left[c] {
			return false
		}
	}
	return true
}

func (r *Resequencer) clearStale() {
	if r.staleCount == 0 {
		return
	}
	r.staleCount = 0
	for i := range r.staleHas {
		r.staleHas[i] = false
	}
}

// selfHeal adopts the per-channel states declared by the latest (stale)
// markers: the receiver restarts its simulation at the earliest round
// any channel expects, with every channel's deficit and expected round
// taken from its marker, and lets the ordinary skip rule do the rest.
//
//stripe:allowescape cold self-stabilization path: fires only after healGap-stale markers on every channel, and restoring scheduler state allocates
func (r *Resequencer) selfHeal() {
	min, have := uint64(0), false
	for c, v := range r.staleRound {
		if r.left[c] {
			continue // removed slots carry no marker evidence
		}
		if !have || v < min {
			min, have = v, true
		}
	}
	if !have {
		return
	}
	r.s.Restore(sched.State{
		Current:  0,
		Round:    min,
		Began:    false,
		Deficits: append([]int64(nil), r.staleDeficit...),
	})
	for c := 0; c < r.n; c++ {
		if r.left[c] {
			continue
		}
		r.marked[c] = true
		r.expect[c] = r.staleRound[c]
	}
	r.stats.SelfHeals++
	r.stats.Resyncs++
	r.obs.OnSelfHeal(min)
	r.clearStale()
}

func (r *Resequencer) nextSequence() (*packet.Packet, bool) {
scan:
	for {
		if r.leavingN > 0 {
			r.sweepLeaving()
		}
		// Deliver any head matching the expected sequence number.
		allHeads := true
		minSeq := uint64(0)
		minCh := -1
		for c := 0; c < r.n; c++ {
			if r.left[c] {
				continue // removed slots neither hold heads nor block gaps
			}
			p, ok := r.bufs[c].peek()
			if !ok {
				if r.leaving[c] {
					// Same rule as the logical scan: a draining channel the
					// sequence scan is out of heads for must not wedge it.
					r.retire(c)
					continue scan
				}
				allHeads = false
				continue
			}
			switch p.Kind {
			case packet.Data:
				if !p.HasSeq {
					// Not stamped: cannot be ordered; deliver eagerly.
					r.bufs[c].pop()
					r.stats.Delivered++
					r.stats.DeliveredBytes += int64(p.Len())
					r.deliveredOn[c] += int64(p.Len())
					r.noteDelivered(c, p)
					return p, true
				}
				if p.Seq == r.nextSeq {
					r.bufs[c].pop()
					r.nextSeq++
					r.stats.Delivered++
					r.stats.DeliveredBytes += int64(p.Len())
					r.deliveredOn[c] += int64(p.Len())
					r.noteDelivered(c, p)
					return p, true
				}
				if minCh == -1 || p.Seq < minSeq {
					minSeq = p.Seq
					minCh = c
				}
			case packet.Marker:
				r.bufs[c].pop()
				if m, err := packet.MarkerOf(p); err == nil {
					r.stats.Markers++
					r.obs.OnMarkerConsumed(c)
					if r.onMarker != nil {
						r.onMarker(c, m)
					}
				} else {
					r.stats.BadMarkers++
					r.obs.OnBadMarker()
				}
				continue scan
			case packet.Reset:
				r.bufs[c].pop()
				r.applyReset(c, p)
				continue scan
			default:
				r.bufs[c].pop()
				continue scan
			}
		}
		if !allHeads {
			// Some channel is empty; the expected sequence number may
			// still arrive there (per-channel FIFO guarantees each
			// channel's sequence numbers are increasing).
			return nil, false
		}
		if minCh == -1 {
			return nil, false
		}
		// Every channel has a data head and all exceed nextSeq: the gap
		// [nextSeq, minSeq) was lost. Declare it and resume at minSeq.
		r.stats.Resyncs++
		r.resyncsOn[minCh]++
		r.obs.OnResync(minCh, 0, int64(minSeq))
		r.nextSeq = minSeq
	}
}

//stripe:allowescape reset path: runs once per crash-recovery epoch change, and flushing buffers and restoring scheduler state may allocate
func (r *Resequencer) applyReset(c int, p *packet.Packet) {
	e := resetEpoch(p)
	if e <= r.epoch {
		return // duplicate or stale reset
	}
	r.epoch = e
	r.resetting = true
	r.stats.Resets++
	r.obs.OnReset(e)
	for i := range r.passed {
		r.passed[i] = false
		r.marked[i] = false
		r.expect[i] = 0
		r.pendingHas[i] = false // staged markers are from the old epoch
	}
	r.nextSeq = 0
	r.overflow = false // the flush below empties the buffers
	if r.s != nil {
		r.s.Reset()
	}
	if r.cs != nil {
		r.cs.Restore(r.csInit.Clone())
	}
	r.arrivq.clear()
	// The channel the reset arrived on is past its boundary; the others
	// flush buffered old-epoch packets, keeping anything after their own
	// reset boundary.
	r.passed[c] = true
	for i := range r.bufs {
		if i == c {
			continue
		}
		for {
			q, ok := r.bufs[i].pop()
			if !ok {
				break
			}
			if q.Kind == packet.Reset && resetEpoch(q) == e {
				r.passed[i] = true
				break
			}
			r.stats.OldEpochDrops++
			r.obs.OnOldEpochDrops(1)
		}
	}
	// Channels outside the live set never carry the new epoch's reset
	// boundary, so do not wait on them. A draining channel finishes its
	// retirement here: the flush above already discarded its backlog as
	// old-epoch traffic, so there is nothing left to deliver in order.
	for i := 0; i < r.n; i++ {
		if r.leaving[i] {
			r.retire(i)
		}
		if r.left[i] {
			r.passed[i] = true
		}
	}
	if r.allPassed() {
		r.resetting = false
	}
}

func (r *Resequencer) allPassed() bool {
	for _, ok := range r.passed {
		if !ok {
			return false
		}
	}
	return true
}

func resetEpoch(p *packet.Packet) uint64 {
	if len(p.Payload) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(p.Payload[:8])
}

// Drain empties the receive buffers at end of stream, best effort: it
// keeps running the normal discipline, and whenever the discipline
// blocks on an empty channel it force-advances past it. The tail of a
// finite transfer is therefore delivered without waiting for traffic
// that will never come. Reordering at the drained tail is possible after
// unrecovered loss, exactly like quasi-FIFO.
func (r *Resequencer) Drain() []*packet.Packet {
	var out []*packet.Packet
	for r.Buffered() > 0 {
		p, ok := r.Next()
		if ok {
			out = append(out, p)
			continue
		}
		if !r.forceAdvance() {
			return out
		}
	}
	return out
}

// pktFIFO is a slice-backed packet FIFO with amortised O(1) pop.
type pktFIFO struct {
	buf  []*packet.Packet
	head int
	// dataBytes tracks the payload bytes of buffered Data packets, so
	// flow-control reconciliation can read per-channel buffered bytes in
	// O(1).
	dataBytes int64
}

//stripe:allowescape buffer growth is amortized O(1): append doubles capacity, and the backing array is reused after drain
func (f *pktFIFO) push(p *packet.Packet) {
	if p.Kind == packet.Data {
		f.dataBytes += int64(len(p.Payload))
	}
	f.buf = append(f.buf, p)
}

func (f *pktFIFO) len() int { return len(f.buf) - f.head }

func (f *pktFIFO) peek() (*packet.Packet, bool) {
	if f.head == len(f.buf) {
		return nil, false
	}
	return f.buf[f.head], true
}

func (f *pktFIFO) pop() (*packet.Packet, bool) {
	if f.head == len(f.buf) {
		return nil, false
	}
	p := f.buf[f.head]
	if p.Kind == packet.Data {
		f.dataBytes -= int64(len(p.Payload))
	}
	f.buf[f.head] = nil
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head > 256 && f.head*2 > len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = nil
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	return p, true
}

func (f *pktFIFO) clear() {
	f.buf = f.buf[:0]
	f.head = 0
	f.dataBytes = 0
}
