package core

import (
	"time"

	"stripe/internal/packet"
)

// nowNs is the default clock for marker tx stamps and telemetry
// receive stamps: the process wall clock in nanoseconds. Both ends of
// a one-way delay sample read different hosts' clocks, so raw samples
// embed the inter-host offset; the offset is common to every channel,
// which is why PeerView only interprets cross-channel differences.
func nowNs() int64 { return time.Now().UnixNano() }

// harvestMarker records the telemetry-plane observables carried by a
// physical marker arrival on channel c: the (sender tx, receiver rx)
// timestamp pair that is one one-way delay sample, and the exact
// cumulative loss implied by the marker's authoritative Sent position
// (channels are FIFO, so every byte Sent counts has either arrived —
// arrivedOn counted it — or is lost). It runs at arrival rather than
// consumption because arrival time is the delay sample's semantics and
// a marker buffered behind data must still update the loss view
// promptly; the consume paths keep all counter and error accounting.
//
//stripe:allowescape marker-cadence only, and the decode's magic-string check is compiler-elided; the valid-marker path is allocation-free
func (r *Resequencer) harvestMarker(c int, p *packet.Packet) {
	m, err := packet.DecodeMarker(p.Payload)
	if err != nil || int(m.Channel) != c {
		return // the consume path counts and reports the corruption
	}
	if m.TxNs != 0 {
		r.markerTxNs[c] = m.TxNs
		r.markerRxNs[c] = r.now()
	}
	if lost := int64(m.Sent) - r.arrivedOn[c]; lost > r.peerLost[c] {
		r.peerLost[c] = lost
	}
}

// consumeTelemetry hands an arriving telemetry block to the configured
// observer. Telemetry is advisory: a corrupt block is dropped, and
// without an observer the block is counted and discarded.
//
//stripe:allowescape control-cadence only (one block per peer marker interval), and decoding a telemetry block allocates its channel slice
func (r *Resequencer) consumeTelemetry(p *packet.Packet) {
	t, err := packet.TelemetryOf(p)
	if err != nil {
		r.stats.BadTelemetry++
		return
	}
	r.stats.Telemetry++
	if r.onTelemetry != nil {
		r.onTelemetry(t)
	}
}

// TelemetryBlock assembles the receiver's current view of the bundle
// for reporting back to the sender: cumulative per-channel delivery,
// loss, and resync counts, resequencer occupancy against its cap, and
// the latest marker timestamp pair per channel. Each call advances the
// report sequence number; all content is cumulative, so losing a
// report costs nothing but staleness.
//
//stripe:allowescape control-cadence only (one report per marker interval), and the report's channel slice allocates
func (r *Resequencer) TelemetryBlock() packet.TelemetryBlock {
	r.telemetrySeq++
	t := packet.TelemetryBlock{
		Seq:         r.telemetrySeq,
		AtNs:        r.now(),
		Buffered:    int64(r.Buffered()),
		MaxBuffered: int64(r.maxBuffered),
		Channels:    make([]packet.TelemetryChannel, r.n),
	}
	for c := 0; c < r.n; c++ {
		t.Channels[c] = packet.TelemetryChannel{
			Delivered:  r.deliveredOn[c],
			Lost:       r.peerLost[c],
			Resyncs:    r.resyncsOn[c],
			MarkerTxNs: r.markerTxNs[c],
			MarkerRxNs: r.markerRxNs[c],
		}
	}
	return t
}

// SendTelemetry transmits a telemetry block to the peer on one active
// channel, rotating the choice across calls so a single dead channel
// delays the peer's view by at most a marker interval times the
// channel count rather than silencing it. Telemetry is control
// traffic: like markers it bypasses the scheduler and the flow-control
// gate, and like probes a transport error feeds the channel's error
// streak. Reports are cumulative and sequenced, so a lost one is
// simply superseded by the next.
//
//stripe:allowescape control-cadence only (one packet per marker interval), and the telemetry packet must allocate
func (st *Striper) SendTelemetry(t packet.TelemetryBlock) error {
	n := len(st.out)
	if st.activeN == 0 || n == 0 {
		return ErrNoActiveChannels
	}
	for i := 0; i < n; i++ {
		c := st.telemetryChan % n
		st.telemetryChan = (c + 1) % n
		if !st.active[c] {
			continue
		}
		err := st.out[c].Send(packet.NewTelemetry(t))
		if err != nil {
			st.errStreak[c]++
		} else {
			st.errStreak[c] = 0
		}
		return err
	}
	return ErrNoActiveChannels
}
